// Wall-clock performance gate for the simulator itself (not the modeled
// system): a fixed-seed Online Boutique sweep measuring how fast the host
// machine chews through simulation events. Guards the hot path (scheduler
// slab/heap, EventFn dispatch, engine batching, PDES epoch protocol)
// against regressions that sim-time metrics cannot see.
//
// Modes:
//   perf_gate                 full sweep (20/60/80 clients), JSON to stdout
//   perf_gate --json FILE     full sweep, JSON written to FILE
//   perf_gate --check FILE    full sweep, then compare against the "after"
//                             (or sole) gate block in FILE — exits 1 on
//                             >10% wall-clock events/sec regression or >1%
//                             simulated-latency drift
//   perf_gate --smoke         1 small load, sub-second: ctest bench-smoke
//   perf_gate --scale         32 workers / 16 boutique cells on a
//                             leaf-spine fabric (nodes_per_switch 8) — the
//                             ISSUE 9 scale scenario
//   perf_gate --repeat N      run each load N times (default 3 for the
//                             full sweep, 1 for --smoke), report the
//                             median-throughput run; per-run wall clocks
//                             land in the JSON as "runs_wall_sec"
//   perf_gate --nodes N --cells C --clients K --switch S
//                             custom scale point (S = workers per leaf
//                             switch, 0 = flat fabric)
//
// The simulated p50/p99 double as a determinism tripwire: they depend only
// on the model, so any drift means behavior changed, not just speed. In
// sharded runs the pdes_* row fields (epochs, skip-ahead epochs, mailbox
// messages) are deterministic too — bench_gate.sh diffs them against a
// golden; pdes_barrier_wait_ms is wall clock and stays out of diffs.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "fabric/fabric.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct LoadSpec {
  int clients = 8;
  sim::Duration warm_ns = 0;
  sim::Duration run_ns = 0;
  int threads = 0;  ///< 0 = legacy single-scheduler run
  int nodes = 2;
  int cells = 1;
  std::size_t nodes_per_switch = 0;  ///< 0 = flat single-switch fabric
  /// One shard per leaf switch instead of one per node (multi-switch only):
  /// intra-leaf chain traffic goes shard-local and every cross-shard link
  /// is a multi-us spine crossing — the epoch-rate collapse at scale.
  bool leaf_shards = false;
  /// Reproduce the PR 4 protocol — uniform flat lookahead (701 ns
  /// everywhere) plus the old horizon formula — as the A/B baseline for the
  /// pdes_epochs reduction claim. Simulated latencies agree with the
  /// adaptive protocol; only protocol cost differs.
  bool legacy_horizon = false;
};

struct LoadResult {
  LoadSpec spec;
  double wall_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  double sim_p50_ms = 0;
  double sim_p99_ms = 0;
  /// Flight-recorder peaks (simulated-time gauges): worst queue depth and
  /// buffer-pool occupancy the load ever reached. Recorded into the BENCH
  /// json so a PR that trades latency for queue growth is visible.
  double peak_tx_backlog = 0;
  double peak_pool_in_use = 0;
  /// PDES protocol cost over the measured window (sharded runs only; all
  /// deterministic except barrier_wait). Epochs per simulated second is
  /// the number that bounds what real cores can win — ISSUE 9's >=5x
  /// reduction claim is checked on exactly this field.
  std::uint64_t pdes_epochs = 0;
  std::uint64_t pdes_skip_ahead_epochs = 0;
  std::uint64_t pdes_mailbox_msgs = 0;
  double pdes_barrier_wait_ms = 0;
  /// Wall clock of every repeat (median run populates the rest).
  std::vector<double> runs_wall_sec;

  [[nodiscard]] double events_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(events) / wall_sec : 0;
  }
  [[nodiscard]] double events_per_request() const {
    return requests > 0
               ? static_cast<double>(events) / static_cast<double>(requests)
               : 0;
  }
  [[nodiscard]] double epochs_per_sim_sec() const {
    const double sim_sec = sim::to_sec(spec.run_ns);
    return sim_sec > 0 ? static_cast<double>(pdes_epochs) / sim_sec : 0;
  }
};

/// `spec.threads` == 0 runs the legacy single-scheduler simulation; > 0
/// shards the cluster (one shard per node plus the edge shard) across that
/// many OS threads via the epoch-barrier parallel loop. Simulated results
/// are identical for every threads > 0 value; only wall-clock changes.
LoadResult run_load(const LoadSpec& spec) {
  std::unique_ptr<sim::ParallelSim> psim;
  std::unique_ptr<sim::Scheduler> solo;
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 16;
  cfg.pool_buffers = 2048;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.topology.nodes_per_switch = spec.nodes_per_switch;
  std::unique_ptr<runtime::Cluster> cluster;
  sim::Scheduler* sched = nullptr;
  if (spec.threads > 0) {
    std::size_t shards = 1 + static_cast<std::size_t>(spec.nodes);
    if (spec.leaf_shards) {
      cfg.shard_mapping = runtime::ShardMapping::kLeafPerShard;
      shards = 1 + (static_cast<std::size_t>(spec.nodes) +
                    spec.nodes_per_switch - 1) /
                       spec.nodes_per_switch;
    }
    psim = std::make_unique<sim::ParallelSim>(
        shards, /*os_threads=*/static_cast<unsigned>(spec.threads));
    if (spec.legacy_horizon) {
      psim->set_horizon_policy(sim::HorizonPolicy::kLegacy);
    }
    cluster = std::make_unique<runtime::Cluster>(*psim, cfg);
    sched = &psim->shard(0);
  } else {
    solo = std::make_unique<sim::Scheduler>();
    sched = solo.get();
    cluster = std::make_unique<runtime::Cluster>(*sched, cfg);
  }
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(spec.nodes));
  for (int i = 0; i < spec.nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(1 + i)};
    cluster->add_worker(id);
    nodes.push_back(id);
  }
  std::vector<runtime::OnlineBoutique::Cell> cells;
  if (spec.nodes == 2 && spec.cells == 1) {
    // The classic two-node layout, byte-identical with earlier trees.
    runtime::OnlineBoutique::deploy(*cluster, kNode1, kNode2);
    cells.push_back({0, runtime::OnlineBoutique::kTenant, kNode1, kNode2,
                     runtime::OnlineBoutique::kHomeQuery});
  } else {
    cells = runtime::OnlineBoutique::deploy_cells(
        *cluster, nodes, static_cast<std::size_t>(spec.cells));
  }

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  // Closed-loop clients + the 2 ms at-least-once deadline feed a retry
  // storm at >=60 clients (timeouts allocate duplicate buffers until the
  // pool is bled dry and every request sheds 503). The gate measures
  // simulator speed, not SLO machinery — run with the deadline off.
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(*cluster, icfg);
  const auto route = [](std::uint32_t cell) {
    return cell == 0 ? std::string("/run") : "/run#" + std::to_string(cell);
  };
  for (const auto& cell : cells) {
    ing.expose_chain(route(cell.index), cell.home_query);
  }
  ing.finish_setup();
  cluster->finish_setup();
  if (psim && spec.legacy_horizon) {
    // PR 4 baseline: overwrite the adaptive per-pair matrix with the old
    // uniform flat-fabric lookahead (the kLegacy formula set above already
    // reproduces the old horizon arithmetic).
    psim->set_lookahead(fabric::cross_node_lookahead());
  }

  // Flight recorder: sample queue depth / pool occupancy in simulated
  // time. Legacy mode records into the installed hub; parallel mode into
  // the per-shard hubs, merged below. The sampler is a handful of pure
  // reads per simulated millisecond — noise next to the event loop.
  obs::Hub hub;
  obs::Session session(hub);
  cluster->start_flight_recorder({});
  ing.start_flight_probes();

  // One closed-loop generator per cell (clients split evenly, first cells
  // absorb the remainder) so every cell sees traffic on its own chain.
  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  const int per_cell = spec.clients / static_cast<int>(cells.size());
  int leftover = spec.clients % static_cast<int>(cells.size());
  for (const auto& cell : cells) {
    const int n = per_cell + (leftover-- > 0 ? 1 : 0);
    if (n <= 0) continue;
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = route(cell.index);
    wcfg.body = std::string(128, 'x');
    wcfg.client_cores = n;
    auto gen = std::make_unique<workload::HttpLoadGen>(*sched, ing, wcfg);
    gen->add_clients(n);
    gens.push_back(std::move(gen));
  }

  const auto run_until = [&](sim::TimePoint t) {
    if (psim) {
      psim->run_until(t);
    } else {
      sched->run_until(t);
    }
  };
  const auto events_done = [&] {
    return psim ? psim->events_processed() : sched->events_processed();
  };
  const auto requests_done = [&] {
    std::uint64_t total = 0;
    for (const auto& g : gens) total += g->latencies().count();
    return total;
  };

  run_until(sched->now() + spec.warm_ns);
  const auto start = sched->now();
  const auto events0 = events_done();
  const auto requests0 = requests_done();
  const std::uint64_t epochs0 = psim ? psim->epochs() : 0;
  const std::uint64_t skip0 = psim ? psim->skip_ahead_epochs() : 0;
  const std::uint64_t msgs0 = psim ? psim->mailbox_msgs() : 0;
  const std::uint64_t barrier0 = psim ? psim->barrier_wait_ns() : 0;
  const auto wall0 = std::chrono::steady_clock::now();
  run_until(start + spec.run_ns);
  const auto wall1 = std::chrono::steady_clock::now();

  LoadResult r;
  r.spec = spec;
  r.wall_sec = std::chrono::duration<double>(wall1 - wall0).count();
  r.events = events_done() - events0;
  r.requests = requests_done() - requests0;
  sim::LatencyHistogram merged;
  for (const auto& g : gens) merged.merge(g->latencies());
  r.sim_p50_ms = static_cast<double>(merged.quantile(0.5)) / 1e6;
  r.sim_p99_ms = static_cast<double>(merged.quantile(0.99)) / 1e6;
  if (psim) {
    r.pdes_epochs = psim->epochs() - epochs0;
    r.pdes_skip_ahead_epochs = psim->skip_ahead_epochs() - skip0;
    r.pdes_mailbox_msgs = psim->mailbox_msgs() - msgs0;
    r.pdes_barrier_wait_ms =
        static_cast<double>(psim->barrier_wait_ns() - barrier0) / 1e6;
  }
  for (auto& g : gens) g->stop();
  if (psim) {
    psim->run();
    cluster->merge_observability(hub);
  }
  r.peak_tx_backlog = hub.timeseries.peak_over("engine.tx_backlog");
  r.peak_pool_in_use = hub.timeseries.peak_over("pool.in_use");
  return r;
}

/// Run the load `repeat` times and report the median-throughput run, with
/// every run's wall clock attached. Simulated values are identical across
/// repeats (the model is deterministic); only wall clock varies.
LoadResult run_load_median(const LoadSpec& spec, int repeat) {
  std::vector<LoadResult> runs;
  runs.reserve(static_cast<std::size_t>(repeat));
  for (int i = 0; i < repeat; ++i) runs.push_back(run_load(spec));
  std::vector<double> walls;
  for (const auto& r : runs) walls.push_back(r.wall_sec);
  std::vector<LoadResult*> by_wall;
  for (auto& r : runs) by_wall.push_back(&r);
  std::sort(by_wall.begin(), by_wall.end(),
            [](const LoadResult* a, const LoadResult* b) {
              return a->wall_sec < b->wall_sec;
            });
  LoadResult median = *by_wall[by_wall.size() / 2];
  median.runs_wall_sec = std::move(walls);
  return median;
}

double peak_rss_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

std::string emit_json(const std::vector<LoadResult>& results) {
  double wall = 0;
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  for (const auto& r : results) {
    wall += r.wall_sec;
    events += r.events;
    requests += r.requests;
  }
  const auto& gate = results.back();  // heaviest load anchors the gate
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n  \"bench\": \"perf_gate\",\n  \"chain\": \"home_query\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"clients\": " << r.spec.clients
       << ", \"threads\": " << r.spec.threads
       << ", \"nodes\": " << r.spec.nodes << ", \"cells\": " << r.spec.cells
       << ", \"wall_sec\": " << r.wall_sec
       << ", \"events\": " << r.events << ", \"requests\": " << r.requests
       << ", \"wall_events_per_sec\": " << r.events_per_sec()
       << ", \"events_per_request\": " << r.events_per_request()
       << ", \"sim_p50_ms\": " << r.sim_p50_ms
       << ", \"sim_p99_ms\": " << r.sim_p99_ms
       << ", \"peak_tx_backlog\": " << r.peak_tx_backlog
       << ", \"peak_pool_in_use\": " << r.peak_pool_in_use;
    if (r.spec.threads > 0) {
      os << ", \"pdes_epochs\": " << r.pdes_epochs
         << ", \"pdes_epochs_per_sim_sec\": " << r.epochs_per_sim_sec()
         << ", \"pdes_skip_ahead_epochs\": " << r.pdes_skip_ahead_epochs
         << ", \"pdes_mailbox_msgs\": " << r.pdes_mailbox_msgs
         << ", \"pdes_barrier_wait_ms\": " << r.pdes_barrier_wait_ms;
    }
    if (r.runs_wall_sec.size() > 1) {
      os << ", \"runs_wall_sec\": [";
      for (std::size_t j = 0; j < r.runs_wall_sec.size(); ++j) {
        os << (j > 0 ? ", " : "") << r.runs_wall_sec[j];
      }
      os << "]";
    }
    os << "}" << (i + 1 < results.size() ? ",\n" : "\n");
  }
  double peak_backlog = 0, peak_pool = 0;
  for (const auto& r : results) {
    peak_backlog = std::max(peak_backlog, r.peak_tx_backlog);
    peak_pool = std::max(peak_pool, r.peak_pool_in_use);
  }
  os << "  ],\n  \"gate\": {\"wall_events_per_sec\": "
     << (wall > 0 ? static_cast<double>(events) / wall : 0)
     << ", \"events_per_request\": "
     << (requests > 0 ? static_cast<double>(events) /
                            static_cast<double>(requests)
                      : 0)
     << ", \"sim_p50_ms\": " << gate.sim_p50_ms
     << ", \"sim_p99_ms\": " << gate.sim_p99_ms
     << ", \"peak_tx_backlog\": " << peak_backlog
     << ", \"peak_pool_in_use\": " << peak_pool
     << ", \"peak_rss_mib\": " << peak_rss_mib() << "}\n}\n";
  return os.str();
}

/// Pull `"key": <number>` out of `text`, searching from `from`. Returns
/// false when the key is absent.
bool find_number(const std::string& text, const std::string& key,
                 std::size_t from, double& out) {
  const auto k = text.find("\"" + key + "\"", from);
  if (k == std::string::npos) return false;
  const auto colon = text.find(':', k);
  if (colon == std::string::npos) return false;
  out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

/// Compare this run against the baseline gate block in `path`. The file is
/// BENCH_PR3.json ({"before": {...}, "after": {...}}) or a raw perf_gate
/// dump; the "after" block wins when present.
int check_against(const std::string& path, const std::string& current_json) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "perf_gate: FAIL — cannot open baseline " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string base = buf.str();
  std::size_t from = base.find("\"after\"");
  if (from == std::string::npos) from = 0;
  // The gate block follows the per-load results in both formats.
  const auto gate_at = base.find("\"gate\"", from);
  if (gate_at != std::string::npos) from = gate_at;

  double base_eps = 0, base_p50 = 0, base_p99 = 0, base_rss = 0;
  if (!find_number(base, "wall_events_per_sec", from, base_eps) ||
      !find_number(base, "sim_p50_ms", from, base_p50) ||
      !find_number(base, "sim_p99_ms", from, base_p99)) {
    std::cerr << "perf_gate: FAIL — baseline " << path
              << " has no gate numbers\n";
    return 1;
  }
  const bool has_base_rss = find_number(base, "peak_rss_mib", from, base_rss);
  const auto cur_gate = current_json.find("\"gate\"");
  double cur_eps = 0, cur_p50 = 0, cur_p99 = 0, cur_rss = 0;
  find_number(current_json, "wall_events_per_sec", cur_gate, cur_eps);
  find_number(current_json, "sim_p50_ms", cur_gate, cur_p50);
  find_number(current_json, "sim_p99_ms", cur_gate, cur_p99);
  find_number(current_json, "peak_rss_mib", cur_gate, cur_rss);

  int rc = 0;
  if (cur_eps < 0.9 * base_eps) {
    std::cerr << "perf_gate: FAIL — wall-clock throughput regressed >10%: "
              << cur_eps << " events/s vs baseline " << base_eps << "\n";
    rc = 1;
  }
  if (has_base_rss && base_rss > 0 && cur_rss > 1.15 * base_rss) {
    std::cerr << "perf_gate: FAIL — peak RSS regressed >15%: " << cur_rss
              << " MiB vs baseline " << base_rss << " MiB\n";
    rc = 1;
  }
  for (auto [name, cur, ref] : {std::tuple{"sim_p50_ms", cur_p50, base_p50},
                                std::tuple{"sim_p99_ms", cur_p99, base_p99}}) {
    if (ref > 0 && std::abs(cur - ref) > 0.01 * ref) {
      std::cerr << "perf_gate: FAIL — " << name << " drifted >1%: " << cur
                << " vs baseline " << ref
                << " (model behavior changed, not just speed)\n";
      rc = 1;
    }
  }
  if (rc == 0) {
    std::cerr << "perf_gate: OK — " << cur_eps << " events/s vs baseline "
              << base_eps << " (>= 90%), sim p50/p99 within 1%"
              << (has_base_rss ? ", peak RSS within 15%" : "") << "\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool scale = false;
  int threads = 0;
  int repeat = 0;  // 0 = mode default (3 full sweep, 1 smoke/scale)
  int nodes = 0;
  int cells = 0;
  int clients = 0;
  long per_switch = -1;
  bool legacy_horizon = false;
  bool node_shards = false;
  std::string json_path;
  std::string check_path;
  const auto int_arg = [&](int& i) { return std::atoi(argv[++i]); };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      scale = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = int_arg(i);
      if (threads < 1) {
        std::cerr << "perf_gate: --threads wants a positive count\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      repeat = int_arg(i);
      if (repeat < 1) {
        std::cerr << "perf_gate: --repeat wants a positive count\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes = int_arg(i);
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      cells = int_arg(i);
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = int_arg(i);
    } else if (std::strcmp(argv[i], "--switch") == 0 && i + 1 < argc) {
      per_switch = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--legacy-horizon") == 0) {
      legacy_horizon = true;
    } else if (std::strcmp(argv[i], "--node-shards") == 0) {
      node_shards = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::cerr << "usage: perf_gate [--smoke | --scale] [--threads N] "
                   "[--repeat N] [--nodes N] [--cells N] [--clients N] "
                   "[--switch N] [--legacy-horizon] [--node-shards] "
                   "[--json FILE] [--check FILE]\n";
      return 2;
    }
  }

  LoadSpec spec;
  spec.threads = threads;
  spec.legacy_horizon = legacy_horizon;
  if (legacy_horizon && threads == 0 && !scale) {
    std::cerr << "perf_gate: --legacy-horizon needs --threads (it selects "
                 "the sharded horizon formula)\n";
    return 2;
  }
  if (scale) {
    // The ISSUE 9 scale point: 32 workers on 4 leaves, 16 boutique cells,
    // leaf-affine placement, one shard per leaf. Sharded by construction —
    // the per-pair lookahead matrix and leaf sharding are what make this
    // tractable (--node-shards reverts to one shard per node).
    if (threads == 0) spec.threads = 1;
    spec.nodes = 32;
    spec.cells = 16;
    spec.nodes_per_switch = 8;
    spec.clients = 128;
  }
  if (nodes > 0) spec.nodes = nodes;
  if (cells > 0) spec.cells = cells;
  if (per_switch >= 0) {
    spec.nodes_per_switch = static_cast<std::size_t>(per_switch);
  }
  spec.leaf_shards = spec.nodes_per_switch > 0 && !node_shards;
  if (spec.nodes < 2 || spec.cells < 1) {
    std::cerr << "perf_gate: need >= 2 nodes and >= 1 cell\n";
    return 2;
  }
  if (spec.threads == 0 && (spec.nodes != 2 || spec.cells != 1)) {
    std::cerr << "perf_gate: scale points (custom --nodes/--cells) need "
                 "--threads (the legacy path is the 2-node baseline)\n";
    return 2;
  }

  std::vector<LoadResult> results;
  if (smoke || scale) {
    // Sub-second sanity pass (smoke) or the single scale point: the sweep
    // runs, produces traffic, and the event machinery reports sane numbers.
    spec.clients = clients > 0 ? clients : (scale ? spec.clients : 8);
    spec.warm_ns = 200'000'000;
    spec.run_ns = scale ? 1'000'000'000 : 500'000'000;
    results.push_back(run_load_median(spec, repeat > 0 ? repeat : 1));
  } else {
    spec.warm_ns = 1'000'000'000;
    spec.run_ns = 2'000'000'000;
    const std::vector<int> sweep =
        clients > 0 ? std::vector<int>{clients} : std::vector<int>{20, 60, 80};
    for (int c : sweep) {
      spec.clients = c;
      results.push_back(run_load_median(spec, repeat > 0 ? repeat : 3));
    }
  }
  for (const auto& r : results) {
    if (r.events == 0 || r.requests == 0) {
      std::cerr << "perf_gate: FAIL — no traffic at " << r.spec.clients
                << " clients (events=" << r.events
                << " requests=" << r.requests << ")\n";
      return 1;
    }
    std::cerr << "  " << r.spec.clients << " clients ("
              << r.spec.nodes << " nodes, " << r.spec.cells << " cells): "
              << static_cast<std::uint64_t>(r.events_per_sec())
              << " events/s wall, " << r.events_per_request()
              << " events/req, sim p50 " << r.sim_p50_ms << " ms, p99 "
              << r.sim_p99_ms << " ms";
    if (r.spec.threads > 0) {
      std::cerr << ", " << r.pdes_epochs << " epochs ("
                << static_cast<std::uint64_t>(r.epochs_per_sim_sec())
                << "/sim-s, " << r.pdes_skip_ahead_epochs << " skip-ahead)";
    }
    std::cerr << "\n";
  }

  const std::string json = emit_json(results);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
  } else {
    std::cout << json;
  }
  if (!check_path.empty()) return check_against(check_path, json);
  return 0;
}
