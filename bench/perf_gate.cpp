// Wall-clock performance gate for the simulator itself (not the modeled
// system): a fixed-seed two-node Online Boutique sweep measuring how fast
// the host machine chews through simulation events. Guards the hot path
// (scheduler slab/heap, EventFn dispatch, engine batching) against
// regressions that sim-time metrics cannot see.
//
// Modes:
//   perf_gate                 full sweep (20/60/80 clients), JSON to stdout
//   perf_gate --json FILE     full sweep, JSON written to FILE
//   perf_gate --check FILE    full sweep, then compare against the "after"
//                             (or sole) gate block in FILE — exits 1 on
//                             >10% wall-clock events/sec regression or >1%
//                             simulated-latency drift
//   perf_gate --smoke         1 small load, sub-second: ctest bench-smoke
//
// The simulated p50/p99 double as a determinism tripwire: they depend only
// on the model, so any drift means behavior changed, not just speed.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct LoadResult {
  int clients = 0;
  int threads = 0;  ///< 0 = legacy single-scheduler run
  double wall_sec = 0;
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  double sim_p50_ms = 0;
  double sim_p99_ms = 0;
  /// Flight-recorder peaks (simulated-time gauges): worst queue depth and
  /// buffer-pool occupancy the load ever reached. Recorded into the BENCH
  /// json so a PR that trades latency for queue growth is visible.
  double peak_tx_backlog = 0;
  double peak_pool_in_use = 0;

  [[nodiscard]] double events_per_sec() const {
    return wall_sec > 0 ? static_cast<double>(events) / wall_sec : 0;
  }
  [[nodiscard]] double events_per_request() const {
    return requests > 0
               ? static_cast<double>(events) / static_cast<double>(requests)
               : 0;
  }
};

/// `threads` == 0 runs the legacy single-scheduler simulation; > 0 shards
/// the cluster (one shard per node plus the edge shard) across that many
/// OS threads via the epoch-barrier parallel loop. Simulated results are
/// identical for every threads > 0 value; only wall-clock changes.
LoadResult run_load(int clients, sim::Duration warm_ns, sim::Duration run_ns,
                    int threads = 0) {
  std::unique_ptr<sim::ParallelSim> psim;
  std::unique_ptr<sim::Scheduler> solo;
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 16;
  cfg.pool_buffers = 2048;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  std::unique_ptr<runtime::Cluster> cluster;
  sim::Scheduler* sched = nullptr;
  if (threads > 0) {
    psim = std::make_unique<sim::ParallelSim>(
        /*shards=*/3, /*os_threads=*/static_cast<std::size_t>(threads));
    cluster = std::make_unique<runtime::Cluster>(*psim, cfg);
    sched = &psim->shard(0);
  } else {
    solo = std::make_unique<sim::Scheduler>();
    sched = solo.get();
    cluster = std::make_unique<runtime::Cluster>(*sched, cfg);
  }
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  runtime::OnlineBoutique::deploy(*cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  // Closed-loop clients + the 2 ms at-least-once deadline feed a retry
  // storm at >=60 clients (timeouts allocate duplicate buffers until the
  // pool is bled dry and every request sheds 503). The gate measures
  // simulator speed, not SLO machinery — run with the deadline off.
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(*cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster->finish_setup();

  // Flight recorder: sample queue depth / pool occupancy in simulated
  // time. Legacy mode records into the installed hub; parallel mode into
  // the per-shard hubs, merged below. The sampler is a handful of pure
  // reads per simulated millisecond — noise next to the event loop.
  obs::Hub hub;
  obs::Session session(hub);
  cluster->start_flight_recorder({});
  ing.start_flight_probes();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(128, 'x');
  wcfg.client_cores = clients;
  workload::HttpLoadGen wrk(*sched, ing, wcfg);
  wrk.add_clients(clients);

  const auto run_until = [&](sim::TimePoint t) {
    if (psim) {
      psim->run_until(t);
    } else {
      sched->run_until(t);
    }
  };
  const auto events_done = [&] {
    return psim ? psim->events_processed() : sched->events_processed();
  };

  run_until(sched->now() + warm_ns);
  const auto start = sched->now();
  const auto events0 = events_done();
  const auto requests0 = wrk.latencies().count();
  const auto wall0 = std::chrono::steady_clock::now();
  run_until(start + run_ns);
  const auto wall1 = std::chrono::steady_clock::now();

  LoadResult r;
  r.clients = clients;
  r.threads = threads;
  r.wall_sec = std::chrono::duration<double>(wall1 - wall0).count();
  r.events = events_done() - events0;
  r.requests = wrk.latencies().count() - requests0;
  r.sim_p50_ms = static_cast<double>(wrk.latencies().quantile(0.5)) / 1e6;
  r.sim_p99_ms = static_cast<double>(wrk.latencies().quantile(0.99)) / 1e6;
  wrk.stop();
  if (psim) {
    psim->run();
    cluster->merge_observability(hub);
  }
  r.peak_tx_backlog = hub.timeseries.peak_over("engine.tx_backlog");
  r.peak_pool_in_use = hub.timeseries.peak_over("pool.in_use");
  return r;
}

double peak_rss_mib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

std::string emit_json(const std::vector<LoadResult>& results) {
  double wall = 0;
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  for (const auto& r : results) {
    wall += r.wall_sec;
    events += r.events;
    requests += r.requests;
  }
  const auto& gate = results.back();  // heaviest load anchors the gate
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n  \"bench\": \"perf_gate\",\n  \"chain\": \"home_query\",\n"
     << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    os << "    {\"clients\": " << r.clients << ", \"threads\": " << r.threads
       << ", \"wall_sec\": " << r.wall_sec
       << ", \"events\": " << r.events << ", \"requests\": " << r.requests
       << ", \"wall_events_per_sec\": " << r.events_per_sec()
       << ", \"events_per_request\": " << r.events_per_request()
       << ", \"sim_p50_ms\": " << r.sim_p50_ms
       << ", \"sim_p99_ms\": " << r.sim_p99_ms
       << ", \"peak_tx_backlog\": " << r.peak_tx_backlog
       << ", \"peak_pool_in_use\": " << r.peak_pool_in_use << "}"
       << (i + 1 < results.size() ? ",\n" : "\n");
  }
  double peak_backlog = 0, peak_pool = 0;
  for (const auto& r : results) {
    peak_backlog = std::max(peak_backlog, r.peak_tx_backlog);
    peak_pool = std::max(peak_pool, r.peak_pool_in_use);
  }
  os << "  ],\n  \"gate\": {\"wall_events_per_sec\": "
     << (wall > 0 ? static_cast<double>(events) / wall : 0)
     << ", \"events_per_request\": "
     << (requests > 0 ? static_cast<double>(events) /
                            static_cast<double>(requests)
                      : 0)
     << ", \"sim_p50_ms\": " << gate.sim_p50_ms
     << ", \"sim_p99_ms\": " << gate.sim_p99_ms
     << ", \"peak_tx_backlog\": " << peak_backlog
     << ", \"peak_pool_in_use\": " << peak_pool
     << ", \"peak_rss_mib\": " << peak_rss_mib() << "}\n}\n";
  return os.str();
}

/// Pull `"key": <number>` out of `text`, searching from `from`. Returns
/// false when the key is absent.
bool find_number(const std::string& text, const std::string& key,
                 std::size_t from, double& out) {
  const auto k = text.find("\"" + key + "\"", from);
  if (k == std::string::npos) return false;
  const auto colon = text.find(':', k);
  if (colon == std::string::npos) return false;
  out = std::strtod(text.c_str() + colon + 1, nullptr);
  return true;
}

/// Compare this run against the baseline gate block in `path`. The file is
/// BENCH_PR3.json ({"before": {...}, "after": {...}}) or a raw perf_gate
/// dump; the "after" block wins when present.
int check_against(const std::string& path, const std::string& current_json) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "perf_gate: FAIL — cannot open baseline " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string base = buf.str();
  std::size_t from = base.find("\"after\"");
  if (from == std::string::npos) from = 0;
  // The gate block follows the per-load results in both formats.
  const auto gate_at = base.find("\"gate\"", from);
  if (gate_at != std::string::npos) from = gate_at;

  double base_eps = 0, base_p50 = 0, base_p99 = 0, base_rss = 0;
  if (!find_number(base, "wall_events_per_sec", from, base_eps) ||
      !find_number(base, "sim_p50_ms", from, base_p50) ||
      !find_number(base, "sim_p99_ms", from, base_p99)) {
    std::cerr << "perf_gate: FAIL — baseline " << path
              << " has no gate numbers\n";
    return 1;
  }
  const bool has_base_rss = find_number(base, "peak_rss_mib", from, base_rss);
  const auto cur_gate = current_json.find("\"gate\"");
  double cur_eps = 0, cur_p50 = 0, cur_p99 = 0, cur_rss = 0;
  find_number(current_json, "wall_events_per_sec", cur_gate, cur_eps);
  find_number(current_json, "sim_p50_ms", cur_gate, cur_p50);
  find_number(current_json, "sim_p99_ms", cur_gate, cur_p99);
  find_number(current_json, "peak_rss_mib", cur_gate, cur_rss);

  int rc = 0;
  if (cur_eps < 0.9 * base_eps) {
    std::cerr << "perf_gate: FAIL — wall-clock throughput regressed >10%: "
              << cur_eps << " events/s vs baseline " << base_eps << "\n";
    rc = 1;
  }
  if (has_base_rss && base_rss > 0 && cur_rss > 1.15 * base_rss) {
    std::cerr << "perf_gate: FAIL — peak RSS regressed >15%: " << cur_rss
              << " MiB vs baseline " << base_rss << " MiB\n";
    rc = 1;
  }
  for (auto [name, cur, ref] : {std::tuple{"sim_p50_ms", cur_p50, base_p50},
                                std::tuple{"sim_p99_ms", cur_p99, base_p99}}) {
    if (ref > 0 && std::abs(cur - ref) > 0.01 * ref) {
      std::cerr << "perf_gate: FAIL — " << name << " drifted >1%: " << cur
                << " vs baseline " << ref
                << " (model behavior changed, not just speed)\n";
      rc = 1;
    }
  }
  if (rc == 0) {
    std::cerr << "perf_gate: OK — " << cur_eps << " events/s vs baseline "
              << base_eps << " (>= 90%), sim p50/p99 within 1%"
              << (has_base_rss ? ", peak RSS within 15%" : "") << "\n";
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = 0;
  std::string json_path;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::cerr << "perf_gate: --threads wants a positive count\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::cerr << "usage: perf_gate [--smoke] [--threads N] [--json FILE] "
                   "[--check FILE]\n";
      return 2;
    }
  }

  std::vector<LoadResult> results;
  if (smoke) {
    // Sub-second sanity pass: the sweep runs, produces traffic, and the
    // event machinery reports sane numbers.
    results.push_back(run_load(8, 200'000'000, 500'000'000, threads));
  } else {
    for (int clients : {20, 60, 80}) {
      results.push_back(run_load(clients, 1'000'000'000, 2'000'000'000,
                                 threads));
    }
  }
  for (const auto& r : results) {
    if (r.events == 0 || r.requests == 0) {
      std::cerr << "perf_gate: FAIL — no traffic at " << r.clients
                << " clients (events=" << r.events
                << " requests=" << r.requests << ")\n";
      return 1;
    }
    std::cerr << "  " << r.clients << " clients: "
              << static_cast<std::uint64_t>(r.events_per_sec())
              << " events/s wall, " << r.events_per_request()
              << " events/req, sim p50 " << r.sim_p50_ms << " ms, p99 "
              << r.sim_p99_ms << " ms\n";
  }

  const std::string json = emit_json(results);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << json;
  } else {
    std::cout << json;
  }
  if (!check_path.empty()) return check_against(check_path, json);
  return 0;
}
