// Ablations over the DNE design choices DESIGN.md calls out (§3.2-§3.5):
//   A. CQE batching in the run-to-completion RX loop (rx_batch)
//   B. RC connection pool width per (peer, tenant)
//   C. Shadow-QP active-set cap vs RNIC QP-cache thrashing at high tenant
//      counts (the motivation for [52]'s mechanism, §3.3)
//   D. SRQ provisioning depth vs RNR stalls under bursts
// Not a paper figure: this regenerates the *reasons* behind the design.
#include <memory>

#include "bench_common.hpp"
#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr sim::Duration kRun = 1'500'000'000;

struct Result {
  double rps = 0;
  double p99_us = 0;
  std::uint64_t rnr = 0;
  std::uint64_t cache_miss = 0;
};

Result run_echo(core::EngineConfig engine_cfg, int tenants, int clients) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.engine = engine_cfg;
  cfg.pool_buffers = 2048;
  cfg.buffer_bytes = 4096;
  cfg.cpu_cores_per_node = 32;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);

  std::vector<std::unique_ptr<workload::ChainDriver>> drivers;
  for (int t = 1; t <= tenants; ++t) {
    const TenantId tenant{static_cast<std::uint32_t>(t)};
    cluster->add_tenant(tenant, 1);
    const FunctionId fn{static_cast<std::uint32_t>(t)};
    cluster->deploy(runtime::FunctionSpec{fn, "echo", tenant}, kNode2);
    cluster->add_chain(runtime::Chain{static_cast<std::uint32_t>(t), "echo",
                                      tenant, 128,
                                      {{fn, 3'000, 128}}});
    drivers.push_back(std::make_unique<workload::ChainDriver>(
        *cluster, FunctionId{1000 + static_cast<std::uint32_t>(t)}, kNode1,
        static_cast<std::uint32_t>(t)));
  }
  cluster->finish_setup();
  for (auto& d : drivers) d->start(clients);
  sched.run_until(sched.now() + kRun);
  for (auto& d : drivers) d->stop();
  sched.run();

  Result r;
  std::uint64_t total = 0;
  sim::LatencyHistogram merged;
  for (auto& d : drivers) {
    total += d->completed();
    merged.merge(d->latencies());
  }
  r.rps = static_cast<double>(total) / sim::to_sec(kRun);
  r.p99_us = sim::to_us(merged.quantile(0.99));
  r.rnr = cluster->worker(kNode1).rnic()->counters().rnr_events +
          cluster->worker(kNode2).rnic()->counters().rnr_events;
  r.cache_miss = cluster->worker(kNode1).rnic()->counters().cache_miss_wrs +
                 cluster->worker(kNode2).rnic()->counters().cache_miss_wrs;
  return r;
}

}  // namespace

int main() {
  using namespace pd::bench;

  print_title(
      "Ablation A: RX CQE batch size (run-to-completion loop, §3.2)\n"
      "Batching amortizes loop dispatch on the wimpy DPU core");
  {
    Table t({"rx_batch", "RPS", "p99 (us)"});
    for (int batch : {1, 4, 8, 32}) {
      core::EngineConfig cfg;
      cfg.rx_batch = batch;
      const auto r = run_echo(cfg, 1, 32);
      t.add_row({std::to_string(batch), fmt_k(r.rps), fmt(r.p99_us)});
    }
    t.print();
  }

  print_title(
      "Ablation B: RC connections per (peer, tenant) (§3.3)\n"
      "Wider pools spread outstanding WRs across QPs");
  {
    Table t({"rc_connections", "RPS", "p99 (us)"});
    for (int conns : {1, 2, 4, 8}) {
      core::EngineConfig cfg;
      cfg.rc_connections = conns;
      const auto r = run_echo(cfg, 1, 32);
      t.add_row({std::to_string(conns), fmt_k(r.rps), fmt(r.p99_us)});
    }
    t.print();
  }

  print_title(
      "Ablation C: shadow-QP active cap vs QP-cache thrashing (§3.3, [52])\n"
      "96 tenants, one busy RC connection each; the RNIC cache holds 64\n"
      "active QPs. Uncapped, every QP stays active and thrashes the cache\n"
      "(per-WR penalty); the shadow-QP cap keeps the active set resident");
  {
    Table t({"active-QP policy", "RPS", "QP cache misses"});
    {
      core::EngineConfig cfg;
      cfg.rc_connections = 1;  // 96 tenants = 96 QPs > 64 cache slots
      const auto r = run_echo(cfg, 96, 2);
      t.add_row({"capped at cache size (PALLADIUM)", fmt_k(r.rps),
                 std::to_string(r.cache_miss)});
    }
    {
      core::EngineConfig cfg;
      cfg.rc_connections = 1;
      cfg.max_active_qps = 4096;  // effectively uncapped
      const auto r = run_echo(cfg, 96, 2);
      t.add_row({"uncapped (always-active QPs)", fmt_k(r.rps),
                 std::to_string(r.cache_miss)});
    }
    t.print();
  }

  print_title(
      "Ablation D: SRQ provisioning vs RNR stalls (§3.5.2)\n"
      "The core-thread replenisher must outrun consumption; shallow SRQs\n"
      "stall senders in receiver-not-ready state");
  {
    Table t({"srq_fill", "replenish period (us)", "RPS", "RNR events"});
    struct Cfg { int fill; sim::Duration period; };
    for (const Cfg c : {Cfg{4, 200'000}, Cfg{16, 50'000}, Cfg{64, 20'000},
                        Cfg{256, 20'000}}) {
      core::EngineConfig cfg;
      cfg.srq_fill = c.fill;
      cfg.replenish_period = c.period;
      const auto r = run_echo(cfg, 1, 64);
      t.add_row({std::to_string(c.fill), fmt(static_cast<double>(c.period) / 1e3, 0),
                 fmt_k(r.rps), std::to_string(r.rnr)});
    }
    t.print();
  }
  return 0;
}
