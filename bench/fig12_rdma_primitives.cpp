// Figure 12 (§4.1.2): selection of RDMA primitives for the lock-free
// zero-copy data plane. Two DNEs on different worker nodes act as an echo
// client/server pair, one core each, over four designs:
//   two-sided (Palladium), OWRC-Best (one-sided write + cache-hot receiver
//   copy), OWRC-Worst (TLB-flushed copy), OWDL (one-sided write +
//   distributed RDMA-CAS locks).
// Output: (1) mean end-to-end echo latency per message size; (2) RPS at
// concurrency 8.
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "core/onesided.hpp"
#include "proto/cost_model.hpp"
#include "rdma/rnic.hpp"

namespace {

using namespace pd;

constexpr TenantId kTenant{1};
constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct Result {
  double mean_us = 0;
  double rps = 0;
};

/// One fully assembled two-node echo world; `variant`: 0=two-sided,
/// 1=OWRC-Best, 2=OWRC-Worst, 3=OWDL.
Result run_variant(int variant, std::uint32_t payload, int concurrency,
                   sim::Duration duration) {
  sim::Scheduler sched;
  rdma::RdmaNetwork net(sched);
  mem::MemoryDomain mem1(kNode1), mem2(kNode2);
  rdma::Rnic rnic1(net, kNode1, mem1), rnic2(net, kNode2, mem2);
  sim::Core core1(sched, "dne1", cost::kDpuCoreSpeed);
  sim::Core core2(sched, "dne2", cost::kDpuCoreSpeed);

  for (auto* dom : {&mem1, &mem2}) {
    auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 256, 8192);
    tm.export_to_rdma();
  }
  rnic1.register_memory(mem1.by_tenant(kTenant).pool_id());
  rnic2.register_memory(mem2.by_tenant(kTenant).pool_id());

  rdma::QueuePair& qa = rnic1.create_qp(kTenant);
  rdma::QueuePair& qb = rnic2.create_qp(kTenant);
  rdma::connect_qps(qa, qb, nullptr);
  sched.run();
  qa.activate(nullptr);
  qb.activate(nullptr);
  sched.run();

  std::uint64_t completed = 0;
  double total_rtt_ns = 0;
  const sim::TimePoint t_end = sched.now() + duration;

  std::function<void()> issue;  // per-slot request loop

  std::unique_ptr<core::TwoSidedEchoPeer> ts_client, ts_server;
  std::unique_ptr<core::OwrcEchoPeer> rc_client, rc_server;
  std::unique_ptr<core::OwdlEchoPeer> dl_client, dl_server;
  mem::TenantMemory* stage1 = nullptr;
  mem::TenantMemory* stage2 = nullptr;

  auto on_done = [&](sim::Duration rtt) {
    ++completed;
    total_rtt_ns += static_cast<double>(rtt);
    if (sched.now() < t_end) issue();
  };

  switch (variant) {
    case 0: {
      ts_client = std::make_unique<core::TwoSidedEchoPeer>(core1, rnic1,
                                                           kTenant, false);
      ts_server = std::make_unique<core::TwoSidedEchoPeer>(core2, rnic2,
                                                           kTenant, true);
      ts_client->start(qa, 64);
      ts_server->start(qb, 64);
      issue = [&] { ts_client->send_request(payload, on_done); };
      break;
    }
    case 1:
    case 2: {
      const bool cold = variant == 2;
      stage1 = &mem1.create_tenant_pool(TenantId{900}, "rdma_only_1", 64, 8192);
      stage2 = &mem2.create_tenant_pool(TenantId{900}, "rdma_only_2", 64, 8192);
      stage1->export_to_rdma();
      stage2->export_to_rdma();
      rnic1.register_memory(stage1->pool_id());
      rnic2.register_memory(stage2->pool_id());
      rc_client = std::make_unique<core::OwrcEchoPeer>(core1, rnic1, kTenant,
                                                       false, cold);
      rc_server = std::make_unique<core::OwrcEchoPeer>(core2, rnic2, kTenant,
                                                       true, cold);
      rc_client->start(qa, *stage1, 32);
      rc_server->start(qb, *stage2, 32);
      rc_client->set_remote_pool(stage2->pool_id());
      rc_server->set_remote_pool(stage1->pool_id());
      issue = [&] { rc_client->send_request(payload, on_done); };
      break;
    }
    case 3: {
      dl_client = std::make_unique<core::OwdlEchoPeer>(core1, rnic1, kTenant,
                                                       false);
      dl_server = std::make_unique<core::OwdlEchoPeer>(core2, rnic2, kTenant,
                                                       true);
      dl_client->start(qa, 32);
      dl_server->start(qb, 32);
      dl_client->set_remote_pool(mem2.by_tenant(kTenant).pool_id());
      dl_server->set_remote_pool(mem1.by_tenant(kTenant).pool_id());
      issue = [&] { dl_client->send_request(payload, on_done); };
      break;
    }
  }

  for (int i = 0; i < concurrency; ++i) issue();
  sched.run_until(t_end);
  sched.run();  // drain in-flight echoes

  Result r;
  r.mean_us = completed == 0 ? 0 : total_rtt_ns / static_cast<double>(completed) / 1e3;
  r.rps = static_cast<double>(completed) / sim::to_sec(duration);
  return r;
}

}  // namespace

int main() {
  using namespace pd::bench;
  constexpr pd::sim::Duration kRun = 2'000'000'000;  // 2 s virtual
  const char* names[] = {"Two-sided (PALLADIUM)", "OWRC-Best", "OWRC-Worst",
                         "OWDL"};

  print_title(
      "Figure 12 (1): RDMA primitive selection — mean echo latency (us)\n"
      "Paper reference @4KB: two-sided 11.6, OWRC-Best 15.0, OWRC-Worst 16.7,"
      " OWDL 26.1; @64B two-sided 8.4");
  {
    Table t({"design", "64B", "512B", "1KB", "4KB"});
    for (int v = 0; v < 4; ++v) {
      std::vector<std::string> row{names[v]};
      for (std::uint32_t size : {64u, 512u, 1024u, 4096u}) {
        row.push_back(fmt(run_variant(v, size, 1, kRun).mean_us));
      }
      t.add_row(row);
    }
    t.print();
  }

  print_title(
      "Figure 12 (2): RDMA primitive selection — RPS (concurrency 8)\n"
      "Paper reference: two-sided up to 1.3x OWRC-Best, 1.4x OWRC-Worst, "
      ">2.1x OWDL");
  {
    Table t({"design", "64B", "1KB", "4KB"});
    std::vector<double> rps_4k(4);
    for (int v = 0; v < 4; ++v) {
      std::vector<std::string> row{names[v]};
      for (std::uint32_t size : {64u, 1024u, 4096u}) {
        const auto r = run_variant(v, size, 8, kRun);
        row.push_back(fmt_k(r.rps));
        if (size == 4096u) rps_4k[static_cast<std::size_t>(v)] = r.rps;
      }
      t.add_row(row);
    }
    t.print();
    print_note("speedup of two-sided over OWRC-Best @4KB: x" +
               fmt(rps_4k[0] / rps_4k[1], 2));
    print_note("speedup of two-sided over OWRC-Worst @4KB: x" +
               fmt(rps_4k[0] / rps_4k[2], 2));
    print_note("speedup of two-sided over OWDL @4KB: x" +
               fmt(rps_4k[0] / rps_4k[3], 2));
  }
  return 0;
}
