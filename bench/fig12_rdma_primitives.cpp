// Figure 12 (§4.1.2): selection of RDMA primitives for the lock-free
// zero-copy data plane. Two DNEs on different worker nodes act as an echo
// client/server pair, one core each, over four designs:
//   two-sided (Palladium), OWRC-Best (one-sided write + cache-hot receiver
//   copy), OWRC-Worst (TLB-flushed copy), OWDL (one-sided write +
//   distributed RDMA-CAS locks), and — the ISSUE 8 ablation axis — a pure
//   one-sided READ fetch where the server never runs at all.
// Output: (1) mean end-to-end echo latency per message size; (2) RPS at
// concurrency 8.
//
// `--cart-store [--threads N] [--seconds S] [--json PATH]` runs the
// application-level ablation instead: the boutique's cart-touching chains
// over RPC vs the RDMA-resident state store (control/cartstore_bench.hpp).
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "core/onesided.hpp"
#include "proto/cost_model.hpp"
#include "rdma/rnic.hpp"
#include "control/cartstore_bench.hpp"

namespace {

using namespace pd;

constexpr TenantId kTenant{1};
constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct Result {
  double mean_us = 0;
  double rps = 0;
};

/// Variant 4: state-fetch over one-sided READ. The "server" is a passive
/// slab — pre-allocated slots in its unified pool — and never executes an
/// instruction; the client posts kRead WRs and harvests its own CQEs. Not
/// an echo (nothing to echo back): one fetch is the whole round trip,
/// which is exactly the cart-store access pattern the ISSUE 8 runtime
/// path uses.
class ReadFetchClient {
 public:
  ReadFetchClient(sim::Core& core, rdma::Rnic& rnic, TenantId tenant)
      : sched_(rnic.scheduler()), core_(core), rnic_(rnic), tenant_(tenant) {}

  void start(rdma::QueuePair& tx_qp, PoolId remote_pool, int slots) {
    tx_qp_ = &tx_qp;
    remote_pool_ = remote_pool;
    pool_ = &rnic_.host_mem().by_tenant(tenant_).pool();
    for (int i = 0; i < slots; ++i) {
      auto d = pool_->allocate(mem::actor_rnic(rnic_.node()));
      PD_CHECK(d.has_value(), "landing pool too small for slot count");
      slots_.push_back(*d);
      free_slots_.push_back(static_cast<std::uint32_t>(slots_.size() - 1));
    }
    rnic_.cq().set_notify([this] { drain_cq(); });
  }

  void send_request(std::uint32_t payload_len, core::EchoDone done) {
    PD_CHECK(!free_slots_.empty(), "request concurrency exceeds slot count");
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    const std::uint64_t id = next_id_++;
    inflight_.emplace(id, Pending{sched_.now(), slot, std::move(done)});
    // Posting cost only — no header build, no staging transfer: the READ
    // result lands by DMA and the record is consumed in place.
    core_.submit(cost::kDneSchedNs + cost::kDneTxStageNs / 2,
                 [this, id, slot, payload_len] {
                   rdma::WorkRequest wr;
                   wr.wr_id = id;
                   wr.opcode = rdma::Opcode::kRead;
                   wr.local = slots_[slot];
                   wr.remote_pool = remote_pool_;
                   wr.remote_index = slot;
                   wr.read_len = payload_len;
                   tx_qp_->post_send(wr);
                 });
  }

 private:
  struct Pending {
    sim::TimePoint start;
    std::uint32_t slot;
    core::EchoDone done;
  };

  void drain_cq() {
    for (const auto& c : rnic_.cq().poll(16)) {
      PD_CHECK(!c.is_recv && c.opcode == rdma::Opcode::kRead &&
                   c.status == rdma::CompletionStatus::kSuccess,
               "unexpected completion in READ-fetch client");
      auto it = inflight_.find(c.wr_id);
      PD_CHECK(it != inflight_.end(), "unmatched READ completion " << c.wr_id);
      Pending p = std::move(it->second);
      inflight_.erase(it);
      core_.submit(cost::kDneRxStageNs / 2, [this, p = std::move(p)] {
        free_slots_.push_back(p.slot);
        if (p.done) p.done(sched_.now() - p.start);
      });
    }
  }

  sim::Scheduler& sched_;
  sim::Core& core_;
  rdma::Rnic& rnic_;
  TenantId tenant_;
  mem::BufferPool* pool_ = nullptr;
  PoolId remote_pool_{};
  rdma::QueuePair* tx_qp_ = nullptr;
  std::vector<mem::BufferDescriptor> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::uint64_t, Pending> inflight_;
  std::uint64_t next_id_ = 1;
};

/// One fully assembled two-node echo world; `variant`: 0=two-sided,
/// 1=OWRC-Best, 2=OWRC-Worst, 3=OWDL, 4=one-sided READ fetch.
Result run_variant(int variant, std::uint32_t payload, int concurrency,
                   sim::Duration duration) {
  sim::Scheduler sched;
  rdma::RdmaNetwork net(sched);
  mem::MemoryDomain mem1(kNode1), mem2(kNode2);
  rdma::Rnic rnic1(net, kNode1, mem1), rnic2(net, kNode2, mem2);
  sim::Core core1(sched, "dne1", cost::kDpuCoreSpeed);
  sim::Core core2(sched, "dne2", cost::kDpuCoreSpeed);

  for (auto* dom : {&mem1, &mem2}) {
    auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 256, 8192);
    tm.export_to_rdma();
  }
  rnic1.register_memory(mem1.by_tenant(kTenant).pool_id());
  rnic2.register_memory(mem2.by_tenant(kTenant).pool_id());

  rdma::QueuePair& qa = rnic1.create_qp(kTenant);
  rdma::QueuePair& qb = rnic2.create_qp(kTenant);
  rdma::connect_qps(qa, qb, nullptr);
  sched.run();
  qa.activate(nullptr);
  qb.activate(nullptr);
  sched.run();

  std::uint64_t completed = 0;
  double total_rtt_ns = 0;
  const sim::TimePoint t_end = sched.now() + duration;

  std::function<void()> issue;  // per-slot request loop

  std::unique_ptr<core::TwoSidedEchoPeer> ts_client, ts_server;
  std::unique_ptr<core::OwrcEchoPeer> rc_client, rc_server;
  std::unique_ptr<core::OwdlEchoPeer> dl_client, dl_server;
  std::unique_ptr<ReadFetchClient> rd_client;
  mem::TenantMemory* stage1 = nullptr;
  mem::TenantMemory* stage2 = nullptr;

  auto on_done = [&](sim::Duration rtt) {
    ++completed;
    total_rtt_ns += static_cast<double>(rtt);
    if (sched.now() < t_end) issue();
  };

  switch (variant) {
    case 0: {
      ts_client = std::make_unique<core::TwoSidedEchoPeer>(core1, rnic1,
                                                           kTenant, false);
      ts_server = std::make_unique<core::TwoSidedEchoPeer>(core2, rnic2,
                                                           kTenant, true);
      ts_client->start(qa, 64);
      ts_server->start(qb, 64);
      issue = [&] { ts_client->send_request(payload, on_done); };
      break;
    }
    case 1:
    case 2: {
      const bool cold = variant == 2;
      stage1 = &mem1.create_tenant_pool(TenantId{900}, "rdma_only_1", 64, 8192);
      stage2 = &mem2.create_tenant_pool(TenantId{900}, "rdma_only_2", 64, 8192);
      stage1->export_to_rdma();
      stage2->export_to_rdma();
      rnic1.register_memory(stage1->pool_id());
      rnic2.register_memory(stage2->pool_id());
      rc_client = std::make_unique<core::OwrcEchoPeer>(core1, rnic1, kTenant,
                                                       false, cold);
      rc_server = std::make_unique<core::OwrcEchoPeer>(core2, rnic2, kTenant,
                                                       true, cold);
      rc_client->start(qa, *stage1, 32);
      rc_server->start(qb, *stage2, 32);
      rc_client->set_remote_pool(stage2->pool_id());
      rc_server->set_remote_pool(stage1->pool_id());
      issue = [&] { rc_client->send_request(payload, on_done); };
      break;
    }
    case 3: {
      dl_client = std::make_unique<core::OwdlEchoPeer>(core1, rnic1, kTenant,
                                                       false);
      dl_server = std::make_unique<core::OwdlEchoPeer>(core2, rnic2, kTenant,
                                                       true);
      dl_client->start(qa, 32);
      dl_server->start(qb, 32);
      dl_client->set_remote_pool(mem2.by_tenant(kTenant).pool_id());
      dl_server->set_remote_pool(mem1.by_tenant(kTenant).pool_id());
      issue = [&] { dl_client->send_request(payload, on_done); };
      break;
    }
    case 4: {
      // Passive server: mirrored record slots in its unified pool, owned by
      // its RNIC (the one-sided target), never touched by core2.
      auto& server_pool = mem2.by_tenant(kTenant).pool();
      for (int i = 0; i < 32; ++i) {
        auto d = server_pool.allocate(mem::actor_rnic(kNode2));
        PD_CHECK(d.has_value(), "server slab pool exhausted");
      }
      rd_client = std::make_unique<ReadFetchClient>(core1, rnic1, kTenant);
      rd_client->start(qa, mem2.by_tenant(kTenant).pool_id(), 32);
      issue = [&] { rd_client->send_request(payload, on_done); };
      break;
    }
  }

  for (int i = 0; i < concurrency; ++i) issue();
  sched.run_until(t_end);
  sched.run();  // drain in-flight echoes

  Result r;
  r.mean_us = completed == 0 ? 0 : total_rtt_ns / static_cast<double>(completed) / 1e3;
  r.rps = static_cast<double>(completed) / sim::to_sec(duration);
  return r;
}

/// `--cart-store` mode: the application-level rpc-vs-store ablation.
int run_cart_store_mode(int argc, char** argv) {
  using namespace pd::bench;
  control::CartAblationOptions opts;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cart-store") == 0) continue;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      opts.seconds = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  print_title(
      "Cart-store ablation (ISSUE 8): boutique cart hops over two-sided RPC "
      "vs the RDMA-resident state store");
  const control::CartAblationResult r = control::run_cart_ablation(opts);
  std::fputs(r.table().c_str(), stdout);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path);
      return 1;
    }
    const std::string j = r.json();
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pd::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cart-store") == 0) {
      return run_cart_store_mode(argc, argv);
    }
  }

  constexpr pd::sim::Duration kRun = 2'000'000'000;  // 2 s virtual
  const char* names[] = {"Two-sided (PALLADIUM)", "OWRC-Best", "OWRC-Worst",
                         "OWDL", "One-sided READ"};
  constexpr int kVariants = 5;

  print_title(
      "Figure 12 (1): RDMA primitive selection — mean echo latency (us)\n"
      "Paper reference @4KB: two-sided 11.6, OWRC-Best 15.0, OWRC-Worst 16.7,"
      " OWDL 26.1; @64B two-sided 8.4\n"
      "(One-sided READ is a state *fetch*, not an echo: the remote CPU "
      "never runs — the ISSUE 8 cart-store access pattern.)");
  {
    Table t({"design", "64B", "512B", "1KB", "4KB"});
    for (int v = 0; v < kVariants; ++v) {
      std::vector<std::string> row{names[v]};
      for (std::uint32_t size : {64u, 512u, 1024u, 4096u}) {
        row.push_back(fmt(run_variant(v, size, 1, kRun).mean_us));
      }
      t.add_row(row);
    }
    t.print();
  }

  print_title(
      "Figure 12 (2): RDMA primitive selection — RPS (concurrency 8)\n"
      "Paper reference: two-sided up to 1.3x OWRC-Best, 1.4x OWRC-Worst, "
      ">2.1x OWDL");
  {
    Table t({"design", "64B", "1KB", "4KB"});
    std::vector<double> rps_4k(kVariants);
    for (int v = 0; v < kVariants; ++v) {
      std::vector<std::string> row{names[v]};
      for (std::uint32_t size : {64u, 1024u, 4096u}) {
        const auto r = run_variant(v, size, 8, kRun);
        row.push_back(fmt_k(r.rps));
        if (size == 4096u) rps_4k[static_cast<std::size_t>(v)] = r.rps;
      }
      t.add_row(row);
    }
    t.print();
    print_note("speedup of two-sided over OWRC-Best @4KB: x" +
               fmt(rps_4k[0] / rps_4k[1], 2));
    print_note("speedup of two-sided over OWRC-Worst @4KB: x" +
               fmt(rps_4k[0] / rps_4k[2], 2));
    print_note("speedup of two-sided over OWDL @4KB: x" +
               fmt(rps_4k[0] / rps_4k[3], 2));
    print_note("one-sided READ fetch vs two-sided RPC fetch @4KB: x" +
               fmt(rps_4k[4] / rps_4k[0], 2));
  }
  return 0;
}
