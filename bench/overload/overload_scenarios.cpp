// Overload-scenario sweep driver (ISSUE 7): runs the deterministic
// scenarios from src/control/scenario.hpp and emits their integer-only
// JSON artifacts for the golden gate.
//
//   $ ./bench/overload_scenarios --scenario noisy_neighbor --control on
//   $ ./bench/overload_scenarios --scenario all --threads 2 --json out.json
//
// --scenario all concatenates every scenario's result (control off then
// on) into one JSON array, the artifact tools/golden/overload_slo.json
// pins. Byte-identical across --threads 1/2/4 by construction.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "control/scenario.hpp"

using namespace pd;

int main(int argc, char** argv) {
  std::string scenario = "all";
  std::string control = "both";
  std::string json_path;
  std::string ledger_path;
  control::OverloadOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--control") == 0 && i + 1 < argc) {
      control = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      opts.threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      opts.seconds = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.chaos_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--ledger-json") == 0 && i + 1 < argc) {
      ledger_path = argv[++i];
    } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
      const char* p = argv[++i];
      if (std::strcmp(p, "burn") == 0) {
        opts.shed_policy = control::ShedPolicy::kBurnRate;
      } else if (std::strcmp(p, "blame") == 0) {
        opts.shed_policy = control::ShedPolicy::kBlame;
      } else {
        std::fprintf(stderr, "unknown --policy \"%s\" (burn|blame)\n", p);
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario <name|all>] [--control on|off|both] "
                   "[--policy burn|blame] [--threads N] [--seconds S] "
                   "[--seed K] [--json FILE] [--ledger-json FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<control::OverloadScenario> scenarios;
  if (scenario == "all") {
    scenarios = control::all_scenarios();
  } else {
    scenarios = {control::parse_scenario(scenario)};
  }
  std::vector<bool> columns;
  if (control == "both") {
    columns = {false, true};
  } else if (control == "on") {
    columns = {true};
  } else if (control == "off") {
    columns = {false};
  } else {
    std::fprintf(stderr, "unknown --control \"%s\"\n", control.c_str());
    return 2;
  }

  std::string json = "[\n";
  std::string ledger = "[\n";
  bool first = true;
  for (control::OverloadScenario s : scenarios) {
    for (bool on : columns) {
      opts.scenario = s;
      opts.control = on;
      const control::OverloadResult r = control::run_overload(opts);
      std::printf("%s\n", r.table().c_str());
      if (!first) {
        json += ",\n";
        ledger += ",\n";
      }
      first = false;
      json += r.json();
      ledger += r.ledger_json;
      if (!r.zero_loss) {
        std::fprintf(stderr, "FAIL: %s control=%d lost requests silently\n",
                     r.scenario.c_str(), on ? 1 : 0);
        return 1;
      }
    }
  }
  json += "]\n";
  ledger += "]\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("overload artifact -> %s\n", json_path.c_str());
  }
  if (!ledger_path.empty()) {
    std::FILE* f = std::fopen(ledger_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", ledger_path.c_str());
      return 1;
    }
    std::fwrite(ledger.data(), 1, ledger.size(), f);
    std::fclose(f);
    std::printf("ledger artifact -> %s\n", ledger_path.c_str());
  }
  return 0;
}
