// Figure 9 (§3.5.4): viable DPU<->host communication channels. Multiple
// host functions issue back-to-back 16 B descriptor echoes against a
// single-core DNE; we compare loopback TCP, Comch-E (event-driven) and
// Comch-P (busy-polled producer/consumer ring).
// Output: (1) round-trip latency; (2) descriptor transfer rate.
#include <functional>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "dpu/comch.hpp"
#include "ipc/channel.hpp"
#include "proto/cost_model.hpp"

namespace {

using namespace pd;

struct Result {
  double mean_rtt_us = 0;
  double rps = 0;
};

/// Comch variants: descriptor echo against a 1-core DNE.
Result run_comch(dpu::ComchVariant variant, int functions,
                 sim::Duration duration) {
  sim::Scheduler sched;
  sim::Core dne(sched, "dne", cost::kDpuCoreSpeed);
  std::vector<std::unique_ptr<sim::Core>> fn_cores;

  dpu::ComchServer* srv_ptr = nullptr;
  dpu::ComchServer server(sched, dne, variant,
                          [&](FunctionId from, const mem::BufferDescriptor& d) {
                            srv_ptr->send_to_client(from, d);  // echo
                          });
  srv_ptr = &server;

  std::uint64_t completed = 0;
  double total_rtt = 0;
  const sim::TimePoint t_end = duration;
  std::vector<sim::TimePoint> sent_at(static_cast<std::size_t>(functions));

  std::function<void(int)> issue = [&](int idx) {
    sent_at[static_cast<std::size_t>(idx)] = sched.now();
    server.send_to_server(FunctionId{static_cast<std::uint32_t>(idx + 1)},
                          {PoolId{1}, static_cast<std::uint32_t>(idx), 16,
                           TenantId{1}});
  };

  for (int i = 0; i < functions; ++i) {
    fn_cores.push_back(std::make_unique<sim::Core>(sched, "fn"));
    server.connect(FunctionId{static_cast<std::uint32_t>(i + 1)},
                   *fn_cores.back(), [&, i](const mem::BufferDescriptor&) {
                     ++completed;
                     total_rtt += static_cast<double>(
                         sched.now() - sent_at[static_cast<std::size_t>(i)]);
                     if (sched.now() < t_end) issue(i);
                   });
  }
  for (int i = 0; i < functions; ++i) issue(i);
  sched.run_until(t_end);
  sched.run();

  return {completed == 0 ? 0 : total_rtt / static_cast<double>(completed) / 1e3,
          static_cast<double>(completed) / sim::to_sec(duration)};
}

/// Loopback-TCP baseline: same echo via the kernel path.
Result run_tcp(int functions, sim::Duration duration) {
  sim::Scheduler sched;
  sim::Core dne(sched, "dne", cost::kDpuCoreSpeed);
  std::vector<std::unique_ptr<sim::Core>> fn_cores;
  std::vector<std::unique_ptr<ipc::DescriptorHop>> up, down;

  std::uint64_t completed = 0;
  double total_rtt = 0;
  const sim::TimePoint t_end = duration;
  std::vector<sim::TimePoint> sent_at(static_cast<std::size_t>(functions));

  std::function<void(int)> issue = [&](int idx) {
    sent_at[static_cast<std::size_t>(idx)] = sched.now();
    up[static_cast<std::size_t>(idx)]->send(
        {PoolId{1}, static_cast<std::uint32_t>(idx), 16, TenantId{1}});
  };

  const ipc::HopParams tcp_hop{.sender_cost = cost::kTcpChanPerMsgNs,
                               .receiver_cost = cost::kTcpChanPerMsgNs,
                               .latency = cost::kTcpChanLatencyNs};
  for (int i = 0; i < functions; ++i) {
    fn_cores.push_back(std::make_unique<sim::Core>(sched, "fn"));
    down.push_back(std::make_unique<ipc::DescriptorHop>(
        sched, tcp_hop, &dne, fn_cores.back().get(),
        [&, i](const mem::BufferDescriptor&) {
          ++completed;
          total_rtt += static_cast<double>(
              sched.now() - sent_at[static_cast<std::size_t>(i)]);
          if (sched.now() < t_end) issue(i);
        }));
    up.push_back(std::make_unique<ipc::DescriptorHop>(
        sched, tcp_hop, fn_cores.back().get(), &dne,
        [&, i](const mem::BufferDescriptor& d) {
          down[static_cast<std::size_t>(i)]->send(d);  // echo
        }));
  }
  for (int i = 0; i < functions; ++i) issue(i);
  sched.run_until(t_end);
  sched.run();

  return {completed == 0 ? 0 : total_rtt / static_cast<double>(completed) / 1e3,
          static_cast<double>(completed) / sim::to_sec(duration)};
}

}  // namespace

int main() {
  using namespace pd::bench;
  constexpr pd::sim::Duration kRun = 2'000'000'000;  // 2 s virtual

  print_title(
      "Figure 9 (1): DPU<->host descriptor channels — round-trip latency (us)\n"
      "Paper reference: TCP highest; Comch-P >8x lower than TCP; Comch-E "
      "2.7-3.8x better than TCP, stable");
  {
    Table t({"#functions", "TCP", "Comch-E", "Comch-P"});
    for (int fns : {1, 2, 4, 6, 8}) {
      t.add_row({std::to_string(fns),
                 fmt(run_tcp(fns, kRun).mean_rtt_us),
                 fmt(run_comch(pd::dpu::ComchVariant::kEvent, fns, kRun).mean_rtt_us),
                 fmt(run_comch(pd::dpu::ComchVariant::kPolling, fns, kRun).mean_rtt_us)});
    }
    t.print();
  }

  print_title(
      "Figure 9 (2): DPU<->host descriptor channels — transfer rate (RPS)\n"
      "Paper reference: Comch-P overloads beyond ~6 functions (per-endpoint "
      "epoll cost) while Comch-E keeps scaling");
  {
    Table t({"#functions", "TCP", "Comch-E", "Comch-P"});
    for (int fns : {1, 2, 4, 6, 8}) {
      t.add_row({std::to_string(fns),
                 fmt_k(run_tcp(fns, kRun).rps),
                 fmt_k(run_comch(pd::dpu::ComchVariant::kEvent, fns, kRun).rps),
                 fmt_k(run_comch(pd::dpu::ComchVariant::kPolling, fns, kRun).rps)});
    }
    t.print();
    print_note("Comch-E is PALLADIUM's choice: no pinned host cores, stable "
               "latency at function density (§3.5.4)");
  }
  return 0;
}
