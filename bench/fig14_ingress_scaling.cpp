// Figure 14 (§4.1.3): horizontal scaling of the cluster ingress. Load
// grows by one saturating client every 10 s; PALLADIUM's master scales
// busy-polling workers with 60%/30% hysteresis (brief restart blip per
// event), the adapted F-Ingress autoscaler does the same for the proxy,
// and K-Ingress just burns cores until it falls over.
// Output: per-second CPU usage and RPS time series for all three designs.
#include <memory>

#include "bench_common.hpp"
#include "ingress/palladium_ingress.hpp"
#include "ingress/proxy_ingress.hpp"
#include "runtime/function.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kEcho{1};
constexpr sim::Duration kSecond = 1'000'000'000;
// Paper: 3 minutes, +1 client / 10 s. Compressed 3x for simulation cost:
// 60 s with +1 saturating client every 5 s — the hysteresis dynamics are
// identical, just denser in time.
constexpr sim::TimePoint kExperiment = 60 * kSecond;
constexpr int kMaxClients = 12;

struct Series {
  std::vector<double> rps;        // per second
  std::vector<double> cpu;        // cores of useful work per second
  std::vector<double> workers;    // active (pinned) workers
};

enum class Design { kPalladium, kFIngress, kKIngress };

Series run(Design design) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = design == Design::kPalladium ? runtime::SystemKind::kPalladiumDne
                                            : runtime::SystemKind::kSpright;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 2048;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kEcho, "http-echo", kTenant}, kNode1);
  cluster->add_chain(runtime::Chain{1, "echo", kTenant, 256,
                                    {{kEcho, 1'000, 256}}});

  std::unique_ptr<ingress::IngressFrontend> ing;
  ingress::PalladiumIngress* pal = nullptr;
  ingress::ProxyIngress* proxy = nullptr;
  if (design == Design::kPalladium) {
    ingress::PalladiumIngress::Config icfg;
    icfg.initial_workers = 1;
    icfg.max_workers = 8;
    icfg.autoscale = true;
    auto p = std::make_unique<ingress::PalladiumIngress>(*cluster, icfg);
    p->expose_chain("/echo", 1);
    p->finish_setup();
    pal = p.get();
    ing = std::move(p);
  } else {
    ingress::ProxyIngress::Config icfg;
    icfg.stack = design == Design::kFIngress ? proto::StackKind::kFstack
                                             : proto::StackKind::kKernel;
    icfg.cores = design == Design::kFIngress ? 1 : 8;  // kernel RSS over 8
    icfg.autoscale = design == Design::kFIngress;
    icfg.max_workers = 8;
    auto p = std::make_unique<ingress::ProxyIngress>(*cluster, icfg);
    p->expose_chain("/echo", 1);
    p->finish_setup();
    proxy = p.get();
    ing = std::move(p);
  }
  cluster->finish_setup();

  // wrk ramp: +1 client every 10 s, each client pinned to its own core and
  // driving as hard as it can (closed loop, zero think time).
  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/echo";
  wcfg.body = std::string(128, 'x');
  wcfg.client_cores = kMaxClients;
  workload::HttpLoadGen wrk(sched, *ing, wcfg);
  const sim::TimePoint t0 = sched.now();  // connection setup already ran
  for (int c = 0; c < kMaxClients; ++c) {
    sched.schedule_at(t0 + static_cast<sim::TimePoint>(c) * 5 * kSecond,
                      [&wrk] { wrk.add_clients(1); });
  }
  sched.run_until(t0 + kExperiment);
  wrk.stop();
  sched.run();

  Series out;
  auto& rps_series = design == Design::kPalladium ? pal->response_series()
                                                  : proxy->response_series();
  auto& cpu_series = design == Design::kPalladium ? pal->useful_cpu_series()
                                                  : proxy->useful_cpu_series();
  auto& wrk_series = design == Design::kPalladium ? pal->worker_series()
                                                  : proxy->worker_series();
  for (int s = 0; s < 60; ++s) {
    out.rps.push_back(rps_series.bucket_value(static_cast<std::size_t>(s)));
    out.cpu.push_back(cpu_series.bucket_value(static_cast<std::size_t>(s)));
    out.workers.push_back(wrk_series.bucket_value(static_cast<std::size_t>(s)));
  }
  return out;
}

}  // namespace

int main() {
  using namespace pd::bench;
  const auto pal = run(Design::kPalladium);
  const auto fin = run(Design::kFIngress);
  const auto kin = run(Design::kKIngress);

  print_title(
      "Figure 14 (1): ingress CPU usage over time (+1 client / 10 s)\n"
      "Paper reference: PALLADIUM scales workers to match load and uses far "
      "less CPU than interrupt-driven K-Ingress; K-Ingress exhausts all "
      "cores around the 2.5 min mark");
  {
    Table t({"t(s)", "PAL workers", "PAL useful-CPU", "F-Ing workers",
             "F-Ing useful-CPU", "K-Ing useful-CPU"});
    for (int s = 2; s < 60; s += 4) {
      t.add_row({std::to_string(s), fmt(pal.workers[static_cast<std::size_t>(s)], 0),
                 fmt(pal.cpu[static_cast<std::size_t>(s)], 2),
                 fmt(fin.workers[static_cast<std::size_t>(s)], 0),
                 fmt(fin.cpu[static_cast<std::size_t>(s)], 2),
                 fmt(kin.cpu[static_cast<std::size_t>(s)], 2)});
    }
    t.print();
  }

  print_title(
      "Figure 14 (2): ingress RPS over time\n"
      "Paper reference: >5x RPS vs K-Ingress; brief dips at PALLADIUM "
      "scale events (worker restart)");
  {
    Table t({"t(s)", "PALLADIUM", "F-Ingress", "K-Ingress"});
    for (int s = 2; s < 60; s += 4) {
      t.add_row({std::to_string(s), fmt_k(pal.rps[static_cast<std::size_t>(s)]),
                 fmt_k(fin.rps[static_cast<std::size_t>(s)]),
                 fmt_k(kin.rps[static_cast<std::size_t>(s)])});
    }
    t.print();
  }

  double pal_total = 0, kin_total = 0;
  for (int s = 48; s < 60; ++s) {
    pal_total += pal.rps[static_cast<std::size_t>(s)];
    kin_total += kin.rps[static_cast<std::size_t>(s)];
  }
  print_note("steady-state (last 30 s) RPS ratio PALLADIUM/K-Ingress: x" +
             fmt(pal_total / kin_total, 1) + " (paper: >5x)");
  return 0;
}
