// Shared output helpers for the figure-reproduction benches: fixed-width
// tables plus paper-reference annotations, so every binary prints the
// series the paper plots next to what this reproduction measured — plus
// observability plumbing (flag parsing + deterministic snapshot dumps).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pd::bench {

/// True when `flag` (e.g. "--metrics") appears in argv.
inline bool flag_enabled(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Write a deterministic registry snapshot next to the bench output and say
/// where it went.
inline void dump_registry(const obs::Registry& reg, const std::string& path) {
  reg.write_json(path);
  std::printf("  metrics snapshot written to %s\n", path.c_str());
}

inline void print_title(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_note(const std::string& note) {
  std::printf("  %s\n", note.c_str());
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("  ");
      for (std::size_t i = 0; i < row.size(); ++i) {
        std::printf("%-*s  ", static_cast<int>(widths[i]), row[i].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string sep;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      sep += std::string(widths[i], '-') + "  ";
    }
    std::printf("  %s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_k(double v) {
  char buf[64];
  if (v >= 1000) {
    std::snprintf(buf, sizeof buf, "%.1fK", v / 1000.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace pd::bench
