// Figure 11 (§4.1.1): off-path DNE (cross-processor shared memory) vs
// on-path DNE (payloads staged through SoC memory by the slow SoC DMA).
// An echo server/client function pair is deployed on different nodes.
// Output: (1) RPS vs payload size on a single connection; (2) RPS vs
// concurrency at 1 KB payloads — plus the mean-latency deltas behind the
// paper's "up to 1.54x degradation / >20% latency reduction" claims.
#include <memory>

#include "bench_common.hpp"
#include "obs/hub.hpp"
#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "runtime/metrics_export.hpp"
#include "workload/driver.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kEcho{1};
constexpr sim::Duration kRun = 3'000'000'000;  // 3 s virtual

struct Result {
  double rps = 0;
  double mean_us = 0;
};

Result run(runtime::SystemKind system, std::uint32_t payload, int clients,
           obs::Hub* hub = nullptr) {
  // Metrics-only observation: the always-on registry histograms (notably
  // dne.soc_dma_ns) record every event, but per-request span collection is
  // disabled — a 3 s closed-loop run would accumulate millions of spans.
  std::unique_ptr<obs::Session> session;
  if (hub != nullptr) {
    hub->tracer.set_sample_every(0);
    session = std::make_unique<obs::Session>(*hub);
  }

  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = system;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.buffer_bytes = 32 * 1024;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kEcho, "echo", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{1, "echo", kTenant, payload,
                                    {{kEcho, 2'000, payload}}});
  workload::ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
  cluster->finish_setup();

  driver.start(clients);
  const auto start = sched.now();
  sched.run_until(start + kRun);
  driver.stop();
  sched.run();

  if (hub != nullptr) runtime::export_metrics(*cluster, hub->registry);

  return {static_cast<double>(driver.completed()) / sim::to_sec(kRun),
          driver.latencies().mean_ns() / 1e3};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pd::bench;
  const bool metrics = flag_enabled(argc, argv, "--metrics");

  print_title(
      "Figure 11 (1): off-path vs on-path DNE — RPS, single connection, by "
      "payload size\nPaper reference: off-path up to ~1.3x RPS; gap grows "
      "with payload (SoC DMA per-byte cost)");
  {
    Table t({"payload", "off-path RPS", "on-path RPS", "off/on", "off-path us",
             "on-path us"});
    for (std::uint32_t payload : {64u, 256u, 1024u, 4096u}) {
      const auto off = run(runtime::SystemKind::kPalladiumDne, payload, 1);
      const auto on = run(runtime::SystemKind::kPalladiumOnPath, payload, 1);
      t.add_row({std::to_string(payload) + "B", fmt_k(off.rps), fmt_k(on.rps),
                 "x" + fmt(off.rps / on.rps, 2), fmt(off.mean_us),
                 fmt(on.mean_us)});
    }
    t.print();
  }

  print_title(
      "Figure 11 (2): off-path vs on-path DNE — RPS under concurrency (1KB "
      "payload)\nPaper reference: near-parity at low concurrency; on-path "
      "collapses as the serial SoC DMA engine saturates (up to 1.54x)");
  {
    Table t({"connections", "off-path RPS", "on-path RPS", "off/on",
             "off-path us", "on-path us"});
    for (int clients : {1, 2, 4, 8, 16, 32}) {
      const auto off = run(runtime::SystemKind::kPalladiumDne, 1024, clients);
      const auto on = run(runtime::SystemKind::kPalladiumOnPath, 1024, clients);
      t.add_row({std::to_string(clients), fmt_k(off.rps), fmt_k(on.rps),
                 "x" + fmt(off.rps / on.rps, 2), fmt(off.mean_us),
                 fmt(on.mean_us)});
    }
    t.print();
    print_note("off-path wins because the RNIC DMAs straight into host "
               "memory via the cross-processor mmap (Fig. 3 (2))");
  }

  if (metrics) {
    // Instrumented re-run of the concurrency-16 / 1 KB point: the per-hop
    // SoC-DMA histogram in the on-path snapshot is the figure's explanation
    // (the off-path snapshot has no dne.soc_dma_ns entries at all — payloads
    // never transit SoC memory).
    print_title("Metrics snapshots (16 connections, 1KB payload)");
    obs::Hub off_hub;
    obs::Hub on_hub;
    run(runtime::SystemKind::kPalladiumDne, 1024, 16, &off_hub);
    run(runtime::SystemKind::kPalladiumOnPath, 1024, 16, &on_hub);
    dump_registry(off_hub.registry, "fig11_metrics_offpath.json");
    dump_registry(on_hub.registry, "fig11_metrics_onpath.json");
    for (const char* dir : {"tx", "rx"}) {
      const std::string labels = std::string("dir=") + dir + ",node=2";
      if (on_hub.registry.has("dne.soc_dma_ns", labels)) {
        const auto& h = on_hub.registry.histogram_at("dne.soc_dma_ns", labels).hist();
        print_note("on-path soc_dma(" + std::string(dir) +
                   ", node2): " + h.summary());
      }
    }
    print_note(std::string("off-path snapshot has soc_dma histograms: ") +
               (off_hub.registry.has("dne.soc_dma_ns", "dir=tx,node=2")
                    ? "yes (unexpected!)"
                    : "no (payloads bypass SoC memory)"));
  }
  return 0;
}
