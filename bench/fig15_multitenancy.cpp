// Figure 15 (§4.2): multi-tenancy support for RDMA. Three tenants with
// weights 6:1:2 share one DNE configured to saturate at ~110K RPS on its
// single DPU core. Tenant 1 runs the whole 4 minutes; tenant 2 joins at
// 20 s and leaves at 3m20s; tenant 3 (burstier) runs 1m30s-2m30s.
// Output: per-tenant achieved RPS per 10 s interval under (1) FCFS and
// (2) DWRR — FCFS lets the bursty tenants starve tenant 1; DWRR holds the
// 6:1:2 split.
#include <memory>

#include "bench_common.hpp"
#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr sim::Duration kSecond = 1'000'000'000;
// The paper runs 4 minutes of wall time; we compress 10x (24 virtual
// seconds, same arrival/departure pattern, same absolute rates) to keep
// the event count tractable. Shares and shapes are unaffected: DWRR
// reaches its steady split within milliseconds.
constexpr sim::TimePoint kExperiment = 24 * kSecond;

struct TenantSeries {
  std::vector<double> rps_per_10s;
};

std::vector<TenantSeries> run(bool use_dwrr) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 16;
  cfg.pool_buffers = 4096;
  cfg.buffer_bytes = 4096;
  cfg.engine.use_dwrr = use_dwrr;
  // Pin the DNE's single-core capacity near the paper's ~110K RPS
  // operating point (§4.2 configures the same) so the tenant rates below
  // can be the paper's own.
  cfg.engine.extra_per_msg_ns = 300;
  cfg.engine.srq_fill = 512;

  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);

  // Each tenant: a client function on node 1 (driver entry) and a server
  // function on node 2, so every request crosses the DNE twice.
  struct TenantSetup {
    TenantId tenant;
    std::uint32_t weight;
    workload::BurstyLoad::Schedule schedule;
  };
  const std::vector<TenantSetup> tenants = {
      {TenantId{1}, 6,
       {.start = 0, .stop = kExperiment, .rate_rps = 115'000}},
      {TenantId{2}, 1,  // joins at "20s", exits at "3m20s" (/10)
       {.start = 2 * kSecond, .stop = 20 * kSecond, .rate_rps = 40'000,
        .surge_factor = 2.0, .surge_period = 2 * kSecond,
        .surge_on = 600'000'000}},
      {TenantId{3}, 2,  // runs "1m30s-2m30s" (/10), burstier
       {.start = 9 * kSecond, .stop = 15 * kSecond, .rate_rps = 60'000,
        .surge_factor = 3.0, .surge_period = 1'200'000'000,
        .surge_on = 500'000'000}},
  };

  std::uint32_t next_fn = 1;
  std::vector<std::unique_ptr<workload::BurstyLoad>> loads;
  for (const auto& ts : tenants) {
    cluster->add_tenant(ts.tenant, ts.weight);
    const FunctionId server{next_fn++};
    cluster->deploy(runtime::FunctionSpec{server, "echo", ts.tenant}, kNode2);
    const std::uint32_t chain_id = ts.tenant.value();
    cluster->add_chain(runtime::Chain{chain_id, "echo", ts.tenant, 64,
                                      {{server, 1'000, 64}}});
    loads.push_back(std::make_unique<workload::BurstyLoad>(
        *cluster, FunctionId{1000 + ts.tenant.value()}, kNode1, chain_id,
        ts.schedule, /*seed=*/42 + ts.tenant.value()));
  }
  cluster->finish_setup();
  for (auto& l : loads) l->start();
  sched.run_until(kExperiment + kSecond);

  std::vector<TenantSeries> out;
  for (auto& l : loads) {
    TenantSeries series;
    for (int bucket = 0; bucket < 24; ++bucket) {
      series.rps_per_10s.push_back(
          l->completions().bucket_value(static_cast<std::size_t>(bucket)));
    }
    out.push_back(std::move(series));
  }
  return out;
}

void print_series(const char* title, const std::vector<TenantSeries>& s) {
  using namespace pd::bench;
  print_title(title);
  Table t({"t (paper s)", "Tenant-1 (w=6)", "Tenant-2 (w=1)",
           "Tenant-3 (w=2)"});
  for (std::size_t i = 0; i < s[0].rps_per_10s.size(); ++i) {
    t.add_row({std::to_string(i * 10), fmt_k(s[0].rps_per_10s[i]),
               fmt_k(s[1].rps_per_10s[i]), fmt_k(s[2].rps_per_10s[i])});
  }
  t.print();
}

}  // namespace

int main() {
  using namespace pd::bench;
  const auto fcfs = run(/*use_dwrr=*/false);
  print_series(
      "Figure 15 (1): 'FCFS' DNE without multi-tenancy support\n"
      "Paper reference: bursty tenants 2/3 starve tenant 1 on arrival",
      fcfs);

  const auto dwrr = run(/*use_dwrr=*/true);
  print_series(
      "Figure 15 (2): PALLADIUM DNE with DWRR multi-tenancy (weights 6:1:2)\n"
      "Paper reference (at their 110K capacity): ~90K/15K with T2 present; "
      "65K/11K/22K with T2+T3 — shares track weights exactly",
      dwrr);

  // Contention-window share summary (all three tenants active).
  double t1 = 0, t2 = 0, t3 = 0;
  for (std::size_t i = 10; i < 14; ++i) {
    t1 += dwrr[0].rps_per_10s[i];
    t2 += dwrr[1].rps_per_10s[i];
    t3 += dwrr[2].rps_per_10s[i];
  }
  print_note("DWRR contention-window shares (expect ~6 : 1 : 2): " +
             fmt(t1 / t2, 2) + " : 1 : " + fmt(t3 / t2, 2));
  return 0;
}
