// Figure 13 (§4.1.3): transport protocol adaptation at the cluster edge.
// One ingress core serves an HTTP echo function on a worker node behind
// three designs: K-Ingress (kernel NGINX proxy), F-Ingress (F-stack NGINX
// proxy; worker still terminates TCP) and PALLADIUM's HTTP/TCP-to-RDMA
// gateway. Output: mean end-to-end latency and RPS vs client count.
#include <memory>

#include "bench_common.hpp"
#include "ingress/palladium_ingress.hpp"
#include "ingress/proxy_ingress.hpp"
#include "runtime/function.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kEcho{1};
constexpr sim::Duration kRun = 2'000'000'000;  // 2 s virtual

struct Result {
  double rps = 0;
  double mean_ms = 0;
};

enum class Design { kPalladium, kFIngress, kKIngress };

Result run(Design design, int clients) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = design == Design::kPalladium ? runtime::SystemKind::kPalladiumDne
                                            : runtime::SystemKind::kSpright;
  cfg.cpu_cores_per_node = 8;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kEcho, "http-echo", kTenant}, kNode1);
  cluster->add_chain(runtime::Chain{1, "echo", kTenant, 512,
                                    {{kEcho, 4'000, 512}}});

  std::unique_ptr<ingress::IngressFrontend> ing;
  if (design == Design::kPalladium) {
    ingress::PalladiumIngress::Config icfg;
    icfg.initial_workers = 1;  // one CPU core for the ingress
    auto p = std::make_unique<ingress::PalladiumIngress>(*cluster, icfg);
    p->expose_chain("/echo", 1);
    p->finish_setup();
    ing = std::move(p);
  } else {
    ingress::ProxyIngress::Config icfg;
    icfg.stack = design == Design::kFIngress ? proto::StackKind::kFstack
                                             : proto::StackKind::kKernel;
    icfg.cores = 1;
    auto p = std::make_unique<ingress::ProxyIngress>(*cluster, icfg);
    p->expose_chain("/echo", 1);
    p->finish_setup();
    ing = std::move(p);
  }
  cluster->finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/echo";
  wcfg.body = std::string(256, 'x');
  wcfg.client_cores = 16;
  workload::HttpLoadGen wrk(sched, *ing, wcfg);
  wrk.add_clients(clients);
  const auto start = sched.now();
  sched.run_until(start + kRun);
  wrk.stop();
  sched.run();

  return {static_cast<double>(wrk.completed()) / sim::to_sec(kRun),
          wrk.latencies().mean_ns() / 1e6};
}

}  // namespace

int main() {
  using namespace pd::bench;

  print_title(
      "Figure 13 (1): cluster ingress designs — mean end-to-end latency (ms)\n"
      "Paper reference: K-Ingress up to 11.7x PALLADIUM's latency; F-Ingress "
      "~3.4x");
  Table lat({"#clients", "PALLADIUM", "F-Ingress", "K-Ingress", "K/P", "F/P"});
  Table rps({"#clients", "PALLADIUM", "F-Ingress", "K-Ingress", "P/K", "P/F"});
  for (int clients : {4, 8, 16, 32, 64}) {
    const auto p = run(Design::kPalladium, clients);
    const auto f = run(Design::kFIngress, clients);
    const auto k = run(Design::kKIngress, clients);
    lat.add_row({std::to_string(clients), fmt(p.mean_ms, 2), fmt(f.mean_ms, 2),
                 fmt(k.mean_ms, 2), "x" + fmt(k.mean_ms / p.mean_ms, 1),
                 "x" + fmt(f.mean_ms / p.mean_ms, 1)});
    rps.add_row({std::to_string(clients), fmt_k(p.rps), fmt_k(f.rps),
                 fmt_k(k.rps), "x" + fmt(p.rps / k.rps, 1),
                 "x" + fmt(p.rps / f.rps, 1)});
  }
  lat.print();

  print_title(
      "Figure 13 (2): cluster ingress designs — RPS vs #clients\n"
      "Paper reference: PALLADIUM up to 11.4x K-Ingress and 3.2x F-Ingress");
  rps.print();
  print_note("the proxies terminate TCP twice (edge + worker) — deferred "
             "transport conversion doubles protocol work (Fig. 4 (1))");
  return 0;
}
