// Hot-path microbenchmarks (google-benchmark): the real data-plane
// structures Palladium's engines execute per message — SPSC ring ops,
// DWRR scheduling decisions, pool allocate/release, RBR bookkeeping,
// routing lookups, HTTP parsing, histogram recording, and a full
// simulated two-sided echo per iteration.
#include <benchmark/benchmark.h>

#include "core/dwrr.hpp"
#include "core/message.hpp"
#include "core/rbr.hpp"
#include "core/routing.hpp"
#include "ipc/spsc_ring.hpp"
#include "mem/buffer_pool.hpp"
#include "proto/http.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace {

using namespace pd;

void BM_SpscRingPushPop(benchmark::State& state) {
  ipc::SpscRing<mem::BufferDescriptor> ring(1024);
  mem::BufferDescriptor d{PoolId{1}, 7, 64, TenantId{1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(d));
    benchmark::DoNotOptimize(ring.try_pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_DwrrEnqueueDequeue(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  core::DwrrScheduler<mem::BufferDescriptor> dwrr;
  for (int t = 1; t <= tenants; ++t) {
    dwrr.add_tenant(TenantId{static_cast<std::uint32_t>(t)},
                    static_cast<std::uint32_t>(t));
  }
  mem::BufferDescriptor d{PoolId{1}, 0, 64, TenantId{1}};
  int t = 1;
  for (auto _ : state) {
    d.tenant = TenantId{static_cast<std::uint32_t>(t)};
    dwrr.enqueue(d.tenant, d);
    benchmark::DoNotOptimize(dwrr.dequeue());
    t = t % tenants + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DwrrEnqueueDequeue)->Arg(1)->Arg(3)->Arg(16)->Arg(64);

void BM_BufferPoolAllocRelease(benchmark::State& state) {
  mem::BufferPool pool(PoolId{1}, TenantId{1}, 1024, 4096);
  const auto actor = mem::actor_engine(NodeId{1});
  for (auto _ : state) {
    auto d = pool.allocate(actor);
    benchmark::DoNotOptimize(d);
    pool.release(*d, actor);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolAllocRelease);

void BM_OwnershipTransferChain(benchmark::State& state) {
  mem::BufferPool pool(PoolId{1}, TenantId{1}, 16, 4096);
  const auto fn1 = mem::actor_function(FunctionId{1});
  const auto eng = mem::actor_engine(NodeId{1});
  const auto nic = mem::actor_rnic(NodeId{1});
  auto d = pool.allocate(fn1);
  for (auto _ : state) {
    pool.transfer(*d, fn1, eng);
    pool.transfer(*d, eng, nic);
    pool.transfer(*d, nic, fn1);
  }
  state.SetItemsProcessed(state.iterations() * 3);
}
BENCHMARK(BM_OwnershipTransferChain);

void BM_RbrPostConsume(benchmark::State& state) {
  core::ReceiveBufferRegistry rbr;
  const TenantId t{1};
  mem::BufferDescriptor d{PoolId{1}, 0, 64, t};
  for (auto _ : state) {
    rbr.on_posted(t, d);
    rbr.on_consumed(t, d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RbrPostConsume);

void BM_RoutingLookup(benchmark::State& state) {
  core::InterNodeRoutingTable table;
  for (std::uint32_t f = 1; f <= 1024; ++f) {
    table.add_route(FunctionId{f}, NodeId{f % 16});
  }
  std::uint32_t f = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(FunctionId{f}));
    f = f % 1024 + 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLookup);

void BM_MessageHeaderRoundTrip(benchmark::State& state) {
  std::array<std::byte, 256> buf{};
  core::MessageHeader h;
  h.request_id = 1;
  h.payload_len = 64;
  for (auto _ : state) {
    core::write_header(buf, h);
    benchmark::DoNotOptimize(core::read_header(buf));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MessageHeaderRoundTrip);

void BM_HttpParseRequest(benchmark::State& state) {
  const std::string raw =
      "POST /cart/checkout HTTP/1.1\r\nHost: boutique\r\nX-Req: 123456\r\n"
      "Content-Type: application/json\r\nContent-Length: 64\r\n\r\n" +
      std::string(64, '{');
  for (auto _ : state) {
    proto::HttpRequestParser p;
    benchmark::DoNotOptimize(p.feed(raw));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_HttpParseRequest);

void BM_HttpSerializeResponse(benchmark::State& state) {
  proto::HttpResponse resp;
  resp.body = std::string(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(proto::serialize(resp));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HttpSerializeResponse)->Arg(256)->Arg(4096);

void BM_HistogramRecord(benchmark::State& state) {
  sim::LatencyHistogram h;
  sim::Duration v = 1;
  for (auto _ : state) {
    h.record(v);
    v = (v * 997 + 13) & 0xFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_SchedulerEventChurn(benchmark::State& state) {
  // Event throughput of the DES core itself (simulation speed governor).
  for (auto _ : state) {
    state.PauseTiming();
    sim::Scheduler sched;
    int remaining = 10'000;
    state.ResumeTiming();
    std::function<void()> tick = [&] {
      if (--remaining > 0) sched.schedule_after(10, tick);
    };
    sched.schedule_at(0, tick);
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(state.iterations() * 10'000);
}
BENCHMARK(BM_SchedulerEventChurn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
