// Figure 16 + Table 2 (§4.3): Online Boutique end to end. Six data planes
// serve the three measured chains (Home Query, View Cart, Product Query)
// behind their respective ingresses:
//   PALLADIUM (DNE)  — DPU engine + HTTP/TCP-to-RDMA gateway
//   PALLADIUM (CNE)  — same engine on a host core (apples-to-apples)
//   FUYAO-F / FUYAO-K — one-sided + receiver copy, F-/K-Ingress proxy
//   SPRIGHT          — shared memory + kernel TCP inter-node, F-Ingress
//   NightCore        — single node, kernel ingress
// Output: RPS per chain at 20/60/80 clients (Fig. 16 (1)-(3)), mean
// latency (Table 2), and data-plane CPU/DPU core usage (Fig. 16 (4)-(6)).
#include <memory>

#include "bench_common.hpp"
#include "ingress/palladium_ingress.hpp"
#include "ingress/proxy_ingress.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr sim::Duration kRun = 2'000'000'000;  // 2 s virtual measured window

enum class System {
  kPalladiumDne,
  kPalladiumCne,
  kFuyaoF,
  kFuyaoK,
  kSpright,
  kNightcore,
};

const char* name_of(System s) {
  switch (s) {
    case System::kPalladiumDne: return "PALLADIUM (DNE)";
    case System::kPalladiumCne: return "PALLADIUM (CNE)";
    case System::kFuyaoF: return "FUYAO-F";
    case System::kFuyaoK: return "FUYAO-K";
    case System::kSpright: return "SPRIGHT";
    case System::kNightcore: return "NightCore";
  }
  return "?";
}

struct Result {
  double rps = 0;
  double mean_ms = 0;
  double cpu_cores = 0;  ///< data-plane CPU cores (worker nodes, useful)
  double dpu_cores = 0;  ///< pinned DPU cores (DNE only)
  double pinned_cpu = 0; ///< busy-poll host cores (FUYAO/CNE engines)
};

Result run(System system, std::uint32_t chain, int clients) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 16;
  cfg.pool_buffers = 2048;
  switch (system) {
    case System::kPalladiumDne: cfg.system = runtime::SystemKind::kPalladiumDne; break;
    case System::kPalladiumCne: cfg.system = runtime::SystemKind::kPalladiumCne; break;
    case System::kFuyaoF:
    case System::kFuyaoK: cfg.system = runtime::SystemKind::kFuyao; break;
    case System::kSpright: cfg.system = runtime::SystemKind::kSpright; break;
    case System::kNightcore: cfg.system = runtime::SystemKind::kNightcore; break;
  }

  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  const bool single_node = system == System::kNightcore;
  if (!single_node) cluster->add_worker(kNode2);
  runtime::OnlineBoutique::deploy(*cluster, kNode1,
                                  single_node ? kNode1 : kNode2);

  std::unique_ptr<ingress::IngressFrontend> ing;
  if (system == System::kPalladiumDne || system == System::kPalladiumCne) {
    ingress::PalladiumIngress::Config icfg;
    icfg.initial_workers = 2;
    auto p = std::make_unique<ingress::PalladiumIngress>(*cluster, icfg);
    p->expose_chain("/run", chain);
    p->finish_setup();
    ing = std::move(p);
  } else {
    ingress::ProxyIngress::Config icfg;
    icfg.stack = (system == System::kFuyaoF || system == System::kSpright)
                     ? proto::StackKind::kFstack
                     : proto::StackKind::kKernel;
    // NightCore ships a simple built-in kernel ingress (single worker).
    icfg.cores = system == System::kNightcore ? 1 : 2;
    auto p = std::make_unique<ingress::ProxyIngress>(*cluster, icfg);
    p->expose_chain("/run", chain);
    p->finish_setup();
    ing = std::move(p);
  }
  cluster->finish_setup();

  // Snapshot CPU counters at the start of the measured window.
  const auto snapshot = [&] {
    sim::Duration cpu = 0;
    for (NodeId n : {kNode1, kNode2}) {
      if (!cluster->has_worker(n)) continue;
      cpu += cluster->worker(n).cpu().total_busy_ns();
    }
    return cpu;
  };
  const auto fn_compute = [&] {
    sim::Duration total = 0;
    for (std::uint32_t f = 1; f <= 10; ++f) {
      total += cluster->instance(FunctionId{f}).compute_ns_total();
    }
    return total;
  };

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(128, 'x');
  wcfg.client_cores = clients;
  workload::HttpLoadGen wrk(sched, *ing, wcfg);
  wrk.add_clients(clients);

  // Warm up 1 s, then measure.
  sched.run_until(sched.now() + 1'000'000'000);
  const auto cpu0 = snapshot();
  const auto fn0 = fn_compute();
  const auto start = sched.now();
  sched.run_until(start + kRun);
  const auto cpu1 = snapshot();
  const auto fn1 = fn_compute();
  const auto measured_rps = wrk.rps(start, start + kRun);
  wrk.stop();
  sched.run();

  Result r;
  r.rps = measured_rps;
  r.mean_ms = wrk.latencies().mean_ns() / 1e6;
  const double wall = sim::to_sec(kRun);
  r.cpu_cores = (sim::to_sec(cpu1 - cpu0) - sim::to_sec(fn1 - fn0)) / wall;

  // Pinned cores: busy-polling engines occupy their core outright.
  for (NodeId n : {kNode1, kNode2}) {
    if (!cluster->has_worker(n)) continue;
    auto& node = cluster->worker(n);
    if (node.engine_core().busy_poll()) {
      if (system == System::kPalladiumDne) {
        r.dpu_cores += 1.0;  // a wimpy DPU core, not a host core
      } else {
        r.pinned_cpu += 1.0;
      }
    }
  }
  return r;
}

}  // namespace

int main() {
  using namespace pd::bench;
  const System systems[] = {System::kPalladiumDne, System::kPalladiumCne,
                            System::kFuyaoF,       System::kFuyaoK,
                            System::kSpright,      System::kNightcore};
  const std::uint32_t chains[] = {runtime::OnlineBoutique::kHomeQuery,
                                  runtime::OnlineBoutique::kViewCart,
                                  runtime::OnlineBoutique::kProductQuery};
  const int loads[] = {20, 60, 80};

  // results[system][chain][load]
  Result results[6][3][3];
  for (int s = 0; s < 6; ++s) {
    for (int c = 0; c < 3; ++c) {
      for (int l = 0; l < 3; ++l) {
        results[s][c][l] = run(systems[s], chains[c], loads[l]);
      }
    }
  }

  for (int c = 0; c < 3; ++c) {
    print_title(std::string("Figure 16 (") + std::to_string(c + 1) +
                "): Online Boutique RPS — " +
                runtime::OnlineBoutique::chain_name(chains[c]) +
                "\nPaper reference: DNE 2.1-4.1x FUYAO-F, 2.4-4.1x SPRIGHT, "
                "5.1-20.9x NightCore; DNE 1.3-1.8x CNE beyond 20 clients");
    Table t({"system", "20 clients", "60 clients", "80 clients"});
    for (int s = 0; s < 6; ++s) {
      t.add_row({name_of(systems[s]), fmt_k(results[s][c][0].rps),
                 fmt_k(results[s][c][1].rps), fmt_k(results[s][c][2].rps)});
    }
    t.print();
    const double dne80 = results[0][c][2].rps;
    print_note("DNE speedups @80 clients: vs CNE x" +
               fmt(dne80 / results[1][c][2].rps, 2) + ", vs FUYAO-F x" +
               fmt(dne80 / results[2][c][2].rps, 2) + ", vs SPRIGHT x" +
               fmt(dne80 / results[4][c][2].rps, 2) + ", vs NightCore x" +
               fmt(dne80 / results[5][c][2].rps, 2));
  }

  print_title(
      "Table 2: average latency (ms) of Online Boutique chains\n"
      "Paper reference @Home Query: DNE 1.12/2.55/3.19, CNE 1.43/4.39/5.62, "
      "FUYAO-F 3.53/5.96/7.53, SPRIGHT 2.66/7.78/10.4, NightCore 10.77/32.4/42.8");
  {
    Table t({"system", "HomeQ 20", "HomeQ 60", "HomeQ 80", "Cart 20", "Cart 60",
             "Cart 80", "Prod 20", "Prod 60", "Prod 80"});
    for (int s = 0; s < 6; ++s) {
      std::vector<std::string> row{name_of(systems[s])};
      for (int c = 0; c < 3; ++c) {
        for (int l = 0; l < 3; ++l) {
          row.push_back(fmt(results[s][c][l].mean_ms, 2));
        }
      }
      t.add_row(row);
    }
    t.print();
  }

  print_title(
      "Figure 16 (4)-(6): efficiency of offloading — data-plane core usage "
      "at 80 clients\nPaper reference: FUYAO saturates >5 CPU cores; "
      "PALLADIUM (DNE) holds 2 wimpy DPU cores at 100% and frees up to 7 "
      "CPU cores");
  {
    Table t({"system", "chain", "CPU cores (useful)", "pinned CPU cores",
             "DPU cores"});
    for (int s = 0; s < 6; ++s) {
      for (int c = 0; c < 3; ++c) {
        const auto& r = results[s][c][2];
        t.add_row({name_of(systems[s]),
                   runtime::OnlineBoutique::chain_name(chains[c]),
                   fmt(r.cpu_cores, 2), fmt(r.pinned_cpu, 1),
                   fmt(r.dpu_cores, 1)});
      }
    }
    t.print();
    const double dne_cpu = results[0][0][2].cpu_cores;
    const double fuyao_cpu =
        results[3][0][2].cpu_cores + results[3][0][2].pinned_cpu;
    print_note("Home Query @80: FUYAO-K worker-side CPU vs DNE: " +
               fmt(fuyao_cpu, 2) + " vs " + fmt(dne_cpu, 2) + " cores (x" +
               fmt(fuyao_cpu / dne_cpu, 1) + "), DNE offloads to 2 DPU cores");
  }
  return 0;
}
