// Figure 16 + Table 2 (§4.3): Online Boutique end to end. Six data planes
// serve the three measured chains (Home Query, View Cart, Product Query)
// behind their respective ingresses:
//   PALLADIUM (DNE)  — DPU engine + HTTP/TCP-to-RDMA gateway
//   PALLADIUM (CNE)  — same engine on a host core (apples-to-apples)
//   FUYAO-F / FUYAO-K — one-sided + receiver copy, F-/K-Ingress proxy
//   SPRIGHT          — shared memory + kernel TCP inter-node, F-Ingress
//   NightCore        — single node, kernel ingress
// Output: RPS per chain at 20/60/80 clients (Fig. 16 (1)-(3)), mean
// latency (Table 2), and data-plane CPU/DPU core usage (Fig. 16 (4)-(6)).
//
// --scale swaps the six-system two-node comparison for a PALLADIUM (DNE)
// scale-out table: N workers on a leaf-spine fabric, one boutique cell per
// tenant, driven through the sharded epoch-barrier simulator (ISSUE 9).
//   fig16_boutique --scale [--nodes N] [--cells C] [--switch S]
//                  [--threads T] [--clients "a b c"]
// e.g. the >=100k-client regime: --scale --nodes 64 --cells 32 --threads 4
//                  --clients "100000"
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <cstring>
#include <memory>
#include <sstream>

#include "bench_common.hpp"
#include "ingress/palladium_ingress.hpp"
#include "ingress/proxy_ingress.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr sim::Duration kRun = 2'000'000'000;  // 2 s virtual measured window

enum class System {
  kPalladiumDne,
  kPalladiumCne,
  kFuyaoF,
  kFuyaoK,
  kSpright,
  kNightcore,
};

const char* name_of(System s) {
  switch (s) {
    case System::kPalladiumDne: return "PALLADIUM (DNE)";
    case System::kPalladiumCne: return "PALLADIUM (CNE)";
    case System::kFuyaoF: return "FUYAO-F";
    case System::kFuyaoK: return "FUYAO-K";
    case System::kSpright: return "SPRIGHT";
    case System::kNightcore: return "NightCore";
  }
  return "?";
}

struct Result {
  double rps = 0;
  double mean_ms = 0;
  double cpu_cores = 0;  ///< data-plane CPU cores (worker nodes, useful)
  double dpu_cores = 0;  ///< pinned DPU cores (DNE only)
  double pinned_cpu = 0; ///< busy-poll host cores (FUYAO/CNE engines)
};

Result run(System system, std::uint32_t chain, int clients) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 16;
  cfg.pool_buffers = 2048;
  switch (system) {
    case System::kPalladiumDne: cfg.system = runtime::SystemKind::kPalladiumDne; break;
    case System::kPalladiumCne: cfg.system = runtime::SystemKind::kPalladiumCne; break;
    case System::kFuyaoF:
    case System::kFuyaoK: cfg.system = runtime::SystemKind::kFuyao; break;
    case System::kSpright: cfg.system = runtime::SystemKind::kSpright; break;
    case System::kNightcore: cfg.system = runtime::SystemKind::kNightcore; break;
  }

  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  const bool single_node = system == System::kNightcore;
  if (!single_node) cluster->add_worker(kNode2);
  runtime::OnlineBoutique::deploy(*cluster, kNode1,
                                  single_node ? kNode1 : kNode2);

  std::unique_ptr<ingress::IngressFrontend> ing;
  if (system == System::kPalladiumDne || system == System::kPalladiumCne) {
    ingress::PalladiumIngress::Config icfg;
    icfg.initial_workers = 2;
    auto p = std::make_unique<ingress::PalladiumIngress>(*cluster, icfg);
    p->expose_chain("/run", chain);
    p->finish_setup();
    ing = std::move(p);
  } else {
    ingress::ProxyIngress::Config icfg;
    icfg.stack = (system == System::kFuyaoF || system == System::kSpright)
                     ? proto::StackKind::kFstack
                     : proto::StackKind::kKernel;
    // NightCore ships a simple built-in kernel ingress (single worker).
    icfg.cores = system == System::kNightcore ? 1 : 2;
    auto p = std::make_unique<ingress::ProxyIngress>(*cluster, icfg);
    p->expose_chain("/run", chain);
    p->finish_setup();
    ing = std::move(p);
  }
  cluster->finish_setup();

  // Snapshot CPU counters at the start of the measured window.
  const auto snapshot = [&] {
    sim::Duration cpu = 0;
    for (NodeId n : {kNode1, kNode2}) {
      if (!cluster->has_worker(n)) continue;
      cpu += cluster->worker(n).cpu().total_busy_ns();
    }
    return cpu;
  };
  const auto fn_compute = [&] {
    sim::Duration total = 0;
    for (std::uint32_t f = 1; f <= 10; ++f) {
      total += cluster->instance(FunctionId{f}).compute_ns_total();
    }
    return total;
  };

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(128, 'x');
  wcfg.client_cores = clients;
  workload::HttpLoadGen wrk(sched, *ing, wcfg);
  wrk.add_clients(clients);

  // Warm up 1 s, then measure.
  sched.run_until(sched.now() + 1'000'000'000);
  const auto cpu0 = snapshot();
  const auto fn0 = fn_compute();
  const auto start = sched.now();
  sched.run_until(start + kRun);
  const auto cpu1 = snapshot();
  const auto fn1 = fn_compute();
  const auto measured_rps = wrk.rps(start, start + kRun);
  wrk.stop();
  sched.run();

  Result r;
  r.rps = measured_rps;
  r.mean_ms = wrk.latencies().mean_ns() / 1e6;
  const double wall = sim::to_sec(kRun);
  r.cpu_cores = (sim::to_sec(cpu1 - cpu0) - sim::to_sec(fn1 - fn0)) / wall;

  // Pinned cores: busy-polling engines occupy their core outright.
  for (NodeId n : {kNode1, kNode2}) {
    if (!cluster->has_worker(n)) continue;
    auto& node = cluster->worker(n);
    if (node.engine_core().busy_poll()) {
      if (system == System::kPalladiumDne) {
        r.dpu_cores += 1.0;  // a wimpy DPU core, not a host core
      } else {
        r.pinned_cpu += 1.0;
      }
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// --scale: PALLADIUM (DNE) on a multi-switch cluster via the parallel loop
// ---------------------------------------------------------------------------

struct ScaleSpec {
  int nodes = 32;
  std::size_t cells = 16;
  std::size_t nodes_per_switch = 8;
  unsigned threads = 1;
  std::vector<int> loads{64, 128, 256};
};

struct ScaleResult {
  double rps = 0;
  double mean_ms = 0;
  double p99_ms = 0;
  std::uint64_t epochs = 0;
  double wall_sec = 0;
  std::uint64_t events = 0;
};

ScaleResult run_scale(const ScaleSpec& spec, int clients) {
  constexpr sim::Duration kWarm = 500'000'000;   // 0.5 s
  constexpr sim::Duration kWindow = 1'000'000'000;  // 1 s measured

  const std::size_t shards =
      1 + (static_cast<std::size_t>(spec.nodes) + spec.nodes_per_switch - 1) /
              spec.nodes_per_switch;
  sim::ParallelSim psim(shards, spec.threads);
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 16;
  cfg.pool_buffers = 2048;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.topology.nodes_per_switch = spec.nodes_per_switch;
  cfg.shard_mapping = runtime::ShardMapping::kLeafPerShard;
  auto cluster = std::make_unique<runtime::Cluster>(psim, cfg);
  sim::Scheduler& sched = psim.shard(0);

  std::vector<NodeId> nodes;
  for (int i = 0; i < spec.nodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(1 + i)};
    cluster->add_worker(id);
    nodes.push_back(id);
  }
  const auto cells =
      runtime::OnlineBoutique::deploy_cells(*cluster, nodes, spec.cells);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;  // closed-loop sweep, no retry storm
  ingress::PalladiumIngress ing(*cluster, icfg);
  const auto route = [](std::uint32_t cell) {
    return cell == 0 ? std::string("/run") : "/run#" + std::to_string(cell);
  };
  for (const auto& cell : cells) ing.expose_chain(route(cell.index), cell.home_query);
  ing.finish_setup();
  cluster->finish_setup();

  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  const int per_cell = clients / static_cast<int>(cells.size());
  int leftover = clients % static_cast<int>(cells.size());
  for (const auto& cell : cells) {
    const int n = per_cell + (leftover-- > 0 ? 1 : 0);
    if (n <= 0) continue;
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = route(cell.index);
    wcfg.body = std::string(128, 'x');
    wcfg.client_cores = n;
    auto gen = std::make_unique<workload::HttpLoadGen>(sched, ing, wcfg);
    gen->add_clients(n);
    gens.push_back(std::move(gen));
  }

  psim.run_until(sched.now() + kWarm);
  const auto start = sched.now();
  const auto events0 = psim.events_processed();
  const auto epochs0 = psim.epochs();
  const auto wall0 = std::chrono::steady_clock::now();
  psim.run_until(start + kWindow);
  const auto wall1 = std::chrono::steady_clock::now();

  ScaleResult r;
  r.wall_sec = std::chrono::duration<double>(wall1 - wall0).count();
  r.events = psim.events_processed() - events0;
  r.epochs = psim.epochs() - epochs0;
  for (const auto& g : gens) r.rps += g->rps(start, start + kWindow);
  sim::LatencyHistogram merged;
  for (const auto& g : gens) merged.merge(g->latencies());
  r.mean_ms = merged.mean_ns() / 1e6;
  r.p99_ms = static_cast<double>(merged.quantile(0.99)) / 1e6;
  for (auto& g : gens) g->stop();
  psim.run();
  return r;
}

int scale_main(const ScaleSpec& spec) {
  using namespace pd::bench;
  const std::size_t leaves =
      (static_cast<std::size_t>(spec.nodes) + spec.nodes_per_switch - 1) /
      spec.nodes_per_switch;
  print_title("Scale-out: PALLADIUM (DNE) Online Boutique Home Query — " +
              std::to_string(spec.nodes) + " workers / " +
              std::to_string(leaves) + " leaf switches / " +
              std::to_string(spec.cells) + " cells, sharded across " +
              std::to_string(spec.threads) + " thread(s)");
  Table t({"clients", "RPS", "mean ms", "p99 ms", "epochs/sim-s",
           "wall Mevents/s"});
  for (int clients : spec.loads) {
    const ScaleResult r = run_scale(spec, clients);
    t.add_row({std::to_string(clients), fmt_k(r.rps), fmt(r.mean_ms, 2),
               fmt(r.p99_ms, 2), fmt_k(static_cast<double>(r.epochs)),
               fmt(r.wall_sec > 0
                       ? static_cast<double>(r.events) / r.wall_sec / 1e6
                       : 0,
                   2)});
  }
  t.print();
  print_note("one shard per leaf switch; per-pair lookahead batches every "
             "cross-leaf horizon to ~4.5 us (ISSUE 9)");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pd::bench;
  bool scale = false;
  ScaleSpec spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0) {
      scale = true;
    } else if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      spec.nodes = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--cells") == 0 && i + 1 < argc) {
      spec.cells = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--switch") == 0 && i + 1 < argc) {
      spec.nodes_per_switch = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      spec.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      spec.loads.clear();
      std::istringstream is(argv[++i]);
      for (int c; is >> c;) spec.loads.push_back(c);
    } else {
      std::cerr << "usage: fig16_boutique [--scale [--nodes N] [--cells C] "
                   "[--switch S] [--threads T] [--clients \"a b c\"]]\n";
      return 2;
    }
  }
  if (scale) {
    if (spec.nodes < 2 || spec.cells == 0 || spec.nodes_per_switch == 0 ||
        spec.threads == 0 || spec.loads.empty()) {
      std::cerr << "fig16_boutique: --scale wants >=2 nodes, >=1 cell, "
                   ">=1 per-switch, >=1 thread and a client list\n";
      return 2;
    }
    return scale_main(spec);
  }
  const System systems[] = {System::kPalladiumDne, System::kPalladiumCne,
                            System::kFuyaoF,       System::kFuyaoK,
                            System::kSpright,      System::kNightcore};
  const std::uint32_t chains[] = {runtime::OnlineBoutique::kHomeQuery,
                                  runtime::OnlineBoutique::kViewCart,
                                  runtime::OnlineBoutique::kProductQuery};
  const int loads[] = {20, 60, 80};

  // results[system][chain][load]
  Result results[6][3][3];
  for (int s = 0; s < 6; ++s) {
    for (int c = 0; c < 3; ++c) {
      for (int l = 0; l < 3; ++l) {
        results[s][c][l] = run(systems[s], chains[c], loads[l]);
      }
    }
  }

  for (int c = 0; c < 3; ++c) {
    print_title(std::string("Figure 16 (") + std::to_string(c + 1) +
                "): Online Boutique RPS — " +
                runtime::OnlineBoutique::chain_name(chains[c]) +
                "\nPaper reference: DNE 2.1-4.1x FUYAO-F, 2.4-4.1x SPRIGHT, "
                "5.1-20.9x NightCore; DNE 1.3-1.8x CNE beyond 20 clients");
    Table t({"system", "20 clients", "60 clients", "80 clients"});
    for (int s = 0; s < 6; ++s) {
      t.add_row({name_of(systems[s]), fmt_k(results[s][c][0].rps),
                 fmt_k(results[s][c][1].rps), fmt_k(results[s][c][2].rps)});
    }
    t.print();
    const double dne80 = results[0][c][2].rps;
    print_note("DNE speedups @80 clients: vs CNE x" +
               fmt(dne80 / results[1][c][2].rps, 2) + ", vs FUYAO-F x" +
               fmt(dne80 / results[2][c][2].rps, 2) + ", vs SPRIGHT x" +
               fmt(dne80 / results[4][c][2].rps, 2) + ", vs NightCore x" +
               fmt(dne80 / results[5][c][2].rps, 2));
  }

  print_title(
      "Table 2: average latency (ms) of Online Boutique chains\n"
      "Paper reference @Home Query: DNE 1.12/2.55/3.19, CNE 1.43/4.39/5.62, "
      "FUYAO-F 3.53/5.96/7.53, SPRIGHT 2.66/7.78/10.4, NightCore 10.77/32.4/42.8");
  {
    Table t({"system", "HomeQ 20", "HomeQ 60", "HomeQ 80", "Cart 20", "Cart 60",
             "Cart 80", "Prod 20", "Prod 60", "Prod 80"});
    for (int s = 0; s < 6; ++s) {
      std::vector<std::string> row{name_of(systems[s])};
      for (int c = 0; c < 3; ++c) {
        for (int l = 0; l < 3; ++l) {
          row.push_back(fmt(results[s][c][l].mean_ms, 2));
        }
      }
      t.add_row(row);
    }
    t.print();
  }

  print_title(
      "Figure 16 (4)-(6): efficiency of offloading — data-plane core usage "
      "at 80 clients\nPaper reference: FUYAO saturates >5 CPU cores; "
      "PALLADIUM (DNE) holds 2 wimpy DPU cores at 100% and frees up to 7 "
      "CPU cores");
  {
    Table t({"system", "chain", "CPU cores (useful)", "pinned CPU cores",
             "DPU cores"});
    for (int s = 0; s < 6; ++s) {
      for (int c = 0; c < 3; ++c) {
        const auto& r = results[s][c][2];
        t.add_row({name_of(systems[s]),
                   runtime::OnlineBoutique::chain_name(chains[c]),
                   fmt(r.cpu_cores, 2), fmt(r.pinned_cpu, 1),
                   fmt(r.dpu_cores, 1)});
      }
    }
    t.print();
    const double dne_cpu = results[0][0][2].cpu_cores;
    const double fuyao_cpu =
        results[3][0][2].cpu_cores + results[3][0][2].pinned_cpu;
    print_note("Home Query @80: FUYAO-K worker-side CPU vs DNE: " +
               fmt(fuyao_cpu, 2) + " vs " + fmt(dne_cpu, 2) + " cores (x" +
               fmt(fuyao_cpu / dne_cpu, 1) + "), DNE offloads to 2 DPU cores");
  }
  return 0;
}
