// Structurally compare two observability/bench JSON artifacts.
//
//   $ tools/report_diff baseline.json candidate.json
//   $ tools/report_diff a.json b.json --rel 0.01 --only sim_
//   $ tools/report_diff a.json b.json --abs 5 --ignore wall_ --ignore rss
//
// Both files are flattened to dotted leaf paths and every leaf compared:
// missing/extra keys and type changes are always regressions; numeric
// leaves pass when the difference is within --abs OR --rel; strings must
// match exactly. Exit 0 when clean, 1 on any regression, 2 on usage/IO
// errors — so bench_gate.sh and run_all.sh can gate on artifacts
// directly. Works on any of our exports: metrics.json, critpath.json,
// timeseries.json, SLO reports, perf_gate BENCH json.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "obs/runcompare.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <baseline.json> <candidate.json>\n"
               "          [--abs X] [--rel X] [--ignore SUBSTR]...\n"
               "          [--only SUBSTR]... [--max-print N] [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path_a = nullptr;
  const char* path_b = nullptr;
  pd::obs::DiffOptions opt;
  std::size_t max_print = 40;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(arg, "--abs") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.abs_tol = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--rel") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.rel_tol = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--ignore") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.ignore.emplace_back(v);
    } else if (std::strcmp(arg, "--only") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opt.only.emplace_back(v);
    } else if (std::strcmp(arg, "--max-print") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      max_print = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else if (path_a == nullptr) {
      path_a = arg;
    } else if (path_b == nullptr) {
      path_b = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path_a == nullptr || path_b == nullptr) return usage(argv[0]);

  pd::obs::JsonValue a;
  pd::obs::JsonValue b;
  try {
    a = pd::obs::json_parse_file(path_a);
    b = pd::obs::json_parse_file(path_b);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "report_diff: %s\n", e.what());
    return 2;
  }

  const pd::obs::DiffReport report = pd::obs::diff_runs(a, b, opt);
  if (report.clean()) {
    if (!quiet) {
      std::printf("report_diff: OK — %zu leaves match (%s vs %s)\n",
                  report.compared, path_a, path_b);
    }
    return 0;
  }
  std::printf("report_diff: REGRESSION — %s vs %s\n", path_a, path_b);
  std::fputs(report.format(max_print).c_str(), stdout);
  return 1;
}
