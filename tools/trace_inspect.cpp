// Inspect a Chrome trace-event JSON file produced by obs::Tracer.
//
//   $ tools/trace_inspect boutique_trace.json             # hop summary
//   $ tools/trace_inspect --summary boutique_trace.json   # same, explicit
//   $ tools/trace_inspect --critpath boutique_trace.json  # p99 critical-path
//                                                         # attribution table
//   $ tools/trace_inspect --critpath --json t.json        # machine-readable
//   $ tools/trace_inspect boutique_trace.json <trace_id>  # one request tree
//   $ tools/trace_inspect --timeline boutique_timeseries.json [filter]
//                                                         # sparkline dashboard
//                                                         # from a flight-
//                                                         # recorder export
//   $ tools/trace_inspect --interference boutique_ledger.json
//                                                         # cross-tenant blame
//                                                         # table from a
//                                                         # resource-ledger
//                                                         # export
//
// The summary groups spans by name (count / mean / p50 / p99 / max) so a
// quick look answers "where does a request spend its time" without leaving
// the terminal; --critpath partitions each request's end-to-end interval
// into attributed hop segments (Fig. 11/12); the per-trace view prints the
// span tree with simulated-time offsets, the same structure Perfetto
// renders graphically. Empty or malformed inputs exit non-zero so scripted
// pipelines fail loudly instead of diffing an empty report.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/runcompare.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_reader.hpp"

using pd::obs::ReadSpan;

namespace {

void print_tree(const std::vector<ReadSpan>& spans, const ReadSpan& node,
                std::int64_t t0, int depth) {
  std::printf("  %*s%-24s %10.2f us  +%.2f us  [%s]\n", depth * 2, "",
              node.name.c_str(), static_cast<double>(node.dur_ns) / 1e3,
              static_cast<double>(node.begin_ns - t0) / 1e3,
              node.track.c_str());
  for (const auto& s : spans) {
    if (s.parent_id == node.span_id && s.span_id != node.span_id) {
      print_tree(spans, s, t0, depth + 1);
    }
  }
}

/// Exact order statistic (value at rank ceil(q*N)) over a sorted sample.
std::int64_t exact_quantile(const std::vector<std::int64_t>& sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

int summary(const char* path, const std::vector<ReadSpan>& spans) {
  struct Agg {
    std::vector<std::int64_t> durs;
    std::int64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  std::uint64_t traces = 0;
  for (const auto& s : spans) {
    auto& a = by_name[s.name];
    a.durs.push_back(s.dur_ns);
    a.total_ns += s.dur_ns;
    if (s.parent_id == 0) ++traces;
  }

  std::printf("%s: %zu spans, %llu traces\n\n", path, spans.size(),
              static_cast<unsigned long long>(traces));
  std::printf("  %-24s %8s %12s %12s %12s %12s\n", "span", "count", "mean us",
              "p50 us", "p99 us", "max us");
  for (auto& [name, a] : by_name) {
    std::sort(a.durs.begin(), a.durs.end());
    std::printf(
        "  %-24s %8zu %12.2f %12.2f %12.2f %12.2f\n", name.c_str(),
        a.durs.size(),
        static_cast<double>(a.total_ns) / static_cast<double>(a.durs.size()) /
            1e3,
        static_cast<double>(exact_quantile(a.durs, 0.50)) / 1e3,
        static_cast<double>(exact_quantile(a.durs, 0.99)) / 1e3,
        static_cast<double>(a.durs.back()) / 1e3);
  }
  return 0;
}

/// Re-render the flight recorder's ASCII dashboard from an exported
/// timeseries.json, so a run's queue/pool/fault timeline is inspectable
/// after the fact without re-running the simulation.
int timeline(const char* path, const char* filter) {
  pd::obs::JsonValue doc;
  try {
    doc = pd::obs::json_parse_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto* series = doc.find("series");
  const auto* period = doc.find("sample_period_ns");
  if (series == nullptr ||
      series->kind != pd::obs::JsonValue::Kind::kObject) {
    std::fprintf(stderr,
                 "error: %s is not a flight-recorder export (no \"series\" "
                 "object)\n",
                 path);
    return 1;
  }
  std::printf("%s: %zu series", path, series->members.size());
  if (period != nullptr && period->kind == pd::obs::JsonValue::Kind::kNumber) {
    std::printf(", sample period %.3f ms", period->number / 1e6);
  }
  std::printf("\n");
  std::size_t shown = 0;
  for (const auto& [key, val] : series->members) {
    if (filter != nullptr && key.find(filter) == std::string::npos) continue;
    const auto* points = val.find("points");
    if (points == nullptr ||
        points->kind != pd::obs::JsonValue::Kind::kArray) {
      continue;
    }
    // Point rows are [t0, n, min, max, mean]; plot the per-bucket max so
    // transient saturation stays visible after downsampling.
    std::vector<double> maxes;
    double peak = 0.0, last = 0.0;
    for (const auto& row : points->elements) {
      if (row.elements.size() < 5) continue;
      maxes.push_back(row.elements[3].number);
      peak = std::max(peak, row.elements[3].number);
      last = row.elements[4].number;
    }
    std::printf("  %-44s peak %-10.4g last %-10.4g |%s|\n", key.c_str(), peak,
                last, pd::obs::render_sparkline(maxes, 56).c_str());
    ++shown;
  }
  if (shown == 0) {
    std::fprintf(stderr, "error: no series%s%s in %s\n",
                 filter != nullptr ? " matching " : "",
                 filter != nullptr ? filter : "", path);
    return 1;
  }
  return 0;
}

/// One ledger export: either a bare {"ledger": {...}} object (boutique_demo
/// --ledger) or an element of the array overload_scenarios --ledger-json
/// writes. Prints the cross-tenant blame matrix plus per-resource-kind rows.
int interference_one(const pd::obs::JsonValue& root, std::size_t index) {
  const auto* led = root.find("ledger");
  if (led == nullptr || led->kind != pd::obs::JsonValue::Kind::kObject) {
    return -1;
  }
  const auto* totals = led->find("totals");
  std::printf("ledger[%zu]:", index);
  if (totals != nullptr) {
    const auto* busy = totals->find("busy_ns");
    const auto* wait = totals->find("wait_ns");
    const auto* bytes = totals->find("bytes");
    if (busy != nullptr) std::printf(" busy %.3f ms", busy->number / 1e6);
    if (wait != nullptr) std::printf(" wait %.3f ms", wait->number / 1e6);
    if (bytes != nullptr) std::printf(" bytes %.0f", bytes->number);
  }
  std::printf("\n");

  // Cross-tenant matrix (aggressor -> victim, self and unattributed rows
  // skipped: only interference is interesting here).
  struct Row {
    std::int64_t aggressor, victim, ns;
  };
  std::vector<Row> rows;
  const auto* matrix = led->find("blame_matrix");
  if (matrix != nullptr && matrix->kind == pd::obs::JsonValue::Kind::kArray) {
    for (const auto& cell : matrix->elements) {
      const auto* a = cell.find("aggressor");
      const auto* v = cell.find("victim");
      const auto* ns = cell.find("ns");
      if (a == nullptr || v == nullptr || ns == nullptr) continue;
      const auto ai = static_cast<std::int64_t>(a->number);
      const auto vi = static_cast<std::int64_t>(v->number);
      if (ai < 0 || ai == vi) continue;
      rows.push_back(Row{ai, vi, static_cast<std::int64_t>(ns->number)});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.ns > b.ns; });
  if (rows.empty()) {
    std::printf("  (no cross-tenant interference recorded)\n");
  } else {
    std::printf("  %-10s %-10s %14s\n", "aggressor", "victim", "blame ms");
    for (const auto& r : rows) {
      std::printf("  %-10lld %-10lld %14.3f\n",
                  static_cast<long long>(r.aggressor),
                  static_cast<long long>(r.victim),
                  static_cast<double>(r.ns) / 1e6);
    }
  }

  // Per-resource-kind breakdown of the same cross-tenant charges, so "who"
  // comes with "where" (queue wait vs. NIC vs. fabric link ...).
  const auto* blame = led->find("blame");
  if (blame != nullptr && blame->kind == pd::obs::JsonValue::Kind::kArray) {
    std::map<std::string, std::int64_t> by_kind;
    for (const auto& cell : blame->elements) {
      const auto* kind = cell.find("kind");
      const auto* a = cell.find("aggressor");
      const auto* v = cell.find("victim");
      const auto* ns = cell.find("ns");
      if (kind == nullptr || a == nullptr || v == nullptr || ns == nullptr) {
        continue;
      }
      const auto ai = static_cast<std::int64_t>(a->number);
      if (ai < 0 || ai == static_cast<std::int64_t>(v->number)) continue;
      by_kind[kind->string] += static_cast<std::int64_t>(ns->number);
    }
    for (const auto& [kind, ns] : by_kind) {
      std::printf("    %-12s %14.3f ms\n", kind.c_str(),
                  static_cast<double>(ns) / 1e6);
    }
  }
  return static_cast<int>(rows.size());
}

/// Render the blame tables from a resource-ledger JSON export (single
/// object or array of per-run objects).
int interference(const char* path) {
  pd::obs::JsonValue doc;
  try {
    doc = pd::obs::json_parse_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::printf("%s:\n", path);
  std::size_t ledgers = 0;
  if (doc.kind == pd::obs::JsonValue::Kind::kArray) {
    for (std::size_t i = 0; i < doc.elements.size(); ++i) {
      if (interference_one(doc.elements[i], i) >= 0) ++ledgers;
    }
  } else {
    if (interference_one(doc, 0) >= 0) ++ledgers;
  }
  if (ledgers == 0) {
    std::fprintf(stderr,
                 "error: %s is not a resource-ledger export (no \"ledger\" "
                 "object)\n",
                 path);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool critpath = false;
  bool as_json = false;
  bool as_csv = false;
  bool as_timeline = false;
  bool as_interference = false;
  const char* path = nullptr;
  const char* trace_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--critpath") == 0) {
      critpath = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      as_timeline = true;
    } else if (std::strcmp(argv[i], "--interference") == 0) {
      as_interference = true;
    } else if (std::strcmp(argv[i], "--summary") == 0) {
      // default mode; accepted for explicitness
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      as_csv = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      trace_arg = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--summary|--critpath] [--json|--csv] "
                 "<trace.json> [trace_id]\n"
                 "       %s --timeline <timeseries.json> [filter]\n"
                 "       %s --interference <ledger.json>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  if (as_timeline) return timeline(path, trace_arg);
  if (as_interference) return interference(path);

  std::vector<ReadSpan> spans;
  try {
    spans = pd::obs::read_chrome_trace_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (spans.empty()) {
    // A trace with zero slices means the producer wasn't sampling (or the
    // file is from something else entirely): every report would be empty.
    std::fprintf(stderr, "error: %s contains no spans\n", path);
    return 1;
  }

  if (critpath) {
    const auto report = pd::obs::analyze(spans, 0.99);
    if (report.traces == 0) {
      std::fprintf(stderr,
                   "error: %s has no complete request (closed root) spans\n",
                   path);
      return 1;
    }
    if (as_json) {
      std::fputs(pd::obs::report_json(report).c_str(), stdout);
    } else if (as_csv) {
      std::fputs(pd::obs::report_csv(report).c_str(), stdout);
    } else {
      std::fputs(pd::obs::report_table(report).c_str(), stdout);
    }
    return 0;
  }

  if (trace_arg != nullptr) {
    const auto want =
        static_cast<std::uint64_t>(std::strtoull(trace_arg, nullptr, 10));
    std::vector<ReadSpan> mine;
    for (const auto& s : spans) {
      if (s.trace_id == want) mine.push_back(s);
    }
    if (mine.empty()) {
      std::fprintf(stderr, "no spans for trace %llu\n",
                   static_cast<unsigned long long>(want));
      return 1;
    }
    std::sort(mine.begin(), mine.end(),
              [](const ReadSpan& a, const ReadSpan& b) {
                return a.begin_ns < b.begin_ns;
              });
    std::printf("trace %llu (%zu spans):\n",
                static_cast<unsigned long long>(want), mine.size());
    for (const auto& s : mine) {
      if (s.parent_id == 0) print_tree(mine, s, mine.front().begin_ns, 0);
    }
    return 0;
  }

  return summary(path, spans);
}
