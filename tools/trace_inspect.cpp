// Inspect a Chrome trace-event JSON file produced by obs::Tracer.
//
//   $ tools/trace_inspect boutique_trace.json            # summary
//   $ tools/trace_inspect boutique_trace.json <trace_id> # one request's tree
//
// The summary groups spans by name (count / mean / max duration) so a quick
// look answers "where does a request spend its time" without leaving the
// terminal; the per-trace view prints the span tree with simulated-time
// offsets, which is the same structure Perfetto renders graphically.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "obs/trace_reader.hpp"

using pd::obs::ReadSpan;

namespace {

void print_tree(const std::vector<ReadSpan>& spans, const ReadSpan& node,
                std::int64_t t0, int depth) {
  std::printf("  %*s%-24s %10.2f us  +%.2f us  [%s]\n", depth * 2, "",
              node.name.c_str(), static_cast<double>(node.dur_ns) / 1e3,
              static_cast<double>(node.begin_ns - t0) / 1e3,
              node.track.c_str());
  for (const auto& s : spans) {
    if (s.parent_id == node.span_id && s.span_id != node.span_id) {
      print_tree(spans, s, t0, depth + 1);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <trace.json> [trace_id]\n", argv[0]);
    return 2;
  }

  std::vector<ReadSpan> spans;
  try {
    spans = pd::obs::read_chrome_trace_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (argc >= 3) {
    const auto want = static_cast<std::uint64_t>(std::strtoull(argv[2], nullptr, 10));
    std::vector<ReadSpan> mine;
    for (const auto& s : spans) {
      if (s.trace_id == want) mine.push_back(s);
    }
    if (mine.empty()) {
      std::fprintf(stderr, "no spans for trace %llu\n",
                   static_cast<unsigned long long>(want));
      return 1;
    }
    std::sort(mine.begin(), mine.end(),
              [](const ReadSpan& a, const ReadSpan& b) {
                return a.begin_ns < b.begin_ns;
              });
    std::printf("trace %llu (%zu spans):\n",
                static_cast<unsigned long long>(want), mine.size());
    for (const auto& s : mine) {
      if (s.parent_id == 0) print_tree(mine, s, mine.front().begin_ns, 0);
    }
    return 0;
  }

  struct Agg {
    std::uint64_t count = 0;
    std::int64_t total_ns = 0;
    std::int64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  std::uint64_t traces = 0;
  for (const auto& s : spans) {
    auto& a = by_name[s.name];
    ++a.count;
    a.total_ns += s.dur_ns;
    a.max_ns = std::max(a.max_ns, s.dur_ns);
    if (s.parent_id == 0) ++traces;
  }

  std::printf("%s: %zu spans, %llu traces\n\n", argv[1], spans.size(),
              static_cast<unsigned long long>(traces));
  std::printf("  %-24s %8s %12s %12s\n", "span", "count", "mean us", "max us");
  for (const auto& [name, a] : by_name) {
    std::printf("  %-24s %8llu %12.2f %12.2f\n", name.c_str(),
                static_cast<unsigned long long>(a.count),
                static_cast<double>(a.total_ns) / static_cast<double>(a.count) / 1e3,
                static_cast<double>(a.max_ns) / 1e3);
  }
  return 0;
}
