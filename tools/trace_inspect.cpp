// Inspect a Chrome trace-event JSON file produced by obs::Tracer.
//
//   $ tools/trace_inspect boutique_trace.json             # hop summary
//   $ tools/trace_inspect --summary boutique_trace.json   # same, explicit
//   $ tools/trace_inspect --critpath boutique_trace.json  # p99 critical-path
//                                                         # attribution table
//   $ tools/trace_inspect --critpath --json t.json        # machine-readable
//   $ tools/trace_inspect boutique_trace.json <trace_id>  # one request tree
//   $ tools/trace_inspect --timeline boutique_timeseries.json [filter]
//                                                         # sparkline dashboard
//                                                         # from a flight-
//                                                         # recorder export
//
// The summary groups spans by name (count / mean / p50 / p99 / max) so a
// quick look answers "where does a request spend its time" without leaving
// the terminal; --critpath partitions each request's end-to-end interval
// into attributed hop segments (Fig. 11/12); the per-trace view prints the
// span tree with simulated-time offsets, the same structure Perfetto
// renders graphically. Empty or malformed inputs exit non-zero so scripted
// pipelines fail loudly instead of diffing an empty report.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/runcompare.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_reader.hpp"

using pd::obs::ReadSpan;

namespace {

void print_tree(const std::vector<ReadSpan>& spans, const ReadSpan& node,
                std::int64_t t0, int depth) {
  std::printf("  %*s%-24s %10.2f us  +%.2f us  [%s]\n", depth * 2, "",
              node.name.c_str(), static_cast<double>(node.dur_ns) / 1e3,
              static_cast<double>(node.begin_ns - t0) / 1e3,
              node.track.c_str());
  for (const auto& s : spans) {
    if (s.parent_id == node.span_id && s.span_id != node.span_id) {
      print_tree(spans, s, t0, depth + 1);
    }
  }
}

/// Exact order statistic (value at rank ceil(q*N)) over a sorted sample.
std::int64_t exact_quantile(const std::vector<std::int64_t>& sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

int summary(const char* path, const std::vector<ReadSpan>& spans) {
  struct Agg {
    std::vector<std::int64_t> durs;
    std::int64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  std::uint64_t traces = 0;
  for (const auto& s : spans) {
    auto& a = by_name[s.name];
    a.durs.push_back(s.dur_ns);
    a.total_ns += s.dur_ns;
    if (s.parent_id == 0) ++traces;
  }

  std::printf("%s: %zu spans, %llu traces\n\n", path, spans.size(),
              static_cast<unsigned long long>(traces));
  std::printf("  %-24s %8s %12s %12s %12s %12s\n", "span", "count", "mean us",
              "p50 us", "p99 us", "max us");
  for (auto& [name, a] : by_name) {
    std::sort(a.durs.begin(), a.durs.end());
    std::printf(
        "  %-24s %8zu %12.2f %12.2f %12.2f %12.2f\n", name.c_str(),
        a.durs.size(),
        static_cast<double>(a.total_ns) / static_cast<double>(a.durs.size()) /
            1e3,
        static_cast<double>(exact_quantile(a.durs, 0.50)) / 1e3,
        static_cast<double>(exact_quantile(a.durs, 0.99)) / 1e3,
        static_cast<double>(a.durs.back()) / 1e3);
  }
  return 0;
}

/// Re-render the flight recorder's ASCII dashboard from an exported
/// timeseries.json, so a run's queue/pool/fault timeline is inspectable
/// after the fact without re-running the simulation.
int timeline(const char* path, const char* filter) {
  pd::obs::JsonValue doc;
  try {
    doc = pd::obs::json_parse_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto* series = doc.find("series");
  const auto* period = doc.find("sample_period_ns");
  if (series == nullptr ||
      series->kind != pd::obs::JsonValue::Kind::kObject) {
    std::fprintf(stderr,
                 "error: %s is not a flight-recorder export (no \"series\" "
                 "object)\n",
                 path);
    return 1;
  }
  std::printf("%s: %zu series", path, series->members.size());
  if (period != nullptr && period->kind == pd::obs::JsonValue::Kind::kNumber) {
    std::printf(", sample period %.3f ms", period->number / 1e6);
  }
  std::printf("\n");
  std::size_t shown = 0;
  for (const auto& [key, val] : series->members) {
    if (filter != nullptr && key.find(filter) == std::string::npos) continue;
    const auto* points = val.find("points");
    if (points == nullptr ||
        points->kind != pd::obs::JsonValue::Kind::kArray) {
      continue;
    }
    // Point rows are [t0, n, min, max, mean]; plot the per-bucket max so
    // transient saturation stays visible after downsampling.
    std::vector<double> maxes;
    double peak = 0.0, last = 0.0;
    for (const auto& row : points->elements) {
      if (row.elements.size() < 5) continue;
      maxes.push_back(row.elements[3].number);
      peak = std::max(peak, row.elements[3].number);
      last = row.elements[4].number;
    }
    std::printf("  %-44s peak %-10.4g last %-10.4g |%s|\n", key.c_str(), peak,
                last, pd::obs::render_sparkline(maxes, 56).c_str());
    ++shown;
  }
  if (shown == 0) {
    std::fprintf(stderr, "error: no series%s%s in %s\n",
                 filter != nullptr ? " matching " : "",
                 filter != nullptr ? filter : "", path);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool critpath = false;
  bool as_json = false;
  bool as_csv = false;
  bool as_timeline = false;
  const char* path = nullptr;
  const char* trace_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--critpath") == 0) {
      critpath = true;
    } else if (std::strcmp(argv[i], "--timeline") == 0) {
      as_timeline = true;
    } else if (std::strcmp(argv[i], "--summary") == 0) {
      // default mode; accepted for explicitness
    } else if (std::strcmp(argv[i], "--json") == 0) {
      as_json = true;
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      as_csv = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      trace_arg = argv[i];
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: %s [--summary|--critpath] [--json|--csv] "
                 "<trace.json> [trace_id]\n"
                 "       %s --timeline <timeseries.json> [filter]\n",
                 argv[0], argv[0]);
    return 2;
  }
  if (as_timeline) return timeline(path, trace_arg);

  std::vector<ReadSpan> spans;
  try {
    spans = pd::obs::read_chrome_trace_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (spans.empty()) {
    // A trace with zero slices means the producer wasn't sampling (or the
    // file is from something else entirely): every report would be empty.
    std::fprintf(stderr, "error: %s contains no spans\n", path);
    return 1;
  }

  if (critpath) {
    const auto report = pd::obs::analyze(spans, 0.99);
    if (report.traces == 0) {
      std::fprintf(stderr,
                   "error: %s has no complete request (closed root) spans\n",
                   path);
      return 1;
    }
    if (as_json) {
      std::fputs(pd::obs::report_json(report).c_str(), stdout);
    } else if (as_csv) {
      std::fputs(pd::obs::report_csv(report).c_str(), stdout);
    } else {
      std::fputs(pd::obs::report_table(report).c_str(), stdout);
    }
    return 0;
  }

  if (trace_arg != nullptr) {
    const auto want =
        static_cast<std::uint64_t>(std::strtoull(trace_arg, nullptr, 10));
    std::vector<ReadSpan> mine;
    for (const auto& s : spans) {
      if (s.trace_id == want) mine.push_back(s);
    }
    if (mine.empty()) {
      std::fprintf(stderr, "no spans for trace %llu\n",
                   static_cast<unsigned long long>(want));
      return 1;
    }
    std::sort(mine.begin(), mine.end(),
              [](const ReadSpan& a, const ReadSpan& b) {
                return a.begin_ns < b.begin_ns;
              });
    std::printf("trace %llu (%zu spans):\n",
                static_cast<unsigned long long>(want), mine.size());
    for (const auto& s : mine) {
      if (s.parent_id == 0) print_tree(mine, s, mine.front().begin_ns, 0);
    }
    return 0;
  }

  return summary(path, spans);
}
