#!/bin/sh
# Wall-clock simulator-performance gate (DESIGN.md §9).
#
# Runs the fixed-seed two-node Online Boutique sweep (bench/perf_gate.cpp)
# and compares against the committed baseline BENCH_PR3.json. Fails loudly
# when wall-clock events/sec drop more than 10% below the baseline, or when
# the *simulated* p50/p99 drift more than 1% — the latter means the model
# changed behavior, which a performance PR must never do.
#
# Usage:
#   tools/bench_gate.sh                 gate against BENCH_PR3.json
#   tools/bench_gate.sh --record FILE   just run the sweep, JSON to FILE
#                                       (for refreshing the baseline)
#
# Wall-clock numbers are machine-dependent: refresh the baseline and the
# gate run on the same machine, or expect noise beyond the 10% margin.
set -e
cd "$(dirname "$0")/.."

GATE=build/bench/perf_gate
if [ ! -x "$GATE" ]; then
  echo "bench_gate: $GATE not built (run: cmake --build build --target perf_gate)" >&2
  exit 2
fi

if [ "$1" = "--record" ] && [ -n "$2" ]; then
  exec "$GATE" --json "$2"
fi

BASELINE=${1:-BENCH_PR3.json}
if [ ! -f "$BASELINE" ]; then
  echo "bench_gate: baseline $BASELINE not found" >&2
  exit 2
fi
exec "$GATE" --check "$BASELINE"
