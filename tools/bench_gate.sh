#!/bin/sh
# Wall-clock simulator-performance gate (DESIGN.md §9, §10).
#
# Runs the fixed-seed two-node Online Boutique sweep (bench/perf_gate.cpp)
# and compares against a baseline. Fails loudly when wall-clock events/sec
# drop more than 10% below the baseline, when peak RSS grows more than 15%,
# or when the *simulated* p50/p99 drift more than 1% — the latter means the
# model changed behavior, which a performance PR must never do. On top of
# the gate numbers, tools/report_diff structurally compares the whole BENCH
# json against the local baseline (simulated-time leaves only), so drift in
# any per-load row — not just the gate block — fails the run.
#
# Wall-clock numbers are machine-dependent, so the gate prefers a LOCAL
# baseline recorded on this machine (build/bench_baseline.<fingerprint>.json,
# untracked). When none exists it records one from the current tree — with a
# loud notice, since that run gates nothing — instead of comparing against
# the committed BENCH_*.json numbers from someone else's hardware.
#
# Usage:
#   tools/bench_gate.sh                 gate against the local baseline
#                                       (recording it first if missing)
#   tools/bench_gate.sh --record FILE   just run the sweep, JSON to FILE
#                                       (for refreshing a committed baseline)
#   tools/bench_gate.sh --record-scale  re-record the ISSUE 9 scale-point
#                                       golden (tools/golden/pdes_scale.json)
#   tools/bench_gate.sh --record-ledger re-record the ISSUE 10 resource-
#                                       ledger golden (tools/golden/ledger.json)
#   tools/bench_gate.sh BASELINE.json   gate against an explicit baseline
set -e
cd "$(dirname "$0")/.."

GATE=build/bench/perf_gate
if [ ! -x "$GATE" ]; then
  echo "bench_gate: $GATE not built (run: cmake --build build --target perf_gate)" >&2
  exit 2
fi

if [ "$1" = "--record" ] && [ -n "$2" ]; then
  exec "$GATE" --json "$2"
fi

if [ "$1" = "--record-scale" ]; then
  exec "$GATE" --scale --json tools/golden/pdes_scale.json
fi

if [ "$1" = "--record-ledger" ]; then
  exec build/bench/overload_scenarios --scenario noisy_neighbor \
    --control both --policy blame --seconds 2 --threads 1 \
    --ledger-json tools/golden/ledger.json
fi

if [ -n "$1" ]; then
  BASELINE=$1
  if [ ! -f "$BASELINE" ]; then
    echo "bench_gate: baseline $BASELINE not found" >&2
    exit 2
  fi
  exec "$GATE" --check "$BASELINE"
fi

# Fingerprint this machine: wall-clock baselines only transfer between
# identical hosts. cpuinfo's model name + core count catches container
# moves; cksum keeps the filename filesystem-safe.
FP=$( { uname -m; nproc; grep -m1 "model name" /proc/cpuinfo 2>/dev/null; } \
      | cksum | cut -d' ' -f1)
LOCAL=build/bench_baseline.$FP.json

if [ ! -f "$LOCAL" ]; then
  echo "bench_gate: NOTICE — no baseline recorded on this machine yet." >&2
  echo "bench_gate: the committed BENCH_*.json numbers came from different" >&2
  echo "bench_gate: hardware, so this run records $LOCAL" >&2
  echo "bench_gate: instead of gating; run tools/bench_gate.sh again to gate." >&2
  "$GATE" --json "$LOCAL"
  echo "bench_gate: local baseline recorded." >&2
  exit 0
fi

# One sweep: JSON to a scratch file, gate numbers checked against the
# baseline in-process, then the structural run-diff over the simulated-time
# leaves (sim_p50/p99 and events-per-request of every load row; wall-clock
# leaves are machine noise and excluded). 1% mirrors perf_gate's own drift
# tripwire.
CURRENT=build/bench_current.$FP.json
rc=0
"$GATE" --json "$CURRENT" --check "$LOCAL" || rc=1
if [ -x build/tools/report_diff ]; then
  build/tools/report_diff --only sim_ --only events_per_request --rel 0.01 \
    "$LOCAL" "$CURRENT" || rc=1
fi

# Overload-actuation gate (DESIGN.md §13): the scenario sweep is pure
# simulated time, so its per-tenant SLO tables are exactly reproducible on
# any machine. Drift from the committed golden means the control loop's
# behavior changed — which a performance PR must never do silently.
OVERLOAD=build/bench/overload_scenarios
if [ -x "$OVERLOAD" ] && [ -f tools/golden/overload_slo.json ] \
   && [ -x build/tools/report_diff ]; then
  "$OVERLOAD" --scenario all --control both --seconds 2 --threads 1 \
    --json build/overload_current.json > /dev/null || rc=1
  build/tools/report_diff tools/golden/overload_slo.json \
    build/overload_current.json || rc=1
fi
# One-sided cart-store gate (DESIGN.md §14): the RPC-vs-remote-READ cart
# ablation is pure simulated time, so its tables are exactly reproducible on
# any machine. Drift from the committed golden means the one-sided data
# path's behavior changed — which a performance PR must never do silently.
FIG12=build/bench/fig12_rdma_primitives
if [ -x "$FIG12" ] && [ -f tools/golden/cart_store.json ] \
   && [ -x build/tools/report_diff ]; then
  "$FIG12" --cart-store --seconds 2 --threads 1 \
    --json build/cart_store_current.json > /dev/null || rc=1
  build/tools/report_diff tools/golden/cart_store.json \
    build/cart_store_current.json || rc=1
fi
# Resource-ledger gate (DESIGN.md §16): the noisy-neighbor blame matrix is
# pure simulated time, so the ledger artifact is exactly reproducible on
# any machine. Drift from the committed golden means tenant attribution or
# the blame-driven shedding changed — which a performance PR must never do
# silently; re-record deliberately with --record-ledger.
if [ -x "$OVERLOAD" ] && [ -f tools/golden/ledger.json ] \
   && [ -x build/tools/report_diff ]; then
  "$OVERLOAD" --scenario noisy_neighbor --control both --policy blame \
    --seconds 2 --threads 1 \
    --ledger-json build/ledger_current.json > /dev/null || rc=1
  build/tools/report_diff tools/golden/ledger.json \
    build/ledger_current.json || rc=1
fi
# PDES scale-point gate (DESIGN.md §15): the 32-node leaf-sharded boutique's
# simulated latencies and pdes_* protocol counters (epochs, skip-ahead,
# mailbox messages) are pure functions of the model — exactly reproducible
# on any machine. Drift from the committed golden means the epoch protocol
# or the model changed; re-record deliberately with --record-scale.
if [ -f tools/golden/pdes_scale.json ] && [ -x build/tools/report_diff ]; then
  "$GATE" --scale --json build/pdes_scale_current.json || rc=1
  build/tools/report_diff --only sim_ --only .events --only .requests \
    --only pdes_epochs --only pdes_skip_ahead --only pdes_mailbox \
    tools/golden/pdes_scale.json build/pdes_scale_current.json || rc=1
fi
exit $rc
