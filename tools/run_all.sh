#!/bin/sh
# Full verification run: build, tests, every figure bench. Produces
# test_output.txt and bench_output.txt at the repo root.
#
# Modes:
#   tools/run_all.sh         build + tier-1 tests + all benches
#   tools/run_all.sh asan    build with -DPD_SANITIZE=address,undefined into
#                            build-asan/ and run the tier-1 tests under
#                            ASan/UBSan (no benches; sanitized runs are slow)
#   tools/run_all.sh chaos   build, run the chaos-labeled ctest suite, then
#                            sweep 10 fault-plan seeds through the boutique
#                            demo; fails if any seed loses a request
#   tools/run_all.sh bench   build, then run the wall-clock perf gate sweep
#                            against the committed BENCH_PR3.json baseline;
#                            fails on >10% events/sec regression
#   tools/run_all.sh tsan    build with -DPD_SANITIZE=thread into build-tsan/
#                            and smoke the parallel epoch-barrier loop (the
#                            pdes determinism suite + a threaded perf_gate
#                            smoke) under ThreadSanitizer
#   tools/run_all.sh overload  build, run the overload-labeled ctest suite
#                            (admission/autoscaler units + the scenario
#                            acceptance tests), then sweep all four overload
#                            scenarios (control off AND on) at --threads
#                            1/2/4 into overload_report/; fails if the
#                            per-tenant SLO artifacts differ across thread
#                            counts, drift from the committed golden, or if
#                            report_diff passes a perturbed artifact
#   tools/run_all.sh ledger  build, run the ledger-labeled ctest suite
#                            (blame conservation + merge/thread identity +
#                            the blame-policy acceptance tests), then sweep
#                            the noisy_neighbor scenario (control off AND
#                            on, --policy blame) at --threads 1/2/4 into
#                            ledger_report/; fails if the SLO or ledger
#                            artifacts differ across thread counts, drift
#                            from the committed golden, or if report_diff
#                            passes a perturbed artifact
#   tools/run_all.sh cartstore  build, run the onesided-labeled ctest suite
#                            (one-sided verb semantics + cart-store accept-
#                            ance), then sweep the RPC-vs-one-sided-READ cart
#                            ablation at --threads 1/2/4 into cart_report/;
#                            fails if the artifacts differ across thread
#                            counts, drift from the committed golden, or if
#                            report_diff passes a perturbed artifact
#   tools/run_all.sh scale   build, run the pdes-labeled ctest suite (which
#                            includes the 32-node leaf-sharded determinism
#                            tests), then the perf_gate --scale point at
#                            --threads 1/2/4 into scale_report/; fails if
#                            the deterministic leaves (sim latencies,
#                            events/request, pdes_* protocol counters)
#                            differ across thread counts, drift from the
#                            committed golden, or if report_diff passes a
#                            perturbed artifact
#   tools/run_all.sh obs     build, run the obs-report + obs-ts ctest labels,
#                            then an observability boutique sweep: critical-
#                            path + flamegraph + SLO + flight-recorder
#                            timeline artifacts into obs_report/, byte-
#                            compared across --threads 1/2/4 and diffed
#                            against the committed golden via report_diff
set -e
cd "$(dirname "$0")/.."

if [ "$1" = "bench" ]; then
  cmake -B build -G Ninja
  cmake --build build
  exec tools/bench_gate.sh
fi

if [ "$1" = "chaos" ]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build -L chaos --output-on-failure 2>&1 | tee chaos_output.txt
  for seed in 1 2 3 4 5 6 7 8 9 10; do
    echo "=== boutique_demo --chaos $seed ==="
    ./build/examples/boutique_demo --chaos "$seed" | tail -4
  done 2>&1 | tee -a chaos_output.txt
  if grep -q "LOST REQUESTS" chaos_output.txt; then
    echo "chaos sweep FAILED: a seed lost requests silently" >&2
    exit 1
  fi
  echo "chaos sweep passed: 10 seeds, no request silently lost"
  exit 0
fi

if [ "$1" = "tsan" ]; then
  cmake -B build-tsan -G Ninja -DPD_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan --target pdes_test perf_gate
  TSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-tsan -L pdes --output-on-failure 2>&1 \
    | tee tsan_output.txt
  # The determinism suite runs the sharded boutique at 1/2/4 worker
  # threads; the perf_gate smoke adds the run_until + drain path.
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/bench/perf_gate --smoke --threads 2 > /dev/null
  # A small multi-switch leaf-sharded point exercises the adaptive-horizon
  # skip-ahead and reflection-cap paths (ISSUE 9) under TSan too.
  TSAN_OPTIONS=halt_on_error=1 \
    ./build-tsan/bench/perf_gate --scale --nodes 8 --cells 4 --switch 4 \
    --clients 16 --threads 2 > /dev/null
  echo "tsan smoke passed: parallel epoch loop is data-race-clean"
  exit 0
fi

if [ "$1" = "overload" ]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build -L overload --output-on-failure 2>&1 \
    | tee overload_output.txt
  rm -rf overload_report && mkdir -p overload_report
  # One full scenario sweep (flash_crowd, noisy_neighbor, diurnal, chaos_2x;
  # control off then on) per worker-thread count. The bench exits non-zero
  # if any run loses a request silently.
  for t in 1 2 4; do
    echo "=== overload_scenarios --threads $t (all scenarios, off+on) ==="
    ./build/bench/overload_scenarios --scenario all --control both \
      --seconds 2 --threads "$t" --json "overload_report/t$t.json" \
      | tail -12
  done 2>&1 | tee -a overload_output.txt
  # Determinism gate: the per-tenant SLO tables must be byte-identical for
  # every thread count.
  cmp overload_report/t1.json overload_report/t2.json
  cmp overload_report/t1.json overload_report/t4.json
  echo "overload_report/t*.json identical across --threads 1/2/4" \
    | tee -a overload_output.txt
  # Run-diff gate: the artifact is fully deterministic (simulated time
  # only), so any drift from the committed golden means control-loop
  # behavior changed and the golden must be re-recorded deliberately.
  ./build/tools/report_diff tools/golden/overload_slo.json \
    overload_report/t1.json 2>&1 | tee -a overload_output.txt
  # ...and report_diff itself must fail loudly on a perturbed artifact.
  sed 's/"shed_admission": /"shed_admission": 9/' overload_report/t1.json \
    > overload_report/perturbed.json
  if ./build/tools/report_diff --quiet overload_report/t1.json \
      overload_report/perturbed.json; then
    echo "overload sweep FAILED: report_diff passed a perturbed artifact" >&2
    exit 1
  fi
  echo "report_diff: perturbed artifact rejected (as it must be)"
  echo "overload sweep passed: explicit shedding, SLOs held, deterministic"
  exit 0
fi

if [ "$1" = "ledger" ]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build -L ledger --output-on-failure 2>&1 \
    | tee ledger_output.txt
  rm -rf ledger_report && mkdir -p ledger_report
  # The noisy-neighbor scenario (control off then on, blame-driven
  # shedding) per worker-thread count, emitting both the SLO artifact and
  # the resource-ledger artifact (blame matrix included).
  for t in 1 2 4; do
    echo "=== overload_scenarios noisy_neighbor --policy blame --threads $t ==="
    ./build/bench/overload_scenarios --scenario noisy_neighbor \
      --control both --policy blame --seconds 2 --threads "$t" \
      --json "ledger_report/t$t.json" \
      --ledger-json "ledger_report/t${t}_ledger.json" | tail -16
  done 2>&1 | tee -a ledger_output.txt
  # Determinism gate: both artifacts must be byte-identical for every
  # thread count — the ledger merges per-shard maps in sorted-key order,
  # independent of how shards map to workers.
  for t in 2 4; do
    cmp ledger_report/t1.json "ledger_report/t$t.json"
    cmp ledger_report/t1_ledger.json "ledger_report/t${t}_ledger.json"
  done
  echo "ledger_report/t*_ledger.json identical across --threads 1/2/4" \
    | tee -a ledger_output.txt
  # Run-diff gate: the ledger is fully deterministic (simulated time
  # only), so any drift from the committed golden means attribution or
  # control behavior changed and the golden must be re-recorded
  # deliberately (tools/bench_gate.sh --record-ledger).
  ./build/tools/report_diff tools/golden/ledger.json \
    ledger_report/t1_ledger.json 2>&1 | tee -a ledger_output.txt
  # ...and report_diff itself must fail loudly on a perturbed artifact.
  sed 's/"busy_ns":/"busy_ns":9/' ledger_report/t1_ledger.json \
    > ledger_report/perturbed.json
  if ./build/tools/report_diff --quiet ledger_report/t1_ledger.json \
      ledger_report/perturbed.json; then
    echo "ledger sweep FAILED: report_diff passed a perturbed artifact" >&2
    exit 1
  fi
  echo "report_diff: perturbed artifact rejected (as it must be)"
  # The CLI path over the same artifact: the aggressor->victim matrix,
  # loud failure on a non-ledger input.
  ./build/tools/trace_inspect --interference ledger_report/t1_ledger.json
  if ./build/tools/trace_inspect --interference ledger_report/t1.json \
      2> /dev/null; then
    echo "ledger sweep FAILED: --interference accepted a non-ledger file" >&2
    exit 1
  fi
  echo "ledger sweep passed: attribution conserved, deterministic, blamed"
  exit 0
fi

if [ "$1" = "cartstore" ]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build -L onesided --output-on-failure 2>&1 \
    | tee cartstore_output.txt
  rm -rf cart_report && mkdir -p cart_report
  # One full RPC-vs-remote-READ cart ablation (home / viewcart / addtocart
  # chains, both modes) per worker-thread count.
  for t in 1 2 4; do
    echo "=== fig12_rdma_primitives --cart-store --threads $t (rpc vs store) ==="
    ./build/bench/fig12_rdma_primitives --cart-store --seconds 2 \
      --threads "$t" --json "cart_report/t$t.json" | tail -16
  done 2>&1 | tee -a cartstore_output.txt
  # Determinism gate: the ablation tables must be byte-identical for every
  # thread count.
  cmp cart_report/t1.json cart_report/t2.json
  cmp cart_report/t1.json cart_report/t4.json
  echo "cart_report/t*.json identical across --threads 1/2/4" \
    | tee -a cartstore_output.txt
  # Run-diff gate: the artifact is fully deterministic (simulated time
  # only), so any drift from the committed golden means the one-sided data
  # path changed and the golden must be re-recorded deliberately.
  ./build/tools/report_diff tools/golden/cart_store.json \
    cart_report/t1.json 2>&1 | tee -a cartstore_output.txt
  # ...and report_diff itself must fail loudly on a perturbed artifact.
  sed 's/"cart_invocations": /"cart_invocations": 9/' cart_report/t1.json \
    > cart_report/perturbed.json
  if ./build/tools/report_diff --quiet cart_report/t1.json \
      cart_report/perturbed.json; then
    echo "cartstore sweep FAILED: report_diff passed a perturbed artifact" >&2
    exit 1
  fi
  echo "report_diff: perturbed artifact rejected (as it must be)"
  echo "cartstore sweep passed: one-sided READ path deterministic, no fallbacks"
  exit 0
fi

if [ "$1" = "scale" ]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build -L pdes --output-on-failure 2>&1 | tee scale_output.txt
  rm -rf scale_report && mkdir -p scale_report
  # The ISSUE 9 scale point (32 workers / 4 leaf switches / 16 cells, one
  # shard per leaf) per worker-thread count, plus the PR 4 protocol
  # baseline for the epoch-reduction A/B.
  for t in 1 2 4; do
    echo "=== perf_gate --scale --threads $t ==="
    ./build/bench/perf_gate --scale --threads "$t" \
      --json "scale_report/t$t.json"
  done 2>&1 | tee -a scale_output.txt
  echo "=== perf_gate --scale --legacy-horizon (PR 4 protocol baseline) ===" \
    | tee -a scale_output.txt
  ./build/bench/perf_gate --scale --legacy-horizon \
    --json scale_report/legacy.json 2>&1 | tee -a scale_output.txt
  # Determinism gate: every simulated-time leaf — latencies, event counts,
  # and the pdes_* protocol counters — must be identical across thread
  # counts (wall_sec and barrier_wait are machine noise, excluded).
  for t in 2 4; do
    ./build/tools/report_diff --only sim_ --only .events --only .requests \
      --only pdes_epochs --only pdes_skip_ahead --only pdes_mailbox \
      scale_report/t1.json "scale_report/t$t.json" || exit 1
    echo "scale_report/t$t.json deterministic leaves match t1"
  done 2>&1 | tee -a scale_output.txt
  # Golden gate: drift from the committed scale-point artifact means the
  # model or the epoch protocol changed and the golden must be re-recorded
  # deliberately (tools/bench_gate.sh --record-scale).
  ./build/tools/report_diff --only sim_ --only .events --only .requests \
    --only pdes_epochs --only pdes_skip_ahead --only pdes_mailbox \
    tools/golden/pdes_scale.json scale_report/t1.json \
    2>&1 | tee -a scale_output.txt
  grep -q "report_diff: OK" scale_output.txt || exit 1
  # ...and report_diff itself must fail loudly on a perturbed artifact.
  sed 's/"pdes_epochs": /"pdes_epochs": 9/' scale_report/t1.json \
    > scale_report/perturbed.json
  if ./build/tools/report_diff --quiet --only pdes_epochs \
      scale_report/t1.json scale_report/perturbed.json; then
    echo "scale sweep FAILED: report_diff passed a perturbed artifact" >&2
    exit 1
  fi
  echo "report_diff: perturbed artifact rejected (as it must be)"
  echo "scale sweep passed: 32-node epoch protocol deterministic across threads"
  exit 0
fi

if [ "$1" = "obs" ]; then
  cmake -B build -G Ninja
  cmake --build build
  ctest --test-dir build -L "obs-report|obs-ts" --output-on-failure 2>&1 \
    | tee obs_output.txt
  rm -rf obs_report && mkdir -p obs_report
  # One boutique sweep per worker-thread count, each emitting the full
  # artifact set: critical-path attribution JSON, collapsed-stack
  # flamegraph, SLO watchdog log, trace, metrics snapshot, and the flight
  # recorder's gauge timeline. --strict promotes healthy-run invariants
  # (open spans, routeless drops) to hard failures.
  for t in 1 2 4; do
    echo "=== boutique_demo --threads $t (critpath + flame + slo + timeline) ==="
    ./build/examples/boutique_demo --threads "$t" --seconds 2 --strict \
      --trace --critpath --flame --slo --timeline \
      --prefix "obs_report/t$t" | tail -8
  done 2>&1 | tee -a obs_output.txt
  # Determinism gate: the simulated-time observability artifacts must be
  # byte-identical for every thread count.
  for f in critpath.json flame.folded metrics.json timeseries.json \
           timeseries.csv; do
    cmp obs_report/t1_$f obs_report/t2_$f
    cmp obs_report/t1_$f obs_report/t4_$f
    echo "obs_report/*_$f identical across --threads 1/2/4"
  done 2>&1 | tee -a obs_output.txt
  # Run-diff gate: the timeline must structurally match the committed
  # golden (same workload, same seed — any drift means behavior changed),
  # and report_diff itself must fail loudly on a perturbed artifact.
  ./build/tools/report_diff tools/golden/boutique_timeseries.json \
    obs_report/t1_timeseries.json 2>&1 | tee -a obs_output.txt
  sed 's/"samples": /"samples": 9/' obs_report/t1_timeseries.json \
    > obs_report/perturbed.json
  if ./build/tools/report_diff --quiet obs_report/t1_timeseries.json \
      obs_report/perturbed.json; then
    echo "obs sweep FAILED: report_diff passed a perturbed artifact" >&2
    exit 1
  fi
  echo "report_diff: perturbed artifact rejected (as it must be)"
  # The CLI path over the same artifacts: summary + critpath table, the
  # timeline dashboard, and loud failure on an empty input.
  ./build/tools/trace_inspect --summary obs_report/t1_trace.json | head -20
  ./build/tools/trace_inspect --critpath obs_report/t1_trace.json \
    | tee -a obs_output.txt
  ./build/tools/trace_inspect --timeline obs_report/t1_timeseries.json \
    | head -20
  echo "obs sweep passed: attribution exact and thread-count independent"
  exit 0
fi

if [ "$1" = "asan" ]; then
  cmake -B build-asan -G Ninja -DPD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure 2>&1 | tee test_output.txt
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
