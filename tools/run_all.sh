#!/bin/sh
# Full verification run: build, tests, every figure bench. Produces
# test_output.txt and bench_output.txt at the repo root.
#
# Modes:
#   tools/run_all.sh         build + tier-1 tests + all benches
#   tools/run_all.sh asan    build with -DPD_SANITIZE=address,undefined into
#                            build-asan/ and run the tier-1 tests under
#                            ASan/UBSan (no benches; sanitized runs are slow)
set -e
cd "$(dirname "$0")/.."

if [ "$1" = "asan" ]; then
  cmake -B build-asan -G Ninja -DPD_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir build-asan --output-on-failure 2>&1 | tee test_output.txt
  exit 0
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
