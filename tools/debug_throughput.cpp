// Scratch diagnostic: where is the pipeline bottleneck?
#include <cstdio>

#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

using namespace pd;

void run(int clients, sim::Duration compute_a, long long compute_b) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.pool_buffers = 2048;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(NodeId{1});
  cluster.add_worker(NodeId{2});
  cluster.add_tenant(TenantId{1}, 1);
  cluster.deploy({FunctionId{1}, "a", TenantId{1}}, NodeId{1});
  cluster.deploy({FunctionId{2}, "b", TenantId{1}}, NodeId{2});
  std::vector<runtime::ChainHop> hops;
  hops.push_back({FunctionId{1}, compute_a, 8192});
  if (compute_b >= 0) hops.push_back({FunctionId{2}, compute_b, 128});
  cluster.add_chain(runtime::Chain{1, "ab", TenantId{1}, 4096, hops});
  workload::ChainDriver driver(cluster, FunctionId{100}, NodeId{1}, 1);
  // Record completion instants to detect convoys.
  std::vector<sim::TimePoint> stamps;
  driver.set_completion_hook([&](std::uint64_t, sim::Duration) {
    if (stamps.size() < 20000) stamps.push_back(sched.now());
  });
  cluster.finish_setup();
  driver.start(clients);
  sched.run_until(sched.now() + 2'000'000'000);
  driver.stop();
  sched.run();
  auto* e1 = cluster.worker(NodeId{1}).palladium_engine();
  std::printf(
      "clients=%3d computeA=%6lld computeB=%6lld -> RPS=%7.0f mean=%8.1fus "
      "p99=%8.1fus dneCore1Busy=%.2f fnAcore=%.2f fnBcore=%.2f drvCore=%.2f\n",
      clients, static_cast<long long>(compute_a),
      static_cast<long long>(compute_b),
      static_cast<double>(driver.completed()) / 2.0,
      driver.latencies().mean_ns() / 1e3,
      sim::to_us(driver.latencies().quantile(0.99)),
      sim::to_sec(e1->core().busy_ns()) / 2.0,
      sim::to_sec(cluster.instance(FunctionId{1}).core().busy_ns()) / 2.0,
      sim::to_sec(cluster.instance(FunctionId{2}).core().busy_ns()) / 2.0,
      sim::to_sec(driver.core().busy_ns()) / 2.0);
  std::printf("   rnr: n1=%llu n2=%llu  dneTxBacklog: n1=%zu n2=%zu\n",
              static_cast<unsigned long long>(
                  cluster.worker(NodeId{1}).rnic()->counters().rnr_events),
              static_cast<unsigned long long>(
                  cluster.worker(NodeId{2}).rnic()->counters().rnr_events),
              e1->tx_backlog(),
              cluster.worker(NodeId{2}).palladium_engine()->tx_backlog());
  if (stamps.size() > 50) {
    std::printf("   completion gaps (us, late steady state): ");
    for (std::size_t i = stamps.size() - 17; i < stamps.size(); ++i) {
      std::printf("%.0f ", static_cast<double>(stamps[i] - stamps[i - 1]) / 1e3);
    }
    std::printf("\n");
  }
}

int main() {
  std::puts("-- single hop (A only) --");
  for (int c : {1, 2, 4, 8}) run(c, 80'000, -1);
  std::puts("-- two hops --");
  for (int c : {1, 2, 4, 8, 16, 32}) run(c, 80'000, 40'000);
  std::puts("-- zero compute --");
  for (int c : {1, 8, 32}) run(c, 0, 0);
  return 0;
}
