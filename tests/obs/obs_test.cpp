// Observability subsystem tests: metrics registry semantics, tracer
// lifecycle, Chrome-JSON round-tripping, and the end-to-end acceptance test
// that drives a request through a two-node cluster with tracing enabled and
// verifies span nesting + hop order on the exported trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/hub.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "runtime/metrics_export.hpp"
#include "workload/driver.hpp"

namespace pd {
namespace {

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricKey, FormatsNameAndLabels) {
  EXPECT_EQ(obs::metric_key("rps", ""), "rps");
  EXPECT_EQ(obs::metric_key("rps", "node=1,tenant=2"), "rps{node=1,tenant=2}");
  EXPECT_THROW(obs::metric_key("", ""), CheckFailure);
}

TEST(Registry, CreateOnFirstUseReturnsStableInstrument) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("tx", "node=1");
  c.inc();
  reg.counter("tx", "node=1").inc(2);
  EXPECT_EQ(reg.counter_at("tx", "node=1").value(), 3u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.has("tx", "node=1"));
  EXPECT_FALSE(reg.has("tx", "node=2"));
}

TEST(Registry, KindMismatchThrows) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), CheckFailure);
  EXPECT_THROW(reg.histogram("x"), CheckFailure);
  EXPECT_THROW(static_cast<void>(reg.counter_at("missing")), CheckFailure);
  EXPECT_THROW(static_cast<void>(reg.histogram_at("x")), CheckFailure);
}

TEST(Registry, ProbeSampledAtSnapshotTime) {
  obs::Registry reg;
  double depth = 1.0;
  reg.probe("queue_depth", "", [&depth] { return depth; });
  depth = 42.0;
  EXPECT_NE(reg.to_json().find("\"queue_depth\": 42"), std::string::npos);
}

TEST(Registry, SnapshotsAreDeterministicAndSorted) {
  auto fill = [](obs::Registry& reg) {
    reg.counter("z_last").inc(7);
    reg.histogram("m_hist").record(1000);
    reg.histogram("m_hist").record(3000);
    reg.gauge("a_first").set(1.5);
  };
  obs::Registry r1, r2;
  fill(r1);
  fill(r2);
  EXPECT_EQ(r1.to_json(), r2.to_json());
  EXPECT_EQ(r1.to_csv(), r2.to_csv());
  // map ordering: a_first before m_hist before z_last regardless of
  // insertion order.
  const std::string json = r1.to_json();
  EXPECT_LT(json.find("a_first"), json.find("m_hist"));
  EXPECT_LT(json.find("m_hist"), json.find("z_last"));
}

TEST(Registry, HistogramMergeAcrossEngines) {
  // Two engines record into their own per-node histograms; a report merges
  // them. The merged distribution must cover both inputs deterministically.
  obs::Registry reg;
  obs::Histogram& node1 = reg.histogram("hop.engine_tx", "node=1");
  obs::Histogram& node2 = reg.histogram("hop.engine_tx", "node=2");
  for (int i = 1; i <= 100; ++i) node1.record(i * 100);
  for (int i = 1; i <= 50; ++i) node2.record(100'000 + i * 100);

  obs::Histogram merged;
  merged.merge(node1);
  merged.merge(node2);
  EXPECT_EQ(merged.hist().count(), 150u);
  EXPECT_EQ(merged.hist().min(), 100);
  EXPECT_EQ(merged.hist().max(), 105'000);
  EXPECT_GE(merged.hist().quantile(1.0), merged.hist().max());
  // Merging in the opposite order gives the same distribution.
  obs::Histogram merged2;
  merged2.merge(node2);
  merged2.merge(node1);
  EXPECT_EQ(merged.hist().quantile(0.5), merged2.hist().quantile(0.5));
  EXPECT_EQ(merged.hist().quantile(0.99), merged2.hist().quantile(0.99));
}

TEST(TimeSeries, RatePerSecScalesByBucketWidth) {
  sim::TimeSeries ts(250'000'000);  // 0.25 s buckets
  for (int i = 0; i < 10; ++i) ts.increment(i * 1'000'000);  // bucket 0
  ts.add(300'000'000, 5.0);                                  // bucket 1
  EXPECT_DOUBLE_EQ(ts.rate_per_sec(0), 40.0);  // 10 events / 0.25 s
  EXPECT_DOUBLE_EQ(ts.rate_per_sec(1), 20.0);  // 5 / 0.25 s
  EXPECT_DOUBLE_EQ(ts.rate_per_sec(2), 0.0);   // empty bucket reads zero
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(Tracer, BatonLifecycle) {
  obs::Registry reg;
  obs::Tracer tracer(&reg);
  obs::TraceContext ctx = tracer.start_trace("node0/client", 100);
  ASSERT_TRUE(ctx.sampled());
  EXPECT_EQ(ctx.root_span, ctx.cur_span);

  const std::uint32_t hop =
      tracer.begin_span(ctx.trace_id, ctx.root_span, "engine_tx", "node0/dne", 200);
  tracer.end_span(ctx.cur_span, 200);
  tracer.end_span(hop, 500);
  tracer.end_span(ctx.root_span, 900);
  EXPECT_EQ(tracer.open_spans(), 0u);

  // Closed hop durations feed the per-hop histograms.
  EXPECT_EQ(reg.histogram_at("hop.engine_tx").hist().count(), 1u);
  EXPECT_EQ(reg.histogram_at("hop.engine_tx").hist().max(), 300);
}

TEST(Tracer, EndSpanIsIdempotentAndTolerant) {
  obs::Tracer tracer;
  auto ctx = tracer.start_trace("t", 0);
  tracer.end_span(ctx.root_span, 10);
  tracer.end_span(ctx.root_span, 99);  // double close: no-op
  tracer.end_span(0, 50);              // span id 0: no-op
  tracer.end_span(12345, 50);          // unknown id: ignored
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].end_ns, 10);
}

TEST(Tracer, SamplingKeepsEveryNth) {
  obs::Tracer tracer;
  tracer.set_sample_every(3);
  int sampled = 0;
  for (int i = 0; i < 9; ++i) {
    if (tracer.start_trace("t", i).sampled()) ++sampled;
  }
  EXPECT_EQ(sampled, 3);

  obs::Tracer off;
  off.set_sample_every(0);
  EXPECT_FALSE(off.start_trace("t", 0).sampled());
  EXPECT_TRUE(off.spans().empty());
}

TEST(Tracer, ChromeJsonRoundTrip) {
  obs::Tracer tracer;
  auto ctx = tracer.start_trace("node1/client", 1'500);
  const auto hop =
      tracer.begin_span(ctx.trace_id, ctx.root_span, "fabric", "node1/rnic", 2'000);
  tracer.end_span(hop, 3'250);
  tracer.end_span(ctx.root_span, 5'000);

  const auto spans = obs::read_chrome_trace(tracer.to_chrome_json());
  ASSERT_EQ(spans.size(), 2u);
  const auto& root = spans[0];
  const auto& fabric = spans[1];
  EXPECT_EQ(root.name, "request");
  EXPECT_EQ(root.track, "node1/client");
  EXPECT_EQ(root.begin_ns, 1'500);
  EXPECT_EQ(root.end_ns(), 5'000);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(fabric.name, "fabric");
  EXPECT_EQ(fabric.track, "node1/rnic");
  EXPECT_EQ(fabric.begin_ns, 2'000);
  EXPECT_EQ(fabric.dur_ns, 1'250);
  EXPECT_EQ(fabric.parent_id, root.span_id);
  EXPECT_EQ(fabric.trace_id, root.trace_id);
}

TEST(Hub, SessionInstallsAndRestores) {
  EXPECT_EQ(obs::hub(), nullptr);
  {
    obs::Hub h;
    obs::Session session(h);
    EXPECT_EQ(obs::hub(), &h);
    {
      obs::Hub inner;
      obs::Session nested(inner);
      EXPECT_EQ(obs::hub(), &inner);
    }
    EXPECT_EQ(obs::hub(), &h);
  }
  EXPECT_EQ(obs::hub(), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end: two-node cluster, traced request
// ---------------------------------------------------------------------------

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kEcho{1};
constexpr FunctionId kEntry{100};

/// Run a short echo workload on a two-node Palladium cluster with the given
/// hub installed; returns after the scheduler drains.
void run_echo_cluster(obs::Hub& hub, runtime::SystemKind system,
                      sim::Duration run_ns) {
  obs::Session session(hub);
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = system;
  cfg.cpu_cores_per_node = 4;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kEcho, "echo", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{1, "echo", kTenant, 512,
                                    {{kEcho, 2'000, 512}}});
  workload::ChainDriver driver(*cluster, kEntry, kNode1, 1);
  cluster->finish_setup();

  driver.start(1);
  sched.run_until(sched.now() + run_ns);
  driver.stop();
  sched.run();
  runtime::export_metrics(*cluster, hub.registry);
}

TEST(EndToEnd, TwoNodeTraceNestsAndOrdersHops) {
  obs::Hub hub;
  run_echo_cluster(hub, runtime::SystemKind::kPalladiumDne, 2'000'000);

  const auto all = obs::read_chrome_trace(hub.tracer.to_chrome_json());
  ASSERT_FALSE(all.empty());

  // First request end-to-end.
  std::vector<obs::ReadSpan> spans;
  for (const auto& s : all) {
    if (s.trace_id == 1) spans.push_back(s);
  }
  // ingress + TX/fabric/RX out, fn, TX/fabric/RX back + root: a completed
  // single-remote-hop chain exports exactly 9 closed spans.
  ASSERT_EQ(spans.size(), 9u);

  std::map<std::uint32_t, const obs::ReadSpan*> by_id;
  const obs::ReadSpan* root = nullptr;
  for (const auto& s : spans) {
    by_id[s.span_id] = &s;
    if (s.parent_id == 0) {
      ASSERT_EQ(root, nullptr) << "more than one root span";
      root = &s;
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "request");

  // (a) Every span nests within its parent's [ts, ts + dur].
  for (const auto& s : spans) {
    if (s.parent_id == 0) continue;
    auto it = by_id.find(s.parent_id);
    ASSERT_NE(it, by_id.end()) << "span " << s.name << " has unknown parent";
    const obs::ReadSpan& parent = *it->second;
    EXPECT_GE(s.begin_ns, parent.begin_ns) << s.name;
    EXPECT_LE(s.end_ns(), parent.end_ns()) << s.name;
  }

  // (b) Hop sequence in simulated-time order:
  //     ingress -> engine TX -> fabric -> engine RX -> function, then the
  //     response retraces TX -> fabric -> RX back to the driver.
  std::vector<obs::ReadSpan> hops;
  for (const auto& s : spans) {
    if (s.parent_id != 0) hops.push_back(s);
  }
  std::stable_sort(hops.begin(), hops.end(),
                   [](const obs::ReadSpan& a, const obs::ReadSpan& b) {
                     return a.begin_ns < b.begin_ns;
                   });
  const std::vector<std::string> expected = {
      "ingress",   "engine_tx", "fabric", "engine_rx",
      "fn:echo",   "engine_tx", "fabric", "engine_rx"};
  ASSERT_EQ(hops.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(hops[i].name, expected[i]) << "hop " << i;
  }

  // The request crossed the fabric: outbound hops run on node1 tracks,
  // the function on node2.
  EXPECT_EQ(hops[1].track, "node1/dne");
  EXPECT_EQ(hops[3].track, "node2/dne");
  EXPECT_EQ(hops[4].track, "node2/fn");

  // Per-hop latency histograms fell out of the same spans.
  EXPECT_GE(hub.registry.histogram_at("hop.fabric").hist().count(), 2u);
}

TEST(EndToEnd, IdenticalRunsExportIdenticalSnapshots) {
  obs::Hub a, b;
  run_echo_cluster(a, runtime::SystemKind::kPalladiumDne, 1'000'000);
  run_echo_cluster(b, runtime::SystemKind::kPalladiumDne, 1'000'000);
  EXPECT_EQ(a.registry.to_json(), b.registry.to_json());
  EXPECT_EQ(a.tracer.to_chrome_json(), b.tracer.to_chrome_json());
}

TEST(EndToEnd, OnPathRunRecordsSocDmaHistograms) {
  obs::Hub off, on;
  run_echo_cluster(off, runtime::SystemKind::kPalladiumDne, 1'000'000);
  run_echo_cluster(on, runtime::SystemKind::kPalladiumOnPath, 1'000'000);
  EXPECT_FALSE(off.registry.has("dne.soc_dma_ns", "dir=tx,node=1"));
  ASSERT_TRUE(on.registry.has("dne.soc_dma_ns", "dir=tx,node=1"));
  ASSERT_TRUE(on.registry.has("dne.soc_dma_ns", "dir=rx,node=2"));
  EXPECT_GT(on.registry.histogram_at("dne.soc_dma_ns", "dir=tx,node=1")
                .hist()
                .count(),
            0u);
}

TEST(EndToEnd, BoutiqueRunExportsHealthyEngineCounters) {
  obs::Hub hub;
  hub.tracer.set_sample_every(0);  // metrics only
  obs::Session session(hub);

  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 8;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  runtime::OnlineBoutique::deploy(*cluster, kNode1, kNode2);
  workload::ChainDriver driver(*cluster, kEntry, kNode1,
                               runtime::OnlineBoutique::kHomeQuery);
  cluster->finish_setup();

  driver.start(4);
  sched.run_until(sched.now() + 200'000'000);  // 200 ms
  driver.stop();
  sched.run();
  runtime::export_metrics(*cluster, hub.registry);

  EXPECT_GT(driver.completed(), 0u);
  for (const char* node : {"node=1", "node=2"}) {
    // A healthy run routes every message: no drops on either engine.
    EXPECT_EQ(hub.registry.counter_at("engine.drops_no_route", node).value(),
              0u)
        << node;
    EXPECT_GT(hub.registry.counter_at("engine.tx_msgs", node).value(), 0u)
        << node;
    EXPECT_GT(hub.registry.counter_at("rnic.sends", node).value(), 0u) << node;
  }
}

}  // namespace
}  // namespace pd
