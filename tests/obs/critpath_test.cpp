// Critical-path attribution, exact profiler, and SLO watchdog (ISSUE 5).
//
// Unit half: hand-built span trees with known critical paths — overlapping
// children (latest-begin wins), clamping to the root interval, uncovered
// "queue" gaps, retransmit overlays, exact order-statistic quantile
// selection, and cross-shard foreign-end resolution feeding the analyzer.
//
// Integration half: Online Boutique sweeps on a 3-shard parallel cluster.
// The critpath report must be byte-identical across --threads 1/2/4, a
// healthy run must end with zero open spans, the quantile breakdown must
// sum to the end-to-end quantile latency exactly, a seeded chaos replay
// (with engine stalls in the plan) must surface "retransmit" hops and trip
// the SLO burn-rate alert identically on every replay, and the exact
// profiler must account for 100% of every core's busy time.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/critpath.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

obs::ReadSpan make_span(std::uint64_t trace, std::uint32_t id,
                        std::uint32_t parent, const char* name,
                        std::int64_t begin, std::int64_t end) {
  obs::ReadSpan s;
  s.name = name;
  s.track = "test";
  s.trace_id = trace;
  s.span_id = id;
  s.parent_id = parent;
  s.begin_ns = begin;
  s.dur_ns = end - begin;
  return s;
}

std::int64_t segment_sum(const std::vector<obs::PathSegment>& segs) {
  std::int64_t sum = 0;
  for (const auto& s : segs) sum += s.ns;
  return sum;
}

// ---------------------------------------------------------------------------
// Hand-built span trees.
// ---------------------------------------------------------------------------

TEST(CritPath, OverlappingChildrenQueueGapsAndRetransmit) {
  // Root [0,1000]. The soc_dma copy overlaps the engine_tx tail and wins
  // its overlap (later begin); the retransmit overlay splits the fabric
  // hop; [700,800) is covered by nothing and must surface as "queue".
  std::vector<obs::ReadSpan> trace;
  trace.push_back(make_span(7, 1, 0, "request", 0, 1000));
  trace.push_back(make_span(7, 2, 1, "ingress", 0, 100));
  trace.push_back(make_span(7, 3, 1, "engine_tx", 100, 400));
  trace.push_back(make_span(7, 4, 1, "soc_dma", 300, 450));
  trace.push_back(make_span(7, 5, 1, "fabric", 450, 700));
  trace.push_back(make_span(7, 6, 1, "fn:echo", 800, 1000));
  trace.push_back(make_span(7, 7, 1, "retransmit", 500, 600));

  const auto path = obs::critical_path(trace);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->trace_id, 7u);
  EXPECT_EQ(path->total_ns, 1000);
  EXPECT_EQ(path->retransmit_spans, 1u);

  const struct {
    const char* hop;
    obs::HopClass cls;
    std::int64_t ns;
  } want[] = {
      {"ingress", obs::HopClass::kService, 100},
      {"engine_tx", obs::HopClass::kService, 200},
      {"soc_dma", obs::HopClass::kDma, 150},
      {"fabric", obs::HopClass::kTransport, 50},
      {"retransmit", obs::HopClass::kTransport, 100},
      {"fabric", obs::HopClass::kTransport, 100},
      {"queue", obs::HopClass::kQueue, 100},
      {"fn:echo", obs::HopClass::kService, 200},
  };
  ASSERT_EQ(path->segments.size(), std::size(want));
  for (std::size_t i = 0; i < std::size(want); ++i) {
    SCOPED_TRACE("segment " + std::to_string(i));
    EXPECT_EQ(path->segments[i].hop, want[i].hop);
    EXPECT_EQ(path->segments[i].cls, want[i].cls);
    EXPECT_EQ(path->segments[i].ns, want[i].ns);
  }
  // Every nanosecond of end-to-end latency lands on exactly one segment.
  EXPECT_EQ(segment_sum(path->segments), path->total_ns);
}

TEST(CritPath, ChildrenClampToRootInterval) {
  // Children that start before / end after the root (possible when a hop
  // span is closed by an ACK that arrives after the response is consumed)
  // are clamped: attribution never exceeds the request's own interval.
  std::vector<obs::ReadSpan> trace;
  trace.push_back(make_span(3, 1, 0, "request", 100, 1100));
  trace.push_back(make_span(3, 2, 1, "fabric", 50, 300));
  trace.push_back(make_span(3, 3, 1, "engine_rx", 300, 1200));

  const auto path = obs::critical_path(trace);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->total_ns, 1000);
  ASSERT_EQ(path->segments.size(), 2u);
  EXPECT_EQ(path->segments[0].hop, "fabric");
  EXPECT_EQ(path->segments[0].ns, 200);
  EXPECT_EQ(path->segments[1].hop, "engine_rx");
  EXPECT_EQ(path->segments[1].ns, 800);
  EXPECT_EQ(segment_sum(path->segments), path->total_ns);
}

TEST(CritPath, EqualBeginTieBreaksOnLargerSpanId) {
  std::vector<obs::ReadSpan> trace;
  trace.push_back(make_span(9, 1, 0, "request", 0, 100));
  trace.push_back(make_span(9, 2, 1, "engine_tx", 0, 100));
  trace.push_back(make_span(9, 3, 1, "soc_dma", 0, 100));

  const auto path = obs::critical_path(trace);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->segments.size(), 1u);
  EXPECT_EQ(path->segments[0].hop, "soc_dma");
  EXPECT_EQ(path->segments[0].cls, obs::HopClass::kDma);
  EXPECT_EQ(path->segments[0].ns, 100);
}

TEST(CritPath, AnalyzePicksExactOrderStatisticAndCountsIncomplete) {
  // Five complete requests with totals 100..500 plus one rootless orphan.
  std::vector<obs::ReadSpan> spans;
  for (std::uint64_t t = 1; t <= 5; ++t) {
    const auto total = static_cast<std::int64_t>(t) * 100;
    const auto base = static_cast<std::uint32_t>(t) * 10;
    spans.push_back(make_span(t, base + 1, 0, "request", 0, total));
    spans.push_back(make_span(t, base + 2, base + 1, "fn:a", 0, total));
  }
  spans.push_back(make_span(6, 99, 98, "fn:orphan", 0, 50));

  const auto report = obs::analyze(spans, 0.99);
  EXPECT_EQ(report.traces, 5u);
  EXPECT_EQ(report.incomplete, 1u);
  // rank ceil(0.99 * 5) = 5 -> the 500 ns request; p50 rank 3 -> 300 ns.
  EXPECT_EQ(report.q_trace_id, 5u);
  EXPECT_EQ(report.q_total_ns, 500);
  EXPECT_EQ(report.p50_total_ns, 300);
  ASSERT_EQ(report.q_breakdown.size(), 1u);
  EXPECT_EQ(report.q_breakdown[0].hop, "fn:a");
  EXPECT_EQ(report.q_breakdown[0].ns, 500);
  ASSERT_TRUE(report.hops.count("fn:a"));
  EXPECT_EQ(report.hops.at("fn:a").traces, 5u);
  EXPECT_EQ(report.hops.at("fn:a").total_ns, 1500);
  EXPECT_EQ(report.class_ns[static_cast<int>(obs::HopClass::kService)], 1500);
}

TEST(CritPath, CrossShardForeignEndResolvesIntoAttribution) {
  // A hop begun on shard 0 and ended on shard 1: the end lands in shard
  // 1's tracer as a foreign end, and only absorb + resolve_foreign_ends
  // closes the span. The analyzer must then see the full hop.
  obs::Tracer shard0;
  obs::Tracer shard1;
  shard0.set_shard(0);
  shard1.set_shard(1);

  const obs::TraceContext ctx = shard0.start_trace("edge", 0);
  ASSERT_TRUE(ctx.sampled());
  const std::uint32_t hop =
      shard0.begin_span(ctx.trace_id, ctx.root_span, "engine_tx", "n1", 10);
  shard1.end_span(hop, 500);  // foreign: shard1 never opened this id
  shard0.end_span(ctx.root_span, 600);

  // Before the merge the hop is still open and the analyzer must treat
  // the trace as having a 590 ns attribution hole... but after absorb +
  // resolve it is a closed 490 ns engine_tx hop.
  shard0.absorb(shard1);
  shard0.resolve_foreign_ends();
  EXPECT_EQ(shard0.open_spans(), 0u);

  const auto report = obs::analyze(obs::to_read_spans(shard0.spans()), 0.99);
  EXPECT_EQ(report.traces, 1u);
  EXPECT_EQ(report.q_total_ns, 600);
  ASSERT_TRUE(report.hops.count("engine_tx"));
  EXPECT_EQ(report.hops.at("engine_tx").total_ns, 490);
  ASSERT_TRUE(report.hops.count("queue"));
  EXPECT_EQ(report.hops.at("queue").total_ns, 110);
}

// ---------------------------------------------------------------------------
// Online Boutique integration on the 3-shard parallel cluster.
// ---------------------------------------------------------------------------

struct ObsRun {
  std::uint64_t requests = 0;
  std::size_t open_spans = 0;
  obs::CritPathReport report;
  std::string critpath_json;
  std::string slo_table;
  std::uint64_t alerts = 0;
  std::uint64_t violations = 0;
  bool plan_has_stall = false;
};

/// One boutique sweep with full-rate tracing and a home-query latency SLO.
/// `chaos_seed` != 0 arms a fault plan whose engine stalls are drawn large
/// enough (4-8 ms) that any request in flight behind one blows through the
/// 2.5 ms SLO target.
ObsRun run_boutique(std::size_t os_threads, std::uint64_t chaos_seed) {
  sim::ParallelSim psim(/*shards=*/3, os_threads);
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(psim, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();
  cluster.enable_shard_tracing(1);

  obs::SloSpec spec;
  spec.name = "home";
  spec.tenant = runtime::OnlineBoutique::kTenant;
  spec.chain = runtime::OnlineBoutique::kHomeQuery;
  spec.target_ns = 2'500'000;
  spec.window_ns = 10'000'000;
  cluster.add_slo(spec);

  ObsRun r;
  sim::TimePoint stop = psim.shard(0).now() + 40'000'000;
  std::unique_ptr<fault::ChaosController> chaos;
  if (chaos_seed != 0) {
    fault::FaultPlanConfig fcfg;
    fcfg.start = psim.shard(0).now() + 2'000'000;
    fcfg.horizon = fcfg.start + 30'000'000;
    fcfg.episodes = 8;
    fcfg.min_stall = 4'000'000;
    fcfg.max_stall = 8'000'000;
    fault::FaultPlan plan =
        fault::FaultPlan::generate(chaos_seed, {kNode1, kNode2}, fcfg);
    for (const fault::FaultEvent& e : plan.events) {
      if (e.kind == fault::FaultKind::kEngineStall) r.plan_has_stall = true;
    }
    chaos = std::make_unique<fault::ChaosController>(cluster, std::move(plan));
    chaos->arm();
    stop = fcfg.horizon + 10'000'000;
  }

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(64, 'x');
  wcfg.client_cores = 4;
  workload::HttpLoadGen wrk(psim.shard(0), ing, wcfg);
  wrk.add_clients(4);

  psim.run_until(stop);
  wrk.stop();
  psim.run();

  obs::Hub merged;
  cluster.merge_observability(merged);

  r.requests = wrk.latencies().count();
  r.open_spans = merged.tracer.open_spans();
  r.report = obs::analyze(obs::to_read_spans(merged.tracer.spans()), 0.99);
  r.critpath_json = obs::report_json(r.report);
  r.slo_table = merged.slo.table();
  r.alerts = merged.slo.alerts().size();
  r.violations = merged.slo.total_violations();
  return r;
}

TEST(CritPathBoutique, HealthyRunExactAndByteIdenticalAcrossThreads) {
  const ObsRun ref = run_boutique(1, /*chaos_seed=*/0);
  ASSERT_GT(ref.requests, 0u);
  ASSERT_GT(ref.report.traces, 0u);

  // Satellite: a healthy (no-chaos) run must end with every span closed —
  // an open span after the drain means the instrumentation leaks.
  EXPECT_EQ(ref.open_spans, 0u);
  EXPECT_EQ(ref.report.incomplete, 0u);

  // Acceptance: the p99 hop segments sum to the end-to-end p99 exactly
  // (the quantile is a real request, not an interpolation).
  EXPECT_EQ(segment_sum(ref.report.q_breakdown), ref.report.q_total_ns);
  EXPECT_GT(ref.report.q_total_ns, 0);

  // Healthy boutique p99 sits near 1.2 ms — far under the 2.5 ms target,
  // so the watchdog must stay quiet.
  EXPECT_EQ(ref.violations, 0u);
  EXPECT_EQ(ref.alerts, 0u);

  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE("os_threads=" + std::to_string(threads));
    const ObsRun got = run_boutique(threads, 0);
    EXPECT_EQ(got.critpath_json, ref.critpath_json);
    EXPECT_EQ(got.slo_table, ref.slo_table);
    EXPECT_EQ(got.open_spans, 0u);
  }
}

TEST(CritPathBoutique, ChaosSeedSurfacesRetransmitHopsAndTripsSlo) {
  // Seed 42's plan includes engine stalls (asserted below so a future
  // change to plan generation fails loudly instead of silently testing
  // nothing) plus link faults that force loss recovery.
  const ObsRun ref = run_boutique(1, /*chaos_seed=*/42);
  ASSERT_GT(ref.requests, 0u);
  ASSERT_TRUE(ref.plan_has_stall);

  // Loss recovery shows up as "retransmit" hops classified as transport.
  EXPECT_GT(ref.report.retransmit_spans, 0u);
  ASSERT_TRUE(ref.report.hops.count("retransmit"));
  EXPECT_EQ(ref.report.hops.at("retransmit").cls, obs::HopClass::kTransport);
  EXPECT_GT(
      ref.report.class_ns[static_cast<int>(obs::HopClass::kTransport)], 0);

  // The stalls wedge the engine for 4-8 ms against a 2.5 ms target: the
  // burn-rate alert must fire.
  EXPECT_GT(ref.violations, 0u);
  ASSERT_GT(ref.alerts, 0u);

  // Acceptance: the chaos replay is deterministic — three replays (run at
  // different worker-thread counts, the hardest case) produce the same
  // alert log and the same critpath report, byte for byte.
  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE("replay os_threads=" + std::to_string(threads));
    const ObsRun got = run_boutique(threads, 42);
    EXPECT_EQ(got.alerts, ref.alerts);
    EXPECT_EQ(got.slo_table, ref.slo_table);
    EXPECT_EQ(got.critpath_json, ref.critpath_json);
  }
}

// ---------------------------------------------------------------------------
// Exact profiler: 100% busy-time accounting on a serial boutique run.
// ---------------------------------------------------------------------------

TEST(ProfilerBoutique, AccountsEveryCoreBusyNanosecond) {
  // The observer must be installed before the cluster exists so setup-era
  // work (QP handshakes run inside finish_setup) is attributed too.
  obs::Profiler prof;
  obs::ProfileSession session(prof);

  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(64, 'x');
  wcfg.client_cores = 4;
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(4);

  sched.run_until(sched.now() + 20'000'000);
  wrk.stop();
  sched.run();  // drain: busy_ns() is credited at completion

  ASSERT_GT(wrk.latencies().count(), 0u);
  ASSERT_FALSE(prof.empty());

  // Acceptance: the folded profile accounts for 100% of every worker
  // CoreSet's busy time and of each engine core, exactly.
  for (NodeId id : {kNode1, kNode2}) {
    SCOPED_TRACE("node " + std::to_string(id.value()));
    runtime::WorkerNode& node = cluster.worker(id);
    const std::string cpu_prefix =
        "node" + std::to_string(id.value()) + "/cpu/";
    EXPECT_EQ(prof.resource_prefix_ns(cpu_prefix),
              static_cast<std::uint64_t>(node.cpu().total_busy_ns()));
    EXPECT_EQ(prof.resource_ns(node.engine_core().name()),
              static_cast<std::uint64_t>(node.engine_core().busy_ns()));
  }
}

// ---------------------------------------------------------------------------
// core_util registry gauge from UtilizationProbes.
// ---------------------------------------------------------------------------

TEST(UtilProbesBoutique, CoreUtilGaugeExported) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 4;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();

  obs::Hub hub;
  obs::Session session(hub);
  cluster.start_util_probes(hub.registry, 1'000'000);

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(64, 'x');
  wcfg.client_cores = 2;
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(2);

  sched.run_until(sched.now() + 10'000'000);
  wrk.stop();
  sched.run();

  const std::string json = hub.registry.to_json();
  EXPECT_NE(json.find("core_util"), std::string::npos);
  // Per-core labels for both workers' host cores and the engine core.
  EXPECT_NE(json.find("node=1,core=node1/cpu/0"), std::string::npos);
  EXPECT_NE(json.find("node=2,core=node2/cpu/0"), std::string::npos);
}

}  // namespace
