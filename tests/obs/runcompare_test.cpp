// Run-diff tests (ISSUE 6, half 2): the JSON parser/flattener behind
// tools/report_diff, threshold semantics, and the CSV quoting round-trip
// that keeps label-carrying metric keys intact through export.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/runcompare.hpp"

namespace {

using namespace pd;

// ---------------------------------------------------------------------------
// JSON parse + flatten
// ---------------------------------------------------------------------------

TEST(JsonParse, HandlesExporterConstructs) {
  const obs::JsonValue v = obs::json_parse(
      R"({"a": 1.5, "b": [1, 2, [3]], "s": "x\"yA", "t": true,
          "n": null, "empty": {}, "nested": {"k": -2e3}})");
  ASSERT_EQ(v.kind, obs::JsonValue::Kind::kObject);
  EXPECT_DOUBLE_EQ(v.find("a")->number, 1.5);
  EXPECT_EQ(v.find("b")->elements.size(), 3u);
  EXPECT_EQ(v.find("s")->string, "x\"yA");
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_EQ(v.find("n")->kind, obs::JsonValue::Kind::kNull);
  EXPECT_DOUBLE_EQ(v.find("nested")->find("k")->number, -2000.0);

  EXPECT_THROW(obs::json_parse("{\"a\": }"), CheckFailure);
  EXPECT_THROW(obs::json_parse("[1, 2"), CheckFailure);
  EXPECT_THROW(obs::json_parse("{} trailing"), CheckFailure);
}

TEST(JsonFlatten, DottedPathsAndArrayIndices) {
  const auto flat = obs::flatten_json(
      obs::json_parse(R"({"gate": {"p50": 1.0}, "rows": [[5, 6]], "e": {}})"));
  ASSERT_EQ(flat.count("gate.p50"), 1u);
  EXPECT_TRUE(flat.at("gate.p50").is_number);
  EXPECT_DOUBLE_EQ(flat.at("rows[0][1]").number, 6.0);
  // Empty containers survive as structural leaves so a vanished object is
  // a diff finding, not silence.
  EXPECT_EQ(flat.at("e").text, "{}");
}

// ---------------------------------------------------------------------------
// diff_runs semantics
// ---------------------------------------------------------------------------

TEST(DiffRuns, IdenticalDocumentsAreClean) {
  const auto doc = obs::json_parse(R"({"a": 1, "b": {"c": [2, 3]}})");
  const auto rep = obs::diff_runs(doc, doc, {});
  EXPECT_TRUE(rep.clean());
  EXPECT_EQ(rep.compared, 3u);
}

TEST(DiffRuns, PerturbationFailsUnderZeroTolerance) {
  const auto a = obs::json_parse(R"({"gate": {"p50": 1.00, "eps": 1000}})");
  const auto b = obs::json_parse(R"({"gate": {"p50": 1.02, "eps": 1000}})");
  const auto rep = obs::diff_runs(a, b, {});
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].key, "gate.p50");
  EXPECT_NEAR(rep.findings[0].delta_abs, 0.02, 1e-9);
  EXPECT_FALSE(rep.format().empty());
}

TEST(DiffRuns, AbsAndRelThresholdsGate) {
  const auto a = obs::json_parse(R"({"x": 100.0, "y": 0.001})");
  const auto b = obs::json_parse(R"({"x": 104.0, "y": 0.002})");
  obs::DiffOptions opt;
  opt.rel_tol = 0.05;  // x passes (4%), y fails (50%)
  auto rep = obs::diff_runs(a, b, opt);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].key, "y");

  opt.abs_tol = 0.01;  // |0.001| delta now inside the absolute band
  EXPECT_TRUE(obs::diff_runs(a, b, opt).clean());
}

TEST(DiffRuns, MissingAndTypeChangedKeysAreStructural) {
  const auto a = obs::json_parse(R"({"a": 1, "gone": 2, "t": "s"})");
  const auto b = obs::json_parse(R"({"a": 1, "new": 3, "t": 7})");
  const auto rep = obs::diff_runs(a, b, {});
  ASSERT_EQ(rep.findings.size(), 3u);
  for (const auto& f : rep.findings) {
    EXPECT_TRUE(f.key == "gone" || f.key == "new" || f.key == "t") << f.key;
  }
}

TEST(DiffRuns, OnlyAndIgnoreFilters) {
  const auto a = obs::json_parse(R"({"gate": {"p50": 1}, "noise": 5})");
  const auto b = obs::json_parse(R"({"gate": {"p50": 2}, "noise": 9})");
  obs::DiffOptions only;
  only.only = {"noise"};
  auto rep = obs::diff_runs(a, b, only);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].key, "noise");

  obs::DiffOptions ignore;
  ignore.ignore = {"noise", "gate."};
  EXPECT_TRUE(obs::diff_runs(a, b, ignore).clean());
}

// ---------------------------------------------------------------------------
// CSV quoting round-trip (satellite 2)
// ---------------------------------------------------------------------------

TEST(CsvQuoting, FieldRoundTripsCommasAndQuotes) {
  const std::vector<std::string> nasty = {
      "plain", "a,b", "say \"hi\"", "both,\"x\",end", "{a=1,b=2}"};
  std::string line;
  for (std::size_t i = 0; i < nasty.size(); ++i) {
    line += (i > 0 ? "," : "") + obs::csv_field(nasty[i]);
  }
  EXPECT_EQ(obs::parse_csv_line(line), nasty);
  // Unquoted simple fields stay unquoted (no gratuitous churn).
  EXPECT_EQ(obs::csv_field("plain"), "plain");
}

TEST(CsvQuoting, RegistryExportKeepsLabelCommasInOneColumn) {
  obs::Registry reg;
  reg.counter("http.requests", "path=/a,method=GET").inc(3);
  reg.gauge("depth").set(1.5);
  const std::string csv = reg.to_csv();

  std::vector<std::vector<std::string>> rows;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    const auto eol = csv.find('\n', pos);
    rows.push_back(obs::parse_csv_line(csv.substr(pos, eol - pos)));
    pos = eol + 1;
  }
  ASSERT_EQ(rows.size(), 3u);  // header + 2 instruments
  const std::size_t cols = rows[0].size();
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), cols);  // a label comma must not shift columns
  }
  EXPECT_EQ(rows[1][0], "depth");
  EXPECT_EQ(rows[2][0], "http.requests{path=/a,method=GET}");
  EXPECT_EQ(rows[2][1], "counter");
}

}  // namespace
