// Flight-recorder tests (ISSUE 6): bucket-ring wrap + downsample math,
// bounded memory, scheduler-driven sampling, merge semantics, and the
// end-to-end determinism contract — the boutique sweep's timeseries
// export is byte-identical across --threads 1/2/4, and a seeded chaos
// replay records the QP-rebuild dip.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "obs/timeseries.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

// ---------------------------------------------------------------------------
// FlightSeries: downsample bucket math
// ---------------------------------------------------------------------------

TEST(FlightSeries, ExactBucketMathThroughCompaction) {
  obs::FlightSeries s(/*capacity=*/4);
  for (int i = 1; i <= 9; ++i) {
    s.record(static_cast<sim::TimePoint>(i), static_cast<double>(i));
  }
  // 9 samples through a 4-bucket ring: two pair-merge compactions leave
  // {1..4}, {5..8}, {9} with an 4-sample-per-bucket budget.
  ASSERT_EQ(s.buckets().size(), 3u);
  EXPECT_EQ(s.samples_per_bucket(), 4u);
  EXPECT_EQ(s.total_samples(), 9u);

  const auto& b0 = s.buckets()[0];
  EXPECT_EQ(b0.t0, 1);
  EXPECT_EQ(b0.n, 4u);
  EXPECT_DOUBLE_EQ(b0.min, 1.0);
  EXPECT_DOUBLE_EQ(b0.max, 4.0);
  EXPECT_DOUBLE_EQ(b0.mean(), 2.5);

  const auto& b1 = s.buckets()[1];
  EXPECT_EQ(b1.t0, 5);
  EXPECT_EQ(b1.n, 4u);
  EXPECT_DOUBLE_EQ(b1.min, 5.0);
  EXPECT_DOUBLE_EQ(b1.max, 8.0);
  EXPECT_DOUBLE_EQ(b1.mean(), 6.5);

  const auto& b2 = s.buckets()[2];
  EXPECT_EQ(b2.t0, 9);
  EXPECT_EQ(b2.n, 1u);
  EXPECT_DOUBLE_EQ(b2.max, 9.0);

  EXPECT_THROW(obs::FlightSeries bad(1), CheckFailure);
}

TEST(FlightSeries, RingStaysBoundedAndPeaksSurvive) {
  obs::FlightSeries s(/*capacity=*/8);
  for (int i = 0; i < 10'000; ++i) {
    // A single spike in the middle of an otherwise flat series.
    s.record(i, i == 4'321 ? 1e6 : 1.0);
    ASSERT_LE(s.buckets().size(), 8u);
  }
  EXPECT_EQ(s.total_samples(), 10'000u);
  // max is closed under pair-merging, so the transient never vanishes.
  EXPECT_DOUBLE_EQ(s.peak(), 1e6);
  EXPECT_LE(s.memory_bytes(), 8 * 2 * sizeof(obs::FlightPoint));
}

TEST(FlightSeries, AbsorbMergesTimeOrderedAndEmptiesDonor) {
  obs::FlightSeries a(8), b(8);
  a.record(10, 1.0);
  a.record(30, 3.0);
  b.record(20, 2.0);
  a.absorb(b);
  ASSERT_EQ(a.buckets().size(), 3u);
  EXPECT_EQ(a.buckets()[0].t0, 10);
  EXPECT_EQ(a.buckets()[1].t0, 20);
  EXPECT_EQ(a.buckets()[2].t0, 30);
  EXPECT_EQ(a.total_samples(), 3u);
  // The donor is drained: a second absorb cannot double-count.
  EXPECT_EQ(b.total_samples(), 0u);
  a.absorb(b);
  EXPECT_EQ(a.total_samples(), 3u);
}

// ---------------------------------------------------------------------------
// FlightRecorder: probes, sampling grid, merging
// ---------------------------------------------------------------------------

TEST(FlightRecorder, SamplesProbesOnTheSchedulerGrid) {
  sim::Scheduler sched;
  obs::FlightRecorder rec;
  rec.configure({.sample_period = 10, .series_capacity = 64});
  double depth = 0.0;
  rec.probe("q", "", [&depth] { return depth; });
  rec.start(sched);
  // Background ticks never keep run() alive on their own; a foreground
  // event at t=47 lets ticks 10/20/30/40 fire and strands the one at 50.
  sched.schedule_at(47, [&depth] { depth = 9.0; });
  sched.schedule_at(5, [&depth] { depth = 2.0; });
  sched.run();

  const obs::FlightSeries* s = rec.find("q");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets().size(), 4u);
  EXPECT_EQ(s->buckets()[0].t0, 10);
  EXPECT_EQ(s->buckets()[3].t0, 40);
  EXPECT_DOUBLE_EQ(s->buckets()[0].max, 2.0);  // set at t=5, sampled at 10
  EXPECT_EQ(rec.samples_taken(), 4u);
  EXPECT_DOUBLE_EQ(rec.peak_over("q"), 2.0);
}

TEST(FlightRecorder, DuplicateProbeAndLateConfigureThrow) {
  obs::FlightRecorder rec;
  rec.probe("q", "node=1", [] { return 0.0; });
  EXPECT_THROW(rec.probe("q", "node=1", [] { return 0.0; }), CheckFailure);
  EXPECT_THROW(rec.configure({}), CheckFailure);
}

TEST(FlightRecorder, MergeFromFoldsSeriesOnceAndAdoptsConfig) {
  obs::FlightRecorder shard1, shard2, merged;
  shard1.configure({.sample_period = 5, .series_capacity = 32});
  shard2.configure({.sample_period = 5, .series_capacity = 32});
  shard1.series("q", "node=1").record(10, 4.0);
  shard2.series("q", "node=1").record(5, 2.0);
  shard2.series("q", "node=2").record(5, 7.0);
  shard1.sample(10);
  shard2.sample(5);

  merged.merge_from(shard1);
  merged.merge_from(shard2);
  EXPECT_EQ(merged.config().sample_period, 5);
  EXPECT_EQ(merged.series_count(), 2u);
  const obs::FlightSeries* q1 = merged.find("q", "node=1");
  ASSERT_NE(q1, nullptr);
  ASSERT_EQ(q1->buckets().size(), 2u);
  EXPECT_EQ(q1->buckets()[0].t0, 5);  // time-ordered across shards
  EXPECT_DOUBLE_EQ(merged.peak_over("q"), 7.0);

  // Donors were drained; merging them again is a no-op.
  merged.merge_from(shard1);
  merged.merge_from(shard2);
  EXPECT_EQ(merged.find("q", "node=1")->total_samples(), 2u);
}

TEST(RenderSparkline, NormalizesAndKeepsPeaksVisible) {
  const std::string flat = obs::render_sparkline({0.0, 0.0, 0.0}, 8);
  EXPECT_EQ(flat.size(), 8u);
  EXPECT_EQ(flat.substr(0, 3), "...");  // present-but-zero columns
  EXPECT_EQ(flat.substr(3), std::string(5, ' '));  // no data at all

  // 100 values with one spike squeezed into 10 columns: max-aggregation
  // must keep the spike at full height.
  std::vector<double> v(100, 1.0);
  v[57] = 100.0;
  const std::string line = obs::render_sparkline(v, 10);
  EXPECT_EQ(line.size(), 10u);
  EXPECT_NE(line.find('@'), std::string::npos);
  EXPECT_EQ(obs::render_sparkline({}, 0), "");
}

// ---------------------------------------------------------------------------
// End-to-end: boutique sweep determinism + chaos replay
// ---------------------------------------------------------------------------

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct TimelineRun {
  std::string json;
  std::string csv;
  std::size_t series = 0;
  std::size_t memory = 0;
  double peak_active_faults = 0;
  double min_active_qps = -1;
  double max_active_qps = -1;
  double peak_rebuilds = 0;
};

/// Online Boutique on a 3-shard parallel cluster with the flight recorder
/// on; returns the merged timeseries artifacts.
TimelineRun run_boutique(std::size_t os_threads, std::uint64_t chaos_seed,
                         obs::FlightConfig fcfg = {}) {
  sim::ParallelSim psim(/*shards=*/3, os_threads);
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(psim, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();
  cluster.start_flight_recorder(fcfg);
  ing.start_flight_probes();

  sim::TimePoint stop = psim.shard(0).now() + 40'000'000;
  std::unique_ptr<fault::ChaosController> chaos;
  if (chaos_seed != 0) {
    fault::FaultPlanConfig pcfg;
    pcfg.start = psim.shard(0).now() + 2'000'000;
    pcfg.horizon = pcfg.start + 30'000'000;
    pcfg.episodes = 8;
    chaos = std::make_unique<fault::ChaosController>(
        cluster,
        fault::FaultPlan::generate(chaos_seed, {kNode1, kNode2}, pcfg));
    chaos->arm();
    stop = pcfg.horizon + 10'000'000;
  }

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(64, 'x');
  wcfg.client_cores = 4;
  workload::HttpLoadGen wrk(psim.shard(0), ing, wcfg);
  wrk.add_clients(4);

  psim.run_until(stop);
  wrk.stop();
  psim.run();

  obs::Hub merged;
  cluster.merge_observability(merged);

  TimelineRun r;
  r.json = merged.timeseries.to_json();
  r.csv = merged.timeseries.to_csv();
  r.series = merged.timeseries.series_count();
  r.memory = merged.timeseries.memory_bytes();
  r.peak_active_faults = merged.timeseries.peak_over("chaos.active_faults");
  r.peak_rebuilds = merged.timeseries.peak_over("conn.rebuilds_in_flight");
  for (NodeId n : {kNode1, kNode2}) {
    const obs::FlightSeries* s = merged.timeseries.find(
        "conn.active_qps", "node=" + std::to_string(n.value()));
    if (s == nullptr) continue;
    for (const obs::FlightPoint& b : s->buckets()) {
      if (r.min_active_qps < 0 || b.min < r.min_active_qps) {
        r.min_active_qps = b.min;
      }
      r.max_active_qps = std::max(r.max_active_qps, b.max);
    }
  }
  return r;
}

TEST(TimeseriesPdes, ExportByteIdenticalAcrossThreadCounts) {
  const TimelineRun ref = run_boutique(1, /*chaos_seed=*/0);
  ASSERT_GT(ref.series, 0u);
  ASSERT_NE(ref.json.find("engine.tx_backlog"), std::string::npos);
  ASSERT_NE(ref.json.find("pool.in_use"), std::string::npos);
  // The bounded-memory guarantee: a full boutique sweep's recorder fits
  // in a few MiB.
  EXPECT_LT(ref.memory, 4u << 20);

  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE("os_threads=" + std::to_string(threads));
    const TimelineRun got = run_boutique(threads, 0);
    EXPECT_EQ(got.json, ref.json);
    EXPECT_EQ(got.csv, ref.csv);
  }
}

TEST(TimeseriesPdes, ChaosReplayRecordsFaultStateAndQpRebuildDip) {
  // Fine sampling (50 us) so sub-millisecond QP outages land in buckets.
  obs::FlightConfig fcfg;
  fcfg.sample_period = 50'000;
  fcfg.series_capacity = 512;
  const TimelineRun ref = run_boutique(1, /*chaos_seed=*/42, fcfg);

  // The chaos state series saw at least one episode...
  EXPECT_DOUBLE_EQ(ref.peak_active_faults, 1.0);
  // ...and the QP pool visibly dipped below its healthy size while the
  // connection manager ran rebuilds.
  ASSERT_GE(ref.max_active_qps, 0.0);
  EXPECT_LT(ref.min_active_qps, ref.max_active_qps);
  EXPECT_GT(ref.peak_rebuilds, 0.0);

  // The replay — recorder included — is deterministic across threads.
  const TimelineRun got = run_boutique(4, 42, fcfg);
  EXPECT_EQ(got.json, ref.json);
}

}  // namespace
