// Resource-ledger and interference-attribution tests (ISSUE 10).
//
// The tentpole's acceptance criteria, as tests: blame conserves exactly
// (per victim, the blame rows sum to the measured wait with zero
// residual), the ledger chained in front of the profiler folds the same
// busy stream to the same total, shard merges are order-independent down
// to the exported report bytes, the noisy-neighbor overload run produces
// byte-identical ledger artifacts across worker thread counts and across
// seeded chaos replays, and the blame-driven shedding policy targets the
// measured aggressor harder than the plain burn-rate clamp while keeping
// the protected tenant inside its SLO.
#include "obs/ledger.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "control/scenario.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/runcompare.hpp"
#include "sim/profile.hpp"

namespace pd::obs {
namespace {

TEST(Ledger, WaitBlameConservesExactly) {
  Ledger led;
  led.set_enabled(true);

  // Tenant 1 occupies core0 over [0,100); tenant 2's job, submitted at 40
  // (ref_now, which pins the prune clock like the real call sites do),
  // runs [100,250). A tenant-3 message waits [40,250): blame walks the
  // overlapping segments earliest-first — 60 ns against tenant 1, 150 ns
  // against tenant 2 — and sums exactly to the 210 ns wait with no
  // self-blame.
  led.occupy(LedgerKind::kCore, "core0", 1, 0, 100);
  led.occupy(LedgerKind::kCore, "core0", 2, 100, 250, /*ref_now=*/40);
  led.wait(LedgerKind::kCore, "core0", 3, 40, 250);
  EXPECT_EQ(led.wait_ns(LedgerKind::kCore, 3), 210u);
  EXPECT_EQ(led.blame_ns(1, 3), 60u);
  EXPECT_EQ(led.blame_ns(2, 3), 150u);
  EXPECT_EQ(led.blame_ns(3, 3), 0u);

  // A wait extending past all recorded occupancy self-blames the
  // uncovered remainder, so conservation still holds exactly.
  led.wait(LedgerKind::kCore, "core0", 4, 240, 400);
  EXPECT_EQ(led.wait_ns(LedgerKind::kCore, 4), 160u);
  EXPECT_EQ(led.blame_ns(2, 4), 10u);
  EXPECT_EQ(led.blame_ns(4, 4), 150u);

  // Every victim's blame rows sum to its measured wait: zero residual.
  std::map<std::int64_t, std::uint64_t> blame_by_victim;
  for (const auto& row : led.blame_rows()) blame_by_victim[row.victim] += row.ns;
  EXPECT_EQ(blame_by_victim[3], led.wait_ns(LedgerKind::kCore, 3));
  EXPECT_EQ(blame_by_victim[4], led.wait_ns(LedgerKind::kCore, 4));

  // Tenant 2 imposed the most cross-tenant queueing on tenant 3.
  EXPECT_EQ(led.top_aggressor(3), 2);
  EXPECT_EQ(led.top_aggressor(1), -1);
}

TEST(Ledger, BusyIntervalChainsToProfiler) {
  // The ledger fronts the observer chain; the profiler behind it must see
  // the identical charge stream, so the two totals agree exactly — the
  // same conservation discipline the full runs assert via profile.busy_ns.
  Ledger led;
  led.set_enabled(true);
  Profiler prof;
  led.set_next(&prof);

  const sim::ProfileFrame f1{"fn", "work", 1};
  const sim::ProfileFrame f2{"fn", "work", 2};
  // Mirror the Core::submit call site: on_busy for totals, then the
  // interval-resolved companion.
  led.on_busy("node0/core0", f1, 1000);
  led.on_busy_interval("node0/core0", f1, 0, 0, 1000, 0);
  // Second job submitted at 500 but starts at 1000 (behind tenant 1's
  // job): the 500 ns queue wait is charged to tenant 2 and blamed on
  // tenant 1, whose occupancy covers the whole window.
  led.on_busy("node0/core0", f2, 2000);
  led.on_busy_interval("node0/core0", f2, 500, 1000, 2000, 0);

  EXPECT_EQ(led.totals(LedgerKind::kCore).busy_ns, 3000u);
  EXPECT_EQ(prof.total_ns(), 3000u);
  EXPECT_EQ(led.busy_ns(LedgerKind::kCore, 1), 1000u);
  EXPECT_EQ(led.busy_ns(LedgerKind::kCore, 2), 2000u);
  EXPECT_EQ(led.wait_ns(LedgerKind::kCore, 2), 500u);
  EXPECT_EQ(led.blame_ns(1, 2), 500u);

  // DMA engines ("<node>/dma") classify as kDma and carry bytes.
  led.on_busy_interval("node0/dma", f1, 0, 0, 700, 4096);
  EXPECT_EQ(led.totals(LedgerKind::kDma).busy_ns, 700u);
  EXPECT_EQ(led.bytes(LedgerKind::kDma, 1), 4096u);
}

TEST(Ledger, QueueFifoBracketsWaitPerTenant) {
  Ledger led;
  led.set_enabled(true);
  // Two tenants interleave on one DWRR queue; exits pop each tenant's own
  // oldest entry, so out-of-arrival-order dequeues still charge correctly.
  led.queue_enter(LedgerKind::kQueue, "node1/dne/txq", 1, 100);
  led.queue_enter(LedgerKind::kQueue, "node1/dne/txq", 2, 150);
  led.queue_exit(LedgerKind::kQueue, "node1/dne/txq", 2, 300);
  led.queue_exit(LedgerKind::kQueue, "node1/dne/txq", 1, 450);
  EXPECT_EQ(led.wait_ns(LedgerKind::kQueue, 1), 350u);
  EXPECT_EQ(led.wait_ns(LedgerKind::kQueue, 2), 150u);
  // An exit with no matching entry (ledger enabled mid-run) is ignored.
  led.queue_exit(LedgerKind::kQueue, "node1/dne/txq", 7, 500);
  EXPECT_EQ(led.wait_ns(LedgerKind::kQueue, 7), 0u);
}

void charge_shard_a(Ledger& led) {
  led.occupy(LedgerKind::kCore, "node0/core0", 1, 0, 500);
  led.wait(LedgerKind::kCore, "node0/core0", 2, 100, 500);
  led.add_bytes(LedgerKind::kLink, "fabric/node0/tx", 1, 8192);
  led.add_slot_ns("node0/pool/fn", 1, 12345, 1 << 20);
}

void charge_shard_b(Ledger& led) {
  led.occupy(LedgerKind::kCore, "node1/core0", 2, 50, 400);
  led.wait(LedgerKind::kCore, "node1/core0", 1, 50, 300);
  led.add_bytes(LedgerKind::kUplink, "fabric/uplink/l0-l1", 2, 4096);
}

TEST(Ledger, MergeOrderIndependentDownToReportBytes) {
  Ledger a, b;
  a.set_enabled(true);
  b.set_enabled(true);
  charge_shard_a(a);
  charge_shard_b(b);

  Ledger ab, ba;
  ab.absorb(a);
  ab.absorb(b);
  ba.absorb(b);
  ba.absorb(a);

  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.to_csv(), ba.to_csv());
  EXPECT_EQ(ab.table(), ba.table());

  // The exported metrics snapshot is byte-identical too.
  Registry rab, rba;
  ab.export_metrics(rab);
  ba.export_metrics(rba);
  EXPECT_EQ(rab.to_json(), rba.to_json());
  EXPECT_FALSE(rab.to_json().empty());
}

// ---- end-to-end, via the deterministic overload scenarios -----------------

/// Parse a ledger_json artifact and check exact conservation: for every
/// (kind, victim) the blame rows sum to that tenant's wait_ns rollup.
void expect_ledger_conserves(const std::string& ledger_json) {
  const JsonValue doc = json_parse(ledger_json);
  const JsonValue* led = doc.find("ledger");
  ASSERT_NE(led, nullptr);
  const JsonValue* tenants = led->find("tenants");
  const JsonValue* blame = led->find("blame");
  ASSERT_NE(tenants, nullptr);
  ASSERT_NE(blame, nullptr);

  std::map<std::pair<std::string, std::int64_t>, std::uint64_t> wait_by;
  for (const JsonValue& row : tenants->elements) {
    const JsonValue* kind = row.find("kind");
    const JsonValue* tenant = row.find("tenant");
    const JsonValue* wait = row.find("wait_ns");
    ASSERT_TRUE(kind && tenant && wait);
    wait_by[{kind->string, static_cast<std::int64_t>(tenant->number)}] +=
        static_cast<std::uint64_t>(wait->number);
  }
  std::map<std::pair<std::string, std::int64_t>, std::uint64_t> blame_by;
  for (const JsonValue& row : blame->elements) {
    const JsonValue* kind = row.find("kind");
    const JsonValue* victim = row.find("victim");
    const JsonValue* ns = row.find("ns");
    ASSERT_TRUE(kind && victim && ns);
    blame_by[{kind->string, static_cast<std::int64_t>(victim->number)}] +=
        static_cast<std::uint64_t>(ns->number);
  }
  // Zero residual, both directions: every wait is fully blamed, and no
  // blame exists without a matching wait.
  for (const auto& [key, ns] : wait_by) {
    EXPECT_EQ(blame_by[key], ns)
        << "kind " << key.first << " victim " << key.second;
  }
  for (const auto& [key, ns] : blame_by) {
    EXPECT_EQ(wait_by[key], ns)
        << "kind " << key.first << " victim " << key.second;
  }
}

TEST(LedgerOverload, NoisyNeighborLedgerByteIdenticalAcrossThreads) {
  control::OverloadOptions opts;
  opts.scenario = control::OverloadScenario::kNoisyNeighbor;
  opts.control = true;
  opts.seconds = 1;

  opts.threads = 1;
  const control::OverloadResult one = control::run_overload(opts);
  opts.threads = 2;
  const control::OverloadResult two = control::run_overload(opts);
  opts.threads = 4;
  const control::OverloadResult four = control::run_overload(opts);

  EXPECT_EQ(one.json(), two.json());
  EXPECT_EQ(one.json(), four.json());
  EXPECT_EQ(one.ledger_json, two.ledger_json);
  EXPECT_EQ(one.ledger_json, four.ledger_json);
  EXPECT_FALSE(one.ledger_json.empty());

  // The run actually recorded cross-tenant interference, and it conserves.
  bool cross_tenant = false;
  for (const auto& b : one.blame) {
    if (b.aggressor >= 0 && b.aggressor != b.victim) cross_tenant = true;
  }
  EXPECT_TRUE(cross_tenant);
  expect_ledger_conserves(one.ledger_json);
}

TEST(LedgerOverload, ChaosReplaySeed42LedgerIdentical) {
  control::OverloadOptions opts;
  opts.scenario = control::OverloadScenario::kChaos2x;
  opts.control = true;
  opts.seconds = 1;
  opts.chaos_seed = 42;
  opts.threads = 2;
  const control::OverloadResult first = control::run_overload(opts);
  const control::OverloadResult replay = control::run_overload(opts);
  EXPECT_EQ(first.json(), replay.json());
  EXPECT_EQ(first.ledger_json, replay.ledger_json);
  expect_ledger_conserves(first.ledger_json);
}

TEST(LedgerOverload, BlamePolicyShedsMeasuredAggressorHarder) {
  control::OverloadOptions opts;
  opts.scenario = control::OverloadScenario::kNoisyNeighbor;
  opts.control = true;
  opts.seconds = 3;

  opts.shed_policy = control::ShedPolicy::kBurnRate;
  const control::OverloadResult burn = control::run_overload(opts);
  opts.shed_policy = control::ShedPolicy::kBlame;
  const control::OverloadResult blame = control::run_overload(opts);
  EXPECT_EQ(burn.policy, "burn-rate");
  EXPECT_EQ(blame.policy, "blame");

  const auto admission_row = [](const control::OverloadResult& r,
                                const std::string& tenant)
      -> const control::OverloadResult::AdmissionRow& {
    for (const auto& a : r.admission) {
      if (a.tenant == tenant) return a;
    }
    ADD_FAILURE() << "no admission row for " << tenant;
    static control::OverloadResult::AdmissionRow empty;
    return empty;
  };
  // The blame policy targets the measured aggressor: strictly more of the
  // batch tenant's traffic is shed than under the plain burn-rate clamp.
  EXPECT_GT(admission_row(blame, "batch").shed,
            admission_row(burn, "batch").shed);
  EXPECT_LT(admission_row(blame, "batch").admitted,
            admission_row(burn, "batch").admitted);

  // And the protected tenant still lands inside its declared SLO.
  for (const auto& g : blame.gens) {
    if (g.target == "/home") {
      EXPECT_LE(g.p99_ns, 2'500'000);
      EXPECT_GT(g.completed, 0u);
    }
  }
  EXPECT_TRUE(blame.zero_loss);
}

}  // namespace
}  // namespace pd::obs
