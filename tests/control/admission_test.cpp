// AdmissionController unit tests (ISSUE 7): token exhaustion -> explicit
// shed -> refill recovery, protected-tenant bypass, and the exactness of
// the integer refill carry.
#include "control/admission.hpp"

#include <gtest/gtest.h>

namespace pd::control {
namespace {

constexpr TenantId kShop{1};
constexpr TenantId kBatch{2};

TEST(Admission, UnknownTenantsAlwaysAdmitted) {
  AdmissionController adm;
  adm.set_pressure(true);
  EXPECT_EQ(adm.try_admit(TenantId{99}, 0), Verdict::kAdmit);
}

TEST(Admission, NoPressureMeansNoShedding) {
  AdmissionController adm;
  adm.add_policy({kBatch, /*priority=*/0, /*rate_rps=*/1, /*burst=*/2});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(adm.try_admit(kBatch, i), Verdict::kAdmit);
  }
  EXPECT_EQ(adm.admitted(kBatch), 100u);
  EXPECT_EQ(adm.shed(kBatch), 0u);
}

TEST(Admission, PressureExhaustsBurstThenShedsThenRefills) {
  AdmissionController adm;
  adm.add_policy({kBatch, /*priority=*/0, /*rate_rps=*/1000, /*burst=*/4});
  adm.set_pressure(true);
  // The bucket starts full: the first `burst` requests pass.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(adm.try_admit(kBatch, 0), Verdict::kAdmit) << i;
  }
  // Exhausted: everything at the same instant is shed, explicitly counted.
  EXPECT_EQ(adm.try_admit(kBatch, 0), Verdict::kShed);
  EXPECT_EQ(adm.try_admit(kBatch, 0), Verdict::kShed);
  EXPECT_EQ(adm.shed(kBatch), 2u);
  // Recovery: 1000 rps refills one token per ms of simulated time.
  EXPECT_EQ(adm.try_admit(kBatch, 1'000'000), Verdict::kAdmit);
  EXPECT_EQ(adm.try_admit(kBatch, 1'000'000), Verdict::kShed);
  EXPECT_EQ(adm.try_admit(kBatch, 2'000'000), Verdict::kAdmit);
}

TEST(Admission, ProtectedTenantNeverShedsUnderPressure) {
  AdmissionController adm;
  adm.add_policy({kShop, /*priority=*/1, /*rate_rps=*/1, /*burst=*/1});
  adm.set_pressure(true);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(adm.try_admit(kShop, 0), Verdict::kAdmit) << i;
  }
  EXPECT_EQ(adm.shed(kShop), 0u);
}

TEST(Admission, RefillCarryIsExactForAwkwardRates) {
  // 3 rps does not divide 1e9: the carry must deliver exactly 3 tokens per
  // simulated second, never drifting.
  AdmissionController adm;
  adm.add_policy({kBatch, /*priority=*/0, /*rate_rps=*/3, /*burst=*/100});
  adm.set_pressure(true);
  std::uint64_t admitted = 0;
  // Drain the initial burst first.
  while (adm.try_admit(kBatch, 0) == Verdict::kAdmit) {
  }
  // Poll every millisecond for 10 simulated seconds: exactly 30 admits.
  for (sim::TimePoint t = 1'000'000; t <= 10'000'000'000; t += 1'000'000) {
    if (adm.try_admit(kBatch, t) == Verdict::kAdmit) ++admitted;
  }
  EXPECT_EQ(admitted, 30u);
}

TEST(Admission, ReleasingPressureReopensTheGate) {
  AdmissionController adm;
  adm.add_policy({kBatch, /*priority=*/0, /*rate_rps=*/1, /*burst=*/1});
  adm.set_pressure(true);
  adm.try_admit(kBatch, 0);
  EXPECT_EQ(adm.try_admit(kBatch, 0), Verdict::kShed);
  adm.set_pressure(false);
  EXPECT_EQ(adm.try_admit(kBatch, 0), Verdict::kAdmit);
  EXPECT_EQ(adm.engagements(), 1u);
  adm.set_pressure(true);  // re-engaging counts
  EXPECT_EQ(adm.engagements(), 2u);
}

}  // namespace
}  // namespace pd::control
