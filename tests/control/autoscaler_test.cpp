// Feedback-controller tests (ISSUE 7 tentpole, part 1): the SLO burn
// signal the controllers consume, the instance autoscaler's replica
// activation loop, and the edge controller's scale + admission-pressure
// feedback against a live gateway.
#include "control/autoscaler.hpp"

#include <gtest/gtest.h>

#include "obs/hub.hpp"
#include "obs/slo.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"
#include "workload/http_client.hpp"

namespace pd::control {
namespace {

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kFnA{1};
constexpr FunctionId kFnB{2};
constexpr std::uint32_t kChain = 1;

std::unique_ptr<runtime::Cluster> make_cluster(sim::Scheduler& sched) {
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 8;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kFnA, "a", kTenant}, kNode1);
  cluster->deploy(runtime::FunctionSpec{kFnB, "b", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{kChain, "echo", kTenant, 128,
                                    {{kFnA, 40'000, 128},
                                     {kFnB, 15'000, 256},
                                     {kFnA, 40'000, 400}}});
  return cluster;
}

// --- the burn signal ---------------------------------------------------------

TEST(SloBurnSignal, RollFreshensBurnAndDecaysOnSilence) {
  obs::SloWatchdog dog;
  dog.add({.name = "echo", .tenant = kTenant, .target_ns = 1'000,
           .budget = 0.1, .window_ns = 1'000'000});
  // Window 0: 10 requests, 5 violating -> burn (0.5 / 0.1) = 5.
  for (int i = 0; i < 5; ++i) dog.record(kTenant, kChain, 100, 500'000);
  for (int i = 0; i < 5; ++i) dog.record(kTenant, kChain, 5'000, 600'000);
  EXPECT_EQ(dog.burn_of("echo"), 0.0);  // window still open
  dog.roll(1'500'000);                  // crossed into window 1
  EXPECT_DOUBLE_EQ(dog.burn_of("echo"), 5.0);
  EXPECT_DOUBLE_EQ(dog.max_burn(), 5.0);
  // Rolling within the same window changes nothing.
  dog.roll(1'900'000);
  EXPECT_DOUBLE_EQ(dog.burn_of("echo"), 5.0);
  // A fully idle window decays the signal: silence is not a violation.
  dog.roll(3'500'000);
  EXPECT_EQ(dog.burn_of("echo"), 0.0);
  EXPECT_EQ(dog.max_burn(), 0.0);
  EXPECT_EQ(dog.burn_of("no-such-spec"), 0.0);
}

// --- instance autoscaler -----------------------------------------------------

TEST(InstanceAutoscalerTest, ActivatesProvisionedReplicasUnderBacklogThenIdles) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched);
  cluster->provision_replicas(kFnA, 3);
  workload::ChainDriver driver(*cluster, FunctionId{100}, kNode1, kChain);
  cluster->finish_setup();

  auto& inst = cluster->instance(kFnA);
  EXPECT_EQ(inst.replica_capacity(), 4u);
  EXPECT_EQ(inst.active_replicas(), 1u);

  InstanceAutoscalerConfig cfg;
  cfg.period = 1'000'000;  // 1 ms loop for a fast test
  cfg.jobs_up = 2;
  cfg.up_hysteresis = 2;
  cfg.down_hysteresis = 4;
  cfg.cooldown = 1;
  InstanceAutoscaler scaler(inst, cluster->scheduler_for(kNode1), cfg);
  scaler.start();

  // 32 concurrent requests pile compute on A (40 µs per visit, twice per
  // request): the backlog trips the scaler within a few periods.
  driver.start(32);
  sched.run_until(sched.now() + 300'000'000);
  EXPECT_GT(inst.active_replicas(), 1u);
  const auto peak = inst.active_replicas();

  // Load gone: the scaler retires replicas back down to one.
  driver.stop();
  sched.run();
  sched.run_until(sched.now() + 300'000'000);
  EXPECT_EQ(inst.active_replicas(), 1u);

  bool saw_up = false;
  bool saw_down = false;
  for (const ScaleEvent& e : scaler.events()) {
    if (e.to > e.from) saw_up = true;
    if (e.to < e.from) saw_down = true;
    EXPECT_EQ(e.actor, "fn:a");
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
  EXPECT_GE(peak, 2u);
}

// --- edge controller ---------------------------------------------------------

TEST(EdgeControllerTest, ScalesWorkersOnBacklogAndEngagesPressureOnBurn) {
  obs::Hub hub;
  obs::Session session(hub);
  sim::Scheduler sched;
  auto cluster = make_cluster(sched);

  AdmissionController admission;
  // Best-effort on purpose: the protected path is exercised by the
  // overload suite; here we want to see the gate actually close.
  admission.add_policy({kTenant, /*priority=*/0, /*rate_rps=*/50,
                        /*burst=*/4});

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 1;
  icfg.max_workers = 4;
  icfg.autoscale = false;
  icfg.admission = &admission;
  ingress::PalladiumIngress gateway(*cluster, icfg);
  gateway.expose_chain("/echo", kChain);
  gateway.finish_setup();
  cluster->finish_setup();

  // An absurd 1 µs target: every request violates, so burn saturates and
  // the controller must both scale out and engage admission pressure.
  cluster->add_slo({.name = "echo-strict", .tenant = kTenant,
                    .target_ns = 1'000, .budget = 0.1,
                    .window_ns = 10'000'000});

  EdgeControllerConfig ecfg;
  ecfg.period = 10'000'000;  // 10 ms loop
  ecfg.pending_up = 8;
  ecfg.pressure_slo = "echo-strict";
  ecfg.pressure_off_hysteresis = 4;
  EdgeController controller(gateway, &admission, sched, ecfg);
  controller.start();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/echo";
  wcfg.error_backoff = 1'000'000;  // bounded retry rate once shed
  workload::HttpLoadGen wrk(sched, gateway, wcfg);
  wrk.add_clients(24);
  sched.run_until(sched.now() + 1'000'000'000);

  EXPECT_GT(gateway.active_workers(), 1);
  EXPECT_TRUE(admission.pressure());
  EXPECT_EQ(admission.engagements(), 1u);
  EXPECT_GT(gateway.shed_admission(), 0u);

  // Load stops; idle windows decay the burn and the controller releases
  // the gate (and the sheds stop growing).
  wrk.stop();
  sched.run();
  sched.run_until(sched.now() + 500'000'000);
  EXPECT_FALSE(admission.pressure());

  bool scaled_up = false;
  bool pressured = false;
  for (const ScaleEvent& e : controller.events()) {
    if (e.actor == "ingress" && e.to > e.from) scaled_up = true;
    if (e.actor == "pressure") pressured = true;
  }
  EXPECT_TRUE(scaled_up);
  EXPECT_TRUE(pressured);
  EXPECT_GT(controller.ticks(), 50u);
}

}  // namespace
}  // namespace pd::control
