// Deterministic overload-scenario suite (ISSUE 7 tentpole, part 3).
//
// The acceptance criteria of the issue, as tests: the noisy-neighbor run
// keeps the protected tenant inside its declared SLO while the aggressor
// is shed explicitly; every scenario is byte-identical across worker
// thread counts; and chaos plus 2x load never loses a request silently
// across seeds.
#include "control/scenario.hpp"

#include <gtest/gtest.h>

namespace pd::control {
namespace {

const OverloadResult::GenRow& row(const OverloadResult& r,
                                  const std::string& target) {
  for (const auto& g : r.gens) {
    if (g.target == target) return g;
  }
  ADD_FAILURE() << "no generator row for " << target;
  static OverloadResult::GenRow empty;
  return empty;
}

TEST(Overload, NoisyNeighborKeepsProtectedTenantWithinSlo) {
  OverloadOptions opts;
  opts.scenario = OverloadScenario::kNoisyNeighbor;
  opts.seconds = 3;

  opts.control = false;
  const OverloadResult before = run_overload(opts);
  opts.control = true;
  const OverloadResult after = run_overload(opts);

  // Both columns answer everything explicitly.
  EXPECT_TRUE(before.zero_loss);
  EXPECT_TRUE(after.zero_loss);

  // Without the control loop the aggressor wrecks the protected tenant;
  // policy drops (429) never happen, only fault-path 504s.
  EXPECT_EQ(before.shed_admission, 0u);
  EXPECT_GT(before.deadline_expired, 0u);
  // deadline_expired is the policy-named view of the same events the
  // timeouts() fault counter sees (satellite: distinct metrics, same 504s).
  EXPECT_EQ(before.deadline_expired, before.timeouts);

  // With control on: the aggressor is shed explicitly at the gate, and the
  // protected tenant's whole-run p99 lands inside its declared SLOs
  // (2.5 ms for /home, 3.5 ms for the tenant-wide objective).
  EXPECT_GT(after.shed_admission, 0u);
  EXPECT_GT(after.pressure_engagements, 0u);
  EXPECT_LE(row(after, "/home").p99_ns, 2'500'000);
  EXPECT_LE(row(after, "/checkout").p99_ns, 3'500'000);
  EXPECT_GT(row(after, "/home").completed, 0u);
  EXPECT_GT(row(after, "/checkout").completed, 0u);

  // And the protected tenant is strictly better off than without control.
  const auto& home_before = row(before, "/home");
  const auto& home_after = row(after, "/home");
  EXPECT_GT(home_after.completed, home_before.completed);
}

TEST(Overload, FlashCrowdScalesOutAndCutsViolations) {
  OverloadOptions opts;
  opts.scenario = OverloadScenario::kFlashCrowd;
  opts.seconds = 2;

  opts.control = false;
  const OverloadResult before = run_overload(opts);
  opts.control = true;
  const OverloadResult after = run_overload(opts);

  EXPECT_TRUE(before.zero_loss);
  EXPECT_TRUE(after.zero_loss);
  EXPECT_EQ(before.ingress_scale_events, 0u);
  EXPECT_GT(after.ingress_scale_events, 0u);
  EXPECT_GT(after.final_workers, 1);
  EXPECT_GT(after.controller_events, 0u);

  // Violating fraction of the tenant-wide SLO drops with the loop closed.
  const auto frac = [](const OverloadResult& r) {
    for (const auto& s : r.slos) {
      if (s.name == "shop-all") {
        return static_cast<double>(s.violations) /
               static_cast<double>(s.requests);
      }
    }
    return 1.0;
  };
  EXPECT_LT(frac(after), frac(before));
}

TEST(Overload, AllScenariosByteIdenticalAcrossThreadCounts) {
  for (OverloadScenario s : all_scenarios()) {
    OverloadOptions opts;
    opts.scenario = s;
    opts.control = true;
    opts.seconds = 1;
    opts.threads = 1;
    const std::string one = run_overload(opts).json();
    opts.threads = 2;
    const std::string two = run_overload(opts).json();
    EXPECT_EQ(one, two) << "scenario " << to_string(s)
                        << " diverges across thread counts";
  }
}

TEST(Overload, ChaosWithDoubledLoadNeverLosesSilently) {
  for (std::uint64_t seed : {1ULL, 7ULL, 23ULL, 42ULL, 97ULL}) {
    OverloadOptions opts;
    opts.scenario = OverloadScenario::kChaos2x;
    opts.control = true;
    opts.seconds = 2;
    opts.chaos_seed = seed;
    const OverloadResult r = run_overload(opts);
    EXPECT_TRUE(r.zero_loss) << "seed " << seed;
    // Chaos answers arrive as explicit 5xx/429s, not silence.
    std::uint64_t errors = 0;
    for (const auto& g : r.gens) errors += g.errors;
    EXPECT_EQ(errors > 0,
              r.shed_admission + r.timeouts + r.bad_gateway > 0)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace pd::control
