#include "dpu/dpu.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "dpu/comch.hpp"
#include "dpu/mmap.hpp"

namespace pd::dpu {
namespace {

TEST(SocDma, BaseLatencyMatchesCharacterization) {
  // 64 B DMA read ≈ 2.6 µs ([90], §4.1.1).
  sim::Scheduler sched;
  SocDmaEngine dma(sched);
  sim::TimePoint done = -1;
  dma.transfer(64, [&] { done = sched.now(); });
  sched.run();
  EXPECT_GE(done, 2'600);
  EXPECT_LT(done, 2'800);  // base + 64 B at the slow per-byte rate
}

TEST(SocDma, SerializesConcurrentTransfers) {
  // The SoC DMA engine's poor concurrency: parallel ops queue up.
  sim::Scheduler sched;
  SocDmaEngine dma(sched);
  std::vector<sim::TimePoint> done;
  for (int i = 0; i < 3; ++i) {
    dma.transfer(4096, [&] { done.push_back(sched.now()); });
  }
  EXPECT_GT(dma.backlog(), 0);
  sched.run();
  ASSERT_EQ(done.size(), 3u);
  const auto single = done[0];
  EXPECT_NEAR(static_cast<double>(done[1]), static_cast<double>(2 * single), 2);
  EXPECT_NEAR(static_cast<double>(done[2]), static_cast<double>(3 * single), 3);
  EXPECT_EQ(dma.transfers(), 3u);
  EXPECT_EQ(dma.bytes_moved(), 3u * 4096u);
}

TEST(Dpu, WimpyCoresRunSlower) {
  sim::Scheduler sched;
  Dpu dpu(sched, NodeId{1});
  sim::Core host(sched, "host", 1.0);
  sim::TimePoint dpu_done = 0, host_done = 0;
  dpu.core(0).submit(10'000, [&] { dpu_done = sched.now(); });
  host.submit(10'000, [&] { host_done = sched.now(); });
  sched.run();
  EXPECT_EQ(host_done, 10'000);
  EXPECT_EQ(dpu_done, 20'000);  // kDpuCoreSpeed = 0.5
}

TEST(Mmap, ImportRequiresPciExport) {
  mem::MemoryDomain dom(NodeId{1});
  auto& tm = dom.create_tenant_pool(TenantId{1}, "t1", 4, 64);
  EXPECT_THROW(CrossProcessorMmap::import_export_descriptor(tm), CheckFailure);
  tm.export_to_dpu();
  auto mmap = CrossProcessorMmap::import_export_descriptor(tm);
  EXPECT_EQ(mmap.pool_id(), tm.pool_id());
  EXPECT_FALSE(mmap.rnic_registrable());
  tm.export_to_rdma();
  EXPECT_TRUE(mmap.rnic_registrable());
}

class ComchTest : public ::testing::Test {
 protected:
  ComchTest() : dpu_core(sched, "dne", 0.5) {}

  mem::BufferDescriptor desc(std::uint32_t i) {
    return {PoolId{1}, i, 16, TenantId{1}};
  }

  sim::Scheduler sched;
  sim::Core dpu_core;
};

TEST_F(ComchTest, EventVariantRoundTrip) {
  std::vector<std::uint32_t> server_got;
  ComchServer server(sched, dpu_core, ComchVariant::kEvent,
                     [&](FunctionId, const mem::BufferDescriptor& d) {
                       server_got.push_back(d.index);
                     });
  sim::Core fn_core(sched, "fn");
  std::vector<std::uint32_t> client_got;
  server.connect(FunctionId{1}, fn_core,
                 [&](const mem::BufferDescriptor& d) {
                   client_got.push_back(d.index);
                 });
  server.send_to_server(FunctionId{1}, desc(7));
  server.send_to_client(FunctionId{1}, desc(9));
  sched.run();
  EXPECT_EQ(server_got, std::vector<std::uint32_t>{7});
  EXPECT_EQ(client_got, std::vector<std::uint32_t>{9});
  EXPECT_EQ(server.to_server_msgs(), 1u);
  EXPECT_EQ(server.to_client_msgs(), 1u);
  // Event-driven mode never pins the function core.
  EXPECT_FALSE(fn_core.busy_poll());
}

TEST_F(ComchTest, PollingVariantPinsHostCore) {
  ComchServer server(sched, dpu_core, ComchVariant::kPolling,
                     [](FunctionId, const mem::BufferDescriptor&) {});
  sim::Core fn_core(sched, "fn");
  server.connect(FunctionId{1}, fn_core, [](const mem::BufferDescriptor&) {});
  EXPECT_TRUE(fn_core.busy_poll());
  server.disconnect(FunctionId{1});
  EXPECT_FALSE(fn_core.busy_poll());
}

TEST_F(ComchTest, PollingLatencyBeatsEventAtLowLoad) {
  auto rtt = [&](ComchVariant variant) {
    sim::Scheduler s2;
    sim::Core dne(s2, "dne", 0.5);
    sim::Core fn(s2, "fn");
    sim::TimePoint done = -1;
    ComchServer* srv_ptr = nullptr;
    ComchServer srv(s2, dne, variant,
                    [&](FunctionId from, const mem::BufferDescriptor& d) {
                      srv_ptr->send_to_client(from, d);  // echo
                    });
    srv_ptr = &srv;
    srv.connect(FunctionId{1}, fn,
                [&](const mem::BufferDescriptor&) { done = s2.now(); });
    srv.send_to_server(FunctionId{1}, {PoolId{1}, 0, 16, TenantId{1}});
    s2.run();
    return done;
  };
  EXPECT_GT(rtt(ComchVariant::kEvent), 2 * rtt(ComchVariant::kPolling));
}

TEST_F(ComchTest, PollingDequeueCostGrowsWithClients) {
  // The progress-engine epoll scan makes the per-message server cost grow
  // linearly with connected endpoints — Comch-P's scalability wall.
  auto server_cost = [&](int clients) {
    sim::Scheduler s2;
    sim::Core dne(s2, "dne", 0.5);
    std::vector<std::unique_ptr<sim::Core>> fns;
    ComchServer srv(s2, dne, ComchVariant::kPolling,
                    [](FunctionId, const mem::BufferDescriptor&) {});
    for (int i = 0; i < clients; ++i) {
      fns.push_back(std::make_unique<sim::Core>(s2, "fn"));
      srv.connect(FunctionId{static_cast<std::uint32_t>(i + 1)}, *fns.back(),
                  [](const mem::BufferDescriptor&) {});
    }
    srv.send_to_server(FunctionId{1}, {PoolId{1}, 0, 16, TenantId{1}});
    s2.run();
    return dne.busy_ns();
  };
  EXPECT_GT(server_cost(8), server_cost(1) + 6 * cost::kComchPPollPerEndpointNs);
}

TEST_F(ComchTest, DisconnectBlocksFurtherSends) {
  ComchServer server(sched, dpu_core, ComchVariant::kEvent,
                     [](FunctionId, const mem::BufferDescriptor&) {});
  sim::Core fn_core(sched, "fn");
  server.connect(FunctionId{1}, fn_core, [](const mem::BufferDescriptor&) {});
  server.disconnect(FunctionId{1});
  EXPECT_THROW(server.send_to_server(FunctionId{1}, desc(0)), CheckFailure);
  EXPECT_THROW(server.send_to_client(FunctionId{1}, desc(0)), CheckFailure);
  EXPECT_THROW(server.disconnect(FunctionId{1}), CheckFailure);
}

}  // namespace
}  // namespace pd::dpu
