#include "proto/http.hpp"

#include <gtest/gtest.h>

namespace pd::proto {
namespace {

TEST(HttpRequestParser, ParsesSimpleGet) {
  HttpRequestParser p;
  const std::string raw = "GET /home HTTP/1.1\r\nHost: x\r\n\r\n";
  auto [status, consumed] = p.feed(raw);
  EXPECT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(p.message().method, "GET");
  EXPECT_EQ(p.message().target, "/home");
  EXPECT_EQ(p.message().version, "HTTP/1.1");
  EXPECT_EQ(p.message().headers.get("host"), "x");  // case-insensitive
  EXPECT_TRUE(p.message().body.empty());
}

TEST(HttpRequestParser, ParsesBodyWithContentLength) {
  HttpRequestParser p;
  const std::string raw =
      "POST /cart HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  auto [status, consumed] = p.feed(raw);
  EXPECT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(p.message().body, "hello world");
}

TEST(HttpRequestParser, IncrementalFeedAcrossArbitrarySplits) {
  const std::string raw =
      "POST /checkout HTTP/1.1\r\nContent-Length: 5\r\nX-Req: 42\r\n\r\nabcde";
  // Split at every possible byte boundary.
  for (std::size_t split = 1; split < raw.size(); ++split) {
    HttpRequestParser p;
    auto [s1, c1] = p.feed(raw.substr(0, split));
    ASSERT_NE(s1, ParseStatus::kError) << "split=" << split;
    if (s1 == ParseStatus::kComplete) {
      continue;  // message fully inside the first fragment
    }
    auto [s2, c2] = p.feed(raw.substr(split));
    ASSERT_EQ(s2, ParseStatus::kComplete) << "split=" << split;
    EXPECT_EQ(p.message().body, "abcde");
    EXPECT_EQ(p.message().headers.get("X-Req"), "42");
  }
}

TEST(HttpRequestParser, ExcessBytesNotConsumed) {
  HttpRequestParser p;
  const std::string msg = "GET / HTTP/1.1\r\n\r\n";
  const std::string two = msg + "GET /second HTTP/1.1\r\n\r\n";
  auto [status, consumed] = p.feed(two);
  EXPECT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(consumed, msg.size());
  // Parser can be reset and reused for the next message.
  p.reset();
  auto [s2, c2] = p.feed(std::string_view(two).substr(consumed));
  EXPECT_EQ(s2, ParseStatus::kComplete);
  EXPECT_EQ(p.message().target, "/second");
}

TEST(HttpRequestParser, RejectsMalformedStartLine) {
  for (const char* bad :
       {"GARBAGE\r\n\r\n", "GET\r\n\r\n", "GET /x HTTP/9.9\r\n\r\n",
        " / HTTP/1.1\r\n\r\n"}) {
    HttpRequestParser p;
    auto [status, consumed] = p.feed(bad);
    EXPECT_EQ(status, ParseStatus::kError) << bad;
    EXPECT_FALSE(p.error().empty());
  }
}

TEST(HttpRequestParser, RejectsChunkedEncoding) {
  HttpRequestParser p;
  auto [status, c] = p.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_EQ(status, ParseStatus::kError);
}

TEST(HttpRequestParser, RejectsMalformedHeaderAndBadLength) {
  {
    HttpRequestParser p;
    auto [s, c] = p.feed("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n");
    EXPECT_EQ(s, ParseStatus::kError);
  }
  {
    HttpRequestParser p;
    auto [s, c] = p.feed("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
    EXPECT_EQ(s, ParseStatus::kError);
  }
}

TEST(HttpRequestParser, ToleratesBareLfAndLeadingBlankLines) {
  HttpRequestParser p;
  auto [status, c] = p.feed("\r\nGET / HTTP/1.1\nHost: y\n\n");
  EXPECT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(p.message().headers.get("Host"), "y");
}

TEST(HttpResponseParser, ParsesResponse) {
  HttpResponseParser p;
  auto [status, c] =
      p.feed("HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\n\r\nno");
  EXPECT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(p.message().status, 503);
  EXPECT_EQ(p.message().reason, "Service Unavailable");
  EXPECT_EQ(p.message().body, "no");
}

TEST(HttpResponseParser, RejectsBadStatusCode) {
  HttpResponseParser p;
  auto [status, c] = p.feed("HTTP/1.1 99 Weird\r\n\r\n");
  EXPECT_EQ(status, ParseStatus::kError);
}

TEST(HttpSerialize, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/product";
  req.headers.add("X-Req", "123");
  req.body = "payload-bytes";
  const std::string raw = serialize(req);

  HttpRequestParser p;
  auto [status, consumed] = p.feed(raw);
  ASSERT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(p.message().method, "POST");
  EXPECT_EQ(p.message().target, "/product");
  EXPECT_EQ(p.message().headers.get("X-Req"), "123");
  EXPECT_EQ(p.message().body, "payload-bytes");
}

TEST(HttpSerialize, ResponseRoundTripAndAutoContentLength) {
  HttpResponse resp;
  resp.body = std::string(1000, 'z');
  resp.headers.add("Content-Length", "7");  // stale value must be ignored
  const std::string raw = serialize(resp);
  HttpResponseParser p;
  auto [status, c] = p.feed(raw);
  ASSERT_EQ(status, ParseStatus::kComplete);
  EXPECT_EQ(p.message().body.size(), 1000u);
}

class HttpParserFuzzCorpus : public ::testing::TestWithParam<const char*> {};

TEST_P(HttpParserFuzzCorpus, NeverCrashesOnHostileInput) {
  HttpRequestParser p;
  // Must terminate with kComplete, kNeedMore or kError — never throw or
  // loop forever.
  auto [status, consumed] = p.feed(GetParam());
  (void)status;
  (void)consumed;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, HttpParserFuzzCorpus,
    ::testing::Values("", "\r\n\r\n\r\n", "GET", ": : :\r\n",
                      "GET / HTTP/1.1\r\nContent-Length: 999999\r\n\r\nxx",
                      "POST / HTTP/1.1\r\nA:\r\n\r\n",
                      "\x00\x01\x02\xff", "GET / HTTP/1.1\r\nA: B\r\nA: C\r\n\r\n",
                      "HTTP/1.1 200 OK\r\n\r\n" /* response fed to req parser */));

}  // namespace
}  // namespace pd::proto
