#include "proto/tcp.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pd::proto {
namespace {

constexpr NodeId kClient{1};
constexpr NodeId kServer{2};

class TcpTest : public ::testing::Test {
 protected:
  TcpTest() : eth(sched) {
    eth.attach(kClient);
    eth.attach(kServer);
  }
  sim::Scheduler sched;
  fabric::Switch eth;
};

TEST_F(TcpTest, HandshakeThenEcho) {
  sim::Core client_core(sched, "client"), server_core(sched, "server");
  std::string server_got, client_got;

  TcpEndpoint a{kClient, StackKind::kKernel, &client_core, nullptr,
                [&](std::string_view m) { client_got = m; }};
  TcpEndpoint b{kServer, StackKind::kKernel, &server_core, nullptr,
                [&](std::string_view m) { server_got = m; }};
  TcpConnection conn(sched, eth, a, b);

  EXPECT_THROW(conn.send_a_to_b("early"), CheckFailure);
  bool established = false;
  conn.connect([&] { established = true; });
  sched.run();
  ASSERT_TRUE(established);

  conn.send_a_to_b("request-bytes");
  sched.run();
  EXPECT_EQ(server_got, "request-bytes");
  conn.send_b_to_a("response-bytes");
  sched.run();
  EXPECT_EQ(client_got, "response-bytes");
  EXPECT_EQ(conn.messages(), 2u);
  EXPECT_EQ(conn.bytes_transferred(), 13u + 14u);
}

TEST_F(TcpTest, KernelStackCostsMoreThanFstack) {
  auto measure = [&](StackKind kind) {
    sim::Scheduler s2;
    fabric::Switch eth2(s2);
    eth2.attach(kClient);
    eth2.attach(kServer);
    sim::Core c1(s2, "a"), c2(s2, "b");
    sim::TimePoint done = 0;
    TcpEndpoint a{kClient, kind, &c1, nullptr, nullptr};
    TcpEndpoint b{kServer, kind, &c2, nullptr,
                  [&](std::string_view) { done = s2.now(); }};
    TcpConnection conn(s2, eth2, a, b);
    conn.connect(nullptr);
    s2.run();
    const auto start = s2.now();
    conn.send_a_to_b(std::string(512, 'x'));
    s2.run();
    return done - start;
  };
  const auto kernel = measure(StackKind::kKernel);
  const auto fstack = measure(StackKind::kFstack);
  EXPECT_GT(kernel, 3 * fstack)
      << "kernel per-message path should be several times slower";
}

TEST_F(TcpTest, ReceiverCpuChargedPerMessage) {
  sim::Core client_core(sched, "client"), server_core(sched, "server");
  int received = 0;
  TcpEndpoint a{kClient, StackKind::kKernel, &client_core, nullptr, nullptr};
  TcpEndpoint b{kServer, StackKind::kKernel, &server_core, nullptr,
                [&](std::string_view) { ++received; }};
  TcpConnection conn(sched, eth, a, b);
  conn.connect(nullptr);
  sched.run();
  const auto before = server_core.busy_ns();
  for (int i = 0; i < 10; ++i) conn.send_a_to_b("x");
  sched.run();
  EXPECT_EQ(received, 10);
  // 10 interrupts + protocol work serialized on the server core.
  EXPECT_GE(server_core.busy_ns() - before,
            10 * (cost::kInterruptNs + cost::kKernelTcpPerReqNs));
}

TEST_F(TcpTest, RssSpreadsAcrossCoreSet) {
  sim::Core client_core(sched, "client");
  sim::CoreSet server_cores(sched, "srv", 4);
  int received = 0;
  TcpEndpoint a{kClient, StackKind::kKernel, &client_core, nullptr, nullptr};
  TcpEndpoint b{kServer, StackKind::kKernel, nullptr, &server_cores,
                [&](std::string_view) { ++received; }};
  TcpConnection conn(sched, eth, a, b);
  conn.connect(nullptr);
  sched.run();
  for (int i = 0; i < 16; ++i) conn.send_a_to_b(std::string(64, 'y'));
  sched.run();
  EXPECT_EQ(received, 16);
  // Least-loaded selection must have used more than one core.
  int used = 0;
  for (std::size_t i = 0; i < server_cores.size(); ++i) {
    if (server_cores.core(i).busy_ns() > 0) ++used;
  }
  EXPECT_GT(used, 1);
}

TEST_F(TcpTest, EndpointValidation) {
  sim::Core core(sched, "c");
  sim::CoreSet set(sched, "s", 2);
  TcpEndpoint both{kClient, StackKind::kKernel, &core, &set, nullptr};
  TcpEndpoint ok{kServer, StackKind::kKernel, &core, nullptr, nullptr};
  EXPECT_THROW(TcpConnection(sched, eth, both, ok), CheckFailure);
  TcpEndpoint neither{kClient, StackKind::kKernel, nullptr, nullptr, nullptr};
  EXPECT_THROW(TcpConnection(sched, eth, neither, ok), CheckFailure);
  TcpEndpoint same_node{kServer, StackKind::kKernel, &core, nullptr, nullptr};
  EXPECT_THROW(TcpConnection(sched, eth, ok, same_node), CheckFailure);
}

}  // namespace
}  // namespace pd::proto
