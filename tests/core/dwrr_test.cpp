#include "core/dwrr.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "common/check.hpp"

namespace pd::core {
namespace {

TEST(Dwrr, EmptyDequeueReturnsNullopt) {
  DwrrScheduler<int> s;
  s.add_tenant(TenantId{1}, 1);
  EXPECT_FALSE(s.dequeue().has_value());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Dwrr, SingleTenantFifo) {
  DwrrScheduler<int> s;
  s.add_tenant(TenantId{1}, 3);
  for (int i = 0; i < 5; ++i) s.enqueue(TenantId{1}, i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*s.dequeue(), i);
  EXPECT_FALSE(s.dequeue().has_value());
}

TEST(Dwrr, UnknownTenantRejected) {
  DwrrScheduler<int> s;
  EXPECT_THROW(s.enqueue(TenantId{9}, 1), CheckFailure);
  s.add_tenant(TenantId{1}, 1);
  EXPECT_THROW(s.add_tenant(TenantId{1}, 2), CheckFailure);
  EXPECT_THROW(s.add_tenant(TenantId{2}, 0), CheckFailure);
}

TEST(Dwrr, BackloggedSharesMatchWeights) {
  // The Fig. 15 property: with all tenants backlogged, dequeues split
  // 6:1:2 by weight.
  DwrrScheduler<int> s;
  s.add_tenant(TenantId{1}, 6);
  s.add_tenant(TenantId{2}, 1);
  s.add_tenant(TenantId{3}, 2);
  constexpr int kPerTenant = 900;
  for (int i = 0; i < kPerTenant; ++i) {
    for (std::uint32_t t = 1; t <= 3; ++t) s.enqueue(TenantId{t}, static_cast<int>(t));
  }
  std::map<int, int> served;
  for (int i = 0; i < 900; ++i) {
    auto v = s.dequeue();
    ASSERT_TRUE(v.has_value());
    ++served[*v];
  }
  EXPECT_NEAR(served[1], 600, 12);
  EXPECT_NEAR(served[2], 100, 12);
  EXPECT_NEAR(served[3], 200, 12);
}

class DwrrWeights
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(DwrrWeights, ShareProportionalToArbitraryWeights) {
  const auto weights = GetParam();
  DwrrScheduler<std::size_t> s;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    s.add_tenant(TenantId{static_cast<std::uint32_t>(i + 1)}, weights[i]);
  }
  const std::uint64_t wsum = std::accumulate(weights.begin(), weights.end(), 0u);
  const int rounds = 200;
  // Keep every queue backlogged throughout.
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::uint64_t k = 0; k < weights[i] * rounds + 100; ++k) {
      s.enqueue(TenantId{static_cast<std::uint32_t>(i + 1)}, i);
    }
  }
  std::vector<int> served(weights.size(), 0);
  const std::uint64_t total = wsum * rounds;
  for (std::uint64_t i = 0; i < total; ++i) {
    auto v = s.dequeue();
    ASSERT_TRUE(v.has_value());
    ++served[*v];
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = static_cast<double>(weights[i]) * rounds;
    EXPECT_NEAR(served[i], expected, expected * 0.02 + 2.0)
        << "tenant " << i << " weight " << weights[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeightVectors, DwrrWeights,
    ::testing::Values(std::vector<std::uint32_t>{1, 1},
                      std::vector<std::uint32_t>{6, 1, 2},
                      std::vector<std::uint32_t>{10, 1},
                      std::vector<std::uint32_t>{3, 3, 3, 3},
                      std::vector<std::uint32_t>{7, 2, 5, 1, 9}));

TEST(Dwrr, IdleTenantDoesNotAccumulateCredit) {
  // A tenant that was idle must not burst ahead when it returns (empty
  // queues drop their deficit — standard DRR).
  DwrrScheduler<int> s;
  s.add_tenant(TenantId{1}, 1);
  s.add_tenant(TenantId{2}, 1);
  // Tenant 1 alone for a while.
  for (int i = 0; i < 50; ++i) s.enqueue(TenantId{1}, 1);
  for (int i = 0; i < 50; ++i) s.dequeue();
  // Now both backlogged: shares must be ~equal despite tenant 2's absence.
  for (int i = 0; i < 100; ++i) {
    s.enqueue(TenantId{1}, 1);
    s.enqueue(TenantId{2}, 2);
  }
  std::map<int, int> served;
  for (int i = 0; i < 100; ++i) ++served[*s.dequeue()];
  EXPECT_NEAR(served[1], 50, 2);
  EXPECT_NEAR(served[2], 50, 2);
}

TEST(Dwrr, SizeAwareFairness) {
  // With byte-sized items, shares are proportional in *bytes*, not items:
  // tenant 2 sends items 4x larger, so gets 1/4 the items at equal weight.
  DwrrScheduler<int> s(/*quantum_base=*/4);
  s.add_tenant(TenantId{1}, 1);
  s.add_tenant(TenantId{2}, 1);
  for (int i = 0; i < 400; ++i) {
    s.enqueue(TenantId{1}, 1, 1);
    s.enqueue(TenantId{2}, 2, 4);
  }
  std::map<int, int> served;
  for (int i = 0; i < 250; ++i) ++served[*s.dequeue()];
  EXPECT_NEAR(served[1] / 4.0, served[2], 8.0);
}

TEST(Dwrr, OversizedItemStillMakesProgress) {
  DwrrScheduler<int> s(/*quantum_base=*/1);
  s.add_tenant(TenantId{1}, 1);
  s.enqueue(TenantId{1}, 42, /*size=*/1000);  // larger than any quantum
  auto v = s.dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(Dwrr, RemoveTenant) {
  DwrrScheduler<int> s;
  s.add_tenant(TenantId{1}, 1);
  s.add_tenant(TenantId{2}, 1);
  s.enqueue(TenantId{2}, 2);
  EXPECT_THROW(s.remove_tenant(TenantId{2}), CheckFailure);  // non-empty
  s.dequeue();
  s.remove_tenant(TenantId{2});
  EXPECT_FALSE(s.has_tenant(TenantId{2}));
  s.enqueue(TenantId{1}, 1);
  EXPECT_EQ(*s.dequeue(), 1);
}

TEST(Dwrr, MidRoundRemovalKeepsRemainingSharesFair) {
  // Regression: remove_tenant erased the tenant from the round-robin order
  // without adjusting the cursor. Removing a tenant ordered *before* the
  // cursor shifted every later index left, silently moving the cursor one
  // tenant forward — the skipped tenant kept a stale visited_this_round
  // flag and missed its next quantum top-up, skewing shares.
  DwrrScheduler<int> s(/*quantum_base=*/2);
  s.add_tenant(TenantId{1}, 1);  // A: drains early, then removed
  s.add_tenant(TenantId{2}, 1);  // B: backlogged
  s.add_tenant(TenantId{3}, 1);  // C: backlogged
  s.enqueue(TenantId{1}, 1);
  s.enqueue(TenantId{1}, 1);
  for (int i = 0; i < 20; ++i) {
    s.enqueue(TenantId{2}, 2);
    s.enqueue(TenantId{3}, 3);
  }
  // Drain A's quantum, then serve B once so the cursor rests mid-round on B
  // (B holds leftover deficit and visited_this_round == true).
  EXPECT_EQ(*s.dequeue(), 1);
  EXPECT_EQ(*s.dequeue(), 1);
  EXPECT_EQ(*s.dequeue(), 2);
  s.remove_tenant(TenantId{1});
  // Equal weights -> the next 12 dequeues must split exactly 6:6.
  std::map<int, int> served;
  for (int i = 0; i < 12; ++i) ++served[*s.dequeue()];
  EXPECT_EQ(served[2], 6);
  EXPECT_EQ(served[3], 6);
}

TEST(Dwrr, DrainTenantReturnsFifoBacklogAndDeregisters) {
  DwrrScheduler<int> s;
  s.add_tenant(TenantId{1}, 1);
  s.add_tenant(TenantId{2}, 1);
  for (int i = 0; i < 4; ++i) s.enqueue(TenantId{2}, 10 + i);
  s.enqueue(TenantId{1}, 1);
  const std::vector<int> drained = s.drain_tenant(TenantId{2});
  EXPECT_EQ(drained, (std::vector<int>{10, 11, 12, 13}));
  EXPECT_FALSE(s.has_tenant(TenantId{2}));
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(*s.dequeue(), 1);
}

TEST(Dwrr, MidRoundDrainKeepsRemainingSharesFair) {
  // Scale-down regression (ISSUE 7): draining a tenant mid-round must not
  // shift the round cursor onto the wrong survivor — same hazard as the
  // remove_tenant cursor fix, but reached through the teardown path that
  // still holds a backlog.
  DwrrScheduler<int> s(/*quantum_base=*/2);
  s.add_tenant(TenantId{1}, 1);  // A: drained mid-round with items queued
  s.add_tenant(TenantId{2}, 1);  // B: backlogged
  s.add_tenant(TenantId{3}, 1);  // C: backlogged
  for (int i = 0; i < 20; ++i) {
    s.enqueue(TenantId{2}, 2);
    s.enqueue(TenantId{3}, 3);
  }
  for (int i = 0; i < 3; ++i) s.enqueue(TenantId{1}, 1);
  // Serve A's quantum then B once so the cursor rests mid-round with A's
  // queue still non-empty — exactly the state a live scale-down hits.
  EXPECT_EQ(*s.dequeue(), 1);
  EXPECT_EQ(*s.dequeue(), 1);
  EXPECT_EQ(*s.dequeue(), 2);
  EXPECT_EQ(s.drain_tenant(TenantId{1}).size(), 1u);
  s.enqueue(TenantId{2}, 2);  // keep counts symmetric after B's head start
  // Equal weights -> the next 12 dequeues must split exactly 6:6.
  std::map<int, int> served;
  for (int i = 0; i < 12; ++i) ++served[*s.dequeue()];
  EXPECT_EQ(served[2], 6);
  EXPECT_EQ(served[3], 6);
}

TEST(Fcfs, ServesInArrivalOrderAcrossTenants) {
  FcfsScheduler<int> s;
  s.enqueue(TenantId{1}, 1);
  s.enqueue(TenantId{2}, 2);
  s.enqueue(TenantId{1}, 3);
  EXPECT_EQ(*s.dequeue(), 1);
  EXPECT_EQ(*s.dequeue(), 2);
  EXPECT_EQ(*s.dequeue(), 3);
  EXPECT_FALSE(s.dequeue().has_value());
}

}  // namespace
}  // namespace pd::core
