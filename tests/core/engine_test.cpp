// NetworkEngine white-box tests: SRQ replenishment, RNR behaviour under
// pool pressure, DWRR-vs-FCFS inside the engine, and on-path DMA staging.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "proto/cost_model.hpp"

namespace pd::core {
namespace {

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kSrcFn{1};
constexpr FunctionId kDstFn{2};

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : net(sched),
        mem1(kNode1),
        mem2(kNode2),
        rnic1(net, kNode1, mem1),
        rnic2(net, kNode2, mem2),
        dpu1(sched, kNode1),
        dpu2(sched, kNode2),
        fn_core1(sched, "fn1"),
        fn_core2(sched, "fn2") {}

  void build(EngineConfig config, EngineKind kind = EngineKind::kDneOffPath) {
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", pool_buffers,
                                         2048);
      tm.export_to_dpu();
      tm.export_to_rdma();
    }
    eng1 = std::make_unique<NetworkEngine>(sched, kind, config, dpu1.core(0),
                                           rnic1, mem1, &dpu1);
    eng2 = std::make_unique<NetworkEngine>(sched, kind, config, dpu2.core(0),
                                           rnic2, mem2, &dpu2);
    eng1->add_tenant(kTenant, 1);
    eng2->add_tenant(kTenant, 1);
    eng1->connect_peer(kNode2);
    eng2->connect_peer(kNode1);
    eng1->routes().add_route(kDstFn, kNode2);
    eng2->routes().add_route(kSrcFn, kNode1);
    eng1->register_local_function(kSrcFn, kTenant, fn_core1,
                                  [this](const mem::BufferDescriptor& d) {
                                    src_got.push_back(d);
                                  });
    eng2->register_local_function(kDstFn, kTenant, fn_core2,
                                  [this](const mem::BufferDescriptor& d) {
                                    dst_got.push_back(d);
                                  });
    sched.run();  // connection setup
  }

  /// Send one message kSrcFn(node1) -> kDstFn(node2).
  void send_one(std::uint32_t payload = 64) {
    auto& pool = mem1.by_tenant(kTenant).pool();
    auto d = pool.allocate(mem::actor_function(kSrcFn));
    ASSERT_TRUE(d.has_value());
    MessageHeader h;
    h.request_id = next_id++;
    h.src_fn = kSrcFn.value();
    h.dst_fn = kDstFn.value();
    h.payload_len = payload;
    write_header(pool.access(*d, mem::actor_function(kSrcFn)), h);
    const auto sized = pool.resize(*d, mem::actor_function(kSrcFn),
                                   message_bytes(payload));
    eng1->submit(kSrcFn, fn_core1, sized);
  }

  sim::Scheduler sched;
  rdma::RdmaNetwork net;
  mem::MemoryDomain mem1;
  mem::MemoryDomain mem2;
  rdma::Rnic rnic1;
  rdma::Rnic rnic2;
  dpu::Dpu dpu1;
  dpu::Dpu dpu2;
  sim::Core fn_core1;
  sim::Core fn_core2;
  std::unique_ptr<NetworkEngine> eng1;
  std::unique_ptr<NetworkEngine> eng2;
  std::vector<mem::BufferDescriptor> src_got;
  std::vector<mem::BufferDescriptor> dst_got;
  std::uint64_t next_id = 1;
  std::size_t pool_buffers = 128;
};

TEST_F(EngineTest, DeliversAcrossNodesWithOwnershipHandoff) {
  build(EngineConfig{});
  send_one();
  sched.run();
  ASSERT_EQ(dst_got.size(), 1u);
  // The destination function owns the delivered buffer.
  auto& pool2 = mem2.by_tenant(kTenant).pool();
  EXPECT_EQ(pool2.owner_of(dst_got[0]).kind, mem::ActorKind::kFunction);
  const MessageHeader h =
      read_header(pool2.access(dst_got[0], mem::actor_function(kDstFn)));
  EXPECT_EQ(h.dst(), kDstFn);
  EXPECT_EQ(eng1->counters().tx_msgs, 1u);
  EXPECT_EQ(eng2->counters().rx_msgs, 1u);
  EXPECT_EQ(eng1->counters().recycled, 1u);  // sender buffer reclaimed
}

TEST_F(EngineTest, ReplenisherKeepsSrqStocked) {
  EngineConfig cfg;
  cfg.srq_fill = 8;
  build(cfg);
  for (int i = 0; i < 32; ++i) {
    send_one();
    sched.run();
  }
  EXPECT_EQ(dst_got.size(), 32u);
  // Consumed buffers were reposted by the core thread.
  EXPECT_GE(eng2->counters().replenished, 32u + 8u);
  EXPECT_EQ(rnic2.counters().rnr_events, 0u);
}

TEST_F(EngineTest, BurstBeyondSrqDepthRecoversViaRnr) {
  EngineConfig cfg;
  cfg.srq_fill = 2;
  cfg.replenish_period = 200'000;  // slow replenisher
  build(cfg);
  for (int i = 0; i < 16; ++i) send_one();
  // Recovery rides the background replenish tick, which does not keep
  // run() alive on its own — drive virtual time forward instead.
  sched.run_until(sched.now() + 20'000'000);
  // Everything still arrives; some sends stalled in RNR until reposting.
  ASSERT_EQ(dst_got.size(), 16u);
  EXPECT_GT(rnic2.counters().rnr_events, 0u);
}

TEST_F(EngineTest, UnroutableFunctionGetsErrorCompletion) {
  build(EngineConfig{});
  auto& pool = mem1.by_tenant(kTenant).pool();
  auto d = pool.allocate(mem::actor_function(kSrcFn));
  MessageHeader h;
  h.src_fn = kSrcFn.value();
  h.dst_fn = 999;  // nobody deployed this
  h.payload_len = 16;
  write_header(pool.access(*d, mem::actor_function(kSrcFn)), h);
  eng1->submit(kSrcFn, fn_core1,
               pool.resize(*d, mem::actor_function(kSrcFn), message_bytes(16)));
  sched.run();
  EXPECT_EQ(eng1->counters().drops_no_route, 1u);
  EXPECT_EQ(eng1->counters().tx_msgs, 0u);
  // No silent drop: the sender gets an explicit error completion carrying
  // the failed message's identity.
  EXPECT_EQ(eng1->counters().error_completions, 1u);
  ASSERT_EQ(src_got.size(), 1u);
  const MessageHeader e =
      read_header(pool.access(src_got[0], mem::actor_function(kSrcFn)));
  EXPECT_TRUE(e.is_error());
  EXPECT_EQ(e.dst(), kSrcFn);
  EXPECT_EQ(e.payload_len, 0u);
  pool.release(src_got[0], mem::actor_function(kSrcFn));
  // Buffer was reclaimed, not leaked (64 buffers live in the SRQ).
  EXPECT_EQ(pool.available(), pool.capacity() - 64);
}

TEST_F(EngineTest, OnPathStagesThroughSocDma) {
  build(EngineConfig{}, EngineKind::kDneOnPath);
  send_one(1024);
  sched.run();
  ASSERT_EQ(dst_got.size(), 1u);
  // TX staged host->SoC and RX staged SoC->host: two DMA ops.
  EXPECT_EQ(dpu1.dma().transfers() + dpu2.dma().transfers(), 2u);
}

TEST_F(EngineTest, OffPathNeverTouchesSocDma) {
  build(EngineConfig{});
  send_one(1024);
  sched.run();
  ASSERT_EQ(dst_got.size(), 1u);
  EXPECT_EQ(dpu1.dma().transfers(), 0u);
  EXPECT_EQ(dpu2.dma().transfers(), 0u);
}

TEST_F(EngineTest, CneRunsOnHostCoreWithoutDpu) {
  // 64 buffers would be fully consumed by the default SRQ fill; leave
  // allocation headroom for the test's own message.
  for (auto* dom : {&mem1, &mem2}) {
    auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 256, 2048);
    tm.export_to_rdma();
  }
  sim::Core cne_core1(sched, "cne1"), cne_core2(sched, "cne2");
  NetworkEngine cne1(sched, EngineKind::kCne, EngineConfig{}, cne_core1, rnic1,
                     mem1, nullptr);
  NetworkEngine cne2(sched, EngineKind::kCne, EngineConfig{}, cne_core2, rnic2,
                     mem2, nullptr);
  cne1.add_tenant(kTenant, 1);
  cne2.add_tenant(kTenant, 1);
  cne1.connect_peer(kNode2);
  cne2.connect_peer(kNode1);
  cne1.routes().add_route(kDstFn, kNode2);
  cne1.register_local_function(kSrcFn, kTenant, fn_core1,
                               [](const mem::BufferDescriptor&) {});
  bool delivered = false;
  cne2.register_local_function(kDstFn, kTenant, fn_core2,
                               [&](const mem::BufferDescriptor&) {
                                 delivered = true;
                               });
  sched.run();

  auto& pool = mem1.by_tenant(kTenant).pool();
  auto d = pool.allocate(mem::actor_function(kSrcFn));
  ASSERT_TRUE(d.has_value());
  MessageHeader h;
  h.src_fn = kSrcFn.value();
  h.dst_fn = kDstFn.value();
  h.payload_len = 32;
  write_header(pool.access(*d, mem::actor_function(kSrcFn)), h);
  cne1.submit(kSrcFn, fn_core1,
              pool.resize(*d, mem::actor_function(kSrcFn), message_bytes(32)));
  sched.run();
  EXPECT_TRUE(delivered);
  // CNE is interrupt-driven, not pinned.
  EXPECT_FALSE(cne_core1.busy_poll());
  EXPECT_GT(cne_core1.busy_ns(), 0);
}

/// Standalone instance of the fixture so a test can stand up a second,
/// independently configured cluster for differential comparisons.
struct EngineHarness : EngineTest {
  using EngineTest::build;
  using EngineTest::dst_got;
  using EngineTest::sched;
  using EngineTest::send_one;
  void TestBody() override {}  // satisfy ::testing::Test's pure virtual
};

TEST_F(EngineTest, DoorbellBatchingDeliversSameMessagesWithFewerEvents) {
  // tx_doorbell_batch=4 posts up to 4 queued messages per engine-core
  // event (one scheduling slice, one doorbell). Delivery is unchanged;
  // only the simulator event count shrinks.
  EngineConfig batched;
  batched.tx_doorbell_batch = 4;
  build(batched);
  for (int i = 0; i < 16; ++i) send_one();
  sched.run();
  const auto batched_events = sched.events_processed();
  EXPECT_EQ(dst_got.size(), 16u);
  EXPECT_EQ(eng1->counters().tx_msgs, 16u);

  // Same traffic with the legacy one-event-per-message TX path.
  EngineHarness legacy;  // fresh cluster
  legacy.build(EngineConfig{});
  for (int i = 0; i < 16; ++i) legacy.send_one();
  legacy.sched.run();
  EXPECT_EQ(legacy.dst_got.size(), 16u);
  EXPECT_GT(legacy.sched.events_processed(), batched_events);
}

TEST_F(EngineTest, CqCoalescingKnobsStillDeliverEverything) {
  // CQE batching defers RX wakeups; the moderation window guarantees tail
  // completions still drain before the simulation is considered idle.
  EngineConfig cfg;
  cfg.cq_coalesce_batch = 8;
  cfg.cq_coalesce_window = 2'000;
  build(cfg);
  for (int i = 0; i < 20; ++i) send_one();
  sched.run();
  EXPECT_EQ(dst_got.size(), 20u);
  EXPECT_EQ(eng2->counters().rx_msgs, 20u);
}

TEST_F(EngineTest, EngineRejectsUnknownTenantTraffic) {
  build(EngineConfig{});
  auto& other =
      mem1.create_tenant_pool(TenantId{9}, "rogue", 8, 2048);
  other.export_to_dpu();
  other.export_to_rdma();
  auto d = other.pool().allocate(mem::actor_function(kSrcFn));
  MessageHeader h;
  h.src_fn = kSrcFn.value();
  h.dst_fn = kDstFn.value();
  write_header(other.pool().access(*d, mem::actor_function(kSrcFn)), h);
  eng1->submit(kSrcFn, fn_core1, *d);
  EXPECT_THROW(sched.run(), CheckFailure);  // ingest rejects tenant 9
}

TEST_F(EngineTest, TenantAdmissionGateShedsExplicitlyAndRecovers) {
  EngineConfig cfg;
  cfg.tenant_admission = true;
  cfg.max_unacked = 4;  // single tenant -> credit cap of 4
  cfg.min_tenant_credits = 2;
  build(cfg);
  for (int i = 0; i < 16; ++i) send_one();
  sched.run();
  // The burst exceeds the tenant's credit slice: the overflow is shed with
  // explicit error completions back to the submitter — never silently.
  EXPECT_GT(eng1->counters().shed_admission, 0u);
  EXPECT_EQ(eng1->counters().shed_admission, eng1->counters().requests_shed);
  EXPECT_EQ(dst_got.size() + src_got.size(), 16u);
  for (const auto& d : src_got) {
    auto& pool = mem1.by_tenant(kTenant).pool();
    EXPECT_TRUE(read_header(pool.access(d, mem::actor_function(kSrcFn)))
                    .is_error());
    pool.release(d, mem::actor_function(kSrcFn));
  }
  // Recovery: once the window drains, fresh sends are admitted again.
  const auto shed_before = eng1->counters().shed_admission;
  for (int i = 0; i < 4; ++i) {
    send_one();
    sched.run();
  }
  EXPECT_EQ(eng1->counters().shed_admission, shed_before);
  EXPECT_EQ(dst_got.size() + src_got.size(), 20u);
}

TEST_F(EngineTest, RemoveTenantDrainsBacklogAsExplicitErrors) {
  EngineConfig cfg;
  // A slow TX stage lets ingest race ahead, so the burst piles up in the
  // DWRR; the long retransmit timeout keeps recovery machinery out of the
  // picture (tx_msgs then counts unique transmissions).
  cfg.extra_per_msg_ns = 50'000;
  cfg.retransmit_timeout = 50'000'000;
  build(cfg);
  for (int i = 0; i < 8; ++i) send_one();
  // Step the clock until the whole burst has been ingested (everything is
  // either queued or already transmitted) while a backlog still sits in
  // the DWRR. Removing the tenant before ingest completes is a caller
  // error by contract, so the test has to find this window explicitly.
  bool found = false;
  for (int i = 0; i < 100'000; ++i) {
    const std::size_t queued = eng1->queued_for(kTenant);
    if (queued > 0 && eng1->counters().tx_msgs + queued == 8) {
      found = true;
      break;
    }
    sched.run_until(sched.now() + 500);
  }
  ASSERT_TRUE(found) << "burst never formed a DWRR backlog";
  // Tear the tenant down mid-backlog: everything still queued at the DWRR
  // must come back as an explicit error completion, and in-flight messages
  // must not trip credit accounting for the now-unknown tenant.
  const std::size_t drained = eng1->remove_tenant(kTenant);
  sched.run();
  EXPECT_GT(drained, 0u);
  EXPECT_EQ(eng1->counters().error_completions, drained);
  EXPECT_EQ(src_got.size(), drained);
  EXPECT_EQ(dst_got.size() + src_got.size(), 8u);
  EXPECT_FALSE(eng1->has_tenant(kTenant));
}

}  // namespace
}  // namespace pd::core
