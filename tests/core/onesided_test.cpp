// The Fig. 12 data-plane variants head to head: two-sided must beat OWRC
// which must beat OWDL, and OWRC-Worst must trail OWRC-Best.
#include "core/onesided.hpp"

#include <gtest/gtest.h>

#include "proto/cost_model.hpp"

namespace pd::core {
namespace {

constexpr TenantId kTenant{1};
constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

class OneSidedTest : public ::testing::Test {
 protected:
  OneSidedTest()
      : net(sched),
        mem1(kNode1),
        mem2(kNode2),
        rnic1(net, kNode1, mem1),
        rnic2(net, kNode2, mem2),
        core1(sched, "dne1", cost::kDpuCoreSpeed),
        core2(sched, "dne2", cost::kDpuCoreSpeed) {
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 128, 8192);
      tm.export_to_rdma();
    }
    rnic1.register_memory(mem1.by_tenant(kTenant).pool_id());
    rnic2.register_memory(mem2.by_tenant(kTenant).pool_id());
  }

  /// Established + activated QP pair; returns (client_qp, server_qp).
  std::pair<rdma::QueuePair*, rdma::QueuePair*> connect() {
    rdma::QueuePair& a = rnic1.create_qp(kTenant);
    rdma::QueuePair& b = rnic2.create_qp(kTenant);
    rdma::connect_qps(a, b, nullptr);
    sched.run();
    a.activate(nullptr);
    b.activate(nullptr);
    sched.run();
    return {&a, &b};
  }

  mem::TenantMemory& make_rdma_pool(mem::MemoryDomain& dom, rdma::Rnic& rnic,
                                    TenantId t, const std::string& prefix) {
    auto& tm = dom.create_tenant_pool(t, prefix, 64, 8192);
    tm.export_to_rdma();
    rnic.register_memory(tm.pool_id());
    return tm;
  }

  sim::Scheduler sched;
  rdma::RdmaNetwork net;
  mem::MemoryDomain mem1;
  mem::MemoryDomain mem2;
  rdma::Rnic rnic1;
  rdma::Rnic rnic2;
  sim::Core core1;
  sim::Core core2;
};

TEST_F(OneSidedTest, TwoSidedEchoCompletes) {
  auto [qp_a, qp_b] = connect();
  TwoSidedEchoPeer client(core1, rnic1, kTenant, /*is_server=*/false);
  TwoSidedEchoPeer server(core2, rnic2, kTenant, /*is_server=*/true);
  client.start(*qp_a, 16);
  server.start(*qp_b, 16);

  // Sequential closed loop: one outstanding echo at a time, so the RTT is
  // the unloaded figure the paper quotes.
  int done = 0;
  sim::Duration rtt = 0;
  std::function<void()> next = [&] {
    client.send_request(64, [&](sim::Duration r) {
      rtt = r;
      if (++done < 20) next();
    });
  };
  next();
  sched.run();
  EXPECT_EQ(done, 20);
  EXPECT_EQ(server.echoes(), 20u);
  // Two-sided 64 B echo RTT lands in the ~5-15 µs band (paper: 8.4 µs).
  EXPECT_GT(rtt, 4'000);
  EXPECT_LT(rtt, 16'000);
}

TEST_F(OneSidedTest, OwrcEchoCompletesAndColdIsSlower) {
  auto run = [&](bool cold) {
    sim::Scheduler s2;
    rdma::RdmaNetwork net2(s2);
    mem::MemoryDomain m1(kNode1), m2(kNode2);
    rdma::Rnic r1(net2, kNode1, m1), r2(net2, kNode2, m2);
    sim::Core c1(s2, "dne1", cost::kDpuCoreSpeed),
        c2(s2, "dne2", cost::kDpuCoreSpeed);
    for (auto* dom : {&m1, &m2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "t", 128, 8192);
      tm.export_to_rdma();
    }
    r1.register_memory(m1.by_tenant(kTenant).pool_id());
    r2.register_memory(m2.by_tenant(kTenant).pool_id());
    auto& stage1 = m1.create_tenant_pool(TenantId{900}, "rdma1", 64, 8192);
    auto& stage2 = m2.create_tenant_pool(TenantId{900}, "rdma2", 64, 8192);
    stage1.export_to_rdma();
    stage2.export_to_rdma();
    r1.register_memory(stage1.pool_id());
    r2.register_memory(stage2.pool_id());

    rdma::QueuePair& a = r1.create_qp(kTenant);
    rdma::QueuePair& b = r2.create_qp(kTenant);
    rdma::connect_qps(a, b, nullptr);
    s2.run();
    a.activate(nullptr);
    b.activate(nullptr);
    s2.run();

    OwrcEchoPeer client(c1, r1, kTenant, false, cold);
    OwrcEchoPeer server(c2, r2, kTenant, true, cold);
    client.start(a, stage1, 16);
    server.start(b, stage2, 16);
    client.set_remote_pool(stage2.pool_id());
    server.set_remote_pool(stage1.pool_id());

    sim::Duration total = 0;
    int done = 0;
    for (int i = 0; i < 10; ++i) {
      client.send_request(4096, [&](sim::Duration r) {
        total += r;
        ++done;
      });
    }
    s2.run();
    EXPECT_EQ(done, 10);
    EXPECT_EQ(server.echoes(), 10u);
    return total / 10;
  };
  const auto best = run(false);
  const auto worst = run(true);
  EXPECT_GT(worst, best);  // cold copies cost more
}

TEST_F(OneSidedTest, OwdlEchoCompletesWithLockProtocol) {
  auto [qp_a, qp_b] = connect();
  OwdlEchoPeer client(core1, rnic1, kTenant, false);
  OwdlEchoPeer server(core2, rnic2, kTenant, true);
  client.start(*qp_a, 16);
  server.start(*qp_b, 16);
  client.set_remote_pool(mem2.by_tenant(kTenant).pool_id());
  server.set_remote_pool(mem1.by_tenant(kTenant).pool_id());

  int done = 0;
  sim::Duration rtt = 0;
  for (int i = 0; i < 10; ++i) {
    client.send_request(64, [&](sim::Duration r) {
      rtt = r;
      ++done;
    });
  }
  sched.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(server.echoes(), 10u);
  EXPECT_GT(rtt, 10'000);  // lock RTTs + polling dominate
}

TEST_F(OneSidedTest, TwoSidedBeatsOneSidedVariants) {
  // The headline of §4.1.2, at 4 KiB messages.
  auto measure_two_sided = [&] {
    auto [qp_a, qp_b] = connect();
    TwoSidedEchoPeer client(core1, rnic1, kTenant, false);
    TwoSidedEchoPeer server(core2, rnic2, kTenant, true);
    client.start(*qp_a, 16);
    server.start(*qp_b, 16);
    sim::Duration total = 0;
    int done = 0;
    std::function<void()> next = [&] {
      client.send_request(4096, [&](sim::Duration r) {
        total += r;
        if (++done < 20) next();
      });
    };
    next();
    sched.run();
    return total / done;
  };
  const auto two_sided = measure_two_sided();

  // OWDL on fresh state.
  sim::Scheduler s2;
  rdma::RdmaNetwork net2(s2);
  mem::MemoryDomain m1(kNode1), m2(kNode2);
  rdma::Rnic r1(net2, kNode1, m1), r2(net2, kNode2, m2);
  sim::Core c1(s2, "dne1", cost::kDpuCoreSpeed),
      c2(s2, "dne2", cost::kDpuCoreSpeed);
  for (auto* dom : {&m1, &m2}) {
    auto& tm = dom->create_tenant_pool(kTenant, "t", 128, 8192);
    tm.export_to_rdma();
  }
  r1.register_memory(m1.by_tenant(kTenant).pool_id());
  r2.register_memory(m2.by_tenant(kTenant).pool_id());
  rdma::QueuePair& a = r1.create_qp(kTenant);
  rdma::QueuePair& b = r2.create_qp(kTenant);
  rdma::connect_qps(a, b, nullptr);
  s2.run();
  a.activate(nullptr);
  b.activate(nullptr);
  s2.run();
  OwdlEchoPeer client(c1, r1, kTenant, false);
  OwdlEchoPeer server(c2, r2, kTenant, true);
  client.start(a, 16);
  server.start(b, 16);
  client.set_remote_pool(m2.by_tenant(kTenant).pool_id());
  server.set_remote_pool(m1.by_tenant(kTenant).pool_id());
  sim::Duration owdl_total = 0;
  int done = 0;
  std::function<void()> next = [&] {
    client.send_request(4096, [&](sim::Duration r) {
      owdl_total += r;
      if (++done < 20) next();
    });
  };
  next();
  s2.run();
  const auto owdl = owdl_total / done;

  EXPECT_GT(owdl, two_sided * 3 / 2)
      << "OWDL should trail two-sided by well over 1.5x (paper: 2-2.8x)";
}

}  // namespace
}  // namespace pd::core
