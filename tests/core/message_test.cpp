#include "core/message.hpp"

#include <gtest/gtest.h>

#include <array>

#include "common/check.hpp"
#include "core/rbr.hpp"
#include "core/routing.hpp"

namespace pd::core {
namespace {

TEST(MessageHeader, RoundTripThroughBuffer) {
  std::array<std::byte, 128> buf{};
  MessageHeader h;
  h.request_id = 0xDEADBEEF12345678ULL;
  h.src_fn = 3;
  h.dst_fn = 7;
  h.chain_id = 2;
  h.hop_index = 5;
  h.flags = MessageHeader::kFlagResponse;
  h.client_id = 99;
  h.payload_len = 64;
  write_header(buf, h);
  const MessageHeader r = read_header(buf);
  EXPECT_EQ(r.request_id, h.request_id);
  EXPECT_EQ(r.src(), FunctionId{3});
  EXPECT_EQ(r.dst(), FunctionId{7});
  EXPECT_EQ(r.hop_index, 5);
  EXPECT_TRUE(r.is_response());
  EXPECT_EQ(r.payload_len, 64u);
}

TEST(MessageHeader, TooSmallBufferRejected) {
  std::array<std::byte, 8> tiny{};
  MessageHeader h;
  EXPECT_THROW(write_header(tiny, h), CheckFailure);
  EXPECT_THROW(read_header(tiny), CheckFailure);
}

TEST(MessageHeader, PayloadView) {
  std::array<std::byte, 128> buf{};
  MessageHeader h;
  h.payload_len = 10;
  write_header(buf, h);
  auto p = payload_of(buf, h);
  EXPECT_EQ(p.size(), 10u);
  EXPECT_EQ(message_bytes(10), sizeof(MessageHeader) + 10);
}

TEST(InterNodeRouting, AddLookupRemove) {
  InterNodeRoutingTable t;
  t.add_route(FunctionId{1}, NodeId{2});
  EXPECT_TRUE(t.has_route(FunctionId{1}));
  EXPECT_EQ(t.lookup(FunctionId{1}), NodeId{2});
  EXPECT_THROW(t.add_route(FunctionId{1}, NodeId{3}), CheckFailure);
  t.remove_route(FunctionId{1});
  EXPECT_FALSE(t.has_route(FunctionId{1}));
  EXPECT_THROW(t.lookup(FunctionId{1}), CheckFailure);
}

TEST(IntraNodeRouting, LocalityQueries) {
  IntraNodeRoutingTable t;
  t.add_local(FunctionId{5});
  EXPECT_TRUE(t.is_local(FunctionId{5}));
  EXPECT_FALSE(t.is_local(FunctionId{6}));
  EXPECT_THROW(t.add_local(FunctionId{5}), CheckFailure);
  t.remove_local(FunctionId{5});
  EXPECT_FALSE(t.is_local(FunctionId{5}));
}

TEST(Rbr, PostConsumeReplenishCycle) {
  ReceiveBufferRegistry rbr;
  const TenantId t{1};
  const mem::BufferDescriptor b1{PoolId{1}, 0, 0, t};
  const mem::BufferDescriptor b2{PoolId{1}, 1, 0, t};
  rbr.on_posted(t, b1);
  rbr.on_posted(t, b2);
  EXPECT_EQ(rbr.outstanding(t), 2u);
  rbr.on_consumed(t, b1);
  EXPECT_EQ(rbr.outstanding(t), 1u);
  EXPECT_EQ(rbr.take_consumed(t), 1u);
  EXPECT_EQ(rbr.take_consumed(t), 0u);  // counter reset
}

TEST(Rbr, MismatchesRejected) {
  ReceiveBufferRegistry rbr;
  const TenantId t{1};
  const mem::BufferDescriptor b{PoolId{1}, 0, 0, t};
  EXPECT_THROW(rbr.on_consumed(t, b), CheckFailure);  // never posted
  rbr.on_posted(t, b);
  EXPECT_THROW(rbr.on_posted(t, b), CheckFailure);  // double post
  EXPECT_THROW(rbr.on_consumed(TenantId{2}, b), CheckFailure);  // wrong tenant
}

}  // namespace
}  // namespace pd::core
