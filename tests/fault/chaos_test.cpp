// End-to-end chaos suite: a two-node Online Boutique deployment behind the
// Palladium ingress, driven by closed-loop HTTP clients while a seeded
// FaultPlan injects link outages, frame loss, QP failures, SRQ drains,
// engine stalls, and node crashes.
//
// The invariant under every seed: no request is ever silently lost — each
// one either completes (200) or fails explicitly (502/504), so
// completed + errors == sent once the run drains. And because the whole
// stack is a deterministic discrete-event simulation, the same seed
// replays bit-identically.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "ingress/palladium_ingress.hpp"
#include "runtime/boutique.hpp"
#include "workload/http_client.hpp"

namespace pd::fault {
namespace {

struct ChaosResult {
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
  std::uint64_t faults = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t reestablishments = 0;
  std::uint64_t send_failures = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t ingress_retries = 0;
  std::uint64_t completed_after_chaos = 0;
  sim::TimePoint end_time = 0;

  bool operator==(const ChaosResult&) const = default;
};

ChaosResult run_chaos(std::uint64_t seed) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(NodeId{1});
  cluster.add_worker(NodeId{2});
  runtime::OnlineBoutique::deploy(cluster, NodeId{1}, NodeId{2});

  ingress::PalladiumIngress ing(cluster, {});
  ing.expose_chain("/home", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();

  FaultPlanConfig fcfg;
  fcfg.start = sched.now() + 2'000'000;
  fcfg.horizon = fcfg.start + 60'000'000;  // 60 ms of chaos
  fcfg.episodes = 10;
  const FaultPlan plan =
      FaultPlan::generate(seed, {NodeId{1}, NodeId{2}}, fcfg);
  ChaosController chaos(cluster, plan);
  chaos.arm();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/home";
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(4);
  // Let the tail of the plan recover fully: the worst case is a crash late
  // in the window — QP pool rebuilds cost ~20 ms of connection setup per
  // backoff round before traffic flows again.
  sched.run_until(fcfg.horizon);
  const std::uint64_t completed_mid_chaos = wrk.completed();
  sched.run_until(fcfg.horizon + 60'000'000);
  wrk.stop();
  sched.run();  // drain: every in-flight request resolves (200/502/504)

  ChaosResult r;
  r.sent = wrk.sent();
  r.completed = wrk.completed();
  r.errors = wrk.errors();
  r.faults = chaos.injected();
  for (const auto& w : cluster.workers()) {
    auto* eng = w->palladium_engine();
    r.retransmits += eng->counters().retransmits;
    r.send_failures += eng->counters().send_failures;
    r.reestablishments += eng->connections().stats().reestablishments;
  }
  r.frames_dropped = cluster.rdma_net()->fabric().frames_dropped();
  r.ingress_retries = ing.retries();
  r.completed_after_chaos = r.completed - completed_mid_chaos;
  r.end_time = sched.now();
  return r;
}

class ChaosSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSeed, NoRequestSilentlyLost) {
  const ChaosResult r = run_chaos(GetParam());
  SCOPED_TRACE("seed " + std::to_string(GetParam()));

  // Chaos actually happened.
  EXPECT_GE(r.faults, 5u);

  // Forward progress despite it, and recovery after it: completions keep
  // landing once the plan ends (a seed whose last fault wedges the cluster
  // permanently would fail here, not just degrade).
  EXPECT_GT(r.completed, 100u);
  EXPECT_GT(r.completed_after_chaos, 0u);

  // The zero-loss invariant: the closed loop issues one request per
  // response, so a fully drained run has every request accounted for —
  // completed or *explicitly* failed, never stuck or vanished.
  EXPECT_EQ(r.sent, r.completed + r.errors);
}

TEST_P(ChaosSeed, ReplayIsBitIdentical) {
  const ChaosResult a = run_chaos(GetParam());
  const ChaosResult b = run_chaos(GetParam());
  EXPECT_EQ(a, b) << "seed " << GetParam() << " did not replay identically";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Chaos, RecoveryMachineryEngages) {
  // Across the seed set, the recovery paths the fault model targets must
  // all have fired somewhere: engine retransmissions and QP pool rebuilds.
  std::uint64_t retransmits = 0;
  std::uint64_t reestablishments = 0;
  std::uint64_t frames_dropped = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const ChaosResult r = run_chaos(seed);
    retransmits += r.retransmits;
    reestablishments += r.reestablishments;
    frames_dropped += r.frames_dropped;
  }
  EXPECT_GT(retransmits, 0u);
  EXPECT_GT(reestablishments, 0u);
  // A plan can stall traffic exactly when its link faults land (nothing on
  // the wire to drop), but across the seed set frames must have died.
  EXPECT_GT(frames_dropped, 0u);
}

TEST(Chaos, DistinctSeedsProduceDistinctRuns) {
  EXPECT_NE(run_chaos(1), run_chaos(2));
}

}  // namespace
}  // namespace pd::fault
