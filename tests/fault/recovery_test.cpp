// Engine reliability-layer tests: retransmission over lossy links, bounded
// retries with explicit error completions, admission shedding, and SRQ
// drain recovery — the per-mechanism half of the fault model (the chaos
// suite exercises them end to end).
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace pd::fault {
namespace {

using core::EngineConfig;
using core::EngineKind;
using core::MessageHeader;
using core::NetworkEngine;
using core::message_bytes;
using core::read_header;
using core::write_header;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kSrcFn{1};
constexpr FunctionId kDstFn{2};

/// Two engines, one fabric — plain struct (not a gtest fixture) so replay
/// tests can build several instances side by side.
struct Harness {
  Harness()
      : net(sched),
        mem1(kNode1),
        mem2(kNode2),
        rnic1(net, kNode1, mem1),
        rnic2(net, kNode2, mem2),
        dpu1(sched, kNode1),
        dpu2(sched, kNode2),
        fn_core1(sched, "fn1"),
        fn_core2(sched, "fn2") {}

  void build(EngineConfig config) {
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 128, 2048);
      tm.export_to_dpu();
      tm.export_to_rdma();
    }
    eng1 = std::make_unique<NetworkEngine>(sched, EngineKind::kDneOffPath,
                                           config, dpu1.core(0), rnic1, mem1,
                                           &dpu1);
    eng2 = std::make_unique<NetworkEngine>(sched, EngineKind::kDneOffPath,
                                           config, dpu2.core(0), rnic2, mem2,
                                           &dpu2);
    eng1->add_tenant(kTenant, 1);
    eng2->add_tenant(kTenant, 1);
    eng1->connect_peer(kNode2);
    eng2->connect_peer(kNode1);
    eng1->routes().add_route(kDstFn, kNode2);
    eng2->routes().add_route(kSrcFn, kNode1);
    eng1->register_local_function(kSrcFn, kTenant, fn_core1,
                                  [this](const mem::BufferDescriptor& d) {
                                    src_got.push_back(d);
                                  });
    eng2->register_local_function(kDstFn, kTenant, fn_core2,
                                  [this](const mem::BufferDescriptor& d) {
                                    dst_got.push_back(d);
                                  });
    sched.run();  // connection setup
  }

  void send_one() {
    auto& pool = mem1.by_tenant(kTenant).pool();
    auto d = pool.allocate(mem::actor_function(kSrcFn));
    ASSERT_TRUE(d.has_value());
    MessageHeader h;
    h.request_id = next_id++;
    h.src_fn = kSrcFn.value();
    h.dst_fn = kDstFn.value();
    h.payload_len = 64;
    write_header(pool.access(*d, mem::actor_function(kSrcFn)), h);
    eng1->submit(kSrcFn, fn_core1,
                 pool.resize(*d, mem::actor_function(kSrcFn),
                             message_bytes(64)));
  }

  /// Errors delivered back to kSrcFn (releases them so leak checks hold).
  std::size_t drain_src_errors() {
    auto& pool = mem1.by_tenant(kTenant).pool();
    std::size_t n = 0;
    for (const auto& d : src_got) {
      const MessageHeader h =
          read_header(pool.access(d, mem::actor_function(kSrcFn)));
      if (h.is_error()) ++n;
      pool.release(d, mem::actor_function(kSrcFn));
    }
    src_got.clear();
    return n;
  }

  sim::Scheduler sched;
  rdma::RdmaNetwork net;
  mem::MemoryDomain mem1;
  mem::MemoryDomain mem2;
  rdma::Rnic rnic1;
  rdma::Rnic rnic2;
  dpu::Dpu dpu1;
  dpu::Dpu dpu2;
  sim::Core fn_core1;
  sim::Core fn_core2;
  std::unique_ptr<NetworkEngine> eng1;
  std::unique_ptr<NetworkEngine> eng2;
  std::vector<mem::BufferDescriptor> src_got;
  std::vector<mem::BufferDescriptor> dst_got;
  std::uint64_t next_id = 1;
};

TEST(Recovery, LossyLinkRetransmitsUntilAllDelivered) {
  Harness t;
  EngineConfig cfg;
  cfg.max_send_attempts = 12;  // loss is heavy; don't give up early
  t.build(cfg);
  t.net.fabric().set_fault_seed(0xC0FFEE);
  t.net.fabric().set_node_loss(kNode2, 0.3);  // both directions: data + ACKs

  for (int i = 0; i < 20; ++i) t.send_one();
  t.sched.run();

  // Exactly-once delivery to the application: every message arrives, none
  // twice (retransmit duplicates are suppressed at the receiver).
  EXPECT_EQ(t.dst_got.size(), 20u);
  EXPECT_GT(t.eng1->counters().retransmits, 0u);
  EXPECT_EQ(t.eng1->counters().send_failures, 0u);
  // Sender retired every buffer (acked + recycled).
  EXPECT_EQ(t.eng1->counters().recycled, 20u);
}

TEST(Recovery, LossyLinkReplayIsBitIdenticalPerSeed) {
  auto run = [](std::uint64_t seed) {
    Harness t;
    EngineConfig cfg;
    cfg.max_send_attempts = 12;
    t.build(cfg);
    t.net.fabric().set_fault_seed(seed);
    t.net.fabric().set_node_loss(kNode2, 0.3);
    for (int i = 0; i < 20; ++i) t.send_one();
    t.sched.run();
    return std::tuple(t.sched.now(), t.eng1->counters().retransmits,
                      t.eng1->counters().acks_rx, t.eng2->counters().dup_rx,
                      t.net.fabric().frames_dropped());
  };
  EXPECT_EQ(run(41), run(41));
  EXPECT_NE(run(41), run(42));
}

TEST(Recovery, DeadLinkExhaustsRetriesAndFailsExplicitly) {
  Harness t;
  t.build(EngineConfig{});  // 4 attempts
  t.net.fabric().set_node_down(kNode2, true);

  t.send_one();
  t.sched.run();

  EXPECT_EQ(t.dst_got.size(), 0u);
  EXPECT_EQ(t.eng1->counters().retransmits, 3u);  // attempts 2..4
  EXPECT_EQ(t.eng1->counters().send_failures, 1u);
  // The sender function got an explicit error completion, not silence.
  EXPECT_EQ(t.drain_src_errors(), 1u);
  // No leaked buffers: all of tenant 1's pool is back (minus the SRQ fill).
  auto& pool = t.mem1.by_tenant(kTenant).pool();
  EXPECT_EQ(pool.available(), pool.capacity() - 64u);
}

TEST(Recovery, LinkRecoveryDeliversSubsequentTraffic) {
  Harness t;
  t.build(EngineConfig{});
  t.net.fabric().set_node_down(kNode2, true);
  t.send_one();
  t.sched.run();
  EXPECT_EQ(t.drain_src_errors(), 1u);

  t.net.fabric().set_node_down(kNode2, false);
  t.send_one();
  t.sched.run();
  EXPECT_EQ(t.dst_got.size(), 1u);
}

TEST(Recovery, AdmissionCapShedsWithErrorCompletions) {
  Harness t;
  EngineConfig cfg;
  cfg.max_unacked = 4;
  t.build(cfg);
  t.net.fabric().set_node_down(kNode2, true);  // ACKs can never arrive

  // Fill the unacked window first (let the 4 reach transmit — retransmit
  // timers are 100 µs, so none resolve yet), then pile on 6 more.
  for (int i = 0; i < 4; ++i) t.send_one();
  t.sched.run_until(t.sched.now() + 50'000);
  for (int i = 0; i < 6; ++i) t.send_one();
  t.sched.run();

  // 4 admitted (and later failed by retry exhaustion), 6 shed on arrival.
  EXPECT_EQ(t.eng1->counters().requests_shed, 6u);
  EXPECT_EQ(t.eng1->counters().send_failures, 4u);
  EXPECT_EQ(t.drain_src_errors(), 10u);  // every message failed *explicitly*
}

TEST(Recovery, SrqDrainRecoversViaRnrAndReplenisher) {
  Harness t;
  EngineConfig cfg;
  // Slow the replenisher so the send lands mid-underrun and takes the RNR
  // path (a period dividing the 20 ms connection setup would tick exactly
  // at drain time and refill first).
  cfg.replenish_period = 3'000'000;
  t.build(cfg);
  const std::size_t drained = t.rnic2.drain_all_srqs();
  EXPECT_EQ(drained, 64u);  // default srq_fill

  t.send_one();
  // Recovery rides the background replenish tick — drive time forward.
  t.sched.run_until(t.sched.now() + 20'000'000);
  EXPECT_EQ(t.dst_got.size(), 1u);
  EXPECT_GT(t.rnic2.counters().rnr_events, 0u);
}

TEST(Recovery, QpFailureRebuildsAndDelivers) {
  Harness t;
  t.build(EngineConfig{});
  t.send_one();
  t.sched.run();
  ASSERT_EQ(t.dst_got.size(), 1u);

  // Fabric fault: every QP between the two nodes errors out.
  t.net.fail_node_qps(kNode2);
  t.send_one();
  t.sched.run();

  EXPECT_EQ(t.dst_got.size(), 2u);
  EXPECT_GT(t.eng1->connections().stats().reestablishments, 0u);
}

TEST(Recovery, FaultPlanGenerationIsDeterministic) {
  const std::vector<NodeId> nodes{kNode1, kNode2};
  const FaultPlan a = FaultPlan::generate(7, nodes);
  const FaultPlan b = FaultPlan::generate(7, nodes);
  const FaultPlan c = FaultPlan::generate(8, nodes);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_GT(a.events.size(), 0u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].node, b.events[i].node);
    EXPECT_EQ(a.events[i].duration, b.events[i].duration);
  }
  EXPECT_EQ(a.describe(), b.describe());
  EXPECT_NE(a.describe(), c.describe());
  // Episodes never overlap: each starts after the previous one ended.
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_GT(a.events[i].at, a.events[i - 1].at + a.events[i - 1].duration);
  }
}

}  // namespace
}  // namespace pd::fault
