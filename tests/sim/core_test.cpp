#include "sim/core.hpp"

#include <gtest/gtest.h>

namespace pd::sim {
namespace {

TEST(Core, ExecutesWorkAfterServiceTime) {
  Scheduler s;
  Core core(s, "cpu0");
  TimePoint done_at = -1;
  core.submit(1000, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 1000);
  EXPECT_EQ(core.busy_ns(), 1000);
}

TEST(Core, SerializesFifo) {
  Scheduler s;
  Core core(s, "cpu0");
  std::vector<int> order;
  TimePoint second_done = -1;
  core.submit(100, [&] { order.push_back(1); });
  core.submit(200, [&] {
    order.push_back(2);
    second_done = s.now();
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(second_done, 300);  // waits for the first job
}

TEST(Core, SpeedScalesServiceTime) {
  Scheduler s;
  Core dpu(s, "dpu0", 0.5);  // wimpy DPU core: half speed
  TimePoint done_at = -1;
  dpu.submit(1000, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 2000);
}

TEST(Core, IdleGapThenNewWork) {
  Scheduler s;
  Core core(s, "cpu0");
  core.submit(100);
  s.run();
  EXPECT_EQ(s.now(), 100);
  // Idle until t=500, then new work starts immediately.
  s.schedule_at(500, [&] { core.submit(50); });
  s.run();
  EXPECT_EQ(s.now(), 550);
  EXPECT_EQ(core.busy_ns(), 150);
}

TEST(Core, BacklogReflectsQueuedWork) {
  Scheduler s;
  Core core(s, "cpu0");
  core.submit(100);
  core.submit(200);
  EXPECT_EQ(core.backlog(), 300);
  s.run();
  EXPECT_EQ(core.backlog(), 0);
  EXPECT_TRUE(core.idle());
}

TEST(Core, ZeroWorkCompletesImmediately) {
  Scheduler s;
  Core core(s, "cpu0");
  bool done = false;
  core.submit(0, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), 0);
}

TEST(Core, MinimumOneNsForPositiveWork) {
  Scheduler s;
  Core fast(s, "cpu0", 1000.0);
  TimePoint done_at = -1;
  fast.submit(1, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 1);
}

TEST(Core, RejectsNegativeWorkAndBadSpeed) {
  Scheduler s;
  Core core(s, "cpu0");
  EXPECT_THROW(core.submit(-5), CheckFailure);
  EXPECT_THROW(Core(s, "bad", 0.0), CheckFailure);
}

TEST(CoreSet, LeastLoadedSelection) {
  Scheduler s;
  CoreSet set(s, "cpu", 3);
  set.core(0).submit(300);
  set.core(1).submit(100);
  set.core(2).submit(200);
  EXPECT_EQ(&set.least_loaded(), &set.core(1));
  EXPECT_EQ(set.total_busy_ns(), 0);  // nothing completed yet
  s.run();
  EXPECT_EQ(set.total_busy_ns(), 600);
}

TEST(UtilizationProbe, MeasuresBusyFraction) {
  Scheduler s;
  Core core(s, "cpu0");
  TimeSeries util(1'000'000);  // 1 ms buckets
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  // 400 µs of work in the first 1 ms window -> 40% utilization.
  core.submit(400'000);
  s.run_until(3'500'000);
  probe.stop();
  s.run();
  EXPECT_NEAR(util.bucket_value(0), 0.4, 0.01);
  EXPECT_NEAR(util.bucket_value(1), 0.0, 0.01);
}

TEST(UtilizationProbe, BusyPollCoreReportsFull) {
  Scheduler s;
  Core core(s, "dne0", 0.5);
  core.set_busy_poll(true);
  TimeSeries util(1'000'000);
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  s.run_until(2'500'000);
  probe.stop();
  s.run();
  EXPECT_NEAR(util.bucket_value(0), 1.0, 0.01);
  EXPECT_NEAR(util.bucket_value(1), 1.0, 0.01);
}

}  // namespace
}  // namespace pd::sim
