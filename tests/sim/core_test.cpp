#include "sim/core.hpp"

#include <gtest/gtest.h>

#include <functional>

namespace pd::sim {
namespace {

TEST(Core, ExecutesWorkAfterServiceTime) {
  Scheduler s;
  Core core(s, "cpu0");
  TimePoint done_at = -1;
  core.submit(1000, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 1000);
  EXPECT_EQ(core.busy_ns(), 1000);
}

TEST(Core, SerializesFifo) {
  Scheduler s;
  Core core(s, "cpu0");
  std::vector<int> order;
  TimePoint second_done = -1;
  core.submit(100, [&] { order.push_back(1); });
  core.submit(200, [&] {
    order.push_back(2);
    second_done = s.now();
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(second_done, 300);  // waits for the first job
}

TEST(Core, SpeedScalesServiceTime) {
  Scheduler s;
  Core dpu(s, "dpu0", 0.5);  // wimpy DPU core: half speed
  TimePoint done_at = -1;
  dpu.submit(1000, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 2000);
}

TEST(Core, IdleGapThenNewWork) {
  Scheduler s;
  Core core(s, "cpu0");
  core.submit(100);
  s.run();
  EXPECT_EQ(s.now(), 100);
  // Idle until t=500, then new work starts immediately.
  s.schedule_at(500, [&] { core.submit(50); });
  s.run();
  EXPECT_EQ(s.now(), 550);
  EXPECT_EQ(core.busy_ns(), 150);
}

TEST(Core, BacklogReflectsQueuedWork) {
  Scheduler s;
  Core core(s, "cpu0");
  core.submit(100);
  core.submit(200);
  EXPECT_EQ(core.backlog(), 300);
  s.run();
  EXPECT_EQ(core.backlog(), 0);
  EXPECT_TRUE(core.idle());
}

TEST(Core, ZeroWorkCompletesImmediately) {
  Scheduler s;
  Core core(s, "cpu0");
  bool done = false;
  core.submit(0, [&] { done = true; });
  s.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(s.now(), 0);
}

TEST(Core, MinimumOneNsForPositiveWork) {
  Scheduler s;
  Core fast(s, "cpu0", 1000.0);
  TimePoint done_at = -1;
  fast.submit(1, [&] { done_at = s.now(); });
  s.run();
  EXPECT_EQ(done_at, 1);
}

TEST(Core, RejectsNegativeWorkAndBadSpeed) {
  Scheduler s;
  Core core(s, "cpu0");
  EXPECT_THROW(core.submit(-5), CheckFailure);
  EXPECT_THROW(Core(s, "bad", 0.0), CheckFailure);
}

TEST(CoreSet, LeastLoadedSelection) {
  Scheduler s;
  CoreSet set(s, "cpu", 3);
  set.core(0).submit(300);
  set.core(1).submit(100);
  set.core(2).submit(200);
  EXPECT_EQ(&set.least_loaded(), &set.core(1));
  EXPECT_EQ(set.total_busy_ns(), 0);  // nothing completed yet
  s.run();
  EXPECT_EQ(set.total_busy_ns(), 600);
}

TEST(UtilizationProbe, MeasuresBusyFraction) {
  Scheduler s;
  Core core(s, "cpu0");
  TimeSeries util(1'000'000);  // 1 ms buckets
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  // 400 µs of work in the first 1 ms window -> 40% utilization.
  core.submit(400'000);
  s.run_until(3'500'000);
  probe.stop();
  s.run();
  EXPECT_NEAR(util.bucket_value(0), 0.4, 0.01);
  EXPECT_NEAR(util.bucket_value(1), 0.0, 0.01);
}

TEST(Core, FractionalSpeedCarriesRemainderWithoutDrift) {
  // Regression: speeds that don't divide the work evenly used to truncate
  // the sub-ns remainder on every job. A 0.54-speed core running 1e6 jobs
  // of 10 ns dropped ~5.2 ms of simulated time (18.0 ms observed vs the
  // closed-form 10e6/0.54 = 18.518 ms). The carry accumulator bounds the
  // total error to under 1 ns regardless of job count.
  Scheduler s;
  Core core(s, "dpu0", 0.54);
  constexpr int kJobs = 1'000'000;
  constexpr Duration kWork = 10;
  int done = 0;
  // Chain the submissions so the queue stays shallow.
  std::function<void()> next = [&] {
    ++done;
    if (done < kJobs) core.submit(kWork, [&] { next(); });
  };
  core.submit(kWork, [&] { next(); });
  s.run();
  EXPECT_EQ(done, kJobs);
  const double ideal = static_cast<double>(kJobs) * kWork / 0.54;
  EXPECT_NEAR(static_cast<double>(s.now()), ideal, 1.0);
  EXPECT_NEAR(static_cast<double>(core.busy_ns()), ideal, 1.0);
}

TEST(Core, FractionalCarryDoesNotBreakMinimumOneNs) {
  // The 1-ns clamp for positive work must still hold, and the clamp must
  // not bank phantom credit that would shorten later jobs.
  Scheduler s;
  Core fast(s, "cpu0", 1000.0);
  for (int i = 0; i < 10; ++i) fast.submit(1);
  s.run();
  EXPECT_EQ(s.now(), 10);  // 10 clamped jobs, 1 ns each — no credit leaks
}

TEST(UtilizationProbe, StopThenRestartDoesNotDoubleSample) {
  // Regression: stop() did not cancel the in-flight sample event, so a
  // stop()/start() cycle left two sampling chains running and every bucket
  // was credited twice (2.0 "utilization" on a fully busy core).
  Scheduler s;
  Core core(s, "dne0", 0.5);
  core.set_busy_poll(true);
  TimeSeries util(1'000'000);
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  s.run_until(500'000);
  probe.stop();
  probe.start();  // restart mid-window: exactly one chain must survive
  s.run_until(3'600'000);
  probe.stop();
  s.run();
  EXPECT_NEAR(util.bucket_value(1), 1.0, 0.01);
  EXPECT_NEAR(util.bucket_value(2), 1.0, 0.01);
}

TEST(UtilizationProbe, RestartDoesNotAttributeStoppedEraBusy) {
  // Regression for the last_util() gauge (exported as core_util{node,core}):
  // start() must re-baseline last_busy_ against the core's current
  // busy_ns(). Without that, work completed while the probe was stopped
  // leaks into the first window after a restart and the gauge reports a
  // busy core when the window was actually idle.
  Scheduler s;
  Core core(s, "cpu0");
  TimeSeries util(1'000'000);
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  core.submit(400'000);
  s.run_until(1'500'000);  // first window sampled: 40% busy
  EXPECT_NEAR(probe.last_util(), 0.4, 0.01);
  probe.stop();

  core.submit(900'000);  // completes while the probe is stopped
  s.run_until(3'500'000);
  probe.start();
  s.run_until(4'600'000);  // one full, completely idle window
  probe.stop();
  s.run();
  // The 900 µs of stopped-era busy time must not be double-counted into
  // the post-restart window.
  EXPECT_DOUBLE_EQ(probe.last_util(), 0.0);
}

TEST(UtilizationProbe, StopCancelsPendingSample) {
  // After stop(), no further samples may fire even if the sim keeps
  // running past the next sampling tick.
  Scheduler s;
  Core core(s, "cpu0");
  core.set_busy_poll(true);  // would report 1.0 if sampled
  TimeSeries util(1'000'000);
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  s.run_until(1'500'000);
  probe.stop();
  s.schedule_at(5'000'000, [] {});  // keep the sim alive past ticks 2..4
  s.run();
  EXPECT_NEAR(util.bucket_value(2), 0.0, 0.01);
  EXPECT_NEAR(util.bucket_value(3), 0.0, 0.01);
}

TEST(UtilizationProbe, BusyPollCoreReportsFull) {
  Scheduler s;
  Core core(s, "dne0", 0.5);
  core.set_busy_poll(true);
  TimeSeries util(1'000'000);
  UtilizationProbe probe(s, core, 1'000'000, util);
  probe.start();
  s.run_until(2'500'000);
  probe.stop();
  s.run();
  EXPECT_NEAR(util.bucket_value(0), 1.0, 0.01);
  EXPECT_NEAR(util.bucket_value(1), 1.0, 0.01);
}

}  // namespace
}  // namespace pd::sim
