#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pd::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), CheckFailure);
}

TEST(Rng, NormalMomentsConverge) {
  Rng r(17);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal(10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ChanceProbabilityConverges) {
  Rng r(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependentButDeterministic) {
  Rng parent1(23), parent2(23);
  Rng childa = parent1.fork();
  Rng childb = parent2.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(childa.next_u64(), childb.next_u64());
  // Child differs from a fresh parent stream.
  Rng parent3(23);
  EXPECT_NE(childa.next_u64(), parent3.next_u64());
}

}  // namespace
}  // namespace pd::sim
