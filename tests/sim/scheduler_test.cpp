#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

namespace pd::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, FifoTieBreakAtEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  TimePoint fired = -1;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 75);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  EXPECT_EQ(s.run(), 100u);
  EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelOneOfMany) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(1); });
  EventId id = s.schedule_at(20, [&] { order.push_back(2); });
  s.schedule_at(30, [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  std::vector<TimePoint> fired;
  for (TimePoint t : {10, 20, 30, 40}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(25), 2u);
  EXPECT_EQ(s.now(), 25);
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(s.run(), 2u);
}

TEST(Scheduler, RunUntilInclusiveOfDeadline) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(25, [&] { fired = true; });
  s.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunStepsLimitsExecution) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  s.run();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RejectsSchedulingIntoThePast) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(50, [] {}), CheckFailure);
  EXPECT_THROW(s.schedule_after(-1, [] {}), CheckFailure);
}

TEST(Scheduler, DeterministicEventCount) {
  // Two identical runs must process identical event counts in identical
  // order — the foundation of reproducible benchmarks.
  auto run_once = [] {
    Scheduler s;
    std::vector<TimePoint> trace;
    std::function<void(int)> spawn = [&](int n) {
      trace.push_back(s.now());
      if (n > 0) {
        s.schedule_after(3, [&spawn, n] { spawn(n - 1); });
        s.schedule_after(7, [&spawn, n] { spawn(n / 2); });
      }
    };
    s.schedule_at(0, [&] { spawn(6); });
    s.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, PendingReflectsCancellations) {
  Scheduler s;
  EventId a = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, StaleIdAfterSlotReuseDoesNotCancelNewEvent) {
  // The slab recycles slots: after event A fires (or is cancelled), a new
  // event B may land in A's slot. A's stale EventId must not cancel B —
  // the generation counter has to disambiguate.
  Scheduler s;
  EventId a = s.schedule_at(10, [] {});
  ASSERT_TRUE(s.cancel(a));  // slot freed, back on the free list
  bool b_fired = false;
  EventId b = s.schedule_at(20, [&] { b_fired = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(s.cancel(a));  // stale handle: same slot, older generation
  s.run();
  EXPECT_TRUE(b_fired);
}

TEST(Scheduler, StaleIdOfFiredEventIsRejected) {
  Scheduler s;
  EventId a = s.schedule_at(5, [] {});
  s.run();
  bool b_fired = false;
  s.schedule_at(10, [&] { b_fired = true; });  // likely reuses a's slot
  EXPECT_FALSE(s.cancel(a));
  s.run();
  EXPECT_TRUE(b_fired);
}

TEST(Scheduler, LargeCallableUsesHeapFallbackCorrectly) {
  // Callables above EventFn's inline buffer must still round-trip through
  // the slab (heap-backed), surviving slab growth and node relocation.
  Scheduler s;
  std::array<std::uint64_t, 64> payload{};  // 512 B, well past kInlineBytes
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 7 + 1;
  std::uint64_t sum = 0;
  s.schedule_at(10, [payload, &sum] {
    for (auto v : payload) sum += v;
  });
  // Force slab growth between scheduling and firing.
  for (int i = 0; i < 1000; ++i) s.schedule_at(5, [] {});
  s.run();
  std::uint64_t expect = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) expect += i * 7 + 1;
  EXPECT_EQ(sum, expect);
}

TEST(Scheduler, StressInterleavedScheduleCancelIsDeterministic) {
  // Differential check: heavy interleaving of schedule/cancel/fire with
  // slot churn must produce the same trace on every run and never lose or
  // duplicate an event.
  auto run_once = [] {
    Scheduler s;
    std::vector<std::pair<TimePoint, int>> trace;
    std::vector<EventId> live;
    std::uint64_t rng = 0x9e3779b97f4a7c15ULL;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int i = 0; i < 5000; ++i) {
      const auto r = next();
      if (r % 3 != 0 || live.empty()) {
        const auto dt = static_cast<Duration>(r % 97);
        live.push_back(s.schedule_after(
            dt, [&trace, &s, i] { trace.emplace_back(s.now(), i); }));
      } else {
        s.cancel(live[next() % live.size()]);
      }
      if (r % 11 == 0) s.run_steps(2);
    }
    s.run();
    return trace;
  };
  const auto a = run_once();
  EXPECT_EQ(a, run_once());
  EXPECT_FALSE(a.empty());
}

TEST(Scheduler, CancelFromInsideEventCallback) {
  // Cancelling a pending event while another event is firing exercises
  // heap removal during pop — the hole left by the firing root and the
  // cancelled node must not collide.
  Scheduler s;
  bool fired = false;
  EventId victim = s.schedule_at(10, [&] { fired = true; });
  s.schedule_at(10, [&] { s.cancel(victim); });
  // FIFO order at t=10 would fire `victim` second — but it was scheduled
  // first, so it fires before the canceller. Use a later victim instead.
  s.run();
  EXPECT_TRUE(fired);  // scheduled first, fires first
  bool fired2 = false;
  EventId victim2 = s.schedule_at(30, [&] { fired2 = true; });
  s.schedule_at(20, [&] { s.cancel(victim2); });
  s.run();
  EXPECT_FALSE(fired2);
}

}  // namespace
}  // namespace pd::sim
