#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pd::sim {
namespace {

TEST(Scheduler, StartsAtZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Scheduler, FifoTieBreakAtEqualTimestamps) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  TimePoint fired = -1;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 75);
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) s.schedule_after(1, recurse);
  };
  s.schedule_at(0, recurse);
  EXPECT_EQ(s.run(), 100u);
  EXPECT_EQ(s.now(), 99);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  EventId id = s.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));  // second cancel is a no-op
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelOneOfMany) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(10, [&] { order.push_back(1); });
  EventId id = s.schedule_at(20, [&] { order.push_back(2); });
  s.schedule_at(30, [&] { order.push_back(3); });
  s.cancel(id);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler s;
  std::vector<TimePoint> fired;
  for (TimePoint t : {10, 20, 30, 40}) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  EXPECT_EQ(s.run_until(25), 2u);
  EXPECT_EQ(s.now(), 25);
  EXPECT_EQ(fired, (std::vector<TimePoint>{10, 20}));
  EXPECT_EQ(s.run(), 2u);
}

TEST(Scheduler, RunUntilInclusiveOfDeadline) {
  Scheduler s;
  bool fired = false;
  s.schedule_at(25, [&] { fired = true; });
  s.run_until(25);
  EXPECT_TRUE(fired);
}

TEST(Scheduler, RunStepsLimitsExecution) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run_steps(4), 4u);
  EXPECT_EQ(count, 4);
  s.run();
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, RejectsSchedulingIntoThePast) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(50, [] {}), CheckFailure);
  EXPECT_THROW(s.schedule_after(-1, [] {}), CheckFailure);
}

TEST(Scheduler, DeterministicEventCount) {
  // Two identical runs must process identical event counts in identical
  // order — the foundation of reproducible benchmarks.
  auto run_once = [] {
    Scheduler s;
    std::vector<TimePoint> trace;
    std::function<void(int)> spawn = [&](int n) {
      trace.push_back(s.now());
      if (n > 0) {
        s.schedule_after(3, [&spawn, n] { spawn(n - 1); });
        s.schedule_after(7, [&spawn, n] { spawn(n / 2); });
      }
    };
    s.schedule_at(0, [&] { spawn(6); });
    s.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Scheduler, PendingReflectsCancellations) {
  Scheduler s;
  EventId a = s.schedule_at(10, [] {});
  s.schedule_at(20, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
}

}  // namespace
}  // namespace pd::sim
