#include "sim/stats.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "sim/random.hpp"

namespace pd::sim {
namespace {

TEST(LatencyHistogram, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(LatencyHistogram, SingleValue) {
  LatencyHistogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.mean_ns(), 1000.0);
  EXPECT_EQ(h.quantile(0.5), 1000);
  EXPECT_EQ(h.quantile(1.0), 1000);
}

TEST(LatencyHistogram, SmallValuesExact) {
  LatencyHistogram h;
  for (int i = 0; i < 64; ++i) h.record(i);
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 63);
}

TEST(LatencyHistogram, QuantileErrorBounded) {
  // Relative error of any quantile must stay below the bucket granularity
  // (1/64 per octave ≈ 1.6%).
  LatencyHistogram h;
  Rng r(5);
  std::vector<Duration> values;
  for (int i = 0; i < 100000; ++i) {
    auto v = static_cast<Duration>(r.exponential(50000.0)) + 1;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.1, 0.5, 0.9, 0.99, 0.999}) {
    const auto exact = values[static_cast<size_t>(q * (values.size() - 1))];
    const auto approx = h.quantile(q);
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                static_cast<double>(exact) * 0.04 + 2)
        << "q=" << q;
  }
}

TEST(LatencyHistogram, MeanIsExact) {
  LatencyHistogram h;
  for (Duration v : {10, 20, 30, 40}) h.record(v);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 25.0);
}

TEST(LatencyHistogram, MergeCombinesCounts) {
  LatencyHistogram a, b;
  a.record(100);
  a.record(200);
  b.record(300);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 300);
  EXPECT_DOUBLE_EQ(a.mean_ns(), 200.0);
}

TEST(LatencyHistogram, ResetClearsState) {
  LatencyHistogram h;
  h.record(12345);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(LatencyHistogram, QuantileClampsOutOfRangeArguments) {
  LatencyHistogram h;
  for (Duration v : {100, 200, 300}) h.record(v);
  // Out-of-range (and NaN) q clamp to the nearest defined quantile instead
  // of aborting a half-written report.
  EXPECT_EQ(h.quantile(-0.5), h.quantile(0.0));
  EXPECT_EQ(h.quantile(1.5), h.quantile(1.0));
  EXPECT_EQ(h.quantile(std::numeric_limits<double>::quiet_NaN()),
            h.quantile(0.0));
}

TEST(LatencyHistogram, QuantileOfEmptyIsDefined) {
  const LatencyHistogram h;
  for (double q : {-1.0, 0.0, 0.5, 1.0, 2.0}) {
    EXPECT_EQ(h.quantile(q), 0) << "q=" << q;
  }
}

TEST(LatencyHistogram, TopQuantileCoversMax) {
  // Regression: quantile(1.0) must be an upper bound of every recorded
  // value, across bucket boundaries and after merges.
  LatencyHistogram h;
  Rng r(11);
  Duration max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<Duration>(r.exponential(80000.0)) + 1;
    max_seen = std::max(max_seen, v);
    h.record(v);
  }
  EXPECT_GE(h.quantile(1.0), max_seen);
  EXPECT_GE(h.quantile(1.0), h.max());
}

TEST(LatencyHistogram, NegativeClampedToZero) {
  LatencyHistogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(LatencyHistogram, LargeValues) {
  LatencyHistogram h;
  const Duration big = 3'600'000'000'000;  // one hour in ns
  h.record(big);
  EXPECT_EQ(h.max(), big);
  // Bucketed quantile must be within 1.6% of the true value.
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), static_cast<double>(big),
              static_cast<double>(big) * 0.02);
}

TEST(TimeSeries, AccumulatesIntoBuckets) {
  TimeSeries ts(1'000'000'000);  // 1 s buckets
  ts.increment(100);
  ts.increment(999'999'999);
  ts.increment(1'000'000'000);  // next bucket
  EXPECT_EQ(ts.bucket_value(0), 2.0);
  EXPECT_EQ(ts.bucket_value(1), 1.0);
  EXPECT_EQ(ts.bucket_value(2), 0.0);  // out-of-range reads as zero
}

TEST(TimeSeries, RatePerSecondNormalizes) {
  TimeSeries ts(500'000'000);  // 0.5 s buckets
  for (int i = 0; i < 50; ++i) ts.increment(100 + i);
  EXPECT_DOUBLE_EQ(ts.rate_per_sec(0), 100.0);  // 50 events / 0.5 s
}

TEST(TimeSeries, GrowsOnDemand) {
  TimeSeries ts(1000);
  ts.add(50'000, 2.5);
  EXPECT_EQ(ts.num_buckets(), 51u);
  EXPECT_EQ(ts.bucket_value(50), 2.5);
}

TEST(TimeSeries, RejectsNonPositiveWidth) {
  EXPECT_THROW(TimeSeries(0), CheckFailure);
}

}  // namespace
}  // namespace pd::sim
