#include "workload/driver.hpp"
#include "workload/http_client.hpp"

#include <gtest/gtest.h>

#include "ingress/palladium_ingress.hpp"
#include "runtime/function.hpp"

namespace pd::workload {
namespace {

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kEcho{1};

std::unique_ptr<runtime::Cluster> echo_cluster(sim::Scheduler& sched) {
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.pool_buffers = 512;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kEcho, "echo", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{1, "echo", kTenant, 64,
                                    {{kEcho, 5'000, 64}}});
  return cluster;
}

TEST(ChainDriver, ClosedLoopKeepsExactlyNClientsOutstanding) {
  sim::Scheduler sched;
  auto cluster = echo_cluster(sched);
  ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
  cluster->finish_setup();
  driver.start(4);
  sched.run_until(sched.now() + 500'000'000);
  driver.stop();
  sched.run();
  EXPECT_GT(driver.completed(), 100u);
  // Closed loop: completions == issues - outstanding; all four finish.
  EXPECT_EQ(driver.latencies().count(), driver.completed());
}

TEST(ChainDriver, RpsWindowQuery) {
  sim::Scheduler sched;
  auto cluster = echo_cluster(sched);
  ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
  cluster->finish_setup();
  driver.start(2);
  sched.run_until(sched.now() + 3'000'000'000);
  driver.stop();
  sched.run();
  const double rps = driver.rps(1'000'000'000, 3'000'000'000);
  EXPECT_GT(rps, 0);
  EXPECT_NEAR(rps,
              static_cast<double>(driver.completed()) / 3.0, rps * 0.6);
}

TEST(BurstyLoad, OpenLoopHonorsSchedule) {
  sim::Scheduler sched;
  auto cluster = echo_cluster(sched);
  BurstyLoad::Schedule schedule;
  schedule.start = 4'000'000'000;  // after connection setup (~3 s)
  schedule.stop = 6'000'000'000;
  schedule.rate_rps = 5'000;
  BurstyLoad load(*cluster, FunctionId{100}, kNode1, 1, schedule, 42);
  cluster->finish_setup();
  load.start();
  sched.run_until(7'000'000'000);

  // Nothing before start, nothing after stop.
  EXPECT_EQ(load.completions().bucket_value(3), 0.0);
  EXPECT_EQ(load.completions().bucket_value(6), 0.0);
  // ~5K/s during the active window.
  EXPECT_NEAR(load.completions().bucket_value(4), 5'000, 600);
  EXPECT_NEAR(load.completions().bucket_value(5), 5'000, 600);
}

TEST(BurstyLoad, SurgeModulatesRate) {
  sim::Scheduler sched;
  auto cluster = echo_cluster(sched);
  BurstyLoad::Schedule schedule;
  schedule.start = 4'000'000'000;  // after connection setup
  schedule.stop = 8'000'000'000;
  schedule.rate_rps = 2'000;
  schedule.surge_factor = 4.0;
  schedule.surge_period = 2'000'000'000;
  schedule.surge_on = 1'000'000'000;  // on for the first half of each period
  BurstyLoad load(*cluster, FunctionId{100}, kNode1, 1, schedule, 43);
  cluster->finish_setup();
  load.start();
  sched.run_until(9'000'000'000);
  // Surge seconds (4 and 6) should see ~4x the base-rate seconds (5 and 7).
  const double surge = load.completions().bucket_value(4) +
                       load.completions().bucket_value(6);
  const double base = load.completions().bucket_value(5) +
                      load.completions().bucket_value(7);
  EXPECT_GT(surge, 2.5 * base);
}

TEST(HttpLoadGen, CountsErrorsSeparately) {
  sim::Scheduler sched;
  auto cluster = echo_cluster(sched);
  ingress::PalladiumIngress ing(*cluster, {});
  ing.expose_chain("/echo", 1);
  ing.finish_setup();
  cluster->finish_setup();

  HttpLoadGen::Config cfg;
  cfg.target = "/missing";  // 404s
  HttpLoadGen wrk(sched, ing, cfg);
  wrk.add_clients(2);
  sched.run_until(sched.now() + 300'000'000);
  wrk.stop();
  sched.run();
  EXPECT_GT(wrk.errors(), 0u);
  EXPECT_EQ(wrk.completed(), 0u);
}

}  // namespace
}  // namespace pd::workload
