// Determinism suite for the sharded parallel simulation (ISSUE 4).
//
// The contract under test: a Cluster built on a ParallelSim produces
// BIT-IDENTICAL simulated results — event counts, request latencies,
// merged metrics JSON, trace span exports, chaos injections — for every
// worker-thread count. Threads may only change wall-clock speed, never
// behavior. Each scenario runs at --threads 1/2/4 and byte-compares the
// artifacts, including a seeded chaos replay (the hardest case: faults
// mutate fabric/RNIC/engine state on several shards at once).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "fabric/fabric.hpp"
#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t injected = 0;
  sim::Duration p50 = 0;
  sim::Duration p99 = 0;
  std::string metrics_json;
  std::string trace_json;
};

/// One Online Boutique sweep on a 3-shard parallel cluster (edge + two
/// workers) driven by `os_threads` OS threads. `chaos_seed` != 0 arms a
/// fault plan over both workers.
RunResult run_boutique(std::size_t os_threads, std::uint64_t chaos_seed,
                       bool tracing) {
  sim::ParallelSim psim(/*shards=*/3, os_threads);
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(psim, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();
  if (tracing) cluster.enable_shard_tracing(1);

  // finish_setup ran the QP handshakes to quiescence, so "now" is already
  // tens of ms in; place the fault window (and the traffic stop) relative
  // to it. The post-setup now is itself deterministic across thread
  // counts, so the generated plan is too.
  sim::TimePoint stop = psim.shard(0).now() + 40'000'000;
  std::unique_ptr<fault::ChaosController> chaos;
  if (chaos_seed != 0) {
    fault::FaultPlanConfig fcfg;
    fcfg.start = psim.shard(0).now() + 2'000'000;
    fcfg.horizon = fcfg.start + 30'000'000;
    fcfg.episodes = 8;
    chaos = std::make_unique<fault::ChaosController>(
        cluster,
        fault::FaultPlan::generate(chaos_seed, {kNode1, kNode2}, fcfg));
    chaos->arm();
    stop = fcfg.horizon + 10'000'000;
  }

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(64, 'x');
  wcfg.client_cores = 4;
  workload::HttpLoadGen wrk(psim.shard(0), ing, wcfg);
  wrk.add_clients(4);

  psim.run_until(stop);
  wrk.stop();
  psim.run();

  obs::Hub merged;
  cluster.merge_observability(merged);

  RunResult r;
  r.events = psim.events_processed();
  r.requests = wrk.latencies().count();
  r.injected = chaos ? chaos->injected() : 0;
  r.p50 = wrk.latencies().quantile(0.5);
  r.p99 = wrk.latencies().quantile(0.99);
  r.metrics_json = merged.registry.to_json();
  r.trace_json = merged.tracer.to_chrome_json();
  return r;
}

TEST(Pdes, BoutiqueBitIdenticalAcrossThreadCounts) {
  const RunResult ref = run_boutique(1, /*chaos_seed=*/0, /*tracing=*/true);
  ASSERT_GT(ref.events, 0u);
  ASSERT_GT(ref.requests, 0u);
  ASSERT_FALSE(ref.metrics_json.empty());
  // Tracing must actually have produced spans to make the byte-compare
  // meaningful.
  ASSERT_NE(ref.trace_json.find("\"request\""), std::string::npos);

  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE("os_threads=" + std::to_string(threads));
    const RunResult got = run_boutique(threads, 0, true);
    EXPECT_EQ(got.events, ref.events);
    EXPECT_EQ(got.requests, ref.requests);
    EXPECT_EQ(got.p50, ref.p50);
    EXPECT_EQ(got.p99, ref.p99);
    EXPECT_EQ(got.metrics_json, ref.metrics_json);
    EXPECT_EQ(got.trace_json, ref.trace_json);
  }
}

TEST(Pdes, ChaosReplayBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    SCOPED_TRACE("chaos_seed=" + std::to_string(seed));
    const RunResult ref = run_boutique(1, seed, /*tracing=*/false);
    ASSERT_GT(ref.events, 0u);
    ASSERT_GT(ref.requests, 0u);
    ASSERT_GT(ref.injected, 0u);

    for (std::size_t threads : {2u, 4u}) {
      SCOPED_TRACE("os_threads=" + std::to_string(threads));
      const RunResult got = run_boutique(threads, seed, false);
      EXPECT_EQ(got.events, ref.events);
      EXPECT_EQ(got.requests, ref.requests);
      EXPECT_EQ(got.injected, ref.injected);
      EXPECT_EQ(got.p50, ref.p50);
      EXPECT_EQ(got.p99, ref.p99);
      EXPECT_EQ(got.metrics_json, ref.metrics_json);
    }
  }
}

// ISSUE 9: the per-pair lookahead contract is fail-loud. A cross-shard
// post whose arrival time undercuts the pair's matrix entry must throw,
// not silently corrupt causality — this is what makes the communication-
// graph matrix tightening safe to rely on.
TEST(Pdes, CrossShardPostBelowPairLookaheadThrows) {
  constexpr sim::Duration kD = 1'000;
  const auto make = [&] {
    auto psim = std::make_unique<sim::ParallelSim>(/*shards=*/2,
                                                   /*os_threads=*/1);
    psim->set_lookahead_matrix({{0, kD}, {kD, 0}});
    return psim;
  };

  {
    auto psim = make();
    psim->shard(0).schedule_at(100, [&psim] {
      // now=100, D[0][1]=1000: arrival at 500 violates the pair bound.
      psim->post(1, 500, [] {});
    });
    EXPECT_THROW(psim->run(), pd::CheckFailure);
  }
  {
    auto psim = make();
    bool delivered = false;
    psim->shard(0).schedule_at(100, [&] {
      psim->post(1, 100 + kD, [&delivered] { delivered = true; });
    });
    EXPECT_NO_THROW(psim->run());
    EXPECT_TRUE(delivered);
  }
}

// ISSUE 9 scale scenario: a 32-worker / 4-leaf / 16-cell boutique on the
// leaf-sharded multi-switch fabric. One shard per leaf switch, scoped
// tenants, per-pair lookahead from the communication graph.
struct ScaleResult {
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  sim::Duration p50 = 0;
  sim::Duration p99 = 0;
  std::uint64_t epochs = 0;
  std::uint64_t skip_ahead = 0;
  std::uint64_t mailbox_msgs = 0;
  std::string metrics_json;
};

ScaleResult run_scale_boutique(unsigned os_threads, bool legacy_horizon) {
  constexpr int kNodes = 32;
  constexpr std::size_t kCells = 16;
  constexpr std::size_t kPerSwitch = 8;
  sim::ParallelSim psim(/*shards=*/1 + kNodes / kPerSwitch, os_threads);
  if (legacy_horizon) psim.set_horizon_policy(sim::HorizonPolicy::kLegacy);
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.topology.nodes_per_switch = kPerSwitch;
  cfg.shard_mapping = runtime::ShardMapping::kLeafPerShard;
  runtime::Cluster cluster(psim, cfg);
  std::vector<NodeId> nodes;
  for (int i = 0; i < kNodes; ++i) {
    const NodeId id{static_cast<std::uint32_t>(1 + i)};
    cluster.add_worker(id);
    nodes.push_back(id);
  }
  const auto cells =
      runtime::OnlineBoutique::deploy_cells(cluster, nodes, kCells);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  const auto route = [](std::uint32_t cell) {
    return cell == 0 ? std::string("/run") : "/run#" + std::to_string(cell);
  };
  for (const auto& cell : cells) {
    ing.expose_chain(route(cell.index), cell.home_query);
  }
  ing.finish_setup();
  cluster.finish_setup();
  if (legacy_horizon) {
    // The PR 4 protocol baseline: uniform flat-fabric lookahead everywhere
    // (the policy selected above restores the old horizon arithmetic).
    psim.set_lookahead(fabric::cross_node_lookahead());
  }

  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  for (const auto& cell : cells) {
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = route(cell.index);
    wcfg.body = std::string(64, 'x');
    wcfg.client_cores = 2;
    auto gen =
        std::make_unique<workload::HttpLoadGen>(psim.shard(0), ing, wcfg);
    gen->add_clients(2);
    gens.push_back(std::move(gen));
  }

  const std::uint64_t epochs0 = psim.epochs();
  psim.run_until(psim.shard(0).now() + 20'000'000);
  for (auto& g : gens) g->stop();
  psim.run();

  obs::Hub merged;
  cluster.merge_observability(merged);

  ScaleResult r;
  r.events = psim.events_processed();
  r.epochs = psim.epochs() - epochs0;
  r.skip_ahead = psim.skip_ahead_epochs();
  r.mailbox_msgs = psim.mailbox_msgs();
  sim::LatencyHistogram lat;
  for (const auto& g : gens) {
    r.requests += g->latencies().count();
    lat.merge(g->latencies());
  }
  r.p50 = lat.quantile(0.5);
  r.p99 = lat.quantile(0.99);
  r.metrics_json = merged.registry.to_json();
  return r;
}

TEST(Pdes, LeafShardedScaleBitIdenticalAcrossThreadCounts) {
  const ScaleResult ref = run_scale_boutique(1, /*legacy_horizon=*/false);
  ASSERT_GT(ref.events, 0u);
  ASSERT_GT(ref.requests, 0u);
  ASSERT_GT(ref.epochs, 0u);
  ASSERT_GT(ref.mailbox_msgs, 0u);

  for (unsigned threads : {2u, 4u}) {
    SCOPED_TRACE("os_threads=" + std::to_string(threads));
    const ScaleResult got = run_scale_boutique(threads, false);
    EXPECT_EQ(got.events, ref.events);
    EXPECT_EQ(got.requests, ref.requests);
    EXPECT_EQ(got.p50, ref.p50);
    EXPECT_EQ(got.p99, ref.p99);
    EXPECT_EQ(got.epochs, ref.epochs);
    EXPECT_EQ(got.skip_ahead, ref.skip_ahead);
    EXPECT_EQ(got.mailbox_msgs, ref.mailbox_msgs);
    EXPECT_EQ(got.metrics_json, ref.metrics_json);
  }
}

// Horizon-audit regression (ISSUE 9 satellite): the legacy PR 4 formula
// stays available as HorizonPolicy::kLegacy and both policies simulate the
// same model — identical request latencies to the nanosecond. Only epoch
// grouping differs, and the adaptive protocol must keep its >=5x epoch
// reduction on the leaf-sharded scale scenario. Latency quantiles (not raw
// event counts) are the cross-policy equality check: events that share a
// timestamp can drain in different epochs under different policies and
// pick up different tie-break sequence numbers, which at dense load can
// shuffle a handful of same-time deliveries without moving any latency.
TEST(Pdes, AdaptiveHorizonCutsEpochsVsLegacy) {
  const ScaleResult adaptive = run_scale_boutique(1, /*legacy_horizon=*/false);
  const ScaleResult legacy = run_scale_boutique(1, /*legacy_horizon=*/true);
  ASSERT_GT(adaptive.requests, 0u);

  EXPECT_EQ(adaptive.requests, legacy.requests);
  EXPECT_EQ(adaptive.p50, legacy.p50);
  EXPECT_EQ(adaptive.p99, legacy.p99);
  // The epoch-count pin: the legacy protocol crawls in uniform-L steps and
  // must stay the (expensive) upper baseline; adaptive batches cross-leaf
  // horizons and skip-ahead epochs must actually occur.
  EXPECT_GT(adaptive.skip_ahead, 0u);
  EXPECT_EQ(legacy.skip_ahead, 0u);
  EXPECT_GE(legacy.epochs, 5 * adaptive.epochs);
}

// Satellite 3: metric snapshots depend only on the instrument key set,
// never on the order instruments were registered or merged.
TEST(MetricsOrdering, ExportIndependentOfRegistrationOrder) {
  obs::Registry a;
  a.counter("zeta").inc(3);
  a.histogram("lat", "node=1").record(5);
  a.counter("alpha", "k=v").inc(1);
  a.gauge("depth").set(2.5);

  obs::Registry b;
  b.gauge("depth").set(2.5);
  b.counter("alpha", "k=v").inc(1);
  b.histogram("lat", "node=1").record(5);
  b.counter("zeta").inc(3);

  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(MetricsOrdering, MergeOrderIndependent) {
  obs::Registry s1;
  s1.counter("msgs", "node=1").inc(7);
  s1.histogram("lat").record(100);
  obs::Registry s2;
  s2.counter("msgs", "node=1").inc(5);
  s2.counter("msgs", "node=2").inc(2);
  s2.histogram("lat").record(300);
  obs::Registry s3;
  s3.gauge("occ").add(1.5);
  s3.histogram("lat").record(200);

  obs::Registry m1;
  m1.merge_from(s1);
  m1.merge_from(s2);
  m1.merge_from(s3);
  obs::Registry m2;
  m2.merge_from(s3);
  m2.merge_from(s1);
  m2.merge_from(s2);

  EXPECT_EQ(m1.to_json(), m2.to_json());
  EXPECT_EQ(m1.to_csv(), m2.to_csv());
}

}  // namespace
