// Determinism suite for the sharded parallel simulation (ISSUE 4).
//
// The contract under test: a Cluster built on a ParallelSim produces
// BIT-IDENTICAL simulated results — event counts, request latencies,
// merged metrics JSON, trace span exports, chaos injections — for every
// worker-thread count. Threads may only change wall-clock speed, never
// behavior. Each scenario runs at --threads 1/2/4 and byte-compares the
// artifacts, including a seeded chaos replay (the hardest case: faults
// mutate fabric/RNIC/engine state on several shards at once).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/cluster.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace {

using namespace pd;

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

struct RunResult {
  std::uint64_t events = 0;
  std::uint64_t requests = 0;
  std::uint64_t injected = 0;
  sim::Duration p50 = 0;
  sim::Duration p99 = 0;
  std::string metrics_json;
  std::string trace_json;
};

/// One Online Boutique sweep on a 3-shard parallel cluster (edge + two
/// workers) driven by `os_threads` OS threads. `chaos_seed` != 0 arms a
/// fault plan over both workers.
RunResult run_boutique(std::size_t os_threads, std::uint64_t chaos_seed,
                       bool tracing) {
  sim::ParallelSim psim(/*shards=*/3, os_threads);
  runtime::ClusterConfig cfg;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 1024;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  runtime::Cluster cluster(psim, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 2;
  icfg.request_deadline = 0;
  ingress::PalladiumIngress ing(cluster, icfg);
  ing.expose_chain("/run", runtime::OnlineBoutique::kHomeQuery);
  ing.finish_setup();
  cluster.finish_setup();
  if (tracing) cluster.enable_shard_tracing(1);

  // finish_setup ran the QP handshakes to quiescence, so "now" is already
  // tens of ms in; place the fault window (and the traffic stop) relative
  // to it. The post-setup now is itself deterministic across thread
  // counts, so the generated plan is too.
  sim::TimePoint stop = psim.shard(0).now() + 40'000'000;
  std::unique_ptr<fault::ChaosController> chaos;
  if (chaos_seed != 0) {
    fault::FaultPlanConfig fcfg;
    fcfg.start = psim.shard(0).now() + 2'000'000;
    fcfg.horizon = fcfg.start + 30'000'000;
    fcfg.episodes = 8;
    chaos = std::make_unique<fault::ChaosController>(
        cluster,
        fault::FaultPlan::generate(chaos_seed, {kNode1, kNode2}, fcfg));
    chaos->arm();
    stop = fcfg.horizon + 10'000'000;
  }

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/run";
  wcfg.body = std::string(64, 'x');
  wcfg.client_cores = 4;
  workload::HttpLoadGen wrk(psim.shard(0), ing, wcfg);
  wrk.add_clients(4);

  psim.run_until(stop);
  wrk.stop();
  psim.run();

  obs::Hub merged;
  cluster.merge_observability(merged);

  RunResult r;
  r.events = psim.events_processed();
  r.requests = wrk.latencies().count();
  r.injected = chaos ? chaos->injected() : 0;
  r.p50 = wrk.latencies().quantile(0.5);
  r.p99 = wrk.latencies().quantile(0.99);
  r.metrics_json = merged.registry.to_json();
  r.trace_json = merged.tracer.to_chrome_json();
  return r;
}

TEST(Pdes, BoutiqueBitIdenticalAcrossThreadCounts) {
  const RunResult ref = run_boutique(1, /*chaos_seed=*/0, /*tracing=*/true);
  ASSERT_GT(ref.events, 0u);
  ASSERT_GT(ref.requests, 0u);
  ASSERT_FALSE(ref.metrics_json.empty());
  // Tracing must actually have produced spans to make the byte-compare
  // meaningful.
  ASSERT_NE(ref.trace_json.find("\"request\""), std::string::npos);

  for (std::size_t threads : {2u, 4u}) {
    SCOPED_TRACE("os_threads=" + std::to_string(threads));
    const RunResult got = run_boutique(threads, 0, true);
    EXPECT_EQ(got.events, ref.events);
    EXPECT_EQ(got.requests, ref.requests);
    EXPECT_EQ(got.p50, ref.p50);
    EXPECT_EQ(got.p99, ref.p99);
    EXPECT_EQ(got.metrics_json, ref.metrics_json);
    EXPECT_EQ(got.trace_json, ref.trace_json);
  }
}

TEST(Pdes, ChaosReplayBitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
    SCOPED_TRACE("chaos_seed=" + std::to_string(seed));
    const RunResult ref = run_boutique(1, seed, /*tracing=*/false);
    ASSERT_GT(ref.events, 0u);
    ASSERT_GT(ref.requests, 0u);
    ASSERT_GT(ref.injected, 0u);

    for (std::size_t threads : {2u, 4u}) {
      SCOPED_TRACE("os_threads=" + std::to_string(threads));
      const RunResult got = run_boutique(threads, seed, false);
      EXPECT_EQ(got.events, ref.events);
      EXPECT_EQ(got.requests, ref.requests);
      EXPECT_EQ(got.injected, ref.injected);
      EXPECT_EQ(got.p50, ref.p50);
      EXPECT_EQ(got.p99, ref.p99);
      EXPECT_EQ(got.metrics_json, ref.metrics_json);
    }
  }
}

// Satellite 3: metric snapshots depend only on the instrument key set,
// never on the order instruments were registered or merged.
TEST(MetricsOrdering, ExportIndependentOfRegistrationOrder) {
  obs::Registry a;
  a.counter("zeta").inc(3);
  a.histogram("lat", "node=1").record(5);
  a.counter("alpha", "k=v").inc(1);
  a.gauge("depth").set(2.5);

  obs::Registry b;
  b.gauge("depth").set(2.5);
  b.counter("alpha", "k=v").inc(1);
  b.histogram("lat", "node=1").record(5);
  b.counter("zeta").inc(3);

  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_csv(), b.to_csv());
}

TEST(MetricsOrdering, MergeOrderIndependent) {
  obs::Registry s1;
  s1.counter("msgs", "node=1").inc(7);
  s1.histogram("lat").record(100);
  obs::Registry s2;
  s2.counter("msgs", "node=1").inc(5);
  s2.counter("msgs", "node=2").inc(2);
  s2.histogram("lat").record(300);
  obs::Registry s3;
  s3.gauge("occ").add(1.5);
  s3.histogram("lat").record(200);

  obs::Registry m1;
  m1.merge_from(s1);
  m1.merge_from(s2);
  m1.merge_from(s3);
  obs::Registry m2;
  m2.merge_from(s3);
  m2.merge_from(s1);
  m2.merge_from(s2);

  EXPECT_EQ(m1.to_json(), m2.to_json());
  EXPECT_EQ(m1.to_csv(), m2.to_csv());
}

}  // namespace
