#include "fabric/fabric.hpp"

#include <gtest/gtest.h>

namespace pd::fabric {
namespace {

TEST(Link, TransferTimeMatchesBandwidthPlusPropagation) {
  sim::Scheduler s;
  Link link(s, 1e9, 500);  // 1 Gbps, 500 ns propagation
  sim::TimePoint at = -1;
  link.transmit(1000, [&] { at = s.now(); });  // 1000 B = 8000 ns at 1 Gbps
  s.run();
  EXPECT_EQ(at, 8000 + 500);
  EXPECT_EQ(link.bytes_sent(), 1000u);
}

TEST(Link, BackToBackFramesSerialize) {
  sim::Scheduler s;
  Link link(s, 1e9, 0);
  std::vector<sim::TimePoint> arrivals;
  link.transmit(1000, [&] { arrivals.push_back(s.now()); });
  link.transmit(1000, [&] { arrivals.push_back(s.now()); });
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 8000);
  EXPECT_EQ(arrivals[1], 16000);  // queued behind the first frame
}

TEST(Link, BacklogReflectsQueuedBytes) {
  sim::Scheduler s;
  Link link(s, 1e9, 0);
  link.transmit(1000, [] {});
  EXPECT_EQ(link.backlog(), 8000);
  s.run();
  EXPECT_EQ(link.backlog(), 0);
}

TEST(Link, TinyFrameTakesAtLeastOneNs) {
  sim::Scheduler s;
  Link link(s, 1e18, 0);  // absurdly fast
  sim::TimePoint at = -1;
  link.transmit(1, [&] { at = s.now(); });
  s.run();
  EXPECT_EQ(at, 1);
}

TEST(Switch, EndToEndDelivery) {
  sim::Scheduler s;
  Switch sw(s);
  sw.attach(NodeId{1});
  sw.attach(NodeId{2});
  bool delivered = false;
  sw.send(NodeId{1}, NodeId{2}, 4096, [&] { delivered = true; });
  s.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sw.frames(), 1u);
  // Sanity: a 4 KiB frame at 200 Gbps crosses in ~1.3-2 µs including hop
  // latency and double serialization.
  EXPECT_GT(s.now(), 1000);
  EXPECT_LT(s.now(), 3000);
}

TEST(Switch, UnattachedNodesRejected) {
  sim::Scheduler s;
  Switch sw(s);
  sw.attach(NodeId{1});
  EXPECT_THROW(sw.send(NodeId{1}, NodeId{9}, 64, [] {}), CheckFailure);
  EXPECT_THROW(sw.send(NodeId{9}, NodeId{1}, 64, [] {}), CheckFailure);
  EXPECT_THROW(sw.attach(NodeId{1}), CheckFailure);
}

TEST(Switch, SelfSendRejected) {
  sim::Scheduler s;
  Switch sw(s);
  sw.attach(NodeId{1});
  EXPECT_THROW(sw.send(NodeId{1}, NodeId{1}, 64, [] {}), CheckFailure);
}

TEST(Switch, EgressContentionSharesSenderPort) {
  sim::Scheduler s;
  Switch sw(s, 1e9);  // slow 1 Gbps ports make contention visible
  sw.attach(NodeId{1});
  sw.attach(NodeId{2});
  sw.attach(NodeId{3});
  std::vector<sim::TimePoint> arrivals(2, -1);
  // Two large frames from node 1 to different receivers share node 1's
  // egress link and serialize.
  sw.send(NodeId{1}, NodeId{2}, 100000, [&] { arrivals[0] = s.now(); });
  sw.send(NodeId{1}, NodeId{3}, 100000, [&] { arrivals[1] = s.now(); });
  s.run();
  EXPECT_GT(arrivals[1], arrivals[0]);
  EXPECT_GT(arrivals[1] - arrivals[0], 700000);  // ~one serialization apart
}

TEST(Switch, DownPortDropsFramesBothDirections) {
  sim::Scheduler s;
  Switch sw(s);
  sw.attach(NodeId{1});
  sw.attach(NodeId{2});
  sw.set_node_down(NodeId{2}, true);
  EXPECT_TRUE(sw.node_down(NodeId{2}));

  bool to_down = false;
  bool from_down = false;
  sw.send(NodeId{1}, NodeId{2}, 64, [&] { to_down = true; });
  sw.send(NodeId{2}, NodeId{1}, 64, [&] { from_down = true; });
  s.run();
  EXPECT_FALSE(to_down);
  EXPECT_FALSE(from_down);
  EXPECT_EQ(sw.frames_dropped(), 2u);

  // Port back up: traffic flows again, the drop count stops rising.
  sw.set_node_down(NodeId{2}, false);
  bool delivered = false;
  sw.send(NodeId{1}, NodeId{2}, 64, [&] { delivered = true; });
  s.run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(sw.frames_dropped(), 2u);
}

TEST(Switch, LossyPortDropsDeterministically) {
  auto run = [](std::uint64_t seed) {
    sim::Scheduler s;
    Switch sw(s);
    sw.attach(NodeId{1});
    sw.attach(NodeId{2});
    sw.set_fault_seed(seed);
    sw.set_node_loss(NodeId{2}, 0.5);
    std::uint64_t delivered = 0;
    for (int i = 0; i < 100; ++i) {
      sw.send(NodeId{1}, NodeId{2}, 64, [&] { ++delivered; });
    }
    s.run();
    return std::pair(delivered, sw.frames_dropped());
  };
  const auto a = run(7);
  EXPECT_GT(a.first, 0u);
  EXPECT_GT(a.second, 0u);
  EXPECT_EQ(a.first + a.second, 100u);
  // Same seed, same fate for every frame; the loss process is part of the
  // deterministic replay, not ambient randomness.
  EXPECT_EQ(run(7), a);
  EXPECT_NE(run(8), a);
}

TEST(Switch, IncastContentionSharesReceiverPort) {
  sim::Scheduler s;
  Switch sw(s, 1e9);
  sw.attach(NodeId{1});
  sw.attach(NodeId{2});
  sw.attach(NodeId{3});
  std::vector<sim::TimePoint> arrivals;
  sw.send(NodeId{1}, NodeId{3}, 100000, [&] { arrivals.push_back(s.now()); });
  sw.send(NodeId{2}, NodeId{3}, 100000, [&] { arrivals.push_back(s.now()); });
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Receiver ingress serializes the two frames ~800 µs apart.
  EXPECT_GT(arrivals[1] - arrivals[0], 700000);
}

}  // namespace
}  // namespace pd::fabric
