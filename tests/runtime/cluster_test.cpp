// End-to-end integration: the same two-node cluster and echo chain run
// over every data plane (Palladium DNE/CNE/on-path, SPRIGHT, FUYAO,
// NightCore single-node) — §4.3's apples-to-apples setup in miniature.
#include "runtime/cluster.hpp"

#include <gtest/gtest.h>

#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

namespace pd::runtime {
namespace {

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kFnA{1};
constexpr FunctionId kFnB{2};
constexpr FunctionId kDriver{100};
constexpr std::uint32_t kChain = 1;

/// Two functions, A on node 1, B on node 2; chain entry->A->B->A->entry.
std::unique_ptr<Cluster> make_cluster(sim::Scheduler& sched, SystemKind sys) {
  ClusterConfig cfg;
  cfg.system = sys;
  cfg.cpu_cores_per_node = 8;
  cfg.pool_buffers = 256;
  auto cluster = std::make_unique<Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  const bool single_node = sys == SystemKind::kNightcore;
  if (!single_node) cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(FunctionSpec{kFnA, "fn-a", kTenant}, kNode1);
  cluster->deploy(FunctionSpec{kFnB, "fn-b", kTenant},
                  single_node ? kNode1 : kNode2);
  cluster->add_chain(Chain{kChain, "echo", kTenant, 128,
                           {{kFnA, 10'000, 128},
                            {kFnB, 20'000, 256},
                            {kFnA, 10'000, 512}}});
  return cluster;
}

class ClusterSystems : public ::testing::TestWithParam<SystemKind> {};

TEST_P(ClusterSystems, RequestTraversesChainAndReturns) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, GetParam());
  workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
  cluster->finish_setup();

  driver.start(1);
  sched.run_until(sched.now() + 1'000'000'000);  // 1 s
  driver.stop();
  sched.run();

  EXPECT_GT(driver.completed(), 10u) << to_string(GetParam());
  // Every completion visited A twice and B once.
  EXPECT_GE(cluster->instance(kFnA).invocations(), 2 * driver.completed());
  EXPECT_GE(cluster->instance(kFnB).invocations(), driver.completed());
  // Latency sanity: between 40 µs (sum of computes) and 5 ms.
  EXPECT_GT(driver.latencies().quantile(0.5), 40'000);
  EXPECT_LT(driver.latencies().quantile(0.5), 5'000'000);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ClusterSystems,
    ::testing::Values(SystemKind::kPalladiumDne, SystemKind::kPalladiumOnPath,
                      SystemKind::kPalladiumCne, SystemKind::kSpright,
                      SystemKind::kFuyao, SystemKind::kNightcore),
    [](const auto& info) {
      switch (info.param) {
        case SystemKind::kPalladiumDne: return "PalladiumDne";
        case SystemKind::kPalladiumOnPath: return "PalladiumOnPath";
        case SystemKind::kPalladiumCne: return "PalladiumCne";
        case SystemKind::kSpright: return "Spright";
        case SystemKind::kNightcore: return "Nightcore";
        case SystemKind::kFuyao: return "Fuyao";
      }
      return "Unknown";
    });

TEST(ClusterTest, PayloadBytesSurviveTheChain) {
  // White-box check that buffers really carry the message through both
  // IPC and RDMA paths (not just descriptors).
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, SystemKind::kPalladiumDne);
  workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
  cluster->finish_setup();
  driver.start(1);
  sched.run_until(sched.now() + 100'000'000);
  driver.stop();
  sched.run();
  EXPECT_GT(driver.completed(), 0u);
}

TEST(ClusterTest, ClosedLoopConcurrencyScalesThroughput) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, SystemKind::kPalladiumDne);
  workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
  cluster->finish_setup();

  driver.start(8);
  sched.run_until(sched.now() + 1'000'000'000);
  const auto completed_8 = driver.completed();
  driver.stop();
  sched.run();

  sim::Scheduler sched2;
  auto cluster2 = make_cluster(sched2, SystemKind::kPalladiumDne);
  workload::ChainDriver driver2(*cluster2, kDriver, kNode1, kChain);
  cluster2->finish_setup();
  driver2.start(1);
  sched2.run_until(sched2.now() + 1'000'000'000);
  driver2.stop();
  sched2.run();

  EXPECT_GT(completed_8, driver2.completed() * 3)
      << "8 clients should easily triple 1-client throughput";
}

TEST(ClusterTest, DnePipelineCountsMatch) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, SystemKind::kPalladiumDne);
  workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
  cluster->finish_setup();
  driver.start(2);
  sched.run_until(sched.now() + 500'000'000);
  driver.stop();
  sched.run();

  auto* eng1 = cluster->worker(kNode1).palladium_engine();
  auto* eng2 = cluster->worker(kNode2).palladium_engine();
  ASSERT_NE(eng1, nullptr);
  ASSERT_NE(eng2, nullptr);
  // Per request: node1 sends 2 messages (entry->B is actually A->B... ) —
  // at minimum, tx and rx totals across engines must match and no drops.
  EXPECT_EQ(eng1->counters().drops_no_route, 0u);
  EXPECT_EQ(eng2->counters().drops_no_route, 0u);
  EXPECT_EQ(eng1->counters().tx_msgs, eng2->counters().rx_msgs);
  EXPECT_EQ(eng2->counters().tx_msgs, eng1->counters().rx_msgs);
  EXPECT_GT(eng1->counters().tx_msgs, 0u);
}

TEST(ClusterTest, PoolsDrainBackToFullWhenIdle) {
  // No buffer leaks: after the load stops and the system quiesces, every
  // tenant pool returns to (capacity - SRQ fill) availability.
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, SystemKind::kPalladiumDne);
  workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
  cluster->finish_setup();
  driver.start(4);
  sched.run_until(sched.now() + 300'000'000);
  driver.stop();
  sched.run();

  for (NodeId n : {kNode1, kNode2}) {
    auto& pool = cluster->worker(n).memory().by_tenant(kTenant).pool();
    const std::size_t srq_held =
        cluster->config().engine.srq_fill;  // buffers parked in the SRQ
    EXPECT_EQ(pool.available(), pool.capacity() - srq_held)
        << "node " << n << " leaked buffers";
  }
}

TEST(ClusterTest, BoutiqueDeploysAndServesAllChains) {
  sim::Scheduler sched;
  ClusterConfig cfg;
  cfg.system = SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 16;
  Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  OnlineBoutique::deploy(cluster, kNode1, kNode2);

  std::vector<std::unique_ptr<workload::ChainDriver>> drivers;
  std::uint32_t next_driver = 200;
  for (std::uint32_t chain = 1; chain <= 6; ++chain) {
    drivers.push_back(std::make_unique<workload::ChainDriver>(
        cluster, FunctionId{next_driver++}, kNode1, chain));
  }
  cluster.finish_setup();
  for (auto& d : drivers) d->start(2);
  sched.run_until(sched.now() + 2'000'000'000);
  for (auto& d : drivers) d->stop();
  sched.run();

  for (std::size_t i = 0; i < drivers.size(); ++i) {
    EXPECT_GT(drivers[i]->completed(), 20u)
        << OnlineBoutique::chain_name(static_cast<std::uint32_t>(i + 1));
  }
}

TEST(ClusterTest, FullRunIsDeterministic) {
  // Same seed + same topology => bit-identical results, down to latency
  // quantiles. The reproducibility guarantee every bench relies on.
  auto run_once = [] {
    sim::Scheduler sched;
    auto cluster = make_cluster(sched, SystemKind::kPalladiumDne);
    workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
    cluster->finish_setup();
    driver.start(6);
    sched.run_until(sched.now() + 700'000'000);
    driver.stop();
    sched.run();
    return std::make_tuple(driver.completed(), driver.latencies().mean_ns(),
                           driver.latencies().quantile(0.99),
                           sched.events_processed());
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ClusterTest, SeedChangesJitterButNotCorrectness) {
  auto run_with_seed = [](std::uint64_t seed) {
    sim::Scheduler sched;
    ClusterConfig cfg;
    cfg.system = SystemKind::kPalladiumDne;
    cfg.cpu_cores_per_node = 8;
    cfg.pool_buffers = 256;
    cfg.seed = seed;
    auto cluster = std::make_unique<Cluster>(sched, cfg);
    cluster->add_worker(kNode1);
    cluster->add_worker(kNode2);
    cluster->add_tenant(kTenant, 1);
    cluster->deploy(FunctionSpec{kFnA, "fn-a", kTenant}, kNode1);
    cluster->deploy(FunctionSpec{kFnB, "fn-b", kTenant}, kNode2);
    cluster->add_chain(Chain{kChain, "echo", kTenant, 128,
                             {{kFnA, 10'000, 128}, {kFnB, 20'000, 256},
                              {kFnA, 10'000, 512}}});
    workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
    cluster->finish_setup();
    driver.start(4);
    sched.run_until(sched.now() + 500'000'000);
    driver.stop();
    sched.run();
    return driver.completed();
  };
  const auto a = run_with_seed(1);
  const auto b = run_with_seed(2);
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, 0u);
  // Different jitter draws shift totals slightly, never wildly.
  EXPECT_NEAR(static_cast<double>(a), static_cast<double>(b),
              static_cast<double>(a) * 0.2);
}

TEST(ClusterTest, CrossDomainSendCopiesIntoDestinationPool) {
  // §3.1 security model: a chain hop that crosses tenants must not share
  // memory — the runtime copies into the destination tenant's pool.
  sim::Scheduler sched;
  ClusterConfig cfg;
  cfg.system = SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 8;
  Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  cluster.add_tenant(TenantId{1}, 1);
  cluster.add_tenant(TenantId{2}, 1);
  // fn1 belongs to tenant 1, fn2 to tenant 2; the chain (owned by tenant 1)
  // calls across the security boundary.
  cluster.deploy(FunctionSpec{FunctionId{1}, "fn1", TenantId{1}}, kNode1);
  cluster.deploy(FunctionSpec{FunctionId{2}, "untrusted", TenantId{2}}, kNode1);
  cluster.add_chain(Chain{7, "cross", TenantId{1}, 64,
                          {{FunctionId{1}, 1'000, 64},
                           {FunctionId{2}, 1'000, 64}}});
  workload::ChainDriver driver(cluster, kDriver, kNode1, 7);
  cluster.finish_setup();
  driver.start(1);
  sched.run_until(sched.now() + 50'000'000);
  driver.stop();
  sched.run();
  // The cross-tenant hop worked (copy path), and fn2 observed tenant-2
  // buffers only.
  EXPECT_GT(cluster.instance(FunctionId{2}).invocations(), 0u);
}

TEST(ClusterTest, NodeSharedSidecarShiftsPolicyWorkToEngine) {
  // §3.1 optimization (1): the consolidated per-node sidecar runs policy
  // checks in the engine instead of per function.
  auto engine_busy = [](SidecarMode mode) {
    sim::Scheduler sched;
    ClusterConfig cfg;
    cfg.system = SystemKind::kPalladiumCne;  // engine on a host core
    cfg.cpu_cores_per_node = 8;
    cfg.pool_buffers = 256;
    cfg.sidecar = mode;
    auto cluster = std::make_unique<Cluster>(sched, cfg);
    cluster->add_worker(kNode1);
    cluster->add_worker(kNode2);
    cluster->add_tenant(kTenant, 1);
    cluster->deploy(FunctionSpec{kFnA, "a", kTenant}, kNode1);
    cluster->deploy(FunctionSpec{kFnB, "b", kTenant}, kNode2);
    cluster->add_chain(Chain{kChain, "ab", kTenant, 64,
                             {{kFnA, 1'000, 64}, {kFnB, 1'000, 64}}});
    workload::ChainDriver driver(*cluster, kDriver, kNode1, kChain);
    cluster->finish_setup();
    driver.start(2);
    sched.run_until(sched.now() + 200'000'000);
    driver.stop();
    sched.run();
    EXPECT_GT(driver.completed(), 100u);
    return std::make_pair(cluster->worker(kNode1).engine_core().busy_ns(),
                          driver.completed());
  };
  const auto [ebpf_engine, ebpf_done] = engine_busy(SidecarMode::kPerFunctionEbpf);
  const auto [shared_engine, shared_done] = engine_busy(SidecarMode::kNodeShared);
  // Normalize per completed request: the shared-sidecar engine does
  // strictly more work per request.
  EXPECT_GT(static_cast<double>(shared_engine) / shared_done,
            static_cast<double>(ebpf_engine) / ebpf_done);
}

TEST(ClusterTest, CrossTenantDescriptorForgeryBlocked) {
  sim::Scheduler sched;
  ClusterConfig cfg;
  cfg.system = SystemKind::kPalladiumDne;
  Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_tenant(TenantId{1}, 1);
  cluster.add_tenant(TenantId{2}, 1);
  auto& pool1 = cluster.worker(kNode1).memory().by_tenant(TenantId{1}).pool();
  auto& pool2 = cluster.worker(kNode1).memory().by_tenant(TenantId{2}).pool();
  const auto actor = mem::actor_function(FunctionId{1});
  auto d = pool1.allocate(actor);
  ASSERT_TRUE(d.has_value());
  // A tenant-2 pool refuses a tenant-1 descriptor outright.
  EXPECT_THROW(pool2.access(*d, actor), CheckFailure);
}

}  // namespace
}  // namespace pd::runtime
