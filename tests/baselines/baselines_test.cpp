// White-box tests of the baseline data planes: SPRIGHT's TCP relay pays
// serialization copies; FUYAO's one-sided engine respects its credit
// window and pins a polling core.
#include <gtest/gtest.h>

#include "baselines/fuyao_engine.hpp"
#include "baselines/tcp_engine.hpp"
#include "runtime/cluster.hpp"
#include "runtime/function.hpp"
#include "workload/driver.hpp"

namespace pd::baselines {
namespace {

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kFnA{1};
constexpr FunctionId kFnB{2};

std::unique_ptr<runtime::Cluster> cross_node_cluster(sim::Scheduler& sched,
                                                     runtime::SystemKind sys) {
  runtime::ClusterConfig cfg;
  cfg.system = sys;
  cfg.pool_buffers = 256;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kFnA, "a", kTenant}, kNode1);
  cluster->deploy(runtime::FunctionSpec{kFnB, "b", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{1, "ab", kTenant, 512,
                                    {{kFnA, 1'000, 512}, {kFnB, 1'000, 512}}});
  return cluster;
}

TEST(TcpRelay, RelaysAcrossNodesAndCountsMessages) {
  sim::Scheduler sched;
  auto cluster = cross_node_cluster(sched, runtime::SystemKind::kSpright);
  workload::ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
  cluster->finish_setup();
  driver.start(2);
  sched.run_until(sched.now() + 500'000'000);
  driver.stop();
  sched.run();

  ASSERT_GT(driver.completed(), 10u);
  auto* relay1 = dynamic_cast<TcpRelayEngine*>(&cluster->worker(kNode1).dataplane());
  auto* relay2 = dynamic_cast<TcpRelayEngine*>(&cluster->worker(kNode2).dataplane());
  ASSERT_NE(relay1, nullptr);
  ASSERT_NE(relay2, nullptr);
  // Per request: A->B crossing on node 1, B->entry crossing on node 2.
  EXPECT_GE(relay1->relayed(), driver.completed());
  EXPECT_GE(relay2->relayed(), driver.completed());
}

TEST(TcpRelay, RelayEngineChargesCpuForCopies) {
  sim::Scheduler sched;
  auto cluster = cross_node_cluster(sched, runtime::SystemKind::kSpright);
  workload::ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
  cluster->finish_setup();
  const auto before = cluster->worker(kNode1).engine_core().busy_ns();
  driver.start(1);
  sched.run_until(sched.now() + 200'000'000);
  driver.stop();
  sched.run();
  // Serialization + TCP stack work must show up on the relay core.
  EXPECT_GT(cluster->worker(kNode1).engine_core().busy_ns() - before,
            static_cast<sim::Duration>(driver.completed()) * 10'000);
}

TEST(Fuyao, PinsAPollingCorePerNode) {
  sim::Scheduler sched;
  auto cluster = cross_node_cluster(sched, runtime::SystemKind::kFuyao);
  cluster->finish_setup();
  EXPECT_TRUE(cluster->worker(kNode1).engine_core().busy_poll());
  EXPECT_TRUE(cluster->worker(kNode2).engine_core().busy_poll());
  // The Palladium DNE variant, by contrast, pins a DPU core, not a host one.
  sim::Scheduler sched2;
  auto pall = cross_node_cluster(sched2, runtime::SystemKind::kPalladiumDne);
  pall->finish_setup();
  EXPECT_TRUE(pall->worker(kNode1).engine_core().busy_poll());
  EXPECT_EQ(&pall->worker(kNode1).engine_core(),
            &pall->worker(kNode1).dpu()->core(0));
}

TEST(Fuyao, CreditWindowNeverOverflowsStaging) {
  // Push far more concurrent requests than staging slots: the credit
  // window must backpressure (queue at the sender) rather than overwrite
  // slots in flight.
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kFuyao;
  cfg.pool_buffers = 2048;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kFnB, "b", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{1, "b", kTenant, 256,
                                    {{kFnB, 500, 256}}});
  workload::ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
  cluster->finish_setup();
  driver.start(256);  // >> 64 staging slots
  sched.run_until(sched.now() + 1'000'000'000);
  driver.stop();
  sched.run();
  EXPECT_GT(driver.completed(), 1000u);
  // All requests eventually completed (none lost to slot overwrites).
  EXPECT_EQ(driver.latencies().count(), driver.completed());
}

TEST(Fuyao, PalladiumOutpacesFuyaoUnderLoad) {
  // At light load FUYAO's short skmsg+poll path can beat Comch-E's wakeup
  // latency; under concurrency its CPU-resident polling engine (interrupt
  // wakeups per message, receiver-side copies) saturates first — the §4.3
  // comparison point.
  auto throughput = [](runtime::SystemKind sys) {
    sim::Scheduler sched;
    auto cluster = cross_node_cluster(sched, sys);
    workload::ChainDriver driver(*cluster, FunctionId{100}, kNode1, 1);
    cluster->finish_setup();
    driver.start(64);
    sched.run_until(sched.now() + 1'000'000'000);
    driver.stop();
    sched.run();
    return driver.completed();
  };
  const auto palladium = throughput(runtime::SystemKind::kPalladiumDne);
  const auto fuyao = throughput(runtime::SystemKind::kFuyao);
  EXPECT_GT(palladium, fuyao);
}

}  // namespace
}  // namespace pd::baselines
