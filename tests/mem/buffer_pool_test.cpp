#include "mem/buffer_pool.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cstring>

namespace pd::mem {
namespace {

constexpr PoolId kPool{1};
constexpr TenantId kTenant{7};
const Actor kFnA = actor_function(FunctionId{10});
const Actor kFnB = actor_function(FunctionId{11});
const Actor kEngine = actor_engine(NodeId{1});

BufferPool make_pool(std::size_t count = 4, Bytes size = 256) {
  return BufferPool(kPool, kTenant, count, size);
}

TEST(BufferPool, AllocateAndRelease) {
  auto pool = make_pool();
  EXPECT_EQ(pool.available(), 4u);
  auto d = pool.allocate(kFnA);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(pool.available(), 3u);
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(d->tenant, kTenant);
  pool.release(*d, kFnA);
  EXPECT_EQ(pool.available(), 4u);
}

TEST(BufferPool, ExhaustionReturnsNullopt) {
  auto pool = make_pool(2);
  auto a = pool.allocate(kFnA);
  auto b = pool.allocate(kFnA);
  ASSERT_TRUE(a && b);
  EXPECT_FALSE(pool.allocate(kFnA).has_value());
  pool.release(*a, kFnA);
  EXPECT_TRUE(pool.allocate(kFnA).has_value());
}

TEST(BufferPool, LifoRecycling) {
  // Most recently freed buffer is handed out first (cache-friendly, like
  // rte_mempool's per-core cache).
  auto pool = make_pool();
  auto a = pool.allocate(kFnA);
  pool.release(*a, kFnA);
  auto b = pool.allocate(kFnA);
  EXPECT_EQ(a->index, b->index);
}

TEST(BufferPool, PayloadReadWriteRoundTrip) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  auto span = pool.access(*d, kFnA);
  ASSERT_EQ(span.size(), 256u);
  const char msg[] = "GET /product HTTP/1.1";
  std::memcpy(span.data(), msg, sizeof msg);
  auto rd = pool.access(*d, kFnA);
  EXPECT_EQ(0, std::memcmp(rd.data(), msg, sizeof msg));
}

TEST(BufferPool, OwnershipTransferEnablesNewOwnerOnly) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  pool.transfer(*d, kFnA, kEngine);
  EXPECT_EQ(pool.owner_of(*d).kind, ActorKind::kNetworkEngine);
  // Old owner can no longer touch the buffer: the token has moved.
  EXPECT_THROW(pool.access(*d, kFnA), CheckFailure);
  EXPECT_THROW(pool.release(*d, kFnA), CheckFailure);
  EXPECT_NO_THROW(pool.access(*d, kEngine));
  pool.release(*d, kEngine);
}

TEST(BufferPool, TransferByNonOwnerRejected) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  EXPECT_THROW(pool.transfer(*d, kFnB, kEngine), CheckFailure);
}

TEST(BufferPool, DoubleReleaseRejected) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  pool.release(*d, kFnA);
  EXPECT_THROW(pool.release(*d, kFnA), CheckFailure);
}

TEST(BufferPool, UseAfterFreeRejected) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  pool.release(*d, kFnA);
  EXPECT_THROW(pool.access(*d, kFnA), CheckFailure);
}

TEST(BufferPool, ForeignDescriptorRejected) {
  auto pool = make_pool();
  BufferPool other(PoolId{2}, kTenant, 2, 64);
  auto d = other.allocate(kFnA);
  EXPECT_THROW(pool.access(*d, kFnA), CheckFailure);
}

TEST(BufferPool, TenantMismatchRejected) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  BufferDescriptor forged = *d;
  forged.tenant = TenantId{99};
  EXPECT_THROW(pool.access(forged, kFnA), CheckFailure);
}

TEST(BufferPool, ResizeSetsLengthWithinBounds) {
  auto pool = make_pool();
  auto d = pool.allocate(kFnA);
  auto d2 = pool.resize(*d, kFnA, 100);
  EXPECT_EQ(d2.length, 100u);
  EXPECT_THROW(pool.resize(*d, kFnA, 1000), CheckFailure);
}

TEST(BufferPool, HighWaterMarkTracksPeak) {
  auto pool = make_pool(4);
  auto a = pool.allocate(kFnA);
  auto b = pool.allocate(kFnA);
  auto c = pool.allocate(kFnA);
  pool.release(*b, kFnA);
  pool.release(*c, kFnA);
  EXPECT_EQ(pool.high_water(), 3u);
  pool.release(*a, kFnA);
  EXPECT_EQ(pool.high_water(), 3u);
}

TEST(BufferPool, FootprintReportsBackingBytes) {
  auto pool = make_pool(8, 1024);
  EXPECT_EQ(pool.footprint(), 8u * 1024u);
}

TEST(BufferPool, AllocationRequiresOwner) {
  auto pool = make_pool();
  EXPECT_THROW(pool.allocate(Actor{}), CheckFailure);
}

}  // namespace
}  // namespace pd::mem
