#include "mem/memory_domain.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace pd::mem {
namespace {

TEST(MemoryDomain, CreateAndAttachByPrefix) {
  MemoryDomain dom(NodeId{1});
  auto& tm = dom.create_tenant_pool(TenantId{1}, "tenant_1", 16, 1_KiB);
  EXPECT_EQ(tm.file_prefix(), "tenant_1");
  EXPECT_EQ(dom.attach("tenant_1"), &tm);
  EXPECT_EQ(dom.attach("tenant_2"), nullptr);  // no cross-tenant guessing
}

TEST(MemoryDomain, PrefixAndTenantUniquenessEnforced) {
  MemoryDomain dom(NodeId{1});
  dom.create_tenant_pool(TenantId{1}, "tenant_1", 4, 64);
  EXPECT_THROW(dom.create_tenant_pool(TenantId{2}, "tenant_1", 4, 64),
               CheckFailure);
  EXPECT_THROW(dom.create_tenant_pool(TenantId{1}, "tenant_1b", 4, 64),
               CheckFailure);
}

TEST(MemoryDomain, LookupByTenantAndPool) {
  MemoryDomain dom(NodeId{3});
  auto& a = dom.create_tenant_pool(TenantId{1}, "a", 4, 64);
  auto& b = dom.create_tenant_pool(TenantId{2}, "b", 4, 64);
  EXPECT_EQ(&dom.by_tenant(TenantId{1}), &a);
  EXPECT_EQ(&dom.by_pool(b.pool_id()), &b);
  EXPECT_TRUE(dom.has_tenant(TenantId{2}));
  EXPECT_FALSE(dom.has_tenant(TenantId{9}));
  EXPECT_THROW(dom.by_tenant(TenantId{9}), CheckFailure);
}

TEST(MemoryDomain, PoolIdsUniqueAcrossNodes) {
  MemoryDomain n1(NodeId{1});
  MemoryDomain n2(NodeId{2});
  auto& a = n1.create_tenant_pool(TenantId{1}, "t1", 4, 64);
  auto& b = n2.create_tenant_pool(TenantId{1}, "t1", 4, 64);
  EXPECT_NE(a.pool_id(), b.pool_id());
}

TEST(MemoryDomain, IsolationBetweenTenantPools) {
  MemoryDomain dom(NodeId{1});
  auto& t1 = dom.create_tenant_pool(TenantId{1}, "t1", 4, 64);
  auto& t2 = dom.create_tenant_pool(TenantId{2}, "t2", 4, 64);
  const Actor f1 = actor_function(FunctionId{1});
  auto d = t1.pool().allocate(f1);
  // A descriptor from tenant 1's pool is rejected by tenant 2's pool.
  EXPECT_THROW(t2.pool().access(*d, f1), CheckFailure);
}

TEST(MemoryDomain, ExportFlagsForCrossProcessorSharing) {
  MemoryDomain dom(NodeId{1});
  auto& tm = dom.create_tenant_pool(TenantId{1}, "t1", 4, 64);
  EXPECT_FALSE(tm.exported_to_dpu());
  EXPECT_FALSE(tm.exported_to_rdma());
  tm.export_to_dpu();
  tm.export_to_rdma();
  EXPECT_TRUE(tm.exported_to_dpu());
  EXPECT_TRUE(tm.exported_to_rdma());
}

TEST(MemoryDomain, FootprintSumsPools) {
  MemoryDomain dom(NodeId{1});
  dom.create_tenant_pool(TenantId{1}, "t1", 4, 1_KiB);
  dom.create_tenant_pool(TenantId{2}, "t2", 2, 2_KiB);
  EXPECT_EQ(dom.footprint(), 4 * 1_KiB + 2 * 2_KiB);
  EXPECT_EQ(dom.num_pools(), 2u);
}

}  // namespace
}  // namespace pd::mem
