#include "rdma/rnic.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/check.hpp"
#include "proto/cost_model.hpp"
#include "rdma/connection.hpp"

namespace pd::rdma {
namespace {

constexpr TenantId kTenant{1};
constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

/// Two-node RDMA cluster with one registered tenant pool per node.
class RnicTest : public ::testing::Test {
 protected:
  RnicTest()
      : net(sched),
        mem1(kNode1),
        mem2(kNode2),
        rnic1(net, kNode1, mem1),
        rnic2(net, kNode2, mem2) {
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 32, 4096);
      tm.export_to_dpu();
      tm.export_to_rdma();
    }
    rnic1.register_memory(mem1.by_tenant(kTenant).pool_id());
    rnic2.register_memory(mem2.by_tenant(kTenant).pool_id());
  }

  /// Establish one RC connection and return the sender-side QP.
  QueuePair& connect() {
    QueuePair& a = rnic1.create_qp(kTenant);
    QueuePair& b = rnic2.create_qp(kTenant);
    bool connected = false;
    connect_qps(a, b, [&] { connected = true; });
    sched.run();
    EXPECT_TRUE(connected);
    a.activate(nullptr);
    b.activate(nullptr);
    sched.run();
    EXPECT_EQ(a.state(), QpState::kActive);
    return a;
  }

  /// Post `n` receive buffers on node 2 for the tenant.
  void post_receives(int n) {
    auto& pool = mem2.by_tenant(kTenant).pool();
    for (int i = 0; i < n; ++i) {
      auto d = pool.allocate(mem::actor_rnic(kNode2));
      ASSERT_TRUE(d.has_value());
      rnic2.post_srq_recv(kTenant, *d);
    }
  }

  /// Allocate a sender buffer containing `text`, owned by the RNIC.
  mem::BufferDescriptor sender_buffer(const char* text) {
    auto& pool = mem1.by_tenant(kTenant).pool();
    auto d = pool.allocate(mem::actor_rnic(kNode1));
    auto span = pool.access(*d, mem::actor_rnic(kNode1));
    std::memcpy(span.data(), text, std::strlen(text) + 1);
    return pool.resize(*d, mem::actor_rnic(kNode1),
                       static_cast<std::uint32_t>(std::strlen(text) + 1));
  }

  sim::Scheduler sched;
  RdmaNetwork net;
  mem::MemoryDomain mem1;
  mem::MemoryDomain mem2;
  Rnic rnic1;
  Rnic rnic2;
};

TEST_F(RnicTest, RegistrationRequiresRdmaExport) {
  mem::MemoryDomain dom(NodeId{9});
  auto& tm = dom.create_tenant_pool(TenantId{5}, "t5", 4, 64);
  Rnic rnic(net, NodeId{9}, dom);
  EXPECT_THROW(rnic.register_memory(tm.pool_id()), CheckFailure);
  tm.export_to_rdma();
  rnic.register_memory(tm.pool_id());
  EXPECT_TRUE(rnic.memory_registered(tm.pool_id()));
}

TEST_F(RnicTest, ConnectionSetupTakesTensOfMs) {
  QueuePair& a = rnic1.create_qp(kTenant);
  QueuePair& b = rnic2.create_qp(kTenant);
  bool connected = false;
  connect_qps(a, b, [&] { connected = true; });
  EXPECT_EQ(a.state(), QpState::kConnecting);
  sched.run();
  EXPECT_TRUE(connected);
  EXPECT_EQ(sched.now(), cost::kRcConnectNs);
  EXPECT_EQ(a.state(), QpState::kInactive);
  EXPECT_EQ(b.state(), QpState::kInactive);
  EXPECT_EQ(a.remote_node(), kNode2);
  EXPECT_EQ(b.remote_qp(), a.id());
}

TEST_F(RnicTest, PostSendOnInactiveQpRejected) {
  QueuePair& a = rnic1.create_qp(kTenant);
  QueuePair& b = rnic2.create_qp(kTenant);
  connect_qps(a, b, nullptr);
  sched.run();
  WorkRequest wr;
  EXPECT_THROW(a.post_send(wr), CheckFailure);
}

TEST_F(RnicTest, TwoSidedSendDeliversPayloadAndCompletions) {
  QueuePair& a = connect();
  post_receives(1);
  auto d = sender_buffer("hello palladium");

  WorkRequest wr;
  wr.wr_id = 42;
  wr.opcode = Opcode::kSend;
  wr.local = d;
  a.post_send(wr);
  EXPECT_EQ(a.outstanding(), 1);
  sched.run();
  EXPECT_EQ(a.outstanding(), 0);

  // Sender-side completion.
  auto send_cqes = rnic1.cq().poll(8);
  ASSERT_EQ(send_cqes.size(), 1u);
  EXPECT_EQ(send_cqes[0].wr_id, 42u);
  EXPECT_FALSE(send_cqes[0].is_recv);

  // Receiver-side completion with the payload in a tenant-pool buffer.
  auto recv_cqes = rnic2.cq().poll(8);
  ASSERT_EQ(recv_cqes.size(), 1u);
  const auto& c = recv_cqes[0];
  EXPECT_TRUE(c.is_recv);
  EXPECT_EQ(c.tenant, kTenant);
  auto& pool2 = mem2.by_tenant(kTenant).pool();
  auto span = pool2.access(c.buffer, mem::actor_rnic(kNode2));
  EXPECT_STREQ(reinterpret_cast<const char*>(span.data()), "hello palladium");
  EXPECT_EQ(c.byte_len, std::strlen("hello palladium") + 1);
  EXPECT_EQ(rnic1.counters().sends, 1u);
  EXPECT_EQ(rnic2.counters().recvs, 1u);
}

TEST_F(RnicTest, SrqUnderrunTriggersRnrAndRecovers) {
  QueuePair& a = connect();
  auto d = sender_buffer("delayed");
  WorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.local = d;
  a.post_send(wr);
  sched.run();
  // No receive buffer: message parked in RNR state, no recv CQE.
  EXPECT_EQ(rnic2.counters().rnr_events, 1u);
  EXPECT_EQ(rnic2.cq().depth(), 0u);

  post_receives(1);
  sched.run();
  auto cqes = rnic2.cq().poll(8);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_TRUE(cqes[0].is_recv);
}

TEST_F(RnicTest, SendUsesTenantSpecificSrq) {
  // Buffers posted for another tenant must not satisfy this tenant's sends.
  const TenantId other{2};
  for (auto* dom : {&mem1, &mem2}) {
    auto& tm = dom->create_tenant_pool(other, "tenant_2", 8, 4096);
    tm.export_to_rdma();
  }
  rnic2.register_memory(mem2.by_tenant(other).pool_id());
  auto& pool_other = mem2.by_tenant(other).pool();
  auto d_other = pool_other.allocate(mem::actor_rnic(kNode2));
  rnic2.post_srq_recv(other, *d_other);

  QueuePair& a = connect();
  auto d = sender_buffer("tenant1 data");
  WorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.local = d;
  a.post_send(wr);
  sched.run();
  EXPECT_EQ(rnic2.counters().rnr_events, 1u);  // tenant-1 SRQ was empty
  EXPECT_EQ(rnic2.srq_depth(other), 1u);       // tenant-2 buffer untouched
}

TEST_F(RnicTest, OneSidedWriteLandsWithoutReceiverCqe) {
  QueuePair& a = connect();
  // Receiver exposes slot 0 of its pool to the RNIC (ownership handoff).
  auto& pool2 = mem2.by_tenant(kTenant).pool();
  auto slot = pool2.allocate(mem::actor_rnic(kNode2));
  ASSERT_TRUE(slot.has_value());

  mem::BufferDescriptor landed{};
  rnic2.set_write_monitor(pool2.id(),
                          [&](const mem::BufferDescriptor& d, std::uint32_t) {
                            landed = d;
                          });

  auto src = sender_buffer("one-sided payload");
  WorkRequest wr;
  wr.opcode = Opcode::kWrite;
  wr.local = src;
  wr.remote_pool = pool2.id();
  wr.remote_index = slot->index;
  a.post_send(wr);
  sched.run();

  EXPECT_EQ(rnic2.cq().depth(), 0u);  // receiver CPU never notified via CQ
  EXPECT_EQ(landed.index, slot->index);
  auto span = pool2.access(landed, mem::actor_rnic(kNode2));
  EXPECT_STREQ(reinterpret_cast<const char*>(span.data()), "one-sided payload");
  EXPECT_EQ(rnic1.counters().writes, 1u);
}

TEST_F(RnicTest, CompareSwapExecutesRemotely) {
  QueuePair& a = connect();
  rnic2.set_atomic_word(0x1000, 0);

  WorkRequest lock;
  lock.wr_id = 7;
  lock.opcode = Opcode::kCompareSwap;
  lock.atomic_addr = 0x1000;
  lock.atomic_expect = 0;
  lock.atomic_desired = 1;
  a.post_send(lock);
  sched.run();

  auto cqes = rnic1.cq().poll(8);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].atomic_found, 0u);          // CAS succeeded
  EXPECT_EQ(rnic2.atomic_word(0x1000), 1u);     // lock taken

  // Second CAS fails and reports the holder.
  a.post_send(lock);
  sched.run();
  cqes = rnic1.cq().poll(8);
  ASSERT_EQ(cqes.size(), 1u);
  EXPECT_EQ(cqes[0].atomic_found, 1u);          // found != expect: failed
  EXPECT_EQ(rnic2.atomic_word(0x1000), 1u);
}

TEST_F(RnicTest, LargerPayloadTakesLonger) {
  QueuePair& a = connect();
  post_receives(2);
  auto& pool1 = mem1.by_tenant(kTenant).pool();

  auto time_send = [&](std::uint32_t len) {
    auto d = pool1.allocate(mem::actor_rnic(kNode1));
    auto sized = pool1.resize(*d, mem::actor_rnic(kNode1), len);
    WorkRequest wr;
    wr.opcode = Opcode::kSend;
    wr.local = sized;
    const auto start = sched.now();
    a.post_send(wr);
    sched.run();
    // Wait for recv CQE.
    auto cqes = rnic2.cq().poll(8);
    EXPECT_EQ(cqes.size(), 1u);
    return sched.now() - start;
  };

  const auto t64 = time_send(64);
  const auto t4k = time_send(4096);
  EXPECT_GT(t4k, t64);
  // Shape check: one-way 64 B far below 10 µs; 4 KiB only a few µs more.
  EXPECT_LT(t64, 10'000);
  EXPECT_LT(t4k - t64, 8'000);
}

TEST_F(RnicTest, CqNotifyFiresOnEmptyToNonEmpty) {
  QueuePair& a = connect();
  post_receives(3);
  int notifications = 0;
  rnic2.cq().set_notify([&] { ++notifications; });

  auto send_one = [&] {
    auto d = sender_buffer("x");
    WorkRequest wr;
    wr.opcode = Opcode::kSend;
    wr.local = d;
    a.post_send(wr);
    sched.run();
  };
  send_one();
  EXPECT_EQ(notifications, 1);
  send_one();  // CQ not drained: no second edge notification
  EXPECT_EQ(notifications, 1);
  rnic2.cq().poll(8);
  send_one();
  EXPECT_EQ(notifications, 2);
}

TEST(CqCoalescing, BatchThresholdFiresOneNotifyForNCompletions) {
  // §4.2 CQE batching: N back-to-back completions produce a single notify
  // (at the Nth arrival), not N edge interrupts.
  sim::Scheduler s;
  CompletionQueue cq;
  std::vector<sim::TimePoint> fired;
  cq.set_notify([&] { fired.push_back(s.now()); });
  cq.set_coalescing(&s, /*batch=*/4, /*window=*/2'000);
  for (int i = 0; i < 4; ++i) {
    s.schedule_at(i * 100, [&cq] { cq.push(Completion{}); });
  }
  s.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired.front(), 300);  // at the 4th push, before the window
  EXPECT_EQ(cq.depth(), 4u);
  EXPECT_EQ(cq.notifies(), 1u);
}

TEST(CqCoalescing, WindowTimerFlushesPartialBatch) {
  // Fewer completions than the batch threshold: the moderation window
  // bounds their delivery delay — notify fires when the window expires,
  // measured from the empty->non-empty transition.
  sim::Scheduler s;
  CompletionQueue cq;
  std::vector<sim::TimePoint> fired;
  cq.set_notify([&] { fired.push_back(s.now()); });
  cq.set_coalescing(&s, /*batch=*/4, /*window=*/2'000);
  s.schedule_at(500, [&cq] { cq.push(Completion{}); });
  s.schedule_at(700, [&cq] { cq.push(Completion{}); });
  s.run();  // foreground timer: run() must not strand the delivery
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired.front(), 2'500);  // 500 (first push) + 2'000 window
  EXPECT_EQ(cq.depth(), 2u);
}

TEST(CqCoalescing, BatchFireCancelsPendingWindowTimer) {
  sim::Scheduler s;
  CompletionQueue cq;
  int notifications = 0;
  cq.set_notify([&] { ++notifications; cq.poll(8); });
  cq.set_coalescing(&s, /*batch=*/2, /*window=*/2'000);
  s.schedule_at(100, [&cq] { cq.push(Completion{}); });
  s.schedule_at(200, [&cq] { cq.push(Completion{}); });  // batch hit here
  s.run();
  EXPECT_EQ(notifications, 1);  // window expiry at 2'100 must not re-fire
  EXPECT_EQ(s.now(), 200);      // and the cancelled timer doesn't hold time
}

TEST(CqCoalescing, DefaultConfigKeepsLegacyEdgeNotify) {
  // batch <= 1 disables coalescing entirely: notify on every
  // empty->non-empty edge, synchronously inside push().
  sim::Scheduler s;
  CompletionQueue cq;
  int notifications = 0;
  cq.set_notify([&] { ++notifications; });
  cq.set_coalescing(&s, /*batch=*/1, /*window=*/2'000);
  cq.push(Completion{});
  EXPECT_EQ(notifications, 1);
  cq.push(Completion{});  // not an edge
  EXPECT_EQ(notifications, 1);
  cq.poll(8);
  cq.push(Completion{});
  EXPECT_EQ(notifications, 2);
}

TEST_F(RnicTest, UnregisteredPoolRejectedOnPost) {
  QueuePair& a = connect();
  auto& dom = mem1;
  auto& tm = dom.create_tenant_pool(TenantId{3}, "t3", 4, 64);
  tm.export_to_rdma();
  auto d = tm.pool().allocate(mem::actor_rnic(kNode1));
  WorkRequest wr;
  wr.opcode = Opcode::kSend;
  wr.local = *d;
  EXPECT_THROW(a.post_send(wr), CheckFailure);
}

}  // namespace
}  // namespace pd::rdma
