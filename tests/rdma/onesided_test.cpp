// One-sided READ/FAA verbs and the cart state store (ISSUE 8), plus
// regression coverage for the two latent one-sided bugs this PR fixes:
// remote-access violations must surface as error completions at the
// initiator (never a PD_CHECK abort, never remote CPU time), and OWDL's
// wr_id spaces must be collision-free.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/check.hpp"
#include "control/cartstore_bench.hpp"
#include "core/onesided.hpp"
#include "proto/cost_model.hpp"
#include "rdma/connection.hpp"
#include "rdma/rnic.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "runtime/statestore.hpp"
#include "workload/driver.hpp"

namespace pd::rdma {
namespace {

constexpr TenantId kTenant{1};
constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr NodeId kNode3{3};

/// Two-node world with one fully registered tenant pool per node; node 3
/// (second atomic contender) is added on demand.
class OneSidedVerbsTest : public ::testing::Test {
 protected:
  OneSidedVerbsTest()
      : net(sched),
        mem1(kNode1),
        mem2(kNode2),
        rnic1(net, kNode1, mem1),
        rnic2(net, kNode2, mem2) {
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 32, 4096);
      tm.export_to_rdma();
    }
    rnic1.register_memory(mem1.by_tenant(kTenant).pool_id());
    rnic2.register_memory(mem2.by_tenant(kTenant).pool_id());
  }

  QueuePair& connect(Rnic& from, Rnic& to) {
    QueuePair& a = from.create_qp(kTenant);
    QueuePair& b = to.create_qp(kTenant);
    connect_qps(a, b, nullptr);
    sched.run();
    a.activate(nullptr);
    b.activate(nullptr);
    sched.run();
    EXPECT_EQ(a.state(), QpState::kActive);
    return a;
  }

  /// Allocate a slot owned by `node`'s RNIC in its tenant pool.
  mem::BufferDescriptor rnic_slot(mem::MemoryDomain& dom, NodeId node) {
    auto d = dom.by_tenant(kTenant).pool().allocate(mem::actor_rnic(node));
    EXPECT_TRUE(d.has_value());
    return *d;
  }

  /// Run to quiescence and drain every CQE from `rnic`'s CQ.
  std::vector<Completion> drain(Rnic& rnic) {
    sched.run();
    return rnic.cq().poll(64);
  }

  sim::Scheduler sched;
  RdmaNetwork net;
  mem::MemoryDomain mem1;
  mem::MemoryDomain mem2;
  Rnic rnic1;
  Rnic rnic2;
};

// ---------------------------------------------------------------------------
// Tentpole: READ / FAA semantics
// ---------------------------------------------------------------------------

TEST_F(OneSidedVerbsTest, ReadReturnsPriorWriteBytesWithoutRemoteCpu) {
  QueuePair& qp = connect(rnic1, rnic2);
  const char kText[] = "cart-record-v1";
  const auto len = static_cast<std::uint32_t>(sizeof kText);

  // WRITE the record into node 2's slab slot.
  const mem::BufferDescriptor remote = rnic_slot(mem2, kNode2);
  auto src = rnic_slot(mem1, kNode1);
  auto& pool1 = mem1.by_tenant(kTenant).pool();
  std::memcpy(pool1.access(src, mem::actor_rnic(kNode1)).data(), kText, len);
  src = pool1.resize(src, mem::actor_rnic(kNode1), len);

  WorkRequest wr;
  wr.wr_id = 1;
  wr.opcode = Opcode::kWrite;
  wr.local = src;
  wr.remote_pool = remote.pool;
  wr.remote_index = remote.index;
  qp.post_send(wr);
  auto cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].status, CompletionStatus::kSuccess);

  // READ it back into a fresh landing buffer.
  const mem::BufferDescriptor landing = rnic_slot(mem1, kNode1);
  WorkRequest rd;
  rd.wr_id = 2;
  rd.opcode = Opcode::kRead;
  rd.local = landing;
  rd.remote_pool = remote.pool;
  rd.remote_index = remote.index;
  rd.read_len = len;
  qp.post_send(rd);
  cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].opcode, Opcode::kRead);
  EXPECT_EQ(cs[0].status, CompletionStatus::kSuccess);
  EXPECT_EQ(cs[0].byte_len, len);
  EXPECT_EQ(std::memcmp(
                pool1.access(cs[0].buffer, mem::actor_rnic(kNode1)).data(),
                kText, len),
            0);

  // The one-sided contract: the target node's CPU saw nothing — no CQE
  // was ever raised at node 2 (pure NIC-to-NIC DMA both directions).
  EXPECT_EQ(rnic2.cq().total_pushed(), 0u);
  EXPECT_EQ(rnic1.counters().reads, 1u);
  EXPECT_EQ(rnic2.counters().access_errors, 0u);
}

TEST_F(OneSidedVerbsTest, FetchAddIsAtomicUnderTwoContendingClients) {
  constexpr std::uint64_t kAddr = 0x5000;
  constexpr int kPerClient = 8;
  rnic2.set_atomic_word(kAddr, 0);

  mem::MemoryDomain mem3(kNode3);
  Rnic rnic3(net, kNode3, mem3);
  mem3.create_tenant_pool(kTenant, "tenant_1", 32, 4096).export_to_rdma();
  rnic3.register_memory(mem3.by_tenant(kTenant).pool_id());

  QueuePair& qa = connect(rnic1, rnic2);
  QueuePair& qc = connect(rnic3, rnic2);

  for (int i = 0; i < kPerClient; ++i) {
    for (QueuePair* qp : {&qa, &qc}) {
      WorkRequest wr;
      wr.wr_id = static_cast<std::uint64_t>(i);
      wr.opcode = Opcode::kFetchAdd;
      wr.atomic_addr = kAddr;
      wr.atomic_desired = 1;  // the addend
      qp->post_send(wr);
    }
  }
  sched.run();

  // Every pre-add value 0..2N-1 is observed exactly once across the two
  // contenders — the hardware-atomicity invariant.
  std::vector<std::uint64_t> found;
  for (Rnic* r : {&rnic1, &rnic3}) {
    for (const Completion& c : r->cq().poll(64)) {
      EXPECT_EQ(c.opcode, Opcode::kFetchAdd);
      EXPECT_EQ(c.status, CompletionStatus::kSuccess);
      found.push_back(c.atomic_found);
    }
  }
  ASSERT_EQ(found.size(), 2u * kPerClient);
  std::sort(found.begin(), found.end());
  for (std::size_t i = 0; i < found.size(); ++i) EXPECT_EQ(found[i], i);
  EXPECT_EQ(rnic2.atomic_word(kAddr), 2u * kPerClient);
  // The FAA counter is initiator-side ("WRs initiated from here").
  EXPECT_EQ(rnic1.counters().fetch_adds, static_cast<std::uint64_t>(kPerClient));
  EXPECT_EQ(rnic3.counters().fetch_adds, static_cast<std::uint64_t>(kPerClient));
}

// ---------------------------------------------------------------------------
// Satellite bugfix: rkey violations are error completions, not aborts
// ---------------------------------------------------------------------------

TEST_F(OneSidedVerbsTest, ReadDeniedByLocalOnlyMrFailsAtInitiator) {
  QueuePair& qp = connect(rnic1, rnic2);

  // A scratch region on node 2 registered without remote permissions —
  // structurally identical to the cart client's landing buffers.
  auto& scratch = mem2.create_tenant_pool(TenantId{900}, "scratch", 4, 4096);
  scratch.export_to_rdma();
  rnic2.register_memory(scratch.pool_id(), kMrLocal);

  WorkRequest rd;
  rd.wr_id = 7;
  rd.opcode = Opcode::kRead;
  rd.local = rnic_slot(mem1, kNode1);
  rd.remote_pool = scratch.pool_id();
  rd.remote_index = 0;
  rd.read_len = 64;
  qp.post_send(rd);

  auto cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].wr_id, 7u);
  EXPECT_EQ(cs[0].opcode, Opcode::kRead);
  EXPECT_EQ(cs[0].status, CompletionStatus::kRemoteAccessError);
  EXPECT_EQ(rnic2.counters().access_errors, 1u);
  // The QP survives: a subsequent READ against a permitted MR succeeds.
  const mem::BufferDescriptor remote = rnic_slot(mem2, kNode2);
  WorkRequest ok;
  ok.wr_id = 8;
  ok.opcode = Opcode::kRead;
  ok.local = rnic_slot(mem1, kNode1);
  ok.remote_pool = remote.pool;
  ok.remote_index = remote.index;
  ok.read_len = 64;
  qp.post_send(ok);
  cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].status, CompletionStatus::kSuccess);
}

TEST_F(OneSidedVerbsTest, WriteDeniedRaisesLateErrorAfterWireExit) {
  QueuePair& qp = connect(rnic1, rnic2);
  // mem1's pool is foreign (unregistered) at node 2's NIC: rkey check fails.
  auto src = rnic_slot(mem1, kNode1);
  src = mem1.by_tenant(kTenant).pool().resize(src, mem::actor_rnic(kNode1), 64);

  WorkRequest wr;
  wr.wr_id = 9;
  wr.opcode = Opcode::kWrite;
  wr.local = src;
  wr.remote_pool = mem1.by_tenant(kTenant).pool_id();  // foreign at node 2
  wr.remote_index = 0;
  qp.post_send(wr);

  // A WRITE completes locally when it leaves the NIC (success CQE), then
  // the remote NAK arrives as a second, error CQE for the same wr_id — the
  // double-decrement of the SQ slot is the bug this PR fixed.
  auto cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0].status, CompletionStatus::kSuccess);
  EXPECT_EQ(cs[1].status, CompletionStatus::kRemoteAccessError);
  EXPECT_EQ(cs[1].wr_id, 9u);
  EXPECT_EQ(rnic2.counters().access_errors, 1u);
  EXPECT_EQ(qp.state(), QpState::kActive);
}

TEST_F(OneSidedVerbsTest, DeniedAtomicsCompleteWithErrorNotAbort) {
  QueuePair& qp = connect(rnic1, rnic2);

  // CAS against a word that was never mapped: used to PD_CHECK-abort the
  // whole process; must now come back as a remote-access error CQE.
  WorkRequest cas;
  cas.wr_id = 11;
  cas.opcode = Opcode::kCompareSwap;
  cas.atomic_addr = 0x7777;  // unmapped
  cas.atomic_expect = 0;
  cas.atomic_desired = 1;
  qp.post_send(cas);
  auto cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].opcode, Opcode::kCompareSwap);
  EXPECT_EQ(cs[0].status, CompletionStatus::kRemoteAccessError);
  EXPECT_EQ(rnic2.counters().atomic_access_errors, 1u);

  // A word guarded by an MR without kMrRemoteAtomic is equally denied.
  auto& scratch = mem2.create_tenant_pool(TenantId{900}, "scratch", 4, 4096);
  scratch.export_to_rdma();
  rnic2.register_memory(scratch.pool_id(), kMrLocal);
  rnic2.set_atomic_word(0x8888, 0, scratch.pool_id());
  WorkRequest guarded = cas;
  guarded.wr_id = 12;
  guarded.atomic_addr = 0x8888;
  qp.post_send(guarded);
  cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].status, CompletionStatus::kRemoteAccessError);
  EXPECT_EQ(rnic2.counters().atomic_access_errors, 2u);
  EXPECT_EQ(rnic2.atomic_word(0x8888), 0u);  // value untouched

  // Same guard with atomic permission: served.
  rnic2.set_atomic_word(0x9999, 0, mem2.by_tenant(kTenant).pool_id());
  WorkRequest served = cas;
  served.wr_id = 13;
  served.atomic_addr = 0x9999;
  qp.post_send(served);
  cs = drain(rnic1);
  ASSERT_EQ(cs.size(), 1u);
  EXPECT_EQ(cs[0].status, CompletionStatus::kSuccess);
  EXPECT_EQ(rnic2.atomic_word(0x9999), 1u);
}

TEST_F(OneSidedVerbsTest, DeniedAtomicLatencyMatchesServedLatency) {
  // The denial responds at the same latency as a served atomic, so an
  // initiator cannot probe which addresses are mapped by timing NAKs.
  QueuePair& qp = connect(rnic1, rnic2);
  rnic2.set_atomic_word(0x4000, 0);

  auto measure = [&](std::uint64_t addr, std::uint64_t id) {
    WorkRequest wr;
    wr.wr_id = id;
    wr.opcode = Opcode::kCompareSwap;
    wr.atomic_addr = addr;
    wr.atomic_expect = 0;
    wr.atomic_desired = 1;
    const sim::TimePoint t0 = sched.now();
    qp.post_send(wr);
    sched.run();
    EXPECT_EQ(rnic1.cq().poll(4).size(), 1u);
    return sched.now() - t0;
  };

  measure(0x4000, 1);  // warmup: steady-state QP cache
  rnic2.set_atomic_word(0x4000, 0);
  const sim::Duration served = measure(0x4000, 2);
  const sim::Duration denied = measure(0xDEAD, 3);
  EXPECT_EQ(served, denied);
}

// ---------------------------------------------------------------------------
// Satellite bugfix: OWDL wr_id spaces
// ---------------------------------------------------------------------------

TEST(OwdlWrIdTest, IdSpacesCannotCollide) {
  using core::owdl_cas_wr_id;
  using core::owdl_unlock_wr_id;
  using core::owdl_write_wr_id;

  // The exact pre-fix failure: write ids were `1e9 + k` from the shared
  // counter, so cas id `1e9 + k` aliased write id `k` and the CAS stole
  // the write's parked continuation.
  constexpr std::uint64_t kOldWriteIdBase = 1'000'000'000ULL;
  for (std::uint64_t k : {0ULL, 1ULL, 5ULL, 123'456ULL}) {
    EXPECT_NE(owdl_cas_wr_id(kOldWriteIdBase + k), owdl_write_wr_id(k));
  }

  // Pairwise-disjoint across the whole practical id range.
  const std::uint64_t samples[] = {1ULL,          2ULL,       1'000ULL,
                                   kOldWriteIdBase, 1ULL << 40, (1ULL << 62) - 1};
  for (std::uint64_t n : samples) {
    for (std::uint64_t m : samples) {
      EXPECT_NE(owdl_cas_wr_id(n), owdl_write_wr_id(m));
      EXPECT_NE(owdl_cas_wr_id(n), owdl_unlock_wr_id(m));
      EXPECT_NE(owdl_write_wr_id(n), owdl_unlock_wr_id(m));
    }
    // The tag is lossless: the sequence number survives.
    EXPECT_EQ(owdl_cas_wr_id(n) & ~(3ULL << 62), n);
  }
}

// ---------------------------------------------------------------------------
// Tentpole integration: the cart state store inside the cluster
// ---------------------------------------------------------------------------

TEST(CartStoreTest, StoreModeBeatsRpcOnCartChainsAndIdlesTheCartService) {
  control::CartAblationOptions opts;
  opts.threads = 0;
  opts.seconds = 1;
  const control::CartAblationResult r = control::run_cart_ablation(opts);

  ASSERT_EQ(r.rpc.chains.size(), 3u);
  ASSERT_EQ(r.store.chains.size(), 3u);
  EXPECT_TRUE(r.rpc.zero_loss);
  EXPECT_TRUE(r.store.zero_loss);

  // The READ chains (/home, /viewcart) and the CAS chain (/addtocart) all
  // get faster once the cart hop stops being an RPC.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LT(r.store.chains[i].p50_ns, r.rpc.chains[i].p50_ns)
        << r.store.chains[i].target;
    EXPECT_LT(r.store.chains[i].p99_ns, r.rpc.chains[i].p99_ns)
        << r.store.chains[i].target;
  }

  // Mechanism, not luck: the store mode actually used one-sided verbs,
  // never fell back, and the cart service never ran.
  EXPECT_GT(r.store.store_ops, 0u);
  EXPECT_EQ(r.store.store_fallbacks, 0u);
  EXPECT_EQ(r.store.store_errors, 0u);
  EXPECT_GT(r.store.rnic_reads, 0u);
  EXPECT_GT(r.store.rnic_fetch_adds, 0u);
  EXPECT_EQ(r.store.cart_invocations, 0u);
  EXPECT_GT(r.rpc.cart_invocations, 0u);
  EXPECT_EQ(r.rpc.rnic_reads, 0u);

  // And the store node's host CPUs shed the cart work.
  EXPECT_LT(r.store.store_node_cpu_busy_ns, r.rpc.store_node_cpu_busy_ns);
}

TEST(CartStoreTest, AblationIsByteIdenticalAcrossThreadCounts) {
  control::CartAblationOptions opts;
  opts.seconds = 1;
  opts.threads = 1;
  const std::string one = control::run_cart_ablation(opts).json();
  opts.threads = 2;
  const std::string two = control::run_cart_ablation(opts).json();
  EXPECT_EQ(one, two);
}

TEST(CartStoreTest, RkeyDenialFallsBackToRpcAndRequestsStillComplete) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 8;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2,
                                  /*cart_store=*/true);
  cluster.enable_cart_store(kNode2);
  workload::ChainDriver driver(cluster, FunctionId{100}, kNode1,
                               runtime::OnlineBoutique::kViewCart);
  cluster.finish_setup();

  // Every one-sided READ now aims at an MR the store NIC rejects.
  runtime::CartStoreClient* client = cluster.cart_client(kNode1);
  ASSERT_NE(client, nullptr);
  client->set_force_denial(true);

  driver.start(2);
  sched.run_until(sched.now() + 300'000'000);
  driver.stop();
  sched.run();

  // Denials happened, every one fell back to the RPC path, and the
  // requests completed anyway — nothing hangs on a revoked rkey.
  EXPECT_GT(driver.completed(), 0u);
  EXPECT_EQ(driver.failed(), 0u);
  EXPECT_GT(client->counters().errors, 0u);
  EXPECT_EQ(client->counters().reads, 0u);
  runtime::FunctionInstance& fe =
      cluster.instance(runtime::OnlineBoutique::kFrontend);
  EXPECT_GT(fe.store_fallbacks(), 0u);
  EXPECT_EQ(fe.store_fallbacks(), fe.store_ops());
  EXPECT_GT(cluster.instance(runtime::OnlineBoutique::kCart).invocations(),
            0u);
  const RnicCounters& store_nic = cluster.worker(kNode2).rnic()->counters();
  EXPECT_GT(store_nic.access_errors, 0u);
}

TEST(CartStoreTest, UpdateLadderCommitsAndBumpsVersions) {
  sim::Scheduler sched;
  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 8;
  runtime::Cluster cluster(sched, cfg);
  cluster.add_worker(kNode1);
  cluster.add_worker(kNode2);
  runtime::OnlineBoutique::deploy(cluster, kNode1, kNode2,
                                  /*cart_store=*/true);
  cluster.enable_cart_store(kNode2, /*slots=*/8);
  workload::ChainDriver driver(cluster, FunctionId{100}, kNode1,
                               runtime::OnlineBoutique::kAddToCart);
  cluster.finish_setup();

  driver.start(4);
  sched.run_until(sched.now() + 300'000'000);
  driver.stop();
  sched.run();

  EXPECT_GT(driver.completed(), 0u);
  runtime::CartStoreClient* client = cluster.cart_client(kNode1);
  ASSERT_NE(client, nullptr);
  EXPECT_GT(client->counters().updates, 0u);
  EXPECT_EQ(client->counters().errors, 0u);

  // Committed-update accounting is exact: the per-slot version words sum
  // to the client's update count, and every token was released.
  runtime::CartStateStore* store = cluster.cart_store();
  ASSERT_NE(store, nullptr);
  std::uint64_t versions = 0;
  for (std::uint32_t s = 0; s < store->slots(); ++s) {
    versions += store->version(s);
    EXPECT_EQ(cluster.worker(kNode2).rnic()->atomic_word(
                  runtime::CartStateStore::token_addr(s)),
              0u);
  }
  EXPECT_EQ(versions, client->counters().updates);
}

}  // namespace
}  // namespace pd::rdma
