#include "rdma/connection.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "proto/cost_model.hpp"

namespace pd::rdma {
namespace {

constexpr TenantId kTenant{1};
constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};

class ConnectionTest : public ::testing::Test {
 protected:
  ConnectionTest()
      : net(sched),
        mem1(kNode1),
        mem2(kNode2),
        rnic1(net, kNode1, mem1),
        rnic2(net, kNode2, mem2),
        mgr(rnic1, /*max_active=*/4) {
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(kTenant, "tenant_1", 64, 1024);
      tm.export_to_rdma();
    }
    rnic1.register_memory(mem1.by_tenant(kTenant).pool_id());
    rnic2.register_memory(mem2.by_tenant(kTenant).pool_id());
  }

  void post_receives(int n) {
    auto& pool = mem2.by_tenant(kTenant).pool();
    for (int i = 0; i < n; ++i) {
      auto d = pool.allocate(mem::actor_rnic(kNode2));
      ASSERT_TRUE(d.has_value());
      rnic2.post_srq_recv(kTenant, *d);
    }
  }

  WorkRequest make_wr(std::uint64_t id) {
    auto& pool = mem1.by_tenant(kTenant).pool();
    auto d = pool.allocate(mem::actor_rnic(kNode1));
    WorkRequest wr;
    wr.wr_id = id;
    wr.opcode = Opcode::kSend;
    wr.local = pool.resize(*d, mem::actor_rnic(kNode1), 64);
    return wr;
  }

  sim::Scheduler sched;
  RdmaNetwork net;
  mem::MemoryDomain mem1;
  mem::MemoryDomain mem2;
  Rnic rnic1;
  Rnic rnic2;
  ConnectionManager mgr;
};

TEST_F(ConnectionTest, EstablishCreatesPoolAfterSetupLatency) {
  bool ready = false;
  mgr.establish(kNode2, kTenant, 3, [&] { ready = true; });
  EXPECT_EQ(mgr.pool_size(kNode2, kTenant), 3u);
  EXPECT_FALSE(ready);
  sched.run();
  EXPECT_TRUE(ready);
  EXPECT_GE(sched.now(), cost::kRcConnectNs);
  EXPECT_EQ(mgr.stats().establishments, 3u);
  // All established connections rest in the shadow state.
  EXPECT_EQ(mgr.active_count(), 0);
}

TEST_F(ConnectionTest, SendActivatesShadowQpOnDemand) {
  mgr.establish(kNode2, kTenant, 2, nullptr);
  sched.run();
  post_receives(1);
  mgr.send(kNode2, kTenant, make_wr(1));
  sched.run();
  EXPECT_EQ(mgr.stats().activations, 1u);
  EXPECT_EQ(mgr.active_count(), 1);
  EXPECT_EQ(rnic2.counters().recvs, 1u);
}

TEST_F(ConnectionTest, ReusesActiveQpWithoutReactivation) {
  mgr.establish(kNode2, kTenant, 2, nullptr);
  sched.run();
  post_receives(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    mgr.send(kNode2, kTenant, make_wr(i));
    sched.run();
  }
  EXPECT_EQ(mgr.stats().activations, 1u);  // only the first send activates
  EXPECT_EQ(mgr.stats().sends, 3u);
}

TEST_F(ConnectionTest, SendWithoutPoolRejected) {
  EXPECT_THROW(mgr.send(kNode2, kTenant, make_wr(0)), CheckFailure);
}

TEST_F(ConnectionTest, SendsDuringActivationAreQueuedNotLost) {
  mgr.establish(kNode2, kTenant, 1, nullptr);
  sched.run();
  post_receives(2);
  // Two sends back-to-back: the second lands while the QP is activating.
  mgr.send(kNode2, kTenant, make_wr(1));
  mgr.send(kNode2, kTenant, make_wr(2));
  sched.run();
  EXPECT_EQ(rnic2.counters().recvs, 2u);
  EXPECT_EQ(mgr.stats().activations, 1u);
}

TEST_F(ConnectionTest, ActiveCapDeactivatesIdleQps) {
  // Establish pools to the same node for several tenants so activations
  // exceed the cap of 4.
  std::vector<TenantId> tenants;
  for (std::uint32_t t = 10; t < 17; ++t) {
    const TenantId tenant{t};
    tenants.push_back(tenant);
    for (auto* dom : {&mem1, &mem2}) {
      auto& tm = dom->create_tenant_pool(tenant, "t" + std::to_string(t), 8, 256);
      tm.export_to_rdma();
    }
    rnic1.register_memory(mem1.by_tenant(tenant).pool_id());
    rnic2.register_memory(mem2.by_tenant(tenant).pool_id());
    mgr.establish(kNode2, tenant, 1, nullptr);
  }
  sched.run();
  for (const TenantId tenant : tenants) {
    auto& pool2 = mem2.by_tenant(tenant).pool();
    auto rd = pool2.allocate(mem::actor_rnic(kNode2));
    rnic2.post_srq_recv(tenant, *rd);

    auto& pool1 = mem1.by_tenant(tenant).pool();
    auto d = pool1.allocate(mem::actor_rnic(kNode1));
    WorkRequest wr;
    wr.opcode = Opcode::kSend;
    wr.local = pool1.resize(*d, mem::actor_rnic(kNode1), 64);
    mgr.send(kNode2, tenant, wr);
    sched.run();
  }
  EXPECT_EQ(mgr.stats().activations, 7u);
  EXPECT_GT(mgr.stats().deactivations, 0u);
  EXPECT_LE(mgr.active_count(), 4);
}

TEST_F(ConnectionTest, LeastCongestedQpSelection) {
  mgr.establish(kNode2, kTenant, 2, nullptr);
  sched.run();
  post_receives(8);
  // Activate both QPs.
  mgr.send(kNode2, kTenant, make_wr(0));
  sched.run();
  // Manually activate the second QP so both are active and idle.
  // Subsequent sends should spread by outstanding count; since sends
  // complete quickly the key property is simply that nothing breaks and
  // all are delivered.
  for (std::uint64_t i = 1; i < 6; ++i) mgr.send(kNode2, kTenant, make_wr(i));
  sched.run();
  EXPECT_EQ(rnic2.counters().recvs, 6u);
}

TEST_F(ConnectionTest, FailedQpSkippedWhileSiblingsServe) {
  mgr.establish(kNode2, kTenant, 2, nullptr);
  sched.run();
  post_receives(8);  // enough for all six sends in this test
  // Activate both QPs via two sends.
  mgr.send(kNode2, kTenant, make_wr(1));
  sched.run();
  auto& pool = mem1.by_tenant(kTenant).pool();
  (void)pool;
  // Fail one connection; traffic must keep flowing on the sibling.
  rdma::QueuePair* victim = nullptr;
  // Find an established QP on the local RNIC by brute force over sends:
  // the first send activated exactly one; fail it.
  // (Direct pool introspection is intentionally not exposed.)
  // Use healthy_count to observe the effect instead.
  EXPECT_EQ(mgr.healthy_count(kNode2, kTenant), 2u);
  // Fail via the RNIC-side handle: activate the second QP first.
  mgr.send(kNode2, kTenant, make_wr(2));
  sched.run();
  // Grab any active QP through the RNIC and fail it.
  for (std::uint32_t i = 1; i <= 4 && victim == nullptr; ++i) {
    const QpId id{(kNode1.value() << 20) | i};
    // qp() throws for unknown ids; stop at the first gap.
    rdma::QueuePair& qp = rnic1.qp(id);
    if (qp.state() == QpState::kActive) victim = &qp;
  }
  ASSERT_NE(victim, nullptr);
  victim->fail();
  EXPECT_EQ(victim->state(), QpState::kError);
  EXPECT_EQ(mgr.healthy_count(kNode2, kTenant), 1u);

  for (std::uint64_t i = 3; i <= 6; ++i) {
    mgr.send(kNode2, kTenant, make_wr(i));
    sched.run();
  }
  EXPECT_EQ(rnic2.counters().recvs, 6u);
  EXPECT_EQ(mgr.stats().reestablishments, 0u);
}

TEST_F(ConnectionTest, AllConnectionsFailedTriggersReestablishment) {
  mgr.establish(kNode2, kTenant, 2, nullptr);
  sched.run();
  post_receives(2);
  mgr.send(kNode2, kTenant, make_wr(1));
  sched.run();
  EXPECT_EQ(rnic2.counters().recvs, 1u);

  // Break every connection in the pool (fabric fault).
  for (std::uint32_t i = 1; i <= 2; ++i) {
    rnic1.qp(QpId{(kNode1.value() << 20) | i}).fail();
  }
  EXPECT_EQ(mgr.healthy_count(kNode2, kTenant), 0u);

  // The next send rebuilds the pool (paying the full RC setup latency)
  // and then goes through.
  const auto before = sched.now();
  mgr.send(kNode2, kTenant, make_wr(2));
  sched.run();
  EXPECT_EQ(mgr.stats().reestablishments, 1u);
  EXPECT_EQ(rnic2.counters().recvs, 2u);
  EXPECT_GE(sched.now() - before, cost::kRcConnectNs);
  EXPECT_EQ(mgr.healthy_count(kNode2, kTenant), 2u);
}

TEST_F(ConnectionTest, FailedQpRejectsNewPostsAndLeavesActiveSet) {
  mgr.establish(kNode2, kTenant, 1, nullptr);
  sched.run();
  post_receives(1);
  mgr.send(kNode2, kTenant, make_wr(1));
  sched.run();

  QueuePair& qp = rnic1.qp(QpId{(kNode1.value() << 20) | 1});
  ASSERT_EQ(qp.state(), QpState::kActive);
  ASSERT_EQ(rnic1.active_qps(), 1);
  qp.fail();
  EXPECT_EQ(qp.state(), QpState::kError);
  // fail() releases the RNIC-cache slot an active QP held.
  EXPECT_EQ(rnic1.active_qps(), 0);
  EXPECT_FALSE(qp.connected());
  EXPECT_THROW(qp.post_send(make_wr(2)), CheckFailure);
}

TEST_F(ConnectionTest, QpFailedDuringActivationReplaysDeferredSends) {
  mgr.establish(kNode2, kTenant, 1, nullptr);
  sched.run();
  post_receives(1);

  // The send parks behind the activation; the fault lands before the
  // activation completes, so the parked WR must be re-routed (through a
  // pool rebuild here — the pool has no siblings), not lost.
  mgr.send(kNode2, kTenant, make_wr(1));
  rnic1.qp(QpId{(kNode1.value() << 20) | 1}).fail();
  sched.run();

  EXPECT_EQ(rnic2.counters().recvs, 1u);
  EXPECT_GE(mgr.stats().reestablishments, 1u);
}

TEST_F(ConnectionTest, SecondFaultDuringRebuildRetriesWithBackoff) {
  mgr.establish(kNode2, kTenant, 1, nullptr);
  sched.run();
  post_receives(1);

  // First fault: the send finds no healthy QP and starts a rebuild.
  rnic1.qp(QpId{(kNode1.value() << 20) | 1}).fail();
  mgr.send(kNode2, kTenant, make_wr(1));
  // Second fault: kill the replacement while its handshake is in flight.
  rnic1.qp(QpId{(kNode1.value() << 20) | 2}).fail();
  sched.run();

  // The rebuild noticed the dead replacement, backed off, and retried —
  // the deferred WR still lands exactly once.
  EXPECT_GE(mgr.stats().rebuild_retries, 1u);
  EXPECT_EQ(rnic2.counters().recvs, 1u);
  EXPECT_GE(mgr.healthy_count(kNode2, kTenant), 1u);
}

}  // namespace
}  // namespace pd::rdma
