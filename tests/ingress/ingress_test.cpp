// End-to-end HTTP tests for the three cluster ingress designs (§4.1.3):
// client -> ingress -> chain -> back, with real HTTP bytes on both edges.
#include "ingress/palladium_ingress.hpp"
#include "ingress/proxy_ingress.hpp"

#include <gtest/gtest.h>

#include "runtime/function.hpp"
#include "workload/http_client.hpp"

namespace pd::ingress {
namespace {

constexpr NodeId kNode1{1};
constexpr NodeId kNode2{2};
constexpr TenantId kTenant{1};
constexpr FunctionId kFnA{1};
constexpr FunctionId kFnB{2};
constexpr std::uint32_t kChain = 1;

std::unique_ptr<runtime::Cluster> make_cluster(sim::Scheduler& sched,
                                               runtime::SystemKind sys) {
  runtime::ClusterConfig cfg;
  cfg.system = sys;
  cfg.cpu_cores_per_node = 8;
  auto cluster = std::make_unique<runtime::Cluster>(sched, cfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kFnA, "a", kTenant}, kNode1);
  cluster->deploy(runtime::FunctionSpec{kFnB, "b", kTenant}, kNode2);
  cluster->add_chain(runtime::Chain{kChain, "echo", kTenant, 128,
                                    {{kFnA, 10'000, 128},
                                     {kFnB, 15'000, 256},
                                     {kFnA, 10'000, 400}}});
  return cluster;
}

TEST(PalladiumIngressTest, HttpToRdmaRoundTrip) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, runtime::SystemKind::kPalladiumDne);
  PalladiumIngress::Config icfg;
  PalladiumIngress ing(*cluster, icfg);
  ing.expose_chain("/echo", kChain);
  ing.finish_setup();
  cluster->finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/echo";
  wcfg.body = "request-body";
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(4);
  sched.run_until(sched.now() + 2'000'000'000);
  wrk.stop();
  sched.run();

  EXPECT_GT(wrk.completed(), 100u);
  EXPECT_EQ(wrk.errors(), 0u);
  EXPECT_EQ(ing.responses(), wrk.completed());
  // Response body is the chain's final 400-byte payload.
  EXPECT_LT(wrk.latencies().quantile(0.5), 2'000'000);
}

TEST(PalladiumIngressTest, UnknownTargetGets404) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, runtime::SystemKind::kPalladiumDne);
  PalladiumIngress ing(*cluster, {});
  ing.expose_chain("/echo", kChain);
  ing.finish_setup();
  cluster->finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/nope";
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(1);
  sched.run_until(sched.now() + 200'000'000);
  wrk.stop();
  sched.run();
  EXPECT_GT(wrk.errors(), 0u);
  EXPECT_EQ(wrk.completed(), 0u);
}

class ProxyIngressKinds
    : public ::testing::TestWithParam<proto::StackKind> {};

TEST_P(ProxyIngressKinds, HttpProxyRoundTrip) {
  sim::Scheduler sched;
  auto cluster = make_cluster(sched, runtime::SystemKind::kSpright);
  ProxyIngress::Config icfg;
  icfg.stack = GetParam();
  icfg.cores = 2;
  ProxyIngress ing(*cluster, icfg);
  ing.expose_chain("/echo", kChain);
  ing.finish_setup();
  cluster->finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/echo";
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(4);
  sched.run_until(sched.now() + 2'000'000'000);
  wrk.stop();
  sched.run();

  EXPECT_GT(wrk.completed(), 50u);
  EXPECT_EQ(wrk.errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Stacks, ProxyIngressKinds,
                         ::testing::Values(proto::StackKind::kKernel,
                                           proto::StackKind::kFstack),
                         [](const auto& info) {
                           return info.param == proto::StackKind::kKernel
                                      ? "KIngress"
                                      : "FIngress";
                         });

TEST(IngressComparison, PalladiumBeatsProxiesOnSameWorkload) {
  // Shape check for Fig. 13: Palladium ingress > F-Ingress > K-Ingress in
  // RPS with one ingress core and many clients.
  auto run = [&](int variant) -> double {
    sim::Scheduler sched;
    auto cluster = make_cluster(sched, variant == 0
                                           ? runtime::SystemKind::kPalladiumDne
                                           : runtime::SystemKind::kSpright);
    std::unique_ptr<IngressFrontend> ing;
    PalladiumIngress* pal = nullptr;
    if (variant == 0) {
      PalladiumIngress::Config icfg;
      icfg.initial_workers = 1;
      auto p = std::make_unique<PalladiumIngress>(*cluster, icfg);
      pal = p.get();
      ing = std::move(p);
    } else {
      ProxyIngress::Config icfg;
      icfg.stack = variant == 1 ? proto::StackKind::kFstack
                                : proto::StackKind::kKernel;
      icfg.cores = 1;
      ing = std::make_unique<ProxyIngress>(*cluster, icfg);
    }
    ing->expose_chain("/echo", kChain);
    if (pal != nullptr) {
      pal->finish_setup();
    } else {
      static_cast<ProxyIngress*>(ing.get())->finish_setup();
    }
    cluster->finish_setup();

    workload::HttpLoadGen::Config wcfg;
    wcfg.target = "/echo";
    wcfg.client_cores = 16;
    workload::HttpLoadGen wrk(sched, *ing, wcfg);
    wrk.add_clients(32);
    const auto start = sched.now();
    sched.run_until(start + 4'000'000'000);
    wrk.stop();
    sched.run();
    return static_cast<double>(wrk.completed()) / 4.0;
  };

  const double palladium = run(0);
  const double f_ingress = run(1);
  const double k_ingress = run(2);
  EXPECT_GT(palladium, f_ingress);
  EXPECT_GT(f_ingress, k_ingress);
}

TEST(PalladiumIngressTest, AutoscalerAddsWorkersUnderLoad) {
  // A near-zero-compute chain so the single ingress worker, not the
  // functions, is the first bottleneck (else its utilization never
  // crosses the 60% scale-up threshold).
  sim::Scheduler sched;
  runtime::ClusterConfig ccfg;
  ccfg.system = runtime::SystemKind::kPalladiumDne;
  ccfg.cpu_cores_per_node = 8;
  ccfg.pool_buffers = 2048;
  auto cluster = std::make_unique<runtime::Cluster>(sched, ccfg);
  cluster->add_worker(kNode1);
  cluster->add_worker(kNode2);
  cluster->add_tenant(kTenant, 1);
  cluster->deploy(runtime::FunctionSpec{kFnA, "echo", kTenant}, kNode1);
  cluster->add_chain(runtime::Chain{kChain, "echo", kTenant, 64,
                                    {{kFnA, 1'000, 64}}});
  PalladiumIngress::Config icfg;
  icfg.initial_workers = 1;
  icfg.max_workers = 4;
  icfg.autoscale = true;
  PalladiumIngress ing(*cluster, icfg);
  ing.expose_chain("/echo", kChain);
  ing.finish_setup();
  cluster->finish_setup();

  workload::HttpLoadGen::Config wcfg;
  wcfg.target = "/echo";
  wcfg.client_cores = 32;
  workload::HttpLoadGen wrk(sched, ing, wcfg);
  wrk.add_clients(64);
  sched.run_until(sched.now() + 10'000'000'000);
  wrk.stop();
  sched.run();

  EXPECT_GT(ing.scale_events(), 0u);
  EXPECT_GT(ing.active_workers(), 1);
}

}  // namespace
}  // namespace pd::ingress
