#include "ipc/skmsg.hpp"

#include <gtest/gtest.h>

#include "ipc/channel.hpp"

namespace pd::ipc {
namespace {

mem::BufferDescriptor desc(std::uint32_t index) {
  return {PoolId{1}, index, 64, TenantId{1}};
}

TEST(DescriptorHop, DeliversWithLatencyAndCosts) {
  sim::Scheduler s;
  sim::Core tx(s, "tx"), rx(s, "rx");
  sim::TimePoint delivered_at = -1;
  DescriptorHop hop(s, {.sender_cost = 100, .receiver_cost = 200, .latency = 1000},
                    &tx, &rx, [&](const mem::BufferDescriptor&) {
                      delivered_at = s.now();
                    });
  hop.send(desc(0));
  s.run();
  EXPECT_EQ(delivered_at, 100 + 1000 + 200);
  EXPECT_EQ(hop.sent(), 1u);
  EXPECT_EQ(hop.delivered(), 1u);
  EXPECT_EQ(tx.busy_ns(), 100);
  EXPECT_EQ(rx.busy_ns(), 200);
}

TEST(DescriptorHop, NullCoresSkipCpuAccounting) {
  sim::Scheduler s;
  sim::TimePoint delivered_at = -1;
  DescriptorHop hop(s, {.sender_cost = 100, .receiver_cost = 200, .latency = 500},
                    nullptr, nullptr,
                    [&](const mem::BufferDescriptor&) { delivered_at = s.now(); });
  hop.send(desc(0));
  s.run();
  EXPECT_EQ(delivered_at, 500);  // only the in-flight latency
}

TEST(DescriptorHop, ReceiverQueueingSerializes) {
  sim::Scheduler s;
  sim::Core rx(s, "rx");
  std::vector<sim::TimePoint> deliveries;
  DescriptorHop hop(s, {.receiver_cost = 1000, .latency = 0}, nullptr, &rx,
                    [&](const mem::BufferDescriptor&) {
                      deliveries.push_back(s.now());
                    });
  hop.send(desc(0));
  hop.send(desc(1));
  hop.send(desc(2));
  s.run();
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0], 1000);
  EXPECT_EQ(deliveries[1], 2000);  // second waits behind the first
  EXPECT_EQ(deliveries[2], 3000);
}

TEST(SockMap, RegisterSendReceive) {
  sim::Scheduler s;
  sim::Core tx(s, "fn-a"), rx(s, "fn-b");
  SockMap map(s);
  std::vector<mem::BufferDescriptor> got;
  map.register_socket(FunctionId{2}, rx,
                      [&](const mem::BufferDescriptor& d) { got.push_back(d); });
  map.send(FunctionId{2}, desc(5), &tx);
  s.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].index, 5u);
  EXPECT_EQ(map.messages(), 1u);
  // The SK_MSG program ran on the sender core; the wakeup on the receiver.
  EXPECT_EQ(tx.busy_ns(), cost::kSkMsgSendNs);
  EXPECT_EQ(rx.busy_ns(), cost::kSkMsgWakeupNs);
}

TEST(SockMap, SendToUnregisteredFunctionFails) {
  sim::Scheduler s;
  SockMap map(s);
  EXPECT_THROW(map.send(FunctionId{9}, desc(0), nullptr), CheckFailure);
}

TEST(SockMap, DuplicateRegistrationRejected) {
  sim::Scheduler s;
  sim::Core rx(s, "rx");
  SockMap map(s);
  map.register_socket(FunctionId{1}, rx, [](const mem::BufferDescriptor&) {});
  EXPECT_THROW(
      map.register_socket(FunctionId{1}, rx, [](const mem::BufferDescriptor&) {}),
      CheckFailure);
}

TEST(SockMap, UnregisterRemovesSocket) {
  sim::Scheduler s;
  sim::Core rx(s, "rx");
  SockMap map(s);
  map.register_socket(FunctionId{1}, rx, [](const mem::BufferDescriptor&) {});
  map.unregister_socket(FunctionId{1});
  EXPECT_FALSE(map.has_socket(FunctionId{1}));
  EXPECT_THROW(map.unregister_socket(FunctionId{1}), CheckFailure);
}

TEST(SockMap, ManyMessagesSaturateReceiverCore) {
  // Interrupt-driven wakeups serialize on the receiving core — the effect
  // that throttles the CPU-resident network engine in §4.3.
  sim::Scheduler s;
  sim::Core rx(s, "cne");
  SockMap map(s);
  int received = 0;
  map.register_socket(FunctionId{1}, rx,
                      [&](const mem::BufferDescriptor&) { ++received; });
  constexpr int kMsgs = 1000;
  for (int i = 0; i < kMsgs; ++i) map.send(FunctionId{1}, desc(0), nullptr);
  s.run();
  EXPECT_EQ(received, kMsgs);
  // Under the resulting backlog, per-event interrupt cost inflates
  // (receive-livelock regime) — strictly more than the uncontended cost.
  EXPECT_GT(rx.busy_ns(), kMsgs * cost::kSkMsgWakeupNs);
  EXPECT_LE(rx.busy_ns(), 5 * kMsgs * cost::kSkMsgWakeupNs);
  EXPECT_GE(s.now(), kMsgs * cost::kSkMsgWakeupNs);
}

}  // namespace
}  // namespace pd::ipc
