#include "ipc/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pd::ipc {
namespace {

TEST(SpscRing, PushPopSingle) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(42));
  EXPECT_EQ(ring.size(), 1u);
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopEmptyReturnsNullopt) {
  SpscRing<int> ring(4);
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, FillToCapacityThenReject) {
  SpscRing<int> ring(4);
  std::size_t pushed = 0;
  while (ring.try_push(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, ring.capacity());
  EXPECT_GE(pushed, 4u);
  EXPECT_FALSE(ring.try_push(999));
  ring.try_pop();
  EXPECT_TRUE(ring.try_push(999));  // freed one slot
}

TEST(SpscRing, FifoOrderPreserved) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ring.try_push(i));
  for (int i = 0; i < 10; ++i) {
    auto v = ring.try_pop();
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 7u);  // 8-slot ring, one slot reserved
}

TEST(SpscRing, MoveOnlyTypes) {
  SpscRing<std::unique_ptr<int>> ring(4);
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  auto v = ring.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(SpscRing, WrapAroundManyTimes) {
  SpscRing<int> ring(4);
  for (int round = 0; round < 1000; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    auto v = ring.try_pop();
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, round);
  }
}

// The real concurrency property: one producer thread, one consumer thread,
// no losses, no duplicates, order preserved — without locks.
TEST(SpscRing, ConcurrentProducerConsumerLossless) {
  constexpr int kCount = 20000;
  SpscRing<int> ring(1024);
  std::vector<int> received;
  received.reserve(kCount);

  std::thread consumer([&] {
    while (received.size() < kCount) {
      if (auto v = ring.try_pop()) received.push_back(*v);
      else std::this_thread::yield();
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) {
        std::this_thread::yield();  // ring full
      }
    }
  });
  producer.join();
  consumer.join();

  ASSERT_EQ(received.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) ASSERT_EQ(received[static_cast<size_t>(i)], i);
}

class SpscRingSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscRingSizes, StressAtVariousCapacities) {
  const std::size_t cap = GetParam();
  SpscRing<std::size_t> ring(cap);
  constexpr std::size_t kCount = 5000;
  std::size_t sum = 0;
  std::thread consumer([&] {
    std::size_t got = 0;
    while (got < kCount) {
      if (auto v = ring.try_pop()) {
        sum += *v;
        ++got;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    while (!ring.try_push(i)) {
      std::this_thread::yield();
    }
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpscRingSizes,
                         ::testing::Values(1, 2, 3, 16, 255, 4096));

}  // namespace
}  // namespace pd::ipc
