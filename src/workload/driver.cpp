#include "workload/driver.hpp"

#include <algorithm>

#include "core/message.hpp"
#include "core/trace_hooks.hpp"

namespace pd::workload {
namespace {

constexpr sim::Duration kPoolBackoffNs = 20'000;  // retry on pool pressure
constexpr sim::Duration kSeriesBucket = 1'000'000'000;  // 1 s

}  // namespace

// ---------------------------------------------------------------------------
// ChainDriver
// ---------------------------------------------------------------------------

ChainDriver::ChainDriver(runtime::Cluster& cluster, FunctionId entry,
                         NodeId node, std::uint32_t chain_id)
    : cluster_(cluster),
      entry_(entry),
      node_(node),
      chain_id_(chain_id),
      core_(cluster.worker(node).assign_core()),
      completions_(kSeriesBucket, "completions") {
  const TenantId tenant = cluster_.chains().by_id(chain_id_).tenant;
  cluster_.register_entry(entry_, tenant, node_, core_,
                          [this](const mem::BufferDescriptor& d) {
                            on_response(d);
                          });
}

void ChainDriver::start(int clients) {
  PD_CHECK(clients > 0, "need at least one client");
  running_ = true;
  // Stagger connection start-up (wrk ramps its connections too); perfectly
  // simultaneous starts would phase-lock the closed loops into convoys.
  for (int i = 0; i < clients; ++i) {
    cluster_.scheduler().schedule_after(static_cast<sim::Duration>(i) * 13'000,
                                        [this] { send_one(); });
  }
}

void ChainDriver::send_one() {
  if (!running_) return;
  const std::uint64_t id = next_request_++;
  if (!cluster_.inject_request(entry_, node_, chain_id_, id, &core_)) {
    // Pool pressure: back off and retry (the client connection stalls; the
    // skipped id is simply never used).
    cluster_.scheduler().schedule_after(kPoolBackoffNs, [this] { send_one(); });
    return;
  }
  inflight_.emplace(id, cluster_.scheduler().now());
}

void ChainDriver::on_response(const mem::BufferDescriptor& d) {
  auto& pool = cluster_.worker(node_).memory().by_pool(d.pool).pool();
  const core::MessageHeader h =
      core::read_header(pool.access(d, mem::actor_function(entry_)));
  PD_CHECK(h.is_response(), "driver received a non-response");
  core::trace_finish(h, cluster_.scheduler().now());
  pool.release(d, mem::actor_function(entry_));

  auto it = inflight_.find(h.request_id);
  if (it == inflight_.end()) return;  // duplicate response (retransmit race)
  const sim::TimePoint start = it->second;
  inflight_.erase(it);

  const sim::TimePoint now = cluster_.scheduler().now();
  if (h.is_error()) {
    // Explicit failure from the data plane (fault injection / shedding):
    // the request is accounted as failed, and the closed loop moves on.
    ++failed_;
  } else {
    latencies_.record(now - start);
    completions_.increment(now);
    ++completed_;
    if (hook_) hook_(h.request_id, now - start);
  }
  send_one();  // closed loop: immediately issue the next request
}

double ChainDriver::rps(sim::TimePoint from, sim::TimePoint until) const {
  PD_CHECK(until > from, "empty measurement window");
  double total = 0;
  const auto first = static_cast<std::size_t>(from / completions_.bucket_width());
  const auto last = static_cast<std::size_t>(until / completions_.bucket_width());
  for (std::size_t i = first; i < last; ++i) total += completions_.bucket_value(i);
  return total / sim::to_sec(until - from);
}

// ---------------------------------------------------------------------------
// BurstyLoad
// ---------------------------------------------------------------------------

BurstyLoad::BurstyLoad(runtime::Cluster& cluster, FunctionId entry, NodeId node,
                       std::uint32_t chain_id, Schedule schedule,
                       std::uint64_t seed)
    : cluster_(cluster),
      entry_(entry),
      node_(node),
      chain_id_(chain_id),
      core_(cluster.worker(node).assign_core()),
      schedule_(schedule),
      rng_(seed),
      completions_(kSeriesBucket, "tenant-completions") {
  PD_CHECK(schedule_.rate_rps > 0, "bursty load needs a positive rate");
  const TenantId tenant = cluster_.chains().by_id(chain_id_).tenant;
  cluster_.register_entry(entry_, tenant, node_, core_,
                          [this](const mem::BufferDescriptor& d) {
                            on_response(d);
                          });
}

void BurstyLoad::start() {
  // Setup (RC connection establishment) may already have advanced the
  // clock past the schedule's nominal start.
  const sim::TimePoint at =
      std::max(schedule_.start, cluster_.scheduler().now());
  cluster_.scheduler().schedule_at(at, [this] { arrival(); });
}

double BurstyLoad::current_rate() const {
  double rate = schedule_.rate_rps;
  if (schedule_.surge_period > 0) {
    const auto phase = cluster_.scheduler().now() % schedule_.surge_period;
    if (phase < schedule_.surge_on) rate *= schedule_.surge_factor;
  }
  return rate;
}

void BurstyLoad::arrival() {
  const sim::TimePoint now = cluster_.scheduler().now();
  if (schedule_.stop != 0 && now >= schedule_.stop) return;

  const std::uint64_t id = next_request_++;
  if (cluster_.inject_request(entry_, node_, chain_id_, id, &core_)) {
    // Open loop: don't wait for the response.
  } else {
    ++dropped_;  // overload: pool exhausted, request lost
  }

  const double mean_gap_ns = 1e9 / current_rate();
  const auto gap = static_cast<sim::Duration>(rng_.exponential(mean_gap_ns));
  cluster_.scheduler().schedule_after(std::max<sim::Duration>(gap, 1),
                                      [this] { arrival(); });
}

void BurstyLoad::on_response(const mem::BufferDescriptor& d) {
  auto& pool = cluster_.worker(node_).memory().by_pool(d.pool).pool();
  if (obs::hub() != nullptr) {
    const core::MessageHeader h =
        core::read_header(pool.access(d, mem::actor_function(entry_)));
    core::trace_finish(h, cluster_.scheduler().now());
  }
  pool.release(d, mem::actor_function(entry_));
  completions_.increment(cluster_.scheduler().now());
  ++completed_;
}

}  // namespace pd::workload
