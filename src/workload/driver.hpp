// Load drivers that inject requests directly into the serverless data
// plane (no HTTP ingress): the wrk-analog closed-loop driver used by the
// microbenchmarks and the bursty open-loop tenants of Fig. 15.
#pragma once

#include <functional>
#include <unordered_map>

#include "runtime/cluster.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"

namespace pd::workload {

/// Closed-loop driver: `clients` logical connections, each with exactly
/// one outstanding request into one chain (wrk semantics). Records
/// per-request latency and a completions time series.
class ChainDriver {
 public:
  /// `entry`: a fresh pseudo-function id for this driver; it is registered
  /// on `node` with its own core.
  ChainDriver(runtime::Cluster& cluster, FunctionId entry, NodeId node,
              std::uint32_t chain_id);

  /// Launch the closed loop. Call after Cluster::finish_setup().
  void start(int clients);
  /// Stop issuing new requests (in-flight ones still complete).
  void stop() { running_ = false; }

  [[nodiscard]] sim::LatencyHistogram& latencies() { return latencies_; }
  [[nodiscard]] sim::TimeSeries& completions() { return completions_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  /// Requests that came back as explicit error responses (data-plane
  /// failure under fault injection / shedding). completed + failed
  /// accounts for every finished request.
  [[nodiscard]] std::uint64_t failed() const { return failed_; }
  [[nodiscard]] sim::Core& core() { return core_; }

  /// Optional per-completion callback (request id, RTT) — used by harnesses
  /// that need raw completion streams (e.g. burstiness analysis).
  void set_completion_hook(
      std::function<void(std::uint64_t, sim::Duration)> hook) {
    hook_ = std::move(hook);
  }

  /// Completed requests per second over the measured window.
  [[nodiscard]] double rps(sim::TimePoint from, sim::TimePoint until) const;

 private:
  void send_one();
  void on_response(const mem::BufferDescriptor& d);

  runtime::Cluster& cluster_;
  FunctionId entry_;
  NodeId node_;
  std::uint32_t chain_id_;
  sim::Core& core_;
  bool running_ = false;
  std::uint64_t next_request_ = 1;
  std::unordered_map<std::uint64_t, sim::TimePoint> inflight_;
  sim::LatencyHistogram latencies_;
  sim::TimeSeries completions_;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::function<void(std::uint64_t, sim::Duration)> hook_;
};

/// Open-loop driver with an on/off schedule: tenant load for Fig. 15.
/// Issues requests at `rate_rps` (Poisson arrivals) while active; the
/// completions series shows the achieved per-tenant throughput.
class BurstyLoad {
 public:
  struct Schedule {
    sim::TimePoint start = 0;
    sim::TimePoint stop = 0;  ///< 0 = never stops
    double rate_rps = 0;
    /// Optional surge modulation: rate multiplies by `surge_factor` for
    /// `surge_on` out of every `surge_period` ns.
    double surge_factor = 1.0;
    sim::Duration surge_period = 0;
    sim::Duration surge_on = 0;
  };

  BurstyLoad(runtime::Cluster& cluster, FunctionId entry, NodeId node,
             std::uint32_t chain_id, Schedule schedule, std::uint64_t seed);

  void start();

  [[nodiscard]] sim::TimeSeries& completions() { return completions_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  void arrival();
  [[nodiscard]] double current_rate() const;
  void on_response(const mem::BufferDescriptor& d);

  runtime::Cluster& cluster_;
  FunctionId entry_;
  NodeId node_;
  std::uint32_t chain_id_;
  sim::Core& core_;
  Schedule schedule_;
  sim::Rng rng_;
  std::uint64_t next_request_ = 1;
  sim::TimeSeries completions_;
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace pd::workload
