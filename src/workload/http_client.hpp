// wrk-analog HTTP load generator (§4): closed-loop clients on the client
// node driving any IngressFrontend over modeled kernel-TCP connections.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ingress/ingress.hpp"
#include "proto/http.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace pd::workload {

class HttpLoadGen {
 public:
  struct Config {
    NodeId client_node{100};
    std::string target = "/";
    std::string body = "{}";
    /// Cores available to client processes (wrk saturates one per client
    /// in Fig. 14; several clients can share a core otherwise).
    int client_cores = 4;
    /// Pause before re-issuing after a non-200 response (0 = immediately,
    /// the pre-overload behaviour). Overload scenarios set this so a tenant
    /// being shed at the gateway retries at a bounded rate instead of
    /// busy-looping at TCP round-trip speed.
    sim::Duration error_backoff = 0;
  };

  HttpLoadGen(sim::Scheduler& sched, ingress::IngressFrontend& ingress,
              Config config);

  /// Attach `n` more clients and start their request loops.
  void add_clients(int n);
  /// Stop issuing new requests.
  void stop() { running_ = false; }

  /// Step the offered load without attaching/detaching connections: only
  /// the first `n` clients keep their closed loops running; the rest park
  /// at their next turn (their in-flight request still completes, so the
  /// zero-loss invariant holds through every step). Raising `n` re-issues
  /// the parked clients' loops immediately. Drives the flash-crowd and
  /// diurnal overload scenarios.
  void set_active_clients(int n);
  [[nodiscard]] int active_clients() const;

  [[nodiscard]] sim::LatencyHistogram& latencies() { return latencies_; }
  [[nodiscard]] sim::TimeSeries& completions() { return completions_; }
  /// Requests issued (the closed loop sends one per response received, so
  /// after a full drain sent == completed + errors — the zero-loss check).
  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t errors() const { return errors_; }
  [[nodiscard]] int clients() const { return static_cast<int>(clients_.size()); }

  [[nodiscard]] double rps(sim::TimePoint from, sim::TimePoint until) const;

 private:
  struct Client {
    int conn = -1;
    sim::TimePoint sent_at = 0;
    bool parked = false;  ///< loop paused by set_active_clients
  };

  void send_request(int idx);
  void on_response(int idx, std::string_view bytes);

  sim::Scheduler& sched_;
  ingress::IngressFrontend& ingress_;
  Config config_;
  std::unique_ptr<sim::CoreSet> cores_;
  std::vector<Client> clients_;
  bool running_ = true;
  /// Clients with running loops (indices < active_); SIZE_MAX = all.
  std::size_t active_ = static_cast<std::size_t>(-1);
  sim::LatencyHistogram latencies_;
  sim::TimeSeries completions_;
  std::uint64_t sent_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace pd::workload
