#include "workload/http_client.hpp"

#include <algorithm>

namespace pd::workload {
namespace {
constexpr sim::Duration kSeriesBucket = 1'000'000'000;  // 1 s
}

HttpLoadGen::HttpLoadGen(sim::Scheduler& sched,
                         ingress::IngressFrontend& ingress, Config config)
    : sched_(sched),
      ingress_(ingress),
      config_(std::move(config)),
      cores_(std::make_unique<sim::CoreSet>(
          sched, "client/cpu", static_cast<std::size_t>(config_.client_cores))),
      completions_(kSeriesBucket, "client-completions") {
  PD_CHECK(config_.client_cores >= 1, "client needs cores");
}

void HttpLoadGen::add_clients(int n) {
  for (int i = 0; i < n; ++i) {
    const int idx = static_cast<int>(clients_.size());
    clients_.push_back(Client{});
    sim::Core& core =
        cores_->core(static_cast<std::size_t>(idx) % cores_->size());
    clients_[static_cast<std::size_t>(idx)].conn = ingress_.attach_client(
        config_.client_node, core,
        [this, idx](std::string_view bytes) { on_response(idx, bytes); });
    // Stagger first requests to avoid deterministic convoy phase-lock.
    sched_.schedule_after(static_cast<sim::Duration>(i % 64) * 17'000,
                          [this, idx] { send_request(idx); });
  }
}

void HttpLoadGen::set_active_clients(int n) {
  PD_CHECK(n >= 0, "negative active-client count");
  const std::size_t prev = std::min(active_, clients_.size());
  active_ = static_cast<std::size_t>(n);
  // Wake clients re-entering the active set; they parked with no request
  // in flight, so re-issuing here starts exactly one loop each.
  const std::size_t until = std::min(active_, clients_.size());
  for (std::size_t i = prev; i < until; ++i) {
    if (!clients_[i].parked) continue;
    clients_[i].parked = false;
    send_request(static_cast<int>(i));
  }
}

int HttpLoadGen::active_clients() const {
  return static_cast<int>(std::min(active_, clients_.size()));
}

void HttpLoadGen::send_request(int idx) {
  if (!running_) return;
  Client& c = clients_[static_cast<std::size_t>(idx)];
  if (static_cast<std::size_t>(idx) >= active_) {
    c.parked = true;  // load step: pause this loop until re-activated
    return;
  }
  proto::HttpRequest req;
  req.method = "POST";
  req.target = config_.target;
  req.headers.add("Host", "palladium.cluster");
  req.body = config_.body;
  c.sent_at = sched_.now();
  ++sent_;
  ingress_.client_send(c.conn, proto::serialize(req));
}

void HttpLoadGen::on_response(int idx, std::string_view bytes) {
  Client& c = clients_[static_cast<std::size_t>(idx)];
  proto::HttpResponseParser parser;
  auto [status, consumed] = parser.feed(bytes);
  PD_CHECK(status == proto::ParseStatus::kComplete,
           "client received malformed response");
  if (parser.message().status != 200) {
    ++errors_;
    if (config_.error_backoff > 0) {
      sched_.schedule_after(config_.error_backoff,
                            [this, idx] { send_request(idx); });
      return;
    }
  } else {
    latencies_.record(sched_.now() - c.sent_at);
    completions_.increment(sched_.now());
    ++completed_;
  }
  send_request(idx);  // closed loop
}

double HttpLoadGen::rps(sim::TimePoint from, sim::TimePoint until) const {
  PD_CHECK(until > from, "empty window");
  double total = 0;
  const auto first = static_cast<std::size_t>(from / completions_.bucket_width());
  const auto last = static_cast<std::size_t>(until / completions_.bucket_width());
  for (std::size_t i = first; i < last; ++i) total += completions_.bucket_value(i);
  return total / sim::to_sec(until - from);
}

}  // namespace pd::workload
