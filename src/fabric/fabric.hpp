// Simulated switched fabric: full-duplex node ports connected through a
// cut-through switch (the testbed's 200 Gbps network, §4).
//
// Serialization happens on the sender's egress link and the receiver's
// ingress link (so incast contention shows up where it would on hardware);
// propagation + switch hop latency are constants from the cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "proto/cost_model.hpp"
#include "sim/scheduler.hpp"

namespace pd::fabric {

/// A unidirectional serializing link: frames queue behind each other at
/// `bandwidth` and arrive `propagation` later.
class Link {
 public:
  Link(sim::Scheduler& sched, BitsPerSec bandwidth, sim::Duration propagation);

  /// Transmit `bytes`; `delivered` fires when the last bit exits the far
  /// end of the link.
  void transmit(Bytes bytes, std::function<void()> delivered);

  [[nodiscard]] Bytes bytes_sent() const { return bytes_sent_; }
  /// Backlog currently queued on the link, in ns of serialization time.
  [[nodiscard]] sim::Duration backlog() const;

 private:
  sim::Scheduler& sched_;
  BitsPerSec bandwidth_;
  sim::Duration propagation_;
  sim::TimePoint busy_until_ = 0;
  Bytes bytes_sent_ = 0;
};

/// Per-frame wire overhead (Ethernet + IB/RoCE headers).
inline constexpr Bytes kWireOverheadBytes = 90;

class Switch {
 public:
  explicit Switch(sim::Scheduler& sched,
                  BitsPerSec port_bandwidth = cost::kFabricBandwidthBps)
      : sched_(sched), port_bandwidth_(port_bandwidth) {}

  /// Attach a node; creates its full-duplex port.
  void attach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const;

  /// Deliver `bytes` (payload; wire overhead added internally) from one
  /// attached node to another. `delivered` fires at the receiver.
  void send(NodeId from, NodeId to, Bytes bytes,
            std::function<void()> delivered);

  [[nodiscard]] std::uint64_t frames() const { return frames_; }

 private:
  struct Port {
    std::unique_ptr<Link> tx;
    std::unique_ptr<Link> rx;
  };

  Port& port(NodeId node);

  sim::Scheduler& sched_;
  BitsPerSec port_bandwidth_;
  std::unordered_map<NodeId, Port> ports_;
  std::uint64_t frames_ = 0;
};

}  // namespace pd::fabric
