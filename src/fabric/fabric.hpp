// Simulated switched fabric: full-duplex node ports connected through a
// cut-through switch (the testbed's 200 Gbps network, §4).
//
// Serialization happens on the sender's egress link and the receiver's
// ingress link (so incast contention shows up where it would on hardware);
// propagation + switch hop latency are constants from the cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "proto/cost_model.hpp"
#include "sim/event_fn.hpp"
#include "sim/fifo_ring.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace pd::fabric {

/// A unidirectional serializing link: frames queue behind each other at
/// `bandwidth` and arrive `propagation` later.
///
/// Fault hooks (driven by the chaos controller): a link can be
/// administratively down (every frame dropped) or lossy (each frame
/// independently dropped with probability `loss`, drawn from the owning
/// switch's seeded fault stream so runs replay bit-identically).
class Link {
 public:
  Link(sim::Scheduler& sched, BitsPerSec bandwidth, sim::Duration propagation);

  /// Transmit `bytes`; `delivered` fires when the last bit exits the far
  /// end of the link. Dropped frames (down/lossy link) never fire
  /// `delivered` — loss is silent at this layer, exactly like a wire.
  /// Returns false when the frame was dropped (callback destroyed unfired).
  bool transmit(Bytes bytes, sim::EventFn delivered);

  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool down() const { return down_; }
  void set_loss(double p, sim::Rng* rng) {
    loss_ = p;
    fault_rng_ = rng;
  }

  [[nodiscard]] Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }
  /// Backlog currently queued on the link, in ns of serialization time.
  [[nodiscard]] sim::Duration backlog() const;

 private:
  sim::Scheduler& sched_;
  BitsPerSec bandwidth_;
  sim::Duration propagation_;
  sim::TimePoint busy_until_ = 0;
  Bytes bytes_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  bool down_ = false;
  double loss_ = 0.0;
  sim::Rng* fault_rng_ = nullptr;  ///< non-null only while loss_ > 0
};

/// Per-frame wire overhead (Ethernet + IB/RoCE headers).
inline constexpr Bytes kWireOverheadBytes = 90;

class Switch {
 public:
  explicit Switch(sim::Scheduler& sched,
                  BitsPerSec port_bandwidth = cost::kFabricBandwidthBps)
      : sched_(sched), port_bandwidth_(port_bandwidth) {}

  /// Attach a node; creates its full-duplex port.
  void attach(NodeId node);
  [[nodiscard]] bool attached(NodeId node) const;

  /// Deliver `bytes` (payload; wire overhead added internally) from one
  /// attached node to another. `delivered` fires at the receiver.
  void send(NodeId from, NodeId to, Bytes bytes, sim::EventFn delivered);

  // --- fault hooks ----------------------------------------------------------

  /// Take a node's full-duplex port down (both directions) or bring it
  /// back. While down every frame to or from the node is dropped.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node);

  /// Per-frame loss probability on a node's port (both directions).
  /// Draws come from the switch's seeded fault stream; reseed with
  /// `set_fault_seed` before arming loss for reproducible plans.
  void set_node_loss(NodeId node, double p);

  /// Reseed the fault stream used for loss draws.
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = sim::Rng(seed); }

  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  /// Frames dropped by down/lossy ports, summed over all links.
  [[nodiscard]] std::uint64_t frames_dropped() const;

 private:
  struct Port {
    std::unique_ptr<Link> tx;
    std::unique_ptr<Link> rx;
    /// Delivery callbacks for frames in flight from this port, FIFO. The
    /// egress link and the constant switch hop preserve per-port order, so
    /// the relay events need only capture `this` + port pointers (staying
    /// inside EventFn's inline buffer) and pop their callback here.
    sim::FifoRing<sim::EventFn> in_flight;
  };

  Port& port(NodeId node);

  sim::Scheduler& sched_;
  BitsPerSec port_bandwidth_;
  std::unordered_map<NodeId, Port> ports_;
  std::uint64_t frames_ = 0;
  sim::Rng fault_rng_{0xFA17ED5EEDULL};
};

}  // namespace pd::fabric
