// Simulated switched fabric: full-duplex node ports connected through a
// cut-through switch (the testbed's 200 Gbps network, §4).
//
// Serialization happens on the sender's egress link and the receiver's
// ingress link (so incast contention shows up where it would on hardware);
// propagation + switch hop latency are constants from the cost model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "fabric/topology.hpp"
#include "proto/cost_model.hpp"
#include "sim/event_fn.hpp"
#include "sim/fifo_ring.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace pd::fabric {

/// A unidirectional serializing link: frames queue behind each other at
/// `bandwidth` and arrive `propagation` later.
///
/// Fault hooks (driven by the chaos controller): a link can be
/// administratively down (every frame dropped) or lossy (each frame
/// independently dropped with probability `loss`, drawn from the owning
/// switch's seeded fault stream so runs replay bit-identically).
class Link {
 public:
  Link(sim::Scheduler& sched, BitsPerSec bandwidth, sim::Duration propagation);

  /// Transmit `bytes`; `delivered` fires when the last bit exits the far
  /// end of the link. Dropped frames (down/lossy link) never fire
  /// `delivered` — loss is silent at this layer, exactly like a wire.
  /// Returns false when the frame was dropped (callback destroyed unfired).
  bool transmit(Bytes bytes, sim::EventFn delivered);

  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool down() const { return down_; }
  void set_loss(double p, sim::Rng* rng) {
    loss_ = p;
    fault_rng_ = rng;
  }

  /// Absolute time at which a frame enqueued right now would exit the far
  /// end (serialization queue + transfer + propagation). Pure query: the
  /// sharded fabric uses it to learn the cross-shard arrival time at send
  /// time, before the matching transmit() consumes queue capacity.
  [[nodiscard]] sim::TimePoint delivery_time(Bytes bytes) const {
    return std::max(busy_until_, sched_.now()) +
           sim::transfer_time(bytes, bandwidth_) + propagation_;
  }

  [[nodiscard]] Bytes bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }
  /// Backlog currently queued on the link, in ns of serialization time.
  [[nodiscard]] sim::Duration backlog() const;

 private:
  sim::Scheduler& sched_;
  BitsPerSec bandwidth_;
  sim::Duration propagation_;
  sim::TimePoint busy_until_ = 0;
  Bytes bytes_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  bool down_ = false;
  double loss_ = 0.0;
  sim::Rng* fault_rng_ = nullptr;  ///< non-null only while loss_ > 0
};

/// Per-frame wire overhead (Ethernet + IB/RoCE headers).
inline constexpr Bytes kWireOverheadBytes = 90;

/// Minimum latency between an event on one node and its earliest possible
/// effect on another, through this fabric: egress serialization (>= 1 ns by
/// transfer_time's rounding) + propagation to the switch + the switch hop.
/// This is the conservative lookahead the parallel simulation runs on; the
/// receiver-side serialization and remaining propagation only add to it.
[[nodiscard]] constexpr sim::Duration cross_node_lookahead() {
  return 1 + cost::kFabricPropagationNs / 2 + cost::kSwitchLatencyNs;
}

class Switch {
 public:
  explicit Switch(sim::Scheduler& sched,
                  BitsPerSec port_bandwidth = cost::kFabricBandwidthBps)
      : sched_(sched), port_bandwidth_(port_bandwidth) {}

  /// Attach a node; creates its full-duplex port.
  void attach(NodeId node);
  /// Shard-aware attach: the port's links (and their events) belong to
  /// `sched` — the scheduler shard owning the node. With the default
  /// overload every port shares the switch's scheduler (legacy mode).
  void attach(NodeId node, sim::Scheduler& sched);
  [[nodiscard]] bool attached(NodeId node) const;

  /// Cross-shard delivery hook for the parallel simulation: posts `fn` to
  /// the shard owning `dst` at absolute time `t`. Installing it switches
  /// send() to the sharded path whenever the two ports live on different
  /// schedulers; port state stays owner-shard-local throughout.
  using RemotePost =
      std::function<void(NodeId dst, sim::TimePoint t, sim::EventFn fn)>;
  void set_remote_post(RemotePost post) { remote_post_ = std::move(post); }
  [[nodiscard]] bool sharded() const { return remote_post_ != nullptr; }

  /// Multi-switch topology (ISSUE 9). Not owned; must outlive the switch.
  /// Null (the default) keeps the flat single-switch fabric byte-identical
  /// to pre-topology trees. Cross-leaf frames pay the topology's extra
  /// path cost (spine hops + oversubscribed uplink serialization) — a pure
  /// per-pair function, so port state stays owner-shard-local.
  void set_topology(const Topology* topo) { topo_ = topo; }
  [[nodiscard]] const Topology* topology() const { return topo_; }

  /// Minimum latency from an event on `from` to its earliest possible
  /// effect on `to` through this fabric: cross_node_lookahead() plus the
  /// topology's minimum extra path cost for the pair. The per-shard-pair
  /// lookahead matrix of the parallel simulation is the floor of this
  /// over the nodes each shard hosts (DESIGN.md §15).
  [[nodiscard]] sim::Duration min_path_latency(NodeId from, NodeId to) const {
    return cross_node_lookahead() +
           (topo_ != nullptr ? topo_->min_extra_latency(from, to) : 0);
  }

  /// Deliver `bytes` (payload; wire overhead added internally) from one
  /// attached node to another. `delivered` fires at the receiver.
  void send(NodeId from, NodeId to, Bytes bytes, sim::EventFn delivered);

  // --- fault hooks ----------------------------------------------------------

  /// Take a node's full-duplex port down (both directions) or bring it
  /// back. While down every frame to or from the node is dropped.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node);

  /// Per-frame loss probability on a node's port (both directions).
  /// Draws come from the switch's seeded fault stream; reseed with
  /// `set_fault_seed` before arming loss for reproducible plans.
  void set_node_loss(NodeId node, double p);

  /// Reseed the fault stream used for loss draws. In sharded mode every
  /// port also gets a fresh per-port stream derived from (seed, node), so
  /// draws stay owner-shard-local yet replay identically for a given seed.
  void set_fault_seed(std::uint64_t seed);

  [[nodiscard]] std::uint64_t frames() const;
  /// Frames dropped by down/lossy ports, summed over all links.
  [[nodiscard]] std::uint64_t frames_dropped() const;

 private:
  struct Port {
    NodeId node{};
    /// Scheduler shard owning this port; all of the port's state (links,
    /// in_flight, rng, frames) is only ever touched from it.
    sim::Scheduler* sched = nullptr;
    std::unique_ptr<Link> tx;
    std::unique_ptr<Link> rx;
    /// Delivery callbacks for frames in flight from this port, FIFO. The
    /// egress link and the constant switch hop preserve per-port order, so
    /// the relay events need only capture `this` + port pointers (staying
    /// inside EventFn's inline buffer) and pop their callback here.
    sim::FifoRing<sim::EventFn> in_flight;
    /// Per-port loss-draw stream (sharded mode only; legacy mode draws
    /// from the switch-wide fault_rng_ in global event order).
    sim::Rng rng{0};
    std::uint64_t frames = 0;  ///< egress frames (sharded mode)
    /// Resource-ledger names, e.g. "fabric/node1/tx" (cached: the ledger
    /// charge sites run per frame).
    std::string tx_res;
    std::string rx_res;
  };

  Port& port(NodeId node);
  [[nodiscard]] sim::Rng port_fault_stream(NodeId node) const;
  /// Resource-ledger charges (ISSUE 10): serialization occupancy + queue
  /// wait + wire bytes on a port link, attributed to the tenant carried by
  /// the sender's profile frame. `backlog` is the link's queue depth read
  /// *before* the transmit that this frame was accepted by. The egress
  /// variant also charges the oversubscribed spine-uplink serialization
  /// for cross-leaf frames. No-ops without an enabled ledger.
  void charge_tx(const Port& src, NodeId to, Bytes wire_bytes,
                 sim::Duration backlog, std::int64_t tenant);
  void charge_rx(const Port& dst, Bytes wire_bytes, sim::Duration backlog,
                 std::int64_t tenant);

  sim::Scheduler& sched_;
  BitsPerSec port_bandwidth_;
  std::unordered_map<NodeId, Port> ports_;
  std::uint64_t frames_ = 0;
  std::uint64_t fault_seed_ = 0xFA17ED5EEDULL;
  sim::Rng fault_rng_{0xFA17ED5EEDULL};
  RemotePost remote_post_;
  const Topology* topo_ = nullptr;
};

}  // namespace pd::fabric
