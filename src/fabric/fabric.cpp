#include "fabric/fabric.hpp"

#include <algorithm>
#include <string>

#include "common/check.hpp"
#include "obs/hub.hpp"
#include "sim/profile.hpp"

namespace pd::fabric {

Link::Link(sim::Scheduler& sched, BitsPerSec bandwidth,
           sim::Duration propagation)
    : sched_(sched), bandwidth_(bandwidth), propagation_(propagation) {
  PD_CHECK(bandwidth_ > 0, "link bandwidth must be positive");
  PD_CHECK(propagation_ >= 0, "negative propagation");
}

sim::Duration Link::backlog() const {
  return std::max<sim::Duration>(0, busy_until_ - sched_.now());
}

bool Link::transmit(Bytes bytes, sim::EventFn delivered) {
  PD_CHECK(delivered, "link delivery callback required");
  if (down_ || (loss_ > 0.0 && fault_rng_ != nullptr && fault_rng_->chance(loss_))) {
    ++frames_dropped_;
    return false;  // the frame dies on the wire; `delivered` never fires
  }
  const sim::Duration serialization = sim::transfer_time(bytes, bandwidth_);
  busy_until_ = std::max(busy_until_, sched_.now()) + serialization;
  bytes_sent_ += bytes;
  sched_.schedule_at(busy_until_ + propagation_, std::move(delivered));
  return true;
}

void Switch::attach(NodeId node) { attach(node, sched_); }

void Switch::attach(NodeId node, sim::Scheduler& sched) {
  PD_CHECK(!attached(node), "node " << node << " already attached");
  Port p;
  p.node = node;
  p.sched = &sched;
  p.tx = std::make_unique<Link>(sched, port_bandwidth_,
                                cost::kFabricPropagationNs / 2);
  p.rx = std::make_unique<Link>(sched, port_bandwidth_,
                                cost::kFabricPropagationNs / 2);
  p.rng = port_fault_stream(node);
  p.tx_res = "fabric/node" + std::to_string(node.value()) + "/tx";
  p.rx_res = "fabric/node" + std::to_string(node.value()) + "/rx";
  ports_.emplace(node, std::move(p));
}

sim::Rng Switch::port_fault_stream(NodeId node) const {
  // A pure function of (seed, node): independent of attach order and of
  // how many draws other ports have consumed — the sharded replay
  // property.
  return sim::Rng(fault_seed_ ^
                  (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(
                                                node.value()) +
                                            1)));
}

void Switch::set_fault_seed(std::uint64_t seed) {
  fault_seed_ = seed;
  fault_rng_ = sim::Rng(seed);
  for (auto& [node, p] : ports_) p.rng = port_fault_stream(node);
}

std::uint64_t Switch::frames() const {
  std::uint64_t total = frames_;
  for (const auto& [node, p] : ports_) total += p.frames;
  return total;
}

bool Switch::attached(NodeId node) const {
  return ports_.find(node) != ports_.end();
}

Switch::Port& Switch::port(NodeId node) {
  auto it = ports_.find(node);
  PD_CHECK(it != ports_.end(), "node " << node << " not attached to fabric");
  return it->second;
}

void Switch::set_node_down(NodeId node, bool down) {
  Port& p = port(node);
  p.tx->set_down(down);
  p.rx->set_down(down);
}

bool Switch::node_down(NodeId node) { return port(node).tx->down(); }

void Switch::set_node_loss(NodeId node, double p) {
  PD_CHECK(p >= 0.0 && p <= 1.0, "loss probability out of range: " << p);
  Port& port_ref = port(node);
  // Sharded mode draws from the port's own stream (owner-shard-local);
  // legacy mode keeps the switch-wide stream so replays stay bit-identical
  // with the pre-sharding tree.
  sim::Rng* rng = p > 0.0 ? (sharded() ? &port_ref.rng : &fault_rng_) : nullptr;
  port_ref.tx->set_loss(p, rng);
  port_ref.rx->set_loss(p, rng);
}

std::uint64_t Switch::frames_dropped() const {
  std::uint64_t total = 0;
  for (const auto& [node, p] : ports_) {
    total += p.tx->frames_dropped() + p.rx->frames_dropped();
  }
  return total;
}

void Switch::charge_tx(const Port& src, NodeId to, Bytes wire_bytes,
                       sim::Duration backlog, std::int64_t tenant) {
  auto* h = obs::hub();
  if (h == nullptr || !h->ledger.enabled()) return;
  obs::Ledger& led = h->ledger;
  const sim::TimePoint now = src.sched->now();
  const sim::Duration ser = sim::transfer_time(wire_bytes, port_bandwidth_);
  if (backlog > 0) {
    led.wait(obs::LedgerKind::kLink, src.tx_res, tenant, now, now + backlog);
  }
  led.occupy(obs::LedgerKind::kLink, src.tx_res, tenant, now + backlog,
             now + backlog + ser, now);
  led.add_bytes(obs::LedgerKind::kLink, src.tx_res, tenant, wire_bytes);
  if (topo_ != nullptr) {
    const sim::Duration up =
        topo_->uplink_serialization(src.node, to, wire_bytes, port_bandwidth_);
    if (up > 0) {
      const std::string res = "fabric/uplink/l" +
                              std::to_string(topo_->leaf_of(src.node)) + "-l" +
                              std::to_string(topo_->leaf_of(to));
      led.occupy(obs::LedgerKind::kUplink, res, tenant, now, now + up);
      led.add_bytes(obs::LedgerKind::kUplink, res, tenant, wire_bytes);
    }
  }
}

void Switch::charge_rx(const Port& dst, Bytes wire_bytes,
                       sim::Duration backlog, std::int64_t tenant) {
  auto* h = obs::hub();
  if (h == nullptr || !h->ledger.enabled()) return;
  obs::Ledger& led = h->ledger;
  const sim::TimePoint now = dst.sched->now();
  const sim::Duration ser = sim::transfer_time(wire_bytes, port_bandwidth_);
  if (backlog > 0) {
    led.wait(obs::LedgerKind::kLink, dst.rx_res, tenant, now, now + backlog);
  }
  led.occupy(obs::LedgerKind::kLink, dst.rx_res, tenant, now + backlog,
             now + backlog + ser, now);
  led.add_bytes(obs::LedgerKind::kLink, dst.rx_res, tenant, wire_bytes);
}

void Switch::send(NodeId from, NodeId to, Bytes bytes,
                  sim::EventFn delivered) {
  PD_CHECK(from != to, "fabric send to self (use intra-node IPC)");
  Port& src = port(from);
  Port& dst = port(to);
  const Bytes wire_bytes = bytes + kWireOverheadBytes;
  // Attribution tenant of this frame, carried by the sender's profile frame
  // (the RNIC wraps its fabric sends in a "rnic"/"wire" scope); -1 when the
  // send is unscoped control traffic.
  const std::int64_t lt = sim::current_profile_frame().tenant;
  // Single cut-through hop within a leaf; cross-leaf frames additionally
  // pay the topology's spine detour (extra hops + inter-switch legs + the
  // oversubscribed uplink serialization). Zero extra reproduces the flat
  // fabric exactly.
  const sim::Duration hop =
      cost::kSwitchLatencyNs +
      (topo_ != nullptr
           ? topo_->extra_latency(from, to, wire_bytes, port_bandwidth_)
           : 0);

  if (sharded() && src.sched != dst.sched) {
    // Sharded cross-node path: the drop decision and the egress
    // serialization queue are sender-owned state, so the frame's arrival
    // time at the receiver's port is already known here at send time.
    // Post it across NOW, while the whole egress serialization +
    // propagation + switch hop (>= cross_node_lookahead()) still lies
    // ahead — deferring the post into the egress-delivered callback would
    // shrink the remaining horizon to the switch hop alone and break the
    // epoch lookahead bound.
    const sim::TimePoint deliver = src.tx->delivery_time(wire_bytes);
    const sim::Duration tx_backlog = src.tx->backlog();
    if (!src.tx->transmit(wire_bytes, [] {})) return;  // dropped at egress
    charge_tx(src, to, wire_bytes, tx_backlog, lt);
    ++src.frames;
    remote_post_(dst.node, deliver + hop,
                 [this, dstp = &dst, wire_bytes, lt,
                  done = std::move(delivered)]() mutable {
                   const sim::Duration rx_backlog = dstp->rx->backlog();
                   if (dstp->rx->transmit(wire_bytes, std::move(done))) {
                     charge_rx(*dstp, wire_bytes, rx_backlog, lt);
                   }
                 });
    return;
  }

  sim::Scheduler& sched = *src.sched;
  if (sharded()) ++src.frames; else ++frames_;
  // Egress serialization -> switch hop -> ingress serialization. The final
  // callback rides src.in_flight (FIFO, see Port) so the two relay events
  // stay small enough for EventFn's inline buffer.
  src.in_flight.push_back(std::move(delivered));
  const sim::Duration tx_backlog = src.tx->backlog();
  const bool accepted =
      src.tx->transmit(wire_bytes, [this, &sched, &src, &dst, wire_bytes, hop,
                                    lt] {
        sched.schedule_after(hop, [this, &src, &dst, wire_bytes, lt] {
          PD_CHECK(!src.in_flight.empty(), "fabric relay with no callback");
          sim::EventFn done = std::move(src.in_flight.front());
          src.in_flight.pop_front();
          const sim::Duration rx_backlog = dst.rx->backlog();
          if (dst.rx->transmit(wire_bytes, std::move(done))) {
            charge_rx(dst, wire_bytes, rx_backlog, lt);
          }
        });
      });
  if (!accepted) {
    src.in_flight.pop_back();  // dropped at egress: unwind
    return;
  }
  charge_tx(src, to, wire_bytes, tx_backlog, lt);
}

}  // namespace pd::fabric
