// Multi-switch fabric topology (ISSUE 9): a two-tier leaf–spine built
// from the cost model, not from shared switch state.
//
// Nodes are assigned to leaf switches; same-leaf traffic takes the
// single cut-through hop the flat fabric always modeled, cross-leaf
// traffic additionally crosses an oversubscribed uplink to a spine and
// back (two extra switch hops, two inter-switch propagation legs, and a
// serialization pass at the uplink's effective per-flow bandwidth =
// port bandwidth / oversubscription). All of that is a pure function of
// (src leaf, dst leaf, frame size), so per-port state stays owner-shard
// local and parallel runs remain deterministic — the uplink is a cost
// model, never a serializing queue shared between shards.
//
// The per-pair *minimum* path latency doubles as the conservative
// lookahead floor of the parallel simulation: distant leaf pairs grant
// each other proportionally larger epoch horizons (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "proto/cost_model.hpp"
#include "sim/time.hpp"

namespace pd::fabric {

struct TopologyConfig {
  /// Worker nodes per leaf switch; 0 keeps the legacy single flat switch
  /// (every pair one hop, byte-identical to the pre-topology fabric).
  std::size_t nodes_per_switch = 0;
  /// Leaf-to-spine oversubscription: each flow crossing the uplink
  /// serializes at port bandwidth / oversubscription.
  double oversubscription = cost::kUplinkOversubscription;
  /// One leaf<->spine propagation leg (a cross-leaf path crosses two).
  sim::Duration inter_switch_propagation = cost::kInterSwitchPropagationNs;
};

class Topology {
 public:
  Topology() = default;
  explicit Topology(TopologyConfig cfg) { configure(cfg); }

  void configure(TopologyConfig cfg);
  [[nodiscard]] const TopologyConfig& config() const { return cfg_; }
  [[nodiscard]] bool multi_switch() const { return cfg_.nodes_per_switch > 0; }

  /// Pin a node to a leaf switch. Unassigned nodes (clients, the ingress
  /// gateway, every node of a flat topology) live on leaf 0 — the edge
  /// leaf, where the cluster's external uplink terminates.
  void assign(NodeId node, std::uint32_t leaf);
  [[nodiscard]] std::uint32_t leaf_of(NodeId node) const;

  /// Switch hops a frame crosses: 1 within a leaf, 3 across the spine.
  [[nodiscard]] int switch_hops(NodeId a, NodeId b) const;

  /// Path cost beyond the flat single-switch fabric for one frame of
  /// `wire_bytes` (0 within a leaf): the two extra switch hops, both
  /// inter-switch propagation legs, and the uplink serialization pass at
  /// the oversubscribed effective bandwidth.
  [[nodiscard]] sim::Duration extra_latency(NodeId a, NodeId b,
                                            Bytes wire_bytes,
                                            BitsPerSec port_bandwidth) const;

  /// Just the oversubscribed-uplink serialization component of
  /// extra_latency (0 within a leaf) — the resource ledger charges it to
  /// the sending tenant as spine-uplink byte-ns.
  [[nodiscard]] sim::Duration uplink_serialization(
      NodeId a, NodeId b, Bytes wire_bytes, BitsPerSec port_bandwidth) const;

  /// Lower bound of extra_latency over all frame sizes (transfer_time
  /// rounds up to 1 ns) — the per-pair lookahead contribution.
  [[nodiscard]] sim::Duration min_extra_latency(NodeId a, NodeId b) const {
    return min_extra_between_leaves(leaf_of(a), leaf_of(b));
  }
  [[nodiscard]] sim::Duration min_extra_between_leaves(
      std::uint32_t a, std::uint32_t b) const;

 private:
  TopologyConfig cfg_{};
  std::unordered_map<NodeId, std::uint32_t> leaf_;
};

}  // namespace pd::fabric
