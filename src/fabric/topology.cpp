#include "fabric/topology.hpp"

#include "common/check.hpp"

namespace pd::fabric {

void Topology::configure(TopologyConfig cfg) {
  PD_CHECK(cfg.oversubscription >= 1.0,
           "uplink oversubscription must be >= 1: " << cfg.oversubscription);
  PD_CHECK(cfg.inter_switch_propagation >= 0,
           "negative inter-switch propagation");
  cfg_ = cfg;
}

void Topology::assign(NodeId node, std::uint32_t leaf) {
  leaf_[node] = leaf;
}

std::uint32_t Topology::leaf_of(NodeId node) const {
  auto it = leaf_.find(node);
  return it == leaf_.end() ? 0 : it->second;
}

int Topology::switch_hops(NodeId a, NodeId b) const {
  return multi_switch() && leaf_of(a) != leaf_of(b) ? 3 : 1;
}

sim::Duration Topology::extra_latency(NodeId a, NodeId b, Bytes wire_bytes,
                                      BitsPerSec port_bandwidth) const {
  if (!multi_switch()) return 0;
  const std::uint32_t la = leaf_of(a);
  const std::uint32_t lb = leaf_of(b);
  if (la == lb) return 0;
  // leaf -> spine -> leaf: two extra cut-through hops, two inter-switch
  // propagation legs, and one serialization pass at the uplink's
  // oversubscribed per-flow share.
  return 2 * cost::kSwitchLatencyNs + 2 * cfg_.inter_switch_propagation +
         sim::transfer_time(wire_bytes, port_bandwidth / cfg_.oversubscription);
}

sim::Duration Topology::uplink_serialization(NodeId a, NodeId b,
                                             Bytes wire_bytes,
                                             BitsPerSec port_bandwidth) const {
  if (!multi_switch() || leaf_of(a) == leaf_of(b)) return 0;
  return sim::transfer_time(wire_bytes,
                            port_bandwidth / cfg_.oversubscription);
}

sim::Duration Topology::min_extra_between_leaves(std::uint32_t a,
                                                 std::uint32_t b) const {
  if (!multi_switch() || a == b) return 0;
  return 2 * cost::kSwitchLatencyNs + 2 * cfg_.inter_switch_propagation + 1;
}

}  // namespace pd::fabric
