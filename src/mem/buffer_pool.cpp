#include "mem/buffer_pool.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pd::mem {

const char* to_string(ActorKind kind) {
  switch (kind) {
    case ActorKind::kNone: return "none";
    case ActorKind::kFunction: return "function";
    case ActorKind::kNetworkEngine: return "network-engine";
    case ActorKind::kRnic: return "rnic";
    case ActorKind::kIngress: return "ingress";
    case ActorKind::kClient: return "client";
    case ActorKind::kAgent: return "agent";
  }
  return "?";
}

BufferPool::BufferPool(PoolId id, TenantId tenant, std::size_t buf_count,
                       Bytes buf_size)
    : id_(id), tenant_(tenant), buf_size_(buf_size) {
  PD_CHECK(id.valid() && tenant.valid(), "pool needs valid ids");
  PD_CHECK(buf_count > 0 && buf_size > 0, "empty pool");
  backing_.resize(buf_count * buf_size);
  slots_.resize(buf_count);
  free_.reserve(buf_count);
  // Push in reverse so allocation order starts at slot 0 (LIFO freelist).
  for (std::size_t i = buf_count; i-- > 0;) {
    free_.push_back(static_cast<std::uint32_t>(i));
  }
}

void BufferPool::account_usage() {
  if (!clock_) return;
  const sim::TimePoint now = clock_();
  slot_ns_ += static_cast<std::uint64_t>(in_use()) *
              static_cast<std::uint64_t>(now - last_change_);
  last_change_ = now;
}

std::optional<BufferDescriptor> BufferPool::allocate(Actor owner) {
  PD_CHECK(owner.kind != ActorKind::kNone, "allocation needs an owner");
  if (free_.empty()) return std::nullopt;
  account_usage();
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  slots_[idx] = Slot{owner, true};
  high_water_ = std::max(high_water_, in_use());
  return BufferDescriptor{id_, idx, 0, tenant_};
}

BufferPool::Slot& BufferPool::checked_slot(const BufferDescriptor& d) {
  PD_CHECK(d.pool == id_, "descriptor from pool " << d.pool
                                                  << " used on pool " << id_
                                                  << " (index=" << d.index
                                                  << " len=" << d.length
                                                  << " tenant=" << d.tenant
                                                  << ")");
  PD_CHECK(d.tenant == tenant_, "tenant mismatch on descriptor");
  PD_CHECK(d.index < slots_.size(), "descriptor index out of range");
  Slot& s = slots_[d.index];
  PD_CHECK(s.in_use, "buffer " << d.index << " is not allocated (use-after-free?)");
  return s;
}

const BufferPool::Slot& BufferPool::checked_slot(
    const BufferDescriptor& d) const {
  return const_cast<BufferPool*>(this)->checked_slot(d);
}

void BufferPool::release(const BufferDescriptor& d, Actor owner) {
  Slot& s = checked_slot(d);
  PD_CHECK(s.owner == owner, "release by non-owner "
                                 << to_string(owner.kind) << "/" << owner.id
                                 << "; owner is " << to_string(s.owner.kind)
                                 << "/" << s.owner.id);
  account_usage();
  s = Slot{};
  free_.push_back(d.index);
}

void BufferPool::transfer(const BufferDescriptor& d, Actor from, Actor to) {
  Slot& s = checked_slot(d);
  PD_CHECK(s.owner == from, "transfer by non-owner " << to_string(from.kind)
                                                     << "/" << from.id);
  PD_CHECK(to.kind != ActorKind::kNone, "transfer to nobody");
  s.owner = to;
}

std::span<std::byte> BufferPool::access(const BufferDescriptor& d,
                                        Actor owner) {
  Slot& s = checked_slot(d);
  PD_CHECK(s.owner == owner, "access by non-owner " << to_string(owner.kind)
                                                    << "/" << owner.id);
  return {backing_.data() + static_cast<std::size_t>(d.index) * buf_size_,
          buf_size_};
}

std::span<const std::byte> BufferPool::access(const BufferDescriptor& d,
                                              Actor owner) const {
  return const_cast<BufferPool*>(this)->access(d, owner);
}

Actor BufferPool::owner_of(const BufferDescriptor& d) const {
  return checked_slot(d).owner;
}

BufferDescriptor BufferPool::resize(const BufferDescriptor& d, Actor owner,
                                    std::uint32_t new_length) {
  Slot& s = checked_slot(d);
  PD_CHECK(s.owner == owner, "resize by non-owner");
  PD_CHECK(new_length <= buf_size_, "length " << new_length
                                              << " exceeds buffer size "
                                              << buf_size_);
  BufferDescriptor out = d;
  out.length = new_length;
  return out;
}

}  // namespace pd::mem
