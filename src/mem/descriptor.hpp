// Buffer descriptors: the small tokens that move through the data plane in
// place of payload bytes (§3.5.1). A descriptor identifies one buffer in one
// tenant's unified memory pool; ownership of the descriptor *is* ownership
// of the buffer.
#pragma once

#include <cstdint>

#include "common/ids.hpp"

namespace pd::mem {

/// Actors are the entities that may own buffers: functions, network
/// engines, RNICs, ingress workers, clients. Encoded into one 64-bit id so
/// descriptors stay cheap to pass around.
enum class ActorKind : std::uint8_t {
  kNone = 0,
  kFunction,
  kNetworkEngine,  // DNE or CNE
  kRnic,           // posted to hardware (in-flight RDMA)
  kIngress,
  kClient,
  kAgent,  // shared-memory agent (pool owner at rest)
};

struct Actor {
  ActorKind kind = ActorKind::kNone;
  std::uint32_t id = 0;

  friend constexpr bool operator==(Actor, Actor) = default;
};

constexpr Actor actor_function(FunctionId f) {
  return {ActorKind::kFunction, f.value()};
}
constexpr Actor actor_engine(NodeId n) {
  return {ActorKind::kNetworkEngine, n.value()};
}
constexpr Actor actor_rnic(NodeId n) { return {ActorKind::kRnic, n.value()}; }
constexpr Actor actor_ingress(std::uint32_t worker) {
  return {ActorKind::kIngress, worker};
}
constexpr Actor actor_client(std::uint32_t c) {
  return {ActorKind::kClient, c};
}
constexpr Actor actor_agent(TenantId t) {
  return {ActorKind::kAgent, t.value()};
}

const char* to_string(ActorKind kind);

/// 16-byte wire descriptor (matches the paper's Comch descriptor size).
struct BufferDescriptor {
  PoolId pool;            ///< which tenant pool the buffer belongs to
  std::uint32_t index = 0;  ///< buffer slot within the pool
  std::uint32_t length = 0; ///< payload bytes currently valid
  TenantId tenant;        ///< owning tenant (redundant with pool; checked)

  [[nodiscard]] bool valid() const { return pool.valid(); }
  friend constexpr bool operator==(const BufferDescriptor&,
                                   const BufferDescriptor&) = default;
};

static_assert(sizeof(BufferDescriptor) == 16, "descriptor must stay 16 bytes");

}  // namespace pd::mem
