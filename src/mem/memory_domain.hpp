// Node-wide memory management: per-tenant unified memory pools, DPDK
// file-prefix isolation, and the export state used by cross-processor
// shared memory (§3.4).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/buffer_pool.hpp"

namespace pd::mem {

/// One tenant's unified memory pool on one node. Created by the tenant's
/// shared-memory agent (DPDK primary process); functions attach to it by
/// file-prefix (DPDK secondary processes); the DNE maps it cross-processor
/// via the DOCA-mmap analog and registers it with the RNIC.
class TenantMemory {
 public:
  TenantMemory(PoolId pool_id, TenantId tenant, std::string file_prefix,
               std::size_t buf_count, Bytes buf_size);

  [[nodiscard]] BufferPool& pool() { return pool_; }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }
  [[nodiscard]] TenantId tenant() const { return pool_.tenant(); }
  [[nodiscard]] PoolId pool_id() const { return pool_.id(); }
  [[nodiscard]] const std::string& file_prefix() const { return file_prefix_; }

  /// doca_mmap_export_pci(): grant the DPU Arm cores access.
  void export_to_dpu() { exported_to_dpu_ = true; }
  /// doca_mmap_export_rdma(): grant the RNIC access (MR registration input).
  void export_to_rdma() { exported_to_rdma_ = true; }
  [[nodiscard]] bool exported_to_dpu() const { return exported_to_dpu_; }
  [[nodiscard]] bool exported_to_rdma() const { return exported_to_rdma_; }

 private:
  std::string file_prefix_;
  BufferPool pool_;
  bool exported_to_dpu_ = false;
  bool exported_to_rdma_ = false;
};

/// Registry of all tenant pools on one worker node (the view held by the
/// node's shared-memory agents collectively). Enforces prefix uniqueness —
/// two tenants can never share a pool.
class MemoryDomain {
 public:
  explicit MemoryDomain(NodeId node) : node_(node) {}

  TenantMemory& create_tenant_pool(TenantId tenant, std::string file_prefix,
                                   std::size_t buf_count, Bytes buf_size);

  /// Attach path used by functions: resolve by file-prefix. Returns nullptr
  /// if no such pool (function from another tenant cannot guess its way in).
  TenantMemory* attach(const std::string& file_prefix);

  TenantMemory& by_tenant(TenantId tenant);
  TenantMemory& by_pool(PoolId pool);
  [[nodiscard]] bool has_tenant(TenantId tenant) const;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] std::size_t num_pools() const { return pools_.size(); }
  /// All tenant pools on this node, in creation order (metrics export).
  [[nodiscard]] const std::vector<std::unique_ptr<TenantMemory>>& pools() const {
    return pools_;
  }
  /// Total backing memory across tenants.
  [[nodiscard]] Bytes footprint() const;

  /// Attach a simulated-time clock to every pool in the domain — existing
  /// and future — enabling the exact slot-ns occupancy integral the
  /// resource ledger collects (BufferPool::slot_ns).
  void set_clock(std::function<sim::TimePoint()> clock);

 private:
  NodeId node_;
  std::function<sim::TimePoint()> clock_;  // applied to pools created later
  std::vector<std::unique_ptr<TenantMemory>> pools_;
  std::unordered_map<std::string, TenantMemory*> by_prefix_;
  std::unordered_map<TenantId, TenantMemory*> by_tenant_;
  std::uint32_t next_pool_id_ = 1;
};

}  // namespace pd::mem
