#include "mem/memory_domain.hpp"

#include "common/check.hpp"

namespace pd::mem {

TenantMemory::TenantMemory(PoolId pool_id, TenantId tenant,
                           std::string file_prefix, std::size_t buf_count,
                           Bytes buf_size)
    : file_prefix_(std::move(file_prefix)),
      pool_(pool_id, tenant, buf_count, buf_size) {
  PD_CHECK(!file_prefix_.empty(), "file prefix must be non-empty");
}

TenantMemory& MemoryDomain::create_tenant_pool(TenantId tenant,
                                               std::string file_prefix,
                                               std::size_t buf_count,
                                               Bytes buf_size) {
  PD_CHECK(by_prefix_.find(file_prefix) == by_prefix_.end(),
           "file prefix '" << file_prefix << "' already in use");
  PD_CHECK(by_tenant_.find(tenant) == by_tenant_.end(),
           "tenant " << tenant << " already has a pool on node " << node_);
  const PoolId pool_id{(node_.value() << 16) | next_pool_id_++};
  auto mem = std::make_unique<TenantMemory>(pool_id, tenant,
                                            std::move(file_prefix), buf_count,
                                            buf_size);
  TenantMemory* raw = mem.get();
  if (clock_) raw->pool().set_clock(clock_);
  pools_.push_back(std::move(mem));
  by_prefix_[raw->file_prefix()] = raw;
  by_tenant_[tenant] = raw;
  return *raw;
}

void MemoryDomain::set_clock(std::function<sim::TimePoint()> clock) {
  clock_ = std::move(clock);
  for (auto& p : pools_) p->pool().set_clock(clock_);
}

TenantMemory* MemoryDomain::attach(const std::string& file_prefix) {
  auto it = by_prefix_.find(file_prefix);
  return it == by_prefix_.end() ? nullptr : it->second;
}

TenantMemory& MemoryDomain::by_tenant(TenantId tenant) {
  auto it = by_tenant_.find(tenant);
  PD_CHECK(it != by_tenant_.end(), "no pool for tenant " << tenant
                                                         << " on node " << node_);
  return *it->second;
}

TenantMemory& MemoryDomain::by_pool(PoolId pool) {
  // PoolId layout is (node << 16) | creation-order counter starting at 1,
  // and pools are never removed — the low half indexes pools_ directly.
  // This lookup runs on every buffer access, so it must not hash.
  const std::uint32_t idx = (pool.value() & 0xffff) - 1;
  PD_CHECK((pool.value() >> 16) == node_.value() && idx < pools_.size(),
           "unknown pool " << pool << " on node " << node_);
  return *pools_[idx];
}

bool MemoryDomain::has_tenant(TenantId tenant) const {
  return by_tenant_.find(tenant) != by_tenant_.end();
}

Bytes MemoryDomain::footprint() const {
  Bytes total = 0;
  for (const auto& p : pools_) total += p->pool().footprint();
  return total;
}

}  // namespace pd::mem
