// Fixed-size buffer pool with exclusive-ownership tracking.
//
// This is the rte_mempool analog from §3.4: a fixed number of equal-size
// buffers carved out of hugepage-backed memory, allocated and recycled in
// O(1) via a freelist. On top of DPDK's semantics we enforce the paper's
// token-passing ownership discipline (§3.5.1): every buffer has exactly one
// owner at a time, and only the owner may access, transfer, or release it.
// Violations throw pd::CheckFailure — a data race in the real system.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "mem/descriptor.hpp"
#include "sim/time.hpp"

namespace pd::mem {

class BufferPool {
 public:
  /// `buf_count` buffers of `buf_size` bytes each. Backing store is one
  /// contiguous allocation, mimicking a hugepage region (2 MiB pages reduce
  /// RNIC MTT pressure per §3.4).
  BufferPool(PoolId id, TenantId tenant, std::size_t buf_count, Bytes buf_size);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocate a buffer owned by `owner`; nullopt when the pool is exhausted
  /// (rte_mempool_get returning -ENOENT).
  std::optional<BufferDescriptor> allocate(Actor owner);

  /// Return a buffer to the pool. Only the current owner may release.
  void release(const BufferDescriptor& d, Actor owner);

  /// Move ownership from `from` to `to` (token passing). The descriptor
  /// itself is what travels; this records the handoff.
  void transfer(const BufferDescriptor& d, Actor from, Actor to);

  /// Access the payload bytes. Only the owner may touch the buffer.
  std::span<std::byte> access(const BufferDescriptor& d, Actor owner);
  std::span<const std::byte> access(const BufferDescriptor& d,
                                    Actor owner) const;

  /// Owner of a buffer (for diagnostics / tests).
  [[nodiscard]] Actor owner_of(const BufferDescriptor& d) const;

  /// Update the valid-length field of an owned buffer and return a fresh
  /// descriptor carrying it.
  BufferDescriptor resize(const BufferDescriptor& d, Actor owner,
                          std::uint32_t new_length);

  [[nodiscard]] PoolId id() const { return id_; }
  [[nodiscard]] TenantId tenant() const { return tenant_; }
  [[nodiscard]] Bytes buffer_size() const { return buf_size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t available() const { return free_.size(); }
  [[nodiscard]] std::size_t in_use() const { return capacity() - available(); }
  /// Total bytes of backing memory (for footprint reporting).
  [[nodiscard]] Bytes footprint() const { return capacity() * buf_size_; }

  /// Peak simultaneous in-use buffers (high-water mark, for sizing).
  [[nodiscard]] std::size_t high_water() const { return high_water_; }

  /// Attach a simulated-time clock. While attached, the pool maintains an
  /// exact running integral of in-use slots over time (slot-ns), updated at
  /// every allocate/release — the resource ledger's kPool occupancy signal.
  void set_clock(std::function<sim::TimePoint()> clock) {
    clock_ = std::move(clock);
    if (clock_) last_change_ = clock_();
  }

  /// Exact integral of in-use slots over simulated time through `now`
  /// (slot-ns). Zero until a clock is attached.
  [[nodiscard]] std::uint64_t slot_ns(sim::TimePoint now) const {
    return slot_ns_ + static_cast<std::uint64_t>(in_use()) *
                          static_cast<std::uint64_t>(now - last_change_);
  }

 private:
  struct Slot {
    Actor owner{};   // kNone when free
    bool in_use = false;
  };

  const Slot& checked_slot(const BufferDescriptor& d) const;
  Slot& checked_slot(const BufferDescriptor& d);
  /// Fold the elapsed interval at the current in-use count into the slot-ns
  /// integral. Called before every in_use() change.
  void account_usage();

  PoolId id_;
  TenantId tenant_;
  Bytes buf_size_;
  std::vector<std::byte> backing_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  // LIFO freelist: hot buffers stay cached
  std::size_t high_water_ = 0;
  std::function<sim::TimePoint()> clock_;  // null: slot-ns accounting off
  std::uint64_t slot_ns_ = 0;
  sim::TimePoint last_change_ = 0;
};

}  // namespace pd::mem
