#include "fault/fault.hpp"

#include <sstream>

#include "obs/hub.hpp"
#include "sim/profile.hpp"

namespace pd::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkLoss: return "link_loss";
    case FaultKind::kQpFail: return "qp_fail";
    case FaultKind::kSrqDrain: return "srq_drain";
    case FaultKind::kEngineStall: return "engine_stall";
    case FaultKind::kNodeCrash: return "node_crash";
  }
  return "?";
}

FaultPlan FaultPlan::generate(std::uint64_t seed,
                              const std::vector<NodeId>& nodes,
                              FaultPlanConfig cfg) {
  PD_CHECK(!nodes.empty(), "fault plan needs at least one target node");
  PD_CHECK(cfg.min_gap <= cfg.max_gap && cfg.min_outage <= cfg.max_outage &&
               cfg.min_stall <= cfg.max_stall && cfg.min_loss <= cfg.max_loss,
           "inverted fault plan bounds");
  FaultPlan plan;
  plan.seed = seed;
  sim::Rng rng(seed);

  auto draw = [&rng](sim::Duration lo, sim::Duration hi) {
    return static_cast<sim::Duration>(
        rng.uniform(static_cast<std::uint64_t>(lo),
                    static_cast<std::uint64_t>(hi)));
  };

  // Episodes are laid out sequentially (gap, episode, gap, …) so two
  // faults never overlap — a crash restoring a port that a concurrent
  // link-down is still holding dark would make recovery ambiguous.
  sim::TimePoint t = cfg.start;
  for (int i = 0; i < cfg.episodes; ++i) {
    t += draw(cfg.min_gap, cfg.max_gap);
    if (t >= cfg.horizon) break;

    FaultEvent e;
    e.at = t;
    e.kind = static_cast<FaultKind>(rng.uniform(0, 5));
    e.node = nodes[rng.uniform(0, nodes.size() - 1)];
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kNodeCrash:
        e.duration = draw(cfg.min_outage, cfg.max_outage);
        break;
      case FaultKind::kLinkLoss:
        e.duration = draw(cfg.min_outage, cfg.max_outage);
        e.loss = cfg.min_loss +
                 (cfg.max_loss - cfg.min_loss) * rng.next_double();
        break;
      case FaultKind::kQpFail:
        if (nodes.size() > 1) {
          // Pick a distinct peer; NodeId{} (invalid) would mean "all".
          NodeId peer = e.node;
          while (peer == e.node) {
            peer = nodes[rng.uniform(0, nodes.size() - 1)];
          }
          e.peer = peer;
        }
        break;
      case FaultKind::kSrqDrain:
        break;
      case FaultKind::kEngineStall:
        e.duration = draw(cfg.min_stall, cfg.max_stall);
        break;
    }
    t += e.duration;
    plan.events.push_back(e);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "fault plan seed=" << seed << " (" << events.size() << " episodes)\n";
  for (const FaultEvent& e : events) {
    out << "  t=" << e.at << "ns " << to_string(e.kind) << " node="
        << e.node.value();
    if (e.peer.valid()) out << " peer=" << e.peer.value();
    if (e.duration > 0) out << " dur=" << e.duration << "ns";
    if (e.loss > 0) out << " loss=" << e.loss;
    out << "\n";
  }
  return out.str();
}

ChaosController::ChaosController(runtime::Cluster& cluster, FaultPlan plan)
    : cluster_(cluster), plan_(std::move(plan)) {
  if (cluster_.rdma_net() != nullptr) {
    // Frame-loss draws belong to the chaos replay, not the workload's
    // stream: reseed the fabric's fault RNG from the plan.
    cluster_.rdma_net()->fabric().set_fault_seed(plan_.seed ^
                                                 0x5EEDFA17ED000000ULL);
  }
}

void ChaosController::arm() {
  PD_CHECK(!armed_, "chaos plan armed twice");
  armed_ = true;
  if (cluster_.sharded()) {
    arm_sharded();
    return;
  }
  sim::Scheduler& sched = cluster_.scheduler();
  for (const FaultEvent& e : plan_.events) {
    sched.schedule_background_at(e.at, [this, e] { apply(e); });
    arm_state_series(e, sched);
  }
}

void ChaosController::record_state(const FaultEvent& e, double v,
                                   sim::TimePoint t) {
  if (auto* rec = cluster_.flight_recorder(e.node)) {
    rec->series("chaos.active_faults",
                "node=" + std::to_string(e.node.value()))
        .record(t, v);
  }
}

void ChaosController::arm_state_series(const FaultEvent& e,
                                       sim::Scheduler& owner) {
  // Episodes never overlap (the plan lays them out sequentially), so a
  // 0/1 edge series per node is an exact fault-state timeline. The two
  // points of an instantaneous fault share a timestamp; FIFO tie-break
  // preserves the 1-then-0 order.
  owner.schedule_background_at(e.at,
                               [this, e] { record_state(e, 1.0, e.at); });
  const bool pulse =
      e.kind == FaultKind::kQpFail || e.kind == FaultKind::kSrqDrain;
  const sim::TimePoint tend = pulse ? e.at : e.at + e.duration;
  owner.schedule_background_at(
      tend, [this, e, tend] { record_state(e, 0.0, tend); });
}

void ChaosController::count(const FaultEvent& e) {
  injected_.fetch_add(1, std::memory_order_relaxed);
  if (auto* hub = obs::hub()) {
    hub->registry
        .counter("chaos.faults_injected",
                 std::string("kind=") + to_string(e.kind))
        .inc();
  }
}

void ChaosController::arm_sharded() {
  // Parallel mode: every fault is pre-split at arm time (before the run
  // starts) into per-shard events that fire at the exact legacy times.
  // Each piece executes on the scheduler that owns the state it mutates —
  // a node's fabric port, RNIC, and engine core all live on the node's
  // shard — so chaos never writes across shards, and because the whole
  // timeline is scheduled up front its per-shard event order is fixed by
  // the plan, not by thread interleaving. Same seed, same replay, for any
  // --threads value.
  auto* net = cluster_.rdma_net();
  for (const FaultEvent& e : plan_.events) {
    sim::Scheduler& owner = cluster_.scheduler_for(e.node);
    owner.schedule_background_at(e.at, [this, e] { count(e); });
    arm_state_series(e, owner);
    switch (e.kind) {
      case FaultKind::kLinkDown:
        PD_CHECK(net != nullptr, "link fault on a non-RDMA cluster");
        owner.schedule_background_at(e.at, [this, e] {
          cluster_.rdma_net()->fabric().set_node_down(e.node, true);
        });
        owner.schedule_background_at(e.at + e.duration, [this, e] {
          cluster_.rdma_net()->fabric().set_node_down(e.node, false);
        });
        break;
      case FaultKind::kLinkLoss:
        PD_CHECK(net != nullptr, "link fault on a non-RDMA cluster");
        owner.schedule_background_at(e.at, [this, e] {
          cluster_.rdma_net()->fabric().set_node_loss(e.node, e.loss);
        });
        owner.schedule_background_at(e.at + e.duration, [this, e] {
          cluster_.rdma_net()->fabric().set_node_loss(e.node, 0.0);
        });
        break;
      case FaultKind::kQpFail:
        PD_CHECK(net != nullptr, "qp fault on a non-RDMA cluster");
        owner.schedule_background_at(e.at, [this, e] {
          auto* n = cluster_.rdma_net();
          if (n->has_rnic(e.node)) n->rnic(e.node).fail_qps(e.peer);
        });
        if (e.peer.valid()) {
          cluster_.scheduler_for(e.peer).schedule_background_at(
              e.at, [this, e] {
                auto* n = cluster_.rdma_net();
                if (n->has_rnic(e.peer)) n->rnic(e.peer).fail_qps(e.node);
              });
        }
        break;
      case FaultKind::kSrqDrain:
        PD_CHECK(net != nullptr, "srq fault on a non-RDMA cluster");
        owner.schedule_background_at(e.at, [this, e] {
          auto* n = cluster_.rdma_net();
          if (n->has_rnic(e.node)) n->rnic(e.node).drain_all_srqs();
        });
        break;
      case FaultKind::kEngineStall:
        owner.schedule_background_at(e.at, [this, e] {
          sim::ProfileScope scope{"fault", "engine_stall"};
          cluster_.worker(e.node).engine_core().submit(e.duration);
        });
        break;
      case FaultKind::kNodeCrash: {
        PD_CHECK(net != nullptr, "crash fault on a non-RDMA cluster");
        PD_CHECK(cluster_.has_worker(e.node), "unknown worker " << e.node);
        owner.schedule_background_at(e.at, [this, e] {
          cluster_.rdma_net()->fabric().set_node_down(e.node, true);
        });
        // fail_node_qps(), split: each RNIC drops its QPs to the crashed
        // node on its own shard (the crashed node drops everything).
        for (NodeId n : net->rnic_nodes()) {
          cluster_.scheduler_for(n).schedule_background_at(
              e.at, [this, e, n] {
                auto* rn = cluster_.rdma_net();
                if (n == e.node) {
                  rn->rnic(n).fail_qps();
                } else {
                  rn->rnic(n).fail_qps(e.node);
                }
              });
        }
        owner.schedule_background_at(e.at + e.duration, [this, e] {
          cluster_.rdma_net()->fabric().set_node_down(e.node, false);
        });
        break;
      }
    }
  }
}

void ChaosController::apply(const FaultEvent& e) {
  ++injected_;
  if (auto* hub = obs::hub()) {
    hub->registry
        .counter("chaos.faults_injected",
                 std::string("kind=") + to_string(e.kind))
        .inc();
  }
  auto* net = cluster_.rdma_net();
  sim::Scheduler& sched = cluster_.scheduler();

  switch (e.kind) {
    case FaultKind::kLinkDown:
      PD_CHECK(net != nullptr, "link fault on a non-RDMA cluster");
      net->fabric().set_node_down(e.node, true);
      sched.schedule_background_at(e.at + e.duration,
                                   [this, e] { recover(e); });
      break;
    case FaultKind::kLinkLoss:
      PD_CHECK(net != nullptr, "link fault on a non-RDMA cluster");
      net->fabric().set_node_loss(e.node, e.loss);
      sched.schedule_background_at(e.at + e.duration,
                                   [this, e] { recover(e); });
      break;
    case FaultKind::kQpFail:
      PD_CHECK(net != nullptr, "qp fault on a non-RDMA cluster");
      if (net->has_rnic(e.node)) net->rnic(e.node).fail_qps(e.peer);
      if (e.peer.valid() && net->has_rnic(e.peer)) {
        net->rnic(e.peer).fail_qps(e.node);
      }
      break;
    case FaultKind::kSrqDrain:
      PD_CHECK(net != nullptr, "srq fault on a non-RDMA cluster");
      if (net->has_rnic(e.node)) net->rnic(e.node).drain_all_srqs();
      break;
    case FaultKind::kEngineStall: {
      // One opaque wedge on the engine core: everything behind it in the
      // run-to-completion loop waits it out.
      sim::ProfileScope scope{"fault", "engine_stall"};
      cluster_.worker(e.node).engine_core().submit(e.duration);
      break;
    }
    case FaultKind::kNodeCrash:
      cluster_.crash_node(e.node);
      sched.schedule_background_at(e.at + e.duration,
                                   [this, e] { recover(e); });
      break;
  }
}

void ChaosController::recover(const FaultEvent& e) {
  auto* net = cluster_.rdma_net();
  switch (e.kind) {
    case FaultKind::kLinkDown:
      net->fabric().set_node_down(e.node, false);
      break;
    case FaultKind::kLinkLoss:
      net->fabric().set_node_loss(e.node, 0.0);
      break;
    case FaultKind::kNodeCrash:
      cluster_.restart_node(e.node);
      break;
    case FaultKind::kQpFail:
    case FaultKind::kSrqDrain:
    case FaultKind::kEngineStall:
      break;  // instantaneous / self-recovering
  }
}

}  // namespace pd::fault
