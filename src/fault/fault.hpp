// Deterministic fault injection for the simulated data plane.
//
// A FaultPlan is a seeded, pre-materialized timeline of fault episodes
// (link outages, frame loss, QP failures, SRQ drains, engine stalls,
// whole-node crashes). The ChaosController arms the plan against a
// Cluster through the discrete-event scheduler: every injection — and
// every recovery — is an ordinary simulator event, so a given (plan
// seed, workload seed) pair replays bit-identically. That determinism is
// the point: a chaos failure reproduces under a debugger from its seed
// alone.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "sim/random.hpp"

namespace pd::fault {

enum class FaultKind : std::uint8_t {
  kLinkDown,     ///< fabric port dark for `duration` (both directions)
  kLinkLoss,     ///< per-frame loss probability `loss` for `duration`
  kQpFail,       ///< instantaneous: RC QPs between `node` and `peer` -> error
  kSrqDrain,     ///< instantaneous: empty every SRQ on `node`'s RNIC
  kEngineStall,  ///< `node`'s engine core wedged for `duration`
  kNodeCrash,    ///< fail-stop crash of `node`; restart after `duration`
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  sim::TimePoint at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  NodeId node{};            ///< primary target
  NodeId peer{};            ///< kQpFail: the remote side (invalid = all peers)
  sim::Duration duration = 0;  ///< outage/loss window/stall/crash dark time
  double loss = 0;          ///< kLinkLoss probability
};

struct FaultPlanConfig {
  /// First episode no earlier than this (setup + warmup must pass).
  sim::TimePoint start = 5'000'000;  // 5 ms
  /// No injections at or after the horizon (recovery may complete later).
  sim::TimePoint horizon = 200'000'000;  // 200 ms
  int episodes = 12;
  /// Idle gap drawn between the end of one episode and the next start.
  sim::Duration min_gap = 1'000'000;
  sim::Duration max_gap = 6'000'000;
  /// Dark time for link-down / crash, and window length for loss.
  sim::Duration min_outage = 200'000;
  sim::Duration max_outage = 2'000'000;
  double min_loss = 0.05;
  double max_loss = 0.5;
  sim::Duration min_stall = 100'000;
  sim::Duration max_stall = 1'000'000;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultEvent> events;

  /// Draw a randomized, non-overlapping episode timeline over `nodes`.
  /// Deterministic per (seed, nodes, cfg) — same inputs, same plan.
  static FaultPlan generate(std::uint64_t seed, const std::vector<NodeId>& nodes,
                            FaultPlanConfig cfg = {});

  /// Human-readable timeline, one episode per line (test logs).
  [[nodiscard]] std::string describe() const;
};

/// Executes a FaultPlan against a cluster. All injections are background
/// events: chaos never keeps the simulation alive on its own, so a run
/// still quiesces once the workload (and its recovery machinery) drains.
class ChaosController {
 public:
  /// Reseeds the fabric's loss-draw stream from the plan seed so frame
  /// loss is part of the same deterministic replay.
  ChaosController(runtime::Cluster& cluster, FaultPlan plan);

  /// Schedule every episode (and its recovery). Call before run(). On a
  /// sharded (parallel) cluster the timeline is pre-split onto the shards
  /// owning each piece of mutated state, at the exact same virtual times.
  void arm();

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }
  /// Episodes applied so far (grows as virtual time passes).
  [[nodiscard]] std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  void apply(const FaultEvent& e);
  void recover(const FaultEvent& e);
  void arm_sharded();
  void count(const FaultEvent& e);
  /// Record the fault-state flight series for `e`'s node (1 while the
  /// episode holds, a 1->0 pulse for instantaneous kinds). Runs on the
  /// shard owning the node; resolves the recorder lazily so arming order
  /// relative to Cluster::start_flight_recorder() does not matter.
  void record_state(const FaultEvent& e, double v, sim::TimePoint t);
  /// Schedule the record_state() timeline points for `e` on `owner`.
  void arm_state_series(const FaultEvent& e, sim::Scheduler& owner);

  runtime::Cluster& cluster_;
  FaultPlan plan_;
  std::atomic<std::uint64_t> injected_{0};
  bool armed_ = false;
};

}  // namespace pd::fault
