#include "control/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/check.hpp"
#include "control/autoscaler.hpp"
#include "fault/fault.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace pd::control {
namespace {

using runtime::OnlineBoutique;

// The aggressor application for noisy_neighbor: a second tenant running a
// two-function batch chain, deliberately chunky payloads. Ids far from the
// boutique's range so the tables read unambiguously.
constexpr TenantId kBatchTenant{2};
constexpr FunctionId kBatcher{20};
constexpr FunctionId kCruncher{21};
constexpr std::uint32_t kBatchChain = 100;

struct Population {
  const char* target;
  const char* tenant;  ///< "shop" or "batch" (report label)
  int clients;
  sim::Duration error_backoff;
};

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(v), comma ? ", " : "");
  out += buf;
}

void append_i64(std::string& out, const char* key, std::int64_t v,
                bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %lld%s", key,
                static_cast<long long>(v), comma ? ", " : "");
  out += buf;
}

}  // namespace

const char* to_string(OverloadScenario s) {
  switch (s) {
    case OverloadScenario::kFlashCrowd: return "flash_crowd";
    case OverloadScenario::kNoisyNeighbor: return "noisy_neighbor";
    case OverloadScenario::kDiurnal: return "diurnal";
    case OverloadScenario::kChaos2x: return "chaos_2x";
  }
  return "?";
}

OverloadScenario parse_scenario(const std::string& name) {
  for (OverloadScenario s : all_scenarios()) {
    if (name == to_string(s)) return s;
  }
  PD_CHECK(false, "unknown overload scenario \"" << name << "\"");
}

const std::vector<OverloadScenario>& all_scenarios() {
  static const std::vector<OverloadScenario> all{
      OverloadScenario::kFlashCrowd, OverloadScenario::kNoisyNeighbor,
      OverloadScenario::kDiurnal, OverloadScenario::kChaos2x};
  return all;
}

OverloadResult run_overload(const OverloadOptions& opts) {
  PD_CHECK(opts.seconds >= 1, "overload run needs at least one second");
  const sim::Duration horizon = opts.seconds * 1'000'000'000;
  const bool noisy = opts.scenario == OverloadScenario::kNoisyNeighbor;
  const bool chaos = opts.scenario == OverloadScenario::kChaos2x;

  // The SLO watchdog (and everything else observable) lives on the shard
  // hubs in parallel mode and on this installed hub in serial mode; either
  // way `hub` holds the merged end state after the drain.
  obs::Hub hub;
  obs::Session session(hub);

  sim::Scheduler serial_sched;
  std::unique_ptr<sim::ParallelSim> psim;
  if (opts.threads > 0) {
    psim = std::make_unique<sim::ParallelSim>(3, opts.threads);
  }

  runtime::ClusterConfig cfg;
  cfg.system = runtime::SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 16;
  // Per-tenant credit gate at the engines (tentpole part 2). Enabled in
  // both columns: it is the always-on backpressure floor; the *feedback*
  // parts (scaling, pressure) are what `control` toggles.
  cfg.engine.tenant_admission = true;
  if (noisy) {
    // Pin the engines' capacity so the batch tenant's load is genuinely
    // contended (the §4.2 experiment style) instead of vanishing into an
    // infinitely fast fabric, and keep per-tenant in-fabric credit slices
    // small so the aggressor cannot park deep queues at the engines.
    cfg.engine.extra_per_msg_ns = 1'000;
    cfg.engine.max_unacked = 128;
  }
  auto cluster = psim != nullptr
                     ? std::make_unique<runtime::Cluster>(*psim, cfg)
                     : std::make_unique<runtime::Cluster>(serial_sched, cfg);
  sim::Scheduler& sched = cluster->scheduler();
  cluster->add_worker(NodeId{1});
  cluster->add_worker(NodeId{2});

  OnlineBoutique::deploy(*cluster, NodeId{1}, NodeId{2});
  if (noisy || chaos) {
    cluster->add_tenant(kBatchTenant, /*weight=*/1);
    cluster->deploy(runtime::FunctionSpec{kBatcher, "batcher", kBatchTenant},
                    NodeId{1});
    cluster->deploy(runtime::FunctionSpec{kCruncher, "cruncher", kBatchTenant},
                    NodeId{2});
    cluster->add_chain(runtime::Chain{kBatchChain, "Batch", kBatchTenant, 1024,
                                      {{kBatcher, 3'000, 1024},
                                       {kCruncher, 20'000, 4096},
                                       {kBatcher, 2'000, 1024}}});
  }

  // Admission policies exist in both columns; without control nothing ever
  // raises pressure, so the gate stays open (the "before" behaviour).
  AdmissionController admission;
  admission.add_policy({OnlineBoutique::kTenant, /*priority=*/1,
                        /*rate_rps=*/200'000, /*burst=*/64});
  if (noisy || chaos) {
    admission.add_policy({kBatchTenant, /*priority=*/0, /*rate_rps=*/200,
                          /*burst=*/8});
  }

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 1;
  icfg.max_workers = 8;
  icfg.autoscale = false;  // the EdgeController is the scaler here
  icfg.admission = opts.control ? &admission : nullptr;
  ingress::PalladiumIngress gateway(*cluster, icfg);
  gateway.expose_chain("/home", OnlineBoutique::kHomeQuery);
  gateway.expose_chain("/checkout", OnlineBoutique::kCheckoutChain);
  if (noisy || chaos) gateway.expose_chain("/batch", kBatchChain);
  gateway.finish_setup();
  cluster->finish_setup();

  // The resource ledger is always on for overload runs: the blame matrix
  // is part of the scenario artifact (before/after interference view), and
  // with the kBlame policy it is also the controller's targeting signal.
  // Parallel mode records into the shard hubs (merged after the drain);
  // serial mode installs the global hub's ledger for the run's duration.
  cluster->enable_ledger();
  gateway.attach_pool_clock();
  std::unique_ptr<obs::LedgerSession> ledger_session;
  if (psim == nullptr) {
    ledger_session = std::make_unique<obs::LedgerSession>(hub.ledger);
  }

  cluster->add_slo({.name = "shop-home",
                    .tenant = OnlineBoutique::kTenant,
                    .chain = OnlineBoutique::kHomeQuery,
                    .target_ns = 2'500'000});
  cluster->add_slo({.name = "shop-all",
                    .tenant = OnlineBoutique::kTenant,
                    .target_ns = 3'500'000,
                    .budget = 0.05});
  if (noisy || chaos) {
    cluster->add_slo({.name = "batch",
                      .tenant = kBatchTenant,
                      .target_ns = 20'000'000,
                      .budget = 0.25});
  }

  // The feedback loop (tentpole part 1): edge controller scaling the
  // ingress pool + engaging admission pressure off the protected tenant's
  // SLO burn, and per-function instance autoscalers on pre-provisioned
  // replica cores.
  std::unique_ptr<EdgeController> edge;
  std::vector<std::unique_ptr<InstanceAutoscaler>> fn_scalers;
  if (opts.control) {
    EdgeControllerConfig ecfg;
    ecfg.pending_up = 24;
    // Shedding the aggressor burns the aggressor's own SLO forever; only
    // the protected tenant's burn may drive pressure on/off.
    ecfg.pressure_slo = "shop-all";
    ecfg.shed_policy = opts.shed_policy;
    ecfg.protected_tenant = OnlineBoutique::kTenant;
    if (noisy) {
      // A sustained aggressor re-floods the instant pressure lifts; hold
      // the gate until the protected tenant has been quiet for 2 s instead
      // of oscillating admit/shed every few hundred ms.
      ecfg.pressure_off = 0.25;
      ecfg.pressure_off_hysteresis = 40;
    }
    edge = std::make_unique<EdgeController>(gateway, &admission, sched, ecfg);
    edge->start();
    cluster->provision_replicas(OnlineBoutique::kFrontend, 2);
    cluster->provision_replicas(OnlineBoutique::kRecommendation, 1);
    cluster->provision_replicas(OnlineBoutique::kCheckout, 1);
    fn_scalers = attach_instance_autoscalers(*cluster);
  }

  // Client populations per scenario. The boutique pages are the protected
  // tenant; /batch (noisy_neighbor, chaos_2x) is the best-effort one.
  std::vector<Population> pages;
  switch (opts.scenario) {
    case OverloadScenario::kFlashCrowd:
      pages = {{"/home", "shop", 48, 0}, {"/checkout", "shop", 4, 0}};
      break;
    case OverloadScenario::kNoisyNeighbor:
      pages = {{"/home", "shop", 12, 0},
               {"/checkout", "shop", 4, 0},
               {"/batch", "batch", 32, 1'000'000}};
      break;
    case OverloadScenario::kDiurnal:
      pages = {{"/home", "shop", 24, 0}, {"/checkout", "shop", 4, 0}};
      break;
    case OverloadScenario::kChaos2x:
      pages = {{"/home", "shop", 24, 0},
               {"/checkout", "shop", 8, 0},
               {"/batch", "batch", 16, 1'000'000}};
      break;
  }

  std::unique_ptr<fault::ChaosController> chaos_ctl;
  if (chaos) {
    fault::FaultPlanConfig fcfg;
    fcfg.start = horizon / 6;
    fcfg.horizon = horizon - horizon / 6;
    fcfg.episodes = 24;
    fcfg.min_gap = 10'000'000;
    fcfg.max_gap = 80'000'000;
    chaos_ctl = std::make_unique<fault::ChaosController>(
        *cluster,
        fault::FaultPlan::generate(opts.chaos_seed, {NodeId{1}, NodeId{2}},
                                   fcfg));
    chaos_ctl->arm();
  }

  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  for (const Population& p : pages) {
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = p.target;
    wcfg.body = R"({"session":"u-1234","currency":"EUR"})";
    wcfg.client_cores = 8;
    wcfg.error_backoff = p.error_backoff;
    gens.push_back(
        std::make_unique<workload::HttpLoadGen>(sched, gateway, wcfg));
    gens.back()->add_clients(p.clients);
  }

  // Load shaping on the edge scheduler (shard-local, so the steps land at
  // identical virtual times for every thread count).
  if (opts.scenario == OverloadScenario::kFlashCrowd) {
    workload::HttpLoadGen& home = *gens[0];
    home.set_active_clients(12);  // calm before the crowd
    sched.schedule_after(horizon / 3, [&home] { home.set_active_clients(48); });
    sched.schedule_after(2 * horizon / 3,
                         [&home] { home.set_active_clients(12); });
  } else if (opts.scenario == OverloadScenario::kDiurnal) {
    workload::HttpLoadGen& home = *gens[0];
    static constexpr int kSteps[] = {4, 8, 16, 24, 16, 8};
    home.set_active_clients(kSteps[0]);
    for (int i = 1; i < 6; ++i) {
      sched.schedule_after(i * horizon / 6, [&home, n = kSteps[i]] {
        home.set_active_clients(n);
      });
    }
  }

  if (psim != nullptr) {
    psim->run_until(horizon);
    for (auto& g : gens) g->stop();
    psim->run();
  } else {
    sched.run_until(horizon);
    for (auto& g : gens) g->stop();
    sched.run();
  }
  // Fold the pools' slot-ns integrals before merging: the gateway pools
  // charge the edge hub's ledger, worker pools their owning shard's.
  cluster->collect_pool_slot_ns();
  if (obs::Hub* eh = cluster->edge_hub()) {
    gateway.collect_pool_slot_ns(eh->ledger);
  }
  if (psim != nullptr) cluster->merge_observability(hub);
  hub.slo.finish(sched.now());

  OverloadResult r;
  r.scenario = to_string(opts.scenario);
  r.control = opts.control;
  r.policy = opts.control ? to_string(opts.shed_policy) : "open";
  for (const auto& t : hub.slo.totals()) {
    r.slos.push_back(
        OverloadResult::SloRow{t.name, t.requests, t.violations, t.alerts});
  }
  std::sort(r.slos.begin(), r.slos.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    workload::HttpLoadGen& g = *gens[i];
    OverloadResult::GenRow row;
    row.target = pages[i].target;
    row.tenant = pages[i].tenant;
    row.sent = g.sent();
    row.completed = g.completed();
    row.errors = g.errors();
    row.p99_ns = g.completed() > 0 ? g.latencies().quantile(0.99) : 0;
    sent += row.sent;
    answered += row.completed + row.errors;
    r.gens.push_back(std::move(row));
  }
  r.zero_loss = sent == answered;

  r.shed_admission = gateway.shed_admission();
  r.deadline_expired = gateway.deadline_expired();
  r.timeouts = gateway.timeouts();
  r.bad_gateway = gateway.bad_gateway();
  r.ingress_scale_events = gateway.scale_events();
  r.final_workers = gateway.active_workers();

  for (NodeId n : {NodeId{1}, NodeId{2}}) {
    const auto& c = cluster->worker(n).palladium_engine()->counters();
    r.engine_shed_admission += c.shed_admission;
    r.engine_requests_shed += c.requests_shed;
  }

  if (edge != nullptr) r.controller_events = edge->events().size();
  for (const auto& s : fn_scalers) r.replica_events += s->events().size();
  r.pressure_engagements = admission.engagements();

  for (TenantId t : admission.policies()) {
    OverloadResult::AdmissionRow row;
    row.tenant = t == OnlineBoutique::kTenant ? "shop"
                 : t == kBatchTenant          ? "batch"
                                              : std::to_string(t.value());
    row.id = t.value();
    row.admitted = admission.admitted(t);
    row.shed = admission.shed(t);
    r.admission.push_back(std::move(row));
  }

  for (const obs::Ledger::BlameRow& b : hub.ledger.blame_rows()) {
    r.blame.push_back(OverloadResult::BlameRow{obs::to_string(b.kind),
                                               b.aggressor, b.victim, b.ns});
  }
  r.ledger_json = hub.ledger.to_json();
  return r;
}

std::string OverloadResult::json() const {
  std::string out = "{\n";
  out += "  \"scenario\": \"" + scenario + "\",\n  ";
  append_u64(out, "control", control ? 1 : 0, false);
  out += ",\n  \"policy\": \"" + policy + "\",\n  ";
  append_u64(out, "zero_loss", zero_loss ? 1 : 0, false);
  out += ",\n  \"slo\": [\n";
  for (std::size_t i = 0; i < slos.size(); ++i) {
    const SloRow& s = slos[i];
    out += "    {\"name\": \"" + s.name + "\", ";
    append_u64(out, "requests", s.requests);
    append_u64(out, "violations", s.violations);
    append_u64(out, "alerts", s.alerts, false);
    out += i + 1 < slos.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"clients\": [\n";
  for (std::size_t i = 0; i < gens.size(); ++i) {
    const GenRow& g = gens[i];
    out += "    {\"target\": \"" + g.target + "\", \"tenant\": \"" + g.tenant +
           "\", ";
    append_u64(out, "sent", g.sent);
    append_u64(out, "completed", g.completed);
    append_u64(out, "errors", g.errors);
    append_u64(out, "p99_ns", static_cast<std::uint64_t>(g.p99_ns), false);
    out += i + 1 < gens.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"ingress\": {";
  append_u64(out, "shed_admission", shed_admission);
  append_u64(out, "deadline_expired", deadline_expired);
  append_u64(out, "timeouts", timeouts);
  append_u64(out, "bad_gateway", bad_gateway);
  append_u64(out, "scale_events", ingress_scale_events);
  append_u64(out, "final_workers", static_cast<std::uint64_t>(final_workers),
             false);
  out += "},\n  \"engine\": {";
  append_u64(out, "shed_admission", engine_shed_admission);
  append_u64(out, "requests_shed", engine_requests_shed, false);
  out += "},\n  \"controller\": {";
  append_u64(out, "events", controller_events);
  append_u64(out, "replica_events", replica_events);
  append_u64(out, "pressure_engagements", pressure_engagements, false);
  out += "},\n  \"admission\": [\n";
  for (std::size_t i = 0; i < admission.size(); ++i) {
    const AdmissionRow& a = admission[i];
    out += "    {\"tenant\": \"" + a.tenant + "\", ";
    append_u64(out, "id", a.id);
    append_u64(out, "admitted", a.admitted);
    append_u64(out, "shed", a.shed, false);
    out += i + 1 < admission.size() ? "},\n" : "}\n";
  }
  out += "  ],\n  \"blame\": [\n";
  for (std::size_t i = 0; i < blame.size(); ++i) {
    const BlameRow& b = blame[i];
    out += "    {\"kind\": \"" + b.kind + "\", ";
    append_i64(out, "aggressor", b.aggressor);
    append_i64(out, "victim", b.victim);
    append_u64(out, "ns", b.ns, false);
    out += i + 1 < blame.size() ? "},\n" : "}\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string OverloadResult::table() const {
  char buf[192];
  std::string out;
  std::snprintf(buf, sizeof buf, "%s, control %s (policy %s):\n",
                scenario.c_str(), control ? "ON" : "OFF", policy.c_str());
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-12s %10s %10s %10s\n", "slo", "requests",
                "violations", "alerts");
  out += buf;
  for (const SloRow& s : slos) {
    std::snprintf(buf, sizeof buf, "  %-12s %10llu %10llu %10llu\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.requests),
                  static_cast<unsigned long long>(s.violations),
                  static_cast<unsigned long long>(s.alerts));
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "  %-12s %6s %10s %10s %10s %10s\n", "page",
                "tenant", "sent", "completed", "errors", "p99 ms");
  out += buf;
  for (const GenRow& g : gens) {
    std::snprintf(buf, sizeof buf,
                  "  %-12s %6s %10llu %10llu %10llu %10.2f\n",
                  g.target.c_str(), g.tenant.c_str(),
                  static_cast<unsigned long long>(g.sent),
                  static_cast<unsigned long long>(g.completed),
                  static_cast<unsigned long long>(g.errors),
                  static_cast<double>(g.p99_ns) / 1e6);
    out += buf;
  }
  std::snprintf(
      buf, sizeof buf,
      "  ingress: 429 shed=%llu 504 deadline=%llu 502=%llu workers=%d "
      "scale-events=%llu\n",
      static_cast<unsigned long long>(shed_admission),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(bad_gateway), final_workers,
      static_cast<unsigned long long>(ingress_scale_events));
  out += buf;
  std::snprintf(
      buf, sizeof buf,
      "  engine shed=%llu  controller events=%llu replicas=%llu pressure=%llu"
      "  zero-loss=%s\n",
      static_cast<unsigned long long>(engine_shed_admission),
      static_cast<unsigned long long>(controller_events),
      static_cast<unsigned long long>(replica_events),
      static_cast<unsigned long long>(pressure_engagements),
      zero_loss ? "yes" : "NO");
  out += buf;
  for (const AdmissionRow& a : admission) {
    std::snprintf(buf, sizeof buf,
                  "  admission %-6s (tenant %llu): admitted=%llu shed=%llu\n",
                  a.tenant.c_str(), static_cast<unsigned long long>(a.id),
                  static_cast<unsigned long long>(a.admitted),
                  static_cast<unsigned long long>(a.shed));
    out += buf;
  }
  bool header = false;
  for (const BlameRow& b : blame) {
    if (b.aggressor == b.victim || b.aggressor < 0 || b.victim < 0) continue;
    if (!header) {
      out += "  interference (queueing imposed, aggressor -> victim):\n";
      header = true;
    }
    std::snprintf(buf, sizeof buf,
                  "    tenant %lld -> tenant %lld  %-6s %12.1f us\n",
                  static_cast<long long>(b.aggressor),
                  static_cast<long long>(b.victim), b.kind.c_str(),
                  static_cast<double>(b.ns) / 1e3);
    out += buf;
  }
  if (!header) out += "  interference: none recorded\n";
  return out;
}

}  // namespace pd::control
