// SLO-driven feedback autoscalers (ISSUE 7 tentpole, part 1): the
// "sensors -> actuators" layer that turns the observability stack (SLO
// burn rates, queue backlogs) into scaling and admission decisions on the
// simulated clock.
//
// Two controllers, each pinned to the shard that owns its actuator so
// every decision reads only shard-local state (the PDES determinism
// contract — byte-identical across --threads 1/2/4):
//
//  - EdgeController (edge shard): scales the ingress worker pool on SLO
//    burn + pending-request backlog, and engages/releases the per-tenant
//    admission gate's overload pressure. Consumes the edge hub's
//    SloWatchdog via roll()/max_burn() — requests complete at the edge, so
//    that is where the burn signal lives.
//
//  - InstanceAutoscaler (one per deployed function, on its node's shard):
//    activates/deactivates pre-provisioned function replicas
//    (Cluster::provision_replicas) from the instance's own compute
//    backlog.
//
// Both use consecutive-period hysteresis plus post-action cooldowns, the
// standard damping pair that keeps feedback loops from flapping on bursty
// signals.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "control/admission.hpp"
#include "ingress/palladium_ingress.hpp"
#include "runtime/function.hpp"

namespace pd::control {

/// One actuation, for reports and tests ("did it scale, when, and why").
struct ScaleEvent {
  sim::TimePoint at = 0;
  std::string actor;   ///< "ingress", "fn:<name>", "pressure"
  int from = 0;
  int to = 0;
  std::string reason;  ///< "burn", "backlog", "idle", ...
};

/// What the admission gate does once pressure engages. kBurnRate is the
/// ISSUE 7 behaviour: clamp every best-effort tenant to its provisioned
/// token rate. kBlame closes the ISSUE 10 loop: read the resource ledger's
/// interference matrix, identify the tenant imposing the most queueing on
/// the protected tenant, and point the gate's targeted clamp at that
/// measured aggressor — innocent best-effort tenants keep flowing.
enum class ShedPolicy : std::uint8_t { kBurnRate, kBlame };

[[nodiscard]] const char* to_string(ShedPolicy policy);

struct EdgeControllerConfig {
  sim::Duration period = 50'000'000;  // 50 ms control loop
  /// Scale-up signal: SLO burn at/above this, or pending requests per
  /// active worker at/above pending_up.
  double burn_up = 1.0;
  std::size_t pending_up = 48;
  /// Scale-down signal: burn at/below burn_down AND backlog per worker
  /// at/below pending_down.
  double burn_down = 0.25;
  std::size_t pending_down = 4;
  int up_hysteresis = 2;    ///< consecutive up-signal periods before acting
  int down_hysteresis = 8;  ///< consecutive down-signal periods before acting
  int cooldown = 4;         ///< quiet periods after any scaling action
  /// Admission pressure: engage when the watched SLO's burn holds at/above
  /// pressure_on for pressure_on_hysteresis periods; release when it holds
  /// at/below pressure_off for pressure_off_hysteresis periods.
  double pressure_on = 1.0;
  double pressure_off = 0.5;
  int pressure_on_hysteresis = 2;
  int pressure_off_hysteresis = 8;
  /// SLO spec name whose burn drives admission pressure ("" = max over all
  /// specs). Point this at the *protected* tenant's SLO: shedding the
  /// aggressor keeps burning the aggressor's own SLO, and feeding that
  /// back would latch pressure on forever.
  std::string pressure_slo;
  /// "Quiet" means the worker cores are drained too, not just that the
  /// pending-request map is empty: a pool mid-restart has its requests
  /// parked on the cores before parsing, invisible to pending_requests(),
  /// and the burn signal decays during the stall. Down-scaling or
  /// releasing pressure on that false idle re-restarts the pool and
  /// extends the outage, so both hold while the cores carry more than
  /// this much queued work.
  sim::Duration worker_backlog_quiet_ns = 1'000'000;  // 1 ms
  /// Shedding policy under pressure (see ShedPolicy). kBlame requires the
  /// resource ledger to be enabled and `protected_tenant` set; with no
  /// measured aggressor it degrades to kBurnRate behaviour.
  ShedPolicy shed_policy = ShedPolicy::kBurnRate;
  /// The tenant whose interference column the kBlame policy consults (the
  /// victim whose top aggressor gets targeted).
  TenantId protected_tenant{};
};

class EdgeController {
 public:
  EdgeController(ingress::PalladiumIngress& ingress,
                 AdmissionController* admission, sim::Scheduler& sched,
                 EdgeControllerConfig config = {});

  /// Begin periodic evaluation (background events: the controller never
  /// keeps an otherwise-drained simulation alive).
  void start();

  [[nodiscard]] const std::vector<ScaleEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  void tick();

  ingress::PalladiumIngress& ingress_;
  AdmissionController* admission_;
  sim::Scheduler& sched_;
  EdgeControllerConfig config_;
  std::vector<ScaleEvent> events_;
  std::uint64_t ticks_ = 0;
  int up_run_ = 0;
  int down_run_ = 0;
  int cooldown_ = 0;
  int p_on_run_ = 0;
  int p_off_run_ = 0;
  bool started_ = false;
};

struct InstanceAutoscalerConfig {
  sim::Duration period = 50'000'000;  // 50 ms control loop
  /// Scale up when pending compute jobs per active replica reach this.
  std::uint64_t jobs_up = 4;
  /// Scale down when total pending jobs are at/below this with >1 replica.
  std::uint64_t jobs_down = 1;
  int up_hysteresis = 2;
  int down_hysteresis = 8;
  int cooldown = 2;
};

class InstanceAutoscaler {
 public:
  InstanceAutoscaler(runtime::FunctionInstance& fn, sim::Scheduler& sched,
                     InstanceAutoscalerConfig config = {});

  void start();

  [[nodiscard]] const std::vector<ScaleEvent>& events() const {
    return events_;
  }

 private:
  void tick();

  runtime::FunctionInstance& fn_;
  sim::Scheduler& sched_;
  InstanceAutoscalerConfig config_;
  std::vector<ScaleEvent> events_;
  int up_run_ = 0;
  int down_run_ = 0;
  int cooldown_ = 0;
  bool started_ = false;
};

/// One InstanceAutoscaler per deployed function that has spare replica
/// capacity, each on its owning node's scheduler shard, in sorted function
/// order (deterministic construction). Call start() is done here; the
/// returned vector just owns them.
std::vector<std::unique_ptr<InstanceAutoscaler>> attach_instance_autoscalers(
    runtime::Cluster& cluster, InstanceAutoscalerConfig config = {});

}  // namespace pd::control
