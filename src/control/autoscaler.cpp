#include "control/autoscaler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/hub.hpp"

namespace pd::control {

const char* to_string(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kBurnRate: return "burn-rate";
    case ShedPolicy::kBlame: return "blame";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// EdgeController
// ---------------------------------------------------------------------------

EdgeController::EdgeController(ingress::PalladiumIngress& ingress,
                               AdmissionController* admission,
                               sim::Scheduler& sched,
                               EdgeControllerConfig config)
    : ingress_(ingress),
      admission_(admission),
      sched_(sched),
      config_(std::move(config)) {
  PD_CHECK(config_.period > 0, "controller period must be positive");
  PD_CHECK(config_.up_hysteresis >= 1 && config_.down_hysteresis >= 1,
           "hysteresis must be at least one period");
}

void EdgeController::start() {
  PD_CHECK(!started_, "EdgeController started twice");
  started_ = true;
  sched_.schedule_background_after(config_.period, [this] { tick(); });
}

void EdgeController::tick() {
  ++ticks_;
  obs::Hub* hub = obs::hub();
  double burn = 0.0;
  double pressure_burn = 0.0;
  if (hub != nullptr) {
    hub->slo.roll(sched_.now());
    // Both the scaling and the pressure signal watch the *protected*
    // SLO when one is named. Folding every spec in (max_burn) would let a
    // deliberately-shed aggressor keep its own burn pegged via 429
    // record_error and drive an endless scale-up ladder — each step a
    // worker-pool restart that stalls the very tenant being protected.
    pressure_burn = config_.pressure_slo.empty()
                        ? hub->slo.max_burn()
                        : hub->slo.burn_of(config_.pressure_slo);
    burn = pressure_burn;
  }
  const int workers = ingress_.active_workers();
  const std::size_t pending = ingress_.pending_requests();
  const auto per_worker = pending / static_cast<std::size_t>(workers);
  const bool cores_quiet =
      ingress_.worker_backlog_ns() <= config_.worker_backlog_quiet_ns;

  if (hub != nullptr) {
    // Integer-valued gauges only: these land in merged metrics snapshots
    // that tooling byte-compares across thread counts.
    hub->registry.gauge("control.workers", "").set(workers);
    hub->registry.gauge("control.burn_x100", "")
        .set(std::floor(burn * 100.0));
    hub->registry.gauge("control.pending_per_worker", "")
        .set(static_cast<double>(per_worker));
    hub->registry.gauge("control.pressure", "")
        .set(admission_ != nullptr && admission_->pressure() ? 1 : 0);
  }

  // --- horizontal worker scaling ------------------------------------------
  const bool up_signal =
      burn >= config_.burn_up || per_worker >= config_.pending_up;
  const bool down_signal = burn <= config_.burn_down &&
                           per_worker <= config_.pending_down && cores_quiet;
  if (up_signal) {
    ++up_run_;
    down_run_ = 0;
  } else if (down_signal) {
    ++down_run_;
    up_run_ = 0;
  } else {
    up_run_ = down_run_ = 0;
  }
  if (cooldown_ > 0) --cooldown_;

  const int max_workers = ingress_.config().max_workers;
  if (cooldown_ == 0 && up_run_ >= config_.up_hysteresis &&
      workers < max_workers) {
    ingress_.scale_to(workers + 1);
    events_.push_back(ScaleEvent{sched_.now(), "ingress", workers, workers + 1,
                                 burn >= config_.burn_up ? "burn" : "backlog"});
    if (hub != nullptr) hub->registry.counter("control.scale_up", "").inc();
    cooldown_ = config_.cooldown;
    up_run_ = 0;
  } else if (cooldown_ == 0 && down_run_ >= config_.down_hysteresis &&
             workers > 1) {
    ingress_.scale_to(workers - 1);
    events_.push_back(
        ScaleEvent{sched_.now(), "ingress", workers, workers - 1, "idle"});
    if (hub != nullptr) hub->registry.counter("control.scale_down", "").inc();
    cooldown_ = config_.cooldown;
    down_run_ = 0;
  }

  // --- admission pressure ---------------------------------------------------
  if (admission_ != nullptr) {
    if (pressure_burn >= config_.pressure_on) {
      ++p_on_run_;
      p_off_run_ = 0;
    } else if (pressure_burn <= config_.pressure_off && cores_quiet) {
      ++p_off_run_;
      p_on_run_ = 0;
    } else {
      p_on_run_ = p_off_run_ = 0;
    }
    if (!admission_->pressure() && p_on_run_ >= config_.pressure_on_hysteresis) {
      admission_->set_pressure(true);
      events_.push_back(ScaleEvent{sched_.now(), "pressure", 0, 1, "burn"});
      if (hub != nullptr) hub->registry.counter("control.pressure_on", "").inc();
      if (config_.shed_policy == ShedPolicy::kBlame && hub != nullptr &&
          config_.protected_tenant.valid()) {
        // Close the loop: the interference matrix measured so far names the
        // tenant that imposed the most queueing on the protected tenant;
        // that aggressor gets the targeted clamp. No measured aggressor
        // (-1) leaves the plain burn-rate clamp in force.
        const std::int64_t aggressor = hub->ledger.top_aggressor(
            static_cast<std::int64_t>(config_.protected_tenant.value()));
        if (aggressor >= 0) {
          admission_->set_pressure_target(
              TenantId{static_cast<std::uint32_t>(aggressor)});
          events_.push_back(ScaleEvent{sched_.now(), "pressure-target", 0,
                                       static_cast<int>(aggressor), "blame"});
          hub->registry.gauge("control.pressure_target", "")
              .set(static_cast<double>(aggressor));
        }
      }
      p_on_run_ = 0;
    } else if (admission_->pressure() &&
               p_off_run_ >= config_.pressure_off_hysteresis) {
      admission_->set_pressure(false);
      events_.push_back(ScaleEvent{sched_.now(), "pressure", 1, 0, "quiet"});
      if (hub != nullptr) {
        hub->registry.counter("control.pressure_off", "").inc();
      }
      p_off_run_ = 0;
    }
  }

  sched_.schedule_background_after(config_.period, [this] { tick(); });
}

// ---------------------------------------------------------------------------
// InstanceAutoscaler
// ---------------------------------------------------------------------------

InstanceAutoscaler::InstanceAutoscaler(runtime::FunctionInstance& fn,
                                       sim::Scheduler& sched,
                                       InstanceAutoscalerConfig config)
    : fn_(fn), sched_(sched), config_(config) {
  PD_CHECK(config_.period > 0, "controller period must be positive");
  PD_CHECK(fn_.replica_capacity() >= 1, "instance has no cores");
}

void InstanceAutoscaler::start() {
  PD_CHECK(!started_, "InstanceAutoscaler started twice");
  started_ = true;
  sched_.schedule_background_after(config_.period, [this] { tick(); });
}

void InstanceAutoscaler::tick() {
  const std::uint64_t jobs = fn_.pending_jobs();
  const auto active = fn_.active_replicas();
  const std::uint64_t per_replica = jobs / active;

  if (obs::Hub* hub = obs::hub()) {
    hub->registry
        .gauge("control.replicas", "fn=" + fn_.spec().name)
        .set(static_cast<double>(active));
  }

  const bool up_signal =
      per_replica >= config_.jobs_up && active < fn_.replica_capacity();
  const bool down_signal = jobs <= config_.jobs_down && active > 1;
  if (up_signal) {
    ++up_run_;
    down_run_ = 0;
  } else if (down_signal) {
    ++down_run_;
    up_run_ = 0;
  } else {
    up_run_ = down_run_ = 0;
  }
  if (cooldown_ > 0) --cooldown_;

  if (cooldown_ == 0 && up_run_ >= config_.up_hysteresis) {
    fn_.set_active_replicas(active + 1);
    events_.push_back(ScaleEvent{sched_.now(), "fn:" + fn_.spec().name,
                                 static_cast<int>(active),
                                 static_cast<int>(active + 1), "backlog"});
    if (obs::Hub* hub = obs::hub()) {
      hub->registry
          .counter("control.replica_scale_up", "fn=" + fn_.spec().name)
          .inc();
    }
    cooldown_ = config_.cooldown;
    up_run_ = 0;
  } else if (cooldown_ == 0 && down_run_ >= config_.down_hysteresis &&
             active > 1) {
    fn_.set_active_replicas(active - 1);
    events_.push_back(ScaleEvent{sched_.now(), "fn:" + fn_.spec().name,
                                 static_cast<int>(active),
                                 static_cast<int>(active - 1), "idle"});
    if (obs::Hub* hub = obs::hub()) {
      hub->registry
          .counter("control.replica_scale_down", "fn=" + fn_.spec().name)
          .inc();
    }
    cooldown_ = config_.cooldown;
    down_run_ = 0;
  }

  sched_.schedule_background_after(config_.period, [this] { tick(); });
}

std::vector<std::unique_ptr<InstanceAutoscaler>> attach_instance_autoscalers(
    runtime::Cluster& cluster, InstanceAutoscalerConfig config) {
  std::vector<std::unique_ptr<InstanceAutoscaler>> out;
  for (FunctionId fn : cluster.deployed_functions()) {
    runtime::FunctionInstance& inst = cluster.instance(fn);
    if (inst.replica_capacity() <= 1) continue;  // nothing to actuate
    auto& sched = cluster.scheduler_for(cluster.placement_of(fn));
    out.push_back(
        std::make_unique<InstanceAutoscaler>(inst, sched, config));
    out.back()->start();
  }
  return out;
}

}  // namespace pd::control
