// Cart-store ablation (ISSUE 8): the RDMA state store vs the two-sided
// RPC path on the boutique's cart-touching chains.
//
// One run builds the same two-node Palladium deployment twice — once with
// CartService visited over RPC (the seed behaviour) and once with the
// frontend fetching/committing cart records through the one-sided store —
// and reports per-chain p50/p99 plus the counters that prove the
// mechanism: one-sided READ/CAS/FAA counts, cart-service invocations, and
// the store node's host-CPU busy time (which must *drop* in store mode:
// the whole point of one-sided verbs is that the remote CPU never runs).
//
// json() is integer-only and byte-identical across --threads 1/2/4 — the
// artifact tools/golden/cart_store.json pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pd::control {

struct CartAblationOptions {
  /// 0 = legacy single-scheduler run; N > 0 = sharded ParallelSim over N
  /// OS threads (bit-identical results for every N).
  std::size_t threads = 0;
  std::int64_t seconds = 2;
};

struct CartAblationResult {
  struct ChainRow {
    std::string target;  ///< page, e.g. "/viewcart"
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::int64_t p50_ns = 0;
    std::int64_t p99_ns = 0;
  };

  struct ModeRow {
    std::string mode;  ///< "rpc" or "store"
    std::vector<ChainRow> chains;  ///< fixed page order
    bool zero_loss = false;

    // Frontend-side store activity (0 in rpc mode).
    std::uint64_t store_ops = 0;
    std::uint64_t store_fallbacks = 0;
    std::uint64_t store_reads = 0;
    std::uint64_t store_updates = 0;
    std::uint64_t store_cas_conflicts = 0;
    std::uint64_t store_errors = 0;

    // Hot-node RNIC verb counters (the one-sided traffic itself).
    std::uint64_t rnic_reads = 0;
    std::uint64_t rnic_atomics = 0;
    std::uint64_t rnic_fetch_adds = 0;
    std::uint64_t rnic_access_errors = 0;
    std::uint64_t rnic_atomic_access_errors = 0;

    /// CartService invocations on the store node (drops to the Checkout
    /// chain's share in store mode) and the store node's host-CPU busy ns.
    std::uint64_t cart_invocations = 0;
    std::int64_t store_node_cpu_busy_ns = 0;
  };

  ModeRow rpc;
  ModeRow store;

  /// Integer-only JSON, byte-identical across thread counts.
  [[nodiscard]] std::string json() const;
  /// Human-readable side-by-side table.
  [[nodiscard]] std::string table() const;
};

/// Run both modes back to back (fresh simulation each).
CartAblationResult run_cart_ablation(const CartAblationOptions& opts);

}  // namespace pd::control
