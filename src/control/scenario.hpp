// Deterministic overload-scenario suite (ISSUE 7 tentpole, part 3).
//
// Four canned overload shapes against the Online Boutique deployment, each
// runnable with the control loop (autoscalers + per-tenant admission) off
// or on, serial or sharded. A run produces an OverloadResult whose json()
// is integer-only and byte-identical across --threads 1/2/4 — the
// before/after SLO tables the overload gate diffs.
//
//  - flash_crowd:     /home population steps 12 -> 48 -> 12 mid-run.
//  - noisy_neighbor:  a best-effort batch tenant (32 closed-loop clients)
//                     piles onto a capacity-pinned fabric next to the
//                     protected boutique tenant. With control on the
//                     admission gate sheds the aggressor explicitly (429)
//                     and the protected tenant's p99 stays within SLO.
//  - diurnal:         the /home population ramps up and back down in six
//                     steps across the run.
//  - chaos_2x:        double the baseline load under a seeded FaultPlan
//                     (link outages, frame loss, QP faults, crashes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "control/autoscaler.hpp"
#include "sim/time.hpp"

namespace pd::control {

enum class OverloadScenario : std::uint8_t {
  kFlashCrowd,
  kNoisyNeighbor,
  kDiurnal,
  kChaos2x,
};

const char* to_string(OverloadScenario s);
/// "flash_crowd" / "noisy_neighbor" / "diurnal" / "chaos_2x"; PD_CHECKs on
/// anything else.
OverloadScenario parse_scenario(const std::string& name);
/// All four, in enum order (sweep drivers iterate this).
const std::vector<OverloadScenario>& all_scenarios();

struct OverloadOptions {
  OverloadScenario scenario = OverloadScenario::kFlashCrowd;
  /// 0 = legacy single-scheduler run; N > 0 = sharded ParallelSim over N
  /// OS threads (bit-identical results for every N).
  std::size_t threads = 0;
  /// false = open loop: no autoscalers, no admission gate (the "before"
  /// column); true = the full ISSUE 7 control loop (the "after" column).
  bool control = true;
  std::int64_t seconds = 3;
  std::uint64_t chaos_seed = 42;  ///< kChaos2x fault-plan seed
  /// Shedding policy the edge controller applies once pressure engages
  /// (only meaningful with control on): kBurnRate clamps every best-effort
  /// tenant; kBlame targets the resource ledger's measured top aggressor
  /// of the protected (shop) tenant.
  ShedPolicy shed_policy = ShedPolicy::kBurnRate;
};

struct OverloadResult {
  std::string scenario;
  bool control = false;
  /// "open" (control off), "burn-rate", or "blame".
  std::string policy;

  struct SloRow {
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    std::uint64_t alerts = 0;
  };
  std::vector<SloRow> slos;  ///< sorted by name

  struct GenRow {
    std::string target;   ///< page, e.g. "/home"
    std::string tenant;   ///< "shop" or "batch"
    std::uint64_t sent = 0;
    std::uint64_t completed = 0;
    std::uint64_t errors = 0;
    std::int64_t p99_ns = 0;
  };
  std::vector<GenRow> gens;  ///< fixed page order

  // Edge-side policy/fault counters (distinct by design: shed_admission is
  // the 429 policy drop, deadline_expired the 504 timeout).
  std::uint64_t shed_admission = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t bad_gateway = 0;
  std::uint64_t ingress_scale_events = 0;
  int final_workers = 0;

  // Fabric-side counters summed over worker engines.
  std::uint64_t engine_shed_admission = 0;
  std::uint64_t engine_requests_shed = 0;

  // Controller activity (0 with control off).
  std::uint64_t controller_events = 0;
  std::uint64_t replica_events = 0;
  std::uint64_t pressure_engagements = 0;

  /// Per-tenant admission-gate outcomes (sorted by tenant id).
  struct AdmissionRow {
    std::string tenant;  ///< "shop" / "batch" / numeric label
    std::uint64_t id = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };
  std::vector<AdmissionRow> admission;

  /// Resource-ledger interference matrix, aggregated per (kind, aggressor,
  /// victim) and sorted by descending ns — "aggressor imposed ns of
  /// queueing on victim at resources of this kind". Self-blame rows are
  /// included so each victim's rows sum to its measured wait.
  struct BlameRow {
    std::string kind;
    std::int64_t aggressor = 0;
    std::int64_t victim = 0;
    std::uint64_t ns = 0;
  };
  std::vector<BlameRow> blame;

  /// The full resource-ledger report (obs::Ledger::to_json): per-resource
  /// occupancy/wait/byte cells plus the blame matrix. Byte-identical
  /// across thread counts; written by the driver's --ledger-json flag.
  std::string ledger_json;

  /// Every request issued got an explicit answer: sent == completed+errors
  /// across all generators after the drain.
  bool zero_loss = false;

  /// Integer-only JSON (deterministic across thread counts); the artifact
  /// tools/report_diff.py and the golden gate consume.
  [[nodiscard]] std::string json() const;
  /// Human-readable per-tenant SLO table for the demo's before/after view.
  [[nodiscard]] std::string table() const;
};

/// Build the scenario's cluster, run it to the horizon, drain, and collect
/// the result. Self-contained: every call constructs a fresh simulation.
OverloadResult run_overload(const OverloadOptions& opts);

}  // namespace pd::control
