#include "control/cartstore_bench.hpp"

#include <cstdio>
#include <memory>

#include "common/check.hpp"
#include "ingress/palladium_ingress.hpp"
#include "obs/hub.hpp"
#include "rdma/rnic.hpp"
#include "runtime/boutique.hpp"
#include "runtime/function.hpp"
#include "runtime/statestore.hpp"
#include "sim/parallel.hpp"
#include "workload/http_client.hpp"

namespace pd::control {

using namespace pd::runtime;

namespace {

constexpr NodeId kHotNode{1};   ///< frontend — runs the store client
constexpr NodeId kColdNode{2};  ///< cart service — hosts the store slab

struct Population {
  const char* target;
  std::uint32_t chain;
  int clients;
};

// Cart-touching pages only: the read-heavy mix the store is for, plus the
// RMW page exercising the CAS ladder. Checkout is deliberately absent —
// its cart visit stays RPC in both modes.
const Population kPages[] = {
    {"/home", OnlineBoutique::kHomeQuery, 8},
    {"/viewcart", OnlineBoutique::kViewCart, 8},
    {"/addtocart", OnlineBoutique::kAddToCart, 4},
};

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\": %llu%s", key,
                static_cast<unsigned long long>(v), comma ? ", " : "");
  out += buf;
}

CartAblationResult::ModeRow run_mode(bool use_store,
                                     const CartAblationOptions& opts) {
  const sim::Duration horizon = opts.seconds * 1'000'000'000;

  obs::Hub hub;
  obs::Session session(hub);

  sim::Scheduler serial_sched;
  std::unique_ptr<sim::ParallelSim> psim;
  if (opts.threads > 0) {
    psim = std::make_unique<sim::ParallelSim>(3, opts.threads);
  }

  ClusterConfig cfg;
  cfg.system = SystemKind::kPalladiumDne;
  cfg.cpu_cores_per_node = 16;
  auto cluster = psim != nullptr
                     ? std::make_unique<Cluster>(*psim, cfg)
                     : std::make_unique<Cluster>(serial_sched, cfg);
  sim::Scheduler& sched = cluster->scheduler();
  cluster->add_worker(kHotNode);
  cluster->add_worker(kColdNode);

  OnlineBoutique::deploy(*cluster, kHotNode, kColdNode, use_store);
  if (use_store) cluster->enable_cart_store(kColdNode);

  ingress::PalladiumIngress::Config icfg;
  icfg.initial_workers = 1;
  icfg.max_workers = 4;
  icfg.autoscale = false;
  ingress::PalladiumIngress gateway(*cluster, icfg);
  for (const Population& p : kPages) gateway.expose_chain(p.target, p.chain);
  gateway.finish_setup();
  cluster->finish_setup();

  std::vector<std::unique_ptr<workload::HttpLoadGen>> gens;
  for (const Population& p : kPages) {
    workload::HttpLoadGen::Config wcfg;
    wcfg.target = p.target;
    wcfg.body = R"({"session":"u-1234","currency":"EUR"})";
    wcfg.client_cores = 4;
    gens.push_back(
        std::make_unique<workload::HttpLoadGen>(sched, gateway, wcfg));
    gens.back()->add_clients(p.clients);
  }

  if (psim != nullptr) {
    psim->run_until(horizon);
    for (auto& g : gens) g->stop();
    psim->run();
  } else {
    sched.run_until(horizon);
    for (auto& g : gens) g->stop();
    sched.run();
  }

  CartAblationResult::ModeRow row;
  row.mode = use_store ? "store" : "rpc";

  std::uint64_t sent = 0;
  std::uint64_t answered = 0;
  for (std::size_t i = 0; i < gens.size(); ++i) {
    workload::HttpLoadGen& g = *gens[i];
    CartAblationResult::ChainRow cr;
    cr.target = kPages[i].target;
    cr.sent = g.sent();
    cr.completed = g.completed();
    cr.errors = g.errors();
    cr.p50_ns = g.completed() > 0 ? g.latencies().quantile(0.50) : 0;
    cr.p99_ns = g.completed() > 0 ? g.latencies().quantile(0.99) : 0;
    sent += cr.sent;
    answered += cr.completed + cr.errors;
    row.chains.push_back(std::move(cr));
  }
  row.zero_loss = sent == answered;

  FunctionInstance& fe = cluster->instance(OnlineBoutique::kFrontend);
  row.store_ops = fe.store_ops();
  row.store_fallbacks = fe.store_fallbacks();
  if (CartStoreClient* sc = cluster->cart_client(kHotNode)) {
    const CartStoreClient::Counters& c = sc->counters();
    row.store_reads = c.reads;
    row.store_updates = c.updates;
    row.store_cas_conflicts = c.cas_conflicts;
    row.store_errors = c.errors;
  }
  const rdma::RnicCounters& nc = cluster->worker(kHotNode).rnic()->counters();
  row.rnic_reads = nc.reads;
  row.rnic_atomics = nc.atomics;
  row.rnic_fetch_adds = nc.fetch_adds;
  row.rnic_access_errors = nc.access_errors;
  row.rnic_atomic_access_errors = nc.atomic_access_errors;

  row.cart_invocations = cluster->instance(OnlineBoutique::kCart).invocations();
  row.store_node_cpu_busy_ns = cluster->worker(kColdNode).cpu().total_busy_ns();
  return row;
}

void mode_json(std::string& out, const CartAblationResult::ModeRow& m,
               bool last) {
  out += "  \"" + m.mode + "\": {\n    ";
  append_u64(out, "zero_loss", m.zero_loss ? 1 : 0, false);
  out += ",\n    \"chains\": [\n";
  for (std::size_t i = 0; i < m.chains.size(); ++i) {
    const CartAblationResult::ChainRow& c = m.chains[i];
    out += "      {\"target\": \"" + c.target + "\", ";
    append_u64(out, "sent", c.sent);
    append_u64(out, "completed", c.completed);
    append_u64(out, "errors", c.errors);
    append_u64(out, "p50_ns", static_cast<std::uint64_t>(c.p50_ns));
    append_u64(out, "p99_ns", static_cast<std::uint64_t>(c.p99_ns), false);
    out += i + 1 < m.chains.size() ? "},\n" : "}\n";
  }
  out += "    ],\n    \"store\": {";
  append_u64(out, "ops", m.store_ops);
  append_u64(out, "fallbacks", m.store_fallbacks);
  append_u64(out, "reads", m.store_reads);
  append_u64(out, "updates", m.store_updates);
  append_u64(out, "cas_conflicts", m.store_cas_conflicts);
  append_u64(out, "errors", m.store_errors, false);
  out += "},\n    \"rnic\": {";
  append_u64(out, "reads", m.rnic_reads);
  append_u64(out, "atomics", m.rnic_atomics);
  append_u64(out, "fetch_adds", m.rnic_fetch_adds);
  append_u64(out, "access_errors", m.rnic_access_errors);
  append_u64(out, "atomic_access_errors", m.rnic_atomic_access_errors, false);
  out += "},\n    ";
  append_u64(out, "cart_invocations", m.cart_invocations);
  append_u64(out, "store_node_cpu_busy_ns",
             static_cast<std::uint64_t>(m.store_node_cpu_busy_ns), false);
  out += last ? "\n  }\n" : "\n  },\n";
}

}  // namespace

CartAblationResult run_cart_ablation(const CartAblationOptions& opts) {
  PD_CHECK(opts.seconds >= 1, "cart ablation needs at least one second");
  CartAblationResult r;
  r.rpc = run_mode(/*use_store=*/false, opts);
  r.store = run_mode(/*use_store=*/true, opts);
  return r;
}

std::string CartAblationResult::json() const {
  std::string out = "{\n";
  mode_json(out, rpc, /*last=*/false);
  mode_json(out, store, /*last=*/true);
  out += "}\n";
  return out;
}

std::string CartAblationResult::table() const {
  char buf[192];
  std::string out = "cart-store ablation (rpc vs one-sided store):\n";
  std::snprintf(buf, sizeof buf, "  %-6s %-12s %10s %10s %10s %10s\n", "mode",
                "page", "sent", "completed", "p50 us", "p99 us");
  out += buf;
  for (const ModeRow* m : {&rpc, &store}) {
    for (const ChainRow& c : m->chains) {
      std::snprintf(buf, sizeof buf,
                    "  %-6s %-12s %10llu %10llu %10.1f %10.1f\n",
                    m->mode.c_str(), c.target.c_str(),
                    static_cast<unsigned long long>(c.sent),
                    static_cast<unsigned long long>(c.completed),
                    static_cast<double>(c.p50_ns) / 1e3,
                    static_cast<double>(c.p99_ns) / 1e3);
      out += buf;
    }
  }
  for (const ModeRow* m : {&rpc, &store}) {
    std::snprintf(
        buf, sizeof buf,
        "  %-6s store ops=%llu fb=%llu reads=%llu updates=%llu conflicts=%llu"
        " | cart invocations=%llu\n",
        m->mode.c_str(), static_cast<unsigned long long>(m->store_ops),
        static_cast<unsigned long long>(m->store_fallbacks),
        static_cast<unsigned long long>(m->store_reads),
        static_cast<unsigned long long>(m->store_updates),
        static_cast<unsigned long long>(m->store_cas_conflicts),
        static_cast<unsigned long long>(m->cart_invocations));
    out += buf;
    std::snprintf(
        buf, sizeof buf,
        "  %-6s rnic reads=%llu cas=%llu faa=%llu denials=%llu"
        " | store-node cpu busy=%.2f ms  zero-loss=%s\n",
        m->mode.c_str(), static_cast<unsigned long long>(m->rnic_reads),
        static_cast<unsigned long long>(m->rnic_atomics),
        static_cast<unsigned long long>(m->rnic_fetch_adds),
        static_cast<unsigned long long>(m->rnic_access_errors +
                                        m->rnic_atomic_access_errors),
        static_cast<double>(m->store_node_cpu_busy_ns) / 1e6,
        m->zero_loss ? "yes" : "NO");
    out += buf;
  }
  return out;
}

}  // namespace pd::control
