// Per-tenant admission control for the cluster edge (ISSUE 7 tentpole,
// part 2).
//
// A priority-aware token-bucket gate consulted by PalladiumIngress before a
// request enters the fabric. In steady state every tenant is admitted; when
// the controller raises "pressure" (the SLO-burn feedback loop deciding the
// cluster is overloaded), protected tenants (priority >= 1) keep flowing
// while best-effort tenants are clamped to their provisioned token rate and
// everything beyond it is shed with an explicit 429 — graceful degradation
// instead of a collective p99 collapse.
//
// Header-only and pure integer arithmetic on the simulated clock: refill is
// computed lazily from elapsed simulated nanoseconds with a remainder
// carry, so decisions are exact and byte-identical across host thread
// counts. The gate lives on the edge shard and is only ever consulted from
// edge events (shard-locality contract).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"

namespace pd::control {

enum class Verdict : std::uint8_t { kAdmit, kShed };

struct TenantPolicy {
  TenantId tenant{};
  /// 0 = best-effort (sheddable under pressure), >= 1 = protected.
  std::uint32_t priority = 0;
  /// Token refill rate (requests per simulated second) applied while the
  /// gate is under pressure.
  std::uint64_t rate_rps = 1000;
  /// Bucket depth: short bursts above rate_rps pass until this drains.
  std::uint64_t burst = 32;
};

class AdmissionController {
 public:
  void add_policy(const TenantPolicy& policy) {
    PD_CHECK(policy.tenant.valid(), "admission policy needs a tenant");
    PD_CHECK(policy.burst > 0, "admission burst must be positive");
    auto [it, inserted] = tenants_.emplace(policy.tenant, State{});
    PD_CHECK(inserted, "duplicate admission policy for " << policy.tenant);
    it->second.policy = policy;
    it->second.tokens = policy.burst;  // start full: bursts at t=0 admit
  }

  [[nodiscard]] bool has_policy(TenantId tenant) const {
    return tenants_.find(tenant) != tenants_.end();
  }

  /// Engage / release overload pressure. While released, every tenant is
  /// admitted unconditionally (buckets still refill, so engaging pressure
  /// later starts from a full, not stale, bucket).
  void set_pressure(bool on) {
    if (on && !pressure_) ++engagements_;
    pressure_ = on;
    if (!on) target_ = TenantId{};
  }
  [[nodiscard]] bool pressure() const { return pressure_; }
  [[nodiscard]] std::uint64_t engagements() const { return engagements_; }

  /// Targeted (blame-driven) pressure: point the gate at the measured
  /// aggressor. While pressure is engaged with a target, the target pays
  /// `target_cost()` tokens per admit — a 1/target_cost() clamp of its
  /// provisioned rate — while other best-effort tenants keep the plain
  /// one-token clamp. Releasing pressure clears the target.
  void set_pressure_target(TenantId tenant) { target_ = tenant; }
  void clear_pressure_target() { target_ = TenantId{}; }
  [[nodiscard]] TenantId pressure_target() const { return target_; }
  [[nodiscard]] static constexpr std::uint64_t target_cost() { return 4; }

  /// Gate one request of `tenant` arriving at simulated time `now`.
  /// Unknown tenants (no declared policy) are always admitted.
  Verdict try_admit(TenantId tenant, sim::TimePoint now) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return Verdict::kAdmit;
    State& s = it->second;
    refill(s, now);
    if (pressure_ && target_.valid()) {
      // Blame-driven mode: shedding is focused on the measured aggressor.
      // The target pays target_cost() tokens per admit (rate_rps / 4
      // effective — strictly tighter than the plain clamp); everyone else
      // keeps flowing, so innocent best-effort tenants are not collateral.
      if (tenant != target_) {
        if (s.tokens > 0) --s.tokens;
        ++s.admitted;
        return Verdict::kAdmit;
      }
      if (s.tokens >= target_cost()) {
        s.tokens -= target_cost();
        ++s.admitted;
        return Verdict::kAdmit;
      }
      ++s.shed;
      return Verdict::kShed;
    }
    if (!pressure_ || s.policy.priority >= 1) {
      // Consume a token when one is there so a protected tenant's bucket
      // reflects its real arrival rate, but never block on it.
      if (s.tokens > 0) --s.tokens;
      ++s.admitted;
      return Verdict::kAdmit;
    }
    if (s.tokens > 0) {
      --s.tokens;
      ++s.admitted;
      return Verdict::kAdmit;
    }
    ++s.shed;
    return Verdict::kShed;
  }

  [[nodiscard]] std::uint64_t admitted(TenantId tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.admitted;
  }
  [[nodiscard]] std::uint64_t shed(TenantId tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.shed;
  }
  [[nodiscard]] std::uint64_t tokens(TenantId tenant) const {
    auto it = tenants_.find(tenant);
    return it == tenants_.end() ? 0 : it->second.tokens;
  }

  /// Tenants with declared policies, sorted by id (deterministic
  /// iteration for reports and probes).
  [[nodiscard]] std::vector<TenantId> policies() const {
    std::vector<TenantId> out;
    out.reserve(tenants_.size());
    for (const auto& [tenant, state] : tenants_) out.push_back(tenant);
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct State {
    TenantPolicy policy;
    std::uint64_t tokens = 0;
    /// Sub-token refill remainder in rps-weighted nanoseconds (carry so
    /// rates that do not divide 1e9 refill exactly over time).
    std::uint64_t carry = 0;
    sim::TimePoint last_refill = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };

  static void refill(State& s, sim::TimePoint now) {
    if (now <= s.last_refill) return;
    const auto elapsed = static_cast<std::uint64_t>(now - s.last_refill);
    s.last_refill = now;
    // tokens += elapsed_ns * rate / 1e9, exactly, via remainder carry.
    s.carry += elapsed * s.policy.rate_rps;
    const std::uint64_t whole = s.carry / 1'000'000'000ULL;
    s.carry %= 1'000'000'000ULL;
    s.tokens = std::min(s.tokens + whole, s.policy.burst);
    if (s.tokens == s.policy.burst) s.carry = 0;  // full bucket holds no carry
  }

  std::unordered_map<TenantId, State> tenants_;
  bool pressure_ = false;
  TenantId target_{};  ///< invalid() = untargeted (plain clamp)
  std::uint64_t engagements_ = 0;
};

}  // namespace pd::control
