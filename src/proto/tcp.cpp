#include "proto/tcp.hpp"

#include <algorithm>
#include <memory>

#include "common/check.hpp"

namespace pd::proto {

StackCosts costs_for(StackKind kind) {
  switch (kind) {
    case StackKind::kKernel:
      return {cost::kKernelTcpPerReqNs, cost::kKernelTcpLatencyNs,
              cost::kKernelCopyPerByteNs, cost::kInterruptNs};
    case StackKind::kKernelPersistent:
      return {cost::kKernelRelayPerReqNs, cost::kKernelTcpLatencyNs,
              cost::kKernelCopyPerByteNs, cost::kKernelRelayInterruptNs};
    case StackKind::kFstack:
      return {cost::kFstackPerReqNs, cost::kFstackLatencyNs,
              cost::kKernelCopyPerByteNs / 4.0, 0};
    case StackKind::kFstackBatched:
      return {cost::kFstackBatchedPerReqNs, cost::kFstackLatencyNs,
              cost::kKernelCopyPerByteNs / 4.0, 0};
  }
  PD_UNREACHABLE("bad stack kind");
}

TcpConnection::TcpConnection(sim::Scheduler& sched, fabric::Switch& eth,
                             TcpEndpoint a, TcpEndpoint b)
    : sched_(sched), eth_(eth), a_(std::move(a)), b_(std::move(b)) {
  for (const TcpEndpoint* ep : {&a_, &b_}) {
    PD_CHECK((ep->core != nullptr) != (ep->cores != nullptr),
             "endpoint needs exactly one of core/cores");
  }
  PD_CHECK(a_.node != b_.node, "TCP model spans two nodes");
}

sim::Core& TcpConnection::pick_core(TcpEndpoint& ep) {
  return ep.core != nullptr ? *ep.core : ep.cores->least_loaded();
}

void TcpConnection::connect(std::function<void()> established) {
  PD_CHECK(!established_, "connection already established");
  const StackCosts ca = costs_for(a_.stack);
  const StackCosts cb = costs_for(b_.stack);
  // SYN ->, SYN/ACK <-, ACK -> : 1.5 RTTs plus per-side stack work.
  pick_core(a_).submit(ca.per_req, [this, cb,
                                    established = std::move(established)]() mutable {
    eth_.send(a_.node, b_.node, 64, [this, cb,
                                     established = std::move(established)]() mutable {
      pick_core(b_).submit(cb.per_req, [this, established =
                                                  std::move(established)]() mutable {
        eth_.send(b_.node, a_.node, 64, [this, established =
                                                   std::move(established)]() mutable {
          eth_.send(a_.node, b_.node, 64, [this, established =
                                                     std::move(established)] {
            established_ = true;
            if (established) established();
          });
        });
      });
    });
  });
}

void TcpConnection::send(TcpEndpoint& from, TcpEndpoint& to,
                         std::string bytes) {
  PD_CHECK(established_, "send on unestablished connection");
  const StackCosts tx = costs_for(from.stack);
  const StackCosts rx = costs_for(to.stack);
  const auto len = static_cast<Bytes>(bytes.size());
  ++messages_;
  bytes_ += len;

  const auto tx_work =
      tx.per_req + static_cast<sim::Duration>(static_cast<double>(len) * tx.per_byte);
  const auto rx_work =
      rx.per_req + static_cast<sim::Duration>(static_cast<double>(len) * rx.per_byte);

  auto payload = std::make_shared<std::string>(std::move(bytes));
  pick_core(from).submit(tx_work, [this, &from, &to, len, rx, rx_work, tx,
                                   payload] {
    sched_.schedule_after(tx.latency, [this, &from, &to, len, rx, rx_work,
                                       payload] {
      eth_.send(from.node, to.node, len, [this, &to, rx, rx_work, payload] {
        sched_.schedule_after(rx.latency, [this, &to, rx, rx_work, payload] {
          sim::Core& rx_core = pick_core(to);
          if (rx.interrupt > 0) {
            // Interrupt-driven: softirq wakeup precedes protocol work, and
            // under a receive backlog the per-packet cost inflates
            // (interrupt storms / receive livelock, Mogul & Ramakrishnan
            // [68]) — the regime that collapses K-Ingress in Figs. 13/14.
            const sim::Duration base = rx.interrupt + rx_work;
            const sim::Duration penalty =
                std::min<sim::Duration>(base * rx_core.backlog() / 30'000,
                                        2 * base);
            rx_core.submit(base + penalty, [&to, payload] {
              if (to.on_message) to.on_message(*payload);
            });
          } else {
            rx_core.submit(rx_work, [&to, payload] {
              if (to.on_message) to.on_message(*payload);
            });
          }
        });
      });
    });
  });
}

}  // namespace pd::proto
