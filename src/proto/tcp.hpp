// Request-granularity TCP stack models: the interrupt-driven Linux kernel
// stack and the DPDK-based F-stack (§3.6, §4.1.3 baselines).
//
// A TcpConnection joins two endpoints across the Ethernet switch. Each
// message send charges protocol-processing work to the sender's core,
// serializes on the wire, then charges receive-side work (plus an
// interrupt for the kernel stack) before the peer's handler runs. This is
// deliberately request-granular: the experiments care about per-request
// CPU cost and queueing, not segment dynamics.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "fabric/fabric.hpp"
#include "proto/cost_model.hpp"
#include "sim/core.hpp"

namespace pd::proto {

enum class StackKind : std::uint8_t {
  kKernel,          ///< interrupt-driven kernel TCP/IP
  kKernelPersistent,///< long-lived engine-to-engine relay socket (SPRIGHT)
  kFstack,          ///< DPDK userspace TCP, busy-polled
  kFstackBatched,   ///< F-stack with event-loop batching (PALLADIUM ingress)
};

struct StackCosts {
  sim::Duration per_req;      ///< protocol processing per message, per side
  sim::Duration latency;      ///< stack traversal latency floor, per side
  double per_byte;            ///< copy cost (user <-> stack buffers)
  sim::Duration interrupt;    ///< receive interrupt (0 for polled stacks)
};

StackCosts costs_for(StackKind kind);

/// One side of a TCP connection. `core` (single) or `cores` (RSS across a
/// set) receives the CPU charges; exactly one must be set. `on_message`
/// runs when a complete application message arrives.
struct TcpEndpoint {
  NodeId node{};
  StackKind stack = StackKind::kKernel;
  sim::Core* core = nullptr;
  sim::CoreSet* cores = nullptr;
  std::function<void(std::string_view)> on_message;
};

class TcpConnection {
 public:
  TcpConnection(sim::Scheduler& sched, fabric::Switch& eth, TcpEndpoint a,
                TcpEndpoint b);

  /// Three-way handshake; `established` fires when the connection is ready.
  void connect(std::function<void()> established);
  [[nodiscard]] bool established() const { return established_; }

  /// Send an application message from endpoint A to B (or B to A). The
  /// peer's on_message handler receives the bytes after stack + wire costs.
  void send_a_to_b(std::string bytes) { send(a_, b_, std::move(bytes)); }
  void send_b_to_a(std::string bytes) { send(b_, a_, std::move(bytes)); }

  [[nodiscard]] std::uint64_t messages() const { return messages_; }
  [[nodiscard]] Bytes bytes_transferred() const { return bytes_; }

  TcpEndpoint& endpoint_a() { return a_; }
  TcpEndpoint& endpoint_b() { return b_; }

 private:
  void send(TcpEndpoint& from, TcpEndpoint& to, std::string bytes);
  static sim::Core& pick_core(TcpEndpoint& ep);

  sim::Scheduler& sched_;
  fabric::Switch& eth_;
  TcpEndpoint a_;
  TcpEndpoint b_;
  bool established_ = false;
  std::uint64_t messages_ = 0;
  Bytes bytes_ = 0;
};

}  // namespace pd::proto
