// Hardware & software cost calibration for the simulated testbed.
//
// Every constant models one component of the paper's testbed (§4: 4 nodes,
// 2×40-core 3.7GHz x86, Bluefield-2 DPUs with 2.0GHz A72 cores, ConnectX-6
// RNICs, 200 Gbps switches). Values are expressed in *reference
// nanoseconds* — time on a speed-1.0 host core — or in physical units.
// Sources are the paper's own reported single-point numbers and the systems
// it cites ([90] Wei et al. for SoC DMA, FaRM for one-sided designs).
//
// Changing a constant here recalibrates every benchmark consistently.
#pragma once

#include "common/units.hpp"
#include "sim/time.hpp"

namespace pd::cost {

using sim::Duration;

// --------------------------------------------------------------------------
// Processor cores
// --------------------------------------------------------------------------

/// Host x86 core (3.7 GHz): the reference, speed 1.0.
inline constexpr double kHostCoreSpeed = 1.0;

/// DPU Arm A72 core @2.0 GHz vs x86 @3.7 GHz. §4.3.1 notes the streamlined
/// ISA "compensates somewhat"; effective throughput ratio ~0.5.
inline constexpr double kDpuCoreSpeed = 0.5;

// --------------------------------------------------------------------------
// Fabric (200 Gbps switched RDMA network)
// --------------------------------------------------------------------------

inline constexpr double kFabricBandwidthBps = 200e9;   // 200 Gbps links
inline constexpr Duration kFabricPropagationNs = 600;  // NIC->switch->NIC
inline constexpr Duration kSwitchLatencyNs = 400;      // cut-through hop

/// Multi-switch fabric (leaf-spine, ISSUE 9): one leaf<->spine fiber leg —
/// a multi-rack fiber run plus spine pipeline latency, so several times the
/// in-rack NIC<->ToR hop — and the default leaf-uplink oversubscription
/// (per-flow uplink share = port bandwidth / factor). The leg length also
/// feeds the PDES lookahead matrix: cross-leaf shard pairs grant each other
/// horizons of 2 switch hops + 2 legs (~4.5 us), which is what lets the
/// parallel loop batch epochs at cluster scale.
inline constexpr Duration kInterSwitchPropagationNs = 1'500;
inline constexpr double kUplinkOversubscription = 4.0;

// --------------------------------------------------------------------------
// RNIC (ConnectX-6 class)
// --------------------------------------------------------------------------

/// Per-WR processing on the NIC (doorbell, WQE fetch, scheduling).
inline constexpr Duration kRnicPerWrNs = 250;
/// Effective per-byte DMA+PCIe cost on each NIC traversal. Calibrated so a
/// 4 KiB two-sided echo lands near the paper's 11.6 µs vs 8.4 µs at 64 B.
inline constexpr double kRnicPerByteNs = 0.25;
/// CQE generation + host-visible completion.
inline constexpr Duration kRnicCqeNs = 150;
/// RC connection establishment ("tens of milliseconds", §3.3).
inline constexpr Duration kRcConnectNs = 20 * 1'000'000;  // 20 ms
/// Re-activating an inactive (shadow) QP — no network exchange ([52]).
inline constexpr Duration kQpActivateNs = 2'000;
/// Max active QPs before NIC cache thrashing sets in (§3.3, [88]).
inline constexpr int kRnicQpCacheSlots = 64;
/// Extra per-WR penalty when the active-QP set overflows the NIC cache.
inline constexpr Duration kQpCacheMissPenaltyNs = 1'200;

// --------------------------------------------------------------------------
// DPU network engine (DNE) stages — run on the DPU core at kDpuCoreSpeed
// --------------------------------------------------------------------------

/// TX stage: consume descriptor, routing lookup, least-congested QP pick,
/// wrap WR, post (§3.2). Reference ns (halved throughput on the DPU core).
inline constexpr Duration kDneTxStageNs = 550;
/// RX stage: CQE poll, RBR lookup, extract destination, forward to Comch.
inline constexpr Duration kDneRxStageNs = 450;
/// Core-thread receive-buffer replenish, per buffer (§3.5.2).
inline constexpr Duration kDneReplenishNs = 120;
/// DWRR scheduling decision per dequeue (§3.3).
inline constexpr Duration kDneSchedNs = 60;

// --------------------------------------------------------------------------
// DPU SoC DMA engine (on-path mode only, §2.1 Challenge#2 / Fig. 3)
// --------------------------------------------------------------------------

/// 64 B DMA read latency ≈ 2.6 µs ([90], quoted in §4.1.1).
inline constexpr Duration kSocDmaBaseNs = 2'600;
/// The SoC DMA engine is slow — ~0.5 GB/s effective at the queue depths
/// an on-path engine drives it at ([90] reports single-digit-us 64 B ops
/// and poor scaling; this is what collapses on-path mode in Fig. 11 (2)).
inline constexpr double kSocDmaPerByteNs = 2.0;
/// The engine processes DMA ops serially (its poor concurrency is what
/// collapses on-path mode at high load, Fig. 11(2)).
inline constexpr int kSocDmaParallelism = 1;

// --------------------------------------------------------------------------
// Cross-processor channels (DOCA Comch, §3.5.4 / Fig. 9)
// --------------------------------------------------------------------------

/// Comch-E: event-driven send/recv over blocking epoll. Per-descriptor CPU
/// work on each side plus wakeup latency.
inline constexpr Duration kComchEPerMsgNs = 900;
inline constexpr Duration kComchELatencyNs = 6'000;
/// Comch-P: producer/consumer ring, busy polled. Very low latency...
inline constexpr Duration kComchPPerMsgNs = 350;
inline constexpr Duration kComchPLatencyNs = 700;
/// ...but its internal epoll-based progress engine charges the polling core
/// per monitored endpoint per dequeue, which overloads beyond ~6 functions.
inline constexpr Duration kComchPPollPerEndpointNs = 450;
/// Dedicated host core burned per Comch-P client (one busy ring each).
inline constexpr int kComchPCoresPerClient = 1;

// --------------------------------------------------------------------------
// Host kernel path (TCP/IP + syscalls + interrupts)
// --------------------------------------------------------------------------

/// Kernel TCP/IP per small request-response on one side (syscalls, skb
/// alloc, protocol processing, softirq). Drives K-Ingress in Fig. 13.
inline constexpr Duration kKernelTcpPerReqNs = 11'000;
/// Long-lived engine-to-engine relay sockets (SPRIGHT's inter-node path):
/// no per-request connection churn, aggregated writes, warm caches — the
/// kernel cost per message is substantially lower than a fresh
/// client-facing request.
inline constexpr Duration kKernelRelayPerReqNs = 4'500;
inline constexpr Duration kKernelRelayInterruptNs = 1'500;
/// Interrupt + wakeup cost charged to the receiving core per event.
inline constexpr Duration kInterruptNs = 2'200;
/// Kernel-path copy throughput (user<->skb), bytes/ns denominator.
inline constexpr double kKernelCopyPerByteNs = 0.25;
/// One-way latency floor of the kernel loopback/TCP path.
inline constexpr Duration kKernelTcpLatencyNs = 18'000;

/// F-stack (DPDK userspace TCP) per request-response on one side: no
/// syscalls, no interrupts, busy-polled.
inline constexpr Duration kFstackPerReqNs = 3'200;
inline constexpr Duration kFstackLatencyNs = 2'000;
/// Palladium's ingress batches socket events in its run-to-completion loop
/// (§3.6 "We enable batching in the event loop to improve concurrency"),
/// amortizing the per-request stack traversal.
inline constexpr Duration kFstackBatchedPerReqNs = 1'600;

/// eBPF SK_MSG descriptor handoff (§3.5.3): sockmap lookup + redirect,
/// bypassing the protocol stack. Sender-side cost; receiver pays an
/// interrupt-style wakeup (its Achilles heel at high concurrency, §4.3).
inline constexpr Duration kSkMsgSendNs = 650;
inline constexpr Duration kSkMsgWakeupNs = 1'400;
inline constexpr Duration kSkMsgLatencyNs = 1'800;

/// Loopback-TCP descriptor channel (Fig. 9 baseline).
inline constexpr Duration kTcpChanPerMsgNs = 8'500;
inline constexpr Duration kTcpChanLatencyNs = 25'000;

// --------------------------------------------------------------------------
// HTTP processing (NGINX-class, §3.6)
// --------------------------------------------------------------------------

inline constexpr Duration kHttpParseBaseNs = 1'800;
inline constexpr double kHttpParsePerByteNs = 0.05;
inline constexpr Duration kHttpSerializeNs = 1'200;
/// NGINX upstream (reverse-proxy) machinery per forwarded request:
/// upstream selection, connection bookkeeping, header rewrite, buffering.
/// Paid by K-/F-Ingress on every proxied hop; PALLADIUM's gateway replaces
/// it with a routing-table lookup + RDMA post.
inline constexpr Duration kNginxProxyForwardNs = 4'000;

// --------------------------------------------------------------------------
// Memory copies on host cores (for OWRC receiver-side copy, Fig. 12, and
// cross-security-domain copies)
// --------------------------------------------------------------------------

/// Cache-resident memcpy (~30 GB/s): the artificially favourable
/// "OWRC-Best" case the paper constructs.
inline constexpr double kCopyHotPerByteNs = 0.033;
/// Main-memory memcpy after TLB flush (~6 GB/s): "OWRC-Worst".
inline constexpr double kCopyColdPerByteNs = 0.16;
inline constexpr Duration kCopyBaseNs = 250;

// --------------------------------------------------------------------------
// One-sided RDMA designs (Fig. 2 / Fig. 12)
// --------------------------------------------------------------------------

/// Receiver-side arrival polling granularity (FaRM-style canary scan).
inline constexpr Duration kOneSidedPollIntervalNs = 1'500;
inline constexpr Duration kOneSidedPollWorkNs = 300;
/// RDMA CAS (lock acquire / release) — one NIC round trip plus atomic
/// execution on the remote NIC.
inline constexpr Duration kRdmaAtomicExtraNs = 600;
/// Lock retry backoff when a distributed lock is contended.
inline constexpr Duration kLockRetryBackoffNs = 2'000;
/// Posting a one-sided WR from the function runtime into the store client
/// (descriptor packing + doorbell; replaces the full RPC send path).
inline constexpr Duration kStorePostNs = 400;
/// Decoding a fetched cart record back into the chain's working payload
/// after the READ response lands.
inline constexpr Duration kStoreDecodeNs = 900;

// --------------------------------------------------------------------------
// Serverless runtime
// --------------------------------------------------------------------------

/// Function-runtime I/O library overhead per send/recv (routing query,
/// descriptor packing) on the calling core.
inline constexpr Duration kIoLibraryNs = 400;
/// Sidecar policy check per hop (lightweight eBPF sidecar, §3.1).
inline constexpr Duration kSidecarNs = 300;
/// NightCore-style dispatcher work per invocation: its engine brokers
/// every function call (Fig. 1's coordinator role) with HTTP-based
/// invocation framing — the cost systems with direct inter-function
/// invocation (SPRIGHT, PALLADIUM) avoid (§2.2).
inline constexpr Duration kDispatcherPerInvocationNs = 9'000;
/// Worker-process spawn/teardown during ingress horizontal scaling (§3.6
/// notes a brief interruption on restart).
inline constexpr Duration kIngressWorkerRestartNs = 300 * 1'000'000;  // 300 ms

}  // namespace pd::cost
