#include "proto/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace pd::proto {
namespace {

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

bool valid_version(std::string_view v) {
  return v == "HTTP/1.1" || v == "HTTP/1.0";
}

}  // namespace

std::optional<std::string_view> HttpHeaders::get(std::string_view name) const {
  for (const auto& [key, value] : fields) {
    if (iequals(key, name)) return std::string_view{value};
  }
  return std::nullopt;
}

template <typename Message>
void HttpParser<Message>::reset() {
  state_ = State::kStartLine;
  pending_.clear();
  msg_ = Message{};
  body_remaining_ = 0;
  error_.clear();
}

template <typename Message>
ParseStatus HttpParser<Message>::fail(std::string why) {
  state_ = State::kError;
  error_ = std::move(why);
  return ParseStatus::kError;
}

template <>
bool HttpParser<HttpRequest>::parse_start_line(std::string_view line) {
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const auto sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return false;
  msg_.method = std::string(line.substr(0, sp1));
  msg_.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  msg_.version = std::string(line.substr(sp2 + 1));
  return !msg_.method.empty() && !msg_.target.empty() &&
         valid_version(msg_.version);
}

template <>
bool HttpParser<HttpResponse>::parse_start_line(std::string_view line) {
  const auto sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  msg_.version = std::string(line.substr(0, sp1));
  if (!valid_version(msg_.version)) return false;
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string_view code =
      line.substr(sp1 + 1, sp2 == std::string_view::npos ? std::string_view::npos
                                                         : sp2 - sp1 - 1);
  auto [ptr, ec] = std::from_chars(code.data(), code.data() + code.size(),
                                   msg_.status);
  if (ec != std::errc{} || ptr != code.data() + code.size()) return false;
  if (msg_.status < 100 || msg_.status > 599) return false;
  msg_.reason = sp2 == std::string_view::npos
                    ? std::string{}
                    : std::string(line.substr(sp2 + 1));
  return true;
}

template <typename Message>
bool HttpParser<Message>::parse_header_line(std::string_view line) {
  const auto colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  msg_.headers.add(std::string(trim(line.substr(0, colon))),
                   std::string(trim(line.substr(colon + 1))));
  return true;
}

template <typename Message>
bool HttpParser<Message>::on_headers_complete() {
  if (auto te = msg_.headers.get("Transfer-Encoding"); te.has_value()) {
    return false;  // chunked unsupported by design
  }
  body_remaining_ = 0;
  if (auto cl = msg_.headers.get("Content-Length"); cl.has_value()) {
    std::size_t len = 0;
    auto [ptr, ec] = std::from_chars(cl->data(), cl->data() + cl->size(), len);
    if (ec != std::errc{} || ptr != cl->data() + cl->size()) return false;
    body_remaining_ = len;
  }
  return true;
}

template <typename Message>
std::pair<ParseStatus, std::size_t> HttpParser<Message>::feed(
    std::string_view data) {
  if (state_ == State::kError) return {ParseStatus::kError, 0};
  if (state_ == State::kComplete) return {ParseStatus::kComplete, 0};

  std::size_t consumed = 0;
  while (consumed < data.size() || state_ == State::kBody) {
    if (state_ == State::kBody) {
      const std::size_t take =
          std::min(body_remaining_, data.size() - consumed);
      msg_.body.append(data.substr(consumed, take));
      consumed += take;
      body_remaining_ -= take;
      if (body_remaining_ == 0) {
        state_ = State::kComplete;
        return {ParseStatus::kComplete, consumed};
      }
      return {ParseStatus::kNeedMore, consumed};
    }

    // Line-oriented states: accumulate until CRLF (or bare LF, accepted
    // leniently).
    const auto nl = data.find('\n', consumed);
    if (nl == std::string_view::npos) {
      pending_.append(data.substr(consumed));
      if (pending_.size() > 64 * 1024) {
        return {fail("header line exceeds 64 KiB"), consumed};
      }
      return {ParseStatus::kNeedMore, data.size()};
    }
    pending_.append(data.substr(consumed, nl - consumed));
    consumed = nl + 1;
    if (!pending_.empty() && pending_.back() == '\r') pending_.pop_back();
    std::string line = std::move(pending_);
    pending_.clear();

    switch (state_) {
      case State::kStartLine:
        if (line.empty()) continue;  // tolerate leading blank lines
        if (!parse_start_line(line)) {
          return {fail("malformed start line: " + line), consumed};
        }
        state_ = State::kHeaders;
        break;
      case State::kHeaders:
        if (line.empty()) {
          if (!on_headers_complete()) {
            return {fail("unsupported or malformed framing headers"), consumed};
          }
          if (body_remaining_ == 0) {
            state_ = State::kComplete;
            return {ParseStatus::kComplete, consumed};
          }
          state_ = State::kBody;
          break;
        }
        if (!parse_header_line(line)) {
          return {fail("malformed header: " + line), consumed};
        }
        if (msg_.headers.fields.size() > 256) {
          return {fail("too many headers"), consumed};
        }
        break;
      case State::kBody:
      case State::kComplete:
      case State::kError:
        break;
    }
  }
  return {ParseStatus::kNeedMore, consumed};
}

template class HttpParser<HttpRequest>;
template class HttpParser<HttpResponse>;

namespace {

void append_headers(std::string& out, const HttpHeaders& headers,
                    std::size_t body_size) {
  for (const auto& [name, value] : headers.fields) {
    if (iequals(name, "Content-Length")) continue;
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "Content-Length: ";
  out += std::to_string(body_size);
  out += "\r\n\r\n";
}

}  // namespace

std::string serialize(const HttpRequest& req) {
  std::string out;
  out.reserve(128 + req.body.size());
  out += req.method;
  out += ' ';
  out += req.target;
  out += ' ';
  out += req.version;
  out += "\r\n";
  append_headers(out, req.headers, req.body.size());
  out += req.body;
  return out;
}

std::string serialize(const HttpResponse& resp) {
  std::string out;
  out.reserve(128 + resp.body.size());
  out += resp.version;
  out += ' ';
  out += std::to_string(resp.status);
  out += ' ';
  out += resp.reason;
  out += "\r\n";
  append_headers(out, resp.headers, resp.body.size());
  out += resp.body;
  return out;
}

}  // namespace pd::proto
