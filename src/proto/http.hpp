// HTTP/1.1 message codec.
//
// A real (non-simulated) incremental parser/serializer: the ingress gateway
// terminates client HTTP before converting to RDMA (§3.6), and the payload
// bytes that cross the fabric in the examples are genuine HTTP messages.
// Supports request/response lines, headers, and Content-Length bodies;
// chunked transfer encoding is rejected as unsupported (the serverless
// gateway controls both ends and never emits it).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pd::proto {

struct HttpHeaders {
  std::vector<std::pair<std::string, std::string>> fields;

  void add(std::string name, std::string value) {
    fields.emplace_back(std::move(name), std::move(value));
  }
  /// Case-insensitive lookup of the first matching header.
  [[nodiscard]] std::optional<std::string_view> get(std::string_view name) const;
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version = "HTTP/1.1";
  HttpHeaders headers;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HttpHeaders headers;
  std::string body;
};

enum class ParseStatus {
  kNeedMore,   ///< message incomplete; feed more bytes
  kComplete,   ///< one full message parsed; excess bytes not consumed
  kError,      ///< malformed input
};

/// Incremental HTTP/1.1 parser. One instance parses one message at a time;
/// call reset() to reuse it for the next message on the same connection.
template <typename Message>
class HttpParser {
 public:
  /// Consume bytes from `data`. Returns the status and the number of bytes
  /// consumed (which may be < data.size() once the message completes).
  std::pair<ParseStatus, std::size_t> feed(std::string_view data);

  [[nodiscard]] const Message& message() const { return msg_; }
  [[nodiscard]] Message take() { return std::move(msg_); }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool done() const { return state_ == State::kComplete; }

  void reset();

 private:
  enum class State { kStartLine, kHeaders, kBody, kComplete, kError };

  ParseStatus fail(std::string why);
  bool parse_start_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  bool on_headers_complete();

  State state_ = State::kStartLine;
  std::string pending_;  // partial line buffer
  Message msg_;
  std::size_t body_remaining_ = 0;
  std::string error_;
};

using HttpRequestParser = HttpParser<HttpRequest>;
using HttpResponseParser = HttpParser<HttpResponse>;

/// Serialize with an automatic Content-Length header (any explicit
/// Content-Length in `headers` is ignored in favour of body.size()).
std::string serialize(const HttpRequest& req);
std::string serialize(const HttpResponse& resp);

}  // namespace pd::proto
