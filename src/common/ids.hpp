// Strongly-typed identifiers for the Palladium data plane.
//
// Every entity that crosses a module boundary (nodes, tenants, functions,
// queue pairs, memory pools, ...) gets its own ID type so that mixing them
// up is a compile-time error rather than a silent routing bug.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace pd {

/// CRTP-free strong integer ID. `Tag` only disambiguates the type.
template <typename Tag, typename Rep = std::uint32_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != invalid_rep; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

  static constexpr Rep invalid_rep = static_cast<Rep>(-1);
  static constexpr StrongId invalid() { return StrongId{invalid_rep}; }

 private:
  Rep value_ = invalid_rep;
};

using NodeId = StrongId<struct NodeTag>;
using TenantId = StrongId<struct TenantTag>;
using FunctionId = StrongId<struct FunctionTag>;
using PoolId = StrongId<struct PoolTag>;
using QpId = StrongId<struct QpTag>;
using ConnectionId = StrongId<struct ConnectionTag, std::uint64_t>;
using RequestId = StrongId<struct RequestTag, std::uint64_t>;
using ChannelId = StrongId<struct ChannelTag>;

}  // namespace pd

namespace std {
template <typename Tag, typename Rep>
struct hash<pd::StrongId<Tag, Rep>> {
  size_t operator()(pd::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
}  // namespace std
