#include "common/check.hpp"

namespace pd::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream oss;
  oss << "PD_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) {
    oss << " — " << msg;
  }
  throw CheckFailure(oss.str());
}

}  // namespace pd::detail
