// Invariant-checking macros used throughout the Palladium code base.
//
// PD_CHECK is always on (release and debug): data-plane invariants such as
// buffer-ownership exclusivity are part of the library's contract, and
// violating them must fail loudly rather than corrupt a simulation result.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pd {

/// Thrown when a PD_CHECK fails. Deriving from std::logic_error: a failed
/// check is always a programming error, never an environmental condition.
class CheckFailure : public std::logic_error {
 public:
  explicit CheckFailure(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace pd

#define PD_CHECK(expr, ...)                                              \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::std::ostringstream pd_check_oss;                                 \
      pd_check_oss << "" __VA_ARGS__;                                    \
      ::pd::detail::check_failed(#expr, __FILE__, __LINE__,              \
                                 pd_check_oss.str());                    \
    }                                                                    \
  } while (false)

#define PD_UNREACHABLE(msg) \
  ::pd::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
