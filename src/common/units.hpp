// Size and rate units used across the data plane.
#pragma once

#include <cstdint>

namespace pd {

using Bytes = std::uint64_t;

constexpr Bytes operator""_B(unsigned long long v) { return v; }
constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ULL; }
constexpr Bytes operator""_MiB(unsigned long long v) {
  return v * 1024ULL * 1024ULL;
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return v * 1024ULL * 1024ULL * 1024ULL;
}

/// Bits per second (link speeds quoted the networking way).
using BitsPerSec = double;

constexpr BitsPerSec operator""_Gbps(unsigned long long v) {
  return static_cast<double>(v) * 1e9;
}
constexpr BitsPerSec operator""_Mbps(unsigned long long v) {
  return static_cast<double>(v) * 1e6;
}

}  // namespace pd
