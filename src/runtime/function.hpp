// The function runtime: executes application compute per hop and uses the
// unified I/O library (send/recv, §3.5) to advance the chain without the
// user code ever choosing a transport.
//
// ISSUE 7: an instance can hold pre-provisioned replica cores
// (Cluster::provision_replicas) and vary how many are active; compute jobs
// round-robin across the active replicas, which is what the per-function
// instance autoscaler actuates on its node's SLO/backlog signals.
#pragma once

#include <vector>

#include "mem/descriptor.hpp"
#include "runtime/cluster.hpp"

namespace pd::runtime {

class FunctionInstance {
 public:
  FunctionInstance(WorkerNode& node, FunctionSpec spec, sim::Core& core);

  /// Message delivery entry point (wired into the data plane and the local
  /// sockmap by Cluster::deploy). The instance owns the buffer on entry.
  void on_message(const mem::BufferDescriptor& d);

  // --- replicas (instance autoscaling) -------------------------------------

  /// Pre-provision another core this function may scale onto. New replicas
  /// start inactive; set_active_replicas widens the dispatch set.
  void add_replica(sim::Core& core);
  /// Activate the first `n` provisioned replicas (clamped to
  /// [1, replica_capacity()]). Shrinking never cancels queued jobs — work
  /// already dispatched to a deactivated replica completes there.
  void set_active_replicas(std::size_t n);
  [[nodiscard]] std::size_t active_replicas() const { return active_; }
  [[nodiscard]] std::size_t replica_capacity() const {
    return replicas_.size();
  }
  /// Compute jobs accepted but not yet executed (queued + running across
  /// all replicas) — the instance autoscaler's backlog signal. Reads only
  /// this instance's own counter, so it is safe from the owning shard.
  [[nodiscard]] std::uint64_t pending_jobs() const { return inflight_; }

  [[nodiscard]] const FunctionSpec& spec() const { return spec_; }
  [[nodiscard]] sim::Core& core() { return core_; }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }
  /// Chain hops realized as one-sided state-store ops instead of RPCs
  /// (ISSUE 8), and how many of those fell back to RPC on a denial.
  [[nodiscard]] std::uint64_t store_ops() const { return store_ops_; }
  [[nodiscard]] std::uint64_t store_fallbacks() const {
    return store_fallbacks_;
  }
  /// Error completions received from the engine (failed sends of ours).
  [[nodiscard]] std::uint64_t errors_received() const {
    return errors_received_;
  }
  /// Total application compute executed (reference ns) — lets harnesses
  /// separate function work from data-plane work in CPU accounting.
  [[nodiscard]] sim::Duration compute_ns_total() const { return compute_total_; }
  [[nodiscard]] mem::Actor actor() const {
    return mem::actor_function(spec_.id);
  }

 private:
  void advance_chain(const mem::BufferDescriptor& d);
  /// ISSUE 8: realize the *next* hop as a one-sided state-store op
  /// (issued from this function's runtime; the state service's CPU never
  /// runs) and resume at the hop after it via store_finish.
  void store_advance(const mem::BufferDescriptor& d);
  void store_finish(const mem::BufferDescriptor& d, bool ok);

  WorkerNode& node_;
  FunctionSpec spec_;
  sim::Core& core_;
  /// Dispatchable cores; replicas_[0] is the primary (== &core_).
  std::vector<sim::Core*> replicas_;
  std::size_t active_ = 1;
  std::size_t rr_ = 0;          ///< round-robin cursor over active replicas
  std::uint64_t inflight_ = 0;  ///< accepted-not-yet-executed compute jobs
  std::uint64_t invocations_ = 0;
  std::uint64_t errors_received_ = 0;
  std::uint64_t store_ops_ = 0;
  std::uint64_t store_fallbacks_ = 0;
  sim::Duration compute_total_ = 0;
};

}  // namespace pd::runtime
