// The function runtime: executes application compute per hop and uses the
// unified I/O library (send/recv, §3.5) to advance the chain without the
// user code ever choosing a transport.
#pragma once

#include "mem/descriptor.hpp"
#include "runtime/cluster.hpp"

namespace pd::runtime {

class FunctionInstance {
 public:
  FunctionInstance(WorkerNode& node, FunctionSpec spec, sim::Core& core);

  /// Message delivery entry point (wired into the data plane and the local
  /// sockmap by Cluster::deploy). The instance owns the buffer on entry.
  void on_message(const mem::BufferDescriptor& d);

  [[nodiscard]] const FunctionSpec& spec() const { return spec_; }
  [[nodiscard]] sim::Core& core() { return core_; }
  [[nodiscard]] std::uint64_t invocations() const { return invocations_; }
  /// Error completions received from the engine (failed sends of ours).
  [[nodiscard]] std::uint64_t errors_received() const {
    return errors_received_;
  }
  /// Total application compute executed (reference ns) — lets harnesses
  /// separate function work from data-plane work in CPU accounting.
  [[nodiscard]] sim::Duration compute_ns_total() const { return compute_total_; }
  [[nodiscard]] mem::Actor actor() const {
    return mem::actor_function(spec_.id);
  }

 private:
  void advance_chain(const mem::BufferDescriptor& d);

  WorkerNode& node_;
  FunctionSpec spec_;
  sim::Core& core_;
  std::uint64_t invocations_ = 0;
  std::uint64_t errors_received_ = 0;
  sim::Duration compute_total_ = 0;
};

}  // namespace pd::runtime
