// Function chains: the unit of tenancy in Palladium (§3.1 treats each
// chain as an independent tenant with its own unified memory pool).
//
// A chain is modeled as the sequence of data exchanges a request performs:
// entry -> hop[0].fn -> hop[1].fn -> ... -> hop[n-1].fn -> entry. A
// fan-out call graph (frontend calling three services) appears here as the
// equivalent exchange sequence frontend, svc1, frontend, svc2, frontend...
// — preserving exactly the number and sizes of data-plane transfers, which
// is what the evaluation measures.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/ids.hpp"
#include "sim/time.hpp"

namespace pd::runtime {

/// How a hop is realized when the RDMA state store is enabled (ISSUE 8).
/// A non-kNone hop marks a state-service visit the *previous* hop's
/// function can replace with one-sided verbs against the store slab —
/// provided its node has a CartStoreClient; otherwise the hop runs as an
/// ordinary RPC. Store-eligible hops must be sandwiched between two visits
/// of the same function (the caller resumes its own next hop after the
/// store op completes).
enum class StoreOp : std::uint8_t {
  kNone,             ///< ordinary RPC to the hop's function
  kRead,             ///< one-sided READ of the record (zero remote CPU)
  kReadModifyWrite,  ///< CAS-acquire + WRITE + FAA version + CAS-release
};

struct ChainHop {
  FunctionId fn;
  /// Application compute at this hop (reference ns on a host core).
  sim::Duration compute_ns = 0;
  /// Payload bytes of the message this hop emits to its successor (or the
  /// response payload if this is the final hop).
  std::uint32_t out_payload = 256;
  /// One-sided realization of this hop when a state store is enabled.
  StoreOp store_op = StoreOp::kNone;
};

struct Chain {
  std::uint32_t id = 0;
  std::string name;
  TenantId tenant;
  /// Payload bytes of the entry message delivered to hops[0].
  std::uint32_t request_payload = 256;
  std::vector<ChainHop> hops;

  [[nodiscard]] std::size_t exchanges() const { return hops.size() + 1; }
};

/// Read-only chain registry, shared by all function runtimes (stored in
/// the unified memory pool as shared state in the real system, §3.5.5).
class ChainTable {
 public:
  void add(Chain chain) {
    PD_CHECK(!chain.hops.empty(), "chain needs at least one hop");
    const auto id = chain.id;
    PD_CHECK(chains_.emplace(id, std::move(chain)).second,
             "duplicate chain id " << id);
  }

  [[nodiscard]] const Chain& by_id(std::uint32_t id) const {
    auto it = chains_.find(id);
    PD_CHECK(it != chains_.end(), "unknown chain " << id);
    return it->second;
  }

  [[nodiscard]] bool has(std::uint32_t id) const {
    return chains_.find(id) != chains_.end();
  }

  [[nodiscard]] std::size_t size() const { return chains_.size(); }

  [[nodiscard]] const std::unordered_map<std::uint32_t, Chain>& all() const {
    return chains_;
  }

 private:
  std::unordered_map<std::uint32_t, Chain> chains_;
};

}  // namespace pd::runtime
