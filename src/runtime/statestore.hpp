// RDMA-resident shared state store (ISSUE 8 tentpole).
//
// The boutique's CartService is a thin record keeper: View Cart / Home
// Query fetch the session's cart, Add To Cart mutates it. Palladium's
// unified pools are already RDMA-exported (§3.4), so the records can live
// as a remote-readable MR slab on one node and the hot chains can fetch
// them with one-sided READs — no RPC to the cart function, no remote CPU,
// no copy. Mutations take a CAS ownership-token fast path (FaRM-style):
// CAS-acquire the slot's token word, WRITE the record, FAA its version
// word, CAS-release.
//
// Two pieces:
//  - CartStateStore: the slab on the store node. A dedicated tenant pool
//    (slots x record_bytes) registered with full remote access plus two
//    atomic-word families guarded by the slab MR: per-slot ownership
//    tokens and per-slot version counters.
//  - CartStoreClient: per remote node. Owns a local-only scratch MR (READ
//    landing buffers / WRITE staging — never a one-sided target), a small
//    RC pool to the store node, and a tagged-wr_id waiter map drained via
//    the node engine's one-sided completion hook (the engine is the sole
//    CQ consumer on cluster nodes).
//
// Error semantics: any remote-access error completion (rkey revoked,
// store unmapped) fails the op back to the caller, which falls back to
// the two-sided RPC path — requests never hang on a denied MR.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "rdma/connection.hpp"
#include "runtime/cluster.hpp"

namespace pd::runtime {

class CartStateStore {
 public:
  /// Pseudo-tenant owning the slab pool (far outside application range).
  static constexpr TenantId kStoreTenant{950};

  CartStateStore(WorkerNode& node, std::uint32_t slots, Bytes record_bytes);

  [[nodiscard]] NodeId node() const { return node_.id(); }
  [[nodiscard]] PoolId slab() const { return slab_; }
  [[nodiscard]] std::uint32_t slots() const { return slots_; }
  [[nodiscard]] Bytes record_bytes() const { return record_bytes_; }

  /// Per-slot ownership-token word (0 = free, else the holder's token).
  [[nodiscard]] static std::uint64_t token_addr(std::uint32_t slot) {
    return 0xC0DE0000ULL + slot;
  }
  /// Per-slot version counter, FAA-bumped once per committed update.
  [[nodiscard]] static std::uint64_t version_addr(std::uint32_t slot) {
    return 0xC0DE8000ULL + slot;
  }

  /// Committed updates to `slot` (post-run inspection / tests).
  [[nodiscard]] std::uint64_t version(std::uint32_t slot) const;

 private:
  WorkerNode& node_;
  PoolId slab_{};
  std::uint32_t slots_;
  Bytes record_bytes_;
};

class CartStoreClient {
 public:
  /// Pseudo-tenant owning the scratch pool (registered kMrLocal only).
  static constexpr TenantId kScratchTenant{951};
  /// Tag in the top 16 wr_id bits marking store-client WRs on the shared
  /// CQ; everything else belongs to the engine.
  static constexpr std::uint64_t kWrTag = 0xCA57ULL << 48;
  static constexpr std::uint64_t kWrTagMask = 0xFFFFULL << 48;

  CartStoreClient(WorkerNode& node, CartStateStore& store,
                  std::uint32_t scratch_slots = 64);

  struct Counters {
    std::uint64_t reads = 0;          ///< completed one-sided record READs
    std::uint64_t read_bytes = 0;     ///< record bytes fetched
    std::uint64_t updates = 0;        ///< committed RMW ladders
    std::uint64_t cas_acquires = 0;   ///< token grabs that won
    std::uint64_t cas_conflicts = 0;  ///< contended grabs (backoff + retry)
    std::uint64_t errors = 0;         ///< remote-access error completions
  };

  using StoreDone = std::function<void(bool ok)>;

  /// Fetch up to `bytes` of `slot`'s record with a one-sided READ. `done`
  /// fires from the engine's completion dispatch; false = access denied.
  void read_record(std::uint32_t slot, std::uint32_t bytes, StoreDone done);
  /// Commit a new record image: CAS-acquire the slot token, WRITE the
  /// record, FAA the version word, CAS-release. Contended acquires retry
  /// after kLockRetryBackoffNs; access errors abort with done(false).
  void update_record(std::uint32_t slot, std::uint32_t bytes, StoreDone done);

  /// Deterministic record placement for a request.
  [[nodiscard]] std::uint32_t slot_for(std::uint64_t request_id) const {
    return static_cast<std::uint32_t>(request_id % store_.slots());
  }

  /// Engine one-sided hook: consume tagged completions, leave the rest.
  bool on_completion(const rdma::Completion& c);

  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Ops in flight or queued for a scratch slot (flight-recorder gauge).
  [[nodiscard]] std::size_t pending() const {
    return waiters_.size() + queue_.size();
  }
  [[nodiscard]] rdma::ConnectionManager& connections() { return cm_; }

  /// Test hook: aim subsequent READs at this node's own scratch pool —
  /// foreign (unregistered) at the store NIC, so the rkey check rejects
  /// them end-to-end and the fallback path runs.
  void set_force_denial(bool on) { force_denial_ = on; }

 private:
  struct Op {
    bool write = false;
    std::uint32_t slot = 0;
    std::uint32_t bytes = 0;
    StoreDone done;
  };

  using Waiter = std::function<void(const rdma::Completion&)>;

  std::uint64_t next_wr_id() { return kWrTag | next_op_++; }
  /// Park a continuation for a wr_id. PD_CHECKs the id is fresh — a
  /// colliding id would silently replace another op's continuation (the
  /// OWDL bug this PR fixes; see owdl_cas_wr_id).
  void wait_on(std::uint64_t wr_id, Waiter fn);
  void pump();
  void start(Op op, std::uint32_t scratch);
  void post_read(Op op, std::uint32_t scratch);
  void post_acquire(Op op, std::uint32_t scratch);
  void post_write(Op op, std::uint32_t scratch);
  void post_faa(Op op, std::uint32_t scratch);
  void post_release(Op op, std::uint32_t scratch, bool ok);
  void release_scratch(std::uint32_t scratch);

  WorkerNode& node_;
  CartStateStore& store_;
  PoolId scratch_pool_{};
  std::vector<mem::BufferDescriptor> scratch_;
  std::vector<std::uint32_t> free_scratch_;
  std::deque<Op> queue_;  ///< ops waiting for a scratch slot
  rdma::ConnectionManager cm_;
  std::unordered_map<std::uint64_t, Waiter> waiters_;
  std::uint64_t next_op_ = 1;
  std::uint64_t token_ = 0;  ///< this node's nonzero ownership-token value
  Counters counters_;
  bool force_denial_ = false;
};

}  // namespace pd::runtime
