#include "runtime/statestore.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "proto/cost_model.hpp"

namespace pd::runtime {

CartStateStore::CartStateStore(WorkerNode& node, std::uint32_t slots,
                               Bytes record_bytes)
    : node_(node), slots_(slots), record_bytes_(record_bytes) {
  PD_CHECK(slots_ > 0, "cart store needs at least one slot");
  PD_CHECK(node_.rnic() != nullptr, "cart store requires an RNIC");

  auto& tm = node_.memory().create_tenant_pool(
      kStoreTenant, "cart_store", slots_, record_bytes_);
  tm.export_to_dpu();
  tm.export_to_rdma();
  slab_ = tm.pool_id();
  // Full remote access: the slab is exactly the kind of region one-sided
  // designs expose. Scratch pools on the client side stay kMrLocal.
  node_.rnic()->register_memory(slab_, rdma::kMrRemoteAll);

  // Pin every slot to the NIC actor (the records are NIC-owned at rest —
  // no host actor ever touches them) and seed deterministic record bytes
  // so READ-side checks are content-comparable across runs.
  const mem::Actor nic = mem::actor_rnic(node_.id());
  auto& pool = tm.pool();
  for (std::uint32_t s = 0; s < slots_; ++s) {
    auto d = pool.allocate(nic);
    PD_CHECK(d.has_value(), "cart slab slot allocation failed");
    auto span = pool.access(*d, nic);
    for (std::size_t i = 0; i < span.size(); ++i) {
      span[i] = static_cast<std::byte>((d->index * 131 + i * 7) & 0xff);
    }
  }
  // Token + version words, guarded by the slab MR: remote atomics on them
  // are honoured only while the slab grants kMrRemoteAtomic.
  for (std::uint32_t s = 0; s < slots_; ++s) {
    node_.rnic()->set_atomic_word(token_addr(s), 0, slab_);
    node_.rnic()->set_atomic_word(version_addr(s), 0, slab_);
  }
}

std::uint64_t CartStateStore::version(std::uint32_t slot) const {
  return node_.rnic()->atomic_word(version_addr(slot));
}

CartStoreClient::CartStoreClient(WorkerNode& node, CartStateStore& store,
                                 std::uint32_t scratch_slots)
    : node_(node),
      store_(store),
      cm_(*node.rnic()),
      token_(0xB0000000ULL + node.id().value()) {
  PD_CHECK(node_.rnic() != nullptr, "cart store client requires an RNIC");
  PD_CHECK(node_.id() != store_.node(),
           "the store node reads its slab locally — no client needed");

  auto& tm = node_.memory().create_tenant_pool(
      kScratchTenant, "cart_scratch", scratch_slots, store_.record_bytes());
  tm.export_to_rdma();
  scratch_pool_ = tm.pool_id();
  // Local-only registration: the scratch is a READ landing zone / WRITE
  // staging area, never a legitimate one-sided target. A peer aiming a
  // one-sided op at it gets an rkey denial, not silent memory corruption.
  node_.rnic()->register_memory(scratch_pool_, rdma::kMrLocal);

  const mem::Actor nic = mem::actor_rnic(node_.id());
  auto& pool = tm.pool();
  for (std::uint32_t s = 0; s < scratch_slots; ++s) {
    auto d = pool.allocate(nic);
    PD_CHECK(d.has_value(), "cart scratch slot allocation failed");
    scratch_.push_back(*d);
    free_scratch_.push_back(s);
  }

  // Small dedicated RC pool to the store node; handshakes drain during
  // Cluster::finish_setup alongside the engines' peer connections.
  cm_.establish(store_.node(), CartStateStore::kStoreTenant, /*count=*/2,
                nullptr);
}

void CartStoreClient::wait_on(std::uint64_t wr_id, Waiter fn) {
  PD_CHECK(waiters_.emplace(wr_id, std::move(fn)).second,
           "store wr_id " << wr_id << " reused while its waiter is parked");
}

bool CartStoreClient::on_completion(const rdma::Completion& c) {
  if ((c.wr_id & kWrTagMask) != kWrTag) return false;
  auto it = waiters_.find(c.wr_id);
  if (it == waiters_.end()) {
    // A WRITE's NIC-exit success CQE already advanced the ladder; the late
    // remote error CQE for the same wr_id only needs accounting.
    if (c.status != rdma::CompletionStatus::kSuccess) ++counters_.errors;
    return true;
  }
  Waiter fn = std::move(it->second);
  waiters_.erase(it);
  fn(c);
  return true;
}

void CartStoreClient::read_record(std::uint32_t slot, std::uint32_t bytes,
                                  StoreDone done) {
  queue_.push_back(Op{/*write=*/false, slot, bytes, std::move(done)});
  pump();
}

void CartStoreClient::update_record(std::uint32_t slot, std::uint32_t bytes,
                                    StoreDone done) {
  queue_.push_back(Op{/*write=*/true, slot, bytes, std::move(done)});
  pump();
}

void CartStoreClient::pump() {
  while (!queue_.empty() && !free_scratch_.empty()) {
    const std::uint32_t s = free_scratch_.back();
    free_scratch_.pop_back();
    Op op = std::move(queue_.front());
    queue_.pop_front();
    start(std::move(op), s);
  }
}

void CartStoreClient::start(Op op, std::uint32_t scratch) {
  if (op.write) {
    post_acquire(std::move(op), scratch);
  } else {
    post_read(std::move(op), scratch);
  }
}

void CartStoreClient::release_scratch(std::uint32_t scratch) {
  free_scratch_.push_back(scratch);
  pump();
}

void CartStoreClient::post_read(Op op, std::uint32_t scratch) {
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id();
  wr.opcode = rdma::Opcode::kRead;
  wr.local = scratch_[scratch];
  wr.remote_pool = force_denial_ ? scratch_pool_ : store_.slab();
  wr.remote_index = op.slot;
  wr.read_len = std::min<std::uint32_t>(
      op.bytes, static_cast<std::uint32_t>(store_.record_bytes()));
  wait_on(wr.wr_id,
          [this, scratch, done = std::move(op.done)](const rdma::Completion& c) {
            release_scratch(scratch);
            if (c.status != rdma::CompletionStatus::kSuccess) {
              ++counters_.errors;
              done(false);
              return;
            }
            ++counters_.reads;
            counters_.read_bytes += c.byte_len;
            done(true);
          });
  cm_.send(store_.node(), CartStateStore::kStoreTenant, wr);
}

void CartStoreClient::post_acquire(Op op, std::uint32_t scratch) {
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id();
  wr.opcode = rdma::Opcode::kCompareSwap;
  wr.atomic_addr = CartStateStore::token_addr(op.slot);
  wr.atomic_expect = 0;
  wr.atomic_desired = token_;
  wait_on(wr.wr_id, [this, scratch,
                     op = std::move(op)](const rdma::Completion& c) mutable {
    if (c.status != rdma::CompletionStatus::kSuccess) {
      ++counters_.errors;
      release_scratch(scratch);
      op.done(false);
      return;
    }
    if (c.atomic_found != 0) {
      // Slot token held elsewhere: deterministic backoff, then retry. The
      // scratch slot stays reserved so the retry cannot deadlock behind
      // newly queued ops.
      ++counters_.cas_conflicts;
      node_.scheduler().schedule_after(
          cost::kLockRetryBackoffNs,
          [this, scratch, op = std::move(op)]() mutable {
            post_acquire(std::move(op), scratch);
          });
      return;
    }
    ++counters_.cas_acquires;
    post_write(std::move(op), scratch);
  });
  cm_.send(store_.node(), CartStateStore::kStoreTenant, wr);
}

void CartStoreClient::post_write(Op op, std::uint32_t scratch) {
  auto& pool = node_.memory().by_pool(scratch_pool_).pool();
  const std::uint32_t len = std::min<std::uint32_t>(
      op.bytes, static_cast<std::uint32_t>(store_.record_bytes()));
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id();
  wr.opcode = rdma::Opcode::kWrite;
  wr.local = pool.resize(scratch_[scratch], mem::actor_rnic(node_.id()), len);
  wr.remote_pool = store_.slab();
  wr.remote_index = op.slot;
  // The kWrite CQE fires at NIC exit (a remote denial would surface later
  // as a waiter-less error CQE — see on_completion); the ladder continues
  // once the WR is on the wire, matching real WRITE ordering semantics.
  wait_on(wr.wr_id, [this, scratch,
                     op = std::move(op)](const rdma::Completion& c) mutable {
    if (c.status != rdma::CompletionStatus::kSuccess) {
      ++counters_.errors;
      post_release(std::move(op), scratch, /*ok=*/false);
      return;
    }
    post_faa(std::move(op), scratch);
  });
  cm_.send(store_.node(), CartStateStore::kStoreTenant, wr);
}

void CartStoreClient::post_faa(Op op, std::uint32_t scratch) {
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id();
  wr.opcode = rdma::Opcode::kFetchAdd;
  wr.atomic_addr = CartStateStore::version_addr(op.slot);
  wr.atomic_desired = 1;  // addend
  wait_on(wr.wr_id, [this, scratch,
                     op = std::move(op)](const rdma::Completion& c) mutable {
    if (c.status != rdma::CompletionStatus::kSuccess) {
      ++counters_.errors;
      post_release(std::move(op), scratch, /*ok=*/false);
      return;
    }
    post_release(std::move(op), scratch, /*ok=*/true);
  });
  cm_.send(store_.node(), CartStateStore::kStoreTenant, wr);
}

void CartStoreClient::post_release(Op op, std::uint32_t scratch, bool ok) {
  rdma::WorkRequest wr;
  wr.wr_id = next_wr_id();
  wr.opcode = rdma::Opcode::kCompareSwap;
  wr.atomic_addr = CartStateStore::token_addr(op.slot);
  wr.atomic_expect = token_;
  wr.atomic_desired = 0;
  wait_on(wr.wr_id, [this, scratch, ok,
                     op = std::move(op)](const rdma::Completion& c) mutable {
    bool final_ok = ok;
    if (c.status != rdma::CompletionStatus::kSuccess) {
      ++counters_.errors;
      final_ok = false;
    } else {
      // Nobody can CAS a nonzero token word, so a held token is only ever
      // released by its holder — anything else is a protocol bug.
      PD_CHECK(c.atomic_found == token_,
               "cart slot token stolen while held (found "
                   << c.atomic_found << ", expected " << token_ << ")");
    }
    if (final_ok) ++counters_.updates;
    release_scratch(scratch);
    op.done(final_ok);
  });
  cm_.send(store_.node(), CartStateStore::kStoreTenant, wr);
}

}  // namespace pd::runtime
