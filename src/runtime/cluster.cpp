#include "runtime/cluster.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "core/trace_hooks.hpp"
#include "proto/cost_model.hpp"
#include "runtime/function.hpp"
#include "runtime/statestore.hpp"
#include "sim/profile.hpp"

namespace pd::runtime {

const char* to_string(SystemKind kind) {
  switch (kind) {
    case SystemKind::kPalladiumDne: return "Palladium (DNE)";
    case SystemKind::kPalladiumOnPath: return "Palladium (on-path DNE)";
    case SystemKind::kPalladiumCne: return "Palladium (CNE)";
    case SystemKind::kSpright: return "SPRIGHT";
    case SystemKind::kNightcore: return "NightCore";
    case SystemKind::kFuyao: return "FUYAO";
  }
  return "?";
}

namespace {

bool is_palladium(SystemKind kind) {
  return kind == SystemKind::kPalladiumDne ||
         kind == SystemKind::kPalladiumOnPath ||
         kind == SystemKind::kPalladiumCne;
}

bool uses_rdma(SystemKind kind) {
  return is_palladium(kind) || kind == SystemKind::kFuyao;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerNode
// ---------------------------------------------------------------------------

WorkerNode::WorkerNode(Cluster& cluster, NodeId id)
    : cluster_(cluster),
      id_(id),
      sched_(cluster.scheduler_for(id)),
      mem_(id),
      cpu_(sched_, "node" + std::to_string(id.value()) + "/cpu",
           cluster.config().cpu_cores_per_node, cost::kHostCoreSpeed),
      local_ipc_(sched_) {
  const ClusterConfig& cfg = cluster.config();
  const SystemKind sys = cfg.system;

  if (uses_rdma(sys)) {
    rnic_ = std::make_unique<rdma::Rnic>(*cluster.rdma_net_, id, mem_);
  }
  if (sys == SystemKind::kPalladiumDne || sys == SystemKind::kPalladiumOnPath) {
    dpu_ = std::make_unique<dpu::Dpu>(sched_, id, cfg.dpu_cores);
  }

  switch (sys) {
    case SystemKind::kPalladiumDne:
    case SystemKind::kPalladiumOnPath: {
      engine_core_ = &dpu_->core(0);
      const auto kind = sys == SystemKind::kPalladiumDne
                            ? core::EngineKind::kDneOffPath
                            : core::EngineKind::kDneOnPath;
      dataplane_ = std::make_unique<core::NetworkEngine>(
          sched_, kind, cfg.engine, *engine_core_, *rnic_, mem_, dpu_.get());
      break;
    }
    case SystemKind::kPalladiumCne: {
      // The CNE claims a host core for the engine loop.
      engine_core_ = &cpu_.core(cpu_.size() - 1);
      dataplane_ = std::make_unique<core::NetworkEngine>(
          sched_, core::EngineKind::kCne, cfg.engine, *engine_core_, *rnic_,
          mem_, nullptr);
      break;
    }
    case SystemKind::kSpright:
    case SystemKind::kNightcore: {
      engine_core_ = &cpu_.core(cpu_.size() - 1);
      dataplane_ = std::make_unique<baselines::TcpRelayEngine>(
          sched_, id, *engine_core_, mem_, cluster.eth_,
          cluster.tcp_directory_, proto::StackKind::kKernel,
          /*broker_local=*/sys == SystemKind::kNightcore);
      break;
    }
    case SystemKind::kFuyao: {
      engine_core_ = &cpu_.core(cpu_.size() - 1);
      dataplane_ = std::make_unique<baselines::FuyaoEngine>(
          sched_, id, *engine_core_, mem_, *rnic_, cluster.fuyao_directory_);
      break;
    }
  }
}

core::NetworkEngine* WorkerNode::palladium_engine() {
  return dynamic_cast<core::NetworkEngine*>(dataplane_.get());
}

sim::Core& WorkerNode::assign_core() {
  // Functions avoid the engine core (the last host core when the engine is
  // CPU-resident).
  const std::size_t usable =
      cpu_.size() - (engine_core_ == &cpu_.core(cpu_.size() - 1) ? 1 : 0);
  PD_CHECK(usable > 0, "no host cores left for functions");
  sim::Core& core = cpu_.core(next_core_ % usable);
  ++next_core_;
  return core;
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::Cluster(sim::Scheduler& sched, ClusterConfig config)
    : sched_(sched), config_(config), eth_(sched), rng_(config.seed) {
  // With the default flat TopologyConfig every extra-latency query returns
  // zero, so legacy replays stay byte-identical.
  topo_.configure(config_.topology);
  eth_.set_topology(&topo_);
  if (uses_rdma(config_.system)) {
    rdma_net_ = std::make_unique<rdma::RdmaNetwork>(sched_);
    rdma_net_->fabric().set_topology(&topo_);
  }
  tcp_directory_ = std::make_shared<baselines::TcpRelayDirectory>();
  fuyao_directory_ = std::make_shared<baselines::FuyaoDirectory>();
}

Cluster::Cluster(sim::ParallelSim& psim, ClusterConfig config)
    : Cluster(psim.shard(0), config) {
  PD_CHECK(is_palladium(config_.system),
           "parallel simulation supports Palladium systems only "
           "(baseline data planes assume a single scheduler)");
  psim_ = &psim;
  refresh_lookahead_matrix();
  rdma_net_->set_remote_post(
      [this](NodeId dst, sim::TimePoint t, sim::EventFn fn) {
        psim_->post(shard_of(dst), t, std::move(fn));
      });
  // Each shard records into its own observability hub (installed
  // thread-locally around its execute phase): no cross-thread sharing on
  // the hot path, deterministic merge afterwards. Tracing starts disabled.
  shard_hubs_.reserve(psim.shard_count());
  for (std::size_t k = 0; k < psim.shard_count(); ++k) {
    auto hub = std::make_unique<obs::Hub>();
    hub->tracer.set_shard(static_cast<std::uint32_t>(k));
    hub->tracer.set_sample_every(0);
    shard_hubs_.push_back(std::move(hub));
  }
  psim.set_shard_hooks(
      [this](std::size_t k) {
        obs::install_thread_hub(shard_hubs_[k].get());
        if (ledger_enabled_) {
          // The ledger fronts the busy-observer chain so it sees the exact
          // interval stream; it forwards to the profiler so both fold the
          // same charges (the conservation tests compare the two).
          obs::Ledger& led = shard_hubs_[k]->ledger;
          led.set_next(shard_profiling_ ? &shard_hubs_[k]->profiler : nullptr);
          sim::install_thread_busy_observer(&led);
        } else if (shard_profiling_) {
          sim::install_thread_busy_observer(&shard_hubs_[k]->profiler);
        }
      },
      [this](std::size_t) {
        obs::install_thread_hub(nullptr);
        if (ledger_enabled_ || shard_profiling_) {
          sim::install_thread_busy_observer(nullptr);
        }
      });
}

Cluster::~Cluster() = default;

sim::Scheduler& Cluster::scheduler_for(NodeId node) {
  if (psim_ == nullptr) return sched_;
  auto it = node_shard_.find(node);
  return it == node_shard_.end() ? sched_ : psim_->shard(it->second);
}

std::size_t Cluster::shard_of(NodeId node) const {
  auto it = node_shard_.find(node);
  return it == node_shard_.end() ? 0 : it->second;
}

void Cluster::enable_shard_tracing(std::uint64_t n) {
  PD_CHECK(sharded(), "shard tracing is a parallel-mode feature");
  for (auto& hub : shard_hubs_) hub->tracer.set_sample_every(n);
}

void Cluster::enable_shard_profiling() {
  PD_CHECK(sharded(), "shard profiling is a parallel-mode feature");
  shard_profiling_ = true;
}

void Cluster::enable_ledger() {
  ledger_enabled_ = true;
  // Pool clocks: each domain reads its own node's scheduler, so the slot-ns
  // integral advances in the node's shard time (owner-shard-local).
  for (auto& node : nodes_) {
    sim::Scheduler* s = &node->scheduler();
    node->memory().set_clock([s] { return s->now(); });
  }
  if (sharded()) {
    for (auto& hub : shard_hubs_) hub->ledger.set_enabled(true);
  }
}

void Cluster::collect_pool_slot_ns() {
  if (!ledger_enabled_) return;
  for (auto& node : nodes_) {
    obs::Ledger* led = nullptr;
    if (sharded()) {
      led = &shard_hubs_[shard_of(node->id())]->ledger;
    } else if (obs::Hub* hub = obs::hub()) {
      led = &hub->ledger;
    }
    if (led == nullptr || !led->enabled()) continue;
    const sim::TimePoint now = node->scheduler().now();
    for (const auto& tm : node->memory().pools()) {
      const mem::BufferPool& pool = tm->pool();
      led->add_slot_ns(
          "node" + std::to_string(node->id().value()) + "/pool/" +
              tm->file_prefix(),
          pool.tenant().value(), pool.slot_ns(now), pool.footprint());
    }
  }
}

obs::Hub* Cluster::edge_hub() {
  return sharded() ? shard_hubs_[0].get() : obs::hub();
}

void Cluster::add_slo(obs::SloSpec spec) {
  // Requests are admitted and completed on the edge (shard 0 in parallel
  // mode), so that hub's watchdog sees every sample in one deterministic
  // stream regardless of worker-thread count.
  if (sharded()) {
    shard_hubs_[0]->slo.add(std::move(spec));
  } else {
    obs::Hub* hub = obs::hub();
    PD_CHECK(hub != nullptr, "add_slo needs an installed obs::Hub");
    hub->slo.add(std::move(spec));
  }
}

void Cluster::merge_observability(obs::Hub& into) {
  PD_CHECK(sharded(), "merge_observability is a parallel-mode feature");
  for (std::size_t k = 0; k < shard_hubs_.size(); ++k) {
    obs::Hub& hub = *shard_hubs_[k];
    // Close the trailing SLO window at the shard's final simulated time
    // before folding, so partial-window alerts are not lost.
    hub.slo.finish(psim_->shard(k).now());
    into.registry.merge_from(hub.registry);
    into.tracer.absorb(hub.tracer);
    into.profiler.absorb(hub.profiler);
    into.ledger.absorb(hub.ledger);
    into.slo.absorb(hub.slo);
    // Flight series fold in shard order; the donor recorder is emptied
    // (and its sampler stopped) so a second merge cannot double-count.
    into.timeseries.merge_from(hub.timeseries);
    hub.registry.reset();
    hub.ledger.reset();
  }
  into.tracer.resolve_foreign_ends();
}

obs::FlightRecorder* Cluster::flight_recorder(NodeId node) {
  if (!flight_started_) return nullptr;
  if (sharded()) return &shard_hubs_[shard_of(node)]->timeseries;
  obs::Hub* hub = obs::hub();
  return hub == nullptr ? nullptr : &hub->timeseries;
}

void Cluster::start_flight_recorder(obs::FlightConfig cfg) {
  PD_CHECK(!flight_started_, "flight recorder already started");
  if (sharded()) {
    for (auto& hub : shard_hubs_) hub->timeseries.configure(cfg);
  } else {
    obs::Hub* hub = obs::hub();
    PD_CHECK(hub != nullptr,
             "start_flight_recorder needs an installed obs::Hub");
    hub->timeseries.configure(cfg);
  }
  flight_started_ = true;
  for (auto& node : nodes_) register_flight_probes(*node, cfg);
  // Sampling runs on every shard (the edge shard included: the ingress
  // registers its own probes there), each on its own clock — background
  // events, so the recorder never keeps a drain-to-idle run() alive.
  if (sharded()) {
    for (std::size_t k = 0; k < shard_hubs_.size(); ++k) {
      shard_hubs_[k]->timeseries.start(psim_->shard(k));
    }
  } else {
    obs::hub()->timeseries.start(sched_);
  }
}

void Cluster::register_flight_probes(WorkerNode& node,
                                     const obs::FlightConfig& cfg) {
  obs::FlightRecorder* rec = flight_recorder(node.id());
  if (rec == nullptr) return;
  const std::string nl = "node=" + std::to_string(node.id().value());

  // tenants_ is an unordered_map; registration iterates sorted ids so the
  // per-tenant series set is created identically on every run.
  std::vector<TenantId> tenants;
  tenants.reserve(tenants_.size());
  for (const auto& [t, w] : tenants_) {
    (void)w;
    tenants.push_back(t);
  }
  std::sort(tenants.begin(), tenants.end());

  if (core::NetworkEngine* eng = node.palladium_engine()) {
    rec->probe("engine.tx_backlog", nl,
               [eng] { return static_cast<double>(eng->tx_backlog()); });
    rec->probe("engine.unacked", nl,
               [eng] { return static_cast<double>(eng->unacked_count()); });
    rec->probe("engine.unacked_headroom", nl, [eng] {
      const std::size_t cap = eng->config().max_unacked;
      const std::size_t used = eng->unacked_count();
      return static_cast<double>(cap > used ? cap - used : 0);
    });
    rdma::ConnectionManager& cm = eng->connections();
    rec->probe("conn.active_qps", nl, [&cm] {
      return static_cast<double>(cm.active_count());
    });
    rec->probe("conn.rebuilds_in_flight", nl, [&cm] {
      return static_cast<double>(cm.rebuilds_in_flight());
    });
    rec->probe("conn.deferred_wrs", nl, [&cm] {
      return static_cast<double>(cm.deferred_wrs());
    });
    for (TenantId t : tenants) {
      const std::string tl = nl + ",tenant=" + std::to_string(t.value());
      rec->probe("dwrr.queued", tl, [eng, t] {
        return static_cast<double>(eng->queued_for(t));
      });
      rec->probe("dwrr.deficit", tl, [eng, t] {
        return static_cast<double>(eng->dwrr_deficit(t));
      });
    }
  }

  if (CartStoreClient* sc = cart_client(node.id())) {
    // One-sided store client: ops in flight or queued for a scratch slot,
    // plus the cumulative conflict/error counters as sampled series.
    rec->probe("store.pending", nl, [sc] {
      return static_cast<double>(sc->pending());
    });
    rec->probe("store.cas_conflicts", nl, [sc] {
      return static_cast<double>(sc->counters().cas_conflicts);
    });
    rec->probe("store.errors", nl, [sc] {
      return static_cast<double>(sc->counters().errors);
    });
  }

  if (rdma::Rnic* rnic = node.rnic()) {
    rec->probe("rnic.cq_depth", nl, [rnic] {
      return static_cast<double>(rnic->cq().depth());
    });
    rec->probe("rnic.sq_outstanding", nl, [rnic] {
      return static_cast<double>(rnic->sq_outstanding());
    });
    rec->probe("qp.connecting", nl, [rnic] {
      return static_cast<double>(rnic->qp_state_counts().connecting);
    });
    rec->probe("qp.active", nl, [rnic] {
      return static_cast<double>(rnic->qp_state_counts().active);
    });
    rec->probe("qp.inactive", nl, [rnic] {
      return static_cast<double>(rnic->qp_state_counts().inactive);
    });
    rec->probe("qp.error", nl, [rnic] {
      return static_cast<double>(rnic->qp_state_counts().error);
    });
    for (TenantId t : tenants) {
      const std::string tl = nl + ",tenant=" + std::to_string(t.value());
      rec->probe("rnic.srq_depth", tl, [rnic, t] {
        return static_cast<double>(rnic->srq_depth(t));
      });
      rec->probe("rnic.rnr_depth", tl, [rnic, t] {
        return static_cast<double>(rnic->rnr_depth(t));
      });
    }
  }

  // Buffer pools: occupancy plus free/registered bytes per memory domain
  // (pools() iterates creation order — deterministic).
  mem::MemoryDomain& domain = node.memory();
  for (const auto& tm : domain.pools()) {
    const std::string pl =
        nl + ",tenant=" + std::to_string(tm->tenant().value());
    const mem::BufferPool* pool = &tm->pool();
    rec->probe("pool.in_use", pl, [pool] {
      return static_cast<double>(pool->in_use());
    });
    rec->probe("pool.free_bytes", pl, [pool] {
      return static_cast<double>(pool->available()) *
             static_cast<double>(pool->buffer_size());
    });
  }
  rec->probe("mem.registered_bytes", nl, [m = &domain] {
    Bytes total = 0;
    for (const auto& tm : m->pools()) {
      if (tm->exported_to_rdma()) total += tm->pool().footprint();
    }
    return static_cast<double>(total);
  });

  // Core utilization: busy-time delta per sampling window. The first
  // window is seeded from the busy time at registration, so setup work
  // is not charged to the run's first bucket.
  rec->probe("core.util", nl + ",set=cpu",
             [cpu = &node.cpu(),
              denom = static_cast<double>(cfg.sample_period) *
                      static_cast<double>(node.cpu().size()),
              last = node.cpu().total_busy_ns()]() mutable {
               const sim::Duration busy = cpu->total_busy_ns();
               const double u = static_cast<double>(busy - last) / denom;
               last = busy;
               return u < 1.0 ? u : 1.0;
             });
  rec->probe("core.util", nl + ",set=engine",
             [core = &node.engine_core(),
              denom = static_cast<double>(cfg.sample_period),
              last = node.engine_core().busy_ns()]() mutable {
               const sim::Duration busy = core->busy_ns();
               const double u = static_cast<double>(busy - last) / denom;
               last = busy;
               return u < 1.0 ? u : 1.0;
             });
  rec->probe("core.ring", nl + ",set=engine", [core = &node.engine_core()] {
    return static_cast<double>(core->queue_len());
  });
}

void Cluster::start_util_probes(obs::Registry& reg, sim::Duration period) {
  PD_CHECK(util_probes_.empty(), "utilization probes already started");
  auto add_probe = [&](NodeId id, const sim::Core& core,
                       sim::Scheduler& sched) {
    auto series = std::make_unique<sim::TimeSeries>(period, core.name());
    auto probe =
        std::make_unique<sim::UtilizationProbe>(sched, core, period, *series);
    probe->start();
    // Registry probe: read lazily at snapshot time, skipped by shard
    // merges, so the gauge reflects the final completed window.
    reg.probe("core_util",
              "node=" + std::to_string(id.value()) + ",core=" + core.name(),
              [p = probe.get()] { return p->last_util(); });
    util_series_.push_back(std::move(series));
    util_probes_.push_back(std::move(probe));
  };
  for (auto& node : nodes_) {
    sim::Scheduler& sched = scheduler_for(node->id());
    for (std::size_t i = 0; i < node->cpu().size(); ++i) {
      add_probe(node->id(), node->cpu().core(i), sched);
    }
    if (&node->engine_core() != &node->cpu().core(node->cpu().size() - 1)) {
      add_probe(node->id(), node->engine_core(), sched);
    }
  }
}

WorkerNode& Cluster::add_worker(NodeId id) {
  PD_CHECK(!setup_done_, "topology frozen after finish_setup");
  PD_CHECK(by_id_.find(id) == by_id_.end(), "worker " << id << " exists");
  if (topo_.multi_switch()) {
    // Workers fill leaf switches in admission order; leaf 0 is the edge
    // (ingress node and clients), so the first worker starts leaf 1.
    topo_.assign(id, static_cast<std::uint32_t>(
                         1 + nodes_.size() / topo_.config().nodes_per_switch));
  }
  if (!eth_.attached(id)) eth_.attach(id);
  if (psim_ != nullptr) {
    std::size_t shard = 0;
    if (config_.shard_mapping == ShardMapping::kLeafPerShard) {
      PD_CHECK(topo_.multi_switch(),
               "kLeafPerShard needs a multi-switch topology");
      // Shard index = leaf index (workers start at leaf 1; shard 0 stays
      // the edge). All of a leaf's workers share one scheduler.
      shard = topo_.leaf_of(id);
      PD_CHECK(shard < psim_->shard_count(),
               "more leaves than shards: construct ParallelSim with 1 + "
               "ceil(workers / nodes_per_switch) shards");
    } else {
      shard = next_shard_++;
      PD_CHECK(shard < psim_->shard_count(),
               "more workers than shards: construct ParallelSim with 1 + "
               "workers shards");
    }
    node_shard_[id] = shard;
    rdma_net_->set_node_scheduler(id, psim_->shard(shard));
    node_jitter_.emplace(
        id, sim::Rng(config_.seed ^
                     (0xC0FFEE5EEDULL * (static_cast<std::uint64_t>(
                                             id.value()) +
                                         1))));
  }
  auto node = std::make_unique<WorkerNode>(*this, id);
  WorkerNode* raw = node.get();
  nodes_.push_back(std::move(node));
  by_id_[id] = raw;
  refresh_lookahead_matrix();
  return *raw;
}

bool Cluster::tenants_shared(NodeId a, NodeId b) const {
  for (const auto& [tenant, hosts] : tenant_hosts_) {
    if (hosts.empty()) return true;  // unscoped = hosted everywhere
    const bool on_a = std::find(hosts.begin(), hosts.end(), a) != hosts.end();
    const bool on_b = std::find(hosts.begin(), hosts.end(), b) != hosts.end();
    if (on_a && on_b) return true;
  }
  // The cart state store serves one-sided ops from every client node.
  if (cart_store_ != nullptr) {
    const NodeId store = cart_store_->node();
    if (a == store || b == store) return true;
  }
  return false;
}

void Cluster::refresh_lookahead_matrix() {
  if (psim_ == nullptr) return;
  const std::size_t n = psim_->shard_count();
  // Shard 0 (edge) and shards without a worker yet sit on leaf 0; a pair's
  // lookahead is the flat cross-node bound plus the minimum spine detour
  // between the two leaves. Workers on the same leaf keep the tight flat
  // bound — that is what makes the adaptive horizons pay off at scale.
  std::vector<std::uint32_t> leaf(n, 0);
  std::vector<std::vector<NodeId>> shard_nodes(n);
  for (const auto& [node, shard] : node_shard_) {
    leaf[shard] = topo_.leaf_of(node);  // kLeafPerShard: uniform per shard
    shard_nodes[shard].push_back(node);
  }
  const sim::Duration flat = fabric::cross_node_lookahead();
  // Worker pairs with no shared tenant exchange no traffic — finish_setup
  // builds no RC pools between them — so they carry no direct edge; the
  // min-plus closure inside set_lookahead_matrix bounds them by their
  // cheapest relay chain instead (typically through the edge shard, whose
  // ingress talks to everyone). Before setup completes the conservative
  // all-pairs matrix stays in force: the handshake traffic finish_setup
  // drains is itself cross-shard.
  constexpr sim::Duration kNoDirectEdge =
      std::numeric_limits<sim::Duration>::max() / 4;
  std::vector<std::vector<sim::Duration>> d(
      n, std::vector<sim::Duration>(n, 0));
  const auto any_shared = [&](std::size_t a, std::size_t b) {
    for (NodeId na : shard_nodes[a]) {
      for (NodeId nb : shard_nodes[b]) {
        if (tenants_shared(na, nb)) return true;
      }
    }
    return false;
  };
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const bool edge_pair = a == 0 || b == 0;
      if (setup_done_ && !edge_pair && !any_shared(a, b)) {
        d[a][b] = kNoDirectEdge;
        continue;
      }
      d[a][b] = flat + topo_.min_extra_between_leaves(leaf[a], leaf[b]);
    }
  }
  psim_->set_lookahead_matrix(std::move(d));
}

WorkerNode& Cluster::worker(NodeId id) {
  auto it = by_id_.find(id);
  PD_CHECK(it != by_id_.end(), "unknown worker " << id);
  return *it->second;
}

bool Cluster::has_worker(NodeId id) const {
  return by_id_.find(id) != by_id_.end();
}

void Cluster::add_tenant(TenantId tenant, std::uint32_t weight) {
  add_tenant(tenant, weight, {});
}

void Cluster::add_tenant(TenantId tenant, std::uint32_t weight,
                         const std::vector<NodeId>& hosts) {
  PD_CHECK(tenants_.emplace(tenant, weight).second,
           "tenant " << tenant << " already admitted");
  for (NodeId h : hosts) {
    PD_CHECK(has_worker(h), "tenant host " << h << " is not a worker");
  }
  tenant_hosts_[tenant] = hosts;
  for (auto& node : nodes_) {
    if (!hosts.empty() &&
        std::find(hosts.begin(), hosts.end(), node->id()) == hosts.end()) {
      continue;
    }
    auto& tm = node->memory().create_tenant_pool(
        tenant, "tenant_" + std::to_string(tenant.value()),
        config_.pool_buffers, config_.buffer_bytes);
    tm.export_to_dpu();
    tm.export_to_rdma();
    node->dataplane().add_tenant(tenant, weight);
  }
}

FunctionInstance& Cluster::deploy(const FunctionSpec& spec, NodeId node_id) {
  PD_CHECK(tenants_.find(spec.tenant) != tenants_.end(),
           "deploy before tenant admission");
  PD_CHECK(placement_.find(spec.id) == placement_.end(),
           "function " << spec.id << " already deployed");
  WorkerNode& node = worker(node_id);
  sim::Core& core = node.assign_core();
  auto inst = std::make_unique<FunctionInstance>(node, spec, core);
  FunctionInstance* raw = inst.get();
  instances_.emplace(spec.id, std::move(inst));
  placement_[spec.id] = node_id;

  // Inbound from the fabric.
  node.dataplane().register_local_function(
      spec.id, spec.tenant, core,
      [raw](const mem::BufferDescriptor& d) { raw->on_message(d); });
  // Inbound from co-located functions.
  node.local_ipc().register_socket(
      spec.id, core, [raw](const mem::BufferDescriptor& d) { raw->on_message(d); });
  node.intra_routes().add_local(spec.id);

  // Coordinator: propagate the placement to every *other* node's
  // inter-node table.
  for (auto& other : nodes_) {
    if (other->id() != node_id) other->dataplane().routes().add_route(spec.id, node_id);
  }
  return *raw;
}

void Cluster::register_entry(FunctionId entry, TenantId tenant, NodeId node_id,
                             sim::Core& core, ipc::DescriptorHandler handler) {
  WorkerNode& node = worker(node_id);
  node.dataplane().register_local_function(entry, tenant, core, handler);
  node.local_ipc().register_socket(entry, core, std::move(handler));
  node.intra_routes().add_local(entry);
  placement_[entry] = node_id;
  for (auto& other : nodes_) {
    if (other->id() != node_id) other->dataplane().routes().add_route(entry, node_id);
  }
}

void Cluster::register_external_entry(FunctionId entry, NodeId node) {
  PD_CHECK(!has_worker(node), "use register_entry for worker-hosted entries");
  PD_CHECK(placement_.emplace(entry, node).second,
           "entry " << entry << " already placed");
  for (auto& worker : nodes_) {
    worker->dataplane().routes().add_route(entry, node);
  }
}

void Cluster::enable_cart_store(NodeId store_node, std::uint32_t slots,
                                Bytes record_bytes) {
  PD_CHECK(!setup_done_, "enable_cart_store must run before finish_setup");
  PD_CHECK(cart_store_ == nullptr, "cart store already enabled");
  PD_CHECK(rdma_net_ != nullptr && is_palladium(config_.system),
           "the cart store needs an RDMA-backed Palladium data plane");
  PD_CHECK(has_worker(store_node), "unknown store node " << store_node);

  cart_store_ =
      std::make_unique<CartStateStore>(worker(store_node), slots, record_bytes);
  for (auto& node : nodes_) {
    if (node->id() == store_node) continue;
    auto client = std::make_unique<CartStoreClient>(*node, *cart_store_);
    // The node engine is the sole CQ consumer: route the client's tagged
    // one-sided completions to it from the engine's rx loop.
    core::NetworkEngine* eng = node->palladium_engine();
    PD_CHECK(eng != nullptr, "cart store client needs a Palladium engine");
    eng->set_onesided_handler(
        [raw = client.get()](const rdma::Completion& c) {
          return raw->on_completion(c);
        });
    cart_clients_.emplace_back(node->id(), std::move(client));
  }
}

CartStoreClient* Cluster::cart_client(NodeId node) {
  for (auto& [id, client] : cart_clients_) {
    if (id == node) return client.get();
  }
  return nullptr;
}

void Cluster::finish_setup() {
  PD_CHECK(!setup_done_, "finish_setup called twice");
  setup_done_ = true;
  // With every tenant's host scope known, drop the conservative all-pairs
  // lookahead matrix for the communication-graph one before the handshake
  // traffic below is posted (shared pairs keep their direct edges, so the
  // handshakes themselves stay legal).
  refresh_lookahead_matrix();
  for (auto& a : nodes_) {
    for (auto& b : nodes_) {
      if (a->id() < b->id()) {
        // Pairs with no shared tenant exchange no traffic — skip the RC
        // mesh (at 16–64 nodes the full mesh is the memory bill, and the
        // missing pools are what licenses the tightened lookahead matrix).
        if (!tenants_shared(a->id(), b->id())) continue;
        a->dataplane().connect_peer(b->id());
        b->dataplane().connect_peer(a->id());
      }
    }
  }
  if (psim_ != nullptr) {
    psim_->run();  // drain connection setup traffic across all shards
  } else {
    sched_.run();  // drain connection setup traffic
  }
}

void Cluster::crash_node(NodeId node) {
  PD_CHECK(rdma_net_ != nullptr, "crash_node requires an RDMA fabric");
  PD_CHECK(has_worker(node), "unknown worker " << node);
  rdma_net_->fabric().set_node_down(node, true);
  rdma_net_->fail_node_qps(node);
}

void Cluster::restart_node(NodeId node) {
  PD_CHECK(rdma_net_ != nullptr, "restart_node requires an RDMA fabric");
  PD_CHECK(has_worker(node), "unknown worker " << node);
  rdma_net_->fabric().set_node_down(node, false);
}

sim::Duration Cluster::jittered(NodeId node, sim::Duration nominal) {
  if (config_.compute_jitter <= 0.0 || nominal == 0) return nominal;
  // Parallel mode: per-node streams keep draws shard-local (no data race)
  // and independent of cross-node event interleaving (deterministic for
  // any thread count). Legacy mode keeps the shared stream, preserving
  // bit-identical replays of earlier trees.
  sim::Rng& rng = psim_ != nullptr ? node_jitter_.at(node) : rng_;
  const double factor =
      1.0 + config_.compute_jitter * (2.0 * rng.next_double() - 1.0);
  return static_cast<sim::Duration>(static_cast<double>(nominal) * factor);
}

NodeId Cluster::placement_of(FunctionId fn) const {
  auto it = placement_.find(fn);
  PD_CHECK(it != placement_.end(), "function " << fn << " not placed");
  return it->second;
}

FunctionInstance& Cluster::instance(FunctionId fn) {
  auto it = instances_.find(fn);
  PD_CHECK(it != instances_.end(), "no instance for function " << fn);
  return *it->second;
}

void Cluster::provision_replicas(FunctionId fn, int extra) {
  PD_CHECK(extra >= 0, "negative replica count");
  WorkerNode& node = worker(placement_of(fn));
  FunctionInstance& inst = instance(fn);
  for (int i = 0; i < extra; ++i) inst.add_replica(node.assign_core());
}

std::vector<FunctionId> Cluster::deployed_functions() const {
  std::vector<FunctionId> out;
  out.reserve(instances_.size());
  for (const auto& [fn, inst] : instances_) out.push_back(fn);
  std::sort(out.begin(), out.end());
  return out;
}

bool Cluster::inject_request(FunctionId entry, NodeId node_id,
                             std::uint32_t chain_id, std::uint64_t request_id,
                             sim::Core* entry_core) {
  const Chain& chain = chains_.by_id(chain_id);
  WorkerNode& node = worker(node_id);
  auto& pool = node.memory().by_tenant(chain.tenant).pool();
  const mem::Actor entry_actor = mem::actor_function(entry);

  // Leave SRQ headroom: the engine's replenisher allocates receive
  // buffers from this same pool, and an open-loop injector that drains it
  // to zero starves the receive path permanently (priority inversion).
  if (pool.available() <=
      static_cast<std::size_t>(config_.engine.srq_fill)) {
    return false;
  }
  auto d = pool.allocate(entry_actor);
  if (!d.has_value()) return false;

  core::MessageHeader h;
  h.request_id = request_id;
  h.src_fn = entry.value();
  h.dst_fn = chain.hops.front().fn.value();
  h.chain_id = chain_id;
  h.hop_index = 0;
  h.client_id = entry.value();
  h.payload_len = chain.request_payload;
  core::trace_start(h, "ingress",
                    "node" + std::to_string(node_id.value()) + "/client",
                    scheduler_for(node_id).now());
  auto span = pool.access(*d, entry_actor);
  core::write_header(span, h);
  const auto sized =
      pool.resize(*d, entry_actor, core::message_bytes(chain.request_payload));

  io_send(entry, node_id,
          entry_core != nullptr ? *entry_core : node.cpu().core(0), sized);
  return true;
}

void Cluster::io_send(FunctionId src, NodeId node_id, sim::Core& src_core,
                      const mem::BufferDescriptor& d, bool precharged) {
  WorkerNode& node = worker(node_id);
  auto& pool = node.memory().by_pool(d.pool).pool();
  const core::MessageHeader h =
      core::read_header(pool.access(d, mem::actor_function(src)));
  const FunctionId dst = h.dst();

  // Tenant security model (§3.1): shared-memory descriptor passing is only
  // allowed within a tenant (= mutually trusting chain). A cross-tenant
  // destination gets an explicit CPU copy into the destination tenant's
  // pool — the sidecar's access-control point.
  const TenantId dst_tenant = tenant_of_function(dst);
  if (dst_tenant.valid() && dst_tenant != d.tenant) {
    cross_domain_send(src, node_id, src_core, d, dst, dst_tenant);
    return;
  }

  // Unified I/O library: routing query + descriptor packing, plus the
  // lightweight sidecar's policy check (§3.1).
  // NightCore's engine brokers every invocation, including co-located
  // ones (no direct function-to-function path, §2.2).
  const bool broker_all = [&] {
    auto* relay = dynamic_cast<baselines::TcpRelayEngine*>(&node.dataplane());
    return relay != nullptr && relay->brokers_local();
  }();

  auto dispatch = [this, src, dst, node_id, d, &node, &src_core, &pool,
                   precharged, broker_all] {
    if (!broker_all && node.intra_routes().is_local(dst)) {
      pool.transfer(d, mem::actor_function(src), mem::actor_function(dst));
      node.local_ipc().send(dst, d, precharged ? nullptr : &src_core);
    } else {
      node.dataplane().submit(src, src_core, d, precharged);
    }
  };
  const std::int64_t tenant = d.tenant.value();
  if (precharged) {
    if (config_.sidecar == SidecarMode::kNodeShared) {
      // Consolidated sidecar: policy check on the engine core instead.
      sim::ProfileScope scope{"ipc", "sidecar", tenant};
      node.engine_core().submit(cost::kSidecarNs, dispatch);
    } else {
      dispatch();
    }
    return;
  }
  const sim::Duration sidecar =
      config_.sidecar == SidecarMode::kPerFunctionEbpf ? cost::kSidecarNs : 0;
  sim::ProfileScope scope{"ipc", "io_send", tenant};
  if (config_.sidecar == SidecarMode::kNodeShared) {
    src_core.submit(cost::kIoLibraryNs, [this, &node, dispatch, tenant] {
      sim::ProfileScope inner{"ipc", "sidecar", tenant};
      node.engine_core().submit(cost::kSidecarNs, dispatch);
    });
  } else {
    src_core.submit(cost::kIoLibraryNs + sidecar, dispatch);
  }
}

sim::Duration Cluster::send_cost(NodeId node_id, FunctionId dst) {
  WorkerNode& node = worker(node_id);
  const sim::Duration channel = node.intra_routes().is_local(dst)
                                    ? cost::kSkMsgSendNs
                                    : node.dataplane().ingest_cost();
  // With the node-shared sidecar the policy check runs inside the engine,
  // not on the function's core.
  const sim::Duration sidecar =
      config_.sidecar == SidecarMode::kPerFunctionEbpf ? cost::kSidecarNs : 0;
  return cost::kIoLibraryNs + sidecar + channel;
}

TenantId Cluster::tenant_of_function(FunctionId fn) const {
  auto it = instances_.find(fn);
  return it == instances_.end() ? TenantId::invalid()
                                : it->second->spec().tenant;
}

void Cluster::cross_domain_send(FunctionId src, NodeId node_id,
                                sim::Core& src_core,
                                const mem::BufferDescriptor& d,
                                FunctionId dst, TenantId dst_tenant) {
  WorkerNode& node = worker(node_id);
  auto& src_pool = node.memory().by_pool(d.pool).pool();
  auto& dst_pool = node.memory().by_tenant(dst_tenant).pool();
  const auto src_actor = mem::actor_function(src);

  core::MessageHeader h = core::read_header(src_pool.access(d, src_actor));
  const std::uint32_t len = core::message_bytes(h.payload_len);

  auto copy = dst_pool.allocate(src_actor);
  PD_CHECK(copy.has_value(),
           "destination tenant pool exhausted on cross-domain send");
  {
    auto dst_span = dst_pool.access(*copy, src_actor);
    auto src_span = src_pool.access(d, src_actor);
    PD_CHECK(len <= dst_span.size(), "cross-domain message exceeds buffer");
    std::memcpy(dst_span.data(), src_span.data(), len);
  }
  const auto sized = dst_pool.resize(*copy, src_actor, len);
  src_pool.release(d, src_actor);

  // The copy itself burns CPU — exactly why same-tenant chains avoid it.
  const auto copy_ns =
      cost::kCopyBaseNs + static_cast<sim::Duration>(
                              static_cast<double>(len) * cost::kCopyColdPerByteNs);
  sim::ProfileScope scope{"ipc", "cross_domain_copy", sized.tenant.value()};
  src_core.submit(copy_ns + cost::kIoLibraryNs + cost::kSidecarNs,
                  [this, src, dst, node_id, sized, &node, &src_core,
                   &dst_pool] {
                    if (node.intra_routes().is_local(dst)) {
                      dst_pool.transfer(sized, mem::actor_function(src),
                                        mem::actor_function(dst));
                      node.local_ipc().send(dst, sized, &src_core);
                    } else {
                      node.dataplane().submit(src, src_core, sized);
                    }
                  });
}

}  // namespace pd::runtime
