#include "runtime/function.hpp"

#include <algorithm>

#include "core/message.hpp"
#include "core/trace_hooks.hpp"
#include "proto/cost_model.hpp"
#include "runtime/statestore.hpp"
#include "sim/profile.hpp"

namespace pd::runtime {

FunctionInstance::FunctionInstance(WorkerNode& node, FunctionSpec spec,
                                   sim::Core& core)
    : node_(node), spec_(std::move(spec)), core_(core) {
  replicas_.push_back(&core_);
}

void FunctionInstance::add_replica(sim::Core& core) {
  for (sim::Core* c : replicas_) {
    PD_CHECK(c != &core, "replica core added twice");
  }
  replicas_.push_back(&core);
}

void FunctionInstance::set_active_replicas(std::size_t n) {
  active_ = std::min(std::max<std::size_t>(n, 1), replicas_.size());
}

void FunctionInstance::on_message(const mem::BufferDescriptor& d) {
  ++invocations_;
  auto& pool = node_.memory().by_pool(d.pool).pool();
  auto bytes = pool.access(d, actor());
  core::MessageHeader h = core::read_header(bytes);
  if (core::trace_hop(h, "fn:" + spec_.name,
                      "node" + std::to_string(node_.id().value()) + "/fn",
                      node_.scheduler().now())) {
    core::write_header(bytes, h);
  }
  PD_CHECK(h.dst() == spec_.id,
           "message for " << h.dst() << " delivered to " << spec_.id);
  PD_CHECK(d.tenant == spec_.tenant, "cross-tenant message delivery blocked");

  if (h.is_error()) {
    // The engine failed one of our sends (no route, retries exhausted, or
    // shed under overload). Propagate an explicit error response to the
    // requester so the invocation fails visibly instead of hanging. If the
    // error response itself cannot make it back, the engine drops it
    // terminally — no error ping-pong.
    ++errors_received_;
    const FunctionId client{h.client_id};
    if (h.client_id == 0 || client == spec_.id) {
      pool.release(d, actor());
      return;
    }
    core::MessageHeader e = h;
    e.src_fn = spec_.id.value();
    e.dst_fn = h.client_id;
    e.flags = core::MessageHeader::kFlagResponse | core::MessageHeader::kFlagError;
    e.payload_len = 0;
    e.seq = 0;
    core::write_header(bytes, e);
    const auto sized = pool.resize(d, actor(), core::message_bytes(0));
    sim::ProfileScope scope{"fn", spec_.name, spec_.tenant.value()};
    core_.submit(node_.cluster().send_cost(node_.id(), client),
                 [this, sized] {
                   node_.cluster().io_send(spec_.id, node_.id(), core_, sized,
                                           /*precharged=*/true);
                 });
    return;
  }

  const Chain& chain = node_.cluster().chains().by_id(h.chain_id);
  PD_CHECK(h.hop_index < chain.hops.size(), "hop index out of range");
  const ChainHop& hop = chain.hops[h.hop_index];
  PD_CHECK(hop.fn == spec_.id, "chain hop/function mismatch");

  // Run-to-completion per message (like the real function runtime's event
  // loop): application compute plus the outbound I/O-library / sidecar /
  // channel-enqueue work are one uninterruptible job on this core. Charging
  // them separately would let the next request's compute slip in between
  // and head-of-line-block this response.
  const bool last_hop = h.hop_index + 1 == chain.hops.size();
  const FunctionId next_dst =
      last_hop ? FunctionId{h.client_id} : chain.hops[h.hop_index + 1].fn;
  const sim::Duration compute =
      node_.cluster().jittered(node_.id(), hop.compute_ns);
  compute_total_ += compute;
  // Round-robin over the active replicas: deterministic (cursor state lives
  // on this instance, all deliveries arrive on the owning shard) and enough
  // to spread a hot function's compute once the autoscaler widens it.
  sim::Core& exec = *replicas_[rr_ % active_];
  ++rr_;
  ++inflight_;
  sim::ProfileScope scope{"fn", spec_.name, spec_.tenant.value()};

  // ISSUE 8: when the next hop is a state-store visit and this node holds
  // a store client, skip the RPC entirely — after this hop's compute the
  // runtime posts one-sided verbs against the store slab instead of
  // sending to the state service. kStorePostNs (descriptor packing +
  // doorbell) replaces the whole send path.
  if (!last_hop &&
      chain.hops[h.hop_index + 1].store_op != StoreOp::kNone &&
      node_.cluster().cart_client(node_.id()) != nullptr) {
    exec.submit(compute + cost::kStorePostNs, [this, d] {
      --inflight_;
      store_advance(d);
    });
    return;
  }

  exec.submit(compute + node_.cluster().send_cost(node_.id(), next_dst),
              [this, d] {
                --inflight_;
                advance_chain(d);
              });
}

void FunctionInstance::store_advance(const mem::BufferDescriptor& d) {
  auto& pool = node_.memory().by_pool(d.pool).pool();
  auto bytes = pool.access(d, actor());
  core::MessageHeader h = core::read_header(bytes);
  const Chain& chain = node_.cluster().chains().by_id(h.chain_id);
  // Sandwich invariant: the store hop must have a successor, and that
  // successor must be this same function — the store op stands in for the
  // service's reply, so somebody must be here to consume it.
  PD_CHECK(h.hop_index + 2 < chain.hops.size(),
           "store hop cannot be the chain's terminal hop");
  PD_CHECK(chain.hops[h.hop_index + 2].fn == spec_.id,
           "store hop not sandwiched by " << spec_.name);
  const ChainHop& store_hop = chain.hops[h.hop_index + 1];

  const char* span =
      store_hop.store_op == StoreOp::kRead ? "rdma_read" : "rdma_cas";
  if (core::trace_hop(h, span,
                      "node" + std::to_string(node_.id().value()) + "/fn",
                      node_.scheduler().now())) {
    core::write_header(bytes, h);
  }

  ++store_ops_;
  CartStoreClient& client = *node_.cluster().cart_client(node_.id());
  const std::uint32_t slot = client.slot_for(h.request_id);
  auto cont = [this, d](bool ok) { store_finish(d, ok); };
  if (store_hop.store_op == StoreOp::kRead) {
    client.read_record(slot, store_hop.out_payload, std::move(cont));
  } else {
    client.update_record(slot, store_hop.out_payload, std::move(cont));
  }
}

void FunctionInstance::store_finish(const mem::BufferDescriptor& d, bool ok) {
  auto& pool = node_.memory().by_pool(d.pool).pool();
  auto bytes = pool.access(d, actor());
  core::MessageHeader h = core::read_header(bytes);
  const Chain& chain = node_.cluster().chains().by_id(h.chain_id);
  const ChainHop& store_hop = chain.hops[h.hop_index + 1];

  if (!ok) {
    // Remote access denied (rkey revoked / store unmapped): fall back to
    // the two-sided RPC the store op replaced, so the request completes
    // either way. The send cost skipped in on_message is charged now.
    ++store_fallbacks_;
    if (core::trace_hop(h, "rdma_denied",
                        "node" + std::to_string(node_.id().value()) + "/fn",
                        node_.scheduler().now())) {
      core::write_header(bytes, h);
    }
    sim::ProfileScope scope{"fn", spec_.name, spec_.tenant.value()};
    core_.submit(node_.cluster().send_cost(node_.id(), store_hop.fn),
                 [this, d] { advance_chain(d); });
    return;
  }

  // The one-sided op stood in for the state service's reply: advance the
  // header two hops as if the service answered, then re-enter the event
  // loop for this function's next visit after the record decode cost.
  h.src_fn = store_hop.fn.value();
  h.dst_fn = spec_.id.value();
  h.payload_len = store_hop.out_payload;
  h.hop_index = static_cast<std::uint16_t>(h.hop_index + 2);
  core::write_header(bytes, h);
  const auto sized =
      pool.resize(d, actor(), core::message_bytes(store_hop.out_payload));
  sim::ProfileScope scope{"fn", spec_.name, spec_.tenant.value()};
  core_.submit(cost::kStoreDecodeNs, [this, sized] { on_message(sized); });
}

void FunctionInstance::advance_chain(const mem::BufferDescriptor& d) {
  auto& pool = node_.memory().by_pool(d.pool).pool();
  core::MessageHeader h = core::read_header(pool.access(d, actor()));
  const Chain& chain = node_.cluster().chains().by_id(h.chain_id);
  const ChainHop& hop = chain.hops[h.hop_index];
  const bool last_hop = h.hop_index + 1 == chain.hops.size();

  // Zero-copy: reuse the same buffer for the outbound message — only the
  // header is rewritten and the length adjusted.
  h.src_fn = spec_.id.value();
  h.payload_len = hop.out_payload;
  if (last_hop) {
    h.dst_fn = h.client_id;  // respond to the entry point
    h.flags |= core::MessageHeader::kFlagResponse;
  } else {
    h.dst_fn = chain.hops[h.hop_index + 1].fn.value();
  }
  h.hop_index = static_cast<std::uint16_t>(h.hop_index + 1);

  core::write_header(pool.access(d, actor()), h);
  const auto sized =
      pool.resize(d, actor(), core::message_bytes(hop.out_payload));
  node_.cluster().io_send(spec_.id, node_.id(), core_, sized,
                          /*precharged=*/true);
}

}  // namespace pd::runtime
