// Cluster assembly: worker nodes, tenants, function deployment, and the
// control-plane coordinator that synchronizes routing state (§3.5.5).
//
// The same Cluster builds every system under evaluation — the
// `SystemKind` selects which DataPlane implementation each worker node
// gets (Palladium DNE/CNE/on-path, SPRIGHT's TCP relay, FUYAO's one-sided
// engine), so §4.3's comparison is apples-to-apples by construction.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/fuyao_engine.hpp"
#include "baselines/tcp_engine.hpp"
#include "core/engine.hpp"
#include "fabric/topology.hpp"
#include "obs/hub.hpp"
#include "runtime/chain.hpp"
#include "sim/parallel.hpp"
#include "sim/random.hpp"

namespace pd::runtime {

enum class SystemKind : std::uint8_t {
  kPalladiumDne,     ///< DPU network engine, off-path (the paper's system)
  kPalladiumOnPath,  ///< ablation: on-path DNE with SoC DMA staging
  kPalladiumCne,     ///< network engine on a host CPU core
  kSpright,          ///< shared memory + kernel TCP inter-node
  kNightcore,        ///< single-node shared memory (deploy all on one node)
  kFuyao,            ///< one-sided RDMA + receiver-side copy, polling core
};

const char* to_string(SystemKind kind);

/// Service-mesh sidecar deployment (§3.1): Palladium replaces the
/// heavyweight container sidecar with either a streamlined eBPF sidecar
/// per function (policy work charged to the function's core) or one
/// node-wide shared sidecar consolidated into the network engine (policy
/// work charged to the engine core, no duplicate per-function processing).
enum class SidecarMode : std::uint8_t { kPerFunctionEbpf, kNodeShared };

/// Worker-to-shard assignment for parallel runs (see ClusterConfig).
enum class ShardMapping : std::uint8_t { kNodePerShard, kLeafPerShard };

struct ClusterConfig {
  SystemKind system = SystemKind::kPalladiumDne;
  core::EngineConfig engine{};      ///< Palladium engine tuning
  std::size_t cpu_cores_per_node = 16;
  std::size_t dpu_cores = 8;
  std::size_t pool_buffers = 1024;  ///< buffers per tenant pool per node
  Bytes buffer_bytes = 16 * 1024;
  /// Relative jitter applied to per-hop compute times (cache effects,
  /// branchy handlers). Essential under a deterministic scheduler: without
  /// it, closed-loop clients phase-lock into convoys that no real system
  /// exhibits. Deterministic per seed.
  double compute_jitter = 0.10;
  std::uint64_t seed = 0x9E3779B9;
  SidecarMode sidecar = SidecarMode::kPerFunctionEbpf;
  /// Fabric topology (ISSUE 9). Default (nodes_per_switch = 0) is the flat
  /// single-switch fabric of earlier trees, byte-identical replays
  /// included. With nodes_per_switch = N, workers land on leaf switches in
  /// admission order (N per leaf, the edge on leaf 0) and cross-leaf
  /// traffic pays the leaf-spine detour with oversubscribed uplinks; the
  /// parallel simulator turns the same per-pair distances into its
  /// lookahead matrix.
  fabric::TopologyConfig topology{};
  /// How workers map onto parallel-simulator shards. kNodePerShard (the
  /// default, and the only option on a flat fabric) gives every worker its
  /// own shard. kLeafPerShard puts each leaf switch's workers in one shard:
  /// intra-leaf traffic — a leaf-affine cell's entire chain ping-pong —
  /// becomes shard-local and leaves the epoch protocol entirely, while
  /// every remaining cross-shard link is a spine crossing whose multi-us
  /// path latency becomes the pair's lookahead. That is what collapses the
  /// epoch rate at 16–64 nodes; it also matches shards to real core counts
  /// (leaves + 1, not nodes + 1).
  ShardMapping shard_mapping = ShardMapping::kNodePerShard;
};

class Cluster;
class FunctionInstance;
class CartStateStore;
class CartStoreClient;

/// One worker node: host cores, memory domain, optional DPU + RNIC, the
/// system-specific data plane, and the node-local IPC substrate.
class WorkerNode {
 public:
  WorkerNode(Cluster& cluster, NodeId id);

  [[nodiscard]] NodeId id() const { return id_; }
  /// The scheduler shard this node's events run on (the cluster scheduler
  /// in legacy mode, the node's own shard in parallel mode).
  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] mem::MemoryDomain& memory() { return mem_; }
  [[nodiscard]] sim::CoreSet& cpu() { return cpu_; }
  [[nodiscard]] dpu::Dpu* dpu() { return dpu_.get(); }
  [[nodiscard]] rdma::Rnic* rnic() { return rnic_.get(); }
  [[nodiscard]] core::DataPlane& dataplane() { return *dataplane_; }
  [[nodiscard]] ipc::SockMap& local_ipc() { return local_ipc_; }
  [[nodiscard]] core::IntraNodeRoutingTable& intra_routes() { return intra_; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }

  /// Palladium engines expose extra introspection (null for baselines).
  [[nodiscard]] core::NetworkEngine* palladium_engine();
  /// The core running the node's network engine.
  [[nodiscard]] sim::Core& engine_core() { return *engine_core_; }

  /// Round-robin host-core assignment for deployed functions.
  sim::Core& assign_core();

 private:
  friend class Cluster;

  Cluster& cluster_;
  NodeId id_;
  sim::Scheduler& sched_;
  mem::MemoryDomain mem_;
  sim::CoreSet cpu_;
  std::unique_ptr<dpu::Dpu> dpu_;
  std::unique_ptr<rdma::Rnic> rnic_;
  std::unique_ptr<core::DataPlane> dataplane_;
  sim::Core* engine_core_ = nullptr;
  ipc::SockMap local_ipc_;
  core::IntraNodeRoutingTable intra_;
  std::size_t next_core_ = 0;
};

struct FunctionSpec {
  FunctionId id;
  std::string name;
  TenantId tenant;
};

class Cluster {
 public:
  Cluster(sim::Scheduler& sched, ClusterConfig config);
  /// Parallel mode (PR 4 tentpole): the cluster shards across `psim`'s
  /// schedulers — shard 0 hosts the edge (clients, ingress, Ethernet,
  /// control plane), shard 1+i hosts the i-th worker added — and
  /// finish_setup() drives psim instead of a single scheduler. Requires a
  /// Palladium system (baseline data planes assume one scheduler) and a
  /// ParallelSim built with 1 + max workers shards. Simulated results are
  /// bit-identical for any worker-thread count, but differ from legacy
  /// single-scheduler runs (per-node RNG streams replace shared ones).
  Cluster(sim::ParallelSim& psim, ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // --- topology ------------------------------------------------------------

  WorkerNode& add_worker(NodeId id);
  [[nodiscard]] WorkerNode& worker(NodeId id);
  [[nodiscard]] bool has_worker(NodeId id) const;
  /// All worker nodes in creation order (metrics export iterates this).
  [[nodiscard]] const std::vector<std::unique_ptr<WorkerNode>>& workers() const {
    return nodes_;
  }

  /// Create the tenant's memory pool on every worker node and admit it to
  /// every data plane with the given DWRR weight.
  void add_tenant(TenantId tenant, std::uint32_t weight);

  /// Scoped variant: provision the tenant only on `hosts` (the nodes that
  /// will run its functions). On a 16–64-node cluster the all-nodes default
  /// is quadratic in memory — nodes × tenants buffer pools plus the RC
  /// connections finish_setup() builds for every (peer, tenant) pair — and
  /// nearly all of it idle when each tenant's cell spans two nodes. The
  /// ingress keeps its own per-tenant pools and connections either way.
  void add_tenant(TenantId tenant, std::uint32_t weight,
                  const std::vector<NodeId>& hosts);

  /// Deploy a function onto a node (creates the instance, registers it
  /// with the node's data plane + sockmap, and syncs routes cluster-wide —
  /// the coordinator's job on a deployment event).
  FunctionInstance& deploy(const FunctionSpec& spec, NodeId node);

  /// Pre-provision `extra` replica cores for a deployed function on its
  /// node (ISSUE 7). Replicas start inactive; the instance autoscaler (or
  /// a direct set_active_replicas call) activates them.
  void provision_replicas(FunctionId fn, int extra);

  /// Ids of all deployed functions, sorted (deterministic iteration for
  /// controllers attaching per-function state).
  [[nodiscard]] std::vector<FunctionId> deployed_functions() const;

  /// Register a non-function entry point (ingress worker / load driver)
  /// so chains can route responses back to it.
  void register_entry(FunctionId entry, TenantId tenant, NodeId node,
                      sim::Core& core, ipc::DescriptorHandler handler);

  /// Register an entry hosted off the worker set (e.g. on the ingress
  /// node): records placement and pushes routes to every worker data
  /// plane. Delivery on the external node is the caller's responsibility.
  void register_external_entry(FunctionId entry, NodeId node);

  void add_chain(Chain chain) { chains_.add(std::move(chain)); }

  /// ISSUE 8: stand up the RDMA-resident cart/session store — the record
  /// slab + atomic token/version words on `store_node`, and a one-sided
  /// client (scratch MR + RC pool + engine completion hook) on every other
  /// worker. Must run after the workers exist and before finish_setup()
  /// (the RC handshakes drain there). Requires an RDMA-backed Palladium
  /// system. Chains opt hops in via ChainHop::store_op.
  void enable_cart_store(NodeId store_node, std::uint32_t slots = 64,
                         Bytes record_bytes = 2048);
  /// The store (nullptr until enable_cart_store). The store node itself
  /// has no client — its functions keep using RPC to the state service.
  [[nodiscard]] CartStateStore* cart_store() { return cart_store_.get(); }
  [[nodiscard]] CartStoreClient* cart_client(NodeId node);

  /// Establish inter-node connectivity (RC pools / TCP connections) and
  /// run the scheduler until setup traffic quiesces.
  void finish_setup();

  // --- data plane helpers ---------------------------------------------------

  /// Inject a chain request from an entry actor on `node`. Allocates a
  /// buffer from the tenant pool, writes header + payload, and dispatches
  /// to the chain's first hop charging `entry_core` (the node's first CPU
  /// core when null). Returns false if the pool is exhausted (caller
  /// should back off).
  bool inject_request(FunctionId entry, NodeId node, std::uint32_t chain_id,
                      std::uint64_t request_id,
                      sim::Core* entry_core = nullptr);

  /// Route a message from `src` on `node` per its header (intra-node IPC
  /// or the node's data plane). With `precharged = false` the I/O-library,
  /// sidecar and channel-enqueue costs are charged to `src_core` here;
  /// run-to-completion callers (the function runtime) fold send_cost()
  /// into their own single job and pass `precharged = true`.
  void io_send(FunctionId src, NodeId node, sim::Core& src_core,
               const mem::BufferDescriptor& d, bool precharged = false);

  /// CPU cost of sending one message from `node` to function `dst`
  /// (I/O library + sidecar + intra-node SK_MSG or engine enqueue).
  [[nodiscard]] sim::Duration send_cost(NodeId node, FunctionId dst);

  // --- accessors -------------------------------------------------------------

  [[nodiscard]] sim::Scheduler& scheduler() { return sched_; }
  [[nodiscard]] bool sharded() const { return psim_ != nullptr; }
  [[nodiscard]] sim::ParallelSim* parallel() { return psim_; }
  /// Scheduler owning `node` (sched_ for the edge and in legacy mode).
  [[nodiscard]] sim::Scheduler& scheduler_for(NodeId node);
  /// Shard index owning `node` (0 for the edge and unknown nodes).
  [[nodiscard]] std::size_t shard_of(NodeId node) const;
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const ChainTable& chains() const { return chains_; }
  [[nodiscard]] rdma::RdmaNetwork* rdma_net() { return rdma_net_.get(); }
  [[nodiscard]] fabric::Switch& ethernet() { return eth_; }
  [[nodiscard]] const fabric::Topology& topology() const { return topo_; }
  [[nodiscard]] NodeId placement_of(FunctionId fn) const;
  [[nodiscard]] FunctionInstance& instance(FunctionId fn);

  // --- fault injection -------------------------------------------------------

  /// Fail-stop crash of a worker's network attachment (RDMA systems only):
  /// its fabric port goes dark — in-flight frames to/from it are lost —
  /// and every RC QP on the node or pointing at it from a peer transitions
  /// to error (the peers' RC retry counters exceed while it is down).
  /// Surviving engines recover via retransmit + QP rebuild.
  void crash_node(NodeId node);
  /// Bring a crashed worker's attachment back up. Peers re-establish
  /// connections lazily on their next send toward the node.
  void restart_node(NodeId node);

  /// Apply the configured compute jitter to a nominal duration for work on
  /// `node`. Legacy mode draws from the cluster-wide stream (byte-identical
  /// with earlier trees); parallel mode draws from the node's own
  /// deterministic stream so draws stay shard-local and replayable.
  [[nodiscard]] sim::Duration jittered(NodeId node, sim::Duration nominal);

  // --- parallel-mode observability -------------------------------------------

  /// Enable request tracing on the per-shard hubs (off by default in
  /// parallel mode; sample every `n`th trace, 0 disables again).
  void enable_shard_tracing(std::uint64_t n);
  /// Enable exact busy-time profiling on the per-shard hubs: each shard
  /// worker thread attributes its cores' busy intervals into its own
  /// obs::Profiler, folded together by merge_observability. Call before
  /// the run starts.
  void enable_shard_profiling();
  /// Enable the per-tenant resource ledger (ISSUE 10). Parallel mode: each
  /// shard worker thread records occupancy / wait / blame into its own
  /// obs::Ledger (chained in front of the shard profiler when profiling is
  /// also on), folded together by merge_observability. Serial runs enable
  /// the installed global hub's ledger via obs::LedgerSession instead. In
  /// both modes this attaches simulated-time clocks to every buffer pool so
  /// the exact slot-ns occupancy integrals accrue.
  void enable_ledger();
  [[nodiscard]] bool ledger_enabled() const { return ledger_enabled_; }
  /// Fold every pool's slot-ns integral (through its node's final simulated
  /// time) into the owning shard's ledger (parallel) or the installed global
  /// hub's ledger (serial). Call once, after the run drains and before
  /// merge_observability.
  void collect_pool_slot_ns();
  /// The hub observing the cluster edge: shard 0's hub in parallel mode,
  /// the installed global hub otherwise (may be null). Requests are
  /// admitted, completed, and blame-targeted on the edge, so this is where
  /// the controllers' ledger lives.
  [[nodiscard]] obs::Hub* edge_hub();
  /// Register a latency SLO with the watchdog that observes this cluster's
  /// requests (the edge shard's hub in parallel mode, the installed global
  /// hub otherwise).
  void add_slo(obs::SloSpec spec);
  /// Start a UtilizationProbe on every worker core (host CPUs + a separate
  /// engine core), exposing each probe's last completed window in `reg` as
  /// `core_util{node,core}`.
  void start_util_probes(obs::Registry& reg, sim::Duration period);
  /// Start the time-series flight recorder (ISSUE 6): registers gauge
  /// probes over every engine / RNIC / connection manager / buffer pool /
  /// core set, then begins periodic background sampling in simulated time
  /// — on each shard's own hub in parallel mode (folded together by
  /// merge_observability), on the installed global hub otherwise. Call
  /// after finish_setup() so tenants and connections exist; the ingress
  /// and the chaos controller add their own series via flight_recorder().
  void start_flight_recorder(obs::FlightConfig cfg = {});
  /// Recorder holding `node`'s series: the owning shard's hub in parallel
  /// mode, the installed global hub otherwise. nullptr until
  /// start_flight_recorder() runs, so callers can no-op cheaply.
  [[nodiscard]] obs::FlightRecorder* flight_recorder(NodeId node);
  [[nodiscard]] bool flight_recording() const { return flight_started_; }
  /// Fold every shard hub into `into` deterministically (shard order):
  /// counters add, histograms merge, spans concatenate and cross-shard span
  /// ends resolve. Call after the run; shard registries are reset so a
  /// second merge cannot double-count.
  void merge_observability(obs::Hub& into);

  /// Tenant owning a deployed function (invalid() for entries).
  [[nodiscard]] TenantId tenant_of_function(FunctionId fn) const;

 private:
  friend class WorkerNode;

  /// §3.1 security model: messages crossing tenants are copied into the
  /// destination tenant's pool by the sending CPU (no shared memory across
  /// security domains).
  void cross_domain_send(FunctionId src, NodeId node, sim::Core& src_core,
                         const mem::BufferDescriptor& d, FunctionId dst,
                         TenantId dst_tenant);

  /// Register `node`'s gauge probes on its shard's flight recorder. Every
  /// probe reads only shard-local state (the determinism contract).
  void register_flight_probes(WorkerNode& node, const obs::FlightConfig& cfg);

  /// Rebuild the parallel simulator's per-shard-pair lookahead matrix from
  /// the current leaf assignment (after each add_worker): D[a][b] = flat
  /// cross-node lookahead + the minimum cross-leaf detour between the
  /// shards' leaves. Once setup is finished, worker pairs that share no
  /// tenant (and have no cart-store relation) lose their direct edge: no
  /// QPs exist between them, so their bound is the min-plus relay path
  /// through shards they do talk to (edge shard included — the ingress may
  /// target any worker). Any post that violates the tightened matrix
  /// PD_CHECK-faults, so a wrong no-comm assumption is loud, not silent.
  /// No-op in legacy mode.
  void refresh_lookahead_matrix();

  /// True when some admitted tenant is hosted on both nodes (an unscoped
  /// tenant is hosted everywhere). Such pairs get RC pools at
  /// finish_setup() and a direct edge in the lookahead matrix.
  [[nodiscard]] bool tenants_shared(NodeId a, NodeId b) const;

  sim::Scheduler& sched_;
  ClusterConfig config_;
  fabric::Topology topo_;  ///< leaf/spine layout shared by both fabrics
  fabric::Switch eth_;  ///< Ethernet network (TCP paths)
  std::unique_ptr<rdma::RdmaNetwork> rdma_net_;
  std::shared_ptr<baselines::TcpRelayDirectory> tcp_directory_;
  std::shared_ptr<baselines::FuyaoDirectory> fuyao_directory_;
  std::vector<std::unique_ptr<WorkerNode>> nodes_;
  std::unordered_map<NodeId, WorkerNode*> by_id_;
  std::unordered_map<TenantId, std::uint32_t> tenants_;
  /// Host scope per tenant (empty vector = every node, the legacy default).
  /// Drives which node pairs finish_setup() meshes and which shard pairs
  /// the PDES lookahead matrix treats as directly communicating.
  std::unordered_map<TenantId, std::vector<NodeId>> tenant_hosts_;
  std::unordered_map<FunctionId, NodeId> placement_;
  std::unordered_map<FunctionId, std::unique_ptr<FunctionInstance>> instances_;
  ChainTable chains_;
  std::unique_ptr<CartStateStore> cart_store_;
  std::vector<std::pair<NodeId, std::unique_ptr<CartStoreClient>>>
      cart_clients_;
  sim::Rng rng_{0};
  bool setup_done_ = false;
  bool flight_started_ = false;
  std::vector<std::unique_ptr<sim::TimeSeries>> util_series_;
  std::vector<std::unique_ptr<sim::UtilizationProbe>> util_probes_;

  // Parallel mode only.
  sim::ParallelSim* psim_ = nullptr;
  std::unordered_map<NodeId, std::size_t> node_shard_;
  std::size_t next_shard_ = 1;  ///< shard 0 is the edge
  std::unordered_map<NodeId, sim::Rng> node_jitter_;
  std::vector<std::unique_ptr<obs::Hub>> shard_hubs_;
  bool shard_profiling_ = false;
  bool ledger_enabled_ = false;
};

}  // namespace pd::runtime
