// Online Boutique (§4.3): the 10-microservice demo application used for
// the end-to-end evaluation, expressed as Palladium chains.
//
// Call graphs are flattened into exchange sequences (see chain.hpp); the
// three measured chains (Home Query, View Cart, Product Query) each incur
// 12 data exchanges (> 11, matching §4.3), and the paper's placement is
// reproduced: potential hotspots (Frontend, Checkout, Recommendation) on
// one node, the remaining seven functions on the other.
#pragma once

#include "runtime/cluster.hpp"

namespace pd::runtime {

struct OnlineBoutique {
  // Function ids.
  static constexpr FunctionId kFrontend{1};
  static constexpr FunctionId kProductCatalog{2};
  static constexpr FunctionId kCurrency{3};
  static constexpr FunctionId kCart{4};
  static constexpr FunctionId kRecommendation{5};
  static constexpr FunctionId kShipping{6};
  static constexpr FunctionId kCheckout{7};
  static constexpr FunctionId kPayment{8};
  static constexpr FunctionId kEmail{9};
  static constexpr FunctionId kAd{10};

  // Chain ids.
  static constexpr std::uint32_t kHomeQuery = 1;
  static constexpr std::uint32_t kViewCart = 2;
  static constexpr std::uint32_t kProductQuery = 3;
  static constexpr std::uint32_t kCheckoutChain = 4;
  static constexpr std::uint32_t kAddToCart = 5;
  static constexpr std::uint32_t kCurrencyConvert = 6;

  static constexpr TenantId kTenant{1};

  /// Deploy the application: tenant pool, 10 functions placed across
  /// `hot_node` (Frontend/Checkout/Recommendation) and `cold_node`, and
  /// all six chains. For single-node systems (NightCore) pass the same
  /// node twice.
  ///
  /// With `cart_store` set, the frontend-adjacent CartService hops are
  /// marked for the RDMA state store (ISSUE 8): Home/View Cart/Product
  /// fetch the cart with a one-sided READ, Add To Cart commits it through
  /// the CAS ownership-token path. Checkout's cart visit stays RPC — it
  /// runs inside the checkout transaction, not off the frontend. The marks
  /// only take effect once Cluster::enable_cart_store has run.
  static void deploy(Cluster& cluster, NodeId hot_node, NodeId cold_node,
                     bool cart_store = false);

  /// The three chains Fig. 16 / Table 2 measure.
  static const std::vector<std::uint32_t>& measured_chains();
  static const char* chain_name(std::uint32_t id);
};

}  // namespace pd::runtime
