// Online Boutique (§4.3): the 10-microservice demo application used for
// the end-to-end evaluation, expressed as Palladium chains.
//
// Call graphs are flattened into exchange sequences (see chain.hpp); the
// three measured chains (Home Query, View Cart, Product Query) each incur
// 12 data exchanges (> 11, matching §4.3), and the paper's placement is
// reproduced: potential hotspots (Frontend, Checkout, Recommendation) on
// one node, the remaining seven functions on the other.
#pragma once

#include "runtime/cluster.hpp"

namespace pd::runtime {

struct OnlineBoutique {
  // Function ids.
  static constexpr FunctionId kFrontend{1};
  static constexpr FunctionId kProductCatalog{2};
  static constexpr FunctionId kCurrency{3};
  static constexpr FunctionId kCart{4};
  static constexpr FunctionId kRecommendation{5};
  static constexpr FunctionId kShipping{6};
  static constexpr FunctionId kCheckout{7};
  static constexpr FunctionId kPayment{8};
  static constexpr FunctionId kEmail{9};
  static constexpr FunctionId kAd{10};

  // Chain ids.
  static constexpr std::uint32_t kHomeQuery = 1;
  static constexpr std::uint32_t kViewCart = 2;
  static constexpr std::uint32_t kProductQuery = 3;
  static constexpr std::uint32_t kCheckoutChain = 4;
  static constexpr std::uint32_t kAddToCart = 5;
  static constexpr std::uint32_t kCurrencyConvert = 6;

  static constexpr TenantId kTenant{1};

  /// Deploy the application: tenant pool, 10 functions placed across
  /// `hot_node` (Frontend/Checkout/Recommendation) and `cold_node`, and
  /// all six chains. For single-node systems (NightCore) pass the same
  /// node twice.
  ///
  /// With `cart_store` set, the frontend-adjacent CartService hops are
  /// marked for the RDMA state store (ISSUE 8): Home/View Cart/Product
  /// fetch the cart with a one-sided READ, Add To Cart commits it through
  /// the CAS ownership-token path. Checkout's cart visit stays RPC — it
  /// runs inside the checkout transaction, not off the frontend. The marks
  /// only take effect once Cluster::enable_cart_store has run.
  static void deploy(Cluster& cluster, NodeId hot_node, NodeId cold_node,
                     bool cart_store = false);

  // --- multi-cell scale-out (ISSUE 9) --------------------------------------

  /// Id strides between cells: cell c's functions are kFrontend + c*16 …,
  /// its chains kHomeQuery + c*8 …, its tenant TenantId{1 + c}.
  static constexpr std::uint32_t kFunctionStride = 16;
  static constexpr std::uint32_t kChainStride = 8;

  /// How deploy_cells picks each cell's hot/cold node pair from `nodes`.
  enum class CellPlacement : std::uint8_t {
    /// Consecutive nodes — with nodes_per_switch >= 2 a cell's two nodes
    /// share a leaf, so its 12-exchange chains never cross the spine.
    kLeafAffine,
    /// Hot node from the first half, cold from the second — every chain
    /// hop crosses the spine (the oversubscription stress case).
    kCrossLeaf,
  };

  /// One deployed boutique instance.
  struct Cell {
    std::uint32_t index = 0;
    TenantId tenant{};
    NodeId hot{};
    NodeId cold{};
    std::uint32_t home_query = 0;  ///< this cell's Home Query chain id
  };

  /// Deploy `cells` independent boutique instances (one tenant each) over
  /// `nodes`, pairing hot/cold nodes per `placement`. Cells wrap around
  /// `nodes` when 2*cells exceeds it. This is the 16–64-node scale
  /// workload: per-cell tenants keep pools and chains isolated while every
  /// cell shares the fabric and, cross-leaf, the oversubscribed spine.
  static std::vector<Cell> deploy_cells(
      Cluster& cluster, const std::vector<NodeId>& nodes, std::size_t cells,
      CellPlacement placement = CellPlacement::kLeafAffine,
      bool cart_store = false);

  /// The three chains Fig. 16 / Table 2 measure.
  static const std::vector<std::uint32_t>& measured_chains();
  static const char* chain_name(std::uint32_t id);
};

}  // namespace pd::runtime
