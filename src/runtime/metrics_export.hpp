// Snapshot-export of every data-plane counter into an obs::Registry.
//
// Components keep their own cheap counters on the hot path (EngineCounters,
// RnicCounters, ConnectionStats, ...); this module copies them into named,
// label-tagged registry instruments at dump time. Pull-at-snapshot avoids
// the dangling-probe hazard of self-registration: a cluster can be destroyed
// before (or after) the registry without either holding pointers into the
// other.
#pragma once

#include "obs/metrics.hpp"
#include "runtime/cluster.hpp"

namespace pd::runtime {

/// Copy all counters from `cluster` into `reg` (set-style: idempotent,
/// callable repeatedly — e.g. once per measurement window).
///
/// Exported keys (labels `node=<id>`, pools add `tenant=<id>`):
///   engine.{tx_msgs,rx_msgs,recycled,replenished,drops_no_route}
///   engine.tx_backlog (gauge)
///   rnic.{sends,recvs,writes,atomics,rnr_events,cache_miss_wrs,payload_bytes}
///   conn.{establishments,activations,deactivations,sends,reestablishments}
///   dma.{transfers,bytes_moved}             (DPU-equipped nodes only)
///   pool.{in_use,capacity} (gauges)
///   fabric.frames                           (unlabelled, cluster-wide)
void export_metrics(Cluster& cluster, obs::Registry& reg);

}  // namespace pd::runtime
