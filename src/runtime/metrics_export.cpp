#include "runtime/metrics_export.hpp"

#include <string>

#include "core/engine.hpp"
#include "obs/hub.hpp"
#include "runtime/statestore.hpp"

namespace pd::runtime {

void export_metrics(Cluster& cluster, obs::Registry& reg) {
  for (const auto& node : cluster.workers()) {
    const std::string nl = "node=" + std::to_string(node->id().value());

    if (core::NetworkEngine* eng = node->palladium_engine()) {
      const core::EngineCounters& ec = eng->counters();
      reg.counter("engine.tx_msgs", nl).set(ec.tx_msgs);
      reg.counter("engine.rx_msgs", nl).set(ec.rx_msgs);
      reg.counter("engine.recycled", nl).set(ec.recycled);
      reg.counter("engine.replenished", nl).set(ec.replenished);
      reg.counter("engine.drops_no_route", nl).set(ec.drops_no_route);
      reg.counter("engine.retransmits", nl).set(ec.retransmits);
      reg.counter("engine.acks_rx", nl).set(ec.acks_rx);
      reg.counter("engine.nacks_rx", nl).set(ec.nacks_rx);
      reg.counter("engine.dup_rx", nl).set(ec.dup_rx);
      reg.counter("engine.send_failures", nl).set(ec.send_failures);
      reg.counter("engine.requests_shed", nl).set(ec.requests_shed);
      reg.counter("engine.error_completions", nl).set(ec.error_completions);
      reg.counter("engine.errors_dropped", nl).set(ec.errors_dropped);
      reg.gauge("engine.tx_backlog", nl)
          .set(static_cast<double>(eng->tx_backlog()));

      const rdma::ConnectionStats& cs = eng->connections().stats();
      reg.counter("conn.establishments", nl).set(cs.establishments);
      reg.counter("conn.activations", nl).set(cs.activations);
      reg.counter("conn.deactivations", nl).set(cs.deactivations);
      reg.counter("conn.sends", nl).set(cs.sends);
      reg.counter("conn.reestablishments", nl).set(cs.reestablishments);
      reg.counter("conn.rebuild_retries", nl).set(cs.rebuild_retries);
    }

    if (rdma::Rnic* rnic = node->rnic()) {
      const rdma::RnicCounters& rc = rnic->counters();
      reg.counter("rnic.sends", nl).set(rc.sends);
      reg.counter("rnic.recvs", nl).set(rc.recvs);
      reg.counter("rnic.writes", nl).set(rc.writes);
      reg.counter("rnic.reads", nl).set(rc.reads);
      reg.counter("rnic.atomics", nl).set(rc.atomics);
      reg.counter("rnic.fetch_adds", nl).set(rc.fetch_adds);
      reg.counter("rnic.access_errors", nl).set(rc.access_errors);
      reg.counter("rnic.atomic_access_errors", nl)
          .set(rc.atomic_access_errors);
      reg.counter("rnic.rnr_events", nl).set(rc.rnr_events);
      reg.counter("rnic.rnr_drops", nl).set(rc.rnr_drops);
      reg.counter("rnic.datagrams", nl).set(rc.datagrams);
      reg.counter("rnic.cache_miss_wrs", nl).set(rc.cache_miss_wrs);
      reg.counter("rnic.payload_bytes", nl).set(rc.payload_bytes);
    }

    if (CartStoreClient* sc = cluster.cart_client(node->id())) {
      const CartStoreClient::Counters& cc = sc->counters();
      reg.counter("store.reads", nl).set(cc.reads);
      reg.counter("store.read_bytes", nl).set(cc.read_bytes);
      reg.counter("store.updates", nl).set(cc.updates);
      reg.counter("store.cas_acquires", nl).set(cc.cas_acquires);
      reg.counter("store.cas_conflicts", nl).set(cc.cas_conflicts);
      reg.counter("store.errors", nl).set(cc.errors);
    }

    if (dpu::Dpu* dpu = node->dpu()) {
      reg.counter("dma.transfers", nl).set(dpu->dma().transfers());
      reg.counter("dma.bytes_moved", nl).set(dpu->dma().bytes_moved());
    }

    for (const auto& tm : node->memory().pools()) {
      const std::string pl =
          nl + ",tenant=" + std::to_string(tm->tenant().value());
      reg.gauge("pool.in_use", pl)
          .set(static_cast<double>(tm->pool().in_use()));
      reg.gauge("pool.capacity", pl)
          .set(static_cast<double>(tm->pool().capacity()));
    }
  }

  if (cluster.rdma_net() != nullptr) {
    reg.counter("fabric.frames").set(cluster.rdma_net()->fabric().frames());
    reg.counter("fabric.frames_dropped")
        .set(cluster.rdma_net()->fabric().frames_dropped());
  }

  // PDES protocol self-metrics (ISSUE 9). Every value here is a pure
  // function of the model — identical for any worker-thread count — so the
  // export stays byte-comparable across --threads runs. Wall-clock numbers
  // (barrier_wait_ns) are deliberately excluded; benches report those
  // separately, outside golden-diffed artifacts.
  if (sim::ParallelSim* psim = cluster.parallel()) {
    reg.counter("pdes.epochs").set(psim->epochs());
    reg.counter("pdes.skip_ahead_epochs").set(psim->skip_ahead_epochs());
    reg.counter("pdes.mailbox_msgs").set(psim->mailbox_msgs());
    for (std::size_t k = 0; k < psim->shard_count(); ++k) {
      reg.counter("pdes.shard_events", "shard=" + std::to_string(k))
          .set(psim->shard(k).events_processed());
    }
  }

  // When the installed hub collected an exact busy-time profile, fold its
  // per-(component, tenant) summary in alongside the data-plane counters.
  if (obs::Hub* hub = obs::hub(); hub != nullptr && !hub->profiler.empty()) {
    hub->profiler.export_folded(reg);
  }
}

}  // namespace pd::runtime
