#include "runtime/metrics_export.hpp"

#include <string>

#include "core/engine.hpp"

namespace pd::runtime {

void export_metrics(Cluster& cluster, obs::Registry& reg) {
  for (const auto& node : cluster.workers()) {
    const std::string nl = "node=" + std::to_string(node->id().value());

    if (core::NetworkEngine* eng = node->palladium_engine()) {
      const core::EngineCounters& ec = eng->counters();
      reg.counter("engine.tx_msgs", nl).set(ec.tx_msgs);
      reg.counter("engine.rx_msgs", nl).set(ec.rx_msgs);
      reg.counter("engine.recycled", nl).set(ec.recycled);
      reg.counter("engine.replenished", nl).set(ec.replenished);
      reg.counter("engine.drops_no_route", nl).set(ec.drops_no_route);
      reg.gauge("engine.tx_backlog", nl)
          .set(static_cast<double>(eng->tx_backlog()));

      const rdma::ConnectionStats& cs = eng->connections().stats();
      reg.counter("conn.establishments", nl).set(cs.establishments);
      reg.counter("conn.activations", nl).set(cs.activations);
      reg.counter("conn.deactivations", nl).set(cs.deactivations);
      reg.counter("conn.sends", nl).set(cs.sends);
      reg.counter("conn.reestablishments", nl).set(cs.reestablishments);
    }

    if (rdma::Rnic* rnic = node->rnic()) {
      const rdma::RnicCounters& rc = rnic->counters();
      reg.counter("rnic.sends", nl).set(rc.sends);
      reg.counter("rnic.recvs", nl).set(rc.recvs);
      reg.counter("rnic.writes", nl).set(rc.writes);
      reg.counter("rnic.atomics", nl).set(rc.atomics);
      reg.counter("rnic.rnr_events", nl).set(rc.rnr_events);
      reg.counter("rnic.cache_miss_wrs", nl).set(rc.cache_miss_wrs);
      reg.counter("rnic.payload_bytes", nl).set(rc.payload_bytes);
    }

    if (dpu::Dpu* dpu = node->dpu()) {
      reg.counter("dma.transfers", nl).set(dpu->dma().transfers());
      reg.counter("dma.bytes_moved", nl).set(dpu->dma().bytes_moved());
    }

    for (const auto& tm : node->memory().pools()) {
      const std::string pl =
          nl + ",tenant=" + std::to_string(tm->tenant().value());
      reg.gauge("pool.in_use", pl)
          .set(static_cast<double>(tm->pool().in_use()));
      reg.gauge("pool.capacity", pl)
          .set(static_cast<double>(tm->pool().capacity()));
    }
  }

  if (cluster.rdma_net() != nullptr) {
    reg.counter("fabric.frames").set(cluster.rdma_net()->fabric().frames());
  }
}

}  // namespace pd::runtime
