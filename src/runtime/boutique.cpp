#include "runtime/boutique.hpp"

namespace pd::runtime {
namespace {

using B = OnlineBoutique;

/// Per-visit compute costs (reference ns). The boutique microservices are
/// thin handlers (lookups, currency math, template snippets) — the demo's
/// handlers do microseconds of work, which is exactly why the data plane
/// dominates end-to-end cost (§1) and why the evaluation can expose
/// data-plane differences at all.
constexpr sim::Duration kFrontendNs = 2'500;
constexpr sim::Duration kCatalogNs = 9'000;
constexpr sim::Duration kCurrencyNs = 4'000;
constexpr sim::Duration kCartNs = 8'000;
constexpr sim::Duration kRecommendationNs = 12'000;
constexpr sim::Duration kShippingNs = 6'000;
constexpr sim::Duration kCheckoutNs = 8'000;
constexpr sim::Duration kPaymentNs = 10'000;
constexpr sim::Duration kEmailNs = 6'000;
constexpr sim::Duration kAdNs = 5'000;

/// Typical payload sizes (bytes) for the hop outputs.
constexpr std::uint32_t kSmall = 256;    // RPC-style request/ack
constexpr std::uint32_t kMedium = 1024;  // list responses
constexpr std::uint32_t kLarge = 4096;   // rendered fragments / catalogs

ChainHop fe(std::uint32_t out = kMedium) { return {B::kFrontend, kFrontendNs, out}; }

}  // namespace

void OnlineBoutique::deploy(Cluster& cluster, NodeId hot_node,
                            NodeId cold_node, bool cart_store) {
  cluster.add_tenant(kTenant, /*weight=*/1);

  // Frontend-adjacent CartService visits, marked for the RDMA state store
  // when requested. Only hops sandwiched between two frontend visits are
  // eligible (the frontend resumes its own next hop after the store op).
  const auto cart = [cart_store](std::uint32_t out, StoreOp op) {
    return ChainHop{B::kCart, kCartNs, out,
                    cart_store ? op : StoreOp::kNone};
  };

  const auto place = [&](FunctionId id, const char* name, NodeId node) {
    cluster.deploy(FunctionSpec{id, name, kTenant}, node);
  };
  place(kFrontend, "frontend", hot_node);
  place(kCheckout, "checkout", hot_node);
  place(kRecommendation, "recommendation", hot_node);
  place(kProductCatalog, "productcatalog", cold_node);
  place(kCurrency, "currency", cold_node);
  place(kCart, "cart", cold_node);
  place(kShipping, "shipping", cold_node);
  place(kPayment, "payment", cold_node);
  place(kEmail, "email", cold_node);
  place(kAd, "ad", cold_node);

  // Home Query: frontend fans out to currency, catalog, cart,
  // recommendation and ad — 12 exchanges.
  cluster.add_chain(Chain{
      kHomeQuery, "Home Query", kTenant, kSmall,
      {fe(kSmall), {kCurrency, kCurrencyNs, kSmall}, fe(kSmall),
       {kProductCatalog, kCatalogNs, kLarge}, fe(kSmall),
       cart(kMedium, StoreOp::kRead), fe(kSmall),
       {kRecommendation, kRecommendationNs, kMedium}, fe(kSmall),
       {kAd, kAdNs, kSmall}, fe(kLarge)}});

  // View Cart: currency, cart, recommendation, catalog, shipping — 12
  // exchanges.
  cluster.add_chain(Chain{
      kViewCart, "View Cart", kTenant, kSmall,
      {fe(kSmall), {kCurrency, kCurrencyNs, kSmall}, fe(kSmall),
       cart(kMedium, StoreOp::kRead), fe(kMedium),
       {kRecommendation, kRecommendationNs, kMedium}, fe(kSmall),
       {kProductCatalog, kCatalogNs, kLarge}, fe(kSmall),
       {kShipping, kShippingNs, kSmall}, fe(kLarge)}});

  // Product Query: catalog, currency, cart, recommendation, ad — 12
  // exchanges.
  cluster.add_chain(Chain{
      kProductQuery, "Product Query", kTenant, kSmall,
      {fe(kSmall), {kProductCatalog, kCatalogNs, kLarge}, fe(kSmall),
       {kCurrency, kCurrencyNs, kSmall}, fe(kSmall),
       cart(kMedium, StoreOp::kRead), fe(kSmall),
       {kRecommendation, kRecommendationNs, kMedium}, fe(kSmall),
       {kAd, kAdNs, kSmall}, fe(kLarge)}});

  // Checkout: the long transactional chain through the checkout service.
  cluster.add_chain(Chain{
      kCheckoutChain, "Checkout", kTenant, kMedium,
      {fe(kMedium), {kCheckout, kCheckoutNs, kSmall},
       {kCart, kCartNs, kMedium}, {kCheckout, kCheckoutNs, kSmall},
       {kProductCatalog, kCatalogNs, kMedium}, {kCheckout, kCheckoutNs, kSmall},
       {kCurrency, kCurrencyNs, kSmall}, {kCheckout, kCheckoutNs, kSmall},
       {kShipping, kShippingNs, kSmall}, {kCheckout, kCheckoutNs, kSmall},
       {kPayment, kPaymentNs, kSmall}, {kCheckout, kCheckoutNs, kSmall},
       {kEmail, kEmailNs, kSmall}, {kCheckout, kCheckoutNs, kMedium},
       fe(kMedium)}});

  // Add To Cart: short write path.
  cluster.add_chain(Chain{kAddToCart, "Add To Cart", kTenant, kSmall,
                          {fe(kSmall), {kProductCatalog, kCatalogNs, kMedium},
                           fe(kSmall), cart(kSmall, StoreOp::kReadModifyWrite),
                           fe(kSmall)}});

  // Currency conversion: the minimal chain.
  cluster.add_chain(Chain{kCurrencyConvert, "Currency", kTenant, kSmall,
                          {fe(kSmall), {kCurrency, kCurrencyNs, kSmall},
                           fe(kSmall)}});
}

const std::vector<std::uint32_t>& OnlineBoutique::measured_chains() {
  static const std::vector<std::uint32_t> chains{kHomeQuery, kViewCart,
                                                 kProductQuery};
  return chains;
}

const char* OnlineBoutique::chain_name(std::uint32_t id) {
  switch (id) {
    case kHomeQuery: return "Home Query";
    case kViewCart: return "View Cart";
    case kProductQuery: return "Product Query";
    case kCheckoutChain: return "Checkout";
    case kAddToCart: return "Add To Cart";
    case kCurrencyConvert: return "Currency";
  }
  return "?";
}

}  // namespace pd::runtime
