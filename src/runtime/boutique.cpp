#include "runtime/boutique.hpp"

#include <string>

#include "common/check.hpp"

namespace pd::runtime {
namespace {

using B = OnlineBoutique;

/// Per-visit compute costs (reference ns). The boutique microservices are
/// thin handlers (lookups, currency math, template snippets) — the demo's
/// handlers do microseconds of work, which is exactly why the data plane
/// dominates end-to-end cost (§1) and why the evaluation can expose
/// data-plane differences at all.
constexpr sim::Duration kFrontendNs = 2'500;
constexpr sim::Duration kCatalogNs = 9'000;
constexpr sim::Duration kCurrencyNs = 4'000;
constexpr sim::Duration kCartNs = 8'000;
constexpr sim::Duration kRecommendationNs = 12'000;
constexpr sim::Duration kShippingNs = 6'000;
constexpr sim::Duration kCheckoutNs = 8'000;
constexpr sim::Duration kPaymentNs = 10'000;
constexpr sim::Duration kEmailNs = 6'000;
constexpr sim::Duration kAdNs = 5'000;

/// Typical payload sizes (bytes) for the hop outputs.
constexpr std::uint32_t kSmall = 256;    // RPC-style request/ack
constexpr std::uint32_t kMedium = 1024;  // list responses
constexpr std::uint32_t kLarge = 4096;   // rendered fragments / catalogs

/// Deploy one boutique instance with its ids shifted by the cell offsets
/// (zero offsets + empty suffix = the classic single-instance layout,
/// byte-identical with earlier trees).
void deploy_one(Cluster& cluster, NodeId hot_node, NodeId cold_node,
                bool cart_store, TenantId tenant, std::uint32_t f_off,
                std::uint32_t c_off, const std::string& suffix,
                bool scope_tenant = false) {
  if (scope_tenant) {
    // Multi-cell deployments provision the tenant only where its functions
    // run — an all-nodes pool per tenant is quadratic at 16–64 nodes.
    cluster.add_tenant(tenant, /*weight=*/1, {hot_node, cold_node});
  } else {
    cluster.add_tenant(tenant, /*weight=*/1);
  }

  const auto f = [f_off](FunctionId base) {
    return FunctionId{base.value() + f_off};
  };
  const auto fe = [&](std::uint32_t out = kMedium) {
    return ChainHop{f(B::kFrontend), kFrontendNs, out};
  };
  // Frontend-adjacent CartService visits, marked for the RDMA state store
  // when requested. Only hops sandwiched between two frontend visits are
  // eligible (the frontend resumes its own next hop after the store op).
  const auto cart = [&](std::uint32_t out, StoreOp op) {
    return ChainHop{f(B::kCart), kCartNs, out, cart_store ? op : StoreOp::kNone};
  };

  const auto place = [&](FunctionId id, const char* name, NodeId node) {
    cluster.deploy(FunctionSpec{f(id), name + suffix, tenant}, node);
  };
  place(B::kFrontend, "frontend", hot_node);
  place(B::kCheckout, "checkout", hot_node);
  place(B::kRecommendation, "recommendation", hot_node);
  place(B::kProductCatalog, "productcatalog", cold_node);
  place(B::kCurrency, "currency", cold_node);
  place(B::kCart, "cart", cold_node);
  place(B::kShipping, "shipping", cold_node);
  place(B::kPayment, "payment", cold_node);
  place(B::kEmail, "email", cold_node);
  place(B::kAd, "ad", cold_node);

  const auto chain_id = [c_off](std::uint32_t base) { return base + c_off; };
  const auto chain_name = [&suffix](const char* base) {
    return base + suffix;
  };

  // Home Query: frontend fans out to currency, catalog, cart,
  // recommendation and ad — 12 exchanges.
  cluster.add_chain(Chain{
      chain_id(B::kHomeQuery), chain_name("Home Query"), tenant, kSmall,
      {fe(kSmall), {f(B::kCurrency), kCurrencyNs, kSmall}, fe(kSmall),
       {f(B::kProductCatalog), kCatalogNs, kLarge}, fe(kSmall),
       cart(kMedium, StoreOp::kRead), fe(kSmall),
       {f(B::kRecommendation), kRecommendationNs, kMedium}, fe(kSmall),
       {f(B::kAd), kAdNs, kSmall}, fe(kLarge)}});

  // View Cart: currency, cart, recommendation, catalog, shipping — 12
  // exchanges.
  cluster.add_chain(Chain{
      chain_id(B::kViewCart), chain_name("View Cart"), tenant, kSmall,
      {fe(kSmall), {f(B::kCurrency), kCurrencyNs, kSmall}, fe(kSmall),
       cart(kMedium, StoreOp::kRead), fe(kMedium),
       {f(B::kRecommendation), kRecommendationNs, kMedium}, fe(kSmall),
       {f(B::kProductCatalog), kCatalogNs, kLarge}, fe(kSmall),
       {f(B::kShipping), kShippingNs, kSmall}, fe(kLarge)}});

  // Product Query: catalog, currency, cart, recommendation, ad — 12
  // exchanges.
  cluster.add_chain(Chain{
      chain_id(B::kProductQuery), chain_name("Product Query"), tenant, kSmall,
      {fe(kSmall), {f(B::kProductCatalog), kCatalogNs, kLarge}, fe(kSmall),
       {f(B::kCurrency), kCurrencyNs, kSmall}, fe(kSmall),
       cart(kMedium, StoreOp::kRead), fe(kSmall),
       {f(B::kRecommendation), kRecommendationNs, kMedium}, fe(kSmall),
       {f(B::kAd), kAdNs, kSmall}, fe(kLarge)}});

  // Checkout: the long transactional chain through the checkout service.
  const ChainHop co{f(B::kCheckout), kCheckoutNs, kSmall};
  cluster.add_chain(Chain{
      chain_id(B::kCheckoutChain), chain_name("Checkout"), tenant, kMedium,
      {fe(kMedium), co,
       {f(B::kCart), kCartNs, kMedium}, co,
       {f(B::kProductCatalog), kCatalogNs, kMedium}, co,
       {f(B::kCurrency), kCurrencyNs, kSmall}, co,
       {f(B::kShipping), kShippingNs, kSmall}, co,
       {f(B::kPayment), kPaymentNs, kSmall}, co,
       {f(B::kEmail), kEmailNs, kSmall},
       {f(B::kCheckout), kCheckoutNs, kMedium},
       fe(kMedium)}});

  // Add To Cart: short write path.
  cluster.add_chain(Chain{
      chain_id(B::kAddToCart), chain_name("Add To Cart"), tenant, kSmall,
      {fe(kSmall), {f(B::kProductCatalog), kCatalogNs, kMedium}, fe(kSmall),
       cart(kSmall, StoreOp::kReadModifyWrite), fe(kSmall)}});

  // Currency conversion: the minimal chain.
  cluster.add_chain(Chain{
      chain_id(B::kCurrencyConvert), chain_name("Currency"), tenant, kSmall,
      {fe(kSmall), {f(B::kCurrency), kCurrencyNs, kSmall}, fe(kSmall)}});
}

}  // namespace

void OnlineBoutique::deploy(Cluster& cluster, NodeId hot_node,
                            NodeId cold_node, bool cart_store) {
  deploy_one(cluster, hot_node, cold_node, cart_store, kTenant,
             /*f_off=*/0, /*c_off=*/0, /*suffix=*/"");
}

std::vector<OnlineBoutique::Cell> OnlineBoutique::deploy_cells(
    Cluster& cluster, const std::vector<NodeId>& nodes, std::size_t cells,
    CellPlacement placement, bool cart_store) {
  PD_CHECK(!nodes.empty(), "deploy_cells needs at least one node");
  PD_CHECK(cells > 0, "deploy_cells needs at least one cell");
  const std::size_t n = nodes.size();
  std::vector<Cell> out;
  out.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    Cell cell;
    cell.index = static_cast<std::uint32_t>(c);
    cell.tenant = TenantId{static_cast<std::uint32_t>(1 + c)};
    if (n == 1) {
      cell.hot = cell.cold = nodes[0];
    } else if (placement == CellPlacement::kLeafAffine) {
      cell.hot = nodes[(2 * c) % n];
      cell.cold = nodes[(2 * c + 1) % n];
    } else {  // kCrossLeaf: hot from the first half, cold from the second
      const std::size_t half = n - n / 2;
      cell.hot = nodes[c % half];
      cell.cold = nodes[half + c % (n / 2)];
    }
    const auto off = static_cast<std::uint32_t>(c);
    cell.home_query = kHomeQuery + off * kChainStride;
    deploy_one(cluster, cell.hot, cell.cold, cart_store, cell.tenant,
               off * kFunctionStride, off * kChainStride,
               c == 0 ? std::string{} : "#" + std::to_string(c),
               /*scope_tenant=*/true);
    out.push_back(cell);
  }
  return out;
}

const std::vector<std::uint32_t>& OnlineBoutique::measured_chains() {
  static const std::vector<std::uint32_t> chains{kHomeQuery, kViewCart,
                                                 kProductQuery};
  return chains;
}

const char* OnlineBoutique::chain_name(std::uint32_t id) {
  switch (id) {
    case kHomeQuery: return "Home Query";
    case kViewCart: return "View Cart";
    case kProductQuery: return "Product Query";
    case kCheckoutChain: return "Checkout";
    case kAddToCart: return "Add To Cart";
    case kCurrencyConvert: return "Currency";
  }
  return "?";
}

}  // namespace pd::runtime
