// Bluefield-2 DPU model: wimpy Arm cores and the (slow) SoC DMA engine.
#pragma once

#include <memory>
#include <string>

#include "common/ids.hpp"
#include "common/units.hpp"
#include "proto/cost_model.hpp"
#include "sim/core.hpp"
#include "sim/event_fn.hpp"

namespace pd::dpu {

/// The SoC DMA engine moves bytes between host memory and DPU-local SoC
/// memory in on-path mode (Fig. 3 (1)). It is serial and slow — the
/// documented bottleneck of on-path offloading (§4.1.1).
class SocDmaEngine {
 public:
  explicit SocDmaEngine(sim::Scheduler& sched) : sched_(sched) {}

  /// Move `bytes` across the PCIe SoC path; `done` fires on completion.
  /// Transfers queue FIFO behind each other (kSocDmaParallelism == 1).
  void transfer(Bytes bytes, sim::EventFn done);

  /// Resource name reported to the busy-time profiler ("nodeN/dma").
  void set_name(std::string name) { name_ = std::move(name); }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] Bytes bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] sim::Duration backlog() const;

 private:
  sim::Scheduler& sched_;
  std::string name_ = "dma";
  sim::TimePoint busy_until_ = 0;
  std::uint64_t transfers_ = 0;
  Bytes bytes_moved_ = 0;
};

/// One DPU: an Arm core complex plus the SoC DMA engine. The integrated
/// ConnectX RNIC is modeled separately (rdma::Rnic) and shared with the
/// host, matching the Bluefield architecture.
class Dpu {
 public:
  Dpu(sim::Scheduler& sched, NodeId node, std::size_t arm_cores = 8,
      double core_speed = cost::kDpuCoreSpeed);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] sim::CoreSet& cores() { return cores_; }
  [[nodiscard]] sim::Core& core(std::size_t i) { return cores_.core(i); }
  [[nodiscard]] SocDmaEngine& dma() { return dma_; }

 private:
  NodeId node_;
  sim::CoreSet cores_;
  SocDmaEngine dma_;
};

}  // namespace pd::dpu
