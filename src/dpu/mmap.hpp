// Cross-processor shared memory: the DOCA-mmap analog (§3.4.2).
//
// The host-side shared-memory agent exports a tenant's unified memory pool
// (doca_mmap_export_pci / doca_mmap_export_rdma); the DNE imports the
// export descriptor (doca_mmap_create_from_export) and may then register
// the memory with the RNIC. This object is the DPU-side import handle.
#pragma once

#include "common/check.hpp"
#include "mem/memory_domain.hpp"

namespace pd::dpu {

class CrossProcessorMmap {
 public:
  /// Import a host pool on the DPU. Requires the host agent to have
  /// exported it for PCI (DPU core) access first.
  static CrossProcessorMmap import_export_descriptor(mem::TenantMemory& tm) {
    PD_CHECK(tm.exported_to_dpu(),
             "pool " << tm.pool_id()
                     << " not exported to DPU (doca_mmap_export_pci missing)");
    return CrossProcessorMmap(tm);
  }

  [[nodiscard]] PoolId pool_id() const { return tm_->pool_id(); }
  [[nodiscard]] TenantId tenant() const { return tm_->tenant(); }
  /// RNIC registration additionally requires the RDMA export grant.
  [[nodiscard]] bool rnic_registrable() const {
    return tm_->exported_to_rdma();
  }
  [[nodiscard]] mem::BufferPool& pool() { return tm_->pool(); }

 private:
  explicit CrossProcessorMmap(mem::TenantMemory& tm) : tm_(&tm) {}
  mem::TenantMemory* tm_;
};

}  // namespace pd::dpu
