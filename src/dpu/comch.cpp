#include "dpu/comch.hpp"

#include "common/check.hpp"

namespace pd::dpu {

const char* to_string(ComchVariant v) {
  switch (v) {
    case ComchVariant::kEvent: return "Comch-E";
    case ComchVariant::kPolling: return "Comch-P";
  }
  return "?";
}

ComchServer::ComchServer(sim::Scheduler& sched, sim::Core& dpu_core,
                         ComchVariant variant, ServerHandler server_handler)
    : sched_(sched),
      dpu_core_(dpu_core),
      variant_(variant),
      server_handler_(std::move(server_handler)) {
  PD_CHECK(server_handler_ != nullptr, "Comch server needs a handler");
}

sim::Duration ComchServer::per_msg() const {
  return variant_ == ComchVariant::kEvent ? cost::kComchEPerMsgNs
                                          : cost::kComchPPerMsgNs;
}

sim::Duration ComchServer::latency() const {
  return variant_ == ComchVariant::kEvent ? cost::kComchELatencyNs
                                          : cost::kComchPLatencyNs;
}

sim::Duration ComchServer::server_dequeue_cost() const {
  if (variant_ == ComchVariant::kEvent) return per_msg();
  // Comch-P's progress engine epoll-scans all endpoints per dequeue.
  return per_msg() + static_cast<sim::Duration>(clients_.size()) *
                         cost::kComchPPollPerEndpointNs;
}

void ComchServer::connect(FunctionId client, sim::Core& host_core,
                          ipc::DescriptorHandler host_handler) {
  PD_CHECK(host_handler != nullptr, "client needs a handler");
  PD_CHECK(clients_.find(client) == clients_.end(),
           "client " << client << " already connected");
  if (variant_ == ComchVariant::kPolling) {
    host_core.set_busy_poll(true);  // dedicated ring-polling core
  }
  clients_.emplace(client, Client{&host_core, std::move(host_handler)});
}

void ComchServer::disconnect(FunctionId client) {
  auto it = clients_.find(client);
  PD_CHECK(it != clients_.end(), "client " << client << " not connected");
  if (variant_ == ComchVariant::kPolling) {
    it->second.host_core->set_busy_poll(false);
  }
  clients_.erase(it);
}

bool ComchServer::connected(FunctionId client) const {
  return clients_.find(client) != clients_.end();
}

void ComchServer::send_to_server(FunctionId client,
                                 const mem::BufferDescriptor& d,
                                 bool charge_host) {
  auto it = clients_.find(client);
  PD_CHECK(it != clients_.end(), "send from unconnected client " << client);
  ++to_server_;
  // Host-side enqueue cost, then channel latency, then DNE-side dequeue.
  auto in_flight = [this, client, d] {
    sched_.schedule_after(latency(), [this, client, d] {
      dpu_core_.submit(server_dequeue_cost(),
                       [this, client, d] { server_handler_(client, d); });
    });
  };
  if (charge_host) {
    it->second.host_core->submit(per_msg(), std::move(in_flight));
  } else {
    in_flight();
  }
}

void ComchServer::send_to_client(FunctionId client,
                                 const mem::BufferDescriptor& d) {
  auto it = clients_.find(client);
  PD_CHECK(it != clients_.end(), "send to unconnected client " << client);
  ++to_client_;
  Client& c = it->second;
  dpu_core_.submit(per_msg(), [this, &c, d] {
    sched_.schedule_after(latency(), [this, &c, d] {
      c.host_core->submit(per_msg(), [&c, d] { c.handler(d); });
    });
  });
}

}  // namespace pd::dpu
