#include "dpu/dpu.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "sim/profile.hpp"

namespace pd::dpu {

void SocDmaEngine::transfer(Bytes bytes, sim::EventFn done) {
  PD_CHECK(done, "DMA completion callback required");
  const auto op_ns =
      cost::kSocDmaBaseNs +
      static_cast<sim::Duration>(static_cast<double>(bytes) *
                                 cost::kSocDmaPerByteNs);
  const sim::TimePoint now = sched_.now();
  const sim::TimePoint begin = std::max(busy_until_, now);
  if (sim::BusyObserver* o = sim::busy_observer()) {
    o->on_busy(name_, sim::current_profile_frame(), op_ns);
    o->on_busy_interval(name_, sim::current_profile_frame(), now, begin, op_ns,
                        bytes);
  }
  busy_until_ = begin + op_ns;
  ++transfers_;
  bytes_moved_ += bytes;
  sched_.schedule_at(busy_until_, std::move(done));
}

sim::Duration SocDmaEngine::backlog() const {
  return std::max<sim::Duration>(0, busy_until_ - sched_.now());
}

Dpu::Dpu(sim::Scheduler& sched, NodeId node, std::size_t arm_cores,
         double core_speed)
    : node_(node),
      cores_(sched, "dpu" + std::to_string(node.value()) + "/arm", arm_cores,
             core_speed),
      dma_(sched) {
  dma_.set_name("node" + std::to_string(node.value()) + "/dma");
}

}  // namespace pd::dpu
