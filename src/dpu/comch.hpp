// DOCA Comch analog: the cross-processor descriptor channel between the
// DNE (server, on the DPU) and host functions (clients) — §3.5.4 / Fig. 9.
//
// Two variants, matching the paper's measurement:
//  - Comch-E: event-driven send/recv over blocking epoll. Higher latency,
//    no dedicated cores, scales with function density. Palladium's choice.
//  - Comch-P: producer/consumer rings with busy polling. Lowest latency,
//    but (a) burns one host core per client and (b) its progress engine
//    pays an epoll-derived per-endpoint cost on every dequeue, which
//    overloads the single DNE core beyond ~6 clients.
#pragma once

#include <functional>
#include <unordered_map>

#include "ipc/channel.hpp"
#include "proto/cost_model.hpp"

namespace pd::dpu {

enum class ComchVariant : std::uint8_t { kEvent, kPolling };

const char* to_string(ComchVariant v);

class ComchServer {
 public:
  /// `server_handler` runs on the DPU core whenever a client's descriptor
  /// reaches the DNE.
  using ServerHandler =
      std::function<void(FunctionId, const mem::BufferDescriptor&)>;

  ComchServer(sim::Scheduler& sched, sim::Core& dpu_core, ComchVariant variant,
              ServerHandler server_handler);

  /// Connect a host-side client. `host_handler` runs on `host_core` when
  /// the DNE sends a descriptor to this client. In kPolling mode the host
  /// core is dedicated to the ring (marked busy-poll).
  void connect(FunctionId client, sim::Core& host_core,
               ipc::DescriptorHandler host_handler);

  /// Tear down a client (the DNE can disconnect misbehaving tenants).
  void disconnect(FunctionId client);
  [[nodiscard]] bool connected(FunctionId client) const;
  [[nodiscard]] std::size_t num_clients() const { return clients_.size(); }

  /// Host function -> DNE. `charge_host=false` when the caller already
  /// accounted the enqueue cost on its own core (run-to-completion send).
  void send_to_server(FunctionId client, const mem::BufferDescriptor& d,
                      bool charge_host = true);
  /// DNE -> host function.
  void send_to_client(FunctionId client, const mem::BufferDescriptor& d);

  [[nodiscard]] ComchVariant variant() const { return variant_; }
  /// Host-side per-descriptor enqueue cost (for run-to-completion callers).
  [[nodiscard]] sim::Duration host_enqueue_cost() const { return per_msg(); }
  [[nodiscard]] std::uint64_t to_server_msgs() const { return to_server_; }
  [[nodiscard]] std::uint64_t to_client_msgs() const { return to_client_; }

 private:
  struct Client {
    sim::Core* host_core;
    ipc::DescriptorHandler handler;
  };

  [[nodiscard]] sim::Duration per_msg() const;
  [[nodiscard]] sim::Duration latency() const;
  /// Server-side dequeue cost: the Comch-P progress engine scans every
  /// registered endpoint through its internal epoll.
  [[nodiscard]] sim::Duration server_dequeue_cost() const;

  sim::Scheduler& sched_;
  sim::Core& dpu_core_;
  ComchVariant variant_;
  ServerHandler server_handler_;
  std::unordered_map<FunctionId, Client> clients_;
  std::uint64_t to_server_ = 0;
  std::uint64_t to_client_ = 0;
};

}  // namespace pd::dpu
