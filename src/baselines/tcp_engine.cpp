#include "baselines/tcp_engine.hpp"

#include <cstring>

#include "proto/cost_model.hpp"

namespace pd::baselines {
namespace {

/// Wire format between relay engines: 4-byte tenant id, then the message
/// (header + payload) verbatim.
std::string wire_encode(TenantId tenant, std::span<const std::byte> msg) {
  std::string out;
  out.resize(sizeof(std::uint32_t) + msg.size());
  const std::uint32_t t = tenant.value();
  std::memcpy(out.data(), &t, sizeof t);
  std::memcpy(out.data() + sizeof t, msg.data(), msg.size());
  return out;
}

}  // namespace

TcpRelayEngine::TcpRelayEngine(sim::Scheduler& sched, NodeId node,
                               sim::Core& engine_core,
                               mem::MemoryDomain& host_mem,
                               fabric::Switch& eth,
                               std::shared_ptr<TcpRelayDirectory> directory,
                               proto::StackKind stack, bool broker_local)
    : sched_(sched),
      node_(node),
      engine_core_(engine_core),
      host_mem_(host_mem),
      eth_(eth),
      directory_(std::move(directory)),
      stack_(stack),
      broker_local_(broker_local),
      sockmap_(sched) {
  PD_CHECK(directory_ != nullptr, "relay engine needs a directory");
  PD_CHECK(directory_->engines.emplace(node_, this).second,
           "node " << node_ << " already has a relay engine");
  sockmap_.register_socket(core::kEngineSocket, engine_core_,
                           [this](const mem::BufferDescriptor& d) {
                             on_ingest(d);
                           });
}

TcpRelayEngine::~TcpRelayEngine() { directory_->engines.erase(node_); }

mem::BufferPool& TcpRelayEngine::pool_of(const mem::BufferDescriptor& d) {
  return host_mem_.by_pool(d.pool).pool();
}

void TcpRelayEngine::add_tenant(TenantId, std::uint32_t) {
  // No RDMA resources to provision; tenant pools attach lazily.
}

void TcpRelayEngine::connect_peer(NodeId remote) {
  if (shared_conns_a_.find(remote) != shared_conns_a_.end() ||
      shared_conns_b_.find(remote) != shared_conns_b_.end()) {
    return;  // peer already linked (from either side)
  }
  auto it = directory_->engines.find(remote);
  PD_CHECK(it != directory_->engines.end(),
           "no relay engine on node " << remote);
  TcpRelayEngine& peer = *it->second;

  // Engine-to-engine relay sockets are long-lived and batched.
  proto::TcpEndpoint a;
  a.node = node_;
  a.stack = stack_ == proto::StackKind::kKernel
                ? proto::StackKind::kKernelPersistent
                : stack_;
  a.core = &engine_core_;
  a.on_message = [this](std::string_view bytes) { on_peer_bytes(bytes); };
  proto::TcpEndpoint b;
  b.node = remote;
  b.stack = peer.stack_ == proto::StackKind::kKernel
                ? proto::StackKind::kKernelPersistent
                : peer.stack_;
  b.core = &peer.engine_core_;
  b.on_message = [&peer](std::string_view bytes) { peer.on_peer_bytes(bytes); };

  auto conn = std::make_shared<proto::TcpConnection>(sched_, eth_, a, b);
  conn->connect(nullptr);
  // Both sides reference the same connection; A is this engine.
  shared_conns_a_[remote] = conn;
  peer.shared_conns_b_[node_] = conn;
}

void TcpRelayEngine::register_local_function(FunctionId fn, TenantId,
                                             sim::Core& host_core,
                                             ipc::DescriptorHandler deliver) {
  sockmap_.register_socket(fn, host_core, std::move(deliver));
}

sim::Duration TcpRelayEngine::ingest_cost() const { return cost::kSkMsgSendNs; }

void TcpRelayEngine::submit(FunctionId src, sim::Core& src_core,
                            const mem::BufferDescriptor& d, bool precharged) {
  pool_of(d).transfer(d, mem::actor_function(src), actor());
  sockmap_.send(core::kEngineSocket, d, precharged ? nullptr : &src_core);
}

void TcpRelayEngine::on_ingest(const mem::BufferDescriptor& d) {
  auto& pool = pool_of(d);
  const auto span = pool.access(d, actor());
  const core::MessageHeader h = core::read_header(span);

  if (broker_local_ && !routes_.has_route(h.dst())) {
    // NightCore dispatcher: local invocation brokered by the engine with
    // HTTP-based invocation framing.
    engine_core_.submit(cost::kDispatcherPerInvocationNs, [this, d,
                                                           dst = h.dst()] {
      pool_of(d).transfer(d, actor(), mem::actor_function(dst));
      sockmap_.send(dst, d, &engine_core_);
    });
    return;
  }
  const NodeId dest = routes_.lookup(h.dst());
  PD_CHECK(dest != node_, "relay ingest for a local destination");

  // Serialization: the payload is copied out of the shared-memory pool
  // into a socket buffer — the cost distributed zero-copy avoids.
  const std::uint32_t msg_len = core::message_bytes(h.payload_len);
  const auto copy_ns =
      cost::kCopyBaseNs + static_cast<sim::Duration>(
                              static_cast<double>(msg_len) *
                              cost::kKernelCopyPerByteNs);
  std::string bytes = wire_encode(d.tenant, span.subspan(0, msg_len));
  pool.release(d, actor());
  ++relayed_;

  engine_core_.submit(copy_ns, [this, dest, bytes = std::move(bytes)]() mutable {
    auto it_a = shared_conns_a_.find(dest);
    if (it_a != shared_conns_a_.end()) {
      it_a->second->send_a_to_b(std::move(bytes));
      return;
    }
    auto it_b = shared_conns_b_.find(dest);
    PD_CHECK(it_b != shared_conns_b_.end(), "no TCP path to node " << dest);
    it_b->second->send_b_to_a(std::move(bytes));
  });
}

void TcpRelayEngine::on_peer_bytes(std::string_view bytes) {
  PD_CHECK(bytes.size() > sizeof(std::uint32_t), "short relay frame");
  std::uint32_t t = 0;
  std::memcpy(&t, bytes.data(), sizeof t);
  const TenantId tenant{t};
  const std::string_view msg = bytes.substr(sizeof t);

  // Deserialization: copy from the socket buffer into a pool buffer.
  auto& pool = host_mem_.by_tenant(tenant).pool();
  auto d = pool.allocate(actor());
  PD_CHECK(d.has_value(), "tenant pool exhausted on relay receive");
  auto span = pool.access(*d, actor());
  PD_CHECK(msg.size() <= span.size(), "relay frame exceeds buffer");
  std::memcpy(span.data(), msg.data(), msg.size());
  const auto sized =
      pool.resize(*d, actor(), static_cast<std::uint32_t>(msg.size()));

  const core::MessageHeader h = core::read_header(span);
  const auto copy_ns =
      cost::kCopyBaseNs + static_cast<sim::Duration>(
                              static_cast<double>(msg.size()) *
                              cost::kKernelCopyPerByteNs);
  engine_core_.submit(copy_ns, [this, sized, dst = h.dst()] {
    pool_of(sized).transfer(sized, actor(), mem::actor_function(dst));
    sockmap_.send(dst, sized, &engine_core_);
  });
}

}  // namespace pd::baselines
