// FUYAO-style data plane (§2.2, §4.3 baseline): DPU-assisted coordination
// but *one-sided* RDMA writes for inter-node transfers, with a dedicated
// staging pool on each receiver and a receiver-side copy into the tenant
// pool (the Fig. 2 (2) design). The receiving engine busy-polls a host
// core for write arrivals — the always-100% CPU core Fig. 16 (4)-(6)
// charges against FUYAO.
//
// Slot flow control: the sender consumes a credit per in-flight slot and
// the receiver returns it once the staging slot is copied out. The credit
// return itself is modeled as free (FUYAO piggybacks credits; their cost
// is negligible next to the copy), which if anything flatters FUYAO.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "core/dataplane.hpp"
#include "core/message.hpp"
#include "ipc/skmsg.hpp"
#include "rdma/connection.hpp"

namespace pd::baselines {

class FuyaoEngine;

struct FuyaoDirectory {
  std::unordered_map<NodeId, FuyaoEngine*> engines;
};

class FuyaoEngine : public core::DataPlane {
 public:
  /// `staging_slots`: per-peer inbound slot count (credit window).
  FuyaoEngine(sim::Scheduler& sched, NodeId node, sim::Core& engine_core,
              mem::MemoryDomain& host_mem, rdma::Rnic& rnic,
              std::shared_ptr<FuyaoDirectory> directory,
              int staging_slots = 64);
  ~FuyaoEngine() override;

  void submit(FunctionId src, sim::Core& src_core,
              const mem::BufferDescriptor& d,
              bool precharged = false) override;
  [[nodiscard]] sim::Duration ingest_cost() const override;
  void register_local_function(FunctionId fn, TenantId tenant,
                               sim::Core& host_core,
                               ipc::DescriptorHandler deliver) override;
  core::InterNodeRoutingTable& routes() override { return routes_; }
  void add_tenant(TenantId tenant, std::uint32_t weight) override;
  void connect_peer(NodeId remote) override;
  [[nodiscard]] NodeId node() const override { return node_; }

  [[nodiscard]] sim::Core& core() { return engine_core_; }
  [[nodiscard]] std::uint64_t relayed() const { return relayed_; }

 private:
  struct PeerState {
    rdma::QueuePair* qp = nullptr;          // established + activated
    PoolId remote_staging{};                // peer's staging pool
    std::deque<std::uint32_t> free_slots;   // credits for peer's slots
    std::deque<mem::BufferDescriptor> backlog;  // waiting for credits
  };

  void on_ingest(const mem::BufferDescriptor& d);
  void try_drain(NodeId peer);
  void post_write(PeerState& peer, const mem::BufferDescriptor& d);
  void on_write_arrival(const mem::BufferDescriptor& slot, std::uint32_t len);
  void return_credit(NodeId to_peer, std::uint32_t slot);
  void on_cq_event();
  mem::BufferPool& pool_of(const mem::BufferDescriptor& d);
  [[nodiscard]] mem::Actor actor() const { return mem::actor_engine(node_); }

  sim::Scheduler& sched_;
  NodeId node_;
  sim::Core& engine_core_;
  mem::MemoryDomain& host_mem_;
  rdma::Rnic& rnic_;
  std::shared_ptr<FuyaoDirectory> directory_;
  int staging_slots_;
  core::InterNodeRoutingTable routes_;
  ipc::SockMap sockmap_;
  mem::TenantMemory* staging_ = nullptr;  // my inbound staging pool
  std::unordered_map<FunctionId, TenantId> fn_tenant_;
  std::unordered_map<NodeId, PeerState> peers_;
  /// staging slot index -> node that writes into it (for credit returns).
  std::unordered_map<std::uint32_t, NodeId> slot_owner_;
  std::uint64_t relayed_ = 0;
};

}  // namespace pd::baselines
