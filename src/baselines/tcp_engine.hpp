// SPRIGHT-style data plane (§2.2, §4.3 baseline): intra-node shared memory
// (SK_MSG) exactly like Palladium, but inter-node transfers ride the
// kernel TCP/IP stack through a CPU-resident relay engine. Crossing nodes
// therefore costs serialization (copy out of the pool), kernel protocol
// processing on both sides, and a deserializing copy back into the remote
// tenant pool — the overheads Table 1 attributes to non-distributed
// zero-copy designs. NightCore shares this engine for completeness but is
// deployed single-node in the evaluation (its published form has no
// inter-node path).
#pragma once

#include <memory>
#include <unordered_map>

#include "core/dataplane.hpp"
#include "core/message.hpp"
#include "fabric/fabric.hpp"
#include "ipc/skmsg.hpp"
#include "mem/memory_domain.hpp"
#include "proto/tcp.hpp"

namespace pd::baselines {

class TcpRelayEngine;

/// Shared per-cluster directory so engines can find their peers (stands in
/// for the control plane's service discovery).
struct TcpRelayDirectory {
  std::unordered_map<NodeId, TcpRelayEngine*> engines;
};

class TcpRelayEngine : public core::DataPlane {
 public:
  /// `broker_local`: NightCore mode — the engine also brokers intra-node
  /// invocations (every hop passes through the dispatcher) instead of
  /// letting functions exchange descriptors directly.
  TcpRelayEngine(sim::Scheduler& sched, NodeId node, sim::Core& engine_core,
                 mem::MemoryDomain& host_mem, fabric::Switch& eth,
                 std::shared_ptr<TcpRelayDirectory> directory,
                 proto::StackKind stack = proto::StackKind::kKernel,
                 bool broker_local = false);
  [[nodiscard]] bool brokers_local() const { return broker_local_; }
  ~TcpRelayEngine() override;

  void submit(FunctionId src, sim::Core& src_core,
              const mem::BufferDescriptor& d,
              bool precharged = false) override;
  [[nodiscard]] sim::Duration ingest_cost() const override;
  void register_local_function(FunctionId fn, TenantId tenant,
                               sim::Core& host_core,
                               ipc::DescriptorHandler deliver) override;
  core::InterNodeRoutingTable& routes() override { return routes_; }
  void add_tenant(TenantId tenant, std::uint32_t weight) override;
  void connect_peer(NodeId remote) override;
  [[nodiscard]] NodeId node() const override { return node_; }

  [[nodiscard]] sim::Core& core() { return engine_core_; }
  [[nodiscard]] std::uint64_t relayed() const { return relayed_; }

 private:
  void on_ingest(const mem::BufferDescriptor& d);
  void on_peer_bytes(std::string_view bytes);
  mem::BufferPool& pool_of(const mem::BufferDescriptor& d);
  [[nodiscard]] mem::Actor actor() const { return mem::actor_engine(node_); }

  sim::Scheduler& sched_;
  NodeId node_;
  sim::Core& engine_core_;
  mem::MemoryDomain& host_mem_;
  fabric::Switch& eth_;
  std::shared_ptr<TcpRelayDirectory> directory_;
  proto::StackKind stack_;
  bool broker_local_;
  core::InterNodeRoutingTable routes_;
  ipc::SockMap sockmap_;
  /// One established TCP connection per peer node (engine-to-engine),
  /// shared with the peer. This engine is endpoint A in conns it created
  /// and endpoint B in conns its peers created.
  std::unordered_map<NodeId, std::shared_ptr<proto::TcpConnection>>
      shared_conns_a_;
  std::unordered_map<NodeId, std::shared_ptr<proto::TcpConnection>>
      shared_conns_b_;
  std::uint64_t relayed_ = 0;
};

}  // namespace pd::baselines
