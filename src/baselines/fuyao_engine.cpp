#include "baselines/fuyao_engine.hpp"

#include <cstring>

#include "proto/cost_model.hpp"

namespace pd::baselines {
namespace {

/// Infra tenant owning the staging pool and the engine's QPs.
TenantId staging_tenant(NodeId node) { return TenantId{0xFFF00000u | node.value()}; }

constexpr std::size_t kStagingPoolBuffers = 1024;
constexpr Bytes kStagingBufferBytes = 16 * 1024;
constexpr std::uint64_t kWriteIdBase = 1'000'000'000ULL;

}  // namespace

FuyaoEngine::FuyaoEngine(sim::Scheduler& sched, NodeId node,
                         sim::Core& engine_core, mem::MemoryDomain& host_mem,
                         rdma::Rnic& rnic,
                         std::shared_ptr<FuyaoDirectory> directory,
                         int staging_slots)
    : sched_(sched),
      node_(node),
      engine_core_(engine_core),
      host_mem_(host_mem),
      rnic_(rnic),
      directory_(std::move(directory)),
      staging_slots_(staging_slots),
      sockmap_(sched) {
  PD_CHECK(directory_ != nullptr, "FUYAO engine needs a directory");
  PD_CHECK(staging_slots_ > 0, "need at least one staging slot");
  PD_CHECK(directory_->engines.emplace(node_, this).second,
           "node " << node_ << " already has a FUYAO engine");

  staging_ = &host_mem_.create_tenant_pool(
      staging_tenant(node_), "fuyao_staging_" + std::to_string(node_.value()),
      kStagingPoolBuffers, kStagingBufferBytes);
  staging_->export_to_rdma();
  rnic_.register_memory(staging_->pool_id());
  rnic_.set_write_monitor(staging_->pool_id(),
                          [this](const mem::BufferDescriptor& slot,
                                 std::uint32_t len) {
                            on_write_arrival(slot, len);
                          });
  rnic_.cq().set_notify([this] { on_cq_event(); });

  sockmap_.register_socket(core::kEngineSocket, engine_core_,
                           [this](const mem::BufferDescriptor& d) {
                             on_ingest(d);
                           });
  // FUYAO's receiver continuously polls for one-sided write arrivals: the
  // engine core is pinned and 100% occupied (§4.3.1).
  engine_core_.set_busy_poll(true);
}

FuyaoEngine::~FuyaoEngine() { directory_->engines.erase(node_); }

mem::BufferPool& FuyaoEngine::pool_of(const mem::BufferDescriptor& d) {
  return host_mem_.by_pool(d.pool).pool();
}

void FuyaoEngine::add_tenant(TenantId tenant, std::uint32_t) {
  auto& tm = host_mem_.by_tenant(tenant);
  PD_CHECK(tm.exported_to_rdma(), "tenant pool lacks RDMA export grant");
  rnic_.register_memory(tm.pool_id());
}

void FuyaoEngine::connect_peer(NodeId remote) {
  if (peers_.find(remote) != peers_.end()) return;
  auto it = directory_->engines.find(remote);
  PD_CHECK(it != directory_->engines.end(), "no FUYAO engine on node " << remote);
  FuyaoEngine& peer = *it->second;

  // One RC QP per direction, kept active (FUYAO engines are trusted infra).
  rdma::QueuePair& here = rnic_.create_qp(staging_tenant(node_));
  rdma::QueuePair& there = peer.rnic_.create_qp(staging_tenant(remote));
  rdma::connect_qps(here, there, [&here, &there, this, remote, &peer] {
    here.activate([this, remote] { try_drain(remote); });
    there.activate([&peer, self = node_] { peer.try_drain(self); });
  });

  PeerState mine;
  mine.qp = &here;
  mine.remote_staging = peer.staging_->pool_id();
  PeerState theirs;
  theirs.qp = &there;
  theirs.remote_staging = staging_->pool_id();

  // Carve my inbound slots for this peer and hand the indices over as the
  // peer's initial credit window (and vice versa).
  for (int i = 0; i < staging_slots_; ++i) {
    auto slot = staging_->pool().allocate(mem::actor_rnic(node_));
    PD_CHECK(slot.has_value(), "staging pool exhausted while carving slots");
    slot_owner_[slot->index] = remote;
    mine.qp = &here;
    theirs.free_slots.push_back(slot->index);

    auto peer_slot = peer.staging_->pool().allocate(mem::actor_rnic(remote));
    PD_CHECK(peer_slot.has_value(), "peer staging pool exhausted");
    peer.slot_owner_[peer_slot->index] = node_;
    mine.free_slots.push_back(peer_slot->index);
  }

  peers_.emplace(remote, std::move(mine));
  peer.peers_.emplace(node_, std::move(theirs));
}

void FuyaoEngine::register_local_function(FunctionId fn, TenantId tenant,
                                          sim::Core& host_core,
                                          ipc::DescriptorHandler deliver) {
  fn_tenant_[fn] = tenant;
  sockmap_.register_socket(fn, host_core, std::move(deliver));
}

sim::Duration FuyaoEngine::ingest_cost() const { return cost::kSkMsgSendNs; }

void FuyaoEngine::submit(FunctionId src, sim::Core& src_core,
                         const mem::BufferDescriptor& d, bool precharged) {
  pool_of(d).transfer(d, mem::actor_function(src), actor());
  sockmap_.send(core::kEngineSocket, d, precharged ? nullptr : &src_core);
}

void FuyaoEngine::on_ingest(const mem::BufferDescriptor& d) {
  const core::MessageHeader h = core::read_header(pool_of(d).access(d, actor()));
  const NodeId dest = routes_.lookup(h.dst());
  PD_CHECK(dest != node_, "FUYAO ingest for a local destination");
  auto it = peers_.find(dest);
  PD_CHECK(it != peers_.end(), "peer " << dest << " not connected");
  it->second.backlog.push_back(d);
  try_drain(dest);
}

void FuyaoEngine::try_drain(NodeId peer_node) {
  auto it = peers_.find(peer_node);
  if (it == peers_.end()) return;
  PeerState& peer = it->second;
  while (!peer.backlog.empty() && !peer.free_slots.empty() &&
         peer.qp->state() == rdma::QpState::kActive) {
    const mem::BufferDescriptor d = peer.backlog.front();
    peer.backlog.pop_front();
    post_write(peer, d);
  }
}

void FuyaoEngine::post_write(PeerState& peer, const mem::BufferDescriptor& d) {
  const std::uint32_t slot = peer.free_slots.front();
  peer.free_slots.pop_front();
  ++relayed_;

  engine_core_.submit(cost::kDneSchedNs + cost::kDneTxStageNs,
                      [this, &peer, d, slot] {
                        pool_of(d).transfer(d, actor(), mem::actor_rnic(node_));
                        rdma::WorkRequest wr;
                        wr.wr_id = kWriteIdBase + d.index;
                        wr.opcode = rdma::Opcode::kWrite;
                        wr.local = d;
                        wr.remote_pool = peer.remote_staging;
                        wr.remote_index = slot;
                        peer.qp->post_send(wr);
                      });
}

void FuyaoEngine::on_cq_event() {
  // Only write completions arrive here: recycle source buffers.
  for (const auto& c : rnic_.cq().poll(16)) {
    PD_CHECK(!c.is_recv && c.opcode == rdma::Opcode::kWrite,
             "unexpected completion in FUYAO engine");
    pool_of(c.buffer).transfer(c.buffer, mem::actor_rnic(node_), actor());
    pool_of(c.buffer).release(c.buffer, actor());
  }
}

void FuyaoEngine::on_write_arrival(const mem::BufferDescriptor& slot,
                                   std::uint32_t len) {
  // Busy-polling receiver: detection at the next poll tick, then the
  // receiver-side copy into the destination tenant's pool.
  sched_.schedule_after(cost::kOneSidedPollIntervalNs / 2, [this, slot, len] {
    const auto copy_ns =
        cost::kOneSidedPollWorkNs + cost::kCopyBaseNs +
        static_cast<sim::Duration>(static_cast<double>(len) *
                                   cost::kCopyColdPerByteNs);
    engine_core_.submit(copy_ns, [this, slot, len] {
      auto& spool = staging_->pool();
      spool.transfer(slot, mem::actor_rnic(node_), actor());
      const core::MessageHeader h = core::read_header(spool.access(slot, actor()));

      const auto ft = fn_tenant_.find(h.dst());
      PD_CHECK(ft != fn_tenant_.end(),
               "FUYAO arrival for unknown function " << h.dst());
      auto& tpool = host_mem_.by_tenant(ft->second).pool();
      auto d = tpool.allocate(actor());
      PD_CHECK(d.has_value(), "tenant pool exhausted on FUYAO receive");
      auto dst_span = tpool.access(*d, actor());
      auto src_span = spool.access(slot, actor());
      PD_CHECK(len <= dst_span.size(), "FUYAO frame exceeds tenant buffer");
      std::memcpy(dst_span.data(), src_span.data(), len);
      const auto sized = tpool.resize(*d, actor(), len);

      // Slot drained: hand it back to the RNIC and return the credit.
      spool.transfer(slot, actor(), mem::actor_rnic(node_));
      const auto owner = slot_owner_.find(slot.index);
      PD_CHECK(owner != slot_owner_.end(), "arrival in uncarved slot");
      return_credit(owner->second, slot.index);

      tpool.transfer(sized, actor(), mem::actor_function(h.dst()));
      sockmap_.send(h.dst(), sized, &engine_core_);
    });
  });
}

void FuyaoEngine::return_credit(NodeId to_peer, std::uint32_t slot) {
  auto it = directory_->engines.find(to_peer);
  PD_CHECK(it != directory_->engines.end(), "credit to unknown peer");
  FuyaoEngine& peer = *it->second;
  auto ps = peer.peers_.find(node_);
  PD_CHECK(ps != peer.peers_.end(), "credit for unlinked peer");
  ps->second.free_slots.push_back(slot);
  peer.try_drain(node_);
}

}  // namespace pd::baselines
