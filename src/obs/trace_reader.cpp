#include "obs/trace_reader.hpp"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>

#include "common/check.hpp"

namespace pd::obs {
namespace {

/// Minimal recursive-descent JSON scanner over the exporter's output.
class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    skip_ws();
    PD_CHECK(pos_ < s_.size(), "unexpected end of trace JSON");
    return s_[pos_];
  }

  void expect(char c) {
    PD_CHECK(peek() == c, "expected '" << c << "' at offset " << pos_);
    ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      PD_CHECK(pos_ < s_.size(), "unterminated string in trace JSON");
      char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        PD_CHECK(pos_ < s_.size(), "dangling escape in trace JSON");
        char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: out += e;  // \" \\ \/ fall through correctly
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double parse_number() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    PD_CHECK(pos_ > start, "expected number at offset " << start);
    return std::stod(s_.substr(start, pos_ - start));
  }

  /// Parse one flat-ish object into string and number maps. Nested objects
  /// ("args") are flattened with a "args." key prefix.
  void parse_object(std::map<std::string, std::string>& strings,
                    std::map<std::string, double>& numbers,
                    const std::string& prefix = {}) {
    expect('{');
    if (consume('}')) return;
    while (true) {
      std::string key = prefix + parse_string();
      expect(':');
      char c = peek();
      if (c == '"') {
        strings[key] = parse_string();
      } else if (c == '{') {
        parse_object(strings, numbers, key + ".");
      } else {
        numbers[key] = parse_number();
      }
      if (consume('}')) break;
      expect(',');
    }
  }

  std::size_t pos_ = 0;
  const std::string& s_;
};

std::int64_t round_ns(double us) {
  return static_cast<std::int64_t>(std::llround(us * 1e3));
}

}  // namespace

std::vector<ReadSpan> read_chrome_trace(const std::string& json) {
  Parser p(json);
  p.expect('{');
  // Scan top-level keys until "traceEvents".
  while (true) {
    std::string key = p.parse_string();
    p.expect(':');
    if (key == "traceEvents") break;
    char c = p.peek();
    if (c == '"') {
      p.parse_string();
    } else {
      p.parse_number();
    }
    p.expect(',');
  }

  std::map<int, std::string> tid_names;
  std::vector<ReadSpan> spans;
  p.expect('[');
  if (!p.consume(']')) {
    while (true) {
      std::map<std::string, std::string> strings;
      std::map<std::string, double> numbers;
      p.parse_object(strings, numbers);
      const std::string& ph = strings["ph"];
      int tid = static_cast<int>(numbers["tid"]);
      if (ph == "M" && strings["name"] == "thread_name") {
        tid_names[tid] = strings["args.name"];
      } else if (ph == "X") {
        ReadSpan s;
        s.name = strings["name"];
        auto it = tid_names.find(tid);
        s.track = it != tid_names.end() ? it->second : std::to_string(tid);
        s.begin_ns = round_ns(numbers["ts"]);
        s.dur_ns = round_ns(numbers["dur"]);
        s.trace_id = static_cast<std::uint64_t>(numbers["args.trace_id"]);
        s.span_id = static_cast<std::uint32_t>(numbers["args.span_id"]);
        s.parent_id = static_cast<std::uint32_t>(numbers["args.parent_id"]);
        spans.push_back(std::move(s));
      }
      if (p.consume(']')) break;
      p.expect(',');
    }
  }
  return spans;
}

std::vector<ReadSpan> read_chrome_trace_file(const std::string& path) {
  std::ifstream f(path);
  PD_CHECK(f.good(), "cannot open " << path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return read_chrome_trace(ss.str());
}

}  // namespace pd::obs
