// Distributed tracing in simulated time (ISSUE 1 tentpole, half 1).
//
// A request carries a TraceContext (trace id + current span id) inside its
// MessageHeader, so the context crosses every boundary the payload crosses:
// Comch rings, the RDMA wire, SoC-DMA staging copies. Each hop runs the same
// baton protocol -- end the span named by header.cur_span, begin its own span,
// and write the new id back into the in-buffer header -- so no component
// needs a side-table keyed by request. All hop spans parent to the root
// "request" span; the terminal consumer (load driver or ingress response
// handler) ends both the current hop and the root.
//
// Spans record simulated nanoseconds only. The tracer never schedules events
// or charges cores, so an attached tracer cannot perturb simulation results:
// two runs with and without tracing produce identical timings and counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pd::obs {

class Registry;

/// The 16 bytes of tracing state carried in core::MessageHeader. trace_id 0
/// means "not sampled"; every instrumentation site checks that first.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t root_span = 0;
  std::uint32_t cur_span = 0;

  [[nodiscard]] bool sampled() const { return trace_id != 0; }
};

/// One closed (or still-open) span. Offsets are simulated TimePoints in ns;
/// end_ns < 0 marks a span that was never closed (visible in the export as
/// dur 0 -- a bug in the instrumentation, not in the traced code).
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;  // 0 = root
  std::string name;             // "request", "ingress", "fabric", "fn:echo"...
  std::string track;            // display row, e.g. "node1/dne", "node0/rnic"
  sim::TimePoint begin_ns = 0;
  sim::TimePoint end_ns = -1;

  [[nodiscard]] bool closed() const { return end_ns >= 0; }
  [[nodiscard]] sim::Duration duration() const {
    return closed() ? end_ns - begin_ns : 0;
  }
};

/// Collects spans and exports them as Chrome trace-event JSON (loadable in
/// Perfetto / chrome://tracing). Single-threaded, like the simulation.
class Tracer {
 public:
  /// When `registry` is non-null, every closed span additionally records its
  /// duration into the histogram `hop.<name>` -- per-hop latency metrics fall
  /// out of tracing for free.
  explicit Tracer(Registry* registry = nullptr) : registry_(registry) {}

  /// Sample every Nth trace (1 = all, default). 0 disables sampling entirely.
  void set_sample_every(std::uint64_t n) { sample_every_ = n; }

  /// Sharded simulation support: tag this tracer's ids with shard `k` so
  /// span/trace ids stay globally unique without cross-shard coordination
  /// (span ids start at k<<28, trace ids at k<<56). Also enables
  /// foreign-end collection: end_span on an id this tracer never opened
  /// (a span begun on another shard) is remembered instead of ignored, and
  /// resolved after the shard tracers are merged.
  void set_shard(std::uint32_t k);

  /// Append `other`'s spans and foreign ends to this tracer and clear them
  /// from `other`. Call in fixed shard order for a deterministic merge.
  void absorb(Tracer& other);

  /// Close spans whose end was observed on a different shard (collected via
  /// set_shard + absorb). Ids are globally unique, so each foreign end
  /// matches at most one span; per-hop histograms are recorded as usual.
  void resolve_foreign_ends();

  /// Begin a new trace: allocates a trace id (or drops the request per the
  /// sampling rate, returning an unsampled context) and opens the root
  /// "request" span on `track`.
  TraceContext start_trace(std::string_view track, sim::TimePoint now);

  /// Open a span under `parent` (use ctx.root_span to parent hop spans to
  /// the request). Returns the new span id to store into ctx.cur_span.
  std::uint32_t begin_span(std::uint64_t trace_id, std::uint32_t parent,
                           std::string_view name, std::string_view track,
                           sim::TimePoint now);

  /// Close a previously begun span. Unknown ids are ignored (a baseline
  /// system may consume a message whose producer was instrumented).
  void end_span(std::uint32_t span_id, sim::TimePoint now);

  [[nodiscard]] const std::vector<SpanRecord>& spans() const { return spans_; }
  [[nodiscard]] std::size_t open_spans() const;

  /// Chrome trace-event JSON: one ph:"X" slice per closed span (ts/dur in
  /// microseconds as the format requires), plus ph:"M" thread_name metadata
  /// so Perfetto labels each track. Deterministic: spans appear in begin
  /// order, tracks are numbered in first-appearance order.
  [[nodiscard]] std::string to_chrome_json() const;
  void write_chrome_json(const std::string& path) const;

  void reset();

 private:
  struct ForeignEnd {
    std::uint32_t span_id = 0;
    sim::TimePoint end_ns = 0;
  };

  Registry* registry_;
  std::uint64_t sample_every_ = 1;
  std::uint64_t traces_started_ = 0;
  std::uint64_t next_trace_id_ = 1;
  std::uint32_t next_span_id_ = 1;
  bool collect_foreign_ends_ = false;
  std::vector<SpanRecord> spans_;
  std::vector<ForeignEnd> foreign_ends_;
};

}  // namespace pd::obs
