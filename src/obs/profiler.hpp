// Simulated-time exact profiler (ISSUE 5 tentpole, part 2).
//
// Implements sim::BusyObserver: every busy interval a sim::Core (or SoC-DMA
// engine) charges is folded into a (resource; component; tenant; detail)
// stack keyed map. There is no sampling — the profile IS the busy-time
// accounting, so the collapsed-stack export sums exactly to the cores'
// busy_ns() once the run drains, and two identical runs produce
// byte-identical profiles. Consumable by standard flamegraph tooling
// (flamegraph.pl / speedscope / inferno take "a;b;c <count>" lines).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "sim/profile.hpp"

namespace pd::obs {

class Registry;

class Profiler : public sim::BusyObserver {
 public:
  void on_busy(std::string_view resource, const sim::ProfileFrame& frame,
               sim::Duration scaled_ns) override;

  [[nodiscard]] bool empty() const { return folded_.empty(); }
  /// Total busy ns recorded across every resource.
  [[nodiscard]] std::uint64_t total_ns() const { return total_ns_; }
  /// Busy ns recorded against one resource (exact core name).
  [[nodiscard]] std::uint64_t resource_ns(std::string_view resource) const;
  /// Busy ns summed over resources whose name starts with `prefix`
  /// (e.g. "node1/cpu/" covers a whole CoreSet).
  [[nodiscard]] std::uint64_t resource_prefix_ns(std::string_view prefix) const;

  /// Folded stacks: key "resource;component;tenant:T;detail" -> busy ns.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& folded() const {
    return folded_;
  }

  /// Collapsed-stack file contents, one "stack count" line per frame in
  /// lexicographic key order (deterministic).
  [[nodiscard]] std::string to_collapsed() const;
  void write_collapsed(const std::string& path) const;

  /// Folded summary into the metrics registry: busy ns per (component,
  /// tenant) as `profile.busy_ns{component=...,tenant=...}` counters plus
  /// the `profile.total_busy_ns` rollup.
  void export_folded(Registry& reg) const;

  /// Fold `other` into this profiler and clear it (deterministic shard
  /// merge: call in fixed shard order).
  void absorb(Profiler& other);

  void reset();

 private:
  std::map<std::string, std::uint64_t> folded_;
  std::map<std::string, std::uint64_t> by_resource_;
  std::uint64_t total_ns_ = 0;
};

/// RAII installer for single-scheduler runs; restores the previous global
/// observer on destruction. Parallel clusters install per-shard profilers
/// through Cluster::enable_shard_profiling instead.
class ProfileSession {
 public:
  explicit ProfileSession(Profiler& p)
      : prev_(sim::install_busy_observer(&p)) {}
  ~ProfileSession() { sim::install_busy_observer(prev_); }
  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

 private:
  sim::BusyObserver* prev_;
};

}  // namespace pd::obs
