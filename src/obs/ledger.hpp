// Per-tenant resource-accounting ledger and cross-tenant interference
// attribution (ISSUE 10 tentpole).
//
// The ledger attributes every occupancy interval on every shared resource
// — core busy-ns, NIC serialization-ns, SoC DMA bytes, fabric link byte-ns
// (including the oversubscribed spine uplinks), buffer-pool slot-ns, and
// DWRR queue wait — to the owning tenant, with *exact conservation*: the
// per-tenant sums equal the measured totals with zero residual, the same
// discipline as critpath's exact-sum rule. Core and DMA intervals arrive
// through the BusyObserver channel (on_busy_interval); the NIC, fabric,
// queue, and pool sites call the primitives directly.
//
// On top of the occupancy timelines the ledger computes a cross-tenant
// interference matrix: for each wait interval a tenant's message spends
// queued at a shared resource, the blame is charged to the tenant(s) whose
// occupancy segments overlap the wait window — "tenant A imposed X ns of
// queueing on tenant B at resource R". Overlap is taken in event order and
// capped at the wait's length; any uncovered remainder is self-blamed, so
// for every (resource, victim) the blame row sums *exactly* to the
// measured wait. All state is integer nanoseconds and merged in sorted-key
// order, so reports are byte-identical across --threads 1/2/4.
//
// Like the profiler, the ledger only records — it never schedules events —
// so enabling it can never perturb simulation results. It chains to a
// `next` BusyObserver (the profiler) so both fold the same charge stream.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/profile.hpp"
#include "sim/time.hpp"

namespace pd::obs {

class Registry;

/// Resource classes the ledger accounts. Values index kind-rollup tables
/// and name the `kind=` label of the ledger.* metrics.
enum class LedgerKind : std::uint8_t {
  kCore,    ///< CPU / DPU-Arm / engine cores (busy + queue wait)
  kDma,     ///< SoC DMA engine (busy + wait + bytes staged)
  kNic,     ///< RNIC WR/CQE serialization
  kLink,    ///< fabric edge links, tx + rx (serialization + wait + bytes)
  kUplink,  ///< oversubscribed leaf->spine uplinks (serialization + bytes)
  kPool,    ///< buffer-pool slot occupancy (slot-ns, bytes = footprint)
  kQueue,   ///< engine DWRR/FCFS scheduler queues (wait + service)
};

[[nodiscard]] const char* to_string(LedgerKind kind);
inline constexpr std::size_t kLedgerKinds = 7;

class Ledger final : public sim::BusyObserver {
 public:
  struct Totals {
    std::uint64_t busy_ns = 0;
    std::uint64_t wait_ns = 0;
    std::uint64_t bytes = 0;
  };

  /// One aggregated interference-matrix row: `aggressor` imposed `ns` of
  /// queueing on `victim` at resources of class `kind`.
  struct BlameRow {
    LedgerKind kind;
    std::int64_t aggressor;
    std::int64_t victim;
    std::uint64_t ns;
  };

  Ledger() = default;
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  /// Recording gate: every primitive is a no-op while disabled, so the
  /// hook sites cost one predicted branch in non-ledger runs.
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Chain to the next BusyObserver (the profiler): on_busy forwards so a
  /// single installed observer feeds both, and conservation tests can
  /// compare ledger core sums against profile.busy_ns from the same
  /// charge stream.
  void set_next(sim::BusyObserver* next) { next_ = next; }

  // --- BusyObserver ---------------------------------------------------------
  void on_busy(std::string_view resource, const sim::ProfileFrame& frame,
               sim::Duration scaled_ns) override;
  void on_busy_interval(std::string_view resource,
                        const sim::ProfileFrame& frame,
                        sim::TimePoint submitted, sim::TimePoint begin,
                        sim::Duration scaled_ns, std::uint64_t bytes) override;

  // --- recording primitives -------------------------------------------------

  /// `tenant` occupies `resource` during [begin, end): charges busy-ns and
  /// appends an occupancy segment to the resource's timeline (the evidence
  /// later wait intervals are blamed against). Tenant -1 is the unscoped
  /// "system" bucket. `ref_now` is the simulation time of the recording
  /// event — the earliest origin any future wait at this resource can have,
  /// which is what bounds the timeline's memory; the two-argument form uses
  /// `begin`, correct whenever the occupancy starts at the current event.
  void occupy(LedgerKind kind, std::string_view resource, std::int64_t tenant,
              sim::TimePoint begin, sim::TimePoint end, sim::TimePoint ref_now);
  void occupy(LedgerKind kind, std::string_view resource, std::int64_t tenant,
              sim::TimePoint begin, sim::TimePoint end) {
    occupy(kind, resource, tenant, begin, end, begin);
  }

  /// Byte-denominated charge (DMA bytes staged, link wire bytes).
  void add_bytes(LedgerKind kind, std::string_view resource,
                 std::int64_t tenant, std::uint64_t bytes);

  /// A message of `tenant` waited at `resource` during [begin, end). The
  /// wait is charged to the tenant, and blame is distributed over the
  /// occupancy segments overlapping the window, earliest first, capped at
  /// the wait's length; the uncovered remainder is self-blamed. Exact:
  /// sum_over_aggressors(blame) == end - begin, always.
  void wait(LedgerKind kind, std::string_view resource, std::int64_t tenant,
            sim::TimePoint begin, sim::TimePoint end);

  /// FIFO wait bracketing for scheduler queues, where dequeue order across
  /// tenants is not arrival order: enter at enqueue, exit at dequeue (or
  /// teardown drain). Exit pops the tenant's oldest open entry and charges
  /// the wait; exits without a matching entry (ledger enabled mid-run) are
  /// ignored.
  void queue_enter(LedgerKind kind, std::string_view resource,
                   std::int64_t tenant, sim::TimePoint now);
  void queue_exit(LedgerKind kind, std::string_view resource,
                  std::int64_t tenant, sim::TimePoint now);

  /// Buffer-pool slot occupancy, pre-integrated by the pool (slot-ns =
  /// integral of in-use slots over time). `bytes` carries the pool's
  /// byte-seconds numerator (slot-ns * buf_size collapses overflow; we
  /// record the pool footprint once instead).
  void add_slot_ns(std::string_view resource, std::int64_t tenant,
                   std::uint64_t slot_ns, std::uint64_t footprint_bytes);

  // --- queries --------------------------------------------------------------

  [[nodiscard]] Totals totals() const;
  [[nodiscard]] Totals totals(LedgerKind kind) const;
  [[nodiscard]] std::uint64_t busy_ns(LedgerKind kind,
                                      std::int64_t tenant) const;
  [[nodiscard]] std::uint64_t wait_ns(LedgerKind kind,
                                      std::int64_t tenant) const;
  [[nodiscard]] std::uint64_t bytes(LedgerKind kind, std::int64_t tenant) const;

  /// Total ns of queueing `aggressor` imposed on `victim`, over all
  /// resources (self-blame included when aggressor == victim).
  [[nodiscard]] std::uint64_t blame_ns(std::int64_t aggressor,
                                       std::int64_t victim) const;

  /// Interference matrix aggregated per (kind, aggressor, victim), sorted
  /// by descending ns (ties by keys) — the before/after tables.
  [[nodiscard]] std::vector<BlameRow> blame_rows() const;

  /// The tenant that imposed the most queueing on `victim`, excluding the
  /// victim itself and the unscoped -1 bucket; -1 when nobody did. This is
  /// the signal the blame-driven shedding policy targets.
  [[nodiscard]] std::int64_t top_aggressor(std::int64_t victim) const;

  [[nodiscard]] bool empty() const { return cells_.empty() && blame_.empty(); }

  // --- export ---------------------------------------------------------------

  /// ledger.* rollup counters: busy/wait/bytes per (kind, tenant) and
  /// blame per (aggressor, victim).
  void export_metrics(Registry& registry) const;

  /// Deterministic reports: integer-only JSON (totals, per-kind-tenant
  /// rollups, per-resource cells, the full blame matrix) and a flat CSV.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  /// Human-readable blame table (top `max_rows` cross-tenant rows).
  [[nodiscard]] std::string table(std::size_t max_rows = 12) const;

  /// Merge another shard's totals into this ledger (sorted-key maps, so
  /// the result is independent of merge order arity). Live timeline state
  /// is not merged: shards only absorb after their run drained.
  void absorb(const Ledger& other);

  void reset();

 private:
  struct CellKey {
    std::uint8_t kind;
    std::string resource;
    std::int64_t tenant;
    bool operator<(const CellKey& o) const {
      if (kind != o.kind) return kind < o.kind;
      if (resource != o.resource) return resource < o.resource;
      return tenant < o.tenant;
    }
  };
  struct BlameKey {
    std::uint8_t kind;
    std::string resource;
    std::int64_t aggressor;
    std::int64_t victim;
    bool operator<(const BlameKey& o) const {
      if (kind != o.kind) return kind < o.kind;
      if (resource != o.resource) return resource < o.resource;
      if (aggressor != o.aggressor) return aggressor < o.aggressor;
      return victim < o.victim;
    }
  };
  struct Segment {
    sim::TimePoint begin;
    sim::TimePoint end;
    std::int64_t tenant;
  };
  /// Transient per-resource evidence: the occupancy timeline waits are
  /// blamed against, plus the open FIFO queue entries. Pruned as the
  /// resource's event clock advances, so memory stays bounded by the
  /// backlog window.
  struct Live {
    std::deque<Segment> segments;
    std::map<std::int64_t, std::deque<sim::TimePoint>> open;
    sim::TimePoint clock = 0;  ///< latest wait-origin seen at this resource
  };

  Totals& cell(LedgerKind kind, std::string_view resource,
               std::int64_t tenant);
  Live& live(LedgerKind kind, std::string_view resource);
  void prune(Live& lv);

  bool enabled_ = false;
  sim::BusyObserver* next_ = nullptr;
  std::map<CellKey, Totals> cells_;
  std::map<BlameKey, std::uint64_t> blame_;
  std::map<std::pair<std::uint8_t, std::string>, Live> live_;
};

/// RAII enable + install for serial (non-sharded) runs: enables the
/// ledger, chains it in front of the previously installed busy observer
/// (usually the profiler), and restores everything on destruction.
/// Parallel runs use Cluster::enable_ledger(), which installs each
/// shard's ledger through the shard enter/leave hooks instead.
class LedgerSession {
 public:
  explicit LedgerSession(Ledger& ledger);
  ~LedgerSession();
  LedgerSession(const LedgerSession&) = delete;
  LedgerSession& operator=(const LedgerSession&) = delete;

 private:
  Ledger& ledger_;
  sim::BusyObserver* prev_;
};

}  // namespace pd::obs
