// Critical-path latency attribution (ISSUE 5 tentpole, part 1).
//
// Reconstructs each request's span tree from exported trace spans and
// partitions the root "request" interval into non-overlapping attributed
// segments, Dapper-style: every nanosecond of end-to-end latency lands on
// exactly one hop (or on "queue" when no hop span covers it), so per-hop
// contributions sum to the request total exactly — the Fig. 11/12
// decomposition, computed instead of eyeballed.
//
// Classification: each segment's owning span is the *latest-starting* span
// covering that instant. Under the baton protocol consecutive hops tile the
// root, so this rule only matters for overlapping children — a "soc_dma"
// staging copy begun mid engine-stage wins its overlap (later begin =
// deeper/more specific work), which is exactly the on-path SoC-DMA share of
// Fig. 11. Span names map onto five classes: "fabric" is transport,
// "soc_dma" is DMA, "retransmit" is transport (loss recovery), uncovered
// time is queueing, "shed_admission" / "deadline_expired" are policy
// (deliberate control-plane drops, distinct from faults), everything else
// ("ingress", "engine_*", "fn:*") is service.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace pd::obs {

enum class HopClass : std::uint8_t { kService, kQueue, kTransport, kDma,
                                     kPolicy, kRdma };
const char* to_string(HopClass cls);

/// Name-based hop classification (see header comment for the table).
HopClass classify_hop(std::string_view name);

/// One attributed slice of a request's end-to-end interval.
struct PathSegment {
  std::string hop;  ///< owning span name, or "queue" for uncovered time
  HopClass cls = HopClass::kService;
  std::int64_t ns = 0;
};

/// One request's critical path. Segments are in time order and sum to
/// total_ns exactly.
struct RequestPath {
  std::uint64_t trace_id = 0;
  std::int64_t total_ns = 0;
  std::vector<PathSegment> segments;
  std::uint64_t retransmit_spans = 0;  ///< loss-recovery spans observed
};

/// Per-hop aggregate across every analyzed request.
struct HopAttribution {
  HopClass cls = HopClass::kService;
  std::uint64_t traces = 0;    ///< requests whose path touches this hop
  std::uint64_t segments = 0;  ///< attributed segments
  std::int64_t total_ns = 0;   ///< summed contribution over all requests
  std::int64_t q_ns = 0;       ///< contribution within the quantile request
};

struct CritPathReport {
  double quantile = 0.99;
  std::uint64_t traces = 0;      ///< complete requests analyzed
  std::uint64_t incomplete = 0;  ///< skipped: unclosed root or orphan spans
  std::uint64_t q_trace_id = 0;  ///< the request sitting at the quantile
  std::int64_t q_total_ns = 0;   ///< exact order-statistic total latency
  std::int64_t p50_total_ns = 0;
  std::vector<PathSegment> q_breakdown;  ///< quantile request, time order
  std::map<std::string, HopAttribution> hops;
  std::int64_t class_ns[6] = {0, 0, 0, 0, 0, 0};  ///< rollup by HopClass
  std::uint64_t retransmit_spans = 0;
};

/// Closed tracer spans as ReadSpans (the analyzer's input shape), skipping
/// unclosed ones — lets in-process callers bypass the JSON round trip.
std::vector<ReadSpan> to_read_spans(const std::vector<SpanRecord>& spans);

/// Critical path of one request. `trace` holds exactly the spans of one
/// trace id; returns nullopt when there is no (closed) root span.
std::optional<RequestPath> critical_path(const std::vector<ReadSpan>& trace);

/// Full-trace analysis: per-request critical paths, per-hop aggregation,
/// and the exact breakdown of the request at `quantile` (order statistic
/// over per-request totals; ties resolve to the lowest trace id). Purely a
/// function of the span set, so byte-identical whenever the trace is.
CritPathReport analyze(const std::vector<ReadSpan>& spans,
                       double quantile = 0.99);

/// Deterministic serializations (integers only — no float formatting).
std::string report_json(const CritPathReport& r);
std::string report_csv(const CritPathReport& r);
/// Human-readable per-hop table for the CLI.
std::string report_table(const CritPathReport& r);

void write_report_json(const CritPathReport& r, const std::string& path);

}  // namespace pd::obs
