// Structural run comparison (ISSUE 6 tentpole, half 2).
//
// Every obs artifact — metrics.json, critpath.json, slo reports, the
// flight recorder's timeseries.json, perf_gate's BENCH json — is plain
// JSON produced deterministically from simulated time. This module
// parses two such files, flattens them into dotted key paths
// (`gate.sim_p50_ms`, `series.engine.tx_backlog{node=1}.points[3][2]`),
// and diffs the leaves under configurable absolute/relative thresholds,
// so a bench regression gates on the artifact itself instead of a
// human eyeball. tools/report_diff is the CLI; bench_gate.sh wires it
// into the perf gate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace pd::obs {

/// Minimal JSON document value (objects preserve member order).
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kObject,
    kArray
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject
  std::vector<JsonValue> elements;                         ///< kArray

  /// First member with `key`, or nullptr (objects only).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
};

/// Parse a complete JSON document; throws CheckFailure on malformed
/// input (with byte offset). Handles the constructs our exporters emit
/// plus \uXXXX escapes.
JsonValue json_parse(std::string_view text);
JsonValue json_parse_file(const std::string& path);

/// One scalar leaf of a flattened document.
struct FlatValue {
  bool is_number = false;
  double number = 0.0;
  std::string text;  ///< canonical form for strings/bools/null
};

/// Flatten to dotted leaf paths: object members join with '.', array
/// elements append "[i]". Deterministic for deterministic input.
std::map<std::string, FlatValue> flatten_json(const JsonValue& v);

struct DiffOptions {
  /// A numeric difference passes when |a-b| <= abs_tol OR the relative
  /// difference (against max(|a|,|b|)) <= rel_tol. Defaults require
  /// exact equality.
  double abs_tol = 0.0;
  double rel_tol = 0.0;
  /// Keys containing any of these substrings are skipped.
  std::vector<std::string> ignore;
  /// When non-empty, only keys containing one of these are compared.
  std::vector<std::string> only;
};

struct DiffFinding {
  std::string key;
  std::string detail;      ///< human-readable "a -> b" or structural note
  double delta_abs = 0.0;  ///< 0 for structural findings
  double delta_rel = 0.0;
};

struct DiffReport {
  std::size_t compared = 0;  ///< leaves examined after filtering
  std::vector<DiffFinding> findings;

  [[nodiscard]] bool clean() const { return findings.empty(); }
  /// Findings sorted by relative delta (structural first), at most
  /// `max_lines` rows plus a summary line.
  [[nodiscard]] std::string format(std::size_t max_lines = 40) const;
};

/// Compare baseline `a` against candidate `b`. Missing or extra keys are
/// structural findings; numeric leaves compare under the thresholds;
/// non-numeric leaves must match exactly.
DiffReport diff_runs(const JsonValue& a, const JsonValue& b,
                     const DiffOptions& opt);

}  // namespace pd::obs
