// Per-tenant SLO watchdog (ISSUE 5 tentpole, part 3).
//
// Declarative latency SLOs — "p99 of tenant T (optionally one chain) stays
// under X ns, with an error budget of B violating requests per window" —
// evaluated over fixed simulated-time windows. Evaluation is lazy: the
// watchdog never schedules events (recording a sample rolls any completed
// windows forward), so attaching it cannot perturb simulation results and
// alert sequences replay bit-identically across --threads 1/2/4.
//
// Burn rate per window = (violations / requests) / budget: 1.0 means the
// window consumed exactly its budget, >= `burn_alert` trips an alert that
// is recorded both as a structured event and as `slo.alerts{slo=...}` in
// the metrics registry (the multiwindow burn-rate alerting style of the
// SRE workbook, collapsed to one window per spec).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "sim/time.hpp"

namespace pd::obs {

class Registry;

struct SloSpec {
  std::string name;               ///< label, e.g. "checkout" or "tenant1"
  TenantId tenant{};              ///< invalid() = match any tenant
  std::uint32_t chain = 0;        ///< 0 = match any chain
  sim::Duration target_ns = 0;    ///< latency objective (the "p99 target")
  double budget = 0.01;           ///< allowed violating fraction per window
  sim::Duration window_ns = 100'000'000;  ///< evaluation window (100 ms)
  double burn_alert = 1.0;        ///< alert when burn rate reaches this
};

struct SloAlert {
  std::string slo;
  sim::TimePoint window_start = 0;
  sim::TimePoint window_end = 0;
  std::uint64_t requests = 0;
  std::uint64_t violations = 0;
  double burn = 0.0;
};

class SloWatchdog {
 public:
  /// When `registry` is non-null, window evaluations additionally record
  /// `slo.*{slo=<name>}` counters/gauges.
  explicit SloWatchdog(Registry* registry = nullptr) : registry_(registry) {}

  void add(SloSpec spec);
  [[nodiscard]] std::size_t specs() const { return tracked_.size(); }

  /// Record one finished request. Latency above the spec target counts
  /// against the budget; crossing into a new window evaluates the old one.
  void record(TenantId tenant, std::uint32_t chain, sim::Duration latency_ns,
              sim::TimePoint now);
  /// Record a failed request (502/504/shed): always a violation.
  void record_error(TenantId tenant, std::uint32_t chain, sim::TimePoint now);

  /// Close the trailing partial window. Call once after the run drains.
  void finish(sim::TimePoint now);

  /// Roll every spec's window forward to `now` without recording a sample.
  /// Controllers call this on their tick so burn rates stay fresh even when
  /// a tenant stops completing requests (a stalled tenant would otherwise
  /// freeze its last burn forever). A window that passed with no samples at
  /// all decays the burn to 0 — silence is not an SLO violation.
  void roll(sim::TimePoint now);

  /// Most recent per-window burn rate of the named spec (0 when unknown).
  [[nodiscard]] double burn_of(std::string_view name) const;
  /// Max of burn_of over every spec — the "is anyone suffering" signal.
  [[nodiscard]] double max_burn() const;

  /// Per-spec lifetime totals, in registration order (structured form of
  /// table() for report tooling).
  struct SpecTotals {
    std::string name;
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    std::uint64_t alerts = 0;
  };
  [[nodiscard]] std::vector<SpecTotals> totals() const;

  /// Alert events in evaluation order (deterministic).
  [[nodiscard]] const std::vector<SloAlert>& alerts() const { return alerts_; }
  [[nodiscard]] std::uint64_t total_requests() const;
  [[nodiscard]] std::uint64_t total_violations() const;

  /// Human-readable per-spec summary plus the alert log.
  [[nodiscard]] std::string table() const;

  /// Fold `other`'s alerts and per-spec totals into this watchdog and
  /// clear it (deterministic shard merge: call in fixed shard order;
  /// matching specs merge by name, new ones append).
  void absorb(SloWatchdog& other);

  void reset();

 private:
  struct Tracked {
    SloSpec spec;
    std::int64_t window = -1;  ///< current window index (now / window_ns)
    std::uint64_t requests = 0;
    std::uint64_t violations = 0;
    std::uint64_t total_requests = 0;
    std::uint64_t total_violations = 0;
    std::uint64_t alerts_fired = 0;
    double last_burn = 0.0;
  };

  void close_window(Tracked& t);

  Registry* registry_;
  std::vector<Tracked> tracked_;
  std::vector<SloAlert> alerts_;
};

}  // namespace pd::obs
