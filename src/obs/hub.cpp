#include "obs/hub.hpp"

namespace pd::obs {

namespace {
Hub* g_hub = nullptr;
}  // namespace

Hub* hub() { return g_hub; }

Hub* install_hub(Hub* h) {
  Hub* prev = g_hub;
  g_hub = h;
  return prev;
}

}  // namespace pd::obs
