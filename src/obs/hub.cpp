#include "obs/hub.hpp"

namespace pd::obs {

namespace {
Hub* g_hub = nullptr;
thread_local Hub* tl_hub = nullptr;
}  // namespace

Hub* hub() { return tl_hub != nullptr ? tl_hub : g_hub; }

Hub* install_hub(Hub* h) {
  Hub* prev = g_hub;
  g_hub = h;
  return prev;
}

Hub* install_thread_hub(Hub* h) {
  Hub* prev = tl_hub;
  tl_hub = h;
  return prev;
}

}  // namespace pd::obs
