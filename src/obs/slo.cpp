#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace pd::obs {

void SloWatchdog::add(SloSpec spec) {
  PD_CHECK(!spec.name.empty(), "SLO spec needs a name");
  PD_CHECK(spec.target_ns > 0, "SLO \"" << spec.name << "\" needs a target");
  PD_CHECK(spec.window_ns > 0, "SLO \"" << spec.name << "\" needs a window");
  PD_CHECK(spec.budget > 0.0, "SLO \"" << spec.name << "\" needs a budget");
  for (const Tracked& t : tracked_) {
    PD_CHECK(t.spec.name != spec.name,
             "duplicate SLO spec \"" << spec.name << "\"");
  }
  Tracked t;
  t.spec = std::move(spec);
  tracked_.push_back(std::move(t));
}

void SloWatchdog::record(TenantId tenant, std::uint32_t chain,
                         sim::Duration latency_ns, sim::TimePoint now) {
  for (Tracked& t : tracked_) {
    if (t.spec.tenant.valid() && t.spec.tenant != tenant) continue;
    if (t.spec.chain != 0 && t.spec.chain != chain) continue;
    const auto idx = static_cast<std::int64_t>(now / t.spec.window_ns);
    if (t.window >= 0 && idx > t.window) close_window(t);
    if (t.window < 0 || idx > t.window) t.window = idx;
    ++t.requests;
    ++t.total_requests;
    if (latency_ns > t.spec.target_ns) {
      ++t.violations;
      ++t.total_violations;
    }
  }
}

void SloWatchdog::record_error(TenantId tenant, std::uint32_t chain,
                               sim::TimePoint now) {
  // An error is an unconditional violation: model it as an infinitely slow
  // request against the same windows.
  for (Tracked& t : tracked_) {
    if (t.spec.tenant.valid() && t.spec.tenant != tenant) continue;
    if (t.spec.chain != 0 && t.spec.chain != chain) continue;
    const auto idx = static_cast<std::int64_t>(now / t.spec.window_ns);
    if (t.window >= 0 && idx > t.window) close_window(t);
    if (t.window < 0 || idx > t.window) t.window = idx;
    ++t.requests;
    ++t.total_requests;
    ++t.violations;
    ++t.total_violations;
  }
}

void SloWatchdog::finish(sim::TimePoint) {
  for (Tracked& t : tracked_) {
    if (t.window >= 0 && t.requests > 0) close_window(t);
  }
}

void SloWatchdog::roll(sim::TimePoint now) {
  for (Tracked& t : tracked_) {
    if (t.window < 0) continue;  // no sample yet: nothing to evaluate
    const auto idx = static_cast<std::int64_t>(now / t.spec.window_ns);
    if (idx <= t.window) continue;
    close_window(t);
    // One or more whole windows elapsed with zero samples after the one we
    // just closed: the burn signal decays to quiet, not to the stale value.
    if (idx > t.window + 1) t.last_burn = 0.0;
    t.window = idx;
  }
}

double SloWatchdog::burn_of(std::string_view name) const {
  for (const Tracked& t : tracked_) {
    if (t.spec.name == name) return t.last_burn;
  }
  return 0.0;
}

double SloWatchdog::max_burn() const {
  double burn = 0.0;
  for (const Tracked& t : tracked_) burn = std::max(burn, t.last_burn);
  return burn;
}

void SloWatchdog::close_window(Tracked& t) {
  if (t.requests == 0) {
    // A whole window elapsed with zero samples: silence decays the burn
    // signal to quiet rather than holding the last stale value (a
    // controller polling at exactly the window period would otherwise
    // never see the burn drop after load stops).
    t.last_burn = 0.0;
    t.requests = t.violations = 0;
    return;
  }
  const double frac = static_cast<double>(t.violations) /
                      static_cast<double>(t.requests);
  const double burn = frac / t.spec.budget;
  t.last_burn = burn;
  const sim::TimePoint w0 = t.window * t.spec.window_ns;
  const sim::TimePoint w1 = w0 + t.spec.window_ns;
  if (registry_ != nullptr) {
    const std::string label = "slo=" + t.spec.name;
    registry_->gauge("slo.burn_rate", label).set(burn);
    registry_->counter("slo.windows", label).inc();
    registry_->counter("slo.requests", label).inc(t.requests);
    registry_->counter("slo.violations", label).inc(t.violations);
  }
  if (burn >= t.spec.burn_alert) {
    ++t.alerts_fired;
    alerts_.push_back(SloAlert{t.spec.name, w0, w1, t.requests, t.violations,
                               burn});
    if (registry_ != nullptr) {
      registry_->counter("slo.alerts", "slo=" + t.spec.name).inc();
    }
  }
  t.requests = t.violations = 0;
}

std::vector<SloWatchdog::SpecTotals> SloWatchdog::totals() const {
  std::vector<SpecTotals> out;
  out.reserve(tracked_.size());
  for (const Tracked& t : tracked_) {
    out.push_back(SpecTotals{t.spec.name, t.total_requests, t.total_violations,
                             t.alerts_fired});
  }
  return out;
}

std::uint64_t SloWatchdog::total_requests() const {
  std::uint64_t n = 0;
  for (const Tracked& t : tracked_) n += t.total_requests;
  return n;
}

std::uint64_t SloWatchdog::total_violations() const {
  std::uint64_t n = 0;
  for (const Tracked& t : tracked_) n += t.total_violations;
  return n;
}

std::string SloWatchdog::table() const {
  char buf[192];
  std::string out;
  std::snprintf(buf, sizeof buf, "  %-12s %10s %10s %10s %10s %10s\n", "slo",
                "target ms", "requests", "violations", "alerts", "burn");
  out += buf;
  for (const Tracked& t : tracked_) {
    std::snprintf(buf, sizeof buf,
                  "  %-12s %10.2f %10llu %10llu %10llu %10.2f\n",
                  t.spec.name.c_str(),
                  static_cast<double>(t.spec.target_ns) / 1e6,
                  static_cast<unsigned long long>(t.total_requests),
                  static_cast<unsigned long long>(t.total_violations),
                  static_cast<unsigned long long>(t.alerts_fired),
                  t.last_burn);
    out += buf;
  }
  for (const SloAlert& a : alerts_) {
    std::snprintf(buf, sizeof buf,
                  "  ALERT %-12s window [%.1f, %.1f) ms: %llu/%llu violating "
                  "-> burn %.2f\n",
                  a.slo.c_str(), static_cast<double>(a.window_start) / 1e6,
                  static_cast<double>(a.window_end) / 1e6,
                  static_cast<unsigned long long>(a.violations),
                  static_cast<unsigned long long>(a.requests), a.burn);
    out += buf;
  }
  return out;
}

void SloWatchdog::absorb(SloWatchdog& other) {
  alerts_.insert(alerts_.end(), other.alerts_.begin(), other.alerts_.end());
  for (Tracked& ot : other.tracked_) {
    Tracked* mine = nullptr;
    for (Tracked& t : tracked_) {
      if (t.spec.name == ot.spec.name) {
        mine = &t;
        break;
      }
    }
    if (mine == nullptr) {
      tracked_.push_back(ot);
    } else {
      mine->total_requests += ot.total_requests;
      mine->total_violations += ot.total_violations;
      mine->alerts_fired += ot.alerts_fired;
      if (ot.total_requests > 0) mine->last_burn = ot.last_burn;
    }
  }
  other.tracked_.clear();
  other.alerts_.clear();
}

void SloWatchdog::reset() {
  tracked_.clear();
  alerts_.clear();
}

}  // namespace pd::obs
