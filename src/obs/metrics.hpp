// Unified metrics registry (ISSUE 1 tentpole, half 2).
//
// Named, label-tagged counters / gauges / histograms that every subsystem
// (engine, RNIC, fabric, SoC DMA, Comch, buffer pools, DWRR) reports into,
// replacing the ad-hoc per-bench counter plumbing. Instruments are created
// on first use and live for the Registry's lifetime, so hot paths can cache
// the returned reference and record with a single add. Snapshots are
// deterministic: instruments are stored in lexicographic key order, and the
// JSON/CSV dumps contain no wall-clock state — two identical simulated runs
// produce byte-identical files.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"

namespace pd::obs {

/// Monotonic event count (messages sent, drops, cache misses).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  /// Snapshot-style assignment, for exporting counters kept elsewhere.
  void set(std::uint64_t v) { value_ = v; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Point-in-time measurement (queue depth, active QPs, pool occupancy).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double v) { value_ += v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Distribution of nanosecond durations, backed by the HDR-style
/// sim::LatencyHistogram (per-hop latencies, DMA transfer times).
class Histogram {
 public:
  void record(sim::Duration ns) { hist_.record(ns); }
  void merge(const Histogram& other) { hist_.merge(other.hist_); }
  [[nodiscard]] const sim::LatencyHistogram& hist() const { return hist_; }

 private:
  sim::LatencyHistogram hist_;
};

/// Builds the canonical instrument key `name{labels}` (plain `name` when no
/// labels). Labels are a caller-formatted `k=v,k=v` string; callers are
/// expected to pass them pre-sorted when ordering matters for dedup.
std::string metric_key(std::string_view name, std::string_view labels);

/// Format a double without locale surprises and without trailing noise
/// ("12", "12.5", "0.0312"). Deterministic across runs; NaN prints "null".
std::string fmt_double(double v);

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

/// RFC 4180 CSV field: returned verbatim unless it contains a comma,
/// quote, or newline, in which case it is double-quoted with embedded
/// quotes doubled. Label values with commas (`pool{node=1,tenant=7}`)
/// would otherwise shift every following column.
std::string csv_field(std::string_view s);

/// Split one CSV line (no trailing newline) into fields, undoing
/// csv_field()'s quoting. The inverse used by the round-trip tests and
/// by tools that re-read our own exports.
std::vector<std::string> parse_csv_line(std::string_view line);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {});

  /// Register a callback sampled at snapshot time (exported as a gauge).
  /// The callback must outlive the registry or be removed via reset().
  void probe(std::string_view name, std::string_view labels,
             std::function<double()> fn);

  [[nodiscard]] bool has(std::string_view name,
                         std::string_view labels = {}) const;
  /// Lookup without creation; throws CheckFailure when absent.
  [[nodiscard]] const Counter& counter_at(std::string_view name,
                                          std::string_view labels = {}) const;
  [[nodiscard]] const Histogram& histogram_at(
      std::string_view name, std::string_view labels = {}) const;

  [[nodiscard]] std::size_t size() const { return instruments_.size(); }
  void reset();

  /// Fold `other` into this registry: counters add, gauges add, histograms
  /// merge; probes are skipped (they are callbacks into the other
  /// registry's objects). Snapshot ordering is by instrument key (the map's
  /// lexicographic order), NOT registration order, so merging shard
  /// registries in any order yields byte-identical exports.
  void merge_from(const Registry& other);

  /// Deterministic snapshot: one JSON object keyed by instrument name.
  /// Counters/gauges/probes dump scalars; histograms dump
  /// {count,min,max,mean,p50,p90,p99,p999}.
  [[nodiscard]] std::string to_json() const;
  /// Flat CSV: key,kind,count,min,max,mean,p50,p90,p99,p999 (scalar kinds
  /// fill `mean` and leave the quantile columns empty).
  [[nodiscard]] std::string to_csv() const;
  void write_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

 private:
  struct Instrument {
    // Exactly one is set, per kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> probe;
  };

  Instrument& at_or_create(std::string_view name, std::string_view labels);

  std::map<std::string, Instrument> instruments_;
};

}  // namespace pd::obs
