#include "obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace pd::obs {

FlightSeries::FlightSeries(std::size_t capacity) : capacity_(capacity) {
  PD_CHECK(capacity_ >= 2, "flight series needs >= 2 buckets");
}

void FlightSeries::record(sim::TimePoint t, double v) {
  ++total_;
  if (buckets_.empty() || buckets_.back().n >= merge_) {
    if (buckets_.size() == capacity_) compact();
    // After an odd-count compaction the tail bucket regains headroom
    // under the doubled budget; keep folding into it in that case.
    if (buckets_.empty() || buckets_.back().n >= merge_) {
      buckets_.push_back(FlightPoint{t, 0, v, v, 0.0});
    }
  }
  FlightPoint& b = buckets_.back();
  ++b.n;
  b.min = std::min(b.min, v);
  b.max = std::max(b.max, v);
  b.sum += v;
}

void FlightSeries::compact() {
  std::size_t w = 0;
  std::size_t i = 0;
  for (; i + 1 < buckets_.size(); i += 2) {
    FlightPoint m = buckets_[i];
    const FlightPoint& b = buckets_[i + 1];
    m.n += b.n;
    m.min = std::min(m.min, b.min);
    m.max = std::max(m.max, b.max);
    m.sum += b.sum;
    buckets_[w++] = m;
  }
  if (i < buckets_.size()) buckets_[w++] = buckets_[i];
  buckets_.resize(w);
  merge_ *= 2;
}

void FlightSeries::absorb(FlightSeries& other) {
  if (other.buckets_.empty()) {
    other.total_ = 0;
    return;
  }
  std::vector<FlightPoint> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < buckets_.size() && b < other.buckets_.size()) {
    // Stable: this-first on equal timestamps, so merge order (shard
    // order) fully determines the result.
    if (other.buckets_[b].t0 < buckets_[a].t0) {
      merged.push_back(other.buckets_[b++]);
    } else {
      merged.push_back(buckets_[a++]);
    }
  }
  merged.insert(merged.end(), buckets_.begin() + static_cast<long>(a),
                buckets_.end());
  merged.insert(merged.end(), other.buckets_.begin() + static_cast<long>(b),
                other.buckets_.end());
  buckets_ = std::move(merged);
  merge_ = std::max(merge_, other.merge_);
  total_ += other.total_;
  other.buckets_.clear();
  other.total_ = 0;
  while (buckets_.size() > capacity_) compact();
}

double FlightSeries::peak() const {
  double p = 0.0;
  bool first = true;
  for (const FlightPoint& b : buckets_) {
    if (first || b.max > p) p = b.max;
    first = false;
  }
  return p;
}

double FlightSeries::last_mean() const {
  return buckets_.empty() ? 0.0 : buckets_.back().mean();
}

void FlightRecorder::configure(const FlightConfig& cfg) {
  PD_CHECK(series_.empty() && probes_.empty(),
           "configure() must precede series registration");
  PD_CHECK(cfg.sample_period > 0, "sample period must be positive");
  PD_CHECK(cfg.series_capacity >= 2, "series capacity must be >= 2");
  cfg_ = cfg;
}

void FlightRecorder::probe(std::string_view name, std::string_view labels,
                           std::function<double()> fn) {
  PD_CHECK(fn != nullptr, "flight probe needs a callback");
  const std::string key = metric_key(name, labels);
  PD_CHECK(series_.find(key) == series_.end(),
           "flight series " << key << " already registered");
  auto [it, inserted] =
      series_.emplace(key, FlightSeries(cfg_.series_capacity));
  (void)inserted;
  probes_.push_back(Probe{&it->second, std::move(fn)});
}

FlightSeries& FlightRecorder::series(std::string_view name,
                                     std::string_view labels) {
  const std::string key = metric_key(name, labels);
  auto it = series_.find(key);
  if (it == series_.end()) {
    it = series_.emplace(key, FlightSeries(cfg_.series_capacity)).first;
  }
  return it->second;
}

const FlightSeries* FlightRecorder::find(std::string_view name,
                                         std::string_view labels) const {
  auto it = series_.find(metric_key(name, labels));
  return it == series_.end() ? nullptr : &it->second;
}

void FlightRecorder::start(sim::Scheduler& sched) {
  PD_CHECK(sched_ == nullptr, "flight recorder already started");
  sched_ = &sched;
  // First tick at the next period multiple: shard clocks may sit at
  // different points after setup, but each shard's clock is itself
  // deterministic, so the tick grid is too.
  const sim::TimePoint t0 =
      (sched.now() / cfg_.sample_period + 1) * cfg_.sample_period;
  pending_ = sched_->schedule_background_at(t0, [this] { tick(); });
}

void FlightRecorder::stop() {
  if (sched_ != nullptr && pending_ != sim::kInvalidEvent) {
    sched_->cancel(pending_);
  }
  pending_ = sim::kInvalidEvent;
  sched_ = nullptr;
}

void FlightRecorder::tick() {
  sample(sched_->now());
  pending_ =
      sched_->schedule_background_after(cfg_.sample_period, [this] { tick(); });
}

void FlightRecorder::sample(sim::TimePoint t) {
  ++samples_;
  for (Probe& p : probes_) p.series->record(t, p.fn());
}

void FlightRecorder::merge_from(FlightRecorder& other) {
  other.stop();
  other.probes_.clear();
  if (series_.empty() && probes_.empty()) cfg_ = other.cfg_;
  for (auto& [key, s] : other.series_) {
    auto it = series_.find(key);
    if (it == series_.end()) {
      it = series_.emplace(key, FlightSeries(cfg_.series_capacity)).first;
    }
    it->second.absorb(s);
  }
  other.series_.clear();
  samples_ += other.samples_;
  other.samples_ = 0;
}

double FlightRecorder::peak_over(std::string_view name) const {
  double p = 0.0;
  for (const auto& [key, s] : series_) {
    const std::string_view base =
        std::string_view(key).substr(0, key.find('{'));
    if (base == name) p = std::max(p, s.peak());
  }
  return p;
}

std::size_t FlightRecorder::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, s] : series_) {
    total += key.size() + s.memory_bytes() + sizeof(FlightSeries);
  }
  return total;
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\n";
  out += "  \"sample_period_ns\": " + std::to_string(cfg_.sample_period);
  out += ",\n  \"samples\": " + std::to_string(samples_);
  out += ",\n  \"series\": {";
  bool first = true;
  for (const auto& [key, s] : series_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + json_escape(key) + "\": {\"count\": " +
           std::to_string(s.total_samples()) +
           ", \"per_bucket\": " + std::to_string(s.samples_per_bucket()) +
           ", \"points\": [";
    bool pfirst = true;
    for (const FlightPoint& b : s.buckets()) {
      if (!pfirst) out += ",";
      pfirst = false;
      out += "[" + std::to_string(b.t0) + "," + std::to_string(b.n) + "," +
             fmt_double(b.min) + "," + fmt_double(b.max) + "," +
             fmt_double(b.mean()) + "]";
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string FlightRecorder::to_csv() const {
  std::string out = "series,t_ns,samples,min,max,mean\n";
  for (const auto& [key, s] : series_) {
    const std::string field = csv_field(key);
    for (const FlightPoint& b : s.buckets()) {
      out += field + "," + std::to_string(b.t0) + "," + std::to_string(b.n) +
             "," + fmt_double(b.min) + "," + fmt_double(b.max) + "," +
             fmt_double(b.mean()) + "\n";
    }
  }
  return out;
}

void FlightRecorder::write_json(const std::string& path) const {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_json();
}

void FlightRecorder::write_csv(const std::string& path) const {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_csv();
}

std::string FlightRecorder::dashboard(std::string_view filter,
                                      std::size_t width) const {
  char head[160];
  std::snprintf(head, sizeof head,
                "flight recorder: %zu series, %llu samples @ %.3f ms, %.1f KiB\n",
                series_.size(),
                static_cast<unsigned long long>(samples_),
                sim::to_ms(cfg_.sample_period),
                static_cast<double>(memory_bytes()) / 1024.0);
  std::string out = head;
  for (const auto& [key, s] : series_) {
    if (!filter.empty() && key.find(filter) == std::string::npos) continue;
    std::vector<double> maxima;
    maxima.reserve(s.buckets().size());
    for (const FlightPoint& b : s.buckets()) maxima.push_back(b.max);
    char line[256];
    std::snprintf(line, sizeof line, "  %-44s peak %-10.4g last %-10.4g |",
                  key.c_str(), s.peak(), s.last_mean());
    out += line;
    out += render_sparkline(maxima, width);
    out += "|\n";
  }
  return out;
}

std::string render_sparkline(const std::vector<double>& values,
                             std::size_t width) {
  // Pure ASCII so the dashboard renders identically in logs and dumb
  // terminals; index 0 is "empty column", 1 is "present but ~zero".
  static constexpr char kRamp[] = " .:-=+*#%@";
  static constexpr std::size_t kLevels = sizeof(kRamp) - 2;  // top index
  if (width == 0) return {};
  std::string out(width, ' ');
  if (values.empty()) return out;
  double vmax = values[0];
  for (double v : values) vmax = std::max(vmax, v);
  const std::size_t n = values.size();
  const std::size_t cols = std::min(width, n);
  for (std::size_t c = 0; c < cols; ++c) {
    // Column c aggregates values [c*n/cols, (c+1)*n/cols) by max.
    const std::size_t lo = c * n / cols;
    const std::size_t hi = std::max(lo + 1, (c + 1) * n / cols);
    double v = values[lo];
    for (std::size_t i = lo + 1; i < hi && i < n; ++i) {
      v = std::max(v, values[i]);
    }
    std::size_t level = 1;
    if (vmax > 0.0 && v > 0.0) {
      level = 1 + static_cast<std::size_t>(
                      std::ceil(v / vmax * static_cast<double>(kLevels - 1)));
      level = std::min(level, kLevels);
    }
    if (v == 0.0 && vmax > 0.0) level = 1;
    out[c] = kRamp[level];
  }
  return out;
}

}  // namespace pd::obs
