// Time-series flight recorder (ISSUE 6 tentpole).
//
// The metrics registry (ISSUE 1) answers "what happened over the whole
// run"; this layer adds the time axis: a FlightRecorder periodically
// samples gauge probes — queue depths, pool occupancy, unacked headroom,
// DWRR deficits, QP state counts, chaos fault state, core utilization —
// in *simulated* time and folds each series into a fixed-capacity bucket
// ring, so a run that transiently saturates no longer looks identical to
// one that never did.
//
// Bounded memory: each series holds at most `series_capacity` buckets of
// {t0, n, min, max, sum}. When the ring fills, adjacent bucket pairs are
// merged (min of mins, max of maxes, sums add) and the per-bucket sample
// budget doubles — a run 2x longer costs zero extra memory, only 2x
// coarser buckets at the start of the timeline. Peaks survive compaction
// exactly (max is closed under merging); means are exact per bucket.
//
// Determinism: sampling is driven by scheduler background events at fixed
// multiples of the sample period, probes read only state owned by the
// recorder's own shard, and exports iterate a std::map — so the JSON/CSV
// artifacts are byte-identical across --threads 1/2/4 and make honest
// inputs for tools/report_diff.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace pd::obs {

/// One downsample bucket: `n` consecutive samples starting at `t0`.
struct FlightPoint {
  sim::TimePoint t0 = 0;   ///< timestamp of the first folded sample
  std::uint32_t n = 0;     ///< samples folded into this bucket
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;        ///< mean = sum / n, exact per bucket

  [[nodiscard]] double mean() const {
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }
};

/// Append-only bucket ring with pair-merge compaction. Samples must
/// arrive in non-decreasing time order (each series is written from one
/// scheduler shard, which only moves forward).
class FlightSeries {
 public:
  explicit FlightSeries(std::size_t capacity = 512);

  void record(sim::TimePoint t, double v);

  /// Fold `other`'s buckets into this series (time-ordered stable merge,
  /// this-first on ties), then compact back under capacity. Leaves
  /// `other` empty so a second merge cannot double-count.
  void absorb(FlightSeries& other);

  [[nodiscard]] const std::vector<FlightPoint>& buckets() const {
    return buckets_;
  }
  /// Total samples ever recorded (survives compaction).
  [[nodiscard]] std::uint64_t total_samples() const { return total_; }
  /// Current per-bucket sample budget (doubles on each compaction).
  [[nodiscard]] std::uint32_t samples_per_bucket() const { return merge_; }
  [[nodiscard]] double peak() const;
  [[nodiscard]] double last_mean() const;
  [[nodiscard]] std::size_t memory_bytes() const {
    return buckets_.capacity() * sizeof(FlightPoint);
  }

 private:
  void compact();

  std::vector<FlightPoint> buckets_;
  std::size_t capacity_;
  std::uint32_t merge_ = 1;
  std::uint64_t total_ = 0;
};

struct FlightConfig {
  /// Simulated time between sampling ticks.
  sim::Duration sample_period = 1'000'000;  // 1 ms
  /// Buckets per series before pair-merge compaction kicks in.
  std::size_t series_capacity = 512;
};

/// Registry of FlightSeries plus the periodic sampler that feeds them.
/// One recorder per obs::Hub: shard-local under ParallelSim (merged
/// deterministically by Cluster::merge_observability), global otherwise.
class FlightRecorder {
 public:
  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Set sampling period / capacity. Must precede any series creation.
  void configure(const FlightConfig& cfg);
  [[nodiscard]] const FlightConfig& config() const { return cfg_; }

  /// Register a gauge probe sampled on every tick. `fn` must read only
  /// state owned by this recorder's shard (the determinism rule) and
  /// outlive the recorder's sampling. Key is `name{labels}` as in the
  /// metrics registry; duplicate registration is a check failure.
  void probe(std::string_view name, std::string_view labels,
             std::function<double()> fn);

  /// Event-driven series (chaos fault state, QP transitions): callers
  /// record points directly at the moment state changes instead of
  /// waiting for the next tick. Created on first use.
  FlightSeries& series(std::string_view name, std::string_view labels = {});
  [[nodiscard]] const FlightSeries* find(std::string_view name,
                                         std::string_view labels = {}) const;

  /// Start periodic sampling on `sched`: a background event fires at each
  /// multiple of the sample period (background so the recorder never
  /// keeps run() alive). Call once per recorder.
  void start(sim::Scheduler& sched);
  void stop();
  /// Sample every probe once at time `t` (start() calls this on a timer;
  /// tests can drive it directly).
  void sample(sim::TimePoint t);

  /// Fold `other`'s series into this recorder in key order, adopting its
  /// config when this recorder is untouched. Stops `other`'s sampler and
  /// drops its probes, so a second merge cannot double-count.
  void merge_from(FlightRecorder& other);

  [[nodiscard]] std::size_t series_count() const { return series_.size(); }
  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  /// Max over the bucket maxima of every series whose name part (before
  /// any '{') equals `name` — e.g. peak engine.tx_backlog across nodes.
  [[nodiscard]] double peak_over(std::string_view name) const;
  /// Total bucket storage across series (the bounded-memory guarantee).
  [[nodiscard]] std::size_t memory_bytes() const;

  /// {"sample_period_ns":..,"samples":..,"series":{key:{"count":..,
  /// "per_bucket":..,"points":[[t0,n,min,max,mean],..]},..}} — keys in
  /// lexicographic order, numbers formatted deterministically.
  [[nodiscard]] std::string to_json() const;
  /// series,t_ns,samples,min,max,mean — one row per bucket, series keys
  /// CSV-quoted (they contain commas in multi-label form).
  [[nodiscard]] std::string to_csv() const;
  void write_json(const std::string& path) const;
  void write_csv(const std::string& path) const;

  /// ASCII sparkline dashboard (one row per series: peak, last, shape).
  /// `filter` keeps only series whose key contains it; width is the
  /// sparkline column budget.
  [[nodiscard]] std::string dashboard(std::string_view filter = {},
                                      std::size_t width = 56) const;

 private:
  struct Probe {
    FlightSeries* series;
    std::function<double()> fn;
  };

  void tick();

  FlightConfig cfg_;
  std::map<std::string, FlightSeries> series_;
  std::vector<Probe> probes_;
  sim::Scheduler* sched_ = nullptr;
  sim::EventId pending_ = sim::kInvalidEvent;
  std::uint64_t samples_ = 0;
};

/// Render `values` into a `width`-column ASCII sparkline (pure-ASCII ramp
/// " .:-=+*#%@", normalized to the max; columns aggregate by max so peaks
/// never vanish). Exposed for trace_inspect --timeline.
[[nodiscard]] std::string render_sparkline(const std::vector<double>& values,
                                           std::size_t width);

}  // namespace pd::obs
