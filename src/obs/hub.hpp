// Process-global observability hub.
//
// Instrumentation sites deep in the data plane (engine, RNIC, function
// runtime) reach the tracer and metrics registry through obs::hub() rather
// than through constructor plumbing: the simulation is single-threaded, so a
// plain global is safe, and a null hub makes every instrumentation site a
// single-branch no-op -- benches that do not attach an exporter pay nothing.
//
// Usage:
//   obs::Hub hub;                       // owns Registry + Tracer
//   obs::Session session(hub);          // installs; uninstalls on scope exit
//   ... run simulation ...
//   hub.tracer.write_chrome_json("trace.json");
#pragma once

#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace pd::obs {

struct Hub {
  Registry registry;
  Tracer tracer{&registry};
  Profiler profiler;
  SloWatchdog slo{&registry};
  FlightRecorder timeseries;
  Ledger ledger;
};

/// Currently installed hub, or nullptr when observability is off. A
/// thread-local hub (sharded simulation workers) shadows the global one.
[[nodiscard]] Hub* hub();

/// Install `h` as the global hub (nullptr uninstalls). Returns the previous
/// hub so callers can restore it.
Hub* install_hub(Hub* h);

/// Install `h` as THIS thread's hub (nullptr uninstalls the thread-local
/// override, falling back to the global hub). The parallel simulation's
/// shard enter/leave hooks use this so each shard records into its own
/// registry with no cross-thread sharing; the shards' hubs are merged
/// deterministically after the run.
Hub* install_thread_hub(Hub* h);

/// RAII installer; restores the previously installed hub on destruction.
class Session {
 public:
  explicit Session(Hub& h) : prev_(install_hub(&h)) {}
  ~Session() { install_hub(prev_); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

 private:
  Hub* prev_;
};

}  // namespace pd::obs
