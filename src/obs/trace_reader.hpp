// Reader for the Chrome trace-event JSON written by obs::Tracer.
//
// Shared by the end-to-end tracing test (which asserts span nesting and hop
// order on a parsed trace) and the tools/trace_inspect CLI. This is a
// purpose-built parser for the exporter's output shape -- a top-level object
// with a "traceEvents" array of flat event objects -- not a general JSON
// library; it tolerates whitespace and key reordering but not arbitrary
// nesting beyond the one-level "args" object the exporter emits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pd::obs {

/// One ph:"X" slice from the export, times converted back to nanoseconds.
struct ReadSpan {
  std::string name;
  std::string track;  // resolved from thread_name metadata
  std::uint64_t trace_id = 0;
  std::uint32_t span_id = 0;
  std::uint32_t parent_id = 0;
  std::int64_t begin_ns = 0;
  std::int64_t dur_ns = 0;

  [[nodiscard]] std::int64_t end_ns() const { return begin_ns + dur_ns; }
};

/// Parse a Chrome trace-event JSON document. Throws pd::CheckFailure on
/// malformed input. Metadata (ph:"M") events are consumed to resolve track
/// names; only ph:"X" slices are returned, in document order.
std::vector<ReadSpan> read_chrome_trace(const std::string& json);

/// Convenience: read and parse a trace file.
std::vector<ReadSpan> read_chrome_trace_file(const std::string& path);

}  // namespace pd::obs
