#include "obs/ledger.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"

namespace pd::obs {

namespace {

constexpr const char* kKindNames[kLedgerKinds] = {
    "core", "dma", "nic", "link", "uplink", "pool", "queue"};

void append_kv(std::string& out, const char* key, std::uint64_t v,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, v);
  out += buf;
}

void append_kv_i(std::string& out, const char* key, std::int64_t v,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRId64, key, v);
  out += buf;
}

void append_kv_s(std::string& out, const char* key, std::string_view v,
                 bool* first) {
  if (!*first) out += ',';
  *first = false;
  out += '"';
  out += key;
  out += "\":\"";
  out.append(v);  // resource/kind names: no JSON metacharacters by design
  out += '"';
}

}  // namespace

const char* to_string(LedgerKind kind) {
  return kKindNames[static_cast<std::uint8_t>(kind)];
}

void Ledger::on_busy(std::string_view resource, const sim::ProfileFrame& frame,
                     sim::Duration scaled_ns) {
  if (next_ != nullptr) next_->on_busy(resource, frame, scaled_ns);
}

void Ledger::on_busy_interval(std::string_view resource,
                              const sim::ProfileFrame& frame,
                              sim::TimePoint submitted, sim::TimePoint begin,
                              sim::Duration scaled_ns, std::uint64_t bytes) {
  if (next_ != nullptr) {
    next_->on_busy_interval(resource, frame, submitted, begin, scaled_ns,
                            bytes);
  }
  if (!enabled_) return;
  // DMA engines are the only byte-denominated BusyObserver sources; they
  // are named "<node>/dma" by the DPU model.
  const bool is_dma = resource.size() >= 4 &&
                      resource.substr(resource.size() - 4) == "/dma";
  const LedgerKind kind = is_dma ? LedgerKind::kDma : LedgerKind::kCore;
  // The submit event is the earliest origin any future wait at this
  // resource can have: advance the prune clock before charging.
  if (begin > submitted) wait(kind, resource, frame.tenant, submitted, begin);
  // ref_now = submitted: a later job can still be submitted (and start
  // waiting) before this one's start time, so the prune clock must not
  // run ahead to `begin`.
  occupy(kind, resource, frame.tenant, begin, begin + scaled_ns, submitted);
  if (bytes > 0) add_bytes(kind, resource, frame.tenant, bytes);
}

Ledger::Totals& Ledger::cell(LedgerKind kind, std::string_view resource,
                             std::int64_t tenant) {
  return cells_[CellKey{static_cast<std::uint8_t>(kind),
                        std::string(resource), tenant}];
}

Ledger::Live& Ledger::live(LedgerKind kind, std::string_view resource) {
  return live_[{static_cast<std::uint8_t>(kind), std::string(resource)}];
}

void Ledger::prune(Live& lv) {
  // A segment can still be blamed only while some future wait window may
  // overlap it. Wait origins never precede the resource's event clock or
  // the oldest open queue entry, so everything ending at or before that
  // floor is evidence nobody will ever consult again.
  sim::TimePoint floor = lv.clock;
  for (const auto& [tenant, dq] : lv.open) {
    if (!dq.empty()) floor = std::min(floor, dq.front());
  }
  while (!lv.segments.empty() && lv.segments.front().end <= floor) {
    lv.segments.pop_front();
  }
}

void Ledger::occupy(LedgerKind kind, std::string_view resource,
                    std::int64_t tenant, sim::TimePoint begin,
                    sim::TimePoint end, sim::TimePoint ref_now) {
  if (!enabled_ || end <= begin) return;
  cell(kind, resource, tenant).busy_ns +=
      static_cast<std::uint64_t>(end - begin);
  Live& lv = live(kind, resource);
  lv.clock = std::max(lv.clock, ref_now);
  lv.segments.push_back(Segment{begin, end, tenant});
  prune(lv);
}

void Ledger::add_bytes(LedgerKind kind, std::string_view resource,
                       std::int64_t tenant, std::uint64_t bytes) {
  if (!enabled_ || bytes == 0) return;
  cell(kind, resource, tenant).bytes += bytes;
}

void Ledger::wait(LedgerKind kind, std::string_view resource,
                  std::int64_t tenant, sim::TimePoint begin,
                  sim::TimePoint end) {
  if (!enabled_ || end <= begin) return;
  const auto total = static_cast<std::uint64_t>(end - begin);
  cell(kind, resource, tenant).wait_ns += total;
  Live& lv = live(kind, resource);
  lv.clock = std::max(lv.clock, begin);
  const auto k = static_cast<std::uint8_t>(kind);
  // Walk the occupancy timeline in event order, charging overlap with the
  // wait window until the whole wait is covered. For serializing FIFO
  // resources the segments tile the window exactly; the cap and the
  // self-blamed remainder make the attribution exact regardless.
  std::uint64_t remaining = total;
  for (const Segment& s : lv.segments) {
    if (remaining == 0) break;
    if (s.end <= begin || s.begin >= end) continue;
    const sim::TimePoint b = std::max(s.begin, begin);
    const sim::TimePoint e = std::min(s.end, end);
    const auto take =
        std::min(static_cast<std::uint64_t>(e - b), remaining);
    blame_[BlameKey{k, std::string(resource), s.tenant, tenant}] += take;
    remaining -= take;
  }
  if (remaining > 0) {
    blame_[BlameKey{k, std::string(resource), tenant, tenant}] += remaining;
  }
  prune(lv);
}

void Ledger::queue_enter(LedgerKind kind, std::string_view resource,
                         std::int64_t tenant, sim::TimePoint now) {
  if (!enabled_) return;
  Live& lv = live(kind, resource);
  lv.clock = std::max(lv.clock, now);
  lv.open[tenant].push_back(now);
}

void Ledger::queue_exit(LedgerKind kind, std::string_view resource,
                        std::int64_t tenant, sim::TimePoint now) {
  if (!enabled_) return;
  Live& lv = live(kind, resource);
  auto it = lv.open.find(tenant);
  if (it == lv.open.end() || it->second.empty()) return;
  const sim::TimePoint entered = it->second.front();
  it->second.pop_front();
  wait(kind, resource, tenant, entered, now);
}

void Ledger::add_slot_ns(std::string_view resource, std::int64_t tenant,
                         std::uint64_t slot_ns, std::uint64_t footprint_bytes) {
  if (!enabled_ || (slot_ns == 0 && footprint_bytes == 0)) return;
  Totals& c = cell(LedgerKind::kPool, resource, tenant);
  c.busy_ns += slot_ns;
  c.bytes += footprint_bytes;
}

Ledger::Totals Ledger::totals() const {
  Totals t;
  for (const auto& [key, c] : cells_) {
    t.busy_ns += c.busy_ns;
    t.wait_ns += c.wait_ns;
    t.bytes += c.bytes;
  }
  return t;
}

Ledger::Totals Ledger::totals(LedgerKind kind) const {
  Totals t;
  const auto k = static_cast<std::uint8_t>(kind);
  for (const auto& [key, c] : cells_) {
    if (key.kind != k) continue;
    t.busy_ns += c.busy_ns;
    t.wait_ns += c.wait_ns;
    t.bytes += c.bytes;
  }
  return t;
}

std::uint64_t Ledger::busy_ns(LedgerKind kind, std::int64_t tenant) const {
  std::uint64_t total = 0;
  const auto k = static_cast<std::uint8_t>(kind);
  for (const auto& [key, c] : cells_) {
    if (key.kind == k && key.tenant == tenant) total += c.busy_ns;
  }
  return total;
}

std::uint64_t Ledger::wait_ns(LedgerKind kind, std::int64_t tenant) const {
  std::uint64_t total = 0;
  const auto k = static_cast<std::uint8_t>(kind);
  for (const auto& [key, c] : cells_) {
    if (key.kind == k && key.tenant == tenant) total += c.wait_ns;
  }
  return total;
}

std::uint64_t Ledger::bytes(LedgerKind kind, std::int64_t tenant) const {
  std::uint64_t total = 0;
  const auto k = static_cast<std::uint8_t>(kind);
  for (const auto& [key, c] : cells_) {
    if (key.kind == k && key.tenant == tenant) total += c.bytes;
  }
  return total;
}

std::uint64_t Ledger::blame_ns(std::int64_t aggressor,
                               std::int64_t victim) const {
  std::uint64_t total = 0;
  for (const auto& [key, ns] : blame_) {
    if (key.aggressor == aggressor && key.victim == victim) total += ns;
  }
  return total;
}

std::vector<Ledger::BlameRow> Ledger::blame_rows() const {
  std::map<std::tuple<std::uint8_t, std::int64_t, std::int64_t>, std::uint64_t>
      agg;
  for (const auto& [key, ns] : blame_) {
    agg[{key.kind, key.aggressor, key.victim}] += ns;
  }
  std::vector<BlameRow> rows;
  rows.reserve(agg.size());
  for (const auto& [key, ns] : agg) {
    rows.push_back(BlameRow{static_cast<LedgerKind>(std::get<0>(key)),
                            std::get<1>(key), std::get<2>(key), ns});
  }
  std::sort(rows.begin(), rows.end(), [](const BlameRow& a, const BlameRow& b) {
    if (a.ns != b.ns) return a.ns > b.ns;
    if (a.kind != b.kind) return a.kind < b.kind;
    if (a.aggressor != b.aggressor) return a.aggressor < b.aggressor;
    return a.victim < b.victim;
  });
  return rows;
}

std::int64_t Ledger::top_aggressor(std::int64_t victim) const {
  std::map<std::int64_t, std::uint64_t> per_aggressor;
  for (const auto& [key, ns] : blame_) {
    if (key.victim != victim) continue;
    if (key.aggressor == victim || key.aggressor < 0) continue;
    per_aggressor[key.aggressor] += ns;
  }
  std::int64_t best = -1;
  std::uint64_t best_ns = 0;
  for (const auto& [aggressor, ns] : per_aggressor) {
    if (ns > best_ns) {  // ties keep the smaller tenant id (map order)
      best = aggressor;
      best_ns = ns;
    }
  }
  return best;
}

void Ledger::export_metrics(Registry& registry) const {
  std::map<std::pair<std::uint8_t, std::int64_t>, Totals> rollup;
  for (const auto& [key, c] : cells_) {
    Totals& t = rollup[{key.kind, key.tenant}];
    t.busy_ns += c.busy_ns;
    t.wait_ns += c.wait_ns;
    t.bytes += c.bytes;
  }
  for (const auto& [key, t] : rollup) {
    const std::string labels =
        std::string("kind=") + kKindNames[key.first] +
        ",tenant=" + std::to_string(key.second);
    if (t.busy_ns > 0) registry.counter("ledger.busy_ns", labels).inc(t.busy_ns);
    if (t.wait_ns > 0) registry.counter("ledger.wait_ns", labels).inc(t.wait_ns);
    if (t.bytes > 0) registry.counter("ledger.bytes", labels).inc(t.bytes);
  }
  std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> matrix;
  for (const auto& [key, ns] : blame_) {
    matrix[{key.aggressor, key.victim}] += ns;
  }
  for (const auto& [key, ns] : matrix) {
    registry
        .counter("ledger.blame_ns",
                 "aggressor=" + std::to_string(key.first) +
                     ",victim=" + std::to_string(key.second))
        .inc(ns);
  }
}

std::string Ledger::to_json() const {
  std::string out = "{\"ledger\":{";
  {
    const Totals t = totals();
    out += "\"totals\":{";
    bool first = true;
    append_kv(out, "busy_ns", t.busy_ns, &first);
    append_kv(out, "wait_ns", t.wait_ns, &first);
    append_kv(out, "bytes", t.bytes, &first);
    out += "},";
  }
  {
    std::map<std::pair<std::uint8_t, std::int64_t>, Totals> rollup;
    for (const auto& [key, c] : cells_) {
      Totals& t = rollup[{key.kind, key.tenant}];
      t.busy_ns += c.busy_ns;
      t.wait_ns += c.wait_ns;
      t.bytes += c.bytes;
    }
    out += "\"tenants\":[";
    bool first_row = true;
    for (const auto& [key, t] : rollup) {
      if (!first_row) out += ',';
      first_row = false;
      out += '{';
      bool first = true;
      append_kv_s(out, "kind", kKindNames[key.first], &first);
      append_kv_i(out, "tenant", key.second, &first);
      append_kv(out, "busy_ns", t.busy_ns, &first);
      append_kv(out, "wait_ns", t.wait_ns, &first);
      append_kv(out, "bytes", t.bytes, &first);
      out += '}';
    }
    out += "],";
  }
  {
    out += "\"resources\":[";
    bool first_row = true;
    for (const auto& [key, c] : cells_) {
      if (!first_row) out += ',';
      first_row = false;
      out += '{';
      bool first = true;
      append_kv_s(out, "kind", kKindNames[key.kind], &first);
      append_kv_s(out, "resource", key.resource, &first);
      append_kv_i(out, "tenant", key.tenant, &first);
      append_kv(out, "busy_ns", c.busy_ns, &first);
      append_kv(out, "wait_ns", c.wait_ns, &first);
      append_kv(out, "bytes", c.bytes, &first);
      out += '}';
    }
    out += "],";
  }
  {
    out += "\"blame\":[";
    bool first_row = true;
    for (const auto& [key, ns] : blame_) {
      if (!first_row) out += ',';
      first_row = false;
      out += '{';
      bool first = true;
      append_kv_s(out, "kind", kKindNames[key.kind], &first);
      append_kv_s(out, "resource", key.resource, &first);
      append_kv_i(out, "aggressor", key.aggressor, &first);
      append_kv_i(out, "victim", key.victim, &first);
      append_kv(out, "ns", ns, &first);
      out += '}';
    }
    out += "],";
  }
  {
    std::map<std::pair<std::int64_t, std::int64_t>, std::uint64_t> matrix;
    for (const auto& [key, ns] : blame_) {
      matrix[{key.aggressor, key.victim}] += ns;
    }
    out += "\"blame_matrix\":[";
    bool first_row = true;
    for (const auto& [key, ns] : matrix) {
      if (!first_row) out += ',';
      first_row = false;
      out += '{';
      bool first = true;
      append_kv_i(out, "aggressor", key.first, &first);
      append_kv_i(out, "victim", key.second, &first);
      append_kv(out, "ns", ns, &first);
      out += '}';
    }
    out += "]";
  }
  out += "}}\n";
  return out;
}

std::string Ledger::to_csv() const {
  std::string out =
      "record,kind,resource,tenant,aggressor,victim,busy_ns,wait_ns,bytes\n";
  char buf[128];
  for (const auto& [key, c] : cells_) {
    std::snprintf(buf, sizeof(buf),
                  ",%" PRId64 ",,,%" PRIu64 ",%" PRIu64 ",%" PRIu64 "\n",
                  key.tenant, c.busy_ns, c.wait_ns, c.bytes);
    out += "cell,";
    out += kKindNames[key.kind];
    out += ',';
    out += key.resource;
    out += buf;
  }
  for (const auto& [key, ns] : blame_) {
    std::snprintf(buf, sizeof(buf),
                  ",,%" PRId64 ",%" PRId64 ",,%" PRIu64 ",\n", key.aggressor,
                  key.victim, ns);
    out += "blame,";
    out += kKindNames[key.kind];
    out += ',';
    out += key.resource;
    out += buf;
  }
  return out;
}

std::string Ledger::table(std::size_t max_rows) const {
  std::string out;
  out += "  interference (queueing imposed, aggressor -> victim)\n";
  out += "  aggressor   victim      kind     blame_us\n";
  std::size_t shown = 0;
  char buf[96];
  for (const BlameRow& r : blame_rows()) {
    if (r.aggressor == r.victim) continue;  // self-queueing: report last
    if (shown++ >= max_rows) break;
    std::snprintf(buf, sizeof(buf), "  %-11" PRId64 " %-11" PRId64 " %-8s %12.1f\n",
                  r.aggressor, r.victim, to_string(r.kind),
                  static_cast<double>(r.ns) / 1e3);
    out += buf;
  }
  if (shown == 0) out += "  (no cross-tenant interference recorded)\n";
  return out;
}

void Ledger::absorb(const Ledger& other) {
  for (const auto& [key, c] : other.cells_) {
    Totals& t = cells_[key];
    t.busy_ns += c.busy_ns;
    t.wait_ns += c.wait_ns;
    t.bytes += c.bytes;
  }
  for (const auto& [key, ns] : other.blame_) blame_[key] += ns;
}

void Ledger::reset() {
  cells_.clear();
  blame_.clear();
  live_.clear();
}

LedgerSession::LedgerSession(Ledger& ledger)
    : ledger_(ledger), prev_(sim::install_busy_observer(&ledger)) {
  ledger_.set_next(prev_);
  ledger_.set_enabled(true);
}

LedgerSession::~LedgerSession() {
  sim::install_busy_observer(prev_);
  ledger_.set_next(nullptr);
  ledger_.set_enabled(false);
}

}  // namespace pd::obs
