#include "obs/profiler.hpp"

#include <fstream>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace pd::obs {

void Profiler::on_busy(std::string_view resource,
                       const sim::ProfileFrame& frame,
                       sim::Duration scaled_ns) {
  if (scaled_ns <= 0) return;
  const auto ns = static_cast<std::uint64_t>(scaled_ns);
  std::string key;
  key.reserve(resource.size() + frame.component.size() +
              frame.detail.size() + 16);
  key.append(resource);
  key.push_back(';');
  key.append(frame.component);
  key.append(";tenant:");
  key.append(frame.tenant < 0 ? "-" : std::to_string(frame.tenant));
  key.push_back(';');
  key.append(frame.detail.empty() ? std::string_view{"-"} : frame.detail);
  folded_[key] += ns;
  by_resource_[std::string(resource)] += ns;
  total_ns_ += ns;
}

std::uint64_t Profiler::resource_ns(std::string_view resource) const {
  auto it = by_resource_.find(std::string(resource));
  return it == by_resource_.end() ? 0 : it->second;
}

std::uint64_t Profiler::resource_prefix_ns(std::string_view prefix) const {
  std::uint64_t total = 0;
  for (auto it = by_resource_.lower_bound(std::string(prefix));
       it != by_resource_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    total += it->second;
  }
  return total;
}

std::string Profiler::to_collapsed() const {
  std::string out;
  for (const auto& [key, ns] : folded_) {
    out += key;
    out.push_back(' ');
    out += std::to_string(ns);
    out.push_back('\n');
  }
  return out;
}

void Profiler::write_collapsed(const std::string& path) const {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_collapsed();
}

void Profiler::export_folded(Registry& reg) const {
  // Aggregate resources away: the registry summary answers "who burned the
  // CPU" per (component, tenant); the full per-core split stays in the
  // collapsed-stack export.
  std::map<std::string, std::uint64_t> by_frame;
  for (const auto& [key, ns] : folded_) {
    // key = resource;component;tenant:T;detail
    const auto first = key.find(';');
    const auto second = key.find(';', first + 1);
    const std::string component = key.substr(first + 1, second - first - 1);
    const auto third = key.find(';', second + 1);
    const std::string tenant = key.substr(second + 8, third - second - 8);
    by_frame["component=" + component + ",tenant=" + tenant] += ns;
  }
  for (const auto& [labels, ns] : by_frame) {
    reg.counter("profile.busy_ns", labels).set(ns);
  }
  reg.counter("profile.total_busy_ns").set(total_ns_);
}

void Profiler::absorb(Profiler& other) {
  for (const auto& [key, ns] : other.folded_) folded_[key] += ns;
  for (const auto& [key, ns] : other.by_resource_) by_resource_[key] += ns;
  total_ns_ += other.total_ns_;
  other.reset();
}

void Profiler::reset() {
  folded_.clear();
  by_resource_.clear();
  total_ns_ = 0;
}

}  // namespace pd::obs
