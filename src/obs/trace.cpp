#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <map>

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace pd::obs {

TraceContext Tracer::start_trace(std::string_view track, sim::TimePoint now) {
  ++traces_started_;
  if (sample_every_ == 0 ||
      (traces_started_ - 1) % sample_every_ != 0) {
    return {};  // unsampled: trace_id 0, every hop skips it
  }
  TraceContext ctx;
  ctx.trace_id = next_trace_id_++;
  ctx.root_span = begin_span(ctx.trace_id, 0, "request", track, now);
  ctx.cur_span = ctx.root_span;
  return ctx;
}

std::uint32_t Tracer::begin_span(std::uint64_t trace_id, std::uint32_t parent,
                                 std::string_view name, std::string_view track,
                                 sim::TimePoint now) {
  PD_CHECK(trace_id != 0, "begin_span on an unsampled trace");
  SpanRecord rec;
  rec.trace_id = trace_id;
  rec.span_id = next_span_id_++;
  rec.parent_id = parent;
  rec.name = std::string(name);
  rec.track = std::string(track);
  rec.begin_ns = now;
  spans_.push_back(std::move(rec));
  return spans_.back().span_id;
}

void Tracer::end_span(std::uint32_t span_id, sim::TimePoint now) {
  if (span_id == 0) return;
  // Spans close in roughly the order they open; scan from the tail.
  for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
    if (it->span_id != span_id) continue;
    if (it->closed()) return;  // double-close is a no-op
    PD_CHECK(now >= it->begin_ns, "span \"" << it->name
                                            << "\" closed before it began");
    it->end_ns = now;
    if (registry_ != nullptr) {
      registry_->histogram("hop." + it->name).record(it->duration());
    }
    return;
  }
  // Unknown id. On a shard tracer the begin likely lives on another shard:
  // remember the end for post-merge resolution. Otherwise (e.g. mixed
  // baseline/palladium runs) ignore, as producers may outrun consumers.
  if (collect_foreign_ends_) foreign_ends_.push_back({span_id, now});
}

void Tracer::set_shard(std::uint32_t k) {
  next_span_id_ = (k << 28) | 1u;
  next_trace_id_ = (static_cast<std::uint64_t>(k) << 56) | 1u;
  collect_foreign_ends_ = true;
}

void Tracer::absorb(Tracer& other) {
  spans_.insert(spans_.end(), std::make_move_iterator(other.spans_.begin()),
                std::make_move_iterator(other.spans_.end()));
  foreign_ends_.insert(foreign_ends_.end(), other.foreign_ends_.begin(),
                       other.foreign_ends_.end());
  traces_started_ += other.traces_started_;
  other.spans_.clear();
  other.foreign_ends_.clear();
}

void Tracer::resolve_foreign_ends() {
  for (const ForeignEnd& fe : foreign_ends_) {
    for (auto it = spans_.rbegin(); it != spans_.rend(); ++it) {
      if (it->span_id != fe.span_id) continue;
      if (it->closed()) break;
      PD_CHECK(fe.end_ns >= it->begin_ns,
               "span \"" << it->name << "\" closed before it began");
      it->end_ns = fe.end_ns;
      if (registry_ != nullptr) {
        registry_->histogram("hop." + it->name).record(it->duration());
      }
      break;
    }
  }
  foreign_ends_.clear();
}

std::size_t Tracer::open_spans() const {
  std::size_t n = 0;
  for (const auto& s : spans_) {
    if (!s.closed()) ++n;
  }
  return n;
}

std::string Tracer::to_chrome_json() const {
  // Assign tid numbers per track in first-appearance order so the export is
  // stable run-to-run.
  std::map<std::string, int> track_tid;
  std::vector<std::string> track_order;
  for (const auto& s : spans_) {
    if (track_tid.emplace(s.track, 0).second) track_order.push_back(s.track);
  }
  int tid = 1;
  for (const auto& t : track_order) track_tid[t] = tid++;

  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  char buf[256];
  for (const auto& t : track_order) {
    std::snprintf(buf, sizeof buf,
                  "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                  "\"name\":\"thread_name\",\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",\n", track_tid[t], t.c_str());
    out += buf;
    first = false;
  }
  for (const auto& s : spans_) {
    if (!s.closed()) continue;
    // Chrome trace events use microseconds; keep sub-us precision.
    std::snprintf(
        buf, sizeof buf,
        "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":\"%s\","
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":%llu,"
        "\"span_id\":%u,\"parent_id\":%u}}",
        first ? "" : ",\n", track_tid[s.track], s.name.c_str(),
        static_cast<double>(s.begin_ns) / 1e3,
        static_cast<double>(s.duration()) / 1e3,
        static_cast<unsigned long long>(s.trace_id), s.span_id, s.parent_id);
    out += buf;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_chrome_json();
}

void Tracer::reset() {
  traces_started_ = 0;
  next_trace_id_ = 1;
  next_span_id_ = 1;
  spans_.clear();
  foreign_ends_.clear();
}

}  // namespace pd::obs
