#include "obs/runcompare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace pd::obs {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    PD_CHECK(pos_ == text_.size(),
             "trailing garbage at byte " << pos_ << " of JSON input");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    std::ostringstream oss;
    oss << what << " at byte " << pos_ << " of JSON input";
    throw CheckFailure(oss.str());
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    JsonValue v;
    if (c == '{') {
      v.kind = JsonValue::Kind::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        v.members.emplace_back(std::move(key), parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.kind = JsonValue::Kind::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      while (true) {
        v.elements.push_back(parse_value());
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      v.kind = JsonValue::Kind::kBool;
      v.boolean = false;
      return v;
    }
    if (consume_literal("null")) return v;
    if (c == '-' || (c >= '0' && c <= '9')) {
      const char* begin = text_.data() + pos_;
      char* end = nullptr;
      v.kind = JsonValue::Kind::kNumber;
      v.number = std::strtod(begin, &end);
      if (end == begin) fail("malformed number");
      pos_ += static_cast<std::size_t>(end - begin);
      return v;
    }
    fail("unexpected character");
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair recombination; our own
          // exporters never emit astral-plane characters).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void flatten_into(const JsonValue& v, const std::string& path,
                  std::map<std::string, FlatValue>& out) {
  switch (v.kind) {
    case JsonValue::Kind::kObject:
      if (v.members.empty()) {
        out[path.empty() ? "(root)" : path] = FlatValue{false, 0.0, "{}"};
        return;
      }
      for (const auto& [key, member] : v.members) {
        flatten_into(member, path.empty() ? key : path + "." + key, out);
      }
      return;
    case JsonValue::Kind::kArray:
      if (v.elements.empty()) {
        out[path.empty() ? "(root)" : path] = FlatValue{false, 0.0, "[]"};
        return;
      }
      for (std::size_t i = 0; i < v.elements.size(); ++i) {
        flatten_into(v.elements[i], path + "[" + std::to_string(i) + "]", out);
      }
      return;
    case JsonValue::Kind::kNumber:
      out[path] = FlatValue{true, v.number, {}};
      return;
    case JsonValue::Kind::kString:
      out[path] = FlatValue{false, 0.0, v.string};
      return;
    case JsonValue::Kind::kBool:
      out[path] = FlatValue{false, 0.0, v.boolean ? "true" : "false"};
      return;
    case JsonValue::Kind::kNull:
      out[path] = FlatValue{false, 0.0, "null"};
      return;
  }
}

bool key_selected(const std::string& key, const DiffOptions& opt) {
  for (const std::string& ig : opt.ignore) {
    if (key.find(ig) != std::string::npos) return false;
  }
  if (opt.only.empty()) return true;
  for (const std::string& on : opt.only) {
    if (key.find(on) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue json_parse_file(const std::string& path) {
  std::ifstream f(path);
  PD_CHECK(f.good(), "cannot open " << path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return json_parse(ss.str());
}

std::map<std::string, FlatValue> flatten_json(const JsonValue& v) {
  std::map<std::string, FlatValue> out;
  flatten_into(v, {}, out);
  return out;
}

DiffReport diff_runs(const JsonValue& a, const JsonValue& b,
                     const DiffOptions& opt) {
  const auto fa = flatten_json(a);
  const auto fb = flatten_json(b);
  DiffReport report;

  for (const auto& [key, va] : fa) {
    if (!key_selected(key, opt)) continue;
    const auto it = fb.find(key);
    if (it == fb.end()) {
      report.findings.push_back({key, "missing from candidate", 0.0, 0.0});
      continue;
    }
    ++report.compared;
    const FlatValue& vb = it->second;
    if (va.is_number != vb.is_number) {
      report.findings.push_back({key, "type changed", 0.0, 0.0});
      continue;
    }
    if (!va.is_number) {
      if (va.text != vb.text) {
        report.findings.push_back(
            {key, "\"" + va.text + "\" -> \"" + vb.text + "\"", 0.0, 0.0});
      }
      continue;
    }
    const double delta = std::fabs(va.number - vb.number);
    if (delta == 0.0) continue;
    const double scale = std::max(std::fabs(va.number), std::fabs(vb.number));
    const double rel = scale > 0.0 ? delta / scale : 0.0;
    if (delta <= opt.abs_tol || rel <= opt.rel_tol) continue;
    char detail[128];
    std::snprintf(detail, sizeof detail, "%.6g -> %.6g (%+.2f%%)", va.number,
                  vb.number,
                  (vb.number - va.number) / (scale > 0 ? scale : 1.0) * 100.0);
    report.findings.push_back({key, detail, delta, rel});
  }
  for (const auto& [key, vb] : fb) {
    (void)vb;
    if (!key_selected(key, opt)) continue;
    if (fa.find(key) == fa.end()) {
      report.findings.push_back({key, "missing from baseline", 0.0, 0.0});
    }
  }
  return report;
}

std::string DiffReport::format(std::size_t max_lines) const {
  std::string out;
  std::vector<const DiffFinding*> order;
  order.reserve(findings.size());
  for (const DiffFinding& f : findings) order.push_back(&f);
  std::stable_sort(order.begin(), order.end(),
                   [](const DiffFinding* x, const DiffFinding* y) {
                     const bool xs = x->delta_abs == 0.0 && x->delta_rel == 0.0;
                     const bool ys = y->delta_abs == 0.0 && y->delta_rel == 0.0;
                     if (xs != ys) return xs;  // structural first
                     return x->delta_rel > y->delta_rel;
                   });
  std::size_t shown = 0;
  for (const DiffFinding* f : order) {
    if (shown++ >= max_lines) {
      out += "  ... " + std::to_string(order.size() - max_lines) +
             " more finding(s)\n";
      break;
    }
    out += "  " + f->key + ": " + f->detail + "\n";
  }
  char tail[96];
  std::snprintf(tail, sizeof tail, "%zu leaves compared, %zu difference(s)\n",
                compared, findings.size());
  out += tail;
  return out;
}

}  // namespace pd::obs
