#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace pd::obs {

std::string fmt_double(double v) {
  if (std::isnan(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string csv_field(std::string_view s) {
  if (s.find_first_of(",\"\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"' && cur.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

namespace {

void append_histogram_json(std::string& out, const sim::LatencyHistogram& h) {
  out += "{\"count\":" + std::to_string(h.count());
  out += ",\"min_ns\":" + std::to_string(h.min());
  out += ",\"max_ns\":" + std::to_string(h.max());
  out += ",\"mean_ns\":" + fmt_double(h.mean_ns());
  out += ",\"p50_ns\":" + std::to_string(h.quantile(0.5));
  out += ",\"p90_ns\":" + std::to_string(h.quantile(0.9));
  out += ",\"p99_ns\":" + std::to_string(h.quantile(0.99));
  out += ",\"p999_ns\":" + std::to_string(h.quantile(0.999));
  out += "}";
}

}  // namespace

std::string metric_key(std::string_view name, std::string_view labels) {
  PD_CHECK(!name.empty(), "metric needs a name");
  if (labels.empty()) return std::string(name);
  std::string key(name);
  key += '{';
  key += labels;
  key += '}';
  return key;
}

Registry::Instrument& Registry::at_or_create(std::string_view name,
                                             std::string_view labels) {
  return instruments_[metric_key(name, labels)];
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  Instrument& i = at_or_create(name, labels);
  PD_CHECK(!i.gauge && !i.histogram && !i.probe,
           "metric " << metric_key(name, labels) << " is not a counter");
  if (!i.counter) i.counter = std::make_unique<Counter>();
  return *i.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  Instrument& i = at_or_create(name, labels);
  PD_CHECK(!i.counter && !i.histogram && !i.probe,
           "metric " << metric_key(name, labels) << " is not a gauge");
  if (!i.gauge) i.gauge = std::make_unique<Gauge>();
  return *i.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels) {
  Instrument& i = at_or_create(name, labels);
  PD_CHECK(!i.counter && !i.gauge && !i.probe,
           "metric " << metric_key(name, labels) << " is not a histogram");
  if (!i.histogram) i.histogram = std::make_unique<Histogram>();
  return *i.histogram;
}

void Registry::probe(std::string_view name, std::string_view labels,
                     std::function<double()> fn) {
  PD_CHECK(fn != nullptr, "probe needs a callback");
  Instrument& i = at_or_create(name, labels);
  PD_CHECK(!i.counter && !i.gauge && !i.histogram && !i.probe,
           "metric " << metric_key(name, labels) << " already registered");
  i.probe = std::move(fn);
}

bool Registry::has(std::string_view name, std::string_view labels) const {
  return instruments_.find(metric_key(name, labels)) != instruments_.end();
}

const Counter& Registry::counter_at(std::string_view name,
                                    std::string_view labels) const {
  auto it = instruments_.find(metric_key(name, labels));
  PD_CHECK(it != instruments_.end() && it->second.counter,
           "no counter " << metric_key(name, labels));
  return *it->second.counter;
}

const Histogram& Registry::histogram_at(std::string_view name,
                                        std::string_view labels) const {
  auto it = instruments_.find(metric_key(name, labels));
  PD_CHECK(it != instruments_.end() && it->second.histogram,
           "no histogram " << metric_key(name, labels));
  return *it->second.histogram;
}

void Registry::reset() { instruments_.clear(); }

void Registry::merge_from(const Registry& other) {
  for (const auto& [key, inst] : other.instruments_) {
    // Split the canonical key back into (name, labels).
    std::string_view name = key;
    std::string_view labels;
    if (const auto brace = key.find('{'); brace != std::string::npos) {
      name = std::string_view(key).substr(0, brace);
      labels = std::string_view(key).substr(brace + 1,
                                            key.size() - brace - 2);
    }
    if (inst.counter) {
      counter(name, labels).inc(inst.counter->value());
    } else if (inst.gauge) {
      gauge(name, labels).add(inst.gauge->value());
    } else if (inst.histogram) {
      histogram(name, labels).merge(*inst.histogram);
    }
    // Probes: skipped — they sample live objects owned elsewhere.
  }
}

std::string Registry::to_json() const {
  std::string out = "{\n";
  bool first = true;
  for (const auto& [key, inst] : instruments_) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + json_escape(key) + "\": ";
    if (inst.counter) {
      out += std::to_string(inst.counter->value());
    } else if (inst.gauge) {
      out += fmt_double(inst.gauge->value());
    } else if (inst.probe) {
      out += fmt_double(inst.probe());
    } else if (inst.histogram) {
      append_histogram_json(out, inst.histogram->hist());
    } else {
      out += "null";
    }
  }
  out += "\n}\n";
  return out;
}

std::string Registry::to_csv() const {
  std::string out = "key,kind,count,min_ns,max_ns,mean,p50_ns,p90_ns,p99_ns,p999_ns\n";
  for (const auto& [key, inst] : instruments_) {
    // Keys carry caller-supplied labels; quote so a comma inside
    // `{a=1,b=2}` cannot shift the remaining columns.
    out += csv_field(key);
    if (inst.counter) {
      out += ",counter,,,," + std::to_string(inst.counter->value()) + ",,,,";
    } else if (inst.gauge) {
      out += ",gauge,,,," + fmt_double(inst.gauge->value()) + ",,,,";
    } else if (inst.probe) {
      out += ",probe,,,," + fmt_double(inst.probe()) + ",,,,";
    } else if (inst.histogram) {
      const auto& h = inst.histogram->hist();
      out += ",histogram," + std::to_string(h.count()) + "," +
             std::to_string(h.min()) + "," + std::to_string(h.max()) + "," +
             fmt_double(h.mean_ns()) + "," + std::to_string(h.quantile(0.5)) +
             "," + std::to_string(h.quantile(0.9)) + "," +
             std::to_string(h.quantile(0.99)) + "," +
             std::to_string(h.quantile(0.999));
    }
    out += "\n";
  }
  return out;
}

void Registry::write_json(const std::string& path) const {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_json();
}

void Registry::write_csv(const std::string& path) const {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << to_csv();
}

}  // namespace pd::obs
