#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/check.hpp"

namespace pd::obs {

namespace {
const std::string kQueueHopName = "queue";
}  // namespace

const char* to_string(HopClass cls) {
  switch (cls) {
    case HopClass::kService: return "service";
    case HopClass::kQueue: return "queue";
    case HopClass::kTransport: return "transport";
    case HopClass::kDma: return "dma";
    case HopClass::kPolicy: return "policy";
    case HopClass::kRdma: return "rdma";
  }
  return "?";
}

HopClass classify_hop(std::string_view name) {
  if (name == "queue") return HopClass::kQueue;
  if (name == "fabric" || name == "retransmit") return HopClass::kTransport;
  if (name == "soc_dma") return HopClass::kDma;
  // One-sided store ops: remote bytes fetched/updated by NIC DMA with no
  // remote CPU — a class of their own so the ablation can see the shift
  // from service+transport time into pure rdma time.
  if (name == "rdma_read" || name == "rdma_cas" || name == "rdma_denied") {
    return HopClass::kRdma;
  }
  // Deliberate control-plane drops: admission sheds and expired deadlines
  // are policy, not faults — attribution must not lump them into service.
  if (name == "shed_admission" || name == "deadline_expired") {
    return HopClass::kPolicy;
  }
  return HopClass::kService;
}

std::vector<ReadSpan> to_read_spans(const std::vector<SpanRecord>& spans) {
  std::vector<ReadSpan> out;
  out.reserve(spans.size());
  for (const SpanRecord& s : spans) {
    if (!s.closed()) continue;
    ReadSpan r;
    r.name = s.name;
    r.track = s.track;
    r.trace_id = s.trace_id;
    r.span_id = s.span_id;
    r.parent_id = s.parent_id;
    r.begin_ns = s.begin_ns;
    r.dur_ns = s.end_ns - s.begin_ns;
    out.push_back(std::move(r));
  }
  return out;
}

std::optional<RequestPath> critical_path(const std::vector<ReadSpan>& trace) {
  const ReadSpan* root = nullptr;
  for (const ReadSpan& s : trace) {
    if (s.parent_id != 0) continue;
    if (root == nullptr || (s.name == "request" && root->name != "request")) {
      root = &s;
    }
  }
  if (root == nullptr) return std::nullopt;

  RequestPath path;
  path.trace_id = root->trace_id;
  path.total_ns = root->dur_ns;

  // Clamp every other span of the trace to the root interval, then run a
  // sweep over the elementary intervals between span boundaries. Each
  // elementary interval is attributed to the covering span with the latest
  // begin (ties: larger span id, i.e. the later-opened span); intervals no
  // span covers are queueing.
  struct Clamped {
    const ReadSpan* s;
    std::int64_t b, e;
  };
  std::vector<Clamped> covers;
  std::vector<std::int64_t> bounds{root->begin_ns, root->end_ns()};
  for (const ReadSpan& s : trace) {
    if (&s == root) continue;
    if (s.name == "retransmit") ++path.retransmit_spans;
    const std::int64_t b = std::max(s.begin_ns, root->begin_ns);
    const std::int64_t e = std::min(s.end_ns(), root->end_ns());
    if (e <= b) continue;
    covers.push_back({&s, b, e});
    bounds.push_back(b);
    bounds.push_back(e);
  }
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    const std::int64_t b = bounds[i];
    const std::int64_t e = bounds[i + 1];
    const Clamped* winner = nullptr;
    for (const Clamped& c : covers) {
      if (c.b > b || c.e < e) continue;
      if (winner == nullptr || c.s->begin_ns > winner->s->begin_ns ||
          (c.s->begin_ns == winner->s->begin_ns &&
           c.s->span_id > winner->s->span_id)) {
        winner = &c;
      }
    }
    const std::string& hop =
        winner != nullptr ? winner->s->name : kQueueHopName;
    if (!path.segments.empty() && path.segments.back().hop == hop) {
      path.segments.back().ns += e - b;
    } else {
      path.segments.push_back(PathSegment{hop, classify_hop(hop), e - b});
    }
  }
  return path;
}

namespace {
// Exact order statistic: the value at ceil(q*N)-th position (1-based) of the
// ascending-sorted totals, so reported quantiles are actual observed
// requests, never interpolations.
std::size_t quantile_index(double q, std::size_t n) {
  PD_CHECK(n > 0, "quantile over empty set");
  const auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(n)));
  return std::min(std::max<std::size_t>(rank, 1), n) - 1;
}
}  // namespace

CritPathReport analyze(const std::vector<ReadSpan>& spans, double quantile) {
  CritPathReport rep;
  rep.quantile = quantile;

  std::map<std::uint64_t, std::vector<ReadSpan>> by_trace;
  for (const ReadSpan& s : spans) {
    if (s.trace_id == 0) continue;
    by_trace[s.trace_id].push_back(s);
  }

  std::vector<RequestPath> paths;
  paths.reserve(by_trace.size());
  for (const auto& [id, trace] : by_trace) {
    auto path = critical_path(trace);
    if (!path.has_value()) {
      ++rep.incomplete;
      continue;
    }
    paths.push_back(std::move(*path));
  }
  rep.traces = paths.size();
  if (paths.empty()) return rep;

  // (total, trace_id) pairs: sorting by total with trace-id tie-break makes
  // the chosen quantile request deterministic even under exact ties.
  std::vector<std::pair<std::int64_t, std::uint64_t>> totals;
  totals.reserve(paths.size());
  for (const RequestPath& p : paths) totals.emplace_back(p.total_ns, p.trace_id);
  std::sort(totals.begin(), totals.end());
  rep.p50_total_ns = totals[quantile_index(0.50, totals.size())].first;
  const auto& [q_total, q_id] = totals[quantile_index(quantile, totals.size())];
  rep.q_total_ns = q_total;
  rep.q_trace_id = q_id;

  for (const RequestPath& p : paths) {
    const bool is_q = p.trace_id == rep.q_trace_id;
    if (is_q) rep.q_breakdown = p.segments;
    rep.retransmit_spans += p.retransmit_spans;
    std::map<std::string, std::int64_t> in_path;
    for (const PathSegment& seg : p.segments) {
      HopAttribution& hop = rep.hops[seg.hop];
      hop.cls = seg.cls;
      ++hop.segments;
      hop.total_ns += seg.ns;
      if (is_q) hop.q_ns += seg.ns;
      rep.class_ns[static_cast<std::size_t>(seg.cls)] += seg.ns;
      in_path[seg.hop] += seg.ns;
    }
    for (const auto& [hop, ns] : in_path) ++rep.hops[hop].traces;
  }
  return rep;
}

std::string report_json(const CritPathReport& r) {
  // Integer fields only (quantile as basis points) so the serialization is
  // byte-stable across compilers and thread counts.
  std::string out = "{\n";
  out += "  \"quantile_bp\": " +
         std::to_string(static_cast<std::int64_t>(
             std::llround(r.quantile * 10000.0))) +
         ",\n";
  out += "  \"traces\": " + std::to_string(r.traces) + ",\n";
  out += "  \"incomplete\": " + std::to_string(r.incomplete) + ",\n";
  out += "  \"retransmit_spans\": " + std::to_string(r.retransmit_spans) +
         ",\n";
  out += "  \"p50_total_ns\": " + std::to_string(r.p50_total_ns) + ",\n";
  out += "  \"q_total_ns\": " + std::to_string(r.q_total_ns) + ",\n";
  out += "  \"q_trace_id\": " + std::to_string(r.q_trace_id) + ",\n";
  out += "  \"q_breakdown\": [";
  bool first = true;
  for (const PathSegment& seg : r.q_breakdown) {
    if (!first) out += ", ";
    first = false;
    out += "{\"hop\": \"" + seg.hop + "\", \"class\": \"" +
           to_string(seg.cls) + "\", \"ns\": " + std::to_string(seg.ns) + "}";
  }
  out += "],\n";
  out += "  \"class_ns\": {";
  for (std::size_t c = 0; c < 6; ++c) {
    if (c != 0) out += ", ";
    out += "\"" + std::string(to_string(static_cast<HopClass>(c))) +
           "\": " + std::to_string(r.class_ns[c]);
  }
  out += "},\n";
  out += "  \"hops\": {";
  first = true;
  for (const auto& [name, hop] : r.hops) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + name + "\": {\"class\": \"" + to_string(hop.cls) +
           "\", \"traces\": " + std::to_string(hop.traces) +
           ", \"segments\": " + std::to_string(hop.segments) +
           ", \"total_ns\": " + std::to_string(hop.total_ns) +
           ", \"q_ns\": " + std::to_string(hop.q_ns) + "}";
  }
  out += r.hops.empty() ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string report_csv(const CritPathReport& r) {
  std::string out = "hop,class,traces,segments,total_ns,q_ns\n";
  for (const auto& [name, hop] : r.hops) {
    out += name;
    out += ',';
    out += to_string(hop.cls);
    out += ',' + std::to_string(hop.traces);
    out += ',' + std::to_string(hop.segments);
    out += ',' + std::to_string(hop.total_ns);
    out += ',' + std::to_string(hop.q_ns);
    out += '\n';
  }
  return out;
}

std::string report_table(const CritPathReport& r) {
  char buf[192];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "critical-path attribution: %llu requests (%llu incomplete), "
                "p50 %.3f ms, p%g %.3f ms (trace %llu)\n",
                static_cast<unsigned long long>(r.traces),
                static_cast<unsigned long long>(r.incomplete),
                static_cast<double>(r.p50_total_ns) / 1e6, r.quantile * 100.0,
                static_cast<double>(r.q_total_ns) / 1e6,
                static_cast<unsigned long long>(r.q_trace_id));
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-14s %-10s %8s %12s %12s %7s\n", "hop",
                "class", "traces", "total ms", "p99 ns", "p99 %");
  out += buf;
  for (const auto& [name, hop] : r.hops) {
    const double pct = r.q_total_ns > 0 ? 100.0 * static_cast<double>(hop.q_ns) /
                                              static_cast<double>(r.q_total_ns)
                                        : 0.0;
    std::snprintf(buf, sizeof buf, "  %-14s %-10s %8llu %12.3f %12lld %6.1f%%\n",
                  name.c_str(), to_string(hop.cls),
                  static_cast<unsigned long long>(hop.traces),
                  static_cast<double>(hop.total_ns) / 1e6,
                  static_cast<long long>(hop.q_ns), pct);
    out += buf;
  }
  std::int64_t q_sum = 0;
  for (const PathSegment& seg : r.q_breakdown) q_sum += seg.ns;
  std::snprintf(buf, sizeof buf,
                "  p99 hop sum %lld ns vs end-to-end %lld ns (delta %lld)\n",
                static_cast<long long>(q_sum),
                static_cast<long long>(r.q_total_ns),
                static_cast<long long>(r.q_total_ns - q_sum));
  out += buf;
  if (r.retransmit_spans > 0) {
    out += "  retransmit spans on analyzed paths: " +
           std::to_string(r.retransmit_spans) + "\n";
  }
  return out;
}

void write_report_json(const CritPathReport& r, const std::string& path) {
  std::ofstream f(path);
  PD_CHECK(f.good(), "cannot open " << path << " for writing");
  f << report_json(r);
}

}  // namespace pd::obs
