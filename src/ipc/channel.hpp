// Generic modeled descriptor hop: the building block for every intra-node
// IPC flavour (SK_MSG, Comch variants, loopback TCP). A hop charges CPU
// work to the sender core, delays the descriptor in flight, charges the
// receiver core, then invokes the receiver's handler.
#pragma once

#include <functional>
#include <utility>

#include "mem/descriptor.hpp"
#include "sim/core.hpp"
#include "sim/scheduler.hpp"

namespace pd::ipc {

using DescriptorHandler = std::function<void(const mem::BufferDescriptor&)>;

struct HopParams {
  sim::Duration sender_cost = 0;    ///< reference-ns on the sender's core
  sim::Duration receiver_cost = 0;  ///< reference-ns on the receiver's core
  sim::Duration latency = 0;        ///< in-flight delay (queue-independent)
};

class DescriptorHop {
 public:
  /// Cores may be nullptr when that side's CPU cost is modeled elsewhere.
  DescriptorHop(sim::Scheduler& sched, HopParams params, sim::Core* sender,
                sim::Core* receiver, DescriptorHandler handler)
      : sched_(sched),
        params_(params),
        sender_(sender),
        receiver_(receiver),
        handler_(std::move(handler)) {
    PD_CHECK(handler_ != nullptr, "hop needs a receive handler");
  }

  void send(const mem::BufferDescriptor& d) {
    ++sent_;
    if (sender_ != nullptr && params_.sender_cost > 0) {
      sender_->submit(params_.sender_cost, [this, d] { in_flight(d); });
    } else {
      in_flight(d);
    }
  }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }
  [[nodiscard]] const HopParams& params() const { return params_; }

 private:
  void in_flight(const mem::BufferDescriptor& d) {
    sched_.schedule_after(params_.latency, [this, d] { arrive(d); });
  }

  void arrive(const mem::BufferDescriptor& d) {
    if (receiver_ != nullptr && params_.receiver_cost > 0) {
      receiver_->submit(params_.receiver_cost, [this, d] {
        ++delivered_;
        handler_(d);
      });
    } else {
      ++delivered_;
      handler_(d);
    }
  }

  sim::Scheduler& sched_;
  HopParams params_;
  sim::Core* sender_;
  sim::Core* receiver_;
  DescriptorHandler handler_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace pd::ipc
