// Single-producer single-consumer lock-free ring buffer.
//
// This is the real concurrency primitive underlying the paper's
// token-passing IPC (§3.5.1): descriptor handoff between exactly one
// producer and one consumer needs no locks, only acquire/release ordering.
// Used directly by the Comch-P model and benchmarked in micro_dataplane.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace pd::ipc {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity - 1.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer-side fullness probe (exact from the producer thread). Lets a
  /// caller with a move-only T avoid losing the value to a failed push.
  [[nodiscard]] bool full() const {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return ((head + 1) & mask_) == tail_.load(std::memory_order_acquire);
  }

  /// Producer side. Returns false when full (caller decides: drop or retry).
  bool try_push(T value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_.load(std::memory_order_acquire)) {
      return false;  // full
    }
    slots_[head] = std::move(value);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when the ring is drained.
  std::optional<T> try_pop() {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return std::nullopt;  // empty
    }
    T value = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return value;
  }

  /// Approximate size (exact when called from either endpoint's thread).
  [[nodiscard]] std::size_t size() const {
    const std::size_t head = head_.load(std::memory_order_acquire);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer cursor
};

}  // namespace pd::ipc
