#include "ipc/skmsg.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace pd::ipc {

void SockMap::register_socket(FunctionId fn, sim::Core& rx_core,
                              DescriptorHandler handler) {
  PD_CHECK(handler != nullptr, "socket needs a handler");
  PD_CHECK(sockets_.find(fn) == sockets_.end(),
           "function " << fn << " already in sockmap");
  sockets_.emplace(fn, Socket{&rx_core, std::move(handler)});
}

void SockMap::unregister_socket(FunctionId fn) {
  PD_CHECK(sockets_.erase(fn) == 1, "function " << fn << " not in sockmap");
}

void SockMap::send(FunctionId dest, const mem::BufferDescriptor& d,
                   sim::Core* tx_core) {
  auto it = sockets_.find(dest);
  PD_CHECK(it != sockets_.end(), "sockmap miss for function " << dest);
  Socket& sock = it->second;
  ++messages_;

  auto deliver = [this, &sock, d] {
    sched_.schedule_after(cost::kSkMsgLatencyNs, [&sock, d] {
      // Interrupt-style wakeup on the receiver core, then the handler.
      // Under a backlog the per-event cost inflates (interrupt storms,
      // cache pollution — the receive-livelock regime of Mogul &
      // Ramakrishnan [68] that throttles a CPU-resident network engine
      // shared by many functions, §4.3).
      const sim::Duration backlog = sock.rx_core->backlog();
      const sim::Duration penalty = std::min<sim::Duration>(
          cost::kSkMsgWakeupNs * backlog / 50'000,
          4 * cost::kSkMsgWakeupNs);
      sock.rx_core->submit(cost::kSkMsgWakeupNs + penalty,
                           [&sock, d] { sock.handler(d); });
    });
  };

  if (tx_core != nullptr) {
    tx_core->submit(cost::kSkMsgSendNs, deliver);
  } else {
    deliver();
  }
}

}  // namespace pd::ipc
