// eBPF SK_MSG / sockmap intra-node IPC (§3.5.3, borrowed from SPRIGHT).
//
// Each registered function owns a socket; a BPF_MAP_TYPE_SOCKMAP maps
// function IDs to sockets. send() runs the SK_MSG program on the sender's
// core (sockmap lookup + redirect, bypassing the protocol stack); delivery
// costs an interrupt-style wakeup on the receiver's core — cheap per
// message, but the wakeups are exactly what throttles a CPU-resident
// network engine at high concurrency (§4.3).
#pragma once

#include <memory>
#include <unordered_map>

#include "ipc/channel.hpp"
#include "proto/cost_model.hpp"

namespace pd::ipc {

class SockMap {
 public:
  explicit SockMap(sim::Scheduler& sched) : sched_(sched) {}

  /// Register `fn`'s socket: descriptors delivered to it run `handler`
  /// after the wakeup cost on `rx_core`.
  void register_socket(FunctionId fn, sim::Core& rx_core,
                       DescriptorHandler handler);

  void unregister_socket(FunctionId fn);

  [[nodiscard]] bool has_socket(FunctionId fn) const {
    return sockets_.find(fn) != sockets_.end();
  }

  /// SK_MSG redirect: charge the send-side program to `tx_core` (may be
  /// nullptr when the sender's CPU time is accounted elsewhere) and deliver.
  void send(FunctionId dest, const mem::BufferDescriptor& d,
            sim::Core* tx_core);

  [[nodiscard]] std::uint64_t messages() const { return messages_; }

 private:
  struct Socket {
    sim::Core* rx_core;
    DescriptorHandler handler;
  };

  sim::Scheduler& sched_;
  std::unordered_map<FunctionId, Socket> sockets_;
  std::uint64_t messages_ = 0;
};

}  // namespace pd::ipc
