// Common client-facing surface of every cluster ingress variant, so the
// HTTP load generator (wrk analog) can drive Palladium's gateway and the
// K-/F-Ingress baselines interchangeably (§4.1.3, §4.3).
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/ids.hpp"
#include "sim/core.hpp"

namespace pd::ingress {

class IngressFrontend {
 public:
  virtual ~IngressFrontend() = default;

  /// Attach a client TCP connection originating on `client_node` /
  /// `client_core`. `to_client` receives HTTP response bytes. Returns the
  /// connection id used for sends. The TCP handshake is performed
  /// asynchronously; sends before it completes are rejected.
  virtual int attach_client(NodeId client_node, sim::Core& client_core,
                            std::function<void(std::string_view)> to_client) = 0;

  /// Send serialized HTTP request bytes on an attached connection.
  virtual void client_send(int client, std::string bytes) = 0;

  /// Expose a chain at a URL target (e.g. "/home" -> Home Query).
  virtual void expose_chain(std::string target, std::uint32_t chain_id) = 0;
};

}  // namespace pd::ingress
