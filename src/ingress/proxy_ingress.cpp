#include "ingress/proxy_ingress.hpp"

#include <charconv>
#include <cstring>

#include "core/message.hpp"
#include "proto/cost_model.hpp"

namespace pd::ingress {
namespace {

constexpr sim::Duration kSeriesBucket = 1'000'000'000;  // 1 s

sim::Duration parse_cost(std::size_t bytes) {
  return cost::kHttpParseBaseNs +
         static_cast<sim::Duration>(static_cast<double>(bytes) *
                                    cost::kHttpParsePerByteNs);
}

std::uint64_t read_tag(const proto::HttpHeaders& headers) {
  const auto tag = headers.get("X-Req");
  PD_CHECK(tag.has_value(), "missing X-Req correlation header");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(tag->data(), tag->data() + tag->size(), value);
  PD_CHECK(ec == std::errc{} && ptr == tag->data() + tag->size(),
           "malformed X-Req header");
  return value;
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkerGateway
// ---------------------------------------------------------------------------

WorkerGateway::WorkerGateway(runtime::Cluster& cluster, NodeId node,
                             proto::StackKind stack)
    : cluster_(cluster),
      node_(node),
      stack_(stack),
      core_(cluster.worker(node).assign_core()),
      entry_{0xFFFF2000u + node.value()} {
  // Register as a chain entry so chain tails route responses back here.
  // Tenant is resolved per chain at injection; register under the first
  // tenant the cluster knows (entry registration only needs a valid one).
  cluster_.register_entry(entry_, cluster_.chains().all().begin()->second.tenant,
                          node_, core_,
                          [this](const mem::BufferDescriptor& d) {
                            on_chain_response(d);
                          });
}

void WorkerGateway::bind_uplink(std::function<void(std::string)> to_proxy) {
  to_proxy_ = std::move(to_proxy);
}

void WorkerGateway::on_proxy_bytes(std::string_view bytes) {
  // Second TCP termination + second HTTP parse — the duplicated protocol
  // processing of deferred transport conversion.
  auto data = std::make_shared<std::string>(bytes);
  core_.submit(parse_cost(bytes.size()), [this, data] {
    proto::HttpRequestParser parser;
    auto [status, consumed] = parser.feed(*data);
    PD_CHECK(status == proto::ParseStatus::kComplete,
             "gateway received malformed HTTP: " << parser.error());
    const proto::HttpRequest& req = parser.message();
    const std::uint64_t tag = read_tag(req.headers);

    // Resolve the chain from the target path "/chain/<id>"-agnostically:
    // the proxy rewrote the target to the numeric chain id.
    std::uint32_t chain_id = 0;
    const auto& t = req.target;
    const auto [p, ec] = std::from_chars(t.data() + 1, t.data() + t.size(),
                                         chain_id);
    PD_CHECK(ec == std::errc{} && p == t.data() + t.size(),
             "gateway got unresolvable target " << t);

    const std::uint64_t request_id = next_request_++;
    char tag_buf[24];
    std::snprintf(tag_buf, sizeof tag_buf, "%llu",
                  static_cast<unsigned long long>(tag));
    req_tags_[request_id] = tag_buf;
    const bool ok =
        cluster_.inject_request(entry_, node_, chain_id, request_id, &core_);
    if (!ok) {
      proto::HttpResponse resp;
      resp.status = 503;
      resp.reason = "Overloaded";
      resp.headers.add("X-Req", tag_buf);
      req_tags_.erase(request_id);
      to_proxy_(proto::serialize(resp));
    }
  });
}

void WorkerGateway::on_chain_response(const mem::BufferDescriptor& d) {
  auto& pool = cluster_.worker(node_).memory().by_pool(d.pool).pool();
  const auto actor = mem::actor_function(entry_);
  const auto span = pool.access(d, actor);
  const core::MessageHeader h = core::read_header(span);
  std::string body(reinterpret_cast<const char*>(span.data()) +
                       sizeof(core::MessageHeader),
                   h.payload_len);
  pool.release(d, actor);

  auto it = req_tags_.find(h.request_id);
  PD_CHECK(it != req_tags_.end(), "gateway response for unknown request");
  std::string tag = std::move(it->second);
  req_tags_.erase(it);

  core_.submit(cost::kHttpSerializeNs, [this, body = std::move(body),
                                        tag = std::move(tag)] {
    proto::HttpResponse resp;
    resp.headers.add("X-Req", tag);
    resp.body = body;
    to_proxy_(proto::serialize(resp));
  });
}

// ---------------------------------------------------------------------------
// ProxyIngress
// ---------------------------------------------------------------------------

ProxyIngress::ProxyIngress(runtime::Cluster& cluster, Config config)
    : cluster_(cluster),
      config_(config),
      sched_(cluster.scheduler()),
      cores_(sched_, "proxy-ingress/worker",
             static_cast<std::size_t>(
                 std::max(config.cores, config.autoscale ? config.max_workers
                                                         : config.cores))),
      active_workers_(config.cores),
      response_series_(kSeriesBucket, "proxy-rps"),
      worker_series_(kSeriesBucket, "proxy-workers"),
      useful_cpu_series_(kSeriesBucket, "proxy-useful-cpu") {
  PD_CHECK(config_.cores >= 1, "need at least one ingress core");
  last_busy_.assign(cores_.size(), 0);
  autoscale_busy_.assign(cores_.size(), 0);
}

void ProxyIngress::expose_chain(std::string target, std::uint32_t chain_id) {
  PD_CHECK(cluster_.chains().has(chain_id), "unknown chain " << chain_id);
  PD_CHECK(targets_.emplace(std::move(target), chain_id).second,
           "target already exposed");
}

sim::Core& ProxyIngress::rx_core(int worker) {
  return cores_.core(static_cast<std::size_t>(worker));
}

sim::Core& ProxyIngress::pick_core(int worker) {
  // Kernel stack: the OS scheduler migrates softirq/worker processing to
  // whichever core is least busy. User-level stacks pin each worker's
  // connections to its own core.
  return config_.stack == proto::StackKind::kKernel ? cores_.least_loaded()
                                                    : rx_core(worker);
}

void ProxyIngress::finish_setup() {
  PD_CHECK(!setup_done_, "proxy setup done twice");
  PD_CHECK(!targets_.empty(), "no chains exposed");
  setup_done_ = true;

  if (!cluster_.ethernet().attached(config_.node)) {
    cluster_.ethernet().attach(config_.node);
  }

  // One gateway per worker node hosting a chain's first hop; one TCP
  // uplink per gateway.
  std::unordered_set<NodeId> gateway_nodes;
  for (const auto& [target, chain_id] : targets_) {
    (void)target;
    const auto& chain = cluster_.chains().by_id(chain_id);
    gateway_nodes.insert(cluster_.placement_of(chain.hops.front().fn));
  }
  for (NodeId node : gateway_nodes) {
    auto gw = std::make_unique<WorkerGateway>(cluster_, node,
                                              config_.stack ==
                                                      proto::StackKind::kKernel
                                                  ? proto::StackKind::kKernel
                                                  : proto::StackKind::kFstack);
    WorkerGateway* raw = gw.get();
    gateways_.push_back(std::move(gw));

    proto::TcpEndpoint a;  // proxy side
    a.node = config_.node;
    a.stack = config_.stack;
    if (config_.stack == proto::StackKind::kKernel) {
      a.cores = &cores_;  // RSS across the kernel's cores
    } else {
      a.core = &rx_core(0);
    }
    a.on_message = [this, node](std::string_view bytes) {
      on_gateway_bytes(node, bytes);
    };
    proto::TcpEndpoint b;  // gateway side (on the worker node's CPU)
    b.node = node;
    b.stack = raw->stack();
    b.core = &raw->core();
    b.on_message = [raw](std::string_view bytes) {
      raw->on_proxy_bytes(bytes);
    };

    Uplink uplink;
    uplink.tcp = std::make_unique<proto::TcpConnection>(
        sched_, cluster_.ethernet(), std::move(a), std::move(b));
    uplink.gateway = raw;
    raw->bind_uplink([this, node](std::string bytes) {
      // Gateway -> proxy direction rides the same connection.
      uplinks_.at(node).tcp->send_b_to_a(std::move(bytes));
    });
    auto [it, inserted] = uplinks_.emplace(node, std::move(uplink));
    PD_CHECK(inserted, "duplicate uplink");
    it->second.tcp->connect([this, node] {
      Uplink& u = uplinks_.at(node);
      u.established = true;
      while (!u.pending.empty()) {
        u.tcp->send_a_to_b(std::move(u.pending.front()));
        u.pending.pop_front();
      }
    });
  }

  if (config_.autoscale) {
    PD_CHECK(config_.stack == proto::StackKind::kFstack,
             "autoscaling applies to the F-stack proxy");
    sched_.schedule_background_after(config_.scale_check_period,
                                     [this] { autoscale_tick(); });
  }
  sched_.schedule_background_after(kSeriesBucket, [this] { sample_tick(); });
}

void ProxyIngress::send_uplink(NodeId node, std::string bytes) {
  Uplink& u = uplinks_.at(node);
  if (!u.established) {
    u.pending.push_back(std::move(bytes));
    return;
  }
  u.tcp->send_a_to_b(std::move(bytes));
}

int ProxyIngress::attach_client(NodeId client_node, sim::Core& client_core,
                                std::function<void(std::string_view)> to_client) {
  PD_CHECK(setup_done_, "attach_client before finish_setup");
  const int id = static_cast<int>(clients_.size());
  auto conn = std::make_unique<ClientConn>();
  conn->to_client = std::move(to_client);
  conn->worker = next_worker_rr_++ % active_workers_;

  if (!cluster_.ethernet().attached(client_node)) {
    cluster_.ethernet().attach(client_node);
  }

  proto::TcpEndpoint a;
  a.node = client_node;
  a.stack = proto::StackKind::kKernel;
  a.core = &client_core;
  a.on_message = [this, id](std::string_view bytes) {
    clients_[static_cast<std::size_t>(id)]->to_client(bytes);
  };
  proto::TcpEndpoint b;
  b.node = config_.node;
  b.stack = config_.stack;
  if (config_.stack == proto::StackKind::kKernel) {
    b.cores = &cores_;
  } else {
    b.core = &rx_core(conn->worker);
  }
  b.on_message = [this, id](std::string_view bytes) {
    on_client_bytes(id, bytes);
  };
  conn->tcp = std::make_unique<proto::TcpConnection>(sched_, cluster_.ethernet(),
                                                     std::move(a), std::move(b));
  ClientConn* raw = conn.get();
  clients_.push_back(std::move(conn));
  raw->tcp->connect([this, id] {
    ClientConn& c = *clients_[static_cast<std::size_t>(id)];
    c.established = true;
    while (!c.pending.empty()) {
      c.tcp->send_a_to_b(std::move(c.pending.front()));
      c.pending.pop_front();
    }
  });
  return id;
}

void ProxyIngress::client_send(int client, std::string bytes) {
  ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
  if (!c.established) {
    c.pending.push_back(std::move(bytes));
    return;
  }
  c.tcp->send_a_to_b(std::move(bytes));
}

void ProxyIngress::on_client_bytes(int client, std::string_view bytes) {
  ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
  auto data = std::make_shared<std::string>(bytes);
  sim::Core& core = pick_core(c.worker);
  core.submit(parse_cost(bytes.size()), [this, client, data] {
    proto::HttpRequestParser parser;
    auto [status, consumed] = parser.feed(*data);
    PD_CHECK(status == proto::ParseStatus::kComplete,
             "proxy received malformed HTTP: " << parser.error());
    const proto::HttpRequest& req = parser.message();

    auto it = targets_.find(req.target);
    if (it == targets_.end()) {
      proto::HttpResponse resp;
      resp.status = 404;
      resp.reason = "Not Found";
      clients_[static_cast<std::size_t>(client)]->tcp->send_b_to_a(
          proto::serialize(resp));
      return;
    }
    const auto& chain = cluster_.chains().by_id(it->second);
    const NodeId gw_node = cluster_.placement_of(chain.hops.front().fn);

    // NGINX upstream machinery: connection bookkeeping, header rewrite,
    // request buffering toward the worker gateway.
    ClientConn& cc = *clients_.at(static_cast<std::size_t>(client));
    pick_core(cc.worker).submit(cost::kNginxProxyForwardNs);

    // Rewrite + tag, then proxy to the worker gateway over TCP.
    const std::uint64_t tag = next_tag_++;
    tag_client_[tag] = client;
    proto::HttpRequest fwd = req;
    fwd.target = "/" + std::to_string(chain.id);
    fwd.headers.add("X-Req", std::to_string(tag));
    send_uplink(gw_node, proto::serialize(fwd));
  });
}

void ProxyIngress::on_gateway_bytes(NodeId gateway, std::string_view bytes) {
  (void)gateway;
  auto data = std::make_shared<std::string>(bytes);
  sim::Core& core = pick_core(0);
  core.submit(parse_cost(bytes.size()), [this, data, &core] {
    proto::HttpResponseParser parser;
    auto [status, consumed] = parser.feed(*data);
    PD_CHECK(status == proto::ParseStatus::kComplete,
             "proxy received malformed gateway response");
    const proto::HttpResponse& resp = parser.message();
    const std::uint64_t tag = read_tag(resp.headers);

    auto it = tag_client_.find(tag);
    PD_CHECK(it != tag_client_.end(), "response for unknown tag " << tag);
    const int client = it->second;
    tag_client_.erase(it);

    // Upstream response relay bookkeeping.
    core.submit(cost::kNginxProxyForwardNs / 2);

    proto::HttpResponse out;
    out.status = resp.status;
    out.reason = resp.reason;
    out.body = resp.body;
    clients_.at(static_cast<std::size_t>(client))
        ->tcp->send_b_to_a(proto::serialize(out));
    ++responses_;
    response_series_.increment(sched_.now());
  });
}

void ProxyIngress::autoscale_tick() {
  double util_sum = 0;
  for (int w = 0; w < active_workers_; ++w) {
    const auto busy = rx_core(w).busy_ns();
    util_sum += static_cast<double>(busy -
                                    autoscale_busy_[static_cast<std::size_t>(w)]) /
                static_cast<double>(config_.scale_check_period);
  }
  for (std::size_t w = 0; w < cores_.size(); ++w) {
    autoscale_busy_[w] = cores_.core(w).busy_ns();
  }
  const double avg = util_sum / active_workers_;
  if (avg > config_.scale_up_util && active_workers_ < config_.max_workers) {
    ++active_workers_;
    for (int w = 0; w < active_workers_; ++w) {
      rx_core(w).submit(cost::kIngressWorkerRestartNs);
    }
  } else if (avg < config_.scale_down_util && active_workers_ > 1) {
    --active_workers_;
    for (int w = 0; w < active_workers_; ++w) {
      rx_core(w).submit(cost::kIngressWorkerRestartNs);
    }
  }
  // RSS rebalance client connections over the new worker set.
  int rr = 0;
  for (auto& c : clients_) {
    c->worker = rr++ % active_workers_;
    if (config_.stack == proto::StackKind::kFstack) {
      c->tcp->endpoint_b().core = &rx_core(c->worker);
    }
  }
  sched_.schedule_background_after(config_.scale_check_period,
                                   [this] { autoscale_tick(); });
}

void ProxyIngress::sample_tick() {
  worker_series_.add(sched_.now() - 1, active_workers_);
  double useful = 0;
  for (std::size_t w = 0; w < cores_.size(); ++w) {
    const auto busy = cores_.core(w).busy_ns();
    useful += sim::to_sec(busy - last_busy_[w]);
    last_busy_[w] = busy;
  }
  useful_cpu_series_.add(sched_.now() - 1, useful);
  sched_.schedule_background_after(kSeriesBucket, [this] { sample_tick(); });
}

WorkerGateway& ProxyIngress::gateway(NodeId node) {
  auto it = uplinks_.find(node);
  PD_CHECK(it != uplinks_.end(), "no gateway on node " << node);
  return *it->second.gateway;
}

}  // namespace pd::ingress
