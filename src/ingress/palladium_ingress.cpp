#include "ingress/palladium_ingress.hpp"

#include <algorithm>
#include <cstring>

#include "core/message.hpp"
#include "core/trace_hooks.hpp"
#include "obs/hub.hpp"
#include "proto/cost_model.hpp"
#include "sim/profile.hpp"

namespace pd::ingress {
namespace {

constexpr sim::Duration kSeriesBucket = 1'000'000'000;  // 1 s

}  // namespace

PalladiumIngress::PalladiumIngress(runtime::Cluster& cluster, Config config)
    : cluster_(cluster),
      config_(config),
      sched_(cluster.scheduler()),
      mem_(config.node),
      cores_(sched_, "ingress/worker",
             static_cast<std::size_t>(config.max_workers)),
      response_series_(kSeriesBucket, "ingress-rps"),
      worker_series_(kSeriesBucket, "ingress-workers"),
      useful_cpu_series_(kSeriesBucket, "ingress-useful-cpu") {
  PD_CHECK(cluster_.rdma_net() != nullptr,
           "Palladium ingress requires an RDMA-capable cluster");
  PD_CHECK(config_.initial_workers >= 1 &&
               config_.initial_workers <= config_.max_workers,
           "bad worker bounds");
  rnic_ = std::make_unique<rdma::Rnic>(*cluster_.rdma_net(), config_.node, mem_);
  conn_mgr_ = std::make_unique<rdma::ConnectionManager>(*rnic_);
  rnic_->cq().set_notify([this] { on_cq_event(); });
  active_workers_ = config_.initial_workers;
  last_busy_.assign(static_cast<std::size_t>(config_.max_workers), 0);
}

void PalladiumIngress::expose_chain(std::string target,
                                    std::uint32_t chain_id) {
  PD_CHECK(cluster_.chains().has(chain_id), "unknown chain " << chain_id);
  PD_CHECK(targets_.emplace(std::move(target), chain_id).second,
           "target already exposed");
}

void PalladiumIngress::finish_setup() {
  PD_CHECK(!setup_done_, "ingress setup done twice");
  PD_CHECK(!targets_.empty(), "no chains exposed");
  setup_done_ = true;

  // Collect the tenants behind exposed chains and the worker nodes that
  // host their first hops / can send us responses.
  std::unordered_map<TenantId, bool> tenants;
  for (const auto& [target, chain_id] : targets_) {
    tenants[cluster_.chains().by_id(chain_id).tenant] = true;
  }

  for (const auto& [tenant, unused] : tenants) {
    auto& tm = mem_.create_tenant_pool(
        tenant, "ingress_tenant_" + std::to_string(tenant.value()),
        cluster_.config().pool_buffers, cluster_.config().buffer_bytes);
    tm.export_to_rdma();
    rnic_->register_memory(tm.pool_id());
    post_receives(tenant, config_.srq_fill);
  }

  // Make the gateway reachable from every worker's data plane and
  // establish our outbound RC pools per (worker node, tenant).
  cluster_.register_external_entry(kIngressEntry, config_.node);
  for (const auto& [target, chain_id] : targets_) {
    const auto& chain = cluster_.chains().by_id(chain_id);
    const NodeId first_node = cluster_.placement_of(chain.hops.front().fn);
    if (conn_mgr_->pool_size(first_node, chain.tenant) == 0) {
      conn_mgr_->establish(first_node, chain.tenant, config_.rc_connections,
                           nullptr);
    }
  }
  // Every worker node's data plane learns the ingress as a peer so chain
  // tails can send responses back over RDMA.
  for (const auto& [target, chain_id] : targets_) {
    (void)target;
    const auto& chain = cluster_.chains().by_id(chain_id);
    for (const auto& hop : chain.hops) {
      const NodeId n = cluster_.placement_of(hop.fn);
      if (!connected_workers_.insert(n).second) continue;
      cluster_.worker(n).dataplane().connect_peer(config_.node);
    }
  }

  autoscale_busy_.assign(static_cast<std::size_t>(config_.max_workers), 0);
  if (config_.autoscale) {
    sched_.schedule_background_after(config_.scale_check_period,
                                     [this] { autoscale_tick(); });
  }
  sched_.schedule_background_after(kSeriesBucket, [this] { sample_tick(); });
}

void PalladiumIngress::start_flight_probes() {
  PD_CHECK(setup_done_, "start_flight_probes requires finish_setup first");
  obs::FlightRecorder* rec = cluster_.flight_recorder(config_.node);
  if (rec == nullptr) return;  // recorder not started: observability off
  rec->probe("ingress.pending_requests", {}, [this] {
    return static_cast<double>(pending_.size());
  });
  rec->probe("ingress.active_workers", {}, [this] {
    return static_cast<double>(active_workers_);
  });
  rec->probe("ingress.clients", {}, [this] {
    return static_cast<double>(clients_.size());
  });
  rec->probe("ingress.cq_depth", {}, [this] {
    return static_cast<double>(rnic_->cq().depth());
  });
  // Deterministic per-tenant order (pools() iterates creation order,
  // which finish_setup derives from a hash map — sort by tenant id).
  std::vector<const mem::TenantMemory*> pools;
  for (const auto& tm : mem_.pools()) pools.push_back(tm.get());
  std::sort(pools.begin(), pools.end(),
            [](const mem::TenantMemory* a, const mem::TenantMemory* b) {
              return a->tenant() < b->tenant();
            });
  for (const mem::TenantMemory* tm : pools) {
    rec->probe("ingress.pool_in_use",
               "tenant=" + std::to_string(tm->tenant().value()),
               [pool = &tm->pool()] {
                 return static_cast<double>(pool->in_use());
               });
  }
}

void PalladiumIngress::attach_pool_clock() {
  sim::Scheduler* s = &sched_;
  mem_.set_clock([s] { return s->now(); });
}

void PalladiumIngress::collect_pool_slot_ns(obs::Ledger& led) {
  if (!led.enabled()) return;
  const sim::TimePoint now = sched_.now();
  for (const auto& tm : mem_.pools()) {
    const mem::BufferPool& pool = tm->pool();
    led.add_slot_ns("node" + std::to_string(config_.node.value()) + "/pool/" +
                        tm->file_prefix(),
                    static_cast<std::int64_t>(pool.tenant().value()),
                    pool.slot_ns(now), pool.footprint());
  }
}

void PalladiumIngress::sample_tick() {
  // Per-second series for Fig. 14: active worker count (each pinned to a
  // full busy-polling core) and aggregate *useful* CPU seconds.
  worker_series_.add(sched_.now() - 1, active_workers_);
  double useful = 0;
  for (int w = 0; w < config_.max_workers; ++w) {
    const auto busy = worker_core(w).busy_ns();
    if (w < active_workers_) {
      useful += sim::to_sec(busy - last_busy_[static_cast<std::size_t>(w)]);
    }
    last_busy_[static_cast<std::size_t>(w)] = busy;
  }
  useful_cpu_series_.add(sched_.now() - 1, useful);
  sched_.schedule_background_after(kSeriesBucket, [this] { sample_tick(); });
}

void PalladiumIngress::post_receives(TenantId tenant, int n) {
  auto& pool = mem_.by_tenant(tenant).pool();
  for (int i = 0; i < n; ++i) {
    auto d = pool.allocate(mem::actor_rnic(config_.node));
    if (!d.has_value()) return;  // pool pressure: responses will RNR-retry
    rnic_->post_srq_recv(tenant, *d);
  }
}

int PalladiumIngress::attach_client(
    NodeId client_node, sim::Core& client_core,
    std::function<void(std::string_view)> to_client) {
  PD_CHECK(setup_done_, "attach_client before finish_setup");
  const int id = static_cast<int>(clients_.size());
  auto conn = std::make_unique<ClientConn>();
  conn->to_client = std::move(to_client);
  conn->worker = next_worker_rr_++ % active_workers_;  // RSS spread

  if (!cluster_.ethernet().attached(client_node)) {
    cluster_.ethernet().attach(client_node);
  }
  if (!cluster_.ethernet().attached(config_.node)) {
    cluster_.ethernet().attach(config_.node);
  }

  proto::TcpEndpoint a;  // client side
  a.node = client_node;
  a.stack = proto::StackKind::kKernel;
  a.core = &client_core;
  a.on_message = [this, id](std::string_view bytes) {
    clients_[static_cast<std::size_t>(id)]->to_client(bytes);
  };
  proto::TcpEndpoint b;  // gateway side: batched F-stack on the worker core
  b.node = config_.node;
  b.stack = proto::StackKind::kFstackBatched;
  b.core = &worker_core(conn->worker);
  b.on_message = [this, id](std::string_view bytes) {
    on_client_bytes(id, bytes);
  };
  conn->tcp = std::make_unique<proto::TcpConnection>(sched_, cluster_.ethernet(),
                                                     std::move(a), std::move(b));
  ClientConn* raw = conn.get();
  clients_.push_back(std::move(conn));
  raw->tcp->connect([this, id] {
    ClientConn& c = *clients_[static_cast<std::size_t>(id)];
    c.established = true;
    while (!c.pending.empty()) {
      c.tcp->send_a_to_b(std::move(c.pending.front()));
      c.pending.pop_front();
    }
  });
  return id;
}

void PalladiumIngress::client_send(int client, std::string bytes) {
  ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
  if (!c.established) {
    c.pending.push_back(std::move(bytes));
    return;
  }
  c.tcp->send_a_to_b(std::move(bytes));
}

void PalladiumIngress::on_client_bytes(int client, std::string_view bytes) {
  // HTTP processing on the worker's core (NGINX-grade parser).
  ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
  const auto parse_ns =
      cost::kHttpParseBaseNs +
      static_cast<sim::Duration>(static_cast<double>(bytes.size()) *
                                 cost::kHttpParsePerByteNs);
  auto parser = std::make_shared<proto::HttpRequestParser>();
  auto data = std::make_shared<std::string>(bytes);
  sim::ProfileScope scope{"ingress", "http_parse"};
  worker_core(c.worker).submit(parse_ns, [this, client, parser, data] {
    auto [status, consumed] = parser->feed(*data);
    PD_CHECK(status == proto::ParseStatus::kComplete,
             "ingress received malformed/partial HTTP: " << parser->error());
    forward_to_chain(client, parser->message());
  });
}

void PalladiumIngress::forward_to_chain(int client,
                                        const proto::HttpRequest& req) {
  auto it = targets_.find(req.target);
  if (it == targets_.end()) {
    // 404: respond immediately.
    proto::HttpResponse resp;
    resp.status = 404;
    resp.reason = "Not Found";
    ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
    c.tcp->send_b_to_a(proto::serialize(resp));
    return;
  }
  const auto& chain = cluster_.chains().by_id(it->second);

  if (config_.admission != nullptr &&
      config_.admission->try_admit(chain.tenant, sched_.now()) ==
          control::Verdict::kShed) {
    // Policy drop, not a fault: explicit 429, its own counter (distinct
    // from the 502/504 fault paths), and a tagged marker trace so critpath
    // attribution books it under "policy".
    ++shed_admission_;
    if (auto* hub = obs::hub()) {
      hub->registry
          .counter("ingress.shed_admission",
                   "tenant=" + std::to_string(chain.tenant.value()))
          .inc();
      hub->slo.record_error(chain.tenant, chain.id, sched_.now());
    }
    tag_policy_marker("shed_admission");
    respond_error(client, 429, "Too Many Requests");
    return;
  }

  const std::uint64_t request_id = next_request_++;
  PendingRequest pr;
  pr.client = client;
  pr.start = sched_.now();
  pr.chain_id = chain.id;
  pr.body = req.body;
  pending_.emplace(request_id, std::move(pr));

  if (!send_request(request_id)) {
    // Pool pressure on the very first attempt: shed immediately.
    pending_.erase(request_id);
    if (auto* hub = obs::hub()) {
      hub->slo.record_error(chain.tenant, chain.id, sched_.now());
    }
    proto::HttpResponse resp;
    resp.status = 503;
    resp.reason = "Overloaded";
    ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
    c.tcp->send_b_to_a(proto::serialize(resp));
    return;
  }
  arm_deadline(request_id);
}

bool PalladiumIngress::send_request(std::uint64_t request_id) {
  auto pit = pending_.find(request_id);
  PD_CHECK(pit != pending_.end(), "send for untracked request " << request_id);
  PendingRequest& pr = pit->second;
  const auto& chain = cluster_.chains().by_id(pr.chain_id);
  auto& pool = mem_.by_tenant(chain.tenant).pool();
  const auto actor = mem::actor_engine(config_.node);

  auto d = pool.allocate(actor);
  if (!d.has_value()) return false;

  core::MessageHeader h;
  h.request_id = request_id;
  h.src_fn = kIngressEntry.value();
  h.dst_fn = chain.hops.front().fn.value();
  h.chain_id = chain.id;
  h.hop_index = 0;
  h.client_id = kIngressEntry.value();
  h.payload_len = chain.request_payload;
  core::trace_start(h, "ingress",
                    "node" + std::to_string(config_.node.value()) + "/ingress",
                    sched_.now());
  // Remember the (latest attempt's) trace so the 504 path can tag it.
  pr.trace_id = h.trace_id;
  pr.root_span = h.root_span;
  auto span = pool.access(*d, actor);
  core::write_header(span, h);
  // Carry the real request body into the payload region (zero-copy from
  // here on: these bytes ride RDMA to the functions untouched).
  const auto body_len = std::min<std::size_t>(
      pr.body.size(), span.size() - sizeof(core::MessageHeader));
  std::memcpy(span.data() + sizeof(core::MessageHeader), pr.body.data(),
              body_len);
  const auto sized =
      pool.resize(*d, actor, core::message_bytes(chain.request_payload));

  ClientConn& c = *clients_.at(static_cast<std::size_t>(pr.client));

  // RDMA transmission from the worker's run-to-completion loop.
  sim::ProfileScope scope{"ingress", "rdma_tx", chain.tenant.value()};
  worker_core(c.worker).submit(
      cost::kDneSchedNs + cost::kDneTxStageNs,
      [this, sized, first_node = cluster_.placement_of(chain.hops.front().fn),
       tenant = chain.tenant, request_id] {
        auto& p = mem_.by_tenant(tenant).pool();
        p.transfer(sized, mem::actor_engine(config_.node),
                   mem::actor_rnic(config_.node));
        rdma::WorkRequest wr;
        wr.wr_id = request_id;
        wr.opcode = rdma::Opcode::kSend;
        wr.local = sized;
        conn_mgr_->send(first_node, tenant, wr);
      });
  return true;
}

void PalladiumIngress::arm_deadline(std::uint64_t request_id) {
  if (config_.request_deadline <= 0) return;
  auto pit = pending_.find(request_id);
  PD_CHECK(pit != pending_.end(), "deadline for untracked request");
  pit->second.deadline = sched_.schedule_after(
      config_.request_deadline, [this, request_id] { on_deadline(request_id); });
}

void PalladiumIngress::on_deadline(std::uint64_t request_id) {
  auto pit = pending_.find(request_id);
  if (pit == pending_.end()) return;  // response raced the timer
  PendingRequest& pr = pit->second;
  pr.deadline = sim::kInvalidEvent;

  if (pr.attempts > config_.max_retries) {
    // Retry budget exhausted: fail the request explicitly. This is a
    // policy decision (the gateway giving up), so it gets its own counter
    // and a "deadline_expired" span on the request's trace — distinct from
    // the generic 502/504 fault bookkeeping.
    ++timeouts_;
    ++deadline_expired_;
    const int client = pr.client;
    const TenantId tenant = cluster_.chains().by_id(pr.chain_id).tenant;
    if (auto* hub = obs::hub()) {
      hub->slo.record_error(tenant, pr.chain_id, sched_.now());
      hub->registry
          .counter("ingress.deadline_expired",
                   "tenant=" + std::to_string(tenant.value()))
          .inc();
      if (pr.trace_id != 0) {
        // Tag and terminate the trace: the in-fabric hop span stays open
        // (the request genuinely never came back), but the root closes so
        // attribution can book the tail as policy instead of losing the
        // whole trace as incomplete.
        const auto s = hub->tracer.begin_span(
            pr.trace_id, pr.root_span, "deadline_expired",
            "node" + std::to_string(config_.node.value()) + "/ingress",
            sched_.now());
        hub->tracer.end_span(s, sched_.now());
        hub->tracer.end_span(pr.root_span, sched_.now());
      }
    }
    pending_.erase(pit);
    respond_error(client, 504, "Gateway Timeout");
    return;
  }
  ++pr.attempts;
  ++retries_;
  // At-least-once: the original may still be in flight somewhere — the
  // gateway tolerates whichever response arrives second. A false return
  // (pool pressure) is fine: the re-armed deadline tries again.
  (void)send_request(request_id);
  arm_deadline(request_id);
}

void PalladiumIngress::tag_policy_marker(const char* tag) {
  obs::Hub* hub = obs::hub();
  if (hub == nullptr) return;
  const std::string track =
      "node" + std::to_string(config_.node.value()) + "/ingress";
  const obs::TraceContext ctx = hub->tracer.start_trace(track, sched_.now());
  if (!ctx.sampled()) return;
  const auto s = hub->tracer.begin_span(ctx.trace_id, ctx.root_span, tag,
                                        track, sched_.now());
  hub->tracer.end_span(s, sched_.now());
  hub->tracer.end_span(ctx.root_span, sched_.now());
}

void PalladiumIngress::respond_error(int client, int status,
                                     const char* reason) {
  ClientConn& conn = *clients_.at(static_cast<std::size_t>(client));
  sim::ProfileScope scope{"ingress", "http_serialize"};
  worker_core(conn.worker)
      .submit(cost::kHttpSerializeNs, [this, client, status, reason] {
        proto::HttpResponse resp;
        resp.status = status;
        resp.reason = reason;
        ClientConn& c = *clients_.at(static_cast<std::size_t>(client));
        c.tcp->send_b_to_a(proto::serialize(resp));
      });
}

void PalladiumIngress::on_cq_event() {
  for (const auto& c : rnic_->cq().poll(64)) {
    if (!c.is_recv) {
      // Send completion: recycle the request buffer.
      auto& pool = mem_.by_pool(c.buffer.pool).pool();
      pool.transfer(c.buffer, mem::actor_rnic(config_.node),
                    mem::actor_engine(config_.node));
      pool.release(c.buffer, mem::actor_engine(config_.node));
      continue;
    }
    handle_response(c);
  }
}

void PalladiumIngress::handle_response(const rdma::Completion& c) {
  auto& pool = mem_.by_pool(c.buffer.pool).pool();
  const auto actor = mem::actor_engine(config_.node);
  pool.transfer(c.buffer, mem::actor_rnic(config_.node), actor);
  const auto span = pool.access(c.buffer, actor);
  const core::MessageHeader h = core::read_header(span);

  // Acknowledge sequenced arrivals — including duplicates, whose earlier
  // ACK was evidently lost — so the sending engine can retire its copy.
  if (h.seq != 0) {
    const NodeId sender = rnic_->qp(c.qp).remote_node();
    if (sender.valid()) {
      cluster_.rdma_net()->send_datagram(
          config_.node, sender,
          rdma::Datagram{rdma::Datagram::Kind::kAck, h.seq});
    }
  }

  auto it = pending_.find(h.request_id);
  if (it == pending_.end()) {
    // Duplicate (a retransmit raced our ACK, or a gateway re-send made the
    // chain answer twice) or a straggler past its 504. Recycle quietly.
    pool.release(c.buffer, actor);
    post_receives(c.tenant, 1);
    return;
  }
  core::trace_finish(h, sched_.now());
  const PendingRequest req = std::move(it->second);
  if (req.deadline != sim::kInvalidEvent) sched_.cancel(req.deadline);
  pending_.erase(it);

  if (h.is_error()) {
    // The data plane failed this request explicitly (retries exhausted,
    // shed, or unroutable): surface it as a 502 instead of waiting for the
    // deadline.
    ++bad_gateway_;
    const TenantId t = c.tenant;
    if (auto* hub = obs::hub()) {
      hub->slo.record_error(t, req.chain_id, sched_.now());
    }
    pool.release(c.buffer, actor);
    post_receives(t, 1);
    respond_error(req.client, 502, "Bad Gateway");
    return;
  }

  // Extract the payload before recycling the buffer + replenishing.
  std::string body(reinterpret_cast<const char*>(span.data()) +
                       sizeof(core::MessageHeader),
                   h.payload_len);
  const TenantId tenant = c.tenant;
  if (auto* hub = obs::hub()) {
    hub->slo.record(tenant, req.chain_id, sched_.now() - req.start,
                    sched_.now());
  }
  pool.release(c.buffer, actor);
  post_receives(tenant, 1);

  ClientConn& conn = *clients_.at(static_cast<std::size_t>(req.client));
  const auto serialize_ns = cost::kDneRxStageNs + cost::kHttpSerializeNs;
  sim::ProfileScope scope{"ingress", "http_serialize", tenant.value()};
  worker_core(conn.worker).submit(serialize_ns, [this, client = req.client,
                                                 body = std::move(body)] {
    proto::HttpResponse resp;
    resp.body = body;
    ClientConn& c2 = *clients_.at(static_cast<std::size_t>(client));
    c2.tcp->send_b_to_a(proto::serialize(resp));
    ++responses_;
    response_series_.increment(sched_.now());
  });
}

void PalladiumIngress::autoscale_tick() {
  // Average *useful* utilization across active workers over the last
  // period (busy-polling time is excluded by construction: we track
  // accumulated work, not occupancy).
  double util_sum = 0;
  for (int w = 0; w < active_workers_; ++w) {
    const auto busy = worker_core(w).busy_ns();
    util_sum += static_cast<double>(busy - autoscale_busy_[static_cast<std::size_t>(w)]) /
                static_cast<double>(config_.scale_check_period);
  }
  for (int w = 0; w < config_.max_workers; ++w) {
    autoscale_busy_[static_cast<std::size_t>(w)] = worker_core(w).busy_ns();
  }
  const double avg = util_sum / active_workers_;

  if (avg > config_.scale_up_util && active_workers_ < config_.max_workers) {
    apply_scaling(active_workers_ + 1);
  } else if (avg < config_.scale_down_util && active_workers_ > 1) {
    apply_scaling(active_workers_ - 1);
  }
  sched_.schedule_background_after(config_.scale_check_period,
                                   [this] { autoscale_tick(); });
}

sim::Duration PalladiumIngress::worker_backlog_ns() {
  sim::Duration total = 0;
  for (int w = 0; w < active_workers_; ++w) total += worker_core(w).backlog();
  return total;
}

void PalladiumIngress::scale_to(int n) {
  PD_CHECK(setup_done_, "scale_to before finish_setup");
  const int clamped = std::clamp(n, 1, config_.max_workers);
  if (clamped == active_workers_) return;
  apply_scaling(clamped);
}

void PalladiumIngress::apply_scaling(int new_count) {
  ++scale_events_;
  active_workers_ = new_count;
  rebalance_connections();
  // Worker-process restart: a brief interruption while the pool respawns
  // (§3.6 / Fig. 14 (2)) — queued work waits behind the restart.
  sim::ProfileScope scope{"ingress", "worker_restart"};
  for (int w = 0; w < active_workers_; ++w) {
    worker_core(w).submit(cost::kIngressWorkerRestartNs);
  }
}

void PalladiumIngress::rebalance_connections() {
  int rr = 0;
  for (auto& c : clients_) {
    c->worker = rr++ % active_workers_;
    c->tcp->endpoint_b().core = &worker_core(c->worker);
  }
}

}  // namespace pd::ingress
