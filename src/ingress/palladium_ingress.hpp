// Palladium's cluster-wide ingress gateway (§3.6): early HTTP/TCP-to-RDMA
// transport conversion at the cloud edge.
//
// Master/worker model: worker processes run a run-to-completion busy loop
// on dedicated cores, each handling F-stack TCP termination, NGINX-grade
// HTTP processing (a real parser), and RDMA transmission of the payload
// into the serverless fabric. The master horizontally scales workers with
// a 60%/30% hysteresis on *useful* CPU time and RSS-rebalances client
// connections; each scaling event restarts the worker pool, causing the
// brief service blip visible in Fig. 14 (2).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "control/admission.hpp"
#include "ingress/ingress.hpp"
#include "proto/http.hpp"
#include "proto/tcp.hpp"
#include "rdma/connection.hpp"
#include "runtime/cluster.hpp"
#include "sim/stats.hpp"

namespace pd::ingress {

/// Entry function id representing the gateway in chain headers.
inline constexpr FunctionId kIngressEntry{0xFFFF1000};

class PalladiumIngress : public IngressFrontend {
 public:
  struct Config {
    NodeId node{200};
    int initial_workers = 1;
    int max_workers = 8;
    bool autoscale = false;
    double scale_up_util = 0.60;
    double scale_down_util = 0.30;
    sim::Duration scale_check_period = 1'000'000'000;  // 1 s
    int srq_fill = 256;
    int rc_connections = 2;
    /// Request-level recovery: if no response arrives within the deadline
    /// the gateway re-sends the request (at-least-once; the data plane
    /// suppresses duplicates where it can and the gateway tolerates
    /// duplicate responses). After `max_retries` re-sends it answers 504.
    /// 0 disables deadlines (the pre-fault-model behaviour).
    sim::Duration request_deadline = 2'000'000;  // 2 ms
    int max_retries = 2;
    /// Optional per-tenant admission gate, consulted before a request
    /// enters the fabric (ISSUE 7). Not owned; must outlive the ingress.
    /// Requests it sheds are answered 429 — explicit, never silent.
    control::AdmissionController* admission = nullptr;
  };

  PalladiumIngress(runtime::Cluster& cluster, Config config);

  /// Provision tenants' pools on the ingress node, establish RC
  /// connections (both directions), post SRQs, and sync routes. Call
  /// before Cluster::finish_setup().
  void finish_setup();

  // IngressFrontend:
  int attach_client(NodeId client_node, sim::Core& client_core,
                    std::function<void(std::string_view)> to_client) override;
  void client_send(int client, std::string bytes) override;
  void expose_chain(std::string target, std::uint32_t chain_id) override;

  // Introspection for Figs. 13/14.
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] int active_workers() const { return active_workers_; }
  [[nodiscard]] std::uint64_t responses() const { return responses_; }
  [[nodiscard]] sim::TimeSeries& response_series() { return response_series_; }
  [[nodiscard]] sim::TimeSeries& worker_series() { return worker_series_; }
  [[nodiscard]] sim::TimeSeries& useful_cpu_series() { return useful_cpu_series_; }
  [[nodiscard]] std::uint64_t scale_events() const { return scale_events_; }
  [[nodiscard]] std::size_t pending_requests() const { return pending_.size(); }

  /// Controller-driven horizontal scaling: set the worker pool to `n`
  /// (clamped to [1, max_workers]). No-op when already at `n`; otherwise
  /// the pool restarts exactly like the built-in autoscaler's transitions.
  void scale_to(int n);

  /// Work queued on the active worker cores, in scaled nanoseconds.
  /// Requests parked behind a worker-restart blip have not been parsed
  /// yet, so pending_requests() cannot see them — a feedback controller
  /// that only watched pending_requests() would read a restarting pool as
  /// idle and scale it down again, compounding the outage.
  [[nodiscard]] sim::Duration worker_backlog_ns();

  /// Register the gateway's gauge series (pending requests, worker count,
  /// CQ depth, per-tenant pool occupancy) on the edge shard's flight
  /// recorder. No-op unless Cluster::start_flight_recorder() ran first.
  void start_flight_probes();

  /// Resource-ledger wiring (ISSUE 10): attach the edge scheduler's clock
  /// to the gateway's pools so slot-ns occupancy integrals accrue.
  void attach_pool_clock();
  /// Fold the gateway pools' slot-ns (through the edge's current simulated
  /// time) into `led`. Call after the run drains.
  void collect_pool_slot_ns(obs::Ledger& led);

  // Fault-model introspection.
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  /// Requests answered 504 after the deadline + retry budget ran out.
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Requests answered 502 on an explicit data-plane error completion.
  [[nodiscard]] std::uint64_t bad_gateway() const { return bad_gateway_; }
  /// Requests answered 429 by the per-tenant admission gate (policy drop,
  /// distinct from the generic 502/504 fault counters).
  [[nodiscard]] std::uint64_t shed_admission() const { return shed_admission_; }
  /// Requests answered 504 with the retry budget spent — same events the
  /// timeouts() counter sees, exposed under the policy-drop name so
  /// dashboards can pair it with shed_admission().
  [[nodiscard]] std::uint64_t deadline_expired() const {
    return deadline_expired_;
  }

 private:
  struct ClientConn {
    std::unique_ptr<proto::TcpConnection> tcp;
    std::function<void(std::string_view)> to_client;
    int worker = 0;
    bool established = false;
    std::deque<std::string> pending;  // sends queued before the handshake
  };
  struct PendingRequest {
    int client = -1;
    sim::TimePoint start = 0;
    std::uint32_t chain_id = 0;
    std::string body;   ///< kept for deadline-driven re-sends
    int attempts = 1;   ///< sends so far (first + retries)
    sim::EventId deadline = sim::kInvalidEvent;
    /// Trace context of the latest send attempt, kept so the 504 path can
    /// tag the trace with a "deadline_expired" policy span and close the
    /// root (0 = unsampled).
    std::uint64_t trace_id = 0;
    std::uint32_t root_span = 0;
  };

  void on_client_bytes(int client, std::string_view bytes);
  void forward_to_chain(int client, const proto::HttpRequest& req);
  /// (Re-)send the pending request into the fabric. False on pool pressure
  /// (the armed deadline retries later).
  bool send_request(std::uint64_t request_id);
  void arm_deadline(std::uint64_t request_id);
  void on_deadline(std::uint64_t request_id);
  void respond_error(int client, int status, const char* reason);
  /// Emit a zero-length marker trace tagged `tag` ("shed_admission") so
  /// critpath attribution sees the policy drop even though the request
  /// never entered the fabric.
  void tag_policy_marker(const char* tag);
  void on_cq_event();
  void handle_response(const rdma::Completion& c);
  void post_receives(TenantId tenant, int n);
  void autoscale_tick();
  void apply_scaling(int new_count);
  void rebalance_connections();
  void sample_tick();
  sim::Core& worker_core(int w) { return cores_.core(static_cast<std::size_t>(w)); }

  runtime::Cluster& cluster_;
  Config config_;
  sim::Scheduler& sched_;
  mem::MemoryDomain mem_;
  std::unique_ptr<rdma::Rnic> rnic_;
  std::unique_ptr<rdma::ConnectionManager> conn_mgr_;
  sim::CoreSet cores_;
  int active_workers_ = 0;
  int next_worker_rr_ = 0;
  std::vector<sim::Duration> last_busy_;       // per worker, 1 s sampling
  std::vector<sim::Duration> autoscale_busy_;  // per worker, scaler window
  std::unordered_set<NodeId> connected_workers_;

  std::unordered_map<std::string, std::uint32_t> targets_;
  std::vector<std::unique_ptr<ClientConn>> clients_;
  std::unordered_map<std::uint64_t, PendingRequest> pending_;
  std::uint64_t next_request_ = 1;
  std::uint64_t responses_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t bad_gateway_ = 0;
  std::uint64_t shed_admission_ = 0;
  std::uint64_t deadline_expired_ = 0;
  std::uint64_t scale_events_ = 0;
  bool setup_done_ = false;

  sim::TimeSeries response_series_;
  sim::TimeSeries worker_series_;
  sim::TimeSeries useful_cpu_series_;
};

}  // namespace pd::ingress
