// Baseline cluster ingresses (§4.1.3, Fig. 4 (1)): an NGINX-style HTTP
// reverse proxy that keeps HTTP/TCP all the way to the worker node, where
// a gateway agent terminates TCP *again* and injects the request into the
// local data plane — the "deferred transport conversion" whose duplicated
// protocol processing Palladium eliminates.
//
//  - K-Ingress: interrupt-driven kernel TCP at the proxy.
//  - F-Ingress: DPDK F-stack at the proxy (pinned worker cores), with
//    optional horizontal scaling (the adapted autoscaler of §4.1.3).
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ingress/ingress.hpp"
#include "proto/http.hpp"
#include "proto/tcp.hpp"
#include "runtime/cluster.hpp"
#include "sim/stats.hpp"

namespace pd::ingress {

/// Gateway agent on a worker node: terminates the proxy's TCP leg,
/// injects chain requests, and relays responses back. One per worker node
/// that hosts chain entry functions.
class WorkerGateway {
 public:
  WorkerGateway(runtime::Cluster& cluster, NodeId node,
                proto::StackKind stack);

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] proto::StackKind stack() const { return stack_; }
  [[nodiscard]] sim::Core& core() { return core_; }
  [[nodiscard]] FunctionId entry() const { return entry_; }

  /// Wire the proxy->gateway TCP leg: the proxy passes its send function;
  /// the gateway returns the handler for bytes arriving from the proxy.
  void bind_uplink(std::function<void(std::string)> to_proxy);
  void on_proxy_bytes(std::string_view bytes);

 private:
  void on_chain_response(const mem::BufferDescriptor& d);

  runtime::Cluster& cluster_;
  NodeId node_;
  proto::StackKind stack_;
  sim::Core& core_;
  FunctionId entry_;
  std::function<void(std::string)> to_proxy_;
  std::unordered_map<std::uint64_t, std::string> req_tags_;  // id -> X-Req
  std::uint64_t next_request_ = 1;
};

class ProxyIngress : public IngressFrontend {
 public:
  struct Config {
    NodeId node{201};
    proto::StackKind stack = proto::StackKind::kKernel;
    /// Kernel mode: cores available to softirq/NGINX (RSS spread).
    /// F-stack mode: dedicated pinned worker cores.
    int cores = 1;
    bool autoscale = false;  ///< F-stack only
    int max_workers = 8;
    double scale_up_util = 0.60;
    double scale_down_util = 0.30;
    sim::Duration scale_check_period = 1'000'000'000;
  };

  ProxyIngress(runtime::Cluster& cluster, Config config);

  /// Create gateway agents on worker nodes hosting exposed chains and
  /// establish the proxy->gateway TCP legs. Call before finish_setup on
  /// the cluster.
  void finish_setup();

  int attach_client(NodeId client_node, sim::Core& client_core,
                    std::function<void(std::string_view)> to_client) override;
  void client_send(int client, std::string bytes) override;
  void expose_chain(std::string target, std::uint32_t chain_id) override;

  [[nodiscard]] std::uint64_t responses() const { return responses_; }
  [[nodiscard]] int active_workers() const { return active_workers_; }
  [[nodiscard]] sim::TimeSeries& response_series() { return response_series_; }
  [[nodiscard]] sim::TimeSeries& worker_series() { return worker_series_; }
  [[nodiscard]] sim::TimeSeries& useful_cpu_series() { return useful_cpu_series_; }
  [[nodiscard]] WorkerGateway& gateway(NodeId node);

 private:
  struct ClientConn {
    std::unique_ptr<proto::TcpConnection> tcp;
    std::function<void(std::string_view)> to_client;
    int worker = 0;
    bool established = false;
    std::deque<std::string> pending;
  };
  struct Uplink {
    std::unique_ptr<proto::TcpConnection> tcp;
    WorkerGateway* gateway = nullptr;
    bool established = false;
    std::deque<std::string> pending;
  };

  void on_client_bytes(int client, std::string_view bytes);
  void on_gateway_bytes(NodeId gateway, std::string_view bytes);
  void send_uplink(NodeId node, std::string bytes);
  void autoscale_tick();
  void sample_tick();
  sim::Core& rx_core(int worker);
  /// Core that processes a unit of proxy work for `worker`: kernel stack
  /// lets the OS balance onto the least-loaded core; user-level stacks pin
  /// to the worker's own core.
  sim::Core& pick_core(int worker);

  runtime::Cluster& cluster_;
  Config config_;
  sim::Scheduler& sched_;
  sim::CoreSet cores_;
  int active_workers_;
  int next_worker_rr_ = 0;
  std::vector<sim::Duration> last_busy_;
  std::vector<sim::Duration> autoscale_busy_;

  std::unordered_map<std::string, std::uint32_t> targets_;
  std::vector<std::unique_ptr<ClientConn>> clients_;
  std::vector<std::unique_ptr<WorkerGateway>> gateways_;
  std::unordered_map<NodeId, Uplink> uplinks_;
  /// X-Req tag -> client connection (for response demux).
  std::unordered_map<std::uint64_t, int> tag_client_;
  std::uint64_t next_tag_ = 1;
  std::uint64_t responses_ = 0;
  bool setup_done_ = false;

  sim::TimeSeries response_series_;
  sim::TimeSeries worker_series_;
  sim::TimeSeries useful_cpu_series_;
};

}  // namespace pd::ingress
