// Exact busy-time attribution hook (ISSUE 5 tentpole, profiler half).
//
// Every Core::submit (and SoC-DMA transfer) reports the scaled busy time it
// charges to an installed BusyObserver, tagged with the thread-current
// ProfileFrame: a (component, detail, tenant) triple established by the
// innermost ProfileScope on the call stack. Because simulated work is
// charged in whole jobs at submit time, summing the reported durations
// reconstructs each core's busy_ns() exactly once the run drains — a
// sampling-free profiler with zero statistical error.
//
// Like the obs hub, the observer is a single thread-local (shadowing a
// global) pointer: a null observer makes the hook one predicted branch, and
// installing one can never perturb simulation results — observers only
// record, they never schedule events.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

namespace pd::sim {

/// Attribution frame for busy time. Views must stay valid for the duration
/// of the submit call they annotate (observers copy what they keep).
struct ProfileFrame {
  std::string_view component = "other";  ///< "dne", "fn", "ingress", "ipc"...
  std::string_view detail;               ///< stage or function name
  std::int64_t tenant = -1;              ///< -1 = not tenant-scoped
};

/// Receives one callback per charged busy interval. `resource` is the name
/// of the core (or DMA engine) doing the work; `scaled_ns` is the busy time
/// in that resource's own nanoseconds.
class BusyObserver {
 public:
  virtual ~BusyObserver() = default;
  virtual void on_busy(std::string_view resource, const ProfileFrame& frame,
                       Duration scaled_ns) = 0;
  /// Interval-resolved companion to on_busy (ISSUE 10 ledger). FIFO
  /// resources (cores, the SoC DMA engine) also report *when* the charged
  /// work runs: it was submitted at `submitted`, starts at `begin`
  /// (= max(free_at, now), so begin - submitted is the queue wait behind
  /// earlier jobs), and occupies the resource for `scaled_ns`. `bytes` is
  /// the payload size for byte-denominated resources (DMA), 0 otherwise.
  /// Default no-op so observers that only fold totals (the profiler) pay
  /// nothing.
  virtual void on_busy_interval(std::string_view resource,
                                const ProfileFrame& frame, TimePoint submitted,
                                TimePoint begin, Duration scaled_ns,
                                std::uint64_t bytes) {
    (void)resource;
    (void)frame;
    (void)submitted;
    (void)begin;
    (void)scaled_ns;
    (void)bytes;
  }
};

/// Currently installed observer, or nullptr when profiling is off. A
/// thread-local observer (sharded simulation workers) shadows the global.
[[nodiscard]] BusyObserver* busy_observer();

/// Install `o` globally (nullptr uninstalls). Returns the previous one.
BusyObserver* install_busy_observer(BusyObserver* o);

/// Install `o` for THIS thread only (parallel shard enter/leave hooks).
BusyObserver* install_thread_busy_observer(BusyObserver* o);

/// The innermost active frame on this thread ("other" when none).
[[nodiscard]] const ProfileFrame& current_profile_frame();

/// RAII frame scope: work submitted while the scope is alive is attributed
/// to (component, detail, tenant). Scopes nest; the previous frame is
/// restored on destruction.
class ProfileScope {
 public:
  explicit ProfileScope(std::string_view component,
                        std::string_view detail = {},
                        std::int64_t tenant = -1);
  ~ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  ProfileFrame prev_;
};

}  // namespace pd::sim
