// Measurement primitives: HDR-style latency histogram and fixed-interval
// time series, used by every benchmark harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pd::sim {

/// Log-linear histogram of nanosecond latencies (HdrHistogram-style):
/// 2^k..2^(k+1) is split into 64 linear sub-buckets, giving <=1.6% relative
/// quantile error with O(1) record cost and a few KiB of memory.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(Duration latency_ns);
  void merge(const LatencyHistogram& other);
  void reset();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Duration min() const;
  [[nodiscard]] Duration max() const { return max_; }
  [[nodiscard]] double mean_ns() const;
  /// q in [0, 1]; returns an upper bound of the bucket containing the
  /// q-quantile, never above max(). quantile(0.5) is the median. Values of
  /// q outside [0, 1] (including NaN) are clamped; an empty histogram
  /// reports 0 for every quantile. quantile(1.0) >= every recorded value.
  [[nodiscard]] Duration quantile(double q) const;

  [[nodiscard]] std::string summary() const;  // human-readable one-liner

 private:
  static constexpr int kSubBucketBits = 6;  // 64 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static std::size_t bucket_index(Duration v);
  static Duration bucket_upper_bound(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  Duration min_ = 0;
  Duration max_ = 0;
  double sum_ns_ = 0.0;
};

/// Accumulates samples into fixed-width time buckets; used for RPS and
/// utilization time series (Figs. 14 & 15).
class TimeSeries {
 public:
  TimeSeries(Duration bucket_width, std::string name = {});

  /// Add `value` to the bucket containing time `t`.
  void add(TimePoint t, double value);
  /// Record one occurrence (e.g. one completed request) at time `t`.
  void increment(TimePoint t) { add(t, 1.0); }

  [[nodiscard]] Duration bucket_width() const { return width_; }
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] double bucket_value(std::size_t i) const;
  /// Value normalized to a per-second rate (for RPS plots).
  [[nodiscard]] double rate_per_sec(std::size_t i) const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  Duration width_;
  std::string name_;
  std::vector<double> buckets_;
};

/// Windowed mean helper for gauges sampled at irregular times.
struct RunningMean {
  double sum = 0.0;
  std::uint64_t n = 0;
  void add(double v) {
    sum += v;
    ++n;
  }
  [[nodiscard]] double mean() const { return n == 0 ? 0.0 : sum / static_cast<double>(n); }
};

}  // namespace pd::sim
