// Simulated time. Integral nanoseconds keep the event order fully
// deterministic (no floating-point tie ambiguity).
#pragma once

#include <cstdint>

namespace pd::sim {

/// Nanoseconds since simulation start.
using TimePoint = std::int64_t;
/// Nanosecond duration.
using Duration = std::int64_t;

constexpr Duration operator""_ns(unsigned long long v) {
  return static_cast<Duration>(v);
}
constexpr Duration operator""_us(unsigned long long v) {
  return static_cast<Duration>(v) * 1000;
}
constexpr Duration operator""_ms(unsigned long long v) {
  return static_cast<Duration>(v) * 1'000'000;
}
constexpr Duration operator""_s(unsigned long long v) {
  return static_cast<Duration>(v) * 1'000'000'000;
}

/// Convenience conversions for reporting.
constexpr double to_us(Duration d) { return static_cast<double>(d) / 1e3; }
constexpr double to_ms(Duration d) { return static_cast<double>(d) / 1e6; }
constexpr double to_sec(Duration d) { return static_cast<double>(d) / 1e9; }

/// Duration of transferring `bytes` at `bits_per_sec`, rounded up to 1 ns.
constexpr Duration transfer_time(std::uint64_t bytes, double bits_per_sec) {
  const double ns = static_cast<double>(bytes) * 8.0 / bits_per_sec * 1e9;
  const auto d = static_cast<Duration>(ns);
  return d > 0 ? d : 1;
}

}  // namespace pd::sim
