#include "sim/random.hpp"

#include <cmath>
#include <numbers>

namespace pd::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  PD_CHECK(lo <= hi, "uniform bounds inverted");
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return next_u64();  // full range
  // Lemire-style rejection-free multiply-shift is fine for simulation use.
  return lo + static_cast<std::uint64_t>(next_double() * static_cast<double>(span));
}

double Rng::exponential(double mean) {
  PD_CHECK(mean > 0.0, "exponential mean must be positive");
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace pd::sim
