#include "sim/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <thread>

#include "common/check.hpp"

namespace pd::sim {

namespace {

thread_local std::size_t tl_shard = ParallelSim::kNoShard;

TimePoint sat_add(TimePoint t, Duration d) {
  if (t >= Scheduler::kNoEvent - d) return Scheduler::kNoEvent;
  return t + d;
}

Duration dur_sat_add(Duration a, Duration b) {
  if (a >= static_cast<Duration>(Scheduler::kNoEvent) - b) {
    return static_cast<Duration>(Scheduler::kNoEvent);
  }
  return a + b;
}

}  // namespace

ParallelSim::ParallelSim(std::size_t shards, unsigned os_threads) {
  PD_CHECK(shards > 0, "parallel sim needs at least one shard");
  shards_.resize(shards);
  for (Shard& s : shards_) {
    s.sched = std::make_unique<Scheduler>();
    s.inbox.reserve(shards);
    for (std::size_t src = 0; src < shards; ++src) {
      s.inbox.push_back(std::make_unique<Mailbox>());
    }
  }
  d_in_.assign(shards, std::vector<Duration>(shards, lookahead_));
  for (std::size_t k = 0; k < shards; ++k) d_in_[k][k] = 0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned want = os_threads == 0 ? hw : os_threads;
  threads_ = std::max(1u, std::min<unsigned>(
                              want, static_cast<unsigned>(shards)));
}

ParallelSim::~ParallelSim() = default;

void ParallelSim::set_lookahead(Duration l) {
  PD_CHECK(l >= 1, "lookahead must be at least 1 ns");
  PD_CHECK(!running_, "lookahead change mid-run");
  lookahead_ = l;
  d_in_.assign(shards_.size(), std::vector<Duration>(shards_.size(), l));
  for (std::size_t k = 0; k < shards_.size(); ++k) d_in_[k][k] = 0;
}

void ParallelSim::set_lookahead_matrix(std::vector<std::vector<Duration>> d) {
  PD_CHECK(!running_, "lookahead change mid-run");
  const std::size_t n = shards_.size();
  PD_CHECK(d.size() == n, "lookahead matrix has " << d.size() << " rows for "
                                                  << n << " shards");
  for (std::size_t i = 0; i < n; ++i) {
    PD_CHECK(d[i].size() == n, "lookahead matrix row " << i << " has "
                                                       << d[i].size()
                                                       << " columns");
    d[i][i] = 0;  // self-influence is local, not a mailbox path
    for (std::size_t j = 0; j < n; ++j) {
      PD_CHECK(i == j || d[i][j] >= 1,
               "lookahead[" << i << "][" << j << "] must be >= 1 ns");
    }
  }
  // Min-plus closure (Floyd–Warshall): an influence relayed through shard m
  // is bounded by D[i][m] + D[m][j], so the effective pairwise bound is the
  // cheapest path, not the direct edge.
  for (std::size_t m = 0; m < n; ++m) {
    for (std::size_t i = 0; i < n; ++i) {
      const Duration im = d[i][m];
      for (std::size_t j = 0; j < n; ++j) {
        d[i][j] = std::min(d[i][j], dur_sat_add(im, d[m][j]));
      }
    }
  }
  Duration min_off = static_cast<Duration>(Scheduler::kNoEvent);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) min_off = std::min(min_off, d[i][j]);
    }
  }
  if (n > 1) lookahead_ = min_off;
  // Transpose into inbound form so plan()'s hot scan for shard k walks one
  // contiguous row: d_in_[k][j] = closed D[j][k].
  d_in_.assign(n, std::vector<Duration>(n, 0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) d_in_[j][i] = d[i][j];
  }
}

void ParallelSim::set_horizon_policy(HorizonPolicy policy) {
  PD_CHECK(!running_, "horizon policy change mid-run");
  policy_ = policy;
}

void ParallelSim::set_shard_hooks(ShardHook enter, ShardHook leave) {
  enter_shard_ = std::move(enter);
  leave_shard_ = std::move(leave);
}

std::size_t ParallelSim::current_shard() { return tl_shard; }

void ParallelSim::post(std::size_t dst, TimePoint t, EventFn fn,
                       bool foreground) {
  PD_CHECK(dst < shards_.size(), "post to unknown shard " << dst);
  const std::size_t src = tl_shard;
  if (!running_ || src == dst) {
    // Setup phase (single-threaded, nothing running) or a post back to the
    // executing shard itself: an ordinary local event.
    Scheduler& sched = *shards_[dst].sched;
    if (foreground) {
      sched.schedule_at(t, std::move(fn));
    } else {
      sched.schedule_background_at(t, std::move(fn));
    }
    return;
  }
  PD_CHECK(src != kNoShard, "cross-shard post from outside a shard phase");
  Shard& sender = shards_[src];
  // The posting event runs at sender.sched->now(); its influence may not
  // land on dst earlier than now + D[src][dst]. Per-pair, and anchored on
  // the actual posting time rather than the epoch floor, this is strictly
  // stronger than the PR 4 epoch_floor + L check.
  PD_CHECK(t >= sat_add(sender.sched->now(), d_in_[dst][src]),
           "cross-shard post at t=" << t << " violates lookahead (now="
                                    << sender.sched->now() << " D["
                                    << src << "][" << dst
                                    << "]=" << d_in_[dst][src] << ")");
  ++sender.posted_msgs;
  if (policy_ == HorizonPolicy::kAdaptive) {
    // Reflection cap: this event, once drained into dst, can bounce an
    // influence back here no earlier than t + D[dst][src]. Shrink our own
    // window so we never run past that point within this epoch. The cap is
    // > now (t >= now + D[src][dst] and D[dst][src] >= 1), so the event
    // currently executing is never invalidated.
    sender.window_cap =
        std::min(sender.window_cap, sat_add(t, d_in_[src][dst]));
  }
  if (foreground) in_flight_fg_.fetch_add(1, std::memory_order_relaxed);
  Mailbox& mb = *shards_[dst].inbox[src];
  CrossEvent e{t, foreground, std::move(fn)};
  if (!mb.spilling && !mb.ring.full()) {
    const bool ok = mb.ring.try_push(std::move(e));
    PD_CHECK(ok, "SPSC mailbox push raced its own producer");
    return;
  }
  std::lock_guard<std::mutex> lock(mb.mu);
  mb.spilling = true;
  mb.spill.push_back(std::move(e));
}

void ParallelSim::drain(std::size_t k) {
  Shard& s = shards_[k];
  Scheduler& sched = *s.sched;
  auto deliver = [&](CrossEvent&& e) {
    if (e.foreground) {
      sched.schedule_at(e.t, std::move(e.fn));
      in_flight_fg_.fetch_sub(1, std::memory_order_relaxed);
    } else {
      sched.schedule_background_at(e.t, std::move(e.fn));
    }
  };
  for (std::size_t src = 0; src < shards_.size(); ++src) {
    Mailbox& mb = *s.inbox[src];
    while (auto e = mb.ring.try_pop()) deliver(std::move(*e));
    if (mb.spilling) {
      std::lock_guard<std::mutex> lock(mb.mu);
      for (CrossEvent& e : mb.spill) deliver(std::move(e));
      mb.spill.clear();
      mb.spilling = false;
    }
  }
  s.next = sched.next_event_time();
}

bool ParallelSim::plan(TimePoint deadline, bool until_mode) {
  ++epochs_;
  TimePoint min1 = Scheduler::kNoEvent;
  TimePoint min2 = Scheduler::kNoEvent;
  std::size_t owner = kNoShard;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    const TimePoint next = shards_[k].next;
    if (next < min1) {
      min2 = min1;
      min1 = next;
      owner = k;
    } else if (next < min2) {
      min2 = next;
    }
  }
  if (until_mode) {
    if (min1 > deadline) return true;  // every remaining event is later
  } else {
    std::uint64_t fg = in_flight_fg_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) fg += s.sched->foreground_live();
    if (fg == 0 || min1 == Scheduler::kNoEvent) return true;
  }
  const bool adaptive = policy_ == HorizonPolicy::kAdaptive;
  bool skipped = false;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    Shard& s = shards_[k];
    // PR 4 uniform-L horizon: influence from another shard cannot land
    // before (their earliest event) + L; influence reflected off our own
    // earliest post needs 2L. Kept as the floor for skip-ahead accounting
    // and as the kLegacy policy.
    const TimePoint other = k == owner ? min2 : min1;
    const TimePoint base = std::min(other, sat_add(s.next, lookahead_));
    TimePoint legacy_h = sat_add(base, lookahead_);
    if (until_mode) legacy_h = std::min(legacy_h, deadline + 1);
    TimePoint h = legacy_h;
    bool fg_bounded = false;
    if (adaptive) {
      // H_k = min over the other shards of next_j + D[j][k]. Idle shards
      // contribute nothing (empty-mailbox skip-ahead); the k -> j -> k
      // reflection is handled dynamically by window_cap, so there is no
      // self term. kNoEvent means an unbounded grant: run until local
      // foreground work drains (never spin on background self-ticks).
      h = Scheduler::kNoEvent;
      const std::vector<Duration>& din = d_in_[k];
      for (std::size_t j = 0; j < shards_.size(); ++j) {
        if (j == k) continue;
        h = std::min(h, sat_add(shards_[j].next, din[j]));
      }
      if (until_mode) {
        h = std::min(h, deadline + 1);
      } else {
        fg_bounded = h == Scheduler::kNoEvent;
      }
      if (h > legacy_h) skipped = true;
    }
    s.horizon = h;
    s.window_cap = h;
    s.fg_bounded = fg_bounded;
  }
  if (skipped) ++skip_ahead_epochs_;
  return false;
}

void ParallelSim::execute(std::size_t k) {
  tl_shard = k;
  if (enter_shard_) enter_shard_(k);
  Shard& s = shards_[k];
  // window_cap may shrink mid-window when an event here posts cross-shard
  // (the reflection cap installed by post()), hence the dynamic variant.
  s.sched->run_window_dynamic(s.window_cap, s.fg_bounded);
  if (leave_shard_) leave_shard_(k);
  tl_shard = kNoShard;
}

void ParallelSim::drive_serial(TimePoint deadline, bool until_mode) {
  for (;;) {
    for (std::size_t k = 0; k < shards_.size(); ++k) drain(k);
    if (plan(deadline, until_mode)) return;
    for (std::size_t k = 0; k < shards_.size(); ++k) execute(k);
  }
}

void ParallelSim::drive_threaded(TimePoint deadline, bool until_mode) {
  struct Sync {
    int phase = 0;
    bool stop = false;
  };
  Sync sync;
  // Completion runs exactly once per barrier cycle, after every thread
  // arrives and before any is released — the serial plan slice.
  std::barrier bar(static_cast<std::ptrdiff_t>(threads_),
                   [this, &sync, deadline, until_mode]() noexcept {
                     if (sync.phase == 0) {
                       sync.stop = plan(deadline, until_mode);
                     }
                     sync.phase ^= 1;
                   });
  auto worker = [this, &sync, &bar](unsigned ti) {
    using Clock = std::chrono::steady_clock;
    std::uint64_t waited = 0;
    auto arrive = [&bar, &waited] {
      const auto t0 = Clock::now();
      bar.arrive_and_wait();
      waited += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               t0)
              .count());
    };
    for (;;) {
      for (std::size_t k = ti; k < shards_.size(); k += threads_) drain(k);
      arrive();  // -> plan
      if (sync.stop) break;
      for (std::size_t k = ti; k < shards_.size(); k += threads_) execute(k);
      arrive();  // posts visible before the next drain
    }
    barrier_wait_ns_.fetch_add(waited, std::memory_order_relaxed);
  };
  std::vector<std::thread> pool;
  pool.reserve(threads_ - 1);
  for (unsigned ti = 1; ti < threads_; ++ti) pool.emplace_back(worker, ti);
  worker(0);
  for (std::thread& t : pool) t.join();
}

std::size_t ParallelSim::drive(TimePoint deadline, bool until_mode) {
  PD_CHECK(!running_, "re-entrant parallel run");
  const std::uint64_t before = events_processed();
  running_ = true;
  if (threads_ == 1) {
    drive_serial(deadline, until_mode);
  } else {
    drive_threaded(deadline, until_mode);
  }
  running_ = false;
  if (until_mode) {
    for (Shard& s : shards_) s.sched->advance_to(deadline);
  }
  return static_cast<std::size_t>(events_processed() - before);
}

std::size_t ParallelSim::run() { return drive(0, /*until_mode=*/false); }

std::size_t ParallelSim::run_until(TimePoint deadline) {
  for (Shard& s : shards_) {
    PD_CHECK(deadline >= s.sched->now(), "deadline in the past");
  }
  return drive(deadline, /*until_mode=*/true);
}

std::uint64_t ParallelSim::events_processed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sched->events_processed();
  return total;
}

std::uint64_t ParallelSim::mailbox_msgs() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.posted_msgs;
  return total;
}

}  // namespace pd::sim
